// Benchmarks regenerating every table and figure of "Are Mobiles Ready for
// BBR?" (IMC '22). Each benchmark runs the corresponding experiment on the
// simulated testbed and reports goodput (and where relevant RTT or
// retransmissions) as custom metrics, so `go test -bench=. -benchmem`
// reproduces the paper's evaluation end to end. Durations are kept short;
// use cmd/mobbr-repro for longer, averaged runs.
package mobbr_test

import (
	"fmt"
	"testing"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/flows"
	"mobbr/internal/netem"
	"mobbr/internal/repro"
	"mobbr/internal/sim"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

const benchDur = 2 * time.Second

// runSpec executes spec once per benchmark iteration and reports goodput.
func runSpec(b *testing.B, spec core.Spec) *core.Result {
	b.Helper()
	spec.Duration = benchDur
	spec.Warmup = benchDur / 5
	var res *core.Result
	var err error
	for i := 0; i < b.N; i++ {
		spec.Seed = int64(i + 1)
		res, err = core.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Report.Goodput)/1e6, "goodput-Mbps")
	b.ReportMetric(float64(res.Report.AvgRTT)/1e6, "rtt-ms")
	return res
}

// benchExperiment runs every point of a repro experiment as a sub-benchmark.
func benchExperiment(b *testing.B, e repro.Experiment) {
	for _, p := range e.Points {
		p := p
		b.Run(p.Label, func(b *testing.B) {
			res := runSpec(b, p.Spec)
			if p.PaperMbps > 0 {
				b.ReportMetric(p.PaperMbps, "paper-Mbps")
			}
			_ = res
		})
	}
}

// BenchmarkFigure2 regenerates Figure 2: BBR vs Cubic goodput across the
// four Table 1 CPU configurations and 1–20 connections on the Pixel 4.
func BenchmarkFigure2(b *testing.B) { benchExperiment(b, repro.Figure2()) }

// BenchmarkFigure3 regenerates Figure 3: the Pixel 6 Low-End sweep.
func BenchmarkFigure3(b *testing.B) { benchExperiment(b, repro.Figure3()) }

// BenchmarkBBR2WiFi regenerates §4.2: BBRv2 vs BBR vs Cubic over WiFi.
func BenchmarkBBR2WiFi(b *testing.B) { benchExperiment(b, repro.BBR2WiFi()) }

// BenchmarkModelOff regenerates §5.1.1: BBR with the model disabled and a
// fixed Cubic-like cwnd.
func BenchmarkModelOff(b *testing.B) { benchExperiment(b, repro.ModelOff()) }

// BenchmarkFixedPacingRate regenerates §5.1.2: the fixed pacing-rate sweep.
func BenchmarkFixedPacingRate(b *testing.B) { benchExperiment(b, repro.FixedPacingRate()) }

// BenchmarkFigure4 regenerates Figure 4: pacing on/off goodput at 20 conns.
func BenchmarkFigure4(b *testing.B) { benchExperiment(b, repro.Figure4()) }

// BenchmarkFigure5 regenerates Figure 5: pacing on/off across conn counts.
func BenchmarkFigure5(b *testing.B) { benchExperiment(b, repro.Figure5()) }

// BenchmarkFigure6 regenerates Figure 6: Cubic with pacing enabled.
func BenchmarkFigure6(b *testing.B) { benchExperiment(b, repro.Figure6()) }

// BenchmarkFigure7 regenerates Figure 7: RTT with and without pacing.
func BenchmarkFigure7(b *testing.B) {
	for _, p := range repro.Figure7().Points {
		p := p
		b.Run(p.Label, func(b *testing.B) {
			res := runSpec(b, p.Spec)
			b.ReportMetric(float64(res.Report.MinRTT)/1e6, "minrtt-ms")
		})
	}
}

// BenchmarkShallowBuffer regenerates §5.2.3: retransmissions against a
// 10-packet buffer with pacing on vs off.
func BenchmarkShallowBuffer(b *testing.B) {
	for _, p := range repro.ShallowBuffer().Points {
		p := p
		b.Run(p.Label, func(b *testing.B) {
			res := runSpec(b, p.Spec)
			b.ReportMetric(float64(res.Report.Retransmits), "retransmits")
		})
	}
}

// BenchmarkFigure8 regenerates Figure 8: the pacing-stride sweep.
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, repro.Figure8()) }

// BenchmarkTable2 regenerates Table 2: per-stride skb length, idle time,
// expected vs actual throughput and RTT under the Default configuration.
func BenchmarkTable2(b *testing.B) {
	for _, p := range repro.Table2().Points {
		p := p
		b.Run(p.Label, func(b *testing.B) {
			res := runSpec(b, p.Spec)
			r := res.Report
			b.ReportMetric(units.DataSize(r.AvgSKB).Kilobits(), "skb-Kb")
			b.ReportMetric(float64(r.AvgIdle)/1e6, "idle-ms")
			b.ReportMetric(float64(r.ExpectedTx)/1e6, "expected-Mbps")
			if p.PaperMbps > 0 {
				b.ReportMetric(p.PaperMbps, "paper-Mbps")
			}
		})
	}
}

// BenchmarkFigure9 regenerates Figure 9 (Appendix A.1): LTE parity.
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, repro.Figure9()) }

// BenchmarkMemory regenerates §7.1.1: peak socket-buffer occupancy across
// strides (the paper finds RAM unaffected).
func BenchmarkMemory(b *testing.B) {
	for _, p := range repro.Memory().Points {
		p := p
		b.Run(p.Label, func(b *testing.B) {
			res := runSpec(b, p.Spec)
			b.ReportMetric(float64(res.Report.MaxBufferOcc)/1024, "sndbuf-KB")
		})
	}
}

// BenchmarkAblationTimerCost is an ablation for the design choice DESIGN.md
// calls out: how strongly the pacing-timer CPU cost drives the 20-connection
// collapse. It compares stock BBR against BBR with pacing disabled (no
// timer events at all) on each configuration.
func BenchmarkAblationTimerCost(b *testing.B) {
	off := false
	for _, cfg := range []device.Config{device.LowEnd, device.MidEnd, device.HighEnd} {
		for _, pacing := range []bool{true, false} {
			spec := core.Spec{CPU: cfg, CC: "bbr", Conns: 20, Network: core.Ethernet}
			name := fmt.Sprintf("%s/pacing=%v", cfg, pacing)
			if !pacing {
				spec.PacingOverride = &off
			}
			b.Run(name, func(b *testing.B) { runSpec(b, spec) })
		}
	}
}

// BenchmarkAblationStrideVsDisable contrasts the paper's two remedies at
// Low-End/20conns: stride pacing (keeps pacing's low RTT) versus disabling
// pacing outright (highest goodput, congested network).
func BenchmarkAblationStrideVsDisable(b *testing.B) {
	off := false
	specs := map[string]core.Spec{
		"stock":      {CPU: device.LowEnd, CC: "bbr", Conns: 20},
		"stride-10x": {CPU: device.LowEnd, CC: "bbr", Conns: 20, Stride: 10},
		"pacing-off": {CPU: device.LowEnd, CC: "bbr", Conns: 20, PacingOverride: &off},
	}
	for name, spec := range specs {
		spec.Network = core.Ethernet
		b.Run(name, func(b *testing.B) { runSpec(b, spec) })
	}
}

// BenchmarkEngineThroughput measures the simulator itself: events processed
// per second of wall time for a heavy 20-connection run (a regression guard
// for the discrete-event core).
func BenchmarkEngineThroughput(b *testing.B) {
	spec := core.Spec{CPU: device.HighEnd, CC: "cubic", Conns: 20,
		Network: core.Ethernet, Duration: time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec.Seed = int64(i + 1)
		if _, err := core.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataPath measures the pooled segment data path: a BBR run sized
// so packet/ACK churn (mkPacket, GRO receive, ACK return, scoreboard walks)
// dominates over setup. With the per-run recycler this path allocates no
// per-segment objects, so allocs/op is a direct regression guard for the
// zero-alloc contract.
func BenchmarkDataPath(b *testing.B) {
	spec := core.Spec{CPU: device.Default, CC: "bbr", Conns: 8,
		Network: core.Ethernet, Duration: time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec.Seed = int64(i + 1)
		if _, err := core.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineOverhead measures what the telemetry layer costs: the same
// heavy 20-connection run with telemetry disabled (the default nil-check-only
// hot path) versus fully enabled (trace + metrics + profile). The disabled
// variant is the PR 2 overhead contract: allocs/op must match the
// pre-telemetry engine and wall time must stay within noise of it.
func BenchmarkEngineOverhead(b *testing.B) {
	base := core.Spec{CPU: device.HighEnd, CC: "cubic", Conns: 20,
		Network: core.Ethernet, Duration: time.Second}
	for _, bc := range []struct {
		name string
		tel  telemetry.Config
	}{
		{"disabled", telemetry.Config{}},
		{"enabled", telemetry.Config{Trace: true, Metrics: true, Profile: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			spec := base
			spec.Telemetry = bc.tel
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				spec.Seed = int64(i + 1)
				if _, err := core.Run(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkManyFlows measures the million-flow data path: heavy-tailed
// churn through the pooled conn lifecycle at 10k concurrent flows, with the
// O(1) aggregate counters carrying all periodic accounting. It is the
// regression guard for the churn machinery itself (pool recycling, demux
// add/remove, flow-table lookups); the per-sample O(1) contract has its own
// micro-benchmark in internal/flows (BenchmarkSamplePath).
func BenchmarkManyFlows(b *testing.B) {
	spec := core.Spec{CPU: device.LowEnd, CC: "bbr", Network: core.Ethernet,
		// 2 s: the synchronized 10k-flow burst costs ~1 s of modeled CPU
		// before the first completions, so a shorter run never recycles.
		Duration: 2 * time.Second,
		Flows: &flows.Config{
			ArrivalRate:  2000,
			MaxLive:      10_000,
			InitialFlows: 10_000,
			MiceBytes:    4 * units.KB,
		}}
	b.ReportAllocs()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		spec.Seed = int64(i + 1)
		var err error
		res, err = core.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Flows.Started), "flows-started")
	b.ReportMetric(float64(res.Flows.Completed), "flows-completed")
	b.ReportMetric(float64(res.Flows.Pool.Reuses)/float64(res.Flows.Pool.Gets), "pool-reuse")
}

// BenchmarkWiFiPath exercises the WiFi medium model under load.
func BenchmarkWiFiPath(b *testing.B) {
	runSpec(b, core.Spec{CPU: device.Default, CC: "bbr", Conns: 10, Network: core.WiFi})
}

// BenchmarkShallowBufferLoss sanity-checks loss accounting under tc-induced
// random loss.
func BenchmarkShallowBufferLoss(b *testing.B) {
	res := runSpec(b, core.Spec{
		CPU: device.HighEnd, CC: "cubic", Conns: 4, Network: core.Ethernet,
		TC: netem.TC{Loss: 0.001},
	})
	b.ReportMetric(float64(res.Report.Retransmits), "retransmits")
}

// BenchmarkFairnessVsStride probes §7.1.3: Jain's index across strides.
func BenchmarkFairnessVsStride(b *testing.B) {
	for _, p := range repro.FairnessVsStride().Points {
		p := p
		b.Run(p.Label, func(b *testing.B) {
			res := runSpec(b, p.Spec)
			b.ReportMetric(res.Report.Fairness.Jain, "jain")
		})
	}
}

// BenchmarkHardwarePacing probes §7.1.4: NIC pacing offload vs stride.
func BenchmarkHardwarePacing(b *testing.B) { benchExperiment(b, repro.HardwarePacing()) }

// BenchmarkFiveG probes the paper's 5G prediction: the pacing gap
// reappears once the uplink outruns the CPU.
func BenchmarkFiveG(b *testing.B) { benchExperiment(b, repro.FiveG()) }

// BenchmarkRecovery runs the fault-recovery experiment: goodput recovery
// after a 2 s blackout and an LTE→WiFi handover, with the invariant checker
// armed. The recovery spec carries its own duration (the fault timeline is
// fixed), so it does not go through runSpec's duration override.
func BenchmarkRecovery(b *testing.B) {
	for _, p := range repro.Recovery().Points {
		p := p
		b.Run(p.Label, func(b *testing.B) {
			var res *core.Result
			spec := p.Spec
			for i := 0; i < b.N; i++ {
				spec.Seed = int64(i + 1)
				var err error
				res, err = core.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
			}
			_, rec, ok := p.RecoveryTime(res.Report.Intervals)
			if !ok {
				b.Fatalf("%s: never regained 90%% of pre-fault goodput", p.Label)
			}
			b.ReportMetric(float64(rec)/1e6, "recovery-ms")
			b.ReportMetric(float64(res.Report.Goodput)/1e6, "goodput-Mbps")
		})
	}
}

// BenchmarkECN contrasts ECN marking with drop-only AQM (extension): same
// goodput, far fewer retransmissions.
func BenchmarkECN(b *testing.B) {
	for _, p := range repro.ECN().Points {
		p := p
		b.Run(p.Label, func(b *testing.B) {
			res := runSpec(b, p.Spec)
			b.ReportMetric(float64(res.Report.Retransmits), "retransmits")
		})
	}
}

// shardedRing drives h synthetic hosts laid out on a ring across k engine
// shards: each host runs a dense local timer load (the dominant work, as in a
// real per-host simulation) and forwards a token to its ring successor over a
// 200µs link — cross-shard wherever the partition cuts the ring. One call
// simulates dur of virtual time and returns the total events executed.
func shardedRing(h, k int, dur time.Duration) uint64 {
	const (
		linkDelay  = 200 * time.Microsecond
		tickPeriod = 2 * time.Microsecond
	)
	se := sim.NewSharded(1, k)
	// One link per directed shard pair the ring actually crosses.
	links := map[[2]int]*sim.CrossLink{}
	for host := 0; host < h; host++ {
		src, dst := host%k, (host+1)%h%k
		key := [2]int{src, dst}
		if src != dst && links[key] == nil {
			links[key] = se.NewLink(src, dst, linkDelay)
		}
	}
	type hostState struct {
		eng  *sim.Engine
		acc  uint64
		send func()
		tick func()
		recv func(any)
	}
	hostsv := make([]*hostState, h)
	for i := range hostsv {
		hostsv[i] = &hostState{eng: se.Shard(i % k)}
	}
	for i := range hostsv {
		i := i
		hs := hostsv[i]
		succ := hostsv[(i+1)%h]
		link := links[[2]int{i % k, (i + 1) % h % k}]
		hs.recv = func(any) { hs.send() }
		hs.send = func() {
			if link != nil {
				link.Post(i, linkDelay)
			} else {
				succ.eng.ScheduleP(linkDelay, succ.recv, i)
			}
		}
		hs.tick = func() {
			// A few hundred ALU ops standing in for per-event protocol
			// work; heavy enough that windows dominate barrier sync on a
			// multi-core box.
			for j := 0; j < 256; j++ {
				hs.acc = hs.acc*2862933555777941757 + 3037000493
			}
			hs.eng.Schedule(tickPeriod, hs.tick)
		}
		hs.eng.Schedule(tickPeriod, hs.tick)
	}
	for key, l := range links {
		dst := key[1]
		l := l
		eng := se.Shard(dst)
		l.SetInjector(func(arg any, at time.Duration) {
			from := arg.(int)
			eng.SchedulePAt(at, hostsv[(from+1)%h].recv, arg)
		})
	}
	// Seed one token per shard-0 host so the ring carries steady traffic.
	for i := range hostsv {
		if i%k == 0 {
			hs := hostsv[i]
			hs.eng.Schedule(linkDelay, hs.send)
		}
	}
	se.Run(dur)
	return se.Processed()
}

// BenchmarkShardedEngine measures the sharded coordinator against the same
// workload serialized onto one shard: 2-host and 8-host ring topologies at
// 1, 2, and 4 shards (combinations with more shards than hosts are skipped —
// empty shards only add barrier latency). The hosts=8/shards=4 row is the
// headline: wall clock per op should be well under half the shards=1 row on
// a multi-core box. ev/s reports aggregate simulator throughput.
func BenchmarkShardedEngine(b *testing.B) {
	const dur = 20 * time.Millisecond
	for _, hosts := range []int{2, 8} {
		for _, shards := range []int{1, 2, 4} {
			if shards > hosts {
				continue
			}
			b.Run(fmt.Sprintf("hosts=%d/shards=%d", hosts, shards), func(b *testing.B) {
				b.ReportAllocs()
				var events uint64
				for i := 0; i < b.N; i++ {
					events = shardedRing(hosts, shards, dur)
				}
				b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "ev/s")
			})
		}
	}
}
