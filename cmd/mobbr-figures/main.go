// Command mobbr-figures runs the paper's headline figures on the simulated
// testbed and draws them as terminal bar charts.
//
//	mobbr-figures            # Figures 2 (Low-End), 4 and 8
//	mobbr-figures -dur 6s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/mobility"
	"mobbr/internal/render"
	"mobbr/internal/repro"
)

func run(spec core.Spec, dur time.Duration) float64 {
	spec.Duration = dur
	spec.Warmup = dur / 5
	res, err := core.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return float64(res.Report.Goodput) / 1e6
}

func main() {
	dur := flag.Duration("dur", 3*time.Second, "simulated duration per point")
	trFile := flag.String("trace-file", "", "trace figure: replay this dataset trace (.csv, .jsonl)")
	trPre := flag.String("trace-preset", "driving", "trace figure: synthesize this commute when no -trace-file")
	trSeed := flag.Int64("trace-seed", 1, "trace figure: synthesis seed")
	flag.Parse()

	// Figure 2a: Low-End, BBR vs Cubic across connection counts.
	fmt.Println("═══ Figure 2a — Pixel 4 Low-End, Ethernet ═══")
	var f2 []render.Chart
	for _, cc := range []string{"cubic", "bbr"} {
		ch := render.Chart{Title: cc}
		for _, n := range []int{1, 5, 10, 20} {
			g := run(core.Spec{CPU: device.LowEnd, CC: cc, Conns: n, Network: core.Ethernet}, *dur)
			note := ""
			if cc == "cubic" && n == 1 {
				note = "paper: 364"
			}
			if cc == "cubic" && n == 20 {
				note = "paper: 310"
			}
			if cc == "bbr" && n == 1 {
				note = "paper: 325"
			}
			if cc == "bbr" && n == 20 {
				note = "paper: 138"
			}
			ch.Bars = append(ch.Bars, render.Bar{
				Label: fmt.Sprintf("%2d conns", n), Value: g, Note: note,
			})
		}
		f2 = append(f2, ch)
	}
	if err := render.Grouped(os.Stdout, "Mbps", 400, f2...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Figure 4: pacing on/off at 20 connections.
	fmt.Println("═══ Figure 4 — BBR pacing on/off, 20 conns ═══")
	off := false
	f4 := render.Chart{Title: "goodput"}
	for _, cfg := range []device.Config{device.LowEnd, device.MidEnd, device.Default} {
		on := run(core.Spec{CPU: cfg, CC: "bbr", Conns: 20, Network: core.Ethernet}, *dur)
		no := run(core.Spec{CPU: cfg, CC: "bbr", Conns: 20, Network: core.Ethernet,
			PacingOverride: &off}, *dur)
		f4.Bars = append(f4.Bars,
			render.Bar{Label: fmt.Sprintf("%v paced", cfg), Value: on},
			render.Bar{Label: fmt.Sprintf("%v unpaced", cfg), Value: no},
		)
	}
	if err := render.Grouped(os.Stdout, "Mbps", 0, f4); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Figure 8: the stride sweep.
	fmt.Println("═══ Figure 8 — pacing-stride sweep, 20 conns ═══")
	var f8 []render.Chart
	for _, cfg := range []device.Config{device.LowEnd, device.Default} {
		ch := render.Chart{Title: cfg.String()}
		for _, st := range []float64{1, 2, 5, 10, 20, 50} {
			g := run(core.Spec{CPU: cfg, CC: "bbr", Conns: 20,
				Network: core.Ethernet, Stride: st}, *dur)
			ch.Bars = append(ch.Bars, render.Bar{
				Label: fmt.Sprintf("%3.0fx", st), Value: g,
			})
		}
		f8 = append(f8, ch)
	}
	if err := render.Grouped(os.Stdout, "Mbps", 700, f8...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	traceFigure(*trFile, *trPre, *trSeed)
}

// traceFigure replays a commute trace (dataset file or synthesized preset)
// with BBR on the Low-End configuration and draws goodput over time, with
// the trace's outage and degraded segments shaded.
func traceFigure(file, preset string, seed int64) {
	tr, err := repro.LoadTrace(file, preset, 12*time.Second, 0, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	e, err := repro.NewTraceExperiment(tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec := e.Points[0].Spec // bbr Low-End
	spec.Seed = 1
	spec.Interval = 500 * time.Millisecond
	res, err := core.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	segAt := func(at time.Duration) *mobility.Segment {
		for i := range e.Compiled.Segments {
			s := &e.Compiled.Segments[i]
			if at >= s.Start && at < s.End {
				return s
			}
		}
		return nil
	}
	fmt.Printf("═══ Trace replay — %s, bbr Low-End (▒ = outage/degraded) ═══\n", e.Compiled.Trace.Name)
	tl := render.Timeline{Title: "goodput over time", Unit: "Mbps", Width: 40}
	var lastSeg *mobility.Segment
	for _, iv := range res.Report.Intervals {
		mid := iv.Start + (iv.End-iv.Start)/2
		seg := segAt(mid)
		b := render.TimeBucket{
			Label: fmt.Sprintf("%5.1fs", iv.Start.Seconds()),
			Value: iv.Goodput.Mbit(),
		}
		if seg != nil && seg.Kind != mobility.SegNominal {
			b.Shaded = true
		}
		if seg != nil && seg != lastSeg && seg.Kind != mobility.SegNominal {
			b.Note = "◀ " + seg.Kind.String()
		}
		lastSeg = seg
		tl.Buckets = append(tl.Buckets, b)
	}
	if err := tl.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
