// Command mobbr-figures runs the paper's headline figures on the simulated
// testbed and draws them as terminal bar charts.
//
//	mobbr-figures            # Figures 2 (Low-End), 4 and 8
//	mobbr-figures -dur 6s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/mobility"
	"mobbr/internal/render"
	"mobbr/internal/repro"
)

// goodputs runs every spec for dur across the worker pool and returns each
// run's goodput in Mbps, indexed like specs — completion order never leaks
// into the figures.
func goodputs(specs []core.Spec, dur time.Duration, jobs int) []float64 {
	out := make([]float64, len(specs))
	err := repro.ForEach(len(specs), jobs, func(i int) error {
		spec := specs[i]
		spec.Duration = dur
		spec.Warmup = dur / 5
		res, err := core.Run(spec)
		if err != nil {
			return err
		}
		out[i] = float64(res.Report.Goodput) / 1e6
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return out
}

func main() {
	dur := flag.Duration("dur", 3*time.Second, "simulated duration per point")
	trFile := flag.String("trace-file", "", "trace figure: replay this dataset trace (.csv, .jsonl)")
	trPre := flag.String("trace-preset", "driving", "trace figure: synthesize this commute when no -trace-file")
	trSeed := flag.Int64("trace-seed", 1, "trace figure: synthesis seed")
	jobs := flag.Int("j", 0, "figure points run in parallel (0 = one per CPU); output is identical at any -j")
	flag.Parse()

	// Figure 2a: Low-End, BBR vs Cubic across connection counts.
	fmt.Println("═══ Figure 2a — Pixel 4 Low-End, Ethernet ═══")
	f2cc := []string{"cubic", "bbr"}
	f2n := []int{1, 5, 10, 20}
	var f2specs []core.Spec
	for _, cc := range f2cc {
		for _, n := range f2n {
			f2specs = append(f2specs, core.Spec{CPU: device.LowEnd, CC: cc, Conns: n, Network: core.Ethernet})
		}
	}
	f2paper := map[string]string{
		"cubic/1": "paper: 364", "cubic/20": "paper: 310",
		"bbr/1": "paper: 325", "bbr/20": "paper: 138",
	}
	f2g := goodputs(f2specs, *dur, *jobs)
	var f2 []render.Chart
	for ci, cc := range f2cc {
		ch := render.Chart{Title: cc}
		for ni, n := range f2n {
			ch.Bars = append(ch.Bars, render.Bar{
				Label: fmt.Sprintf("%2d conns", n),
				Value: f2g[ci*len(f2n)+ni],
				Note:  f2paper[fmt.Sprintf("%s/%d", cc, n)],
			})
		}
		f2 = append(f2, ch)
	}
	if err := render.Grouped(os.Stdout, "Mbps", 400, f2...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Figure 4: pacing on/off at 20 connections.
	fmt.Println("═══ Figure 4 — BBR pacing on/off, 20 conns ═══")
	off := false
	f4cfgs := []device.Config{device.LowEnd, device.MidEnd, device.Default}
	var f4specs []core.Spec
	for _, cfg := range f4cfgs {
		f4specs = append(f4specs,
			core.Spec{CPU: cfg, CC: "bbr", Conns: 20, Network: core.Ethernet},
			core.Spec{CPU: cfg, CC: "bbr", Conns: 20, Network: core.Ethernet, PacingOverride: &off},
		)
	}
	f4g := goodputs(f4specs, *dur, *jobs)
	f4 := render.Chart{Title: "goodput"}
	for i, cfg := range f4cfgs {
		f4.Bars = append(f4.Bars,
			render.Bar{Label: fmt.Sprintf("%v paced", cfg), Value: f4g[2*i]},
			render.Bar{Label: fmt.Sprintf("%v unpaced", cfg), Value: f4g[2*i+1]},
		)
	}
	if err := render.Grouped(os.Stdout, "Mbps", 0, f4); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Figure 8: the stride sweep.
	fmt.Println("═══ Figure 8 — pacing-stride sweep, 20 conns ═══")
	f8cfgs := []device.Config{device.LowEnd, device.Default}
	f8strides := []float64{1, 2, 5, 10, 20, 50}
	var f8specs []core.Spec
	for _, cfg := range f8cfgs {
		for _, st := range f8strides {
			f8specs = append(f8specs, core.Spec{CPU: cfg, CC: "bbr", Conns: 20,
				Network: core.Ethernet, Stride: st})
		}
	}
	f8g := goodputs(f8specs, *dur, *jobs)
	var f8 []render.Chart
	for ci, cfg := range f8cfgs {
		ch := render.Chart{Title: cfg.String()}
		for si, st := range f8strides {
			ch.Bars = append(ch.Bars, render.Bar{
				Label: fmt.Sprintf("%3.0fx", st),
				Value: f8g[ci*len(f8strides)+si],
			})
		}
		f8 = append(f8, ch)
	}
	if err := render.Grouped(os.Stdout, "Mbps", 700, f8...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	traceFigure(*trFile, *trPre, *trSeed)
}

// traceFigure replays a commute trace (dataset file or synthesized preset)
// with BBR on the Low-End configuration and draws goodput over time, with
// the trace's outage and degraded segments shaded.
func traceFigure(file, preset string, seed int64) {
	tr, err := repro.LoadTrace(file, preset, 12*time.Second, 0, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	e, err := repro.NewTraceExperiment(tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec := e.Points[0].Spec // bbr Low-End
	spec.Seed = 1
	spec.Interval = 500 * time.Millisecond
	res, err := core.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	segAt := func(at time.Duration) *mobility.Segment {
		for i := range e.Compiled.Segments {
			s := &e.Compiled.Segments[i]
			if at >= s.Start && at < s.End {
				return s
			}
		}
		return nil
	}
	fmt.Printf("═══ Trace replay — %s, bbr Low-End (▒ = outage/degraded) ═══\n", e.Compiled.Trace.Name)
	tl := render.Timeline{Title: "goodput over time", Unit: "Mbps", Width: 40}
	var lastSeg *mobility.Segment
	for _, iv := range res.Report.Intervals {
		mid := iv.Start + (iv.End-iv.Start)/2
		seg := segAt(mid)
		b := render.TimeBucket{
			Label: fmt.Sprintf("%5.1fs", iv.Start.Seconds()),
			Value: iv.Goodput.Mbit(),
		}
		if seg != nil && seg.Kind != mobility.SegNominal {
			b.Shaded = true
		}
		if seg != nil && seg != lastSeg && seg.Kind != mobility.SegNominal {
			b.Note = "◀ " + seg.Kind.String()
		}
		lastSeg = seg
		tl.Buckets = append(tl.Buckets, b)
	}
	if err := tl.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
