// Command mobbr runs one experiment on the simulated mobile-BBR testbed and
// prints an iPerf3-style report.
//
// Examples:
//
//	mobbr -cc bbr -config low -conns 20
//	mobbr -cc cubic -device pixel6 -network wifi -dur 10s
//	mobbr -cc bbr -config default -conns 20 -stride 5
//	mobbr -cc bbr -pacing=off -conns 20
//	mobbr -cc bbr -fixed-rate 140Mbps -fixed-cwnd 70
//	mobbr -exp recovery -seeds 3
//	mobbr -exp trace -trace-file internal/mobility/testdata/irish4g_sample.csv
//	mobbr -exp trace -trace-preset train -dur 30s -trace-seed 7
//	mobbr -run-spec '{"cc":"cubic","conns":1,...}'   # replay a failure's repro line
//	mobbr -chaos 40 -chaos-seed 1                    # fuzz 40 scenarios, shrink failures
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"mobbr/internal/apps"
	"mobbr/internal/chaos"
	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/netem"
	"mobbr/internal/obs"
	"mobbr/internal/profiling"
	"mobbr/internal/repro"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

func main() {
	var (
		ccName   = flag.String("cc", "bbr", "congestion control: cubic, bbr, bbr2")
		devName  = flag.String("device", "pixel4", "phone: pixel4, pixel6")
		cfgName  = flag.String("config", "low", "CPU config: low, mid, high, default")
		netName  = flag.String("network", "ethernet", "network: ethernet, wifi, cellular")
		conns    = flag.Int("conns", 1, "parallel connections (iperf3 -P)")
		dur      = flag.Duration("dur", 5*time.Second, "transfer duration (iperf3 -t)")
		seeds    = flag.Int("seeds", 1, "seeds to average over")
		stride   = flag.Float64("stride", 1, "pacing stride (§6.2)")
		pacingS  = flag.String("pacing", "auto", "pacing: auto, on, off")
		fixRate  = flag.String("fixed-rate", "", "pin per-connection pacing rate, e.g. 140Mbps")
		fixCwnd  = flag.Int("fixed-cwnd", 0, "pin cwnd in packets (0 = off)")
		noModel  = flag.Bool("no-model", false, "disable the CC's per-ACK model (§5.1.1)")
		hwPace   = flag.Bool("hw-pacing", false, "offload pacing timers to the NIC (§7.1.4)")
		appKind  = flag.String("app", "", "application workload instead of bulk upload: reqrep, stream")
		reqSize  = flag.String("req-size", "", "with -app reqrep: request size, e.g. 256KB")
		respSize = flag.String("resp-size", "", "with -app: response/ack size, e.g. 4KB")
		think    = flag.Duration("think", 0, "with -app reqrep: mean client think time between requests")
		chunk    = flag.Duration("chunk", 0, "with -app stream: media seconds per chunk (default 120ms)")
		ladder   = flag.String("ladder", "", "with -app stream: comma-separated ABR bitrate rungs, e.g. 1500Kbps,3Mbps,6Mbps")
		startup  = flag.Int("startup", 0, "with -app stream: chunks buffered before playback starts")
		downRate = flag.String("down-rate", "", "with -app: modeled downlink serialization rate, e.g. 100Mbps")
		ival     = flag.Duration("interval", 0, "print iperf3-style interval reports (e.g. 1s)")
		sndbuf   = flag.String("sndbuf", "", "per-socket send buffer, e.g. 1MB (default 256KB)")
		tcRate   = flag.String("tc-rate", "", "router rate cap, e.g. 600Mbps")
		tcDelay  = flag.Duration("tc-delay", 0, "router added delay")
		tcLoss   = flag.Float64("tc-loss", 0, "router random loss fraction")
		tcQueue  = flag.Int("tc-queue", 0, "router queue depth in packets")
		tcECN    = flag.Int("tc-ecn", 0, "router ECN marking threshold in packets (0 = off)")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		expName  = flag.String("exp", "", "run a named repro experiment instead (e.g. recovery, trace; see mobbr-repro -list)")
		trFile   = flag.String("trace-file", "", "with -exp trace: replay this dataset trace (.csv, .jsonl)")
		trPre    = flag.String("trace-preset", "driving", "with -exp trace: synthesize this commute when no -trace-file (stationary, walking, driving, train)")
		trSeed   = flag.Int64("trace-seed", 1, "with -exp trace: synthesis seed")
		trTick   = flag.Duration("trace-tick", 0, "with -exp trace: synthesis sample spacing (default 100ms)")
		traceTo  = flag.String("trace", "", "write the last run's telemetry events as JSONL to FILE (- = stdout)")
		metrics  = flag.Bool("metrics", false, "collect and print the metrics registry and engine self-metrics")
		jobs     = flag.Int("j", 0, "with -exp: experiment points run in parallel (0 = one per CPU); results are identical at any -j")
		shards   = flag.Int("shards", 1, "engine shards per run: split sender and receiver hosts across cores (conservative lookahead sync); results are identical at any -shards")
		profile  = flag.Bool("profile", false, "print the cycle-attribution profile (core × phase × op)")
		folded   = flag.String("folded", "", "write the cycle profile as folded stacks (flamegraph input) to FILE")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to FILE")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile at exit to FILE")
		showProg = flag.Bool("progress", false, "with -exp: live stderr progress (per-worker point, done count, events/sec, ETA)")
		runSpec  = flag.String("run-spec", "", "run this exact spec JSON (as printed in repro lines; @FILE or - reads a file or stdin)")
		chaosN   = flag.Int("chaos", 0, "fuzz N random-but-valid scenario specs under budgets, shrinking any failure to a minimal reproducer")
		chaosSd  = flag.Int64("chaos-seed", 1, "with -chaos: first generator seed of the (pinned, reproducible) window")
		chaosCp  = flag.String("chaos-corpus", "", "with -chaos: write minimized reproducers to this directory")
	)
	flag.Parse()

	if warn, err := checkParallelism(*shards, *jobs); err != nil {
		fatalf("%v", err)
	} else if warn != "" {
		fmt.Fprintln(os.Stderr, "mobbr: warning:", warn)
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	if *runSpec != "" {
		if !runSpecCmd(*runSpec) {
			stopProf() // os.Exit skips the deferred call
			os.Exit(1)
		}
		return
	}
	if *chaosN > 0 {
		if !runChaos(*chaosN, *chaosSd, *chaosCp) {
			stopProf()
			os.Exit(1)
		}
		return
	}

	tel := telemetry.Config{
		Trace:   *traceTo != "",
		Metrics: *metrics,
		Profile: *profile || *folded != "",
	}

	if *expName != "" {
		if strings.EqualFold(*expName, "trace") {
			runTraceExperiment(*trFile, *trPre, *dur, *trTick, *trSeed, *seeds, *jobs)
			return
		}
		runExperiment(*expName, *dur, *seeds, *jobs, *shards, tel, *traceTo, *metrics, *profile, *folded, *showProg)
		return
	}

	spec := core.Spec{
		Telemetry:      tel,
		Shards:         *shards,
		CC:             *ccName,
		Conns:          *conns,
		Duration:       *dur,
		Warmup:         *dur / 5,
		Stride:         *stride,
		HardwarePacing: *hwPace,
		FixedCwnd:      *fixCwnd,
		DisableModel:   *noModel,
		Seed:           *seed,
		TC: netem.TC{
			Delay:        *tcDelay,
			Loss:         *tcLoss,
			QueuePackets: *tcQueue,
			ECNThreshold: *tcECN,
		},
	}

	switch strings.ToLower(*devName) {
	case "pixel4":
		spec.Device = device.Pixel4
	case "pixel6":
		spec.Device = device.Pixel6
	default:
		fatalf("unknown device %q", *devName)
	}
	switch strings.ToLower(*cfgName) {
	case "low":
		spec.CPU = device.LowEnd
	case "mid":
		spec.CPU = device.MidEnd
	case "high":
		spec.CPU = device.HighEnd
	case "default":
		spec.CPU = device.Default
	default:
		fatalf("unknown CPU config %q", *cfgName)
	}
	switch strings.ToLower(*netName) {
	case "ethernet":
		spec.Network = core.Ethernet
	case "wifi":
		spec.Network = core.WiFi
	case "cellular", "lte":
		spec.Network = core.Cellular
	case "5g", "mmwave":
		spec.Network = core.Cellular5G
	default:
		fatalf("unknown network %q", *netName)
	}
	switch strings.ToLower(*pacingS) {
	case "auto":
	case "on":
		on := true
		spec.PacingOverride = &on
	case "off":
		off := false
		spec.PacingOverride = &off
	default:
		fatalf("pacing must be auto, on or off")
	}
	if *fixRate != "" {
		r, err := units.ParseBandwidth(*fixRate)
		if err != nil {
			fatalf("bad -fixed-rate: %v", err)
		}
		spec.FixedPacingRate = r
	}
	if *tcRate != "" {
		r, err := units.ParseBandwidth(*tcRate)
		if err != nil {
			fatalf("bad -tc-rate: %v", err)
		}
		spec.TC.Rate = r
	}

	if *sndbuf != "" {
		n, err := units.ParseDataSize(*sndbuf)
		if err != nil {
			fatalf("bad -sndbuf: %v", err)
		}
		spec.SndBuf = n
	}
	if *appKind != "" {
		wl := apps.Workload{Kind: strings.ToLower(*appKind), Think: *think, Chunk: *chunk, Startup: *startup}
		if *reqSize != "" {
			n, err := units.ParseDataSize(*reqSize)
			if err != nil {
				fatalf("bad -req-size: %v", err)
			}
			wl.ReqSize = n
		}
		if *respSize != "" {
			n, err := units.ParseDataSize(*respSize)
			if err != nil {
				fatalf("bad -resp-size: %v", err)
			}
			wl.RespSize = n
		}
		if *ladder != "" {
			for _, tok := range strings.Split(*ladder, ",") {
				r, err := units.ParseBandwidth(strings.TrimSpace(tok))
				if err != nil {
					fatalf("bad -ladder rung %q: %v", tok, err)
				}
				wl.Ladder = append(wl.Ladder, r)
			}
		}
		if *downRate != "" {
			r, err := units.ParseBandwidth(*downRate)
			if err != nil {
				fatalf("bad -down-rate: %v", err)
			}
			wl.DownRate = r
		}
		spec.Workload = wl
	}
	if *ival > 0 && *seeds == 1 {
		res, err := core.Run(func() core.Spec { s := spec; s.Interval = *ival; return s }())
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println("interval series (CSV):")
		if err := res.Report.WriteIntervalsCSV(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		fmt.Println()
	}
	agg, err := core.RunSeeds(spec, *seeds)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("%s, %d×%v runs\n", spec, *seeds, *dur)
	fmt.Printf("  goodput      %8.1f Mbps", agg.Goodput.Mean()/1e6)
	if *seeds > 1 {
		fmt.Printf("  (±%.1f, 95%% CI)", agg.Goodput.CI95()/1e6)
	}
	fmt.Println()
	fmt.Printf("  avg rtt      %8.2f ms\n", agg.AvgRTT.Mean()/1e6)
	fmt.Printf("  min rtt      %8.2f ms\n", agg.MinRTT.Mean()/1e6)
	fmt.Printf("  retransmits  %8.0f\n", agg.Retransmits.Mean())
	fmt.Printf("  cpu util     %8.0f %%\n", agg.CPUUtil.Mean()*100)
	if agg.AvgIdle.Mean() > 0 {
		fmt.Printf("  skb length   %8.1f Kb/period\n", units.DataSize(agg.AvgSKB.Mean()).Kilobits())
		fmt.Printf("  idle time    %8.2f ms/period\n", agg.AvgIdle.Mean()/1e6)
		fmt.Printf("  expected tx  %8.1f Mbps (skb×conns/idle)\n", agg.ExpectedTx.Mean()/1e6)
	}
	fmt.Printf("  peak sndbuf  %8.1f KB\n", agg.MaxBufOcc.Mean()/1024)
	if a := agg.App; a != nil {
		fmt.Printf("  app %-9s %8d ops", a.Kind, a.Completed)
		if a.Canceled > 0 {
			fmt.Printf("  (%d canceled)", a.Canceled)
		}
		fmt.Println()
		if len(a.LatMs) > 0 {
			fmt.Printf("  latency      %8.1f ms p50, %.1f p90, %.1f p99\n",
				a.LatP(50), a.LatP(90), a.LatP(99))
		}
		if a.Kind == apps.KindStream {
			fmt.Printf("  rebuffer     %8.2f %% (%d stalls)  avg level %.1f Mbps, %d switches\n",
				a.RebufferRatio*100, a.Stalls, a.AvgLevelMbps, a.Switches)
		}
	}
	last0 := agg.Runs[len(agg.Runs)-1].Report
	if len(last0.PerConn) > 1 {
		fmt.Printf("  jain index   %8.3f\n", last0.Fairness.Jain)
	}
	if bd := last0.CPUBreakdown; len(bd) > 0 {
		fmt.Printf("  cpu cycles  ")
		for _, op := range []string{"pacing_timer", "ack_process", "seg_xmit", "skb_xmit", "cc_update", "data_copy"} {
			if f, ok := bd[op]; ok && f >= 0.005 {
				fmt.Printf(" %s %.0f%%", op, f*100)
			}
		}
		fmt.Println()
	}
	// Per-connection goodput spread from the last run, as iperf3 prints.
	last := agg.Runs[len(agg.Runs)-1].Report
	if len(last.PerConn) > 1 {
		min, max := last.PerConn[0], last.PerConn[0]
		for _, g := range last.PerConn {
			if g < min {
				min = g
			}
			if g > max {
				max = g
			}
		}
		fmt.Printf("  per-conn     %v … %v\n", min, max)
	}
	writeTelemetry(agg.Runs[len(agg.Runs)-1], *traceTo, *metrics, *profile, *folded)
}

// writeTelemetry emits the enabled observability outputs of one run: the
// JSONL event trace, the metrics/engine snapshot, and the cycle profile as
// a table and/or folded flamegraph stacks.
func writeTelemetry(res *core.Result, traceTo string, metrics, profile bool, folded string) {
	if res == nil {
		return
	}
	if traceTo != "" && res.Events != nil {
		w := os.Stdout
		if traceTo != "-" {
			f, err := os.Create(traceTo)
			if err != nil {
				fatalf("%v", err)
			}
			defer f.Close()
			w = f
		}
		if err := res.Events.WriteJSONL(w); err != nil {
			fatalf("writing trace: %v", err)
		}
		if n := res.Events.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "mobbr: trace dropped %d events past the buffer cap\n", n)
		}
	}
	if profile && res.Profile != nil {
		fmt.Println("cycle profile (last run):")
		if err := res.Profile.WriteTable(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	}
	if folded != "" && res.Profile != nil {
		f, err := os.Create(folded)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		if err := res.Profile.WriteFolded(f); err != nil {
			fatalf("writing folded stacks: %v", err)
		}
	}
	if metrics {
		if res.Report != nil && res.Report.Metrics != nil {
			fmt.Println("metrics (last run):")
			if err := res.Report.Metrics.Write(os.Stdout); err != nil {
				fatalf("%v", err)
			}
		}
		if res.Engine != nil {
			fmt.Println("engine self-metrics (last run):")
			if err := res.Engine.Write(os.Stdout); err != nil {
				fatalf("%v", err)
			}
		}
	}
}

// runTraceExperiment replays a dataset file or synthesized preset commute
// (-exp trace) through the BBR/BBRv2/Cubic × Low-End/Default grid.
func runTraceExperiment(file, preset string, dur, tick time.Duration, traceSeed int64, seeds, jobs int) {
	tr, err := repro.LoadTrace(file, preset, dur, tick, traceSeed)
	if err != nil {
		fatalf("%v", err)
	}
	e, err := repro.NewTraceExperiment(tr)
	if err != nil {
		fatalf("%v", err)
	}
	rows, err := repro.RunTracePool(e, seeds, jobs)
	if err != nil {
		fatalf("%v", err)
	}
	repro.PrintTrace(os.Stdout, e, rows)
}

// checkParallelism validates the -shards/-j pair. Both knobs multiply:
// every in-flight grid point drives its own shard set, so asking for more
// shard goroutines than the scheduler has processors oversubscribes and the
// lock-step windows serialize anyway — legal, but worth a warning.
func checkParallelism(shards, jobs int) (warn string, err error) {
	if shards < 1 {
		return "", fmt.Errorf("-shards must be at least 1, got %d", shards)
	}
	if jobs < 0 {
		return "", fmt.Errorf("-j must be at least 0 (0 = one per CPU), got %d", jobs)
	}
	procs := runtime.GOMAXPROCS(0)
	effJobs := jobs
	if effJobs == 0 {
		effJobs = procs
	}
	if shards > 1 && shards*effJobs > procs {
		return fmt.Sprintf("-shards %d × %d workers wants %d goroutines but GOMAXPROCS is %d; shard windows will contend",
			shards, effJobs, shards*effJobs, procs), nil
	}
	return "", nil
}

// runExperiment runs one repro experiment by id, like mobbr-repro -exp.
func runExperiment(id string, dur time.Duration, seeds, jobs, shards int, tel telemetry.Config, traceTo string, metrics, profile bool, folded string, showProg bool) {
	if rec := repro.Recovery(); strings.EqualFold(id, rec.ID) {
		rows, err := repro.RunRecoveryPool(rec, seeds, jobs)
		if err != nil {
			fatalf("%v", err)
		}
		repro.PrintRecovery(os.Stdout, rec, rows)
		return
	}
	e, err := repro.ByID(id)
	if err != nil {
		fatalf("%v", err)
	}
	var observer repro.Observer
	var prog *obs.Progress
	if showProg {
		prog = obs.NewProgress(os.Stderr, 0)
		observer = prog
	}
	rows, err := repro.RunExperimentPoolShards(e, dur, seeds, tel, jobs, shards, observer)
	if prog != nil {
		prog.Stop()
	}
	if err != nil {
		fatalf("%v", err)
	}
	repro.Print(os.Stdout, e, rows)
	if len(rows) > 0 {
		writeTelemetry(rows[len(rows)-1].Sample, traceTo, metrics, profile, folded)
	}
}

// runSpecCmd replays one exact spec from a failure's repro line and prints
// a short report. A false return means the failure reproduced (or the spec
// didn't parse); the error text carries its own repro line.
func runSpecCmd(arg string) bool {
	data := []byte(arg)
	switch {
	case arg == "-":
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mobbr: reading spec from stdin: %v\n", err)
			return false
		}
		data = b
	case strings.HasPrefix(arg, "@"):
		b, err := os.ReadFile(arg[1:])
		if err != nil {
			fmt.Fprintf(os.Stderr, "mobbr: %v\n", err)
			return false
		}
		data = b
	}
	spec, err := core.DecodeSpec(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobbr: %v\n", err)
		return false
	}
	res, err := core.Run(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobbr: run failed:\n%v\n", err)
		return false
	}
	r := res.Report
	fmt.Printf("%s: ok\n", spec)
	fmt.Printf("  goodput      %8.1f Mbps\n", r.Goodput.Mbit())
	fmt.Printf("  avg rtt      %8.2f ms\n", float64(r.AvgRTT)/1e6)
	fmt.Printf("  retransmits  %8d\n", r.Retransmits)
	fmt.Printf("  cpu util     %8.0f %%\n", r.CPUUtil*100)
	return true
}

// runChaos drives the chaos soak: explore a pinned seed window, shrink
// every deterministic failure, and report the minimized reproducers. A
// false return means the window produced findings.
func runChaos(n int, seed int64, corpus string) bool {
	findings, err := chaos.Explore(chaos.ExploreOpts{N: n, Seed: seed, Corpus: corpus, Log: os.Stderr})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mobbr: %v\n", err)
		return false
	}
	if len(findings) == 0 {
		fmt.Printf("chaos: %d specs clean (seeds %d..%d)\n", n, seed, seed+int64(n)-1)
		return true
	}
	for _, f := range findings {
		fmt.Printf("chaos: seed %d: %s\n  repro: %s\n", f.GenSeed, f.Outcome.Signature(), f.Repro)
		if f.Path != "" {
			fmt.Printf("  corpus: %s\n", f.Path)
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mobbr: "+format+"\n", args...)
	os.Exit(1)
}
