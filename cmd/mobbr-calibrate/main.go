// Command mobbr-calibrate runs the calibration anchor points the CPU cost
// model was fitted against and prints simulated vs. paper values. Use it
// after touching cpumodel costs, pacing sizing, or CC constants.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
)

type anchor struct {
	name  string
	spec  core.Spec
	paper float64 // Mbps
}

func main() {
	dur := flag.Duration("dur", 5*time.Second, "per-run simulated duration")
	seeds := flag.Int("seeds", 1, "seeds per point")
	flag.Parse()

	off := false
	anchors := []anchor{
		{"P4 High  cubic 1c", core.Spec{CPU: device.HighEnd, CC: "cubic", Conns: 1}, 930},
		{"P4 High  bbr   1c", core.Spec{CPU: device.HighEnd, CC: "bbr", Conns: 1}, 915},
		{"P4 High  bbr  20c", core.Spec{CPU: device.HighEnd, CC: "bbr", Conns: 20}, 915},
		{"P4 Low   cubic 1c", core.Spec{CPU: device.LowEnd, CC: "cubic", Conns: 1}, 364},
		{"P4 Low   cubic20c", core.Spec{CPU: device.LowEnd, CC: "cubic", Conns: 20}, 310},
		{"P4 Low   bbr   1c", core.Spec{CPU: device.LowEnd, CC: "bbr", Conns: 1}, 325},
		{"P4 Low   bbr   5c", core.Spec{CPU: device.LowEnd, CC: "bbr", Conns: 5}, 290},
		{"P4 Low   bbr  20c", core.Spec{CPU: device.LowEnd, CC: "bbr", Conns: 20}, 138},
		{"P4 Low   bbr20c!p", core.Spec{CPU: device.LowEnd, CC: "bbr", Conns: 20, PacingOverride: &off}, 373},
		{"P4 Mid   cubic20c", core.Spec{CPU: device.MidEnd, CC: "cubic", Conns: 20}, 800},
		{"P4 Mid   bbr  20c", core.Spec{CPU: device.MidEnd, CC: "bbr", Conns: 20}, 430},
		{"P4 Def   cubic20c", core.Spec{CPU: device.Default, CC: "cubic", Conns: 20}, 680},
		{"P4 Def   bbr  20c", core.Spec{CPU: device.Default, CC: "bbr", Conns: 20}, 430},
		{"P4 Def   bbr   1c", core.Spec{CPU: device.Default, CC: "bbr", Conns: 1}, 780},
		{"P4 Def   cubic 1c", core.Spec{CPU: device.Default, CC: "cubic", Conns: 1}, 900},
		{"P6 Low   bbr  20c", core.Spec{Device: device.Pixel6, CPU: device.LowEnd, CC: "bbr", Conns: 20}, 140},
		{"P6 Low   cubic20c", core.Spec{Device: device.Pixel6, CPU: device.LowEnd, CC: "cubic", Conns: 20}, 255},
	}

	fmt.Printf("%-20s %10s %10s %8s %8s %8s %8s\n",
		"anchor", "sim Mbps", "paper", "ratio", "rtt ms", "retx", "cpu%")
	for _, a := range anchors {
		a.spec.Duration = *dur
		a.spec.Warmup = *dur / 5
		agg, err := core.RunSeeds(a.spec, *seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sim := agg.GoodputMbps()
		fmt.Printf("%-20s %10.0f %10.0f %8.2f %8.2f %8.0f %8.0f\n",
			a.name, sim, a.paper, sim/a.paper,
			agg.AvgRTT.Mean()/1e6, agg.Retransmits.Mean(), agg.CPUUtil.Mean()*100)
	}
}
