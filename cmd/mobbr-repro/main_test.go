package main

import (
	"runtime"
	"strings"
	"testing"
)

func TestCheckParallelism(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		name     string
		shards   int
		jobs     int
		wantErr  string
		wantWarn bool
	}{
		{name: "serial default", shards: 1, jobs: 0},
		{name: "serial explicit jobs", shards: 1, jobs: 4},
		{name: "zero shards", shards: 0, jobs: 1, wantErr: "-shards must be at least 1"},
		{name: "negative shards", shards: -2, jobs: 1, wantErr: "-shards must be at least 1"},
		{name: "negative jobs", shards: 2, jobs: -1, wantErr: "-j must be at least 0"},
		// 2 shards on a single worker fits any multi-core box.
		{name: "sharded one worker", shards: 2, jobs: 1, wantWarn: procs < 2},
		// shards × effective workers beyond GOMAXPROCS must warn: jobs=0
		// means one worker per CPU, so any shards > 1 oversubscribes.
		{name: "sharded default jobs oversubscribes", shards: 2, jobs: 0, wantWarn: true},
		{name: "sharded explicit oversubscription", shards: 4, jobs: procs, wantWarn: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			warn, err := checkParallelism(tc.shards, tc.jobs)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if (warn != "") != tc.wantWarn {
				t.Errorf("warn = %q, wantWarn = %v (GOMAXPROCS %d)", warn, tc.wantWarn, procs)
			}
		})
	}
}
