// Command mobbr-repro regenerates the paper's tables and figures from the
// simulated testbed and prints paper-style rows.
//
// Usage:
//
//	mobbr-repro                 # run everything
//	mobbr-repro -exp fig8       # run one experiment
//	mobbr-repro -dur 10s -seeds 5
//	mobbr-repro -exp all -archive runA/   # archive every grid point
//	mobbr-repro -rollup         # per-cell (device×cpu×cc×network) view
//	mobbr-repro -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mobbr/internal/obs"
	"mobbr/internal/profiling"
	"mobbr/internal/repro"
	"mobbr/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "", "experiment id (empty = all); see -list")
	dur := flag.Duration("dur", repro.DefaultDuration, "simulated transfer duration per run")
	seeds := flag.Int("seeds", repro.DefaultSeeds, "seeds per point")
	list := flag.Bool("list", false, "list experiment ids and exit")
	trFile := flag.String("trace-file", "", "with -exp trace: replay this dataset trace (.csv, .jsonl)")
	trPre := flag.String("trace-preset", "driving", "with -exp trace: synthesize this commute when no -trace-file")
	trSeed := flag.Int64("trace-seed", 1, "with -exp trace: synthesis seed")
	trTick := flag.Duration("trace-tick", 0, "with -exp trace: synthesis sample spacing (default 100ms)")
	traceTo := flag.String("trace", "", "write the last point's last-seed telemetry events as JSONL to FILE (- = stdout)")
	metrics := flag.Bool("metrics", false, "collect metrics and print the last point's snapshot + engine self-metrics")
	profile := flag.Bool("profile", false, "profile CPU cycles and add the pace% column; prints the last point's table")
	jobs := flag.Int("j", 0, "experiment points run in parallel (0 = one per CPU); results are identical at any -j")
	shards := flag.Int("shards", 1, "engine shards per run: split sender and receiver hosts across cores (conservative lookahead sync); results are identical at any -shards")
	journal := flag.String("journal", "", "checkpoint each finished point to this JSONL file (implies fault-tolerant per-point execution)")
	resume := flag.Bool("resume", false, "with -journal: skip points already checkpointed; resumed output is byte-identical")
	retries := flag.Int("retries", 0, "retry attempts for infra-class failures (wall deadline); deterministic failures never retry")
	keepGoing := flag.Bool("keep-going", false, "contain per-point failures as FAILED rows and run the rest of the grid")
	cpuProf := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole grid to FILE")
	memProf := flag.String("memprofile", "", "write a pprof heap profile at exit to FILE")
	archiveDir := flag.String("archive", "", "write a run archive (manifest + per-point artifacts) under DIR/<exp-id>/; compare archives with mobbr-diff")
	rollup := flag.Bool("rollup", false, "print the per-cell (device×cpu×cc×network) rollup after each experiment table")
	progress := flag.Bool("progress", false, "live stderr progress: per-worker current point, done/failed, events/sec, ETA")
	forceStride := flag.Float64("force-stride", 0, "override every point's pacing stride (deliberate perturbation for mobbr-diff demos)")
	flag.Parse()
	if *exp == "all" {
		*exp = "" // alias: -exp all ≡ run everything
	}
	if warn, err := checkParallelism(*shards, *jobs); err != nil {
		fmt.Fprintln(os.Stderr, "mobbr-repro:", err)
		os.Exit(1)
	} else if warn != "" {
		fmt.Fprintln(os.Stderr, "mobbr-repro: warning:", warn)
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	tel := telemetry.Config{Trace: *traceTo != "", Metrics: *metrics, Profile: *profile}

	var archFlags map[string]string
	if *forceStride > 0 {
		archFlags = map[string]string{"force-stride": fmt.Sprint(*forceStride)}
	}
	archOpts := func(wall time.Duration) repro.ArchiveOpts {
		return repro.ArchiveOpts{
			Dir: *archiveDir, Dur: *dur, Seeds: *seeds,
			Telemetry: tel, Flags: archFlags, Wall: wall,
		}
	}
	// printRollup renders the per-cell view of one assembled run; fatal is
	// reserved for archive I/O, not aggregation.
	printRollup := func(run *obs.Run) {
		if err := obs.WriteRollup(os.Stdout, run, obs.Rollup(run)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	rec := repro.Recovery()
	if *forceStride > 0 {
		for i := range rec.Points {
			rec.Points[i].Spec.Stride = *forceStride
		}
	}
	if *list {
		for _, e := range repro.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		sc := repro.Scale()
		fmt.Printf("%-10s %s\n", sc.ID, sc.Title)
		fmt.Printf("%-10s %s\n", rec.ID, rec.Title)
		fmt.Printf("%-10s %s\n", "trace", "Trace replay: BBR vs BBRv2 vs Cubic over a measured or synthesized commute (-trace-file / -trace-preset)")
		return
	}

	// The recovery experiment has its own runner: its metric comes from the
	// interval series and its duration is fixed by the fault timeline.
	runRecovery := func() {
		recStart := time.Now()
		rows, err := repro.RunRecoveryPool(rec, *seeds, *jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		repro.PrintRecovery(os.Stdout, rec, rows)
		if *archiveDir != "" {
			if err := repro.ArchiveRecovery(rec, rows, archOpts(time.Since(recStart))); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *rollup {
			run, err := repro.BuildRecoveryRun(rec, rows, archOpts(0))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			printRollup(run)
		}
	}

	start := time.Now()
	exps := repro.All()
	if *exp != "" {
		if *exp == "trace" {
			tr, err := repro.LoadTrace(*trFile, *trPre, *dur, *trTick, *trSeed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			e, err := repro.NewTraceExperiment(tr)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if *forceStride > 0 {
				for i := range e.Points {
					e.Points[i].Spec.Stride = *forceStride
				}
			}
			rows, err := repro.RunTracePool(e, *seeds, *jobs)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			repro.PrintTrace(os.Stdout, e, rows)
			if *archiveDir != "" {
				if err := repro.ArchiveTrace(e, rows, archOpts(time.Since(start))); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			if *rollup {
				run, err := repro.BuildTraceRun(e, rows, archOpts(0))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				printRollup(run)
			}
			fmt.Printf("(wall time %v)\n", time.Since(start).Round(time.Millisecond))
			return
		}
		if *exp == rec.ID {
			runRecovery()
			fmt.Printf("(wall time %v)\n", time.Since(start).Round(time.Millisecond))
			return
		}
		e, err := repro.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []repro.Experiment{e}
	}

	resilient := *journal != "" || *resume || *retries > 0 || *keepGoing
	if *resume && *journal == "" {
		fmt.Fprintln(os.Stderr, "-resume needs -journal")
		os.Exit(1)
	}
	if resilient && len(exps) > 1 && *journal != "" {
		fmt.Fprintln(os.Stderr, "-journal covers one experiment; pick it with -exp")
		os.Exit(1)
	}

	failed := 0
	var lastRows []repro.Row
	for _, e := range exps {
		if *forceStride > 0 {
			for i := range e.Points {
				e.Points[i].Spec.Stride = *forceStride
			}
		}
		expStart := time.Now()
		var prog *obs.Progress
		var observer repro.Observer
		if *progress {
			prog = obs.NewProgress(os.Stderr, 0)
			observer = prog
		}
		var rows []repro.Row
		var err error
		if resilient {
			rows, err = repro.RunExperimentResilient(e, repro.RunOpts{
				Dur: *dur, Seeds: *seeds, Telemetry: tel, Workers: *jobs,
				Journal: *journal, Resume: *resume, Retries: *retries,
				Progress: observer, Shards: *shards,
			})
			failed += repro.FailedRows(rows)
		} else {
			rows, err = repro.RunExperimentPoolShards(e, *dur, *seeds, tel, *jobs, *shards, observer)
		}
		if prog != nil {
			prog.Stop()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		repro.Print(os.Stdout, e, rows)
		if *archiveDir != "" {
			if err := repro.ArchiveExperiment(e, rows, archOpts(time.Since(expStart))); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if *rollup {
			run, err := repro.BuildExperimentRun(e, rows, archOpts(0))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			printRollup(run)
		}
		lastRows = rows
	}
	if failed > 0 {
		if *journal != "" {
			fmt.Fprintf(os.Stderr, "%d point(s) failed; repro lines are in %s\n", failed, *journal)
		} else {
			fmt.Fprintf(os.Stderr, "%d point(s) failed; add -journal to keep their repro lines\n", failed)
		}
	}
	if *exp == "" {
		runRecovery()
	}
	if tel.Any() && len(lastRows) > 0 {
		writeTelemetry(lastRows[len(lastRows)-1], *traceTo, *metrics, *profile)
	}
	fmt.Printf("(wall time %v)\n", time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		stopProf() // os.Exit skips the deferred call
		os.Exit(1)
	}
}

// writeTelemetry emits the enabled observability outputs from one row's
// sample run: JSONL trace, cycle-profile table, metrics + engine snapshot.
func writeTelemetry(row repro.Row, traceTo string, metrics, profile bool) {
	res := row.Sample
	if res == nil {
		return
	}
	if traceTo != "" && res.Events != nil {
		w := os.Stdout
		if traceTo != "-" {
			f, err := os.Create(traceTo)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := res.Events.WriteJSONL(w); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if profile && res.Profile != nil {
		fmt.Printf("cycle profile (%s, last seed):\n", row.Point.Label)
		if err := res.Profile.WriteTable(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if metrics {
		if res.Report != nil && res.Report.Metrics != nil {
			fmt.Printf("metrics (%s, last seed):\n", row.Point.Label)
			if err := res.Report.Metrics.Write(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if res.Engine != nil {
			fmt.Println("engine self-metrics:")
			if err := res.Engine.Write(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

// checkParallelism validates the -shards/-j pair. Both knobs multiply:
// every in-flight grid point drives its own shard set, so asking for more
// shard goroutines than the scheduler has processors oversubscribes and the
// lock-step windows serialize anyway — legal, but worth a warning.
func checkParallelism(shards, jobs int) (warn string, err error) {
	if shards < 1 {
		return "", fmt.Errorf("-shards must be at least 1, got %d", shards)
	}
	if jobs < 0 {
		return "", fmt.Errorf("-j must be at least 0 (0 = one per CPU), got %d", jobs)
	}
	procs := runtime.GOMAXPROCS(0)
	effJobs := jobs
	if effJobs == 0 {
		effJobs = procs
	}
	if shards > 1 && shards*effJobs > procs {
		return fmt.Sprintf("-shards %d × %d workers wants %d goroutines but GOMAXPROCS is %d; shard windows will contend",
			shards, effJobs, shards*effJobs, procs), nil
	}
	return "", nil
}
