// Command mobbr-repro regenerates the paper's tables and figures from the
// simulated testbed and prints paper-style rows.
//
// Usage:
//
//	mobbr-repro                 # run everything
//	mobbr-repro -exp fig8       # run one experiment
//	mobbr-repro -dur 10s -seeds 5
//	mobbr-repro -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mobbr/internal/repro"
)

func main() {
	exp := flag.String("exp", "", "experiment id (empty = all); see -list")
	dur := flag.Duration("dur", repro.DefaultDuration, "simulated transfer duration per run")
	seeds := flag.Int("seeds", repro.DefaultSeeds, "seeds per point")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	rec := repro.Recovery()
	if *list {
		for _, e := range repro.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		fmt.Printf("%-10s %s\n", rec.ID, rec.Title)
		return
	}

	// The recovery experiment has its own runner: its metric comes from the
	// interval series and its duration is fixed by the fault timeline.
	runRecovery := func() {
		rows, err := repro.RunRecovery(rec, *seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		repro.PrintRecovery(os.Stdout, rec, rows)
	}

	start := time.Now()
	exps := repro.All()
	if *exp != "" {
		if *exp == rec.ID {
			runRecovery()
			fmt.Printf("(wall time %v)\n", time.Since(start).Round(time.Millisecond))
			return
		}
		e, err := repro.ByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []repro.Experiment{e}
	}

	for _, e := range exps {
		rows, err := repro.RunExperiment(e, *dur, *seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		repro.Print(os.Stdout, e, rows)
	}
	if *exp == "" {
		runRecovery()
	}
	fmt.Printf("(wall time %v)\n", time.Since(start).Round(time.Millisecond))
}
