// Command mobbr-diff compares two run archives written by
// mobbr-repro -archive and reports per-cell regressions with noise-aware
// gating: a delta counts only when it clears both the combined 95%
// confidence interval of the two runs' means and a relative threshold, so
// seed wobble does not fail a build but a real pacing regression does.
//
// Usage:
//
//	mobbr-repro -exp all -archive runA
//	... change something ...
//	mobbr-repro -exp all -archive runB
//	mobbr-diff runA runB            # exit 1 when any cell regressed
//	mobbr-diff -all runA runB       # print every aligned cell
//	mobbr-diff -rel 0.10 runA runB  # require a 10% move
//
// Diffing an archive against itself prints nothing and exits 0 — the CI
// self-check.
package main

import (
	"flag"
	"fmt"
	"os"

	"mobbr/internal/obs"
)

func main() {
	rel := flag.Float64("rel", 0.05, "relative-change floor: deltas below this fraction of the baseline never gate")
	retxAbs := flag.Float64("retx-abs", 50, "absolute retransmission floor: retx deltas below this never gate")
	all := flag.Bool("all", false, "print every aligned cell, not only significant ones")
	quiet := flag.Bool("q", false, "suppress the summary line; table and exit code only")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: mobbr-diff [flags] <baseline-archive> <candidate-archive>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	a, err := obs.LoadArchive(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	b, err := obs.LoadArchive(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	deltas, sum, err := obs.Diff(a, b, obs.DiffOpts{Rel: *rel, RetxAbs: *retxAbs, All: *all})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := obs.WriteDeltas(os.Stdout, deltas); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !*quiet && (len(deltas) > 0 || sum.Unmatched > 0 || len(sum.SkippedExps) > 0) {
		fmt.Printf("mobbr-diff: %d experiment(s), %d cell(s): %d regressed, %d improved",
			sum.Experiments, sum.Cells, sum.Regressed, sum.Improved)
		if sum.Unmatched > 0 {
			fmt.Printf(", %d point(s) unmatched", sum.Unmatched)
		}
		if len(sum.SkippedExps) > 0 {
			fmt.Printf(", skipped %v (present in one archive only)", sum.SkippedExps)
		}
		fmt.Println()
	}
	if sum.Regressed > 0 {
		os.Exit(1)
	}
}
