package core

import (
	"errors"

	"mobbr/internal/check"
	"mobbr/internal/sim"
)

// Failure classes. Every run failure maps to exactly one stable class; the
// resilient grid runner and the chaos harness use the class (plus the first
// violated invariant rule) as the failure signature for retry decisions,
// journal rows and shrink equivalence.
const (
	// FailPanic is a panic contained by a runner's per-point guard.
	FailPanic = "panic"
	// FailViolation is a structured invariant violation (check.Error).
	FailViolation = "violation"
	// FailMaxEvents is the simulator event budget tripping.
	FailMaxEvents = "limit-max-events"
	// FailWallClock is the real-time deadline tripping — the only class
	// that depends on machine load rather than on the spec.
	FailWallClock = "limit-wall-clock"
	// FailStall is the virtual-time progress watchdog tripping.
	FailStall = "limit-stall"
	// FailError is any other error (validation, construction).
	FailError = "error"
)

// RunError ties a run failure to the exact defaulted spec that produced it,
// so every layer up the call chain — grid runners, the chaos harness, the
// CLI — can print or journal a one-command reproduction without threading
// the spec separately. Error() appends the repro line to the cause.
type RunError struct {
	// Spec is the defaulted spec as Run executed it (exact seed included).
	Spec Spec
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *RunError) Error() string { return e.Err.Error() + "\nrepro: " + ReproLine(e.Spec) }

// Unwrap exposes the cause to errors.As/Is.
func (e *RunError) Unwrap() error { return e.Err }

// ClassifyFailure maps a Run error to its failure class, plus the first
// violated invariant rule when the class is FailViolation (the rule makes
// two different checker trips distinguishable signatures).
func ClassifyFailure(err error) (class, rule string) {
	if err == nil {
		return "", ""
	}
	var ce *check.Error
	if errors.As(err, &ce) {
		return FailViolation, ce.FirstRule()
	}
	var le *sim.LimitError
	if errors.As(err, &le) {
		switch le.Reason {
		case "max-events":
			return FailMaxEvents, ""
		case "wall-clock":
			return FailWallClock, ""
		case "stall":
			return FailStall, ""
		}
	}
	return FailError, ""
}

// InfraFailure reports whether a failure class reflects the machine rather
// than the spec: a loaded host can blow the wall deadline on a spec that is
// fine, so such failures are worth retrying. Everything else is
// deterministic per seed — retrying would reproduce it exactly.
func InfraFailure(class string) bool { return class == FailWallClock }
