package core

import (
	"reflect"
	"testing"
	"time"

	"mobbr/internal/apps"
	"mobbr/internal/device"
	"mobbr/internal/netem"
	"mobbr/internal/units"
)

// short returns a spec with a short duration for fast integration tests.
func short(spec Spec) Spec {
	spec.Duration = 1500 * time.Millisecond
	spec.Warmup = 300 * time.Millisecond
	return spec
}

func mbps(b float64) float64 { return b / 1e6 }

func TestRunUnknownCC(t *testing.T) {
	if _, err := Run(Spec{CC: "vegas"}); err == nil {
		t.Fatal("expected error for unknown congestion control")
	}
}

func TestFactoriesComplete(t *testing.T) {
	f := Factories()
	for _, name := range []string{"cubic", "bbr", "bbr2"} {
		factory, ok := f[name]
		if !ok {
			t.Fatalf("missing factory %q", name)
		}
		if cc := factory(); cc.Name() != name {
			t.Errorf("factory %q builds %q", name, cc.Name())
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	spec := short(Spec{CPU: device.LowEnd, CC: "bbr", Conns: 4, Seed: 42})
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Goodput != b.Report.Goodput {
		t.Errorf("same seed, different goodput: %v vs %v", a.Report.Goodput, b.Report.Goodput)
	}
	if a.Report.Retransmits != b.Report.Retransmits {
		t.Errorf("same seed, different retransmits")
	}
}

func TestSeedsDiffer(t *testing.T) {
	s1 := short(Spec{CPU: device.LowEnd, CC: "bbr", Conns: 4, Seed: 1})
	s2 := s1
	s2.Seed = 2
	a, _ := Run(s1)
	b, _ := Run(s2)
	if a.Report.Goodput == b.Report.Goodput {
		t.Log("warning: different seeds produced identical goodput (possible but unlikely)")
	}
}

// TestHeadlineOrdering is the paper's core finding as an invariant: on the
// Low-End configuration with many connections, Cubic must clearly beat BBR,
// while on High-End both must be near line rate.
func TestHeadlineOrdering(t *testing.T) {
	run := func(cfg device.Config, cc string, conns int) float64 {
		t.Helper()
		res, err := Run(short(Spec{CPU: cfg, CC: cc, Conns: conns}))
		if err != nil {
			t.Fatal(err)
		}
		return mbps(float64(res.Report.Goodput))
	}
	lowCubic := run(device.LowEnd, "cubic", 20)
	lowBBR := run(device.LowEnd, "bbr", 20)
	if lowBBR >= lowCubic*0.8 {
		t.Errorf("Low-End 20conns: BBR %.0f not clearly below Cubic %.0f", lowBBR, lowCubic)
	}
	highCubic := run(device.HighEnd, "cubic", 1)
	highBBR := run(device.HighEnd, "bbr", 1)
	if highCubic < 850 || highBBR < 850 {
		t.Errorf("High-End not near line rate: cubic %.0f, bbr %.0f", highCubic, highBBR)
	}
}

// TestPacingOffHelpsGoodputHurtsRTT checks §5.2's two-sided result.
func TestPacingOffHelpsGoodputHurtsRTT(t *testing.T) {
	off := false
	on, err := Run(short(Spec{CPU: device.LowEnd, CC: "bbr", Conns: 20}))
	if err != nil {
		t.Fatal(err)
	}
	no, err := Run(short(Spec{CPU: device.LowEnd, CC: "bbr", Conns: 20, PacingOverride: &off}))
	if err != nil {
		t.Fatal(err)
	}
	if no.Report.Goodput <= on.Report.Goodput {
		t.Errorf("pacing-off goodput %v not above pacing-on %v",
			no.Report.Goodput, on.Report.Goodput)
	}
	if no.Report.AvgRTT <= on.Report.AvgRTT {
		t.Errorf("pacing-off RTT %v not above pacing-on %v",
			no.Report.AvgRTT, on.Report.AvgRTT)
	}
}

// TestStrideImprovesConstrainedGoodput checks §6.2: a moderate stride must
// beat stock pacing on a CPU-constrained configuration.
func TestStrideImprovesConstrainedGoodput(t *testing.T) {
	stock, err := Run(short(Spec{CPU: device.LowEnd, CC: "bbr", Conns: 20}))
	if err != nil {
		t.Fatal(err)
	}
	strided, err := Run(short(Spec{CPU: device.LowEnd, CC: "bbr", Conns: 20, Stride: 10}))
	if err != nil {
		t.Fatal(err)
	}
	if strided.Report.Goodput <= stock.Report.Goodput {
		t.Errorf("stride 10x goodput %v not above stock %v",
			strided.Report.Goodput, stock.Report.Goodput)
	}
}

// TestCellularParity checks Appendix A.1: over LTE the CC choice must not
// matter much, and no retransmission storm may occur.
func TestCellularParity(t *testing.T) {
	spec := Spec{CPU: device.LowEnd, Device: device.Pixel6, Conns: 5,
		Network: Cellular, Duration: 6 * time.Second, Warmup: time.Second}
	spec.CC = "cubic"
	cu, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.CC = "bbr"
	bb, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	cg, bg := mbps(float64(cu.Report.Goodput)), mbps(float64(bb.Report.Goodput))
	if cg < 14 || bg < 14 {
		t.Errorf("LTE goodput collapsed: cubic %.1f, bbr %.1f (want ~18)", cg, bg)
	}
	if ratio := bg / cg; ratio < 0.8 || ratio > 1.25 {
		t.Errorf("LTE parity violated: bbr/cubic = %.2f", ratio)
	}
	if cu.Report.Retransmits > 2000 {
		t.Errorf("cubic LTE retransmission storm: %d", cu.Report.Retransmits)
	}
}

// TestShallowBufferLossContrast checks §5.2.3's sign: without pacing the
// 10-packet buffer must see far more retransmissions.
func TestShallowBufferLossContrast(t *testing.T) {
	off := false
	tc := netem.TC{Rate: 600 * units.Mbps, QueuePackets: 10}
	on, err := Run(short(Spec{CPU: device.LowEnd, CC: "bbr", Conns: 20, TC: tc}))
	if err != nil {
		t.Fatal(err)
	}
	no, err := Run(short(Spec{CPU: device.LowEnd, CC: "bbr", Conns: 20, TC: tc, PacingOverride: &off}))
	if err != nil {
		t.Fatal(err)
	}
	if no.Report.Retransmits < on.Report.Retransmits+50 {
		t.Errorf("shallow-buffer retransmits: off=%d on=%d, want off far higher",
			no.Report.Retransmits, on.Report.Retransmits)
	}
}

// TestMasterModuleKnobs drives the §5.1 overrides end to end.
func TestMasterModuleKnobs(t *testing.T) {
	res, err := Run(short(Spec{
		CPU: device.LowEnd, CC: "bbr", Conns: 20,
		FixedCwnd: 70, FixedPacingRate: 16 * units.Mbps, DisableModel: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Pinned to 16 Mbps ×20 = 320 theoretical; pacing overhead keeps it
	// well below, which is the paper's point.
	g := mbps(float64(res.Report.Goodput))
	if g <= 0 || g > 330 {
		t.Errorf("fixed-rate goodput = %.1f, want within (0, 320]", g)
	}
}

func TestWiFiRuns(t *testing.T) {
	res, err := Run(short(Spec{CPU: device.LowEnd, Device: device.Pixel6,
		CC: "bbr2", Conns: 5, Network: WiFi}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Goodput == 0 {
		t.Fatal("WiFi run delivered nothing")
	}
}

func TestRunSeedsAggregates(t *testing.T) {
	agg, err := RunSeeds(short(Spec{CPU: device.HighEnd, CC: "cubic", Conns: 2}), 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Goodput.N() != 3 {
		t.Fatalf("aggregated %d runs, want 3", agg.Goodput.N())
	}
	if len(agg.Runs) != 3 {
		t.Fatalf("kept %d run reports, want 3", len(agg.Runs))
	}
	if agg.GoodputMbps() < 500 {
		t.Errorf("High-End cubic mean goodput = %.0f Mbps, suspiciously low", agg.GoodputMbps())
	}
}

func TestNetworkString(t *testing.T) {
	for n, want := range map[Network]string{Ethernet: "ethernet", WiFi: "wifi", Cellular: "cellular"} {
		if n.String() != want {
			t.Errorf("%d.String() = %q, want %q", n, n.String(), want)
		}
	}
}

func TestHardwarePacingBeatsStock(t *testing.T) {
	stock, err := Run(short(Spec{CPU: device.LowEnd, CC: "bbr", Conns: 20}))
	if err != nil {
		t.Fatal(err)
	}
	hw, err := Run(short(Spec{CPU: device.LowEnd, CC: "bbr", Conns: 20, HardwarePacing: true}))
	if err != nil {
		t.Fatal(err)
	}
	if hw.Report.Goodput <= stock.Report.Goodput {
		t.Errorf("hw pacing %v not above stock %v", hw.Report.Goodput, stock.Report.Goodput)
	}
	// The offload must not charge pacing-timer cycles.
	if share := hw.Report.CPUBreakdown["pacing_timer"]; share > 0.001 {
		t.Errorf("hw-offload run still burns %.1f%% on pacing timers", share*100)
	}
	if share := stock.Report.CPUBreakdown["pacing_timer"]; share < 0.1 {
		t.Errorf("stock run shows only %.1f%% pacing-timer share", share*100)
	}
}

func TestFiveGGapReappears(t *testing.T) {
	mk := func(cc string) float64 {
		res, err := Run(Spec{
			Device: device.Pixel6, CPU: device.LowEnd, CC: cc, Conns: 20,
			Network: Cellular5G, SndBuf: units.MB,
			Duration: 3 * time.Second, Warmup: 500 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mbps(float64(res.Report.Goodput))
	}
	cubicG, bbrG := mk("cubic"), mk("bbr")
	if cubicG < 150 {
		t.Errorf("cubic 5G = %.0f, want near the 200Mbps link", cubicG)
	}
	if bbrG > cubicG*0.85 {
		t.Errorf("5G pacing gap missing: bbr %.0f vs cubic %.0f", bbrG, cubicG)
	}
}

func TestCCMixViaCommaList(t *testing.T) {
	res, err := Run(short(Spec{CPU: device.HighEnd, CC: "bbr,cubic", Conns: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.PerConn) != 4 {
		t.Fatalf("per-conn = %d", len(res.Report.PerConn))
	}
	if _, err := Run(short(Spec{CC: "bbr,nope"})); err == nil {
		t.Fatal("bad mix member must error")
	}
}

func TestECNReducesRetransmits(t *testing.T) {
	tc := netem.TC{Rate: 600 * units.Mbps, QueuePackets: 60}
	plain, err := Run(short(Spec{CPU: device.HighEnd, CC: "bbr2", Conns: 20, TC: tc}))
	if err != nil {
		t.Fatal(err)
	}
	tc.ECNThreshold = 15
	ecn, err := Run(short(Spec{CPU: device.HighEnd, CC: "bbr2", Conns: 20, TC: tc}))
	if err != nil {
		t.Fatal(err)
	}
	if ecn.Report.Retransmits*2 > plain.Report.Retransmits && plain.Report.Retransmits > 20 {
		t.Errorf("ECN retransmits %d not well below drop-only %d",
			ecn.Report.Retransmits, plain.Report.Retransmits)
	}
	if float64(ecn.Report.Goodput) < float64(plain.Report.Goodput)*0.9 {
		t.Errorf("ECN goodput %v fell below drop-only %v", ecn.Report.Goodput, plain.Report.Goodput)
	}
}

// TestWorkloadRunEndToEnd: an app workload spec runs through the full core
// pipeline — checker armed, pool on — and reports application stats with a
// deterministic outcome per seed.
func TestWorkloadRunEndToEnd(t *testing.T) {
	for _, wl := range []apps.Workload{
		{Kind: apps.KindReqRep, ReqSize: 64 * units.KB, Think: 10 * time.Millisecond},
		{Kind: apps.KindStream},
	} {
		spec := short(Spec{
			Device:   device.Pixel4,
			CC:       "bbr",
			Conns:    2,
			TC:       netem.TC{Rate: 40 * units.Mbps, Delay: 5 * time.Millisecond},
			Check:    true,
			Seed:     11,
			Workload: wl,
		})
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", wl.Kind, err)
		}
		if res.App == nil {
			t.Fatalf("%s: Result.App is nil for a workload spec", wl.Kind)
		}
		if res.App.Completed == 0 {
			t.Fatalf("%s: no operations completed", wl.Kind)
		}
		if res.App.LatP(99) <= 0 {
			t.Errorf("%s: p99 latency %v, want > 0", wl.Kind, res.App.LatP(99))
		}
		again, err := Run(spec)
		if err != nil {
			t.Fatalf("%s rerun: %v", wl.Kind, err)
		}
		if !reflect.DeepEqual(res.App, again.App) {
			t.Errorf("%s: app stats differ across identical runs", wl.Kind)
		}
		if !reflect.DeepEqual(res.Report, again.Report) {
			t.Errorf("%s: transport reports differ across identical runs", wl.Kind)
		}
	}

	// Bulk specs keep App nil.
	res, err := Run(short(Spec{CC: "cubic", Conns: 1, Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if res.App != nil {
		t.Error("bulk run populated Result.App")
	}
}

// TestWorkloadAggregate: RunSeeds pools latency samples across seeds.
func TestWorkloadAggregate(t *testing.T) {
	spec := short(Spec{CC: "cubic", Conns: 1, Seed: 1,
		TC:       netem.TC{Rate: 40 * units.Mbps, Delay: 5 * time.Millisecond},
		Workload: apps.Workload{Kind: apps.KindReqRep, ReqSize: 64 * units.KB, Think: 10 * time.Millisecond}})
	agg, err := RunSeeds(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.App == nil {
		t.Fatal("Aggregate.App nil for a workload grid point")
	}
	var want int64
	for _, res := range agg.Runs {
		want += res.App.Completed
	}
	if agg.App.Completed != want {
		t.Fatalf("aggregate completed %d, want %d", agg.App.Completed, want)
	}
	if int64(len(agg.App.LatMs)) != want {
		t.Fatalf("pooled %d latency samples, want %d", len(agg.App.LatMs), want)
	}
}
