package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"mobbr/internal/apps"
	"mobbr/internal/device"
	"mobbr/internal/flows"
	"mobbr/internal/units"
)

// churnSpec is a small, fast churn run: mice-only traffic over the wired
// LAN, sized so thousands of flows open and close within a couple of
// simulated seconds.
func churnSpec() Spec {
	return Spec{
		CPU:      device.Default,
		CC:       "cubic",
		Duration: 2 * time.Second,
		Seed:     7,
		Flows: &flows.Config{
			ArrivalRate:   3000,
			MaxLive:       32,
			InitialFlows:  32,
			MiceBytes:     2 * units.KB,
			ElephantShare: 0.01,
		},
	}
}

// TestFlowsChurnDeterminism: the churn workload is seeded like everything
// else — two runs of the same spec must agree on every counter, every FCT
// sample, and the goodput figure.
func TestFlowsChurnDeterminism(t *testing.T) {
	spec := churnSpec()
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Flows == nil || b.Flows == nil {
		t.Fatal("Result.Flows not populated for a churn spec")
	}
	if !reflect.DeepEqual(a.Flows, b.Flows) {
		t.Errorf("same seed, different churn stats:\n a %+v\n b %+v", a.Flows, b.Flows)
	}
	if a.Report.Goodput != b.Report.Goodput {
		t.Errorf("same seed, different goodput: %v vs %v", a.Report.Goodput, b.Report.Goodput)
	}
	if a.Flows.Completed == 0 {
		t.Error("no flow completed; churn spec too tight to exercise anything")
	}
}

// TestFlowsChurnPoolsBalanced is the 10k-cycle leak gate: thousands of
// open/close cycles through the conn pool with the invariant checker armed,
// and at the end both the conn pool and the packet pool balance to zero.
func TestFlowsChurnPoolsBalanced(t *testing.T) {
	spec := churnSpec()
	spec.Duration = 5 * time.Second
	spec.Flows.ArrivalRate = 4000
	spec.Flows.MaxLive = 64
	spec.Flows.InitialFlows = 64
	spec.Check = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	fs := res.Flows
	if fs.Started < 10_000 {
		t.Fatalf("only %d flows started, want ≥ 10000 open/close cycles", fs.Started)
	}
	if !fs.Pool.Balanced() {
		t.Fatalf("conn pool not balanced after run: %+v", fs.Pool)
	}
	if fs.Pool.Gets != int(fs.Started) || fs.Pool.Puts != fs.Pool.Gets {
		t.Fatalf("pool gets/puts %d/%d, want both equal to started %d",
			fs.Pool.Gets, fs.Pool.Puts, fs.Started)
	}
	if fs.Pool.Created > fs.Pool.OutstandingHW {
		t.Errorf("pool created %d pairs, more than peak concurrency %d — reuse is broken",
			fs.Pool.Created, fs.Pool.OutstandingHW)
	}
	if got := fs.Started - fs.Completed - fs.Failed - int64(fs.Canceled); got != 0 {
		t.Errorf("flow census does not close: started %d != completed %d + failed %d + canceled %d",
			fs.Started, fs.Completed, fs.Failed, fs.Canceled)
	}
	if rep := res.Report; rep.Pool.OutstandingPackets != 0 || rep.Pool.OutstandingAcks != 0 {
		t.Errorf("segment pool leaks %d packets / %d acks",
			rep.Pool.OutstandingPackets, rep.Pool.OutstandingAcks)
	}
}

// TestFlowsTombstonedAcks is the idempotent-close regression test for the
// churn edge: under loss plus reordering, a delayed original and its
// retransmission race, the receiver sees the data twice, and the second
// copy's duplicate ACK is generated after the cumulative ACK that completed
// (and retired) the flow. That late ACK must hit the path's tombstone
// (counted), never a recycled connection — and late data for a removed flow
// must land in the demux orphan count. The armed checker proves neither
// leaks pool objects nor corrupts a recycled conn's accounting.
func TestFlowsTombstonedAcks(t *testing.T) {
	spec := churnSpec()
	spec.TC.Loss = 0.03
	spec.TC.ReorderJitter = 3 * time.Millisecond
	spec.Duration = 3 * time.Second
	spec.Check = true
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows.Completed == 0 {
		t.Fatal("no completions; the tombstone path was never exercised")
	}
	if res.Flows.TombstonedAcks == 0 {
		t.Error("no tombstoned ACKs; the late-ACK retirement edge is not being exercised")
	}
	if res.Flows.Orphans == 0 {
		t.Error("no orphaned data packets; the late-data retirement edge is not being exercised")
	}
}

// TestFlowsSpecJSONRoundTrip proves the churn config survives the spec
// codec field-for-field and encodes deterministically.
func TestFlowsSpecJSONRoundTrip(t *testing.T) {
	spec := Spec{
		Device:   device.Pixel6,
		CPU:      device.MidEnd,
		CC:       "bbr",
		Duration: 1300 * time.Millisecond,
		Network:  WiFi,
		Seed:     42,
		Check:    true,
		Flows: &flows.Config{
			ArrivalRate:      2500,
			MaxLive:          4096,
			InitialFlows:     512,
			MiceBytes:        8 * units.KB,
			MiceSigma:        0.7,
			ElephantShare:    0.08,
			ParetoAlpha:      1.5,
			ElephantMinBytes: 2 * units.MB,
			MaxFlowBytes:     32 * units.MB,
			FlowTableSlots:   256,
			OffloadThreshold: 16,
		},
	}
	data, err := EncodeSpec(spec)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSpec(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("round trip diverged:\n got  %+v\n want %+v", got, spec)
	}
	again, err := EncodeSpec(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(again) != string(data) {
		t.Fatalf("re-encode diverged:\n first  %s\n second %s", data, again)
	}
}

// TestFlowsValidation: the churn workload excludes the fixed-set-only
// features, and malformed flows configs are rejected before assembly.
func TestFlowsValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"workload", func(s *Spec) { s.Workload = apps.Workload{Kind: apps.KindReqRep} }, "mutually exclusive"},
		{"inject corrupt", func(s *Spec) { s.Inject = Inject{Kind: InjectCorruptInflight} }, "fixed connection set"},
		{"negative initial", func(s *Spec) { s.Flows.InitialFlows = -1 }, "initial flows"},
		{"elephant share", func(s *Spec) { s.Flows.ElephantShare = 1.5 }, "elephant share"},
		{"negative slots", func(s *Spec) { s.Flows.FlowTableSlots = -2 }, "flow-table slots"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := churnSpec()
			tc.mut(&spec)
			err := spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestFlowsRunSeedsMerge: the multi-seed aggregate folds churn stats —
// counters sum and FCT samples pool across seeds.
func TestFlowsRunSeedsMerge(t *testing.T) {
	spec := churnSpec()
	spec.Duration = time.Second
	agg, err := RunSeeds(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Flows == nil {
		t.Fatal("Aggregate.Flows not populated")
	}
	var started int64
	var fct int
	for _, r := range agg.Runs {
		started += r.Flows.Started
		fct += len(r.Flows.FCTms)
	}
	if agg.Flows.Started != started {
		t.Errorf("merged started %d != per-seed sum %d", agg.Flows.Started, started)
	}
	if len(agg.Flows.FCTms) != fct {
		t.Errorf("merged FCT samples %d != per-seed sum %d", len(agg.Flows.FCTms), fct)
	}
}
