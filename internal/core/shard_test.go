package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mobbr/internal/device"
	"mobbr/internal/iperf"
	"mobbr/internal/seg"
	"mobbr/internal/telemetry"
)

// maskAllocStats zeroes the pool counters that reflect allocation strategy
// rather than simulation behaviour. With per-shard arenas, frees made on the
// receiver shard only splice back to the sender arena at the next barrier, so
// the sender occasionally allocates fresh objects a serial run would have
// recycled: News and the per-arena MaxOutstanding sum legitimately differ.
// Conservation counters (Gets/Puts/Outstanding/Violations) must still match
// exactly and stay under DeepEqual.
func maskAllocStats(r *iperf.Report) *iperf.Report {
	c := *r
	c.Pool = seg.PoolStats{
		PacketGets: r.Pool.PacketGets, PacketPuts: r.Pool.PacketPuts,
		AckGets: r.Pool.AckGets, AckPuts: r.Pool.AckPuts,
		OutstandingPackets: r.Pool.OutstandingPackets,
		OutstandingAcks:    r.Pool.OutstandingAcks,
		Violations:         r.Pool.Violations,
	}
	return &c
}

// shardBase is the differential workhorse spec: the golden-trace scenario,
// which exercises warmup, interval reporting, pacing, GRO, and the invariant
// checker in half a second.
func shardBase() Spec {
	return Spec{
		Device: device.Pixel4, CPU: device.LowEnd, CC: "bbr",
		Conns: 2, Network: Ethernet,
		Duration: 500 * time.Millisecond, Warmup: 100 * time.Millisecond,
		Seed:  7,
		Check: true,
	}
}

// TestShardedTraceMatchesGolden is the sharded twin of
// TestTraceMatchesGolden: with the receivers on their own shard the
// telemetry trace must still be byte-identical to the serial golden. This is
// the strongest identity pin — every RNG draw, every event interleave, every
// sampled cwnd/srtt value replayed exactly.
func TestShardedTraceMatchesGolden(t *testing.T) {
	spec := shardBase()
	spec.Check = false
	spec.Shards = 2
	spec.Telemetry = telemetry.Config{Trace: true}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := res.Events.WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got.Bytes(), want) {
		return
	}
	gl := bytes.Split(got.Bytes(), []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("sharded trace diverges from golden at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("sharded trace length differs from golden: got %d lines, want %d", len(gl), len(wl))
}

// TestShardedMatchesSerial runs the same specs serial and sharded and
// requires deeply equal results — reports, pool census, checker outcome, and
// the exact processed-event count — across networks and CC schemes.
func TestShardedMatchesSerial(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"bbr-ethernet", func(s *Spec) {}},
		{"cubic-wifi", func(s *Spec) { s.CC = "cubic"; s.Network = WiFi }},
		{"bbr-lte", func(s *Spec) { s.Network = Cellular; s.Duration = 2 * time.Second; s.Warmup = 400 * time.Millisecond }},
		{"bbr2-5g", func(s *Spec) { s.CC = "bbr2"; s.Network = Cellular5G; s.Duration = 1 * time.Second; s.Warmup = 200 * time.Millisecond }},
		{"mix-4conns", func(s *Spec) { s.CC = "bbr,cubic"; s.Conns = 4; s.Seed = 11 }},
		// Interval reporting runs as a barrier global when sharded; its rows
		// must land at the same virtual times with the same counters.
		{"intervals", func(s *Spec) { s.Interval = 100 * time.Millisecond }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := shardBase()
			tc.mut(&spec)
			serial, err := Run(spec)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			spec.Shards = 2
			sharded, err := Run(spec)
			if err != nil {
				t.Fatalf("sharded: %v", err)
			}
			if !reflect.DeepEqual(maskAllocStats(serial.Report), maskAllocStats(sharded.Report)) {
				t.Errorf("reports differ:\nserial:  %+v\nsharded: %+v", serial.Report, sharded.Report)
			}
			if serial.Processed != sharded.Processed {
				t.Errorf("processed events differ: serial %d, sharded %d", serial.Processed, sharded.Processed)
			}
		})
	}
}

// TestShardedDeterministic pins run-to-run reproducibility of the concurrent
// path itself: two sharded runs of one spec must agree exactly.
func TestShardedDeterministic(t *testing.T) {
	spec := shardBase()
	spec.Shards = 2
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Errorf("sharded runs differ:\nfirst:  %+v\nsecond: %+v", a.Report, b.Report)
	}
	if a.Processed != b.Processed {
		t.Errorf("processed events differ: %d vs %d", a.Processed, b.Processed)
	}
}

// TestShardedClamp checks that shard counts above the host count behave like
// Shards=2 — the bulk topology only has two hosts to split.
func TestShardedClamp(t *testing.T) {
	spec := shardBase()
	spec.Shards = 2
	two, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = 8
	eight, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(two.Report, eight.Report) {
		t.Errorf("Shards=8 diverged from Shards=2")
	}
}

// TestShardedSerialFallback: features bound to a single engine must silently
// run serial even when Shards is set — same results as Shards=0.
func TestShardedSerialFallback(t *testing.T) {
	spec := shardBase()
	spec.DisablePool = true
	serial, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = 2
	if spec.sharded() {
		t.Fatal("DisablePool spec should not report sharded")
	}
	fallback, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Report, fallback.Report) {
		t.Errorf("fallback run diverged from serial")
	}
}

// TestShardedValidation covers the new Validate rules.
func TestShardedValidation(t *testing.T) {
	spec := shardBase()
	spec.Shards = -1
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "negative shard count") {
		t.Errorf("negative shards: got %v", err)
	}
	spec = shardBase()
	spec.Inject = Inject{Kind: InjectLeakMailbox, At: 50 * time.Millisecond}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "sharded run") {
		t.Errorf("leak-mailbox on serial spec: got %v", err)
	}
	spec.Shards = 2
	if err := spec.Validate(); err != nil {
		t.Errorf("leak-mailbox on sharded spec: %v", err)
	}
}

// TestShardedLeakMailboxCaught injects a packet leak inside the cross-shard
// mailbox and requires the invariant checker to flag it. The audit fires
// every check.DefaultInterval (50ms) at barrier cuts, so a leak armed at
// 100ms into a 500ms run must surface as a pool violation well before the
// end — proving the checker's census really covers cross-shard custody.
func TestShardedLeakMailboxCaught(t *testing.T) {
	spec := shardBase()
	spec.Shards = 2
	spec.Inject = Inject{Kind: InjectLeakMailbox, At: 100 * time.Millisecond}
	_, err := Run(spec)
	if err == nil {
		t.Fatal("leaked mailbox packet went undetected")
	}
	if !strings.Contains(err.Error(), "pool/") {
		t.Errorf("expected a pool violation, got: %v", err)
	}
}
