// Spec JSON codec: a stable, self-contained wire form of a core.Spec, so
// every failure anywhere in the harness can carry an exact one-command
// reproducer and the chaos corpus can replay minimized specs forever.
// Everything behavior-affecting round-trips: device, CPU config, CC mix,
// network, tc knobs, pacing/master-module overrides, budgets, the typed
// fault schedule, a synthesized-or-ingested mobility trace (recompiled
// deterministically on decode), and the injected harness fault.
//
// Durations encode as Go duration strings ("250ms"), bandwidths as bit/s,
// sizes as bytes. Decoding is strict: unknown fields and unknown enum
// tokens are errors, so a drifted corpus entry fails loudly instead of
// silently running a different experiment.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"mobbr/internal/apps"
	"mobbr/internal/device"
	"mobbr/internal/faults"
	"mobbr/internal/flows"
	"mobbr/internal/mobility"
	"mobbr/internal/netem"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

// jdur is a time.Duration that encodes as its Go string form.
type jdur time.Duration

// MarshalJSON implements json.Marshaler.
func (d jdur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *jdur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("duration must be a string like %q: %w", "250ms", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = jdur(v)
	return nil
}

// Token tables shared with the CLI flag vocabulary.
var (
	deviceTokens = map[string]device.Model{"pixel4": device.Pixel4, "pixel6": device.Pixel6}
	cpuTokens    = map[string]device.Config{
		"low": device.LowEnd, "mid": device.MidEnd, "high": device.HighEnd, "default": device.Default,
	}
	networkTokens = map[string]Network{
		"ethernet": Ethernet, "wifi": WiFi, "cellular": Cellular, "5g": Cellular5G,
	}
)

func deviceToken(m device.Model) string {
	for tok, v := range deviceTokens {
		if v == m {
			return tok
		}
	}
	return fmt.Sprintf("unknown(%d)", int(m))
}

func cpuToken(c device.Config) string {
	for tok, v := range cpuTokens {
		if v == c {
			return tok
		}
	}
	return fmt.Sprintf("unknown(%d)", int(c))
}

// tcWire mirrors netem.TC.
type tcWire struct {
	RateBps       int64   `json:"rate_bps,omitempty"`
	Delay         jdur    `json:"delay,omitempty"`
	Loss          float64 `json:"loss,omitempty"`
	QueuePackets  int     `json:"queue_packets,omitempty"`
	ECNThreshold  int     `json:"ecn_threshold,omitempty"`
	ReorderJitter jdur    `json:"reorder_jitter,omitempty"`
}

func (w tcWire) zero() bool { return w == (tcWire{}) }

// eventWire is the flat union of every faults.Event kind; Kind selects
// which fields are meaningful.
type eventWire struct {
	Kind     string          `json:"kind"`
	Start    jdur            `json:"start,omitempty"`
	At       jdur            `json:"at,omitempty"`
	Duration jdur            `json:"duration,omitempty"`
	Extra    jdur            `json:"extra,omitempty"`
	Delay    jdur            `json:"delay,omitempty"`
	Outage   jdur            `json:"outage,omitempty"`
	RateBps  int64           `json:"rate_bps,omitempty"`
	FromBps  int64           `json:"from_bps,omitempty"`
	ToBps    int64           `json:"to_bps,omitempty"`
	Steps    int             `json:"steps,omitempty"`
	GE       *netem.GEConfig `json:"ge,omitempty"`
}

func encodeEvent(ev faults.Event) (eventWire, error) {
	switch e := ev.(type) {
	case faults.Blackout:
		return eventWire{Kind: "blackout", Start: jdur(e.Start), Duration: jdur(e.Duration)}, nil
	case faults.RateStep:
		return eventWire{Kind: "rate-step", At: jdur(e.At), RateBps: int64(e.Rate)}, nil
	case faults.RateRamp:
		return eventWire{Kind: "rate-ramp", Start: jdur(e.Start), Duration: jdur(e.Duration),
			FromBps: int64(e.From), ToBps: int64(e.To), Steps: e.Steps}, nil
	case faults.DelaySpike:
		return eventWire{Kind: "delay-spike", Start: jdur(e.Start), Duration: jdur(e.Duration), Extra: jdur(e.Extra)}, nil
	case faults.DelayStep:
		return eventWire{Kind: "delay-step", At: jdur(e.At), Delay: jdur(e.Delay)}, nil
	case faults.BurstLoss:
		ge := e.GE
		return eventWire{Kind: "burst-loss", Start: jdur(e.Start), Duration: jdur(e.Duration), GE: &ge}, nil
	case faults.Handover:
		return eventWire{Kind: "handover", At: jdur(e.At), Outage: jdur(e.Outage),
			RateBps: int64(e.Rate), Delay: jdur(e.Delay)}, nil
	default:
		return eventWire{}, fmt.Errorf("core: fault event %T has no wire form", ev)
	}
}

func (w eventWire) decode() (faults.Event, error) {
	switch w.Kind {
	case "blackout":
		return faults.Blackout{Start: time.Duration(w.Start), Duration: time.Duration(w.Duration)}, nil
	case "rate-step":
		return faults.RateStep{At: time.Duration(w.At), Rate: units.Bandwidth(w.RateBps)}, nil
	case "rate-ramp":
		return faults.RateRamp{Start: time.Duration(w.Start), Duration: time.Duration(w.Duration),
			From: units.Bandwidth(w.FromBps), To: units.Bandwidth(w.ToBps), Steps: w.Steps}, nil
	case "delay-spike":
		return faults.DelaySpike{Start: time.Duration(w.Start), Duration: time.Duration(w.Duration),
			Extra: time.Duration(w.Extra)}, nil
	case "delay-step":
		return faults.DelayStep{At: time.Duration(w.At), Delay: time.Duration(w.Delay)}, nil
	case "burst-loss":
		b := faults.BurstLoss{Start: time.Duration(w.Start), Duration: time.Duration(w.Duration)}
		if w.GE != nil {
			b.GE = *w.GE
		}
		return b, nil
	case "handover":
		return faults.Handover{At: time.Duration(w.At), Outage: time.Duration(w.Outage),
			Rate: units.Bandwidth(w.RateBps), Delay: time.Duration(w.Delay)}, nil
	default:
		return nil, fmt.Errorf("core: unknown fault event kind %q", w.Kind)
	}
}

// scheduleWire mirrors faults.Schedule.
type scheduleWire struct {
	Hop    int         `json:"hop,omitempty"`
	Events []eventWire `json:"events"`
}

// sampleWire mirrors mobility.Sample.
type sampleWire struct {
	T       jdur    `json:"t"`
	RateBps int64   `json:"rate_bps"`
	RTT     jdur    `json:"rtt,omitempty"`
	Loss    float64 `json:"loss,omitempty"`
}

// mobilityWire carries the trace and the compile options; the schedule is
// recompiled on decode (Compile is deterministic), keeping entries small
// and always consistent with the compiler.
type mobilityWire struct {
	Name    string       `json:"name"`
	Tick    jdur         `json:"tick,omitempty"`
	Samples []sampleWire `json:"samples"`
	Options optionsWire  `json:"options"`
}

// optionsWire mirrors mobility.CompileOptions.
type optionsWire struct {
	Hop            int     `json:"hop,omitempty"`
	RateHysteresis float64 `json:"rate_hysteresis,omitempty"`
	MinDelayChange jdur    `json:"min_delay_change,omitempty"`
	LossThreshold  float64 `json:"loss_threshold,omitempty"`
	OtherRTT       jdur    `json:"other_rtt,omitempty"`
	MinOneWayDelay jdur    `json:"min_one_way_delay,omitempty"`
}

// injectWire mirrors Inject.
type injectWire struct {
	Kind string `json:"kind"`
	At   jdur   `json:"at,omitempty"`
}

// workloadWire mirrors apps.Workload. Absent from the wire (nil pointer)
// means the iperf bulk default, so every pre-workload corpus entry and
// journal replays unchanged.
type workloadWire struct {
	Kind      string  `json:"kind"`
	ReqBytes  int64   `json:"req_bytes,omitempty"`
	RespBytes int64   `json:"resp_bytes,omitempty"`
	Think     jdur    `json:"think,omitempty"`
	Chunk     jdur    `json:"chunk,omitempty"`
	LadderBps []int64 `json:"ladder_bps,omitempty"`
	Startup   int     `json:"startup,omitempty"`
	DownBps   int64   `json:"down_rate_bps,omitempty"`
}

// flowsWire mirrors flows.Config. Absent from the wire (nil pointer)
// means the fixed connection set, so every pre-churn corpus entry and
// journal replays unchanged.
type flowsWire struct {
	ArrivalRate      float64 `json:"arrival_rate,omitempty"`
	MaxLive          int     `json:"max_live,omitempty"`
	InitialFlows     int     `json:"initial_flows,omitempty"`
	MiceBytes        int64   `json:"mice_bytes,omitempty"`
	MiceSigma        float64 `json:"mice_sigma,omitempty"`
	ElephantShare    float64 `json:"elephant_share,omitempty"`
	ParetoAlpha      float64 `json:"pareto_alpha,omitempty"`
	ElephantMinBytes int64   `json:"elephant_min_bytes,omitempty"`
	MaxFlowBytes     int64   `json:"max_flow_bytes,omitempty"`
	FlowTableSlots   int     `json:"flow_table_slots,omitempty"`
	OffloadThreshold int     `json:"offload_threshold,omitempty"`
}

// telemetryWire mirrors telemetry.Config.
type telemetryWire struct {
	Trace     bool `json:"trace,omitempty"`
	Metrics   bool `json:"metrics,omitempty"`
	Profile   bool `json:"profile,omitempty"`
	MaxEvents int  `json:"max_events,omitempty"`
}

// specWire is the full Spec wire form.
type specWire struct {
	Device          string         `json:"device"`
	CPU             string         `json:"cpu"`
	CC              string         `json:"cc"`
	Conns           int            `json:"conns"`
	Duration        jdur           `json:"duration,omitempty"`
	Warmup          jdur           `json:"warmup,omitempty"`
	Network         string         `json:"network"`
	TC              *tcWire        `json:"tc,omitempty"`
	Pacing          *bool          `json:"pacing,omitempty"`
	Stride          float64        `json:"stride,omitempty"`
	HardwarePacing  bool           `json:"hw_pacing,omitempty"`
	FixedPacingBps  int64          `json:"fixed_pacing_bps,omitempty"`
	FixedCwnd       int            `json:"fixed_cwnd,omitempty"`
	DisableModel    bool           `json:"disable_model,omitempty"`
	Interval        jdur           `json:"interval,omitempty"`
	SndBufBytes     int64          `json:"sndbuf_bytes,omitempty"`
	Seed            int64          `json:"seed,omitempty"`
	Faults          *scheduleWire  `json:"faults,omitempty"`
	Mobility        *mobilityWire  `json:"mobility,omitempty"`
	Check           bool           `json:"check,omitempty"`
	DisablePool     bool           `json:"disable_pool,omitempty"`
	MaxEvents       uint64         `json:"max_events,omitempty"`
	MaxWallClockStr jdur           `json:"max_wall_clock,omitempty"`
	MaxStall        uint64         `json:"max_stall,omitempty"`
	Inject          *injectWire    `json:"inject,omitempty"`
	Telemetry       *telemetryWire `json:"telemetry,omitempty"`
	Workload        *workloadWire  `json:"workload,omitempty"`
	Flows           *flowsWire     `json:"flows,omitempty"`
}

// EncodeSpec renders the spec as compact, round-trippable JSON.
func EncodeSpec(s Spec) ([]byte, error) {
	w := specWire{
		Device:          deviceToken(s.Device),
		CPU:             cpuToken(s.CPU),
		CC:              s.CC,
		Conns:           s.Conns,
		Duration:        jdur(s.Duration),
		Warmup:          jdur(s.Warmup),
		Network:         s.Network.String(),
		Pacing:          s.PacingOverride,
		Stride:          s.Stride,
		HardwarePacing:  s.HardwarePacing,
		FixedPacingBps:  int64(s.FixedPacingRate),
		FixedCwnd:       s.FixedCwnd,
		DisableModel:    s.DisableModel,
		Interval:        jdur(s.Interval),
		SndBufBytes:     int64(s.SndBuf),
		Seed:            s.Seed,
		Check:           s.Check,
		DisablePool:     s.DisablePool,
		MaxEvents:       s.MaxEvents,
		MaxWallClockStr: jdur(s.MaxWallClock),
		MaxStall:        s.MaxStall,
	}
	if tc := (tcWire{
		RateBps: int64(s.TC.Rate), Delay: jdur(s.TC.Delay), Loss: s.TC.Loss,
		QueuePackets: s.TC.QueuePackets, ECNThreshold: s.TC.ECNThreshold,
		ReorderJitter: jdur(s.TC.ReorderJitter),
	}); !tc.zero() {
		w.TC = &tc
	}
	if !s.Faults.Empty() {
		sw := scheduleWire{Hop: s.Faults.Hop}
		for _, ev := range s.Faults.Events {
			ew, err := encodeEvent(ev)
			if err != nil {
				return nil, err
			}
			sw.Events = append(sw.Events, ew)
		}
		w.Faults = &sw
	}
	if s.Mobility != nil {
		mw := mobilityWire{
			Name: s.Mobility.Trace.Name,
			Tick: jdur(s.Mobility.Trace.Tick),
			Options: optionsWire{
				Hop:            s.Mobility.Options.Hop,
				RateHysteresis: s.Mobility.Options.RateHysteresis,
				MinDelayChange: jdur(s.Mobility.Options.MinDelayChange),
				LossThreshold:  s.Mobility.Options.LossThreshold,
				OtherRTT:       jdur(s.Mobility.Options.OtherRTT),
				MinOneWayDelay: jdur(s.Mobility.Options.MinOneWayDelay),
			},
		}
		for _, sm := range s.Mobility.Trace.Samples {
			mw.Samples = append(mw.Samples, sampleWire{
				T: jdur(sm.T), RateBps: int64(sm.Rate), RTT: jdur(sm.RTT), Loss: sm.Loss,
			})
		}
		w.Mobility = &mw
	}
	if s.Inject.Kind != "" {
		w.Inject = &injectWire{Kind: s.Inject.Kind, At: jdur(s.Inject.At)}
	}
	if s.Telemetry != (telemetry.Config{}) {
		w.Telemetry = &telemetryWire{
			Trace: s.Telemetry.Trace, Metrics: s.Telemetry.Metrics,
			Profile: s.Telemetry.Profile, MaxEvents: s.Telemetry.MaxEvents,
		}
	}
	if s.Workload.Kind != "" {
		ww := workloadWire{
			Kind:      s.Workload.Kind,
			ReqBytes:  int64(s.Workload.ReqSize),
			RespBytes: int64(s.Workload.RespSize),
			Think:     jdur(s.Workload.Think),
			Chunk:     jdur(s.Workload.Chunk),
			Startup:   s.Workload.Startup,
			DownBps:   int64(s.Workload.DownRate),
		}
		for _, r := range s.Workload.Ladder {
			ww.LadderBps = append(ww.LadderBps, int64(r))
		}
		w.Workload = &ww
	}
	if s.Flows != nil {
		w.Flows = &flowsWire{
			ArrivalRate:      s.Flows.ArrivalRate,
			MaxLive:          s.Flows.MaxLive,
			InitialFlows:     s.Flows.InitialFlows,
			MiceBytes:        int64(s.Flows.MiceBytes),
			MiceSigma:        s.Flows.MiceSigma,
			ElephantShare:    s.Flows.ElephantShare,
			ParetoAlpha:      s.Flows.ParetoAlpha,
			ElephantMinBytes: int64(s.Flows.ElephantMinBytes),
			MaxFlowBytes:     int64(s.Flows.MaxFlowBytes),
			FlowTableSlots:   s.Flows.FlowTableSlots,
			OffloadThreshold: s.Flows.OffloadThreshold,
		}
	}
	return json.Marshal(w)
}

// DecodeSpec parses EncodeSpec's output back into a Spec, recompiling any
// mobility trace. Unknown fields and tokens are errors.
func DecodeSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w specWire
	if err := dec.Decode(&w); err != nil {
		return Spec{}, fmt.Errorf("core: decoding spec: %w", err)
	}
	dev, ok := deviceTokens[w.Device]
	if !ok {
		return Spec{}, fmt.Errorf("core: unknown device token %q", w.Device)
	}
	cfg, ok := cpuTokens[w.CPU]
	if !ok {
		return Spec{}, fmt.Errorf("core: unknown cpu token %q", w.CPU)
	}
	network, ok := networkTokens[w.Network]
	if !ok {
		return Spec{}, fmt.Errorf("core: unknown network token %q", w.Network)
	}
	s := Spec{
		Device:          dev,
		CPU:             cfg,
		CC:              w.CC,
		Conns:           w.Conns,
		Duration:        time.Duration(w.Duration),
		Warmup:          time.Duration(w.Warmup),
		Network:         network,
		PacingOverride:  w.Pacing,
		Stride:          w.Stride,
		HardwarePacing:  w.HardwarePacing,
		FixedPacingRate: units.Bandwidth(w.FixedPacingBps),
		FixedCwnd:       w.FixedCwnd,
		DisableModel:    w.DisableModel,
		Interval:        time.Duration(w.Interval),
		SndBuf:          units.DataSize(w.SndBufBytes),
		Seed:            w.Seed,
		Check:           w.Check,
		DisablePool:     w.DisablePool,
		MaxEvents:       w.MaxEvents,
		MaxWallClock:    time.Duration(w.MaxWallClockStr),
		MaxStall:        w.MaxStall,
	}
	if w.TC != nil {
		s.TC = netem.TC{
			Rate: units.Bandwidth(w.TC.RateBps), Delay: time.Duration(w.TC.Delay),
			Loss: w.TC.Loss, QueuePackets: w.TC.QueuePackets,
			ECNThreshold: w.TC.ECNThreshold, ReorderJitter: time.Duration(w.TC.ReorderJitter),
		}
	}
	if w.Faults != nil {
		s.Faults.Hop = w.Faults.Hop
		for _, ew := range w.Faults.Events {
			ev, err := ew.decode()
			if err != nil {
				return Spec{}, err
			}
			s.Faults.Events = append(s.Faults.Events, ev)
		}
	}
	if w.Mobility != nil {
		tr := mobility.Trace{Name: w.Mobility.Name, Tick: time.Duration(w.Mobility.Tick)}
		for _, sm := range w.Mobility.Samples {
			tr.Samples = append(tr.Samples, mobility.Sample{
				T: time.Duration(sm.T), Rate: units.Bandwidth(sm.RateBps),
				RTT: time.Duration(sm.RTT), Loss: sm.Loss,
			})
		}
		c, err := mobility.Compile(tr, mobility.CompileOptions{
			Hop:            w.Mobility.Options.Hop,
			RateHysteresis: w.Mobility.Options.RateHysteresis,
			MinDelayChange: time.Duration(w.Mobility.Options.MinDelayChange),
			LossThreshold:  w.Mobility.Options.LossThreshold,
			OtherRTT:       time.Duration(w.Mobility.Options.OtherRTT),
			MinOneWayDelay: time.Duration(w.Mobility.Options.MinOneWayDelay),
		})
		if err != nil {
			return Spec{}, fmt.Errorf("core: recompiling mobility trace %q: %w", tr.Name, err)
		}
		s.Mobility = c
	}
	if w.Inject != nil {
		s.Inject = Inject{Kind: w.Inject.Kind, At: time.Duration(w.Inject.At)}
	}
	if w.Telemetry != nil {
		s.Telemetry = telemetry.Config{
			Trace: w.Telemetry.Trace, Metrics: w.Telemetry.Metrics,
			Profile: w.Telemetry.Profile, MaxEvents: w.Telemetry.MaxEvents,
		}
	}
	if w.Workload != nil {
		s.Workload = apps.Workload{
			Kind:     w.Workload.Kind,
			ReqSize:  units.DataSize(w.Workload.ReqBytes),
			RespSize: units.DataSize(w.Workload.RespBytes),
			Think:    time.Duration(w.Workload.Think),
			Chunk:    time.Duration(w.Workload.Chunk),
			Startup:  w.Workload.Startup,
			DownRate: units.Bandwidth(w.Workload.DownBps),
		}
		for _, r := range w.Workload.LadderBps {
			s.Workload.Ladder = append(s.Workload.Ladder, units.Bandwidth(r))
		}
	}
	if w.Flows != nil {
		s.Flows = &flows.Config{
			ArrivalRate:      w.Flows.ArrivalRate,
			MaxLive:          w.Flows.MaxLive,
			InitialFlows:     w.Flows.InitialFlows,
			MiceBytes:        units.DataSize(w.Flows.MiceBytes),
			MiceSigma:        w.Flows.MiceSigma,
			ElephantShare:    w.Flows.ElephantShare,
			ParetoAlpha:      w.Flows.ParetoAlpha,
			ElephantMinBytes: units.DataSize(w.Flows.ElephantMinBytes),
			MaxFlowBytes:     units.DataSize(w.Flows.MaxFlowBytes),
			FlowTableSlots:   w.Flows.FlowTableSlots,
			OffloadThreshold: w.Flows.OffloadThreshold,
		}
	}
	return s, nil
}

// ReproLine returns the exact one-command reproducer for this spec: paste
// it into a shell at the repo root. Every failure path that reports a
// broken point attaches one.
func ReproLine(s Spec) string {
	data, err := EncodeSpec(s)
	if err != nil {
		// A spec that cannot encode still deserves a diagnostic line.
		return fmt.Sprintf("(spec not encodable: %v; %s seed=%d)", err, s, s.Seed)
	}
	return fmt.Sprintf("go run ./cmd/mobbr -run-spec '%s'", data)
}
