package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"mobbr/internal/check"
	"mobbr/internal/device"
	"mobbr/internal/faults"
	"mobbr/internal/seg"
)

// TestCheckerCatchesPoolLeak proves a deliberately leaked pooled packet is
// caught as a structured pool violation — both mid-run (the conservation
// cross-check against the network census) and at run end (the leak audit).
func TestCheckerCatchesPoolLeak(t *testing.T) {
	// The leak fires one conservation violation per audit tick, so it is
	// placed near the run end to leave room under the violation cap for
	// the final leak audit.
	spec := Spec{
		CC:       "cubic",
		Duration: time.Second,
		Check:    true,
		Inject:   Inject{Kind: InjectLeakPacket, At: 850 * time.Millisecond},
	}
	_, err := Run(spec)
	if err == nil {
		t.Fatal("leaked run returned no error")
	}
	var ce *check.Error
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *check.Error: %v", err, err)
	}
	rules := map[string]bool{}
	for _, v := range ce.Violations {
		rules[v.Rule] = true
	}
	if !rules["pool/conservation"] {
		t.Errorf("no pool/conservation violation: %v", err)
	}
	if !rules["pool/leak"] {
		t.Errorf("no pool/leak violation: %v", err)
	}
}

// TestPooledRunMatchesFresh is the pooled-vs-fresh differential: recycling
// memory must not change a single measured number. The two runs share the
// spec except for DisablePool; everything except the pool census itself must
// be deeply equal.
func TestPooledRunMatchesFresh(t *testing.T) {
	base := Spec{
		Device:   device.Pixel4,
		CPU:      device.LowEnd,
		CC:       "bbr,cubic",
		Conns:    4,
		Network:  WiFi,
		Duration: 2 * time.Second,
		Warmup:   200 * time.Millisecond,
		Interval: 250 * time.Millisecond,
		Seed:     13,
		Check:    true,
		Faults: faults.Schedule{Events: []faults.Event{
			faults.Blackout{Start: 800 * time.Millisecond, Duration: 300 * time.Millisecond},
		}},
	}
	pooled, err := Run(base)
	if err != nil {
		t.Fatalf("pooled run: %v", err)
	}
	fresh := base
	fresh.DisablePool = true
	unpooled, err := Run(fresh)
	if err != nil {
		t.Fatalf("fresh run: %v", err)
	}
	if unpooled.Report.Pool != (seg.PoolStats{}) {
		t.Fatalf("DisablePool run still has pool stats: %+v", unpooled.Report.Pool)
	}
	a, b := *pooled.Report, *unpooled.Report
	a.Pool, b.Pool = seg.PoolStats{}, seg.PoolStats{}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("pooled and fresh reports diverge:\npooled: %+v\nfresh:  %+v", a, b)
	}
}

// TestPooledRunRecyclesAndBalances checks the pool actually does its job on
// a real run: the steady state is served from the freelist (recycle ratio
// near 1), and after the run-end reclaim nothing is outstanding.
func TestPooledRunRecyclesAndBalances(t *testing.T) {
	res, err := Run(Spec{
		CC: "bbr", Conns: 2, Duration: 2 * time.Second, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Report.Pool
	if st.PacketGets == 0 || st.AckGets == 0 {
		t.Fatalf("pool unused: %+v", st)
	}
	if st.OutstandingPackets != 0 || st.OutstandingAcks != 0 {
		t.Fatalf("objects outstanding after reclaim: %+v", st)
	}
	if st.Violations != 0 {
		t.Fatalf("pool recorded %d violations on a healthy run", st.Violations)
	}
	// Freelist hit rate: fresh allocations are bounded by the high-water
	// mark of objects in flight, which is orders of magnitude below the
	// total churn on a 2 s gigabit run.
	if ratio := float64(st.PacketsRecycled()) / float64(st.PacketGets); ratio < 0.95 {
		t.Errorf("packet recycle ratio %.3f, want >= 0.95 (%+v)", ratio, st)
	}
	if ratio := float64(st.AcksRecycled()) / float64(st.AckGets); ratio < 0.95 {
		t.Errorf("ACK recycle ratio %.3f, want >= 0.95 (%+v)", ratio, st)
	}
}
