package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mobbr/internal/device"
	"mobbr/internal/faults"
	"mobbr/internal/telemetry"
)

func TestTelemetryDisabledByDefault(t *testing.T) {
	res, err := Run(Spec{
		Device: device.Pixel4, CPU: device.HighEnd, CC: "cubic",
		Conns: 2, Network: Ethernet, Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != nil || res.Profile != nil || res.Engine != nil {
		t.Error("telemetry outputs non-nil with zero Telemetry config")
	}
	if res.Report.Metrics != nil {
		t.Error("Report.Metrics non-nil with metrics disabled")
	}
}

// faultedSpec is a run with a blackout mid-way — enough churn to exercise
// RTO, recovery, fault and sample events.
func faultedSpec(seed int64) Spec {
	return Spec{
		Device: device.Pixel4, CPU: device.LowEnd, CC: "bbr",
		Conns: 2, Network: Ethernet, Duration: 2 * time.Second, Seed: seed,
		Faults: faults.Schedule{Events: []faults.Event{
			faults.Blackout{Start: 800 * time.Millisecond, Duration: 400 * time.Millisecond},
		}},
		Telemetry: telemetry.Config{Trace: true, Metrics: true, Profile: true},
	}
}

func TestTraceDeterministicByteIdentical(t *testing.T) {
	runOnce := func() *bytes.Buffer {
		res, err := Run(faultedSpec(42))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Events.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a, b := runOnce(), runOnce()
	if a.Len() == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical-seed runs produced different JSONL traces")
	}
}

func TestTraceMonotoneParseableAndComplete(t *testing.T) {
	res, err := Run(faultedSpec(7))
	if err != nil {
		t.Fatal(err)
	}

	// Virtual timestamps never decrease across the whole stream.
	var last time.Duration
	for i, e := range res.Events.Events() {
		if e.At < last {
			t.Fatalf("event %d time %v < previous %v", i, e.At, last)
		}
		last = e.At
	}

	// Every JSONL line parses.
	var buf bytes.Buffer
	if err := res.Events.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", line, err)
		}
	}

	// The blackout must appear as begin/end fault events at its window.
	fevs := res.Events.Filter(telemetry.KindFault)
	if len(fevs) != 2 {
		t.Fatalf("fault events = %d, want begin+end", len(fevs))
	}
	if fevs[0].Old != "begin" || fevs[0].At != 800*time.Millisecond {
		t.Errorf("fault begin = %+v", fevs[0])
	}
	if fevs[1].Old != "end" || fevs[1].At != 1200*time.Millisecond {
		t.Errorf("fault end = %+v", fevs[1])
	}

	// A 400 ms blackout forces RTOs and recovery-state churn.
	if len(res.Events.Filter(telemetry.KindRTO)) == 0 {
		t.Error("no RTO events despite a 400ms blackout")
	}
	if len(res.Events.Filter(telemetry.KindTCPState)) == 0 {
		t.Error("no TCP state transitions recorded")
	}
	if len(res.Events.Filter(telemetry.KindCCMode)) == 0 {
		t.Error("no BBR mode transitions recorded")
	}
	if len(res.Events.Filter(telemetry.KindPacingTimer)) == 0 {
		t.Error("no pacing-timer events recorded")
	}
	if len(res.Events.Filter(telemetry.KindSample)) == 0 {
		t.Error("no periodic samples recorded")
	}

	// Profile phases cover before/during/after the fault window.
	for _, phase := range []string{"before", "during", "after"} {
		found := false
		for _, stPhase := range []string{phase} {
			if res.Profile.PhaseShare("net", stPhase, "pacing_timer") > 0 ||
				res.Profile.PhaseShare("net", stPhase, "ack_process") > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("profile has no netstack cycles in phase %q", phase)
		}
	}

	// Metrics landed in the report; engine stats are present.
	if res.Report.Metrics == nil {
		t.Fatal("no metrics snapshot")
	}
	if m := res.Report.Metrics.MergedHistogram("/pacing_timer_slip_us"); m.Count == 0 {
		t.Error("no pacing-timer slippage samples")
	}
	if m := res.Report.Metrics.MergedHistogram("/ack_batch_pkts"); m.Count == 0 {
		t.Error("no ACK batch samples")
	}
	if res.Engine == nil || res.Engine.Events == 0 || res.Engine.MaxPending == 0 {
		t.Errorf("engine stats = %+v", res.Engine)
	}
}

// The paper's §6.1 claim, as a regression gate: on the Low-End configuration
// the per-event pacing-timer overhead consumes a strictly larger share of
// netstack-core cycles than on the Default configuration, where large TSO
// quanta amortize the timer cost.
func TestProfilePacingShareLowEndVsDefault(t *testing.T) {
	share := func(cfg device.Config) float64 {
		res, err := Run(Spec{
			Device: device.Pixel4, CPU: cfg, CC: "bbr",
			Conns: 4, Network: Ethernet, Duration: 2 * time.Second, Seed: 1,
			Telemetry: telemetry.Config{Profile: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Profile.Share("net", "pacing_timer")
	}
	low, def := share(device.LowEnd), share(device.Default)
	if low <= def {
		t.Errorf("pacing-timer share: Low-End %.3f <= Default %.3f; want strictly larger", low, def)
	}
	if low == 0 || def == 0 {
		t.Errorf("profile recorded no pacing cycles (low=%v default=%v)", low, def)
	}
}
