package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mobbr/internal/check"
	"mobbr/internal/device"
	"mobbr/internal/faults"
	"mobbr/internal/netem"
	"mobbr/internal/sim"
	"mobbr/internal/units"
)

func TestSpecValidate(t *testing.T) {
	base := Spec{CC: "bbr", Duration: time.Second}
	if err := base.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*Spec)
	}{
		{"device", func(s *Spec) { s.Device = device.Model(99) }},
		{"cpu", func(s *Spec) { s.CPU = device.Config(99) }},
		{"cc", func(s *Spec) { s.CC = "vegas" }},
		{"cc in list", func(s *Spec) { s.CC = "bbr,vegas" }},
		{"network", func(s *Spec) { s.Network = Network(99) }},
		{"warmup", func(s *Spec) { s.Warmup = 2 * time.Second }},
		{"interval", func(s *Spec) { s.Interval = -time.Second }},
		{"stride", func(s *Spec) { s.Stride = -1 }},
		{"tc loss", func(s *Spec) { s.TC = netem.TC{Loss: 1.5} }},
		{"fault", func(s *Spec) {
			s.Faults = faults.Schedule{Events: []faults.Event{faults.Blackout{Duration: -time.Second}}}
		}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			tc.mut(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("invalid spec (%s) passed validation", tc.name)
			}
			// Run must surface the same validation error, not panic.
			if _, err := Run(s); err == nil {
				t.Errorf("Run accepted invalid spec (%s)", tc.name)
			}
		})
	}
}

func TestBlackoutFaultReducesGoodput(t *testing.T) {
	base := Spec{
		CC:       "cubic",
		Network:  Cellular,
		Duration: 4 * time.Second,
		Check:    true,
	}
	clean, err := Run(base)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	dark := base
	dark.Faults = faults.Schedule{Events: []faults.Event{
		faults.Blackout{Start: 1 * time.Second, Duration: 2 * time.Second},
	}}
	faulted, err := Run(dark)
	if err != nil {
		t.Fatalf("faulted run: %v", err)
	}
	// Two of four seconds dark: goodput must drop substantially.
	if float64(faulted.Report.Goodput) > 0.75*float64(clean.Report.Goodput) {
		t.Errorf("blackout barely hurt: clean %v faulted %v",
			clean.Report.Goodput, faulted.Report.Goodput)
	}
	if faulted.Report.Goodput == 0 {
		t.Error("connection never recovered after the blackout")
	}
}

func TestFaultedRunDeterministicPerSeed(t *testing.T) {
	spec := Spec{
		CC:       "bbr",
		Network:  Cellular,
		Duration: 3 * time.Second,
		Interval: 100 * time.Millisecond,
		Check:    true,
		Seed:     11,
		Faults: faults.Schedule{Events: []faults.Event{
			faults.BurstLoss{Start: 500 * time.Millisecond, Duration: time.Second,
				GE: netem.GEConfig{PGoodToBad: 0.02, PBadToGood: 0.3, LossBad: 0.7}},
			faults.Handover{At: 2 * time.Second, Outage: 150 * time.Millisecond,
				Rate: 600 * units.Mbps, Delay: 800 * time.Microsecond},
		}},
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Goodput != b.Report.Goodput || a.Report.Retransmits != b.Report.Retransmits {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d",
			a.Report.Goodput, a.Report.Retransmits, b.Report.Goodput, b.Report.Retransmits)
	}
	for i := range a.Report.Intervals {
		if a.Report.Intervals[i] != b.Report.Intervals[i] {
			t.Fatalf("interval %d diverged", i)
		}
	}
}

// TestCheckerCatchesCorruption proves a deliberately corrupted run is caught
// as a structured error — not a panic, not silently wrong data.
func TestCheckerCatchesCorruption(t *testing.T) {
	spec := Spec{
		CC:       "cubic",
		Duration: 2 * time.Second,
		Check:    true,
		Inject:   Inject{Kind: InjectCorruptInflight, At: 500 * time.Millisecond},
	}
	_, err := Run(spec)
	if err == nil {
		t.Fatal("corrupted run returned no error")
	}
	var ce *check.Error
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *check.Error: %v", err, err)
	}
	found := false
	for _, v := range ce.Violations {
		if v.Rule == "inflight/counter" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no inflight/counter violation: %v", err)
	}
	if !strings.Contains(err.Error(), "seed=") {
		t.Errorf("violation lacks run context: %v", err)
	}
}

// TestCheckerPassesAllNetworks runs every network with the checker armed.
func TestCheckerPassesAllNetworks(t *testing.T) {
	for _, net := range []Network{Ethernet, WiFi, Cellular, Cellular5G} {
		for _, ccName := range []string{"cubic", "bbr", "bbr2"} {
			t.Run(net.String()+"/"+ccName, func(t *testing.T) {
				_, err := Run(Spec{
					CC: ccName, Network: net, Conns: 2,
					Duration: 1500 * time.Millisecond, Check: true,
				})
				if err != nil {
					t.Fatalf("checker tripped on a healthy run: %v", err)
				}
			})
		}
	}
}

func TestEventBudgetTrips(t *testing.T) {
	spec := Spec{
		CC:        "cubic",
		Duration:  5 * time.Second,
		MaxEvents: 10_000, // far too few for a 5 s gigabit run
	}
	_, err := Run(spec)
	if err == nil {
		t.Fatal("tiny event budget did not trip")
	}
	var le *sim.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("error is %T, want *sim.LimitError: %v", err, err)
	}
	if le.Processed < 10_000 {
		t.Errorf("tripped after %d events, budget was 10000", le.Processed)
	}
	if !strings.Contains(err.Error(), "last event scheduled") {
		t.Errorf("budget error lacks last-scheduled diagnostics: %v", err)
	}
}

// TestBlackoutLongerThanRetriesKillsConn: an outage outlasting MaxRetries
// must surface as a per-connection error in the report, not an aborted run.
func TestStallReportedNotPanicked(t *testing.T) {
	spec := Spec{
		CC:       "cubic",
		Network:  Cellular,
		Duration: 40 * time.Second,
		Faults: faults.Schedule{Events: []faults.Event{
			// Link goes dark at 1 s and never returns.
			faults.Blackout{Start: time.Second, Duration: 39 * time.Second},
		}},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("permanent outage aborted the run: %v", err)
	}
	if len(res.Report.ConnErrors) == 0 {
		t.Fatal("dead connection not reported")
	}
	msg := res.Report.ConnErrors[0].Error()
	if !strings.Contains(msg, "stalled") && !strings.Contains(msg, "gave up") {
		t.Errorf("unexpected failure reason: %v", msg)
	}
}
