// Package core is the library's public experiment API — the layer the
// examples, the CLI tools and the benchmarks drive. A Spec describes one
// experiment exactly the way the paper's methodology section does (phone,
// Table 1 CPU configuration, congestion control, number of parallel iPerf
// connections, network, tc impairments, and the §5/§6 master-module and
// pacing-stride knobs); Run assembles the simulated testbed and returns the
// measured Report; RunSeeds repeats a Spec across seeds and aggregates, as
// the paper averages each point over at least 10 runs.
package core

import (
	"fmt"
	"strings"
	"time"

	"mobbr/internal/apps"
	"mobbr/internal/cc"
	"mobbr/internal/cc/bbr"
	"mobbr/internal/cc/bbrv2"
	"mobbr/internal/cc/cubic"
	"mobbr/internal/cc/reno"
	"mobbr/internal/check"
	"mobbr/internal/cpumodel"
	"mobbr/internal/device"
	"mobbr/internal/faults"
	"mobbr/internal/flows"
	"mobbr/internal/iperf"
	"mobbr/internal/mastermod"
	"mobbr/internal/mobility"
	"mobbr/internal/netem"
	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/stats"
	"mobbr/internal/tcp"
	"mobbr/internal/telemetry"
	"mobbr/internal/trace"
	"mobbr/internal/units"
)

// Network selects the testbed medium (§3.2 and Appendix A.1).
type Network int

// Testbed networks.
const (
	// Ethernet is the wired 1 Gbps LAN through the OpenWRT router.
	Ethernet Network = iota
	// WiFi is the 802.11 LAN with the phone ~1 m from the AP.
	WiFi
	// Cellular is the T-Mobile LTE uplink of Appendix A.1.
	Cellular
	// Cellular5G is the ≈200 Mbps mmWave uplink the paper predicts will
	// re-expose the pacing bottleneck that LTE hides.
	Cellular5G
)

// String returns the network name.
func (n Network) String() string {
	switch n {
	case Ethernet:
		return "ethernet"
	case WiFi:
		return "wifi"
	case Cellular:
		return "cellular"
	case Cellular5G:
		return "5g"
	default:
		return "unknown"
	}
}

// Spec describes one experiment.
type Spec struct {
	// Device is the phone (Pixel 4 or Pixel 6).
	Device device.Model
	// CPU is the Table 1 configuration.
	CPU device.Config
	// CC names the congestion control: "cubic", "bbr", "bbr2" or
	// "reno". A comma-separated list ("bbr,cubic") assigns algorithms
	// round-robin across connections for coexistence experiments.
	CC string
	// Conns is the number of parallel connections.
	Conns int
	// Duration is the transmit time (the paper uses 5 minutes; shorter
	// runs converge to the same steady state in simulation).
	Duration time.Duration
	// Warmup excludes the initial ramp from goodput accounting.
	Warmup time.Duration
	// Network selects the medium.
	Network Network
	// TC applies router impairments (rate, delay, loss, queue depth).
	TC netem.TC
	// PacingOverride forces pacing on/off regardless of the CC (§5.2).
	PacingOverride *bool
	// Stride is the pacing stride (§6.2); <1 means stock (1×).
	Stride float64
	// HardwarePacing offloads per-send pacing timers to the NIC
	// (§7.1.4): gaps are still enforced but cost no CPU.
	HardwarePacing bool
	// FixedPacingRate pins each connection's pacing rate (§5.1.2).
	FixedPacingRate units.Bandwidth
	// FixedCwnd pins the congestion window in packets (§5.1).
	FixedCwnd int
	// DisableModel turns off the CC's per-ACK computation (§5.1.1).
	DisableModel bool
	// Interval, when nonzero, records iperf3-style per-interval reports
	// in the result (Report.Intervals).
	Interval time.Duration
	// SndBuf overrides the per-socket send buffer (default 256 KB).
	// High-BDP paths (the 5G scenario) need more, as Android's wmem
	// auto-tuning would provide.
	SndBuf units.DataSize
	// Workload selects the application driving each connection. The zero
	// value (empty Kind) is the paper's iPerf bulk upload; "reqrep" and
	// "stream" run closed-loop request/response and chunked live-upload
	// clients over the simnet facade, reporting per-operation latency
	// quantiles and rebuffer ratios in Result.App.
	Workload apps.Workload
	// Flows, when set, replaces the fixed connection set with the churn
	// workload (internal/flows): open-loop Poisson arrivals, heavy-tailed
	// elephant/mice sizes, FIN-on-completion recycling through a pooled
	// conn lifecycle. Conns is ignored (the live population is dynamic);
	// mutually exclusive with Workload. Results land in Result.Flows.
	Flows *flows.Config
	// Seed drives all randomness; runs are fully deterministic per seed.
	Seed int64
	// Faults is the fault-injection schedule applied to the path while
	// the run executes: blackouts, handovers, rate ramps, delay spikes,
	// burst loss. Schedule.Hop indexes the chosen network's hops (0 is
	// the hop at the sender — devnic, air or radio).
	Faults faults.Schedule
	// Mobility replays a compiled bandwidth/RTT/loss trace on the path:
	// its fault schedule is installed and its segment timeline is
	// published on the telemetry bus. Mutually exclusive with Faults.
	Mobility *mobility.Compiled
	// Check arms the sim-wide invariant checker (internal/check): every
	// connection's bookkeeping is audited throughout the run and Run
	// returns a structured error when an invariant is violated.
	Check bool
	// DisablePool turns off the run-private packet/ACK recycler and
	// allocates every segment fresh from the heap. It exists for the
	// pooled-vs-fresh differential tests; production runs always pool.
	DisablePool bool
	// MaxEvents bounds the simulator events one run may process
	// (0 = default 200M). Exceeding it fails the run with a budget error
	// naming the last-scheduled event time.
	MaxEvents uint64
	// MaxWallClock bounds the real time one run may take (0 = default
	// 2 minutes; negative = unbounded).
	MaxWallClock time.Duration
	// MaxStall bounds how many consecutive engine events may execute
	// without the virtual clock advancing before the run fails with a
	// stall error (0 = default 2M). A zero-delay event loop stalls
	// virtual time while burning wall clock; this watchdog names it
	// directly instead of waiting for MaxEvents or the wall deadline.
	MaxStall uint64
	// Inject arms one deliberate harness-level fault inside the run —
	// the chaos and resilience layers use it to prove that panics,
	// stalls, accounting corruption and pool leaks are contained and
	// reported rather than silently propagated. The zero value injects
	// nothing.
	Inject Inject
	// Telemetry selects the run's observability layers (trace bus,
	// metrics registry, cycle profiler). The zero value disables all of
	// them — the hot paths then pay only nil-checks.
	Telemetry telemetry.Config
	// Shards splits the run across engine shards executing concurrently
	// under a conservative lookahead protocol (internal/sim.ShardedEngine):
	// the phone — senders, path, CPU model, telemetry — on shard 0, the
	// server's receivers on shard 1, synchronized on the last hop's
	// propagation delay. Output is byte-identical to a serial run. 0 or 1
	// runs serial; values above 2 clamp to 2 (the bulk topology has two
	// hosts). Workloads bound to one engine — churn (Flows), application
	// workloads, mobility traces, fault schedules (which may shrink the
	// lookahead mid-run), and DisablePool test runs — fall back to serial.
	// Deliberately absent from the spec wire form: it selects an execution
	// strategy, not an experiment, so archived rows compare equal across
	// shard counts.
	Shards int
}

// sharded reports whether Run will actually split this spec across shards
// (Shards asks for it and no serial-only feature is in play).
func (s Spec) sharded() bool {
	return s.Shards > 1 && s.Flows == nil && s.Workload.Kind == "" &&
		s.Mobility == nil && s.Faults.Empty() && !s.DisablePool
}

// Inject kinds. Each is a deliberate harness fault fired at Inject.At of
// virtual time.
const (
	// InjectPanic panics inside an engine callback — exercises the
	// runners' per-point panic containment.
	InjectPanic = "panic"
	// InjectStall enters a zero-delay self-rescheduling event loop —
	// virtual time stops advancing and the stall watchdog must trip.
	InjectStall = "stall"
	// InjectCorruptInflight skews connection 0's inflight counter — the
	// invariant checker (Spec.Check) must turn it into a structured
	// violation.
	InjectCorruptInflight = "corrupt-inflight"
	// InjectLeakPacket acquires one pool packet and drops it — the
	// end-of-run leak audit (Spec.Check) must report it.
	InjectLeakPacket = "leak-packet"
	// InjectLeakMailbox drops one packet inside the cross-shard mailbox at
	// the next window barrier — the sharded conservation audit (Spec.Check
	// with Spec.Shards > 1) must catch it within one audit cycle.
	InjectLeakMailbox = "leak-mailbox"
)

// Inject describes one deliberate harness-level fault.
type Inject struct {
	// Kind selects the fault ("" = none): InjectPanic, InjectStall,
	// InjectCorruptInflight or InjectLeakPacket.
	Kind string
	// At is the virtual time the fault fires.
	At time.Duration
}

// Validate rejects unknown kinds and negative times.
func (in Inject) Validate() error {
	switch in.Kind {
	case "", InjectPanic, InjectStall, InjectCorruptInflight, InjectLeakPacket, InjectLeakMailbox:
	default:
		return fmt.Errorf("unknown inject kind %q", in.Kind)
	}
	if in.At < 0 {
		return fmt.Errorf("inject at %v is negative", in.At)
	}
	return nil
}

func (s Spec) withDefaults() Spec {
	if s.CC == "" {
		s.CC = "cubic"
	}
	if s.Conns <= 0 {
		s.Conns = 1
	}
	if s.Duration <= 0 {
		s.Duration = 10 * time.Second
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.MaxEvents == 0 {
		s.MaxEvents = 200_000_000
	}
	if s.MaxWallClock == 0 {
		s.MaxWallClock = 2 * time.Minute
	}
	if s.MaxStall == 0 {
		s.MaxStall = 2_000_000
	}
	return s
}

// Validate rejects malformed specs with a descriptive error before any
// simulation state is built. Run calls it on the defaulted spec; callers
// can use it directly for early feedback.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if err := s.Device.Valid(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := s.CPU.Valid(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	for _, name := range strings.Split(s.CC, ",") {
		if _, ok := Factories()[strings.TrimSpace(name)]; !ok {
			return fmt.Errorf("core: unknown congestion control %q", name)
		}
	}
	switch s.Network {
	case Ethernet, WiFi, Cellular, Cellular5G:
	default:
		return fmt.Errorf("core: unknown network %d", int(s.Network))
	}
	if s.Warmup < 0 {
		return fmt.Errorf("core: negative warmup %v", s.Warmup)
	}
	if s.Warmup >= s.Duration {
		return fmt.Errorf("core: warmup %v must be shorter than duration %v", s.Warmup, s.Duration)
	}
	if s.Interval < 0 {
		return fmt.Errorf("core: negative interval %v", s.Interval)
	}
	if s.Stride < 0 {
		return fmt.Errorf("core: negative pacing stride %v", s.Stride)
	}
	if s.FixedCwnd < 0 {
		return fmt.Errorf("core: negative fixed cwnd %d", s.FixedCwnd)
	}
	if s.FixedPacingRate < 0 {
		return fmt.Errorf("core: negative fixed pacing rate %v", s.FixedPacingRate)
	}
	if s.SndBuf < 0 {
		return fmt.Errorf("core: negative send buffer %v", s.SndBuf)
	}
	if err := s.TC.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := s.Workload.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if s.Flows != nil {
		if s.Workload.Kind != "" {
			return fmt.Errorf("core: Flows and Workload are mutually exclusive")
		}
		if s.Inject.Kind == InjectCorruptInflight {
			return fmt.Errorf("core: inject %q needs a fixed connection set (Flows is set)", s.Inject.Kind)
		}
		if err := s.Flows.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if err := s.Inject.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if s.Inject.Kind == InjectLeakPacket && s.DisablePool {
		return fmt.Errorf("core: inject %q needs the packet pool (DisablePool is set)", s.Inject.Kind)
	}
	if s.Shards < 0 {
		return fmt.Errorf("core: negative shard count %d", s.Shards)
	}
	if s.Inject.Kind == InjectLeakMailbox && !s.sharded() {
		return fmt.Errorf("core: inject %q needs a sharded run (Shards > 1 with no serial-only features)", s.Inject.Kind)
	}
	if err := s.Faults.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if s.Mobility != nil {
		if !s.Faults.Empty() {
			return fmt.Errorf("core: Mobility and Faults are mutually exclusive (the trace compiles to its own schedule)")
		}
		if err := s.Mobility.Schedule.Validate(); err != nil {
			return fmt.Errorf("core: mobility trace %q: %w", s.Mobility.Trace.Name, err)
		}
	}
	return nil
}

// String summarizes the spec for reports.
func (s Spec) String() string {
	return fmt.Sprintf("%s/%s %s conns=%d net=%s", s.Device, s.CPU, s.CC, s.Conns, s.Network)
}

// Factories returns the registered congestion-control factories by name.
func Factories() map[string]cc.Factory {
	return map[string]cc.Factory{
		"cubic": cubic.Factory(),
		"bbr":   bbr.Factory(),
		"bbr2":  bbrv2.Factory(),
		"reno":  reno.Factory(),
	}
}

// Result is one run's outcome.
type Result struct {
	Spec   Spec
	Report *iperf.Report
	// Events is the run's telemetry bus when Spec.Telemetry.Trace was set
	// (nil otherwise); write it out with Events.WriteJSONL.
	Events *telemetry.Bus
	// Profile attributes CPU-model cycles by core × phase × op when
	// Spec.Telemetry.Profile was set.
	Profile *telemetry.Profile
	// Engine holds simulator self-metrics when Spec.Telemetry.Metrics was
	// set: events processed, events/sec of wall clock, heap allocations
	// per simulated second.
	Engine *telemetry.EngineStats
	// Processed is the number of simulator events this run executed. It is
	// deterministic per seed (unlike the wall-clock figures in Engine) and
	// always recorded, so grid runners can report throughput and archives
	// can carry engine totals without enabling telemetry.
	Processed uint64
	// App is the application-level outcome when Spec.Workload selected a
	// workload (nil for bulk runs): request/chunk latency samples,
	// completion counts, and viewer rebuffer accounting.
	App *apps.Stats
	// Flows is the churn-level outcome when Spec.Flows was set (nil
	// otherwise): flow counts, FCT samples, conn-pool census, flow-table
	// accounting.
	Flows *flows.Stats
}

// flowsAuditStride bounds one invariant-checker pass under the churn
// workload: at most this many connections audited per tick, round-robin,
// so a 100k-flow run is not O(conns) every 50 ms of virtual time.
const flowsAuditStride = 256

// Run executes one experiment. It validates the spec, enforces the event
// and wall-clock budgets, and — when spec.Check is set — fails with a
// structured invariant-violation error instead of returning corrupt data.
func Run(spec Spec) (*Result, error) {
	spec = spec.withDefaults()
	// Every failure path returns a *RunError wrapping the defaulted spec,
	// so the error text always ends with a one-command repro line.
	fail := func(err error) error { return &RunError{Spec: spec, Err: err} }
	if err := spec.Validate(); err != nil {
		return nil, fail(err)
	}
	names := strings.Split(spec.CC, ",")
	factories := make([]cc.Factory, len(names))
	for i, name := range names {
		f, ok := Factories()[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("core: unknown congestion control %q", name)
		}
		factories[i] = f
	}
	// The kernel's BBR re-measures propagation delay every 10 s; runs
	// shorter than a few windows scale the filter down so steady-state
	// min-RTT refresh and PROBE_RTT dynamics still happen (the paper's
	// physical runs last 5 minutes).
	for i := range factories {
		factory := factories[i]
		if w := spec.Duration / 3; w < 10*time.Second {
			if w < 500*time.Millisecond {
				w = 500 * time.Millisecond
			}
			inner := factory
			factory = func() cc.CongestionControl {
				m := inner()
				switch b := m.(type) {
				case *bbr.BBR:
					b.SetMinRTTWindow(w)
				case *bbrv2.BBRv2:
					b.SetMinRTTWindow(w)
				}
				return m
			}
		}
		if spec.FixedCwnd > 0 || spec.FixedPacingRate > 0 || spec.DisableModel {
			factory = mastermod.Factory(factory, mastermod.Overrides{
				FixedCwnd:       spec.FixedCwnd,
				FixedPacingRate: spec.FixedPacingRate,
				DisableModel:    spec.DisableModel,
			})
		}
		factories[i] = factory
	}

	// Sharded runs build a two-shard engine — shard 0 seeded identically to
	// the serial engine, so every RNG draw replays in the serial order —
	// and assemble the phone on shard 0 with the server's receivers on
	// shard 1. Everything below that takes `eng` lands on shard 0.
	var se *sim.ShardedEngine
	var eng *sim.Engine
	if spec.sharded() {
		se = sim.NewSharded(spec.Seed, 2)
		eng = se.Shard(0)
	} else {
		eng = sim.New(spec.Seed)
	}
	wall := spec.MaxWallClock
	if wall < 0 {
		wall = 0
	}
	limits := sim.Limits{MaxEvents: spec.MaxEvents, WallClock: wall, MaxStall: spec.MaxStall}
	if se != nil {
		se.SetLimits(limits)
	} else {
		eng.SetLimits(limits)
	}
	cpu, appCPU := device.NewCPUs(eng, spec.Device, spec.CPU)

	// Observability: each layer is built only when asked for, and a nil
	// bus/registry/profile keeps every instrumentation site a no-op.
	tel := spec.Telemetry
	var bus *telemetry.Bus
	if tel.Trace {
		bus = telemetry.NewBus(eng, tel.MaxEvents)
	}
	var reg *telemetry.Registry
	if tel.Metrics {
		reg = telemetry.NewRegistry()
	}
	var prof *telemetry.Profile
	if tel.Profile {
		prof = telemetry.NewProfile()
		cpu.SetObserver(func(op cpumodel.Op, cycles float64) {
			prof.Add("net", op.String(), cycles)
		})
		appCPU.SetObserver(func(op cpumodel.Op, cycles float64) {
			prof.Add("app", op.String(), cycles)
		})
	}
	if bus != nil {
		// Governor frequency changes; only the net core reports — both
		// cores share one governor, so listening on both would duplicate.
		cpu.SetSpeedListener(func(old, new float64) {
			bus.Emit(telemetry.Event{Kind: telemetry.KindGovernor, Conn: -1, Value: new, V2: old})
		})
	}

	var (
		path *netem.Path
		err  error
	)
	switch spec.Network {
	case Ethernet:
		path, err = netem.EthernetLAN(eng, spec.TC)
	case WiFi:
		var mod *netem.WiFiModulator
		path, mod, err = netem.WiFiLAN(eng, spec.TC)
		if err == nil {
			mod.Start()
		}
	case Cellular:
		path, err = netem.CellularLTE(eng, spec.TC)
	case Cellular5G:
		path, err = netem.Cellular5G(eng, spec.TC)
	default:
		return nil, fmt.Errorf("core: unknown network %d", spec.Network)
	}
	if err != nil {
		return nil, fail(fmt.Errorf("core: %w", err))
	}
	var wiring *netem.CrossWiring
	if se != nil {
		// Re-home the path's last propagation leg and ACK return onto shard
		// 1; the hop delays double as the conservative lookahead.
		wiring, err = netem.NewCrossWiring(se, path, 1)
		if err != nil {
			return nil, fail(fmt.Errorf("core: %w", err))
		}
	}
	sched := spec.Faults
	if spec.Mobility != nil {
		sched = spec.Mobility.Schedule
		if err := spec.Mobility.Install(eng, path, bus); err != nil {
			return nil, fail(fmt.Errorf("core: %w", err))
		}
	} else if !sched.Empty() {
		if err := sched.InstallObserved(eng, path, bus); err != nil {
			return nil, fail(fmt.Errorf("core: %w", err))
		}
	}
	if prof != nil {
		// Phase attribution: cycles before, during, and after the fault
		// window. With no faults the whole run is one "run" phase; an
		// open-ended schedule never leaves "during".
		if start, end, open, ok := sched.Window(); ok {
			prof.SetPhase("before")
			eng.Schedule(start, func() { prof.SetPhase("during") })
			if end > start && !open {
				eng.Schedule(end, func() { prof.SetPhase("after") })
			}
		}
	}

	cfg := tcp.Config{PacingOverride: spec.PacingOverride, SndBuf: spec.SndBuf}
	cfg.Pacing.Stride = spec.Stride
	cfg.Pacing.FixedRate = spec.FixedPacingRate
	cfg.Pacing.HardwareOffload = spec.HardwarePacing

	// The packet/ACK recycler is private to this run: repro grids run many
	// Run calls in parallel and a shared pool would race. Sharded runs give
	// each shard its own arena (packets home on the sender, ACKs too — the
	// receiver only recycles) and splice freelists back at every barrier.
	var pool *seg.Pool
	var ps *seg.PoolSet
	if !spec.DisablePool {
		if se != nil {
			ps = seg.NewPoolSet(2, 0, 1)
			pool = ps.Arena(0)
			se.OnBarrier(ps.Rebalance)
		} else {
			pool = seg.NewPool()
		}
	}

	icfg := iperf.Config{
		Conns:    spec.Conns,
		Duration: spec.Duration,
		Warmup:   spec.Warmup,
		Interval: spec.Interval,
		TCP:      cfg,
		AppCPU:   appCPU,
		Bus:      bus,
		Metrics:  reg,
		Pool:     pool,
	}
	if len(factories) == 1 {
		icfg.CC = factories[0]
	} else {
		icfg.CCMix = factories
	}
	if se != nil {
		icfg.Shard = &iperf.Shard{Engines: se, Wiring: wiring, RxShard: 1, Pools: ps}
	}
	var (
		sess  *iperf.Session
		asess *apps.Session
		fsess *flows.Session
	)
	switch {
	case spec.Flows != nil:
		fsess, err = flows.New(eng, cpu, path, icfg, *spec.Flows)
	case spec.Workload.Kind != "":
		asess, err = apps.New(eng, cpu, path, icfg, spec.Workload)
		if err == nil {
			sess = asess.Iperf()
		}
	default:
		sess, err = iperf.New(eng, cpu, path, icfg)
	}
	if err != nil {
		return nil, fail(fmt.Errorf("core: %w", err))
	}
	var chk *check.Checker
	if spec.Check {
		chk = check.New(eng, fmt.Sprintf("%s seed=%d", spec, spec.Seed), 0)
		chk.SetBus(bus)
		if fsess != nil {
			// The population churns, so the checker takes a live view,
			// amortizes each pass over a bounded stride, reads the global
			// held-ACK count from the O(1) aggregate (a partial pass
			// cannot sum it), and prunes history as flows retire.
			chk.WatchDynamic(fsess.Auditables)
			chk.SetAuditStride(flowsAuditStride)
			chk.SetHeldAcks(fsess.Aggregates().HeldAcks)
			fsess.SetOnRetire(chk.Forget)
		} else {
			for _, c := range sess.Conns() {
				chk.Watch(c)
			}
		}
		if ps != nil {
			// Audit the summed census across arenas and fold the cross-shard
			// mailbox custody into the in-transit count; the audit itself
			// fires at every-shard barrier cuts so both shards are quiescent.
			chk.WatchPool(ps, path)
			chk.SetCrossCensus(wiring.CrossPackets, wiring.CrossAcks)
		} else if pool != nil {
			chk.WatchPool(pool, path)
		}
		if se != nil {
			se.GlobalEvery(check.DefaultInterval, chk.CheckNow)
		} else {
			chk.Start()
		}
	}
	if bus != nil && sess != nil {
		// Periodic per-connection samples (cwnd, inflight, pacing rate,
		// srtt, CC mode) interleaved with the transport events. The churn
		// workload has no fixed connection set to trace.
		rec := trace.New(eng, sess.Conns(), 0)
		rec.SetBus(bus)
		rec.Start()
	}
	switch spec.Inject.Kind {
	case InjectPanic:
		eng.Schedule(spec.Inject.At, func() {
			panic(fmt.Sprintf("core: injected panic at %v", eng.Now()))
		})
	case InjectStall:
		var spin func()
		spin = func() { eng.Schedule(0, spin) }
		eng.Schedule(spec.Inject.At, spin)
	case InjectCorruptInflight:
		eng.Schedule(spec.Inject.At, func() { sess.Conns()[0].CorruptInflightForTest(3) })
	case InjectLeakPacket:
		eng.Schedule(spec.Inject.At, func() { pool.LeakPacketForTest() })
	case InjectLeakMailbox:
		eng.Schedule(spec.Inject.At, func() { wiring.ArmLeakForTest() })
	}
	var coll *telemetry.EngineCollector
	if tel.Metrics {
		coll = telemetry.StartEngineCollector(eng)
	}
	var (
		report    *iperf.Report
		appStats  *apps.Stats
		flowStats *flows.Stats
	)
	switch {
	case asess != nil:
		report, appStats = asess.Run()
	case fsess != nil:
		report, flowStats = fsess.Run()
	default:
		report = sess.Run()
	}
	var lerr error
	if se != nil {
		lerr = se.LimitErr()
	} else {
		lerr = eng.LimitErr()
	}
	if lerr != nil {
		return nil, fail(fmt.Errorf("core: %s seed=%d: %w", spec, spec.Seed, lerr))
	}
	if chk != nil {
		chk.CheckNow()
		// sess.Run has reclaimed the network's hold buffers by now, so
		// anything still outstanding in the pool is a genuine leak.
		chk.CheckLeaks()
		if cerr := chk.Err(); cerr != nil {
			return nil, fail(cerr)
		}
	}
	return &Result{
		Spec:      spec,
		Report:    report,
		Events:    bus,
		Profile:   prof,
		Engine:    coll.Stop(),
		Processed: processed(eng, se),
		App:       appStats,
		Flows:     flowStats,
	}, nil
}

// processed returns the run's executed event count: the shard sum plus
// barrier-global firings when sharded (which matches the serial engine's
// count exactly — each global firing replaces one serial timer event),
// otherwise the single engine's count.
func processed(eng *sim.Engine, se *sim.ShardedEngine) uint64 {
	if se != nil {
		return se.Processed()
	}
	return eng.Processed()
}

// Aggregate is the multi-seed summary of a Spec.
type Aggregate struct {
	Spec Spec
	// Goodput / RTT / Retransmits summarize across seeds.
	Goodput     stats.Online
	AvgRTT      stats.Online
	MinRTT      stats.Online
	Retransmits stats.Online
	AvgSKB      stats.Online
	AvgIdle     stats.Online
	ExpectedTx  stats.Online
	MaxBufOcc   stats.Online
	CPUUtil     stats.Online
	Runs        []*Result
	// App folds the per-seed application stats (nil for bulk runs):
	// latency samples are pooled across seeds so grid quantiles have
	// every completed operation behind them.
	App *apps.Stats
	// Flows folds the per-seed churn stats the same way (nil unless
	// Spec.Flows was set): FCT samples pool, counters sum.
	Flows *flows.Stats
}

// GoodputMbps returns the mean aggregate goodput in Mbps.
func (a *Aggregate) GoodputMbps() float64 { return a.Goodput.Mean() / 1e6 }

// RunSeeds executes spec across n seeds (1, 2, …, n offsets from
// spec.Seed) and aggregates the reports.
func RunSeeds(spec Spec, n int) (*Aggregate, error) {
	if n <= 0 {
		n = 1
	}
	spec = spec.withDefaults()
	agg := &Aggregate{Spec: spec}
	for i := 0; i < n; i++ {
		s := spec
		s.Seed = spec.Seed + int64(i)
		res, err := Run(s)
		if err != nil {
			return nil, fmt.Errorf("seed %d of %d (base %d): %w", s.Seed, n, spec.Seed, err)
		}
		r := res.Report
		agg.Goodput.Add(float64(r.Goodput))
		agg.AvgRTT.Add(float64(r.AvgRTT))
		agg.MinRTT.Add(float64(r.MinRTT))
		agg.Retransmits.Add(float64(r.Retransmits))
		agg.AvgSKB.Add(float64(r.AvgSKB))
		agg.AvgIdle.Add(float64(r.AvgIdle))
		agg.ExpectedTx.Add(float64(r.ExpectedTx))
		agg.MaxBufOcc.Add(float64(r.MaxBufferOcc))
		agg.CPUUtil.Add(r.CPUUtil)
		agg.Runs = append(agg.Runs, res)
	}
	appRuns := make([]*apps.Stats, 0, len(agg.Runs))
	flowRuns := make([]*flows.Stats, 0, len(agg.Runs))
	for _, res := range agg.Runs {
		appRuns = append(appRuns, res.App)
		flowRuns = append(flowRuns, res.Flows)
	}
	agg.App = apps.Merge(appRuns)
	agg.Flows = flows.Merge(flowRuns)
	return agg, nil
}
