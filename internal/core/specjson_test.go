package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"mobbr/internal/apps"
	"mobbr/internal/device"
	"mobbr/internal/faults"
	"mobbr/internal/mobility"
	"mobbr/internal/netem"
	"mobbr/internal/units"
)

// TestSpecJSONRoundTrip proves every behavior-affecting field survives
// encode → decode, including the typed fault schedule.
func TestSpecJSONRoundTrip(t *testing.T) {
	on := true
	spec := Spec{
		Device:          device.Pixel6,
		CPU:             device.MidEnd,
		CC:              "bbr,cubic",
		Conns:           7,
		Duration:        1300 * time.Millisecond,
		Warmup:          200 * time.Millisecond,
		Network:         WiFi,
		TC:              netem.TC{Rate: 600 * units.Mbps, Delay: 3 * time.Millisecond, Loss: 0.01, QueuePackets: 32, ECNThreshold: 8, ReorderJitter: time.Millisecond},
		PacingOverride:  &on,
		Stride:          5,
		HardwarePacing:  true,
		FixedPacingRate: 20 * units.Mbps,
		FixedCwnd:       70,
		DisableModel:    true,
		Interval:        100 * time.Millisecond,
		SndBuf:          512 * units.KB,
		Seed:            42,
		Faults: faults.Schedule{Hop: 1, Events: []faults.Event{
			faults.Blackout{Start: 100 * time.Millisecond, Duration: 50 * time.Millisecond},
			faults.RateStep{At: 200 * time.Millisecond, Rate: 100 * units.Mbps},
			faults.RateRamp{Start: 300 * time.Millisecond, Duration: 100 * time.Millisecond, From: 100 * units.Mbps, To: 10 * units.Mbps, Steps: 4},
			faults.DelaySpike{Start: 500 * time.Millisecond, Duration: 40 * time.Millisecond, Extra: 20 * time.Millisecond},
			faults.DelayStep{At: 600 * time.Millisecond, Delay: 9 * time.Millisecond},
			faults.BurstLoss{Start: 700 * time.Millisecond, Duration: 80 * time.Millisecond, GE: netem.GEConfig{PGoodToBad: 0.1, PBadToGood: 0.3, LossBad: 0.9}},
			faults.Handover{At: 900 * time.Millisecond, Outage: 30 * time.Millisecond, Rate: 300 * units.Mbps, Delay: 2 * time.Millisecond},
		}},
		Check:        true,
		MaxEvents:    123456,
		MaxWallClock: 30 * time.Second,
		MaxStall:     1000,
		Inject:       Inject{Kind: InjectCorruptInflight, At: 400 * time.Millisecond},
	}
	data, err := EncodeSpec(spec)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSpec(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, spec) {
		t.Fatalf("round trip diverged:\n got  %+v\n want %+v", got, spec)
	}
	// Encoding must be deterministic (corpus diffs, journal hashing).
	again, err := EncodeSpec(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(again) != string(data) {
		t.Fatalf("re-encode diverged:\n first  %s\n second %s", data, again)
	}
}

// TestSpecJSONWorkloadRoundTrip proves both app workload kinds survive
// encode → decode with every field, and that a spec without a workload
// block decodes to the iperf default — old corpus entries and journals
// replay unchanged.
func TestSpecJSONWorkloadRoundTrip(t *testing.T) {
	for _, wl := range []apps.Workload{
		{Kind: apps.KindReqRep, ReqSize: 48 * units.KB, RespSize: 2 * units.KB, Think: 25 * time.Millisecond},
		{Kind: apps.KindStream, Chunk: 200 * time.Millisecond,
			Ladder:  []units.Bandwidth{2 * units.Mbps, 8 * units.Mbps},
			Startup: 3, RespSize: 256, DownRate: 40 * units.Mbps},
	} {
		spec := Spec{Device: device.Pixel4, CPU: device.LowEnd, CC: "bbr", Conns: 2,
			Network: Ethernet, Seed: 5, Workload: wl}
		data, err := EncodeSpec(spec)
		if err != nil {
			t.Fatalf("%s: encode: %v", wl.Kind, err)
		}
		got, err := DecodeSpec(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", wl.Kind, err)
		}
		if !reflect.DeepEqual(got, spec) {
			t.Fatalf("%s: round trip diverged:\n got  %+v\n want %+v", wl.Kind, got, spec)
		}
	}

	// Back-compat: a pre-workload wire form (no "workload" key) must decode
	// to the zero Workload, i.e. the bulk iperf upload.
	legacy := `{"device":"pixel4","cpu":"low","cc":"bbr","conns":1,"network":"ethernet","seed":3}`
	got, err := DecodeSpec([]byte(legacy))
	if err != nil {
		t.Fatalf("legacy spec rejected: %v", err)
	}
	if got.Workload.Kind != "" {
		t.Fatalf("legacy spec decoded with workload %q, want bulk default", got.Workload.Kind)
	}
	// And a bulk spec must not emit the key at all (byte-stable archives).
	data, err := EncodeSpec(got)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "workload") {
		t.Fatalf("bulk spec encodes a workload block: %s", data)
	}
}

// TestSpecJSONMobilityRoundTrip proves a synthesized mobility trace
// recompiles to the identical schedule on decode.
func TestSpecJSONMobilityRoundTrip(t *testing.T) {
	tr, err := mobility.Synthesize(mobility.Driving, 3*time.Second, 100*time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := mobility.Compile(tr, mobility.CompileOptions{Hop: 0, OtherRTT: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{CC: "bbr", Conns: 1, Network: Cellular, Duration: tr.Duration(), Mobility: c, Seed: 3}
	data, err := EncodeSpec(spec)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSpec(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Mobility == nil {
		t.Fatal("mobility lost in round trip")
	}
	if !reflect.DeepEqual(got.Mobility.Schedule, c.Schedule) {
		t.Fatalf("recompiled schedule diverged")
	}
	if !reflect.DeepEqual(got.Mobility.Segments, c.Segments) {
		t.Fatalf("recompiled segments diverged")
	}
}

// TestSpecJSONStrict proves unknown fields and bad tokens fail loudly.
func TestSpecJSONStrict(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"device":"pixel4","cpu":"low","cc":"bbr","conns":1,"network":"ethernet","bogus":1}`, "bogus"},
		{"bad device", `{"device":"pixel9","cpu":"low","cc":"bbr","conns":1,"network":"ethernet"}`, "device token"},
		{"bad cpu", `{"device":"pixel4","cpu":"turbo","cc":"bbr","conns":1,"network":"ethernet"}`, "cpu token"},
		{"bad network", `{"device":"pixel4","cpu":"low","cc":"bbr","conns":1,"network":"6g"}`, "network token"},
		{"bad event kind", `{"device":"pixel4","cpu":"low","cc":"bbr","conns":1,"network":"ethernet","faults":{"events":[{"kind":"meteor"}]}}`, "event kind"},
		{"bad duration", `{"device":"pixel4","cpu":"low","cc":"bbr","conns":1,"network":"ethernet","duration":"fast"}`, "duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSpec([]byte(tc.in))
			if err == nil {
				t.Fatalf("decode accepted %s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestReproLineRuns proves the repro line's embedded JSON decodes back to
// a runnable spec.
func TestReproLineRuns(t *testing.T) {
	spec := Spec{CC: "bbr", Conns: 2, Duration: 500 * time.Millisecond, Seed: 9}
	line := ReproLine(spec)
	const marker = "-run-spec '"
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("repro line %q has no -run-spec payload", line)
	}
	payload := strings.TrimSuffix(line[i+len(marker):], "'")
	got, err := DecodeSpec([]byte(payload))
	if err != nil {
		t.Fatalf("repro payload does not decode: %v", err)
	}
	if got.Seed != 9 || got.Conns != 2 || got.CC != "bbr" {
		t.Fatalf("repro payload diverged: %+v", got)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("repro payload does not validate: %v", err)
	}
}
