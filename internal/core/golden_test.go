package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mobbr/internal/device"
	"mobbr/internal/telemetry"
)

// TestTraceMatchesGolden pins the engine's event ordering across scheduler
// rewrites: the telemetry trace of a fixed-seed run must stay byte-identical
// to the checked-in golden, which was captured with the original
// container/heap scheduler. Any reordering of equal-time events, change in
// sequence numbering, or drift in timer semantics shows up here first.
//
// Regenerate (only when an intentional behaviour change is made):
//
//	go run ./cmd/mobbr -cc bbr -config low -conns 2 -dur 500ms -seed 7 \
//	    -trace internal/core/testdata/golden_trace.jsonl
func TestTraceMatchesGolden(t *testing.T) {
	res, err := Run(Spec{
		Device: device.Pixel4, CPU: device.LowEnd, CC: "bbr",
		Conns: 2, Network: Ethernet,
		Duration: 500 * time.Millisecond, Warmup: 100 * time.Millisecond,
		Seed:      7,
		Telemetry: telemetry.Config{Trace: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := res.Events.WriteJSONL(&got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got.Bytes(), want) {
		return
	}
	gl := bytes.Split(got.Bytes(), []byte("\n"))
	wl := bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("trace diverges from golden at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("trace length differs from golden: got %d lines, want %d", len(gl), len(wl))
}
