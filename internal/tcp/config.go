// Package tcp implements the simulated TCP sender and receiver endpoints:
// cwnd/inflight accounting, a SACK scoreboard with dupack-threshold loss
// detection, RTO, delivery-rate sampling per the kernel's tcp_rate.c, TSO
// autosizing and internal pacing, and a delayed-ACK receiver. Every CPU-
// visible operation (skb transmission, per-segment work, ACK processing,
// congestion-control updates, pacing-timer callbacks, RTO handling) is
// charged to the device's cpumodel.CPU, which is how the paper's low-end
// phone bottleneck is reproduced.
package tcp

import (
	"time"

	"mobbr/internal/pacing"
	"mobbr/internal/seg"
	"mobbr/internal/units"
)

// Config parameterizes a connection.
type Config struct {
	// MSS is the maximum segment size (default seg.MSS).
	MSS units.DataSize
	// InitialCwnd is the initial congestion window in packets
	// (default 10, per RFC 6928).
	InitialCwnd int
	// MaxCwnd caps the congestion window in packets; it stands in for
	// the send-buffer/receive-window limit (default SndBuf/MSS).
	MaxCwnd int
	// SndBuf is the socket send buffer (default 256 KB); it bounds
	// MaxCwnd and is reported by the memory experiment (§7.1.1).
	SndBuf units.DataSize
	// DelAckEvery is the receiver's ack-every-N policy (default 2).
	DelAckEvery int
	// DelAckTimeout is the delayed-ACK timer (default 40 ms).
	DelAckTimeout time.Duration
	// MinRTO / MaxRTO clamp the retransmission timeout
	// (defaults 200 ms / 60 s, per the Linux defaults).
	MinRTO time.Duration
	MaxRTO time.Duration
	// MaxRetries is how many consecutive RTOs (without any forward ACK
	// progress) the connection tolerates before it is declared dead and
	// reported through Err — the analogue of tcp_retries2 (default 15).
	MaxRetries int
	// StallTimeout arms the per-connection watchdog: if the connection
	// has outstanding work but makes no delivery progress for this long,
	// it is declared dead and reported through Err instead of spinning
	// forever. Default 30 s; negative disables the watchdog.
	StallTimeout time.Duration
	// DupThresh is the SACK/dupack reordering threshold (default 3).
	DupThresh int
	// Pacing configures the internal pacer. Pacing.Enabled is forced on
	// when the congestion module wants pacing (BBR), unless
	// PacingOverride says otherwise.
	Pacing pacing.Config
	// PacingOverride, when non-nil, forces pacing on or off regardless
	// of the congestion module — the §5.2 master-module knob.
	PacingOverride *bool
	// AppBytes limits the bytes the application writes; 0 means an
	// unbounded bulk source (iPerf3 default).
	AppBytes units.DataSize
	// StartDelay delays the connection's first transmission.
	StartDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = seg.MSS
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 10
	}
	if c.SndBuf <= 0 {
		c.SndBuf = 256 * units.KB
	}
	if c.MaxCwnd <= 0 {
		c.MaxCwnd = int(c.SndBuf / c.MSS)
	}
	if c.DelAckEvery <= 0 {
		c.DelAckEvery = 2
	}
	if c.DelAckTimeout <= 0 {
		c.DelAckTimeout = 40 * time.Millisecond
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 60 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 15
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.DupThresh <= 0 {
		c.DupThresh = 3
	}
	return c
}
