package tcp

import (
	"sort"
	"time"

	"mobbr/internal/netem"
	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/units"
)

// GRO parameters for the server's NIC: arriving in-order segments are
// coalesced until the stream pauses or the bundle reaches the GSO limit,
// and one ACK covers the whole bundle — standard desktop receive behaviour.
// Aggregated ACKs are what let the unpaced sender burst whole windows at
// once, which is how disabling pacing congests the network (§5.2.3).
const (
	groFlushGap = 90 * time.Microsecond
	groMaxBytes = 64 * units.KB
)

// Receiver is the server side of one connection (the iPerf3 server's
// desktop): it reassembles the byte stream, counts goodput, and generates
// one ACK per GRO bundle in order — immediately on reordering or
// duplicates — with SACK blocks. The server machine is fast and is not
// charged to the phone's CPU model.
type Receiver struct {
	eng  *sim.Engine
	path *netem.Path
	conn *Conn
	cfg  Config

	rcvNxt int64
	ooo    []seg.SackBlock // disjoint, sorted by Start

	pendingBytes units.DataSize
	ceSinceAck   int64
	flush        sim.Timer
	flushFire    func() // cached flush callback: re-arming allocates nothing

	// The GRO flush needs the last packet's echo fields after the packet
	// itself has been consumed (released to the pool at the end of
	// OnPacket), so they are copied out rather than aliased.
	lastSentAt time.Duration
	lastRetx   bool
	lastEnd    int64
	haveLast   bool

	goodBytes units.DataSize // in-order bytes delivered (goodput)
	dupPkts   uint64
	acksSent  uint64

	// Sharded overrides (SetShard): in a sharded run the receiver lives on
	// a different engine shard than its conn, so packet release and ACK
	// acquisition must use the receiver shard's pool arena, and ACK return
	// must cross back through the shard mailbox instead of scheduling on
	// the sender's engine. Both nil in serial runs.
	rxPool    *seg.Pool
	returnAck func(*seg.Ack)

	// onDelivery, when set, fires after OnPacket whenever rcvNxt advanced —
	// the receive-side readable notification the simnet facade consumes.
	onDelivery func()
}

// SetDeliveryListener installs the in-order-delivery hook. It runs after
// the triggering packet has been released to the pool, so it may freely
// schedule follow-on work.
func (r *Receiver) SetDeliveryListener(fn func()) { r.onDelivery = fn }

// SetShard moves the receiver's pool traffic to the given arena and its ACK
// return to returnAck (the cross-shard mailbox). Call once at wiring time;
// NewReceiver must already have been given the receiver shard's engine.
func (r *Receiver) SetShard(pool *seg.Pool, returnAck func(*seg.Ack)) {
	r.rxPool = pool
	r.returnAck = returnAck
}

// recvPool returns the pool serving this receiver's acquire/release: the
// receiver shard's arena when sharded, otherwise the conn's pool.
func (r *Receiver) recvPool() *seg.Pool {
	if r.rxPool != nil {
		return r.rxPool
	}
	return r.conn.pool
}

// NewReceiver builds the receiving endpoint for conn and registers the
// connection's ACK-arrival handler on the path's per-flow return fast path.
func NewReceiver(eng *sim.Engine, path *netem.Path, conn *Conn) *Receiver {
	r := &Receiver{eng: eng, path: path, conn: conn, cfg: conn.cfg}
	r.flushFire = r.flushExpired
	path.RegisterAckHandler(conn.id, conn.OnAckArrival)
	return r
}

// OnPacket processes one arriving data segment. This is the packet's sink
// point: its payload is absorbed into the reassembly state and the packet
// object is released back to the pool before returning.
func (r *Receiver) OnPacket(pkt *seg.Packet) {
	prevNxt := r.rcvNxt
	r.lastSentAt, r.lastRetx, r.lastEnd = pkt.SentAt, pkt.Retx, pkt.End()
	r.haveLast = true
	if pkt.CE {
		r.ceSinceAck++
	}
	switch {
	case pkt.End() <= r.rcvNxt || r.covered(pkt):
		// Duplicate (spurious retransmission): ACK immediately so the
		// sender's scoreboard converges.
		r.dupPkts++
		r.sendAck(pkt.SentAt, pkt.Retx, pkt.End())
	case pkt.Seq <= r.rcvNxt:
		// In-order (possibly overlapping the edge): advance and pull in
		// any out-of-order data that is now contiguous.
		if pkt.End() > r.rcvNxt {
			r.goodBytes += units.DataSize(pkt.End() - r.rcvNxt)
			r.rcvNxt = pkt.End()
		}
		r.mergeContiguous()
		r.pendingBytes += pkt.Len
		if len(r.ooo) > 0 || r.pendingBytes >= groMaxBytes {
			r.sendAck(pkt.SentAt, pkt.Retx, pkt.End())
		} else {
			r.armFlush()
		}
	default:
		// Out of order: store and ACK immediately (dupack with SACK).
		r.insertOOO(seg.SackBlock{Start: pkt.Seq, End: pkt.End()})
		r.sendAck(pkt.SentAt, pkt.Retx, pkt.End())
	}
	r.recvPool().PutPacket(pkt)
	if r.rcvNxt > prevNxt {
		if r.conn.agg != nil {
			// The single point goodBytes advances: the aggregate counter
			// stays integer-identical to Σ Receiver.GoodBytes().
			r.conn.agg.goodBytes += units.DataSize(r.rcvNxt - prevNxt)
		}
		if r.onDelivery != nil {
			r.onDelivery()
		}
	}
}

// covered reports whether the packet's range is already held out-of-order.
func (r *Receiver) covered(pkt *seg.Packet) bool {
	for _, b := range r.ooo {
		if pkt.Seq >= b.Start && pkt.End() <= b.End {
			return true
		}
	}
	return false
}

func (r *Receiver) insertOOO(nb seg.SackBlock) {
	r.ooo = append(r.ooo, nb)
	sort.Slice(r.ooo, func(i, j int) bool { return r.ooo[i].Start < r.ooo[j].Start })
	// Merge overlapping/adjacent blocks.
	merged := r.ooo[:1]
	for _, b := range r.ooo[1:] {
		last := &merged[len(merged)-1]
		if b.Start <= last.End {
			if b.End > last.End {
				last.End = b.End
			}
		} else {
			merged = append(merged, b)
		}
	}
	r.ooo = merged
}

// mergeContiguous absorbs out-of-order blocks that now start at or below
// rcvNxt.
func (r *Receiver) mergeContiguous() {
	for len(r.ooo) > 0 && r.ooo[0].Start <= r.rcvNxt {
		if r.ooo[0].End > r.rcvNxt {
			r.goodBytes += units.DataSize(r.ooo[0].End - r.rcvNxt)
			r.rcvNxt = r.ooo[0].End
		}
		r.ooo = r.ooo[1:]
	}
}

// armFlush (re)schedules the GRO flush: the bundle is acknowledged once
// the arrival stream pauses.
func (r *Receiver) armFlush() {
	if !r.flush.Reschedule(groFlushGap) {
		r.flush = r.eng.Schedule(groFlushGap, r.flushFire)
	}
}

// flushExpired is the GRO flush timer's callback (cached in flushFire).
func (r *Receiver) flushExpired() {
	if r.pendingBytes > 0 && r.haveLast {
		r.sendAck(r.lastSentAt, r.lastRetx, r.lastEnd)
	}
}

// sendAck builds and returns an ACK echoing the triggering packet's fields.
// SACK blocks are value-copied out of r.ooo into the ACK's (pool-recycled)
// Sacks slice, so the ACK never aliases the receiver's out-of-order state —
// and conversely the ACK path may recycle the ACK without the receiver
// noticing (the fix for SACK slices outliving ACK consumption).
func (r *Receiver) sendAck(echoSentAt time.Duration, echoRetx bool, ackedEnd int64) {
	r.pendingBytes = 0
	r.flush.Stop()
	a := r.recvPool().GetAck()
	a.Flow = r.conn.id
	a.CumAck = r.rcvNxt
	a.EchoSentAt = echoSentAt
	a.EchoRetx = echoRetx
	a.AckedPktEnd = ackedEnd
	a.CECount = r.ceSinceAck
	r.ceSinceAck = 0
	// Report up to three SACK blocks, newest-covering first.
	if len(r.ooo) > 0 {
		n := len(r.ooo)
		for i := n - 1; i >= 0 && len(a.Sacks) < 3; i-- {
			a.Sacks = append(a.Sacks, r.ooo[i])
		}
	}
	r.acksSent++
	if r.returnAck != nil {
		r.returnAck(a)
	} else {
		r.path.ReturnAckFlow(a)
	}
}

// Reset re-initializes the receiver for its connection's next incarnation
// (the conn has already been Reset with a fresh flow id): reassembly state
// clears, the GRO flush timer is stopped, and the new id is registered on
// the path's per-flow ACK return. The ooo slice keeps its capacity.
func (r *Receiver) Reset() {
	r.flush.Stop()
	r.rcvNxt = 0
	r.ooo = r.ooo[:0]
	r.pendingBytes = 0
	r.ceSinceAck = 0
	r.lastSentAt, r.lastRetx, r.lastEnd, r.haveLast = 0, false, 0, false
	r.goodBytes = 0
	r.dupPkts, r.acksSent = 0, 0
	r.onDelivery = nil
	r.path.RegisterAckHandler(r.conn.id, r.conn.OnAckArrival)
}

// GoodBytes returns the in-order bytes delivered so far.
func (r *Receiver) GoodBytes() units.DataSize { return r.goodBytes }

// DupPackets returns how many duplicate segments arrived.
func (r *Receiver) DupPackets() uint64 { return r.dupPkts }

// AcksSent returns how many ACKs the receiver generated.
func (r *Receiver) AcksSent() uint64 { return r.acksSent }

// Demux routes packets arriving at the server to per-connection receivers.
type Demux struct {
	rx   map[int]*Receiver
	pool *seg.Pool
	// orphans counts packets that arrived for an unregistered flow — under
	// churn, data still in flight when its flow was retired.
	orphans uint64
}

// Orphans returns how many packets arrived for unregistered flows.
func (d *Demux) Orphans() uint64 { return d.orphans }

// NewDemux returns an empty demultiplexer; install it with path.SetReceiver.
func NewDemux() *Demux { return &Demux{rx: make(map[int]*Receiver)} }

// SetPool attaches the run's pool so packets for unknown flows (dropped
// silently) are still released.
func (d *Demux) SetPool(pool *seg.Pool) { d.pool = pool }

// Add registers a receiver for its connection's flow id.
func (d *Demux) Add(r *Receiver) { d.rx[r.conn.id] = r }

// Remove unregisters a flow id; packets still in flight toward it fall
// through Handle's unknown-flow path (released to the pool, counted).
func (d *Demux) Remove(flow int) { delete(d.rx, flow) }

// Len returns how many flows are currently registered.
func (d *Demux) Len() int { return len(d.rx) }

// Handle implements the path receiver callback.
func (d *Demux) Handle(pkt *seg.Packet) {
	if r, ok := d.rx[pkt.Flow]; ok {
		r.OnPacket(pkt)
	} else {
		d.orphans++
		d.pool.PutPacket(pkt)
	}
}

// Receiver returns the receiver for a flow id, or nil.
func (d *Demux) Receiver(flow int) *Receiver { return d.rx[flow] }
