package tcp

import (
	"time"

	"mobbr/internal/units"
)

// AggStats is a run-wide aggregate counter sink maintained incrementally at
// delivery and ACK time, so harness sampling (interval reports, warmup
// snapshots, pool cross-checks) costs O(1) regardless of how many
// connections are live. One AggStats is shared by every connection of a run;
// connections opt in with SetAggregates (nil, the default, costs the hot
// paths only nil-checks).
//
// The counters are defined to agree exactly — same integers, not just
// statistically — with the slow O(conns) walks they replace:
//
//	GoodBytes   == Σ Receiver.GoodBytes()   (hooked at the single point
//	               rcvNxt advances in OnPacket)
//	Retransmits == Σ ConnStats.Retransmits  (hooked at emit's retx loop)
//	HeldAcks    == Σ Audit.HeldAcks         (hooked at pendingAcks
//	               push/remove/drain)
//
// RTT is an incremental mean over every Karn-valid RTT sample (the per-ACK
// series, not the periodic `ss`-style poll iperf reports for the paper's
// figures).
type AggStats struct {
	goodBytes   units.DataSize
	retransmits int64
	heldAcks    int
	rttSum      time.Duration
	rttN        int64
}

// GoodBytes returns the in-order bytes delivered across all receivers.
func (a *AggStats) GoodBytes() units.DataSize { return a.goodBytes }

// Retransmits returns the total retransmitted segments across all senders.
func (a *AggStats) Retransmits() int64 { return a.retransmits }

// HeldAcks returns how many pooled ACKs are currently parked behind the CPU
// model (delivered by the network, not yet processed) across all
// connections — including stopped connections still draining toward
// quiescence.
func (a *AggStats) HeldAcks() int { return a.heldAcks }

// AvgRTT returns the mean of every RTT sample fed to the smoother so far
// (0 before the first sample).
func (a *AggStats) AvgRTT() time.Duration {
	if a.rttN == 0 {
		return 0
	}
	return a.rttSum / time.Duration(a.rttN)
}

// RTTSamples returns how many RTT samples AvgRTT averages over.
func (a *AggStats) RTTSamples() int64 { return a.rttN }

// RTTSum returns the running sum behind AvgRTT; with RTTSamples it lets
// interval reports compute exact windowed RTT means from counter deltas.
func (a *AggStats) RTTSum() time.Duration { return a.rttSum }

// SetAggregates attaches the shared aggregate counter sink. Call before
// Start (counters hooked mid-run would disagree with the slow walks).
func (c *Conn) SetAggregates(a *AggStats) { c.agg = a }
