package tcp

import (
	"testing"
	"time"
)

// FuzzScoreboard drives random interleavings of the scoreboard operations —
// send, cumulative ACK, SACK, RACK loss detection, RTO collapse, retransmit,
// F-RTO undo — through a shadow model of the sender's counters, and checks
// the audit invariants the sim-wide checker relies on after every step. Each
// input byte encodes one operation; the high bits parameterise it.
func FuzzScoreboard(f *testing.F) {
	// Seed corpus: representative op sequences (send bursts, SACK holes,
	// RTO + retransmit, RTO + undo). The last seed is the regression shape
	// for the ordered-add guard: interleaved sends and cumulative ACKs
	// compacting the ring while new segments append behind it.
	f.Add([]byte{0, 0, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 2, 2, 3, 5, 1})
	f.Add([]byte{0, 0, 0, 4, 5, 5, 1, 0, 0})
	f.Add([]byte{0, 0, 0, 4, 6, 1, 0})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0, 1, 0, 2, 4, 5, 1})

	const mss = 1448

	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		var (
			board     scoreboard
			nextSeq   int64
			cumAck    int64
			now       = time.Millisecond
			segsSent  int64
			delivered int64
			inflight  int64
			lostTotal int64
		)
		deliver := func(p *pktInfo) {
			if p.acked {
				return
			}
			p.acked = true
			if p.inFlite {
				p.inFlite = false
				inflight--
			}
			delivered++
		}
		for _, b := range ops {
			arg := int(b >> 3)
			now += 100 * time.Microsecond
			switch b % 7 {
			case 0: // send one new segment
				board.add(&pktInfo{seq: nextSeq, len: mss, sentAt: now, inFlite: true})
				nextSeq += mss
				segsSent++
				inflight++
			case 1: // cumulative ACK covering arg+1 live entries
				n := board.liveLen()
				if n == 0 {
					continue
				}
				k := arg % n
				ack := board.at(k).end()
				for _, p := range board.popAcked(ack) {
					if p.sacked {
						p.acked = true
						continue
					}
					deliver(p)
				}
				cumAck = ack
			case 2: // SACK a block of live entries above the hole
				n := board.liveLen()
				if n < 2 {
					continue
				}
				i := 1 + arg%(n-1) // never SACK the first hole
				j := i + 1 + arg%3
				if j > n {
					j = n
				}
				for _, p := range board.markSacked(board.at(i).seq, board.at(j-1).end()) {
					deliver(p)
				}
			case 3: // RACK/dupack loss detection
				for _, p := range board.detectLosses(3, time.Duration(arg)*time.Millisecond) {
					if p.inFlite {
						p.inFlite = false
						inflight--
					}
					lostTotal++
				}
			case 4: // RTO: condemn everything outstanding
				for _, p := range board.markAllLost() {
					if p.inFlite {
						p.inFlite = false
						inflight--
					}
					lostTotal++
				}
			case 5: // retransmit the first lost segment
				if p := board.firstLost(); p != nil {
					p.retx = true
					p.sentAt = now
					p.inFlite = true
					inflight++
				}
			case 6: // F-RTO undo: never-retransmitted condemned entries fly again
				for range board.undoLost() {
					inflight++
					lostTotal--
				}
			}

			aInfl, aLost, aSacked, aAcked, liveBytes := board.audit()
			if int64(aInfl) != inflight {
				t.Fatalf("inflight: counter %d, board %d", inflight, aInfl)
			}
			if aInfl+aLost+aSacked+aAcked != board.liveLen() {
				t.Fatalf("audit classes %d+%d+%d+%d != live %d",
					aInfl, aLost, aSacked, aAcked, board.liveLen())
			}
			if liveBytes != nextSeq-cumAck {
				t.Fatalf("live bytes %d != sndNxt-sndUna %d", liveBytes, nextSeq-cumAck)
			}
			// SACKed entries are delivered on arrival but stay live until
			// the cumulative ACK pops them, so the conserved quantity is
			// sent == delivered + in-flight + lost-pending (the sim-wide
			// checker's conservation/packets rule).
			if segsSent != delivered+int64(aInfl+aLost) {
				t.Fatalf("conservation: sent %d != delivered %d + inflight %d + lost %d",
					segsSent, delivered, aInfl, aLost)
			}
			if lostTotal < 0 || inflight < 0 {
				t.Fatalf("negative counters: inflight %d lost %d", inflight, lostTotal)
			}
			// firstLost and lostPending must agree.
			if p := board.firstLost(); p != nil {
				lp := board.lostPending(1)
				if len(lp) != 1 || lp[0] != p {
					t.Fatalf("firstLost/lostPending disagree")
				}
			} else if len(board.lostPending(1)) != 0 {
				t.Fatalf("lostPending nonempty but firstLost nil")
			}
			// Per-entry sanity: live seq range ordered and contiguous.
			for i := 1; i < board.liveLen(); i++ {
				if board.at(i).seq != board.at(i-1).end() {
					t.Fatalf("gap between live entries %d and %d", i-1, i)
				}
			}
			if board.liveLen() > 0 && board.at(0).seq < cumAck {
				t.Fatalf("live entry below cumulative ACK")
			}
		}
	})
}
