package tcp

import (
	"time"

	"mobbr/internal/units"
)

// pktInfo is the sender's per-segment scoreboard entry, the analogue of
// struct tcp_skb_cb for one MSS-sized segment.
type pktInfo struct {
	seq int64
	len units.DataSize

	sentAt  time.Duration
	retx    bool // has been retransmitted at least once
	inFlite bool // currently counted in flight
	sacked  bool
	lost    bool // marked lost, awaiting retransmission
	acked   bool // cumulatively acked or delivered

	// Rate-sample snapshots taken at (re)transmission, per tcp_rate.c.
	snapDelivered     int64
	snapDeliveredTime time.Duration
	snapFirstTx       time.Duration
	snapAppLimited    bool

	// free links the entry on its connection's pktInfo freelist once the
	// cumulative ACK retires it (tcp_clean_rtx_queue frees the skb there).
	free *pktInfo
}

func (p *pktInfo) end() int64 { return p.seq + int64(p.len) }

// scoreboard tracks sent-but-unacked segments in sequence order. Entries
// are appended as new data is sent and dropped from the front as the
// cumulative ACK advances; retransmissions update entries in place.
//
// Result-slice lifetime: popAcked, markSacked, detectLosses, markAllLost and
// undoLost all return views of one shared scratch buffer, so each result is
// valid only until the next call to any of them — callers must consume it
// immediately (the ACK path does: each result is fully processed before the
// next scoreboard call). lostPendingInto appends into a caller-owned buffer
// instead, because the transmit path retains its result across a CPU-model
// completion.
type scoreboard struct {
	entries []*pktInfo
	head    int // index of first live entry
	scratch []*pktInfo
}

// add appends a newly sent segment (must be in sequence order).
func (s *scoreboard) add(p *pktInfo) {
	if n := s.liveLen(); n > 0 {
		if last := s.at(n - 1); p.seq < last.end() {
			panic("tcp: scoreboard add out of order")
		}
	}
	s.entries = append(s.entries, p)
}

// liveLen returns the number of live entries.
func (s *scoreboard) liveLen() int { return len(s.entries) - s.head }

// at returns the i-th live entry.
func (s *scoreboard) at(i int) *pktInfo { return s.entries[s.head+i] }

// popAcked removes entries fully covered by cumAck from the front and
// returns them. Compaction keeps memory bounded on long runs.
func (s *scoreboard) popAcked(cumAck int64) []*pktInfo {
	out := s.scratch[:0]
	for s.head < len(s.entries) && s.entries[s.head].end() <= cumAck {
		out = append(out, s.entries[s.head])
		s.entries[s.head] = nil
		s.head++
	}
	if s.head > 1024 && s.head*2 > len(s.entries) {
		n := copy(s.entries, s.entries[s.head:])
		for i := n; i < len(s.entries); i++ {
			s.entries[i] = nil
		}
		s.entries = s.entries[:n]
		s.head = 0
	}
	s.scratch = out
	return out
}

// markSacked marks entries inside [start,end) as SACKed and returns the
// newly sacked ones.
func (s *scoreboard) markSacked(start, end int64) []*pktInfo {
	out := s.scratch[:0]
	for i := 0; i < s.liveLen(); i++ {
		p := s.at(i)
		if p.seq >= end {
			break
		}
		if p.end() <= start || p.sacked || p.acked {
			continue
		}
		if p.seq >= start && p.end() <= end {
			p.sacked = true
			out = append(out, p)
		}
	}
	s.scratch = out
	return out
}

// detectLosses applies the dupack/SACK-count rule: a segment is lost if at
// least dupThresh segments above it have been SACKed (FACK-style counting).
// A RACK-style time gate keeps stale evidence from re-condemning fresh
// retransmissions: the segment must also have been sent at least reoWnd
// before the newest SACKed segment. It returns the newly lost entries.
func (s *scoreboard) detectLosses(dupThresh int, reoWnd time.Duration) []*pktInfo {
	n := s.liveLen()
	if n == 0 {
		return nil
	}
	// Newest (by send time) SACKed entry bounds how fresh the loss
	// evidence is.
	var newestSack time.Duration = -1
	for i := 0; i < n; i++ {
		if p := s.at(i); p.sacked && p.sentAt > newestSack {
			newestSack = p.sentAt
		}
	}
	if newestSack < 0 {
		return nil
	}
	// Count sacked entries from the top down; when the running count
	// reaches dupThresh every unsacked entry below sent reoWnd before
	// the newest evidence is deemed lost.
	out := s.scratch[:0]
	sackedAbove := 0
	for i := n - 1; i >= 0; i-- {
		p := s.at(i)
		if p.sacked {
			sackedAbove++
			continue
		}
		if p.acked || p.lost {
			continue
		}
		if sackedAbove >= dupThresh && p.sentAt+reoWnd < newestSack {
			p.lost = true
			out = append(out, p)
		}
	}
	// Reverse so callers retransmit lowest sequence first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	s.scratch = out
	return out
}

// markAllLost marks every unsacked in-flight entry lost (tcp_enter_loss on
// RTO) and returns them in sequence order.
func (s *scoreboard) markAllLost() []*pktInfo {
	out := s.scratch[:0]
	for i := 0; i < s.liveLen(); i++ {
		p := s.at(i)
		if p.acked || p.sacked || p.lost {
			continue
		}
		p.lost = true
		out = append(out, p)
	}
	s.scratch = out
	return out
}

// undoLost clears the lost mark from entries that were condemned but never
// retransmitted (F-RTO spurious-timeout undo: the originals are still in
// flight) and returns them in sequence order.
func (s *scoreboard) undoLost() []*pktInfo {
	out := s.scratch[:0]
	for i := 0; i < s.liveLen(); i++ {
		p := s.at(i)
		if p.lost && !p.retx && !p.inFlite && !p.acked && !p.sacked {
			p.lost = false
			p.inFlite = true
			out = append(out, p)
		}
	}
	s.scratch = out
	return out
}

// audit walks the live entries and classifies each into exactly one state,
// for the invariant checker: in flight, lost awaiting retransmission,
// SACKed awaiting cumulative ACK, or acked-but-not-yet-popped. It also sums
// the live byte span.
func (s *scoreboard) audit() (inflight, lostPending, sacked, acked int, liveBytes int64) {
	for i := 0; i < s.liveLen(); i++ {
		p := s.at(i)
		liveBytes += int64(p.len)
		switch {
		case p.acked:
			acked++
		case p.sacked:
			sacked++
		case p.inFlite:
			inflight++
		case p.lost:
			lostPending++
		default:
			// Neither acked, sacked, in flight nor lost: impossible by
			// construction; counted as lost so the checker flags it.
			lostPending++
		}
	}
	return
}

// firstLost returns the lowest-sequence entry marked lost and not in
// flight, or nil.
func (s *scoreboard) firstLost() *pktInfo {
	for i := 0; i < s.liveLen(); i++ {
		p := s.at(i)
		if p.lost && !p.inFlite && !p.acked && !p.sacked {
			return p
		}
	}
	return nil
}

// lostPendingInto appends up to max lost entries awaiting retransmission to
// dst, in sequence order. The transmit path passes its own reusable buffer
// because the result lives until the CPU model finishes the transmit job.
func (s *scoreboard) lostPendingInto(dst []*pktInfo, max int) []*pktInfo {
	for i := 0; i < s.liveLen() && len(dst) < max; i++ {
		p := s.at(i)
		if p.lost && !p.inFlite && !p.acked && !p.sacked {
			dst = append(dst, p)
		}
	}
	return dst
}

// lostPending returns up to max lost entries in a fresh slice.
func (s *scoreboard) lostPending(max int) []*pktInfo {
	return s.lostPendingInto(nil, max)
}
