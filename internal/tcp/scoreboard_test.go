package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func mkEntry(seq int64, sentAt time.Duration) *pktInfo {
	return &pktInfo{seq: seq, len: 1000, sentAt: sentAt, inFlite: true}
}

func TestScoreboardAddOrdering(t *testing.T) {
	var s scoreboard
	s.add(mkEntry(0, 0))
	s.add(mkEntry(1000, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order add must panic")
		}
	}()
	s.add(mkEntry(500, 0))
}

func TestPopAcked(t *testing.T) {
	var s scoreboard
	for i := int64(0); i < 10; i++ {
		s.add(mkEntry(i*1000, 0))
	}
	got := s.popAcked(3500) // covers entries [0,1000) [1000,2000) [2000,3000)
	if len(got) != 3 {
		t.Fatalf("popped %d, want 3 (partial coverage keeps the 4th)", len(got))
	}
	if s.liveLen() != 7 {
		t.Fatalf("live = %d, want 7", s.liveLen())
	}
	if s.at(0).seq != 3000 {
		t.Fatalf("head seq = %d, want 3000", s.at(0).seq)
	}
}

func TestPopAckedCompaction(t *testing.T) {
	var s scoreboard
	n := int64(3000)
	for i := int64(0); i < n; i++ {
		s.add(mkEntry(i*1000, 0))
	}
	s.popAcked((n - 10) * 1000)
	if s.liveLen() != 10 {
		t.Fatalf("live = %d, want 10", s.liveLen())
	}
	// Compaction must have shrunk the backing slice head.
	if s.head > 1024 {
		t.Errorf("head = %d after compaction threshold", s.head)
	}
	// Entries still correct.
	if s.at(0).seq != (n-10)*1000 {
		t.Errorf("head seq wrong after compaction: %d", s.at(0).seq)
	}
}

func TestMarkSacked(t *testing.T) {
	var s scoreboard
	for i := int64(0); i < 5; i++ {
		s.add(mkEntry(i*1000, 0))
	}
	newly := s.markSacked(2000, 4000)
	if len(newly) != 2 {
		t.Fatalf("sacked %d, want 2", len(newly))
	}
	// Re-marking the same range yields nothing new.
	if again := s.markSacked(2000, 4000); len(again) != 0 {
		t.Fatalf("re-sack produced %d new entries", len(again))
	}
	// Partial overlap does not mark a partially covered packet.
	if partial := s.markSacked(4200, 4800); len(partial) != 0 {
		t.Fatalf("partial coverage sacked %d entries", len(partial))
	}
}

func TestDetectLossesRequiresDupThresh(t *testing.T) {
	var s scoreboard
	for i := int64(0); i < 6; i++ {
		s.add(mkEntry(i*1000, time.Duration(i)*time.Millisecond))
	}
	// SACK the top two only: below dupthresh 3 → nothing lost.
	s.markSacked(4000, 6000)
	if lost := s.detectLosses(3, time.Millisecond); len(lost) != 0 {
		t.Fatalf("lost %d below dupthresh", len(lost))
	}
	// Third SACK above: the unsacked entries below (sent ≥ reoWnd before
	// the newest sacked) become lost.
	s.markSacked(3000, 4000)
	lost := s.detectLosses(3, time.Millisecond)
	if len(lost) != 3 {
		t.Fatalf("lost %d, want 3 (seqs 0,1000,2000)", len(lost))
	}
	for i, p := range lost {
		if p.seq != int64(i)*1000 {
			t.Errorf("lost[%d].seq = %d, want ascending order", i, p.seq)
		}
	}
}

func TestDetectLossesRACKGate(t *testing.T) {
	var s scoreboard
	// Old packet at t=0, three sacked packets also around t=0, but a
	// freshly retransmitted packet at t=100ms must not be re-condemned
	// by that stale evidence.
	old := mkEntry(0, 0)
	s.add(old)
	fresh := mkEntry(1000, 100*time.Millisecond)
	s.add(fresh)
	for i := int64(2); i < 5; i++ {
		e := mkEntry(i*1000, 10*time.Millisecond+time.Duration(i)*time.Microsecond)
		s.add(e)
	}
	s.markSacked(2000, 5000)
	lost := s.detectLosses(3, time.Millisecond)
	if len(lost) != 1 || lost[0] != old {
		t.Fatalf("RACK gate failed: lost %d entries", len(lost))
	}
	if fresh.lost {
		t.Error("fresh retransmission condemned by stale SACK evidence")
	}
}

func TestMarkAllLost(t *testing.T) {
	var s scoreboard
	for i := int64(0); i < 5; i++ {
		s.add(mkEntry(i*1000, 0))
	}
	s.markSacked(1000, 2000)
	lost := s.markAllLost()
	if len(lost) != 4 {
		t.Fatalf("marked %d, want 4 (sacked survives)", len(lost))
	}
	// Idempotent.
	if again := s.markAllLost(); len(again) != 0 {
		t.Fatalf("second markAllLost produced %d", len(again))
	}
}

func TestLostPendingOrderAndLimit(t *testing.T) {
	var s scoreboard
	for i := int64(0); i < 6; i++ {
		e := mkEntry(i*1000, 0)
		e.lost = true
		e.inFlite = false
		s.add(e)
	}
	got := s.lostPending(3)
	if len(got) != 3 {
		t.Fatalf("pending = %d, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].seq <= got[i-1].seq {
			t.Fatal("lostPending not in sequence order")
		}
	}
	if s.firstLost() != got[0] {
		t.Error("firstLost != first of lostPending")
	}
}

// Property: popAcked never returns an entry whose end exceeds the ack, and
// the remaining head is always the first uncovered entry.
func TestPopAckedProperty(t *testing.T) {
	f := func(nPkts uint8, ackK uint8) bool {
		n := int64(nPkts%50) + 1
		var s scoreboard
		for i := int64(0); i < n; i++ {
			s.add(mkEntry(i*1000, 0))
		}
		ack := int64(ackK) * 250 // arbitrary, possibly mid-packet
		popped := s.popAcked(ack)
		for _, p := range popped {
			if p.end() > ack {
				return false
			}
		}
		if s.liveLen() > 0 && s.at(0).end() <= ack {
			return false
		}
		return int64(len(popped))+int64(s.liveLen()) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after random sack/ack/loss operations, no entry is ever both
// acked and lost, and detectLosses returns each entry at most once.
func TestScoreboardStateMachineProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var s scoreboard
		n := int64(rng.Intn(40) + 5)
		for i := int64(0); i < n; i++ {
			s.add(mkEntry(i*1000, time.Duration(i)*time.Millisecond))
		}
		seenLost := map[int64]bool{}
		for op := 0; op < 30; op++ {
			switch rng.Intn(3) {
			case 0:
				a, b := rng.Int63n(n*1000), rng.Int63n(n*1000)
				if a > b {
					a, b = b, a
				}
				s.markSacked(a, b)
			case 1:
				s.popAcked(rng.Int63n(n * 1000))
			case 2:
				for _, p := range s.detectLosses(3, time.Millisecond) {
					if seenLost[p.seq] {
						t.Fatalf("entry %d reported lost twice", p.seq)
					}
					seenLost[p.seq] = true
				}
			}
			for i := 0; i < s.liveLen(); i++ {
				p := s.at(i)
				if p.acked && p.lost {
					t.Fatal("entry both acked and lost")
				}
			}
		}
	}
}
