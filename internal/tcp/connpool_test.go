package tcp

import (
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cpumodel"
	"mobbr/internal/netem"
	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/units"
)

// poolHarness wires a ConnPool to a demux'd path the way the flows session
// does, with the aggregate sink and flow table attached.
type poolHarness struct {
	eng   *sim.Engine
	pool  *ConnPool
	demux *Demux
	path  *netem.Path
	agg   *AggStats
	segs  *seg.Pool
}

func newPoolHarness(t *testing.T) *poolHarness {
	t.Helper()
	eng := sim.New(1)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 5e9)
	path, err := netem.EthernetLAN(eng, netem.TC{})
	if err != nil {
		t.Fatalf("EthernetLAN: %v", err)
	}
	segs := seg.NewPool()
	path.SetPool(segs)
	demux := NewDemux()
	demux.SetPool(segs)
	path.SetReceiver(demux.Handle)
	agg := &AggStats{}
	ftab := cpumodel.NewFlowTable(16, 1, cpumodel.DefaultCosts())
	pool := NewConnPool(eng, cpu, nil, path, Config{}, segs, agg, ftab)
	return &poolHarness{eng: eng, pool: pool, demux: demux, path: path, agg: agg, segs: segs}
}

func streamFactory() cc.Factory {
	return func() cc.CongestionControl { return &stubCC{cwnd: 32} }
}

// runFlow opens flow id on the pool, streams size bytes to completion and
// releases the pair, mirroring the flows session's per-flow lifecycle.
func (h *poolHarness) runFlow(t *testing.T, id int, size int64) {
	t.Helper()
	pc := h.pool.Get(id, streamFactory())
	c := pc.Conn
	c.SetStream()
	done := false
	var written int64
	var pump func()
	pump = func() {
		for written < size {
			n, err := c.StreamWrite(size - written)
			if err != nil || n == 0 {
				return
			}
			written += n
		}
		c.CloseStream()
	}
	c.SetStreamCallbacks(pump, func() { done = true }, func(error) { t.Fatalf("flow %d failed", id) })
	h.demux.Add(pc.Rx)
	c.Start()
	pump()
	h.eng.Run(h.eng.Now() + 5*time.Second)
	if !done {
		t.Fatalf("flow %d did not drain", id)
	}
	h.demux.Remove(id)
	h.path.RetireFlow(id)
	h.pool.Put(pc)
}

func TestConnPoolReuse(t *testing.T) {
	h := newPoolHarness(t)
	const flows = 5
	for i := 0; i < flows; i++ {
		h.runFlow(t, i, int64(64*units.KB))
		// Let the dying conn quiesce (its held ACKs drain through the CPU)
		// before the next Get so reuse actually happens.
		h.eng.Run(h.eng.Now() + time.Second)
	}
	st := h.pool.Stats()
	if st.Gets != flows || st.Puts != flows {
		t.Fatalf("gets/puts = %d/%d, want %d/%d", st.Gets, st.Puts, flows, flows)
	}
	if st.Created != 1 || st.Reuses != flows-1 {
		t.Fatalf("created=%d reuses=%d, want one construction and %d reuses", st.Created, st.Reuses, flows-1)
	}
	if !st.Balanced() || st.Free != 1 {
		t.Fatalf("end census %+v, want balanced with one free pair", st)
	}
	if hw := st.OutstandingHW; hw != 1 {
		t.Fatalf("outstanding high-water %d, want 1 (flows were sequential)", hw)
	}
	if want := units.DataSize(flows) * 64 * units.KB; h.agg.GoodBytes() != want {
		t.Fatalf("aggregate goodput %d, want %d", h.agg.GoodBytes(), want)
	}
	if ps := h.segs.Stats(); ps.OutstandingPackets != 0 || ps.OutstandingAcks != 0 {
		t.Fatalf("segment pool leaks %d packets / %d acks", ps.OutstandingPackets, ps.OutstandingAcks)
	}
}

func TestConnPoolReclaimDrainsDying(t *testing.T) {
	h := newPoolHarness(t)
	// Open several flows, push bytes, and cut them off mid-transfer — the
	// run-horizon path. Put parks them dying; Reclaim must free them all.
	var pcs []*PooledConn
	for i := 0; i < 4; i++ {
		pc := h.pool.Get(i, streamFactory())
		pc.Conn.SetStream()
		pc.Conn.SetStreamCallbacks(func() {}, func() {}, func(error) {})
		h.demux.Add(pc.Rx)
		pc.Conn.Start()
		pc.Conn.StreamWrite(int64(1 * units.MB))
		pcs = append(pcs, pc)
	}
	h.eng.Run(50 * time.Millisecond)
	for i, pc := range pcs {
		h.demux.Remove(i)
		h.path.RetireFlow(i)
		h.pool.Put(pc)
	}
	h.path.Reclaim()
	h.pool.Reclaim()
	st := h.pool.Stats()
	if !st.Balanced() || st.Free != 4 {
		t.Fatalf("post-Reclaim census %+v, want balanced with 4 free", st)
	}
	if ps := h.segs.Stats(); ps.OutstandingPackets != 0 || ps.OutstandingAcks != 0 {
		t.Fatalf("segment pool leaks %d packets / %d acks after Reclaim", ps.OutstandingPackets, ps.OutstandingAcks)
	}
}

func TestConnPoolDoublePutPanics(t *testing.T) {
	h := newPoolHarness(t)
	pc := h.pool.Get(0, streamFactory())
	pc.Conn.SetStream()
	pc.Conn.SetStreamCallbacks(func() {}, func() {}, func(error) {})
	pc.Conn.Start()
	h.pool.Put(pc)
	defer func() {
		if recover() == nil {
			t.Fatal("second Put did not panic")
		}
	}()
	h.pool.Put(pc)
}

func TestConnPoolIdsNeverReused(t *testing.T) {
	h := newPoolHarness(t)
	pc := h.pool.Get(100, streamFactory())
	if pc.Conn.ID() != 100 {
		t.Fatalf("fresh conn id %d, want 100", pc.Conn.ID())
	}
	pc.Conn.SetStream()
	pc.Conn.SetStreamCallbacks(func() {}, func() {}, func(error) {})
	pc.Conn.Start()
	h.pool.Put(pc)
	h.pool.Reclaim()
	pc2 := h.pool.Get(101, streamFactory())
	if pc2 != pc {
		t.Fatal("expected the recycled pair back")
	}
	if pc2.Conn.ID() != 101 {
		t.Fatalf("recycled conn id %d, want fresh id 101", pc2.Conn.ID())
	}
}
