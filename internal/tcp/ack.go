package tcp

import (
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cpumodel"
	"mobbr/internal/seg"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

// OnAckArrival is the entry point for ACKs returning from the network. The
// ACK is charged to the CPU (tcp_ack fast path plus the congestion module's
// model cost) before any protocol state changes — so under CPU saturation
// ACK processing queues up and measured RTTs inflate, exactly the softirq
// backlog the paper observes on low-end configurations.
func (c *Conn) OnAckArrival(a *seg.Ack) {
	if c.done {
		// A stopped connection is still the ACK's sink point.
		c.pool.PutAck(a)
		return
	}
	costs := c.cpu.Costs()
	if c.ftab != nil {
		// Flow-table demux: fast-path hit or slow-path walk, with
		// promotion past the offload threshold (SmartNIC cost model).
		c.cpu.Submit(cpumodel.OpFlowLookup, c.ftab.LookupCost(c.id), nil)
	}
	c.cpu.Submit(cpumodel.OpAckProcess, costs.AckProcess, nil)
	c.pendingAcks.Push(a)
	if c.agg != nil {
		c.agg.heldAcks++
	}
	c.cpu.SubmitP(cpumodel.OpCCUpdate, c.ccMod.AckCost(), c.processAckFn, a)
}

// processAck runs once the CPU has finished the ACK's protocol work. It is
// the ACK's sink point: on every return path the ACK goes back to the pool.
// The SACK blocks in a.Sacks are therefore only valid within this call —
// the scoreboard copies the ranges it needs, never the slice.
func (c *Conn) processAck(a *seg.Ack) {
	c.pendingAcks.Remove(a)
	if c.agg != nil {
		c.agg.heldAcks--
	}
	if c.done {
		c.pool.PutAck(a)
		c.maybeQuiet()
		return
	}
	now := c.eng.Now()
	priorInflight := c.inflight
	priorUna := c.sndUna

	rs := cc.RateSample{Delivered: -1, Interval: -1, RTT: -1}
	var (
		bestSnap     int64 = -1
		priorTime    time.Duration
		sendInterval time.Duration
		deliveredPkt int64
	)
	deliver := func(p *pktInfo) {
		if p.acked {
			return
		}
		p.acked = true
		if p.inFlite {
			p.inFlite = false
			c.inflight--
		}
		deliveredPkt++
		c.delivered++
		// tcp_rate_skb_delivered: adopt the newest acked packet's
		// snapshots and move the send-window origin to its send time.
		if p.snapDelivered >= bestSnap {
			bestSnap = p.snapDelivered
			priorTime = p.snapDeliveredTime
			sendInterval = p.sentAt - p.snapFirstTx
			rs.IsAppLimited = p.snapAppLimited
			rs.IsRetrans = p.retx
			c.firstTx = p.sentAt
		}
	}

	// Cumulative ACK. Popped entries leave the scoreboard for good, so
	// each is recycled onto the pktInfo freelist once delivered.
	if a.CumAck > c.sndUna {
		for _, p := range c.board.popAcked(a.CumAck) {
			if p.sacked {
				// Already delivered when SACKed; just retire.
				p.acked = true
			} else {
				deliver(p)
			}
			c.freeInfo(p)
		}
		c.sndUna = a.CumAck
		c.rtoBackoff = 0
	}

	// SACK blocks.
	for _, b := range a.Sacks {
		for _, p := range c.board.markSacked(b.Start, b.End) {
			deliver(p)
		}
	}

	if deliveredPkt > 0 {
		c.deliveredTime = now
		c.lastProgress = now
		// The rtx-queue walk frees one scoreboard entry per covered
		// packet (tcp_clean_rtx_queue); charge it now — the latency
		// lands on whatever work queues behind this ACK.
		c.cpu.Submit(cpumodel.OpAckProcess,
			float64(deliveredPkt)*c.cpu.Costs().AckPerSeg, nil)
	}

	// RTT sample (Karn's rule: never from retransmitted segments).
	if !a.EchoRetx && a.EchoSentAt > 0 {
		if rtt := now - a.EchoSentAt; rtt > 0 {
			c.updateRTT(rtt)
			rs.RTT = rtt
		}
	}

	// F-RTO-style spurious-timeout detection: if the first forward
	// progress after an RTO is an ACK echoing an original (never
	// retransmitted) packet sent before the timeout, the original was
	// merely delayed — the timeout was spurious. Undo the collapse.
	// Progress driven by a retransmission proves the timeout genuine and
	// invalidates the snapshot.
	if c.undoValid && a.CumAck > priorUna {
		if c.state == cc.StateLoss && !a.EchoRetx &&
			a.EchoSentAt > 0 && a.EchoSentAt < c.undoAt {
			c.undoSpuriousRTO()
		} else {
			c.undoValid = false
		}
	}

	// Loss detection.
	// RACK reordering window: a quarter RTT, clamped to [1ms, 10ms].
	reoWnd := c.srtt / 4
	if reoWnd < time.Millisecond {
		reoWnd = time.Millisecond
	}
	if reoWnd > 10*time.Millisecond {
		reoWnd = 10 * time.Millisecond
	}
	newLost := c.board.detectLosses(c.cfg.DupThresh, reoWnd)
	for _, p := range newLost {
		if p.inFlite {
			p.inFlite = false
			c.inflight--
		}
		c.lostTotal++
	}
	rs.Losses = int64(len(newLost))

	// Recovery state machine.
	if len(newLost) > 0 && c.state == cc.StateOpen {
		c.setState(cc.StateRecovery)
		c.recoveryPoint = c.sndNxt
		c.ccMod.OnEvent(c, cc.EventEnterRecovery)
	}
	if c.state != cc.StateOpen && a.CumAck >= c.recoveryPoint {
		c.setState(cc.StateOpen)
		c.undoValid = false
		c.ccMod.OnEvent(c, cc.EventExitRecovery)
	}

	// ECN: count echoes and fire the classic-ECN response point at most
	// once per RTT (tcp_ecn_rcv_ece-style rate limiting).
	rs.CECount = a.CECount
	if a.CECount > 0 {
		c.ceTotal += a.CECount
		if now-c.lastECEResponse >= c.srtt && c.state == cc.StateOpen {
			c.lastECEResponse = now
			c.ccMod.OnEvent(c, cc.EventECE)
		}
	}

	// Rate sample generation (tcp_rate_gen).
	rs.AckedSacked = deliveredPkt
	rs.PriorInFlight = priorInflight
	if bestSnap >= 0 {
		rs.PriorDelivered = bestSnap
		rs.Delivered = c.delivered - bestSnap
		ackInterval := now - priorTime
		iv := sendInterval
		if ackInterval > iv {
			iv = ackInterval
		}
		rs.Interval = iv
		if minr := c.MinRTT(); minr > 0 && iv < minr {
			// Too short to be a trustworthy bandwidth sample.
			rs.Interval = -1
		}
	}
	if c.appLimited > 0 && c.delivered > c.appLimited {
		c.appLimited = 0
	}

	if c.met != nil {
		if deliveredPkt > 0 {
			c.met.AckBatch.Observe(float64(deliveredPkt))
		}
		if rate := rs.DeliveryRate(c.cfg.MSS); rate > 0 {
			c.met.DeliveryRate.Observe(rate.Mbit())
		}
	}

	c.ccMod.OnAck(c, &rs)
	if !c.ccMod.WantsPacing() {
		c.updatePacingRateFromCwnd()
	}

	// RTO management.
	if c.inflight > 0 || c.board.firstLost() != nil {
		c.armRTO()
	} else {
		c.rtoTimer.Stop()
	}

	// Freed window means room in the socket buffer for the app writer,
	// then the ACK clock triggers a send attempt.
	c.appPump()
	c.trySend()
	if c.stream && a.CumAck > priorUna {
		c.streamProgress()
	}
	c.pool.PutAck(a)
}

// undoSpuriousRTO restores the pre-timeout cwnd/ssthresh, un-condemns the
// never-retransmitted entries (their originals are still in flight), and
// tells the congestion module — tcp_try_undo_recovery for the RTO case.
func (c *Conn) undoSpuriousRTO() {
	c.undoValid = false
	c.spuriousRTOs++
	for range c.board.undoLost() {
		c.inflight++
		c.lostTotal--
	}
	if c.undoCwnd > c.cwnd {
		c.SetCwnd(c.undoCwnd)
	}
	c.ssthresh = c.undoSsthresh
	if c.bus != nil {
		c.bus.Emit(telemetry.Event{
			Kind: telemetry.KindSpuriousRTO, Conn: c.id,
			Value: float64(c.undoCwnd),
		})
	}
	c.setState(cc.StateOpen)
	c.ccMod.OnEvent(c, cc.EventSpuriousRTO)
}

// updateRTT applies RFC 6298 smoothing and feeds the min-RTT filter. The
// sample is measured at ACK-processing completion, so CPU queueing delay is
// part of it — matching how the kernel's srtt inflates under softirq load.
func (c *Conn) updateRTT(rtt time.Duration) {
	c.lastRTT = rtt
	c.rttSample.Add(float64(rtt))
	if c.agg != nil {
		c.agg.rttSum += rtt
		c.agg.rttN++
	}
	if c.srtt == 0 {
		c.srtt = rtt
		c.rttvar = rtt / 2
	} else {
		d := c.srtt - rtt
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + rtt) / 8
	}
	c.minRTT.Update(uint64(c.eng.Now()), float64(rtt))
}

// updatePacingRateFromCwnd maintains sk_pacing_rate for modules that do not
// set it themselves (tcp_update_pacing_rate): rate = ratio × cwnd×MSS/srtt,
// ratio 2.0 in slow start and 1.2 in congestion avoidance. The rate drives
// TSO autosizing always, and the pacing gate when pacing is forced on
// (paper §5.2.2's "enable pacing for Cubic" experiment).
func (c *Conn) updatePacingRateFromCwnd() {
	if c.srtt <= 0 {
		return
	}
	ratio := 1.2
	if c.cwnd < c.ssthresh/2 {
		ratio = 2.0
	}
	bytesPerRTT := float64(c.cwnd) * float64(c.cfg.MSS)
	rate := units.Bandwidth(bytesPerRTT * 8 / c.srtt.Seconds() * ratio)
	c.SetPacingRate(rate)
}
