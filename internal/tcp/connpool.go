package tcp

import (
	"fmt"

	"mobbr/internal/cc"
	"mobbr/internal/cpumodel"
	"mobbr/internal/netem"
	"mobbr/internal/seg"
	"mobbr/internal/sim"
)

// ConnPool recycles Conn/Receiver pairs across flow churn, modeled on
// seg.Pool's leak-audited discipline: every Get is matched by a Put, the
// pool counts what is outstanding, and a run ends balanced — zero live,
// zero dying — or the audit says exactly what leaked.
//
// Lifecycle state machine (see DESIGN.md "million-flow data path"):
//
//	free ──Get(id)──▶ live ──Put──▶ dying ──quiescent──▶ free
//	                                  │
//	                                  └─Reclaim (run end)──▶ free
//
// Put stops the connection but must NOT recycle it immediately: ACKs the
// network already delivered may still sit behind the CPU model
// (pendingAcks), and a transmit or app-copy completion may still be
// scheduled. Recycling earlier would let those events mutate the *next*
// flow's state. The conn therefore parks in the dying set until its quiet
// callback fires (pendingAcks empty, no busy jobs), and only then returns
// to the free list. ACKs still in network flight are the path's problem:
// callers retire the flow id (netem.Path.RetireFlow) before Put, so late
// ACKs hit a tombstone, never a recycled conn.
//
// Ids are never reused; each Get takes a fresh flow id, which keeps the
// demux map, the path's per-flow ACK table and the invariant checker's
// history unambiguous under churn.
type ConnPool struct {
	eng     *sim.Engine
	cpu     *cpumodel.CPU
	appCPU  *cpumodel.CPU
	path    *netem.Path
	cfg     Config
	segPool *seg.Pool
	agg     *AggStats
	ftab    *cpumodel.FlowTable

	free  []*PooledConn
	dying []*PooledConn

	created       int
	gets, reuses  int
	puts          int
	outstanding   int
	outstandingHW int
}

// PooledConn is one recyclable Conn/Receiver pair.
type PooledConn struct {
	Conn *Conn
	Rx   *Receiver

	dyingIdx int // index in the pool's dying set, -1 otherwise
}

// NewConnPool builds a pool that stamps every connection with the given
// engine, CPUs, path, transport config, segment pool and (optional)
// aggregate sink and flow table. appCPU, agg and ftab may be nil.
func NewConnPool(eng *sim.Engine, cpu, appCPU *cpumodel.CPU, path *netem.Path,
	cfg Config, segPool *seg.Pool, agg *AggStats, ftab *cpumodel.FlowTable) *ConnPool {
	return &ConnPool{
		eng: eng, cpu: cpu, appCPU: appCPU, path: path,
		cfg: cfg, segPool: segPool, agg: agg, ftab: ftab,
	}
}

// Get returns a connection for a fresh flow id: recycled from the free
// list when possible (Reset keeps the scoreboard freelist and batch-buffer
// capacities warm), freshly constructed otherwise. The receiver is
// registered on the path's ACK return; the caller adds it to the demux and
// configures stream mode/callbacks before Start.
func (p *ConnPool) Get(id int, factory cc.Factory) *PooledConn {
	p.gets++
	p.outstanding++
	if p.outstanding > p.outstandingHW {
		p.outstandingHW = p.outstanding
	}
	if n := len(p.free); n > 0 {
		pc := p.free[n-1]
		p.free = p.free[:n-1]
		p.reuses++
		pc.Conn.Reset(id, factory)
		pc.Rx.Reset()
		return pc
	}
	p.created++
	conn := NewConn(id, p.eng, p.cpu, p.path, p.cfg, factory)
	conn.SetPool(p.segPool)
	if p.appCPU != nil {
		conn.SetAppCPU(p.appCPU)
	}
	if p.agg != nil {
		conn.SetAggregates(p.agg)
	}
	if p.ftab != nil {
		conn.SetFlowTable(p.ftab)
	}
	rx := NewReceiver(p.eng, p.path, conn)
	return &PooledConn{Conn: conn, Rx: rx, dyingIdx: -1}
}

// Put releases a finished flow's pair back to the pool: the connection is
// stopped and parked in the dying set until quiescent, then recycled. The
// caller must already have unregistered the flow everywhere late traffic
// could reach it (demux, path tombstone, flow table).
func (p *ConnPool) Put(pc *PooledConn) {
	if pc.dyingIdx != -1 {
		panic(fmt.Sprintf("tcp: ConnPool.Put of conn %d already dying", pc.Conn.id))
	}
	p.puts++
	p.outstanding--
	if p.outstanding < 0 {
		panic("tcp: ConnPool.Put without matching Get")
	}
	pc.Conn.Stop()
	pc.dyingIdx = len(p.dying)
	p.dying = append(p.dying, pc)
	pc.Conn.SetQuietCallback(func() { p.recycle(pc) })
}

// recycle moves a quiescent pair from the dying set to the free list
// (O(1) swap-remove; ordering within the sets is irrelevant — ids are
// fresh on every Get).
func (p *ConnPool) recycle(pc *PooledConn) {
	i := pc.dyingIdx
	last := len(p.dying) - 1
	p.dying[i] = p.dying[last]
	p.dying[i].dyingIdx = i
	p.dying = p.dying[:last]
	pc.dyingIdx = -1
	p.free = append(p.free, pc)
}

// Reclaim force-quiesces every dying connection after the engine has
// stopped: the CPU-completion events that would have drained them never
// fire past the run horizon, so their held ACKs go back to the segment
// pool and the pairs to the free list. After Reclaim a leak-free run shows
// Outstanding == 0 and Dying == 0.
func (p *ConnPool) Reclaim() {
	for len(p.dying) > 0 {
		pc := p.dying[len(p.dying)-1]
		pc.Conn.ForceQuiesce()
		p.dying = p.dying[:len(p.dying)-1]
		pc.dyingIdx = -1
		p.free = append(p.free, pc)
	}
}

// ConnPoolStats is the pool's audit census.
type ConnPoolStats struct {
	// Created counts fresh constructions; Gets and Reuses total and
	// recycled acquisitions (Reuses/Gets is the churn hit rate).
	Created, Gets, Reuses int
	// Puts counts releases.
	Puts int
	// Outstanding is live pairs (Get minus Put); OutstandingHW its
	// high-water mark — the run's peak concurrent flow count.
	Outstanding, OutstandingHW int
	// Free and Dying are the pool-held sets at snapshot time.
	Free, Dying int
}

// Balanced reports a leak-free census: nothing outstanding, nothing dying.
func (s ConnPoolStats) Balanced() bool { return s.Outstanding == 0 && s.Dying == 0 }

// Stats returns the pool's census.
func (p *ConnPool) Stats() ConnPoolStats {
	return ConnPoolStats{
		Created: p.created, Gets: p.gets, Reuses: p.reuses, Puts: p.puts,
		Outstanding: p.outstanding, OutstandingHW: p.outstandingHW,
		Free: len(p.free), Dying: len(p.dying),
	}
}
