package tcp

import (
	"strings"
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/netem"
	"mobbr/internal/units"
)

// TestRTOBackoffExponential: under total loss each successive timeout must
// wait roughly twice as long as the previous, clamped at MaxRTO.
func TestRTOBackoffExponential(t *testing.T) {
	stub := &stubCC{cwnd: 10}
	h := newHarness(t, Config{AppBytes: 64 * units.KB, MaxRTO: 3 * time.Second},
		stub, netem.TC{Loss: 1.0})
	h.conn.Start()
	var fires []time.Duration
	var last uint
	for h.eng.Now() < 20*time.Second && h.eng.Step() {
		if h.conn.rtoBackoff > last {
			last = h.conn.rtoBackoff
			fires = append(fires, h.eng.Now())
		}
	}
	if len(fires) < 5 {
		t.Fatalf("only %d RTOs in 20 s of total loss", len(fires))
	}
	prev := time.Duration(0)
	for i := 1; i < len(fires); i++ {
		gap := fires[i] - fires[i-1]
		if gap > 3*time.Second+500*time.Millisecond {
			t.Errorf("RTO %d waited %v, above the 3 s MaxRTO clamp", i, gap)
		}
		if prev > 0 && gap < prev {
			t.Errorf("RTO %d gap %v shrank below previous %v (backoff must not shorten)",
				i, gap, prev)
		}
		// Before the clamp kicks in each gap must grow close to 2×.
		if prev > 0 && prev < 1200*time.Millisecond && float64(gap) < 1.8*float64(prev) {
			t.Errorf("RTO %d gap %v is not ~2× previous %v", i, gap, prev)
		}
		prev = gap
	}
}

// TestRTOMaxRetriesGivesUp: after MaxRetries consecutive timeouts with no
// forward progress the connection must report a structured failure, not
// retry forever and not panic.
func TestRTOMaxRetriesGivesUp(t *testing.T) {
	stub := &stubCC{cwnd: 10}
	h := newHarness(t, Config{AppBytes: 64 * units.KB, MaxRetries: 4},
		stub, netem.TC{Loss: 1.0})
	h.conn.Start()
	h.eng.Run(60 * time.Second)
	err := h.conn.Err()
	if err == nil {
		t.Fatal("connection never gave up under total loss with MaxRetries=4")
	}
	if !strings.Contains(err.Error(), "gave up") {
		t.Errorf("unexpected failure reason: %v", err)
	}
	if st := h.conn.Stats(); st.Failed == nil {
		t.Error("Stats().Failed not set")
	}
}

// TestWatchdogReportsStall: the stall watchdog must flag a connection that
// has pending work but makes no delivery progress, well before the RTO
// retry budget runs out.
func TestWatchdogReportsStall(t *testing.T) {
	stub := &stubCC{cwnd: 10}
	h := newHarness(t, Config{AppBytes: 64 * units.KB, MaxRetries: 100,
		StallTimeout: time.Second}, stub, netem.TC{Loss: 1.0})
	h.conn.Start()
	h.eng.Run(10 * time.Second)
	err := h.conn.Err()
	if err == nil {
		t.Fatal("watchdog never fired on a stalled connection")
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Errorf("unexpected failure reason: %v", err)
	}
}

// TestSpuriousRTOUndo: a link pause longer than the RTO delays — but does
// not drop — the outstanding window. The first ACK after resume echoes an
// original transmission sent before the timeout, so F-RTO must undo the
// collapse, notify the CC, and the transfer must still complete in full.
func TestSpuriousRTOUndo(t *testing.T) {
	stub := &stubCC{cwnd: 10}
	// Shape the path to ~20 Mbps / 20 ms so the 256KB transfer is still in
	// flight when the pause hits.
	h := newHarness(t, Config{AppBytes: 256 * units.KB}, stub,
		netem.TC{Rate: 20 * units.Mbps, Delay: 20 * time.Millisecond})
	h.eng.Schedule(50*time.Millisecond, func() { h.path.Hop(0).Pause() })
	h.eng.Schedule(1050*time.Millisecond, func() { h.path.Hop(0).Resume() })
	h.conn.Start()
	h.eng.Run(10 * time.Second)

	st := h.conn.Stats()
	if st.SpuriousRTOs == 0 {
		t.Fatal("1 s pause > RTO produced no spurious-RTO undo")
	}
	found := false
	for _, ev := range h.stub.events {
		if ev == cc.EventSpuriousRTO {
			found = true
		}
	}
	if !found {
		t.Error("CC never notified of the spurious RTO")
	}
	if got := h.rx.GoodBytes(); got != 256*units.KB {
		t.Errorf("delivered %v after pause/resume, want full 256KB", got)
	}
	if err := h.conn.Err(); err != nil {
		t.Errorf("healthy pause/resume marked the conn failed: %v", err)
	}
}

// TestGenuineRTONotUndone: under real loss (everything dropped, nothing
// delayed) recovery is driven by retransmissions, so F-RTO must NOT undo.
func TestGenuineRTONotUndone(t *testing.T) {
	stub := &stubCC{cwnd: 10}
	h := newHarness(t, Config{AppBytes: 64 * units.KB}, stub, netem.TC{})
	// Drop (not hold) the first flight: 100% loss for the first 300 ms.
	if err := h.path.Hop(0).SetLoss(1.0); err != nil {
		t.Fatal(err)
	}
	h.eng.Schedule(300*time.Millisecond, func() { _ = h.path.Hop(0).SetLoss(0) })
	h.conn.Start()
	h.eng.Run(10 * time.Second)
	if st := h.conn.Stats(); st.SpuriousRTOs != 0 {
		t.Errorf("genuine loss-driven RTO was undone %d times", st.SpuriousRTOs)
	}
	if got := h.rx.GoodBytes(); got != 64*units.KB {
		t.Errorf("delivered %v, want full 64KB", got)
	}
}

// TestCwndRestartAfterIdle: RFC 2861 — after an idle period the window
// decays one halving per idle RTO down to the restart window.
func TestCwndRestartAfterIdle(t *testing.T) {
	stub := &stubCC{cwnd: 64}
	h := newHarness(t, Config{AppBytes: 64 * units.KB}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(2 * time.Second) // transfer completes; connection sits idle
	c := h.conn
	if c.inflight != 0 {
		t.Fatalf("transfer not drained: inflight %d", c.inflight)
	}
	c.cwnd = 64
	now := c.eng.Now()
	c.lastSendAt = now - 4*c.rto() // four RTOs idle
	c.cwndRestartAfterIdle(now)
	if c.cwnd >= 64 {
		t.Errorf("cwnd %d not reduced after 4 idle RTOs", c.cwnd)
	}
	if c.cwnd < c.cfg.InitialCwnd {
		t.Errorf("cwnd %d decayed below the restart window %d", c.cwnd, c.cfg.InitialCwnd)
	}
	if c.idleRestarts == 0 {
		t.Error("idle restart not counted")
	}

	// A short idle (under one RTO) must leave the window alone.
	c.cwnd = 64
	c.lastSendAt = now - c.rto()/2
	c.cwndRestartAfterIdle(now)
	if c.cwnd != 64 {
		t.Errorf("cwnd %d changed after sub-RTO idle", c.cwnd)
	}
}
