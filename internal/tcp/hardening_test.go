package tcp

import (
	"strings"
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cpumodel"
	"mobbr/internal/netem"
	"mobbr/internal/sim"
	"mobbr/internal/units"
)

// TestRTOBackoffExponential: under total loss each successive timeout must
// wait roughly twice as long as the previous, clamped at MaxRTO.
func TestRTOBackoffExponential(t *testing.T) {
	stub := &stubCC{cwnd: 10}
	h := newHarness(t, Config{AppBytes: 64 * units.KB, MaxRTO: 3 * time.Second},
		stub, netem.TC{Loss: 1.0})
	h.conn.Start()
	var fires []time.Duration
	var last uint
	for h.eng.Now() < 20*time.Second && h.eng.Step() {
		if h.conn.rtoBackoff > last {
			last = h.conn.rtoBackoff
			fires = append(fires, h.eng.Now())
		}
	}
	if len(fires) < 5 {
		t.Fatalf("only %d RTOs in 20 s of total loss", len(fires))
	}
	prev := time.Duration(0)
	for i := 1; i < len(fires); i++ {
		gap := fires[i] - fires[i-1]
		if gap > 3*time.Second+500*time.Millisecond {
			t.Errorf("RTO %d waited %v, above the 3 s MaxRTO clamp", i, gap)
		}
		if prev > 0 && gap < prev {
			t.Errorf("RTO %d gap %v shrank below previous %v (backoff must not shorten)",
				i, gap, prev)
		}
		// Before the clamp kicks in each gap must grow close to 2×.
		if prev > 0 && prev < 1200*time.Millisecond && float64(gap) < 1.8*float64(prev) {
			t.Errorf("RTO %d gap %v is not ~2× previous %v", i, gap, prev)
		}
		prev = gap
	}
}

// TestRTOMaxRetriesGivesUp: after MaxRetries consecutive timeouts with no
// forward progress the connection must report a structured failure, not
// retry forever and not panic.
func TestRTOMaxRetriesGivesUp(t *testing.T) {
	stub := &stubCC{cwnd: 10}
	h := newHarness(t, Config{AppBytes: 64 * units.KB, MaxRetries: 4},
		stub, netem.TC{Loss: 1.0})
	h.conn.Start()
	h.eng.Run(60 * time.Second)
	err := h.conn.Err()
	if err == nil {
		t.Fatal("connection never gave up under total loss with MaxRetries=4")
	}
	if !strings.Contains(err.Error(), "gave up") {
		t.Errorf("unexpected failure reason: %v", err)
	}
	if st := h.conn.Stats(); st.Failed == nil {
		t.Error("Stats().Failed not set")
	}
}

// TestWatchdogReportsStall: the stall watchdog must flag a connection that
// has pending work but makes no delivery progress, well before the RTO
// retry budget runs out.
func TestWatchdogReportsStall(t *testing.T) {
	stub := &stubCC{cwnd: 10}
	h := newHarness(t, Config{AppBytes: 64 * units.KB, MaxRetries: 100,
		StallTimeout: time.Second}, stub, netem.TC{Loss: 1.0})
	h.conn.Start()
	h.eng.Run(10 * time.Second)
	err := h.conn.Err()
	if err == nil {
		t.Fatal("watchdog never fired on a stalled connection")
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Errorf("unexpected failure reason: %v", err)
	}
}

// TestSpuriousRTOUndo: a link pause longer than the RTO delays — but does
// not drop — the outstanding window. The first ACK after resume echoes an
// original transmission sent before the timeout, so F-RTO must undo the
// collapse, notify the CC, and the transfer must still complete in full.
func TestSpuriousRTOUndo(t *testing.T) {
	stub := &stubCC{cwnd: 10}
	// Shape the path to ~20 Mbps / 20 ms so the 256KB transfer is still in
	// flight when the pause hits.
	h := newHarness(t, Config{AppBytes: 256 * units.KB}, stub,
		netem.TC{Rate: 20 * units.Mbps, Delay: 20 * time.Millisecond})
	h.eng.Schedule(50*time.Millisecond, func() { h.path.Hop(0).Pause() })
	h.eng.Schedule(1050*time.Millisecond, func() { h.path.Hop(0).Resume() })
	h.conn.Start()
	h.eng.Run(10 * time.Second)

	st := h.conn.Stats()
	if st.SpuriousRTOs == 0 {
		t.Fatal("1 s pause > RTO produced no spurious-RTO undo")
	}
	found := false
	for _, ev := range h.stub.events {
		if ev == cc.EventSpuriousRTO {
			found = true
		}
	}
	if !found {
		t.Error("CC never notified of the spurious RTO")
	}
	if got := h.rx.GoodBytes(); got != 256*units.KB {
		t.Errorf("delivered %v after pause/resume, want full 256KB", got)
	}
	if err := h.conn.Err(); err != nil {
		t.Errorf("healthy pause/resume marked the conn failed: %v", err)
	}
}

// TestGenuineRTONotUndone: under real loss (everything dropped, nothing
// delayed) recovery is driven by retransmissions, so F-RTO must NOT undo.
func TestGenuineRTONotUndone(t *testing.T) {
	stub := &stubCC{cwnd: 10}
	h := newHarness(t, Config{AppBytes: 64 * units.KB}, stub, netem.TC{})
	// Drop (not hold) the first flight: 100% loss for the first 300 ms.
	if err := h.path.Hop(0).SetLoss(1.0); err != nil {
		t.Fatal(err)
	}
	h.eng.Schedule(300*time.Millisecond, func() { _ = h.path.Hop(0).SetLoss(0) })
	h.conn.Start()
	h.eng.Run(10 * time.Second)
	if st := h.conn.Stats(); st.SpuriousRTOs != 0 {
		t.Errorf("genuine loss-driven RTO was undone %d times", st.SpuriousRTOs)
	}
	if got := h.rx.GoodBytes(); got != 64*units.KB {
		t.Errorf("delivered %v, want full 64KB", got)
	}
}

// TestCwndRestartAfterIdle: RFC 2861 — after an idle period the window
// decays one halving per idle RTO down to the restart window.
func TestCwndRestartAfterIdle(t *testing.T) {
	stub := &stubCC{cwnd: 64}
	h := newHarness(t, Config{AppBytes: 64 * units.KB}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(2 * time.Second) // transfer completes; connection sits idle
	c := h.conn
	if c.inflight != 0 {
		t.Fatalf("transfer not drained: inflight %d", c.inflight)
	}
	c.cwnd = 64
	now := c.eng.Now()
	c.lastSendAt = now - 4*c.rto() // four RTOs idle
	c.cwndRestartAfterIdle(now)
	if c.cwnd >= 64 {
		t.Errorf("cwnd %d not reduced after 4 idle RTOs", c.cwnd)
	}
	if c.cwnd < c.cfg.InitialCwnd {
		t.Errorf("cwnd %d decayed below the restart window %d", c.cwnd, c.cfg.InitialCwnd)
	}
	if c.idleRestarts == 0 {
		t.Error("idle restart not counted")
	}

	// A short idle (under one RTO) must leave the window alone.
	c.cwnd = 64
	c.lastSendAt = now - c.rto()/2
	c.cwndRestartAfterIdle(now)
	if c.cwnd != 64 {
		t.Errorf("cwnd %d changed after sub-RTO idle", c.cwnd)
	}
}

// --- stream-source mode hardening -------------------------------------------

// streamDriver feeds a stream-mode connection from engine context the way
// the simnet facade does: write as room frees (the writable callback),
// half-close when everything is buffered, and record drain/failure.
type streamDriver struct {
	c              *Conn
	total, written int64
	closedStream   bool
	drained        bool
	failed         error
}

func newStreamDriver(c *Conn, total int64) *streamDriver {
	d := &streamDriver{c: c, total: total}
	c.SetStream()
	c.SetStreamCallbacks(d.pump, func() { d.drained = true }, func(err error) { d.failed = err })
	return d
}

func (d *streamDriver) pump() {
	for d.written < d.total {
		n, err := d.c.StreamWrite(d.total - d.written)
		if err != nil || n == 0 {
			return
		}
		d.written += n
	}
	if !d.closedStream {
		d.closedStream = true
		d.c.CloseStream()
	}
}

// TestStreamTransferDrains: a stream-mode source must deliver exactly the
// written bytes, fire the drain callback once everything is acked, and
// survive repeated Close calls afterwards.
func TestStreamTransferDrains(t *testing.T) {
	stub := &stubCC{cwnd: 64}
	h := newHarness(t, Config{}, stub, netem.TC{})
	const total = 256 * 1024
	d := newStreamDriver(h.conn, total)
	h.conn.Start()
	h.eng.Schedule(0, d.pump)
	h.eng.Run(5 * time.Second)
	if got := h.rx.GoodBytes(); got != total {
		t.Fatalf("delivered %v, want %d", got, total)
	}
	if !d.drained {
		t.Error("drain callback never fired")
	}
	if err := h.conn.Err(); err != nil {
		t.Errorf("clean stream transfer failed the conn: %v", err)
	}
	h.conn.Close()
	h.conn.Close() // idempotent
}

// TestStreamCloseIdempotent: CloseStream must return a stable end offset,
// writes after it must fail, and Close before drain must tear down once
// the FIN point is acknowledged — per-transaction open/close safety.
func TestStreamCloseIdempotent(t *testing.T) {
	stub := &stubCC{cwnd: 64}
	h := newHarness(t, Config{}, stub, netem.TC{})
	const total = 64 * 1024
	d := newStreamDriver(h.conn, total)
	h.conn.Start()
	h.eng.Schedule(0, d.pump)
	h.eng.Schedule(100*time.Microsecond, func() {
		end1 := h.conn.CloseStream()
		end2 := h.conn.CloseStream()
		if end1 != end2 {
			t.Errorf("CloseStream end moved: %d then %d", end1, end2)
		}
		if _, err := h.conn.StreamWrite(1); err == nil {
			t.Error("StreamWrite after CloseStream succeeded")
		}
		h.conn.Close()
		h.conn.Close()
	})
	h.eng.Run(5 * time.Second)
	if got, want := h.rx.GoodBytes(), units.DataSize(d.written); got != want {
		t.Fatalf("delivered %v, want the %v written before close", got, want)
	}
	if !d.drained {
		t.Error("stream never reported drained after Close")
	}
}

// TestStreamFailureSurfaced: when the transport gives up, the failure
// callback must fire and subsequent StreamWrites must return the error.
func TestStreamFailureSurfaced(t *testing.T) {
	stub := &stubCC{cwnd: 10}
	h := newHarness(t, Config{MaxRetries: 4}, stub, netem.TC{Loss: 1.0})
	d := newStreamDriver(h.conn, 64*1024)
	h.conn.Start()
	h.eng.Schedule(0, d.pump)
	h.eng.Run(60 * time.Second)
	if d.failed == nil {
		t.Fatal("failure callback never fired under total loss")
	}
	if _, err := h.conn.StreamWrite(1); err == nil {
		t.Error("StreamWrite after transport failure succeeded")
	}
	if d.drained {
		t.Error("failed stream reported drained")
	}
}

// TestPerTransactionChurn: repeated short open/transfer/close cycles over
// one shared path and demux — the request/response pattern — must deliver
// every transaction in full with no leaks, stalls, or double-close issues.
func TestPerTransactionChurn(t *testing.T) {
	eng := sim.New(1)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 5e9)
	path, err := netem.EthernetLAN(eng, netem.TC{})
	if err != nil {
		t.Fatalf("EthernetLAN: %v", err)
	}
	demux := NewDemux()
	path.SetReceiver(demux.Handle)
	var end time.Duration
	for i := 0; i < 5; i++ {
		stub := &stubCC{cwnd: 64}
		conn := NewConn(i, eng, cpu, path, Config{}, func() cc.CongestionControl { return stub })
		d := newStreamDriver(conn, 64*1024)
		rx := NewReceiver(eng, path, conn)
		demux.Add(rx)
		conn.Start()
		eng.Schedule(0, d.pump)
		end += time.Second
		eng.Run(end)
		if got := rx.GoodBytes(); got != 64*1024 {
			t.Fatalf("transaction %d delivered %v, want 64KB", i, got)
		}
		if !d.drained {
			t.Fatalf("transaction %d never drained", i)
		}
		conn.Close()
		conn.Close() // double-close per transaction must be safe
		if err := conn.Err(); err != nil {
			t.Fatalf("transaction %d failed: %v", i, err)
		}
	}
}
