package tcp

import (
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cpumodel"
	"mobbr/internal/netem"
	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/units"
)

// stubCC is a fixed-window congestion controller for exercising the
// transport machinery in isolation.
type stubCC struct {
	cwnd    int
	pacing  bool
	rate    units.Bandwidth
	acks    int
	events  []cc.Event
	samples []cc.RateSample
}

func (s *stubCC) Name() string { return "stub" }
func (s *stubCC) Init(c cc.Conn) {
	c.SetCwnd(s.cwnd)
	if s.rate > 0 {
		c.SetPacingRate(s.rate)
	}
}
func (s *stubCC) OnAck(c cc.Conn, rs *cc.RateSample) {
	s.acks++
	s.samples = append(s.samples, *rs)
	c.SetCwnd(s.cwnd)
	if s.rate > 0 {
		c.SetPacingRate(s.rate)
	}
}
func (s *stubCC) OnEvent(c cc.Conn, ev cc.Event) { s.events = append(s.events, ev) }
func (s *stubCC) AckCost() float64               { return 100 }
func (s *stubCC) WantsPacing() bool              { return s.pacing }

type harness struct {
	eng  *sim.Engine
	cpu  *cpumodel.CPU
	path *netem.Path
	conn *Conn
	rx   *Receiver
	stub *stubCC
}

func newHarness(t *testing.T, cfg Config, stub *stubCC, tc netem.TC) *harness {
	t.Helper()
	eng := sim.New(1)
	// A fast CPU so transport tests are not CPU-bound.
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 5e9)
	path, err := netem.EthernetLAN(eng, tc)
	if err != nil {
		t.Fatalf("EthernetLAN: %v", err)
	}
	conn := NewConn(0, eng, cpu, path, cfg, func() cc.CongestionControl { return stub })
	rx := NewReceiver(eng, path, conn)
	demux := NewDemux()
	demux.Add(rx)
	path.SetReceiver(demux.Handle)
	return &harness{eng: eng, cpu: cpu, path: path, conn: conn, rx: rx, stub: stub}
}

func TestBulkTransferCompletes(t *testing.T) {
	stub := &stubCC{cwnd: 64}
	h := newHarness(t, Config{AppBytes: 1 * units.MB}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(5 * time.Second)
	if got := h.rx.GoodBytes(); got != 1*units.MB {
		t.Fatalf("delivered %v, want 1MB", got)
	}
	st := h.conn.Stats()
	if st.Retransmits != 0 {
		t.Errorf("retransmits = %d on a clean path, want 0", st.Retransmits)
	}
	if st.SRTT <= 0 {
		t.Errorf("srtt = %v, want > 0", st.SRTT)
	}
}

func TestGoodputApproachesLineRate(t *testing.T) {
	stub := &stubCC{cwnd: 150}
	h := newHarness(t, Config{}, stub, netem.TC{})
	h.conn.Start()
	dur := 2 * time.Second
	h.eng.Run(dur)
	gp := units.BandwidthFromBytes(h.rx.GoodBytes(), dur)
	if gp < 850*units.Mbps {
		t.Fatalf("goodput = %v, want near 1Gbps line rate", gp)
	}
}

func TestCwndLimitsInflight(t *testing.T) {
	stub := &stubCC{cwnd: 4}
	h := newHarness(t, Config{}, stub, netem.TC{})
	h.conn.Start()
	for i := 0; i < 20000; i++ {
		if !h.eng.Step() {
			break
		}
		if fl := h.conn.PacketsInFlight(); fl > 4 {
			t.Fatalf("inflight %d exceeds cwnd 4", fl)
		}
	}
	if h.rx.GoodBytes() == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestLossRecoveryViaSACK(t *testing.T) {
	stub := &stubCC{cwnd: 64}
	h := newHarness(t, Config{AppBytes: 2 * units.MB}, stub, netem.TC{Loss: 0.02})
	h.conn.Start()
	h.eng.Run(30 * time.Second)
	if got := h.rx.GoodBytes(); got != 2*units.MB {
		t.Fatalf("delivered %v with 2%% loss, want full 2MB", got)
	}
	st := h.conn.Stats()
	if st.Retransmits == 0 {
		t.Error("expected retransmissions under 2% loss")
	}
	foundRecovery := false
	for _, ev := range h.stub.events {
		if ev == cc.EventEnterRecovery {
			foundRecovery = true
		}
	}
	if !foundRecovery {
		t.Error("CC never notified of recovery entry")
	}
}

func TestHeavyLossStillCompletes(t *testing.T) {
	stub := &stubCC{cwnd: 32}
	h := newHarness(t, Config{AppBytes: 256 * units.KB}, stub, netem.TC{Loss: 0.15})
	h.conn.Start()
	h.eng.Run(2 * time.Minute)
	if got := h.rx.GoodBytes(); got != 256*units.KB {
		t.Fatalf("delivered %v under 15%% loss, want 256KB", got)
	}
}

func TestRTOFiresWhenAllAcksLost(t *testing.T) {
	// 100% loss at the router: nothing is ever delivered, so the RTO
	// must fire and mark everything lost.
	stub := &stubCC{cwnd: 10}
	h := newHarness(t, Config{AppBytes: 64 * units.KB}, stub, netem.TC{Loss: 1.0})
	h.conn.Start()
	h.eng.Run(3 * time.Second)
	foundLoss := false
	for _, ev := range h.stub.events {
		if ev == cc.EventEnterLoss {
			foundLoss = true
		}
	}
	if !foundLoss {
		t.Fatal("RTO never fired under 100% loss")
	}
	if h.conn.Stats().Lost == 0 {
		t.Error("no packets marked lost")
	}
	if h.cpu.OpCount(cpumodel.OpRTO) == 0 {
		t.Error("RTO not charged to CPU")
	}
}

func TestPacingGateSpacesSends(t *testing.T) {
	// 10 Mbps pacing: 1MB should take ~0.8s, far longer than line rate.
	stub := &stubCC{cwnd: 500, pacing: true, rate: 10 * units.Mbps}
	h := newHarness(t, Config{AppBytes: 1 * units.MB}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(400 * time.Millisecond)
	got := h.rx.GoodBytes()
	// At 10Mbps, 400ms carries at most ~500KB.
	if got > 600*units.KB {
		t.Fatalf("delivered %v in 400ms at 10Mbps pacing — pacer not limiting", got)
	}
	h.eng.Run(3 * time.Second)
	if got := h.rx.GoodBytes(); got != 1*units.MB {
		t.Fatalf("delivered %v, want full 1MB", got)
	}
	if h.cpu.OpCount(cpumodel.OpPacingTimer) == 0 {
		t.Error("no pacing-timer events charged to CPU")
	}
}

func TestUnpacedChargesNoPacingTimers(t *testing.T) {
	stub := &stubCC{cwnd: 64}
	h := newHarness(t, Config{AppBytes: 1 * units.MB}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(5 * time.Second)
	if n := h.cpu.OpCount(cpumodel.OpPacingTimer); n != 0 {
		t.Errorf("unpaced connection charged %d pacing-timer events", n)
	}
}

func TestPacingOverrideForcesOn(t *testing.T) {
	on := true
	stub := &stubCC{cwnd: 64, rate: 20 * units.Mbps}
	h := newHarness(t, Config{AppBytes: 512 * units.KB, PacingOverride: &on}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(5 * time.Second)
	if h.cpu.OpCount(cpumodel.OpPacingTimer) == 0 {
		t.Error("forced pacing produced no pacing-timer events")
	}
}

func TestPacingOverrideForcesOff(t *testing.T) {
	off := false
	stub := &stubCC{cwnd: 64, pacing: true, rate: 10 * units.Mbps}
	h := newHarness(t, Config{AppBytes: 1 * units.MB, PacingOverride: &off}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(time.Second)
	if got := h.rx.GoodBytes(); got != 1*units.MB {
		t.Fatalf("pacing-off transfer incomplete: %v", got)
	}
	if n := h.cpu.OpCount(cpumodel.OpPacingTimer); n != 0 {
		t.Errorf("pacing disabled but %d timer events charged", n)
	}
}

func TestRateSamplesMeasureDeliveryRate(t *testing.T) {
	stub := &stubCC{cwnd: 400, pacing: true, rate: 50 * units.Mbps}
	h := newHarness(t, Config{}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(3 * time.Second)
	// Look at late samples (steady state): delivery rate should be near
	// the 50 Mbps pacing rate, clearly below line rate.
	var got []units.Bandwidth
	for _, rs := range h.stub.samples[len(h.stub.samples)*3/4:] {
		if rs.Valid() {
			got = append(got, rs.DeliveryRate(seg.MSS))
		}
	}
	if len(got) == 0 {
		t.Fatal("no valid rate samples")
	}
	var sum float64
	for _, g := range got {
		sum += float64(g)
	}
	mean := units.Bandwidth(sum / float64(len(got)))
	if mean < 30*units.Mbps || mean > 120*units.Mbps {
		t.Errorf("mean delivery-rate sample = %v, want near 50Mbps", mean)
	}
}

func TestRTTInflatesUnderCPULoad(t *testing.T) {
	// Same transfer on a fast and a crushingly slow CPU: the slow CPU's
	// measured RTT must be higher because ACK processing queues.
	// cwnd 40 stays below the path BDP so the fast CPU never builds a
	// standing devnic queue; any RTT increase on the slow CPU is then
	// ACK-processing backlog.
	run := func(speed float64) time.Duration {
		eng := sim.New(1)
		cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), speed)
		path, err := netem.EthernetLAN(eng, netem.TC{})
		if err != nil {
			t.Fatalf("EthernetLAN: %v", err)
		}
		stub := &stubCC{cwnd: 40}
		conn := NewConn(0, eng, cpu, path, Config{}, func() cc.CongestionControl { return stub })
		rx := NewReceiver(eng, path, conn)
		d := NewDemux()
		d.Add(rx)
		path.SetReceiver(d.Handle)
		conn.Start()
		eng.Run(2 * time.Second)
		return time.Duration(conn.rttSample.Mean())
	}
	fast := run(5e9)
	slow := run(80e6)
	if slow <= fast {
		t.Errorf("slow-CPU RTT %v not above fast-CPU RTT %v", slow, fast)
	}
}

func TestAppBytesLimitExact(t *testing.T) {
	// Non-MSS-multiple size: the tail segment must be short.
	n := units.DataSize(100000) // not divisible by 1460
	stub := &stubCC{cwnd: 64}
	h := newHarness(t, Config{AppBytes: n}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(5 * time.Second)
	if got := h.rx.GoodBytes(); got != n {
		t.Fatalf("delivered %v, want exactly %v", got, n)
	}
}

func TestStartDelayHonored(t *testing.T) {
	stub := &stubCC{cwnd: 10}
	h := newHarness(t, Config{AppBytes: 64 * units.KB, StartDelay: 100 * time.Millisecond}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(50 * time.Millisecond)
	if h.rx.GoodBytes() != 0 {
		t.Fatal("data delivered before start delay")
	}
	h.eng.Run(2 * time.Second)
	if h.rx.GoodBytes() != 64*units.KB {
		t.Fatal("transfer incomplete after start delay")
	}
}

func TestStopCancelsTimers(t *testing.T) {
	stub := &stubCC{cwnd: 10, pacing: true, rate: units.Mbps}
	h := newHarness(t, Config{}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(100 * time.Millisecond)
	h.conn.Stop()
	before := h.rx.GoodBytes()
	h.eng.Run(2 * time.Second)
	// A few packets may still be in flight at Stop; after they drain,
	// nothing new should be sent.
	after := h.rx.GoodBytes()
	if after > before+64*units.KB {
		t.Errorf("data kept flowing after Stop: %v -> %v", before, after)
	}
}

func TestGROCoalescesAcks(t *testing.T) {
	stub := &stubCC{cwnd: 64}
	h := newHarness(t, Config{AppBytes: 1 * units.MB}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(5 * time.Second)
	pkts := uint64(1*units.MB/seg.MSS) + 1
	acks := h.rx.AcksSent()
	// GRO acknowledges whole bundles: far fewer ACKs than packets, but
	// at least one per 64KB of data.
	if acks >= pkts/2 {
		t.Errorf("acks = %d for %d packets; GRO should coalesce bundles", acks, pkts)
	}
	if minAcks := uint64(1*units.MB/(64*units.KB)) - 1; acks < minAcks {
		t.Errorf("acks = %d below the 64KB-bundle floor %d", acks, minAcks)
	}
}

func TestCPUChargesAllOps(t *testing.T) {
	stub := &stubCC{cwnd: 64, pacing: true, rate: 100 * units.Mbps}
	h := newHarness(t, Config{AppBytes: 2 * units.MB}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(5 * time.Second)
	for _, op := range []cpumodel.Op{cpumodel.OpSegXmit, cpumodel.OpSKBXmit, cpumodel.OpAckProcess, cpumodel.OpPacingTimer} {
		if h.cpu.OpCount(op) == 0 {
			t.Errorf("no %v operations charged", op)
		}
	}
}

func TestScoreboardInvariantUnderLoss(t *testing.T) {
	stub := &stubCC{cwnd: 48}
	h := newHarness(t, Config{AppBytes: 1 * units.MB}, stub, netem.TC{Loss: 0.05})
	h.conn.Start()
	for i := 0; i < 400000; i++ {
		if !h.eng.Step() {
			break
		}
		if h.conn.inflight < 0 {
			t.Fatal("negative inflight")
		}
		// inflight must equal the number of in-flight-marked entries.
		n := 0
		for j := 0; j < h.conn.board.liveLen(); j++ {
			if h.conn.board.at(j).inFlite {
				n++
			}
		}
		if n != h.conn.inflight {
			t.Fatalf("inflight counter %d != scoreboard %d", h.conn.inflight, n)
		}
	}
}

func TestReceiverReassemblyExhaustive(t *testing.T) {
	// Drive the receiver directly with a permuted arrival order.
	eng := sim.New(1)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 1e9)
	path, err := netem.EthernetLAN(eng, netem.TC{})
	if err != nil {
		t.Fatalf("EthernetLAN: %v", err)
	}
	stub := &stubCC{cwnd: 10}
	conn := NewConn(7, eng, cpu, path, Config{}, func() cc.CongestionControl { return stub })
	rx := NewReceiver(eng, path, conn)
	order := []int64{0, 2, 1, 5, 4, 3, 7, 9, 8, 6}
	for _, i := range order {
		rx.OnPacket(&seg.Packet{Flow: 7, Seq: i * 1000, Len: 1000, SentAt: time.Microsecond})
	}
	if rx.GoodBytes() != 10000 {
		t.Fatalf("goodput = %v after permuted arrivals, want 10000", rx.GoodBytes())
	}
	// Duplicate arrival must not double-count.
	rx.OnPacket(&seg.Packet{Flow: 7, Seq: 3000, Len: 1000, SentAt: time.Microsecond})
	if rx.GoodBytes() != 10000 {
		t.Fatalf("duplicate inflated goodput to %v", rx.GoodBytes())
	}
	if rx.DupPackets() != 1 {
		t.Errorf("dup packets = %d, want 1", rx.DupPackets())
	}
}

func TestMinRTTTracksFloor(t *testing.T) {
	stub := &stubCC{cwnd: 32}
	h := newHarness(t, Config{AppBytes: 4 * units.MB}, stub, netem.TC{})
	h.conn.Start()
	h.eng.Run(5 * time.Second)
	base := h.path.MinRTT()
	got := h.conn.MinRTT()
	if got < base/2 || got > base*5 {
		t.Errorf("min RTT estimate %v far from path base %v", got, base)
	}
}

func TestReorderingRobustness(t *testing.T) {
	// 300µs of per-packet jitter at the router reorders wire bursts; the
	// transfer must complete without a retransmission storm (the RACK
	// gate and dupthresh absorb reordering).
	stub := &stubCC{cwnd: 48}
	h := newHarness(t, Config{AppBytes: 2 * units.MB}, stub, netem.TC{ReorderJitter: 300 * time.Microsecond})
	h.conn.Start()
	h.eng.Run(30 * time.Second)
	if got := h.rx.GoodBytes(); got != 2*units.MB {
		t.Fatalf("delivered %v under reordering, want 2MB", got)
	}
	st := h.conn.Stats()
	pkts := int64(2*units.MB/seg.MSS) + 1
	if st.Retransmits > pkts/10 {
		t.Errorf("retransmits = %d (>10%% of %d packets): reordering mistaken for loss",
			st.Retransmits, pkts)
	}
}

func TestCEMarksCounted(t *testing.T) {
	stub := &stubCC{cwnd: 256}
	// Slow router with ECN marking: the sender must observe CE echoes.
	h := newHarness(t, Config{AppBytes: 2 * units.MB}, stub,
		netem.TC{Rate: 100 * units.Mbps, QueuePackets: 100, ECNThreshold: 10})
	h.conn.Start()
	h.eng.Run(30 * time.Second)
	if h.rx.GoodBytes() != 2*units.MB {
		t.Fatal("transfer incomplete")
	}
	if h.conn.Stats().CEMarks == 0 {
		t.Error("no CE marks observed despite AQM threshold")
	}
}
