package tcp

import (
	"fmt"
	"math/rand"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cpumodel"
	"mobbr/internal/netem"
	"mobbr/internal/pacing"
	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/stats"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

// devnicHighWatermark models TSQ/qdisc backpressure: when the device NIC
// queue is deeper than this, the stack defers instead of dropping locally.
// Linux TSQ allows ~tcp_limit_output_bytes per socket in the qdisc, so a
// 20-connection unpaced sender can keep most of the 1000-slot txqueue full.
const devnicHighWatermark = 600

// minRTTWindow is the transport's windowed min-RTT filter length
// (sysctl tcp_min_rtt_wlen is 300 s; runs here are much shorter).
const minRTTWindow = 30 * time.Second

// Conn is one simulated TCP connection's sender side, running on the
// phone: it owns the scoreboard, congestion state, pacer and timers, and
// charges all its work to the device CPU.
type Conn struct {
	id  int
	eng *sim.Engine
	cpu *cpumodel.CPU
	// appCPU, when set, executes the tcp_sendmsg payload copy in
	// process context on the application core, in parallel with the
	// softirq core's transmit path. nil means the copy is not modelled
	// (unit tests) — the softirq path alone gates sends.
	appCPU *cpumodel.CPU
	path   *netem.Path
	cfg    Config
	ccMod  cc.CongestionControl
	pacer  *pacing.Pacer

	// Sequence space (bytes).
	sndNxt, sndUna int64
	board          scoreboard
	inflight       int

	cwnd, ssthresh int
	pacingRate     units.Bandwidth
	state          cc.State
	recoveryPoint  int64

	// Delivery accounting (packets), per tcp_rate.c.
	delivered       int64
	deliveredTime   time.Duration
	firstTx         time.Duration
	appLimited      int64
	lostTotal       int64
	retransTotal    int64
	ceTotal         int64
	lastECEResponse time.Duration

	srtt, rttvar, lastRTT time.Duration
	minRTT                *stats.WindowedMin

	rtoTimer    sim.Timer
	rtoBackoff  uint
	pacingTimer sim.Timer
	xmitBusy    bool
	cwndLimited bool
	started     bool
	done        bool

	// Hardened-recovery state.
	segsSent     int64         // new-data segments ever created
	lastSendAt   time.Duration // last (re)transmission release
	lastProgress time.Duration // last delivery progress (watchdog)
	watchdog     sim.Timer
	failedErr    error // non-nil once the connection is declared dead
	spuriousRTOs int64
	idleRestarts int64
	// F-RTO undo snapshot, taken at the first RTO of a backoff run.
	undoValid    bool
	undoCwnd     int
	undoSsthresh int
	undoAt       time.Duration

	appSent int64 // bytes handed to the network so far (for AppBytes limit)

	// Stream-source mode (SetStream): instead of the config-driven bulk
	// source, the application pushes bytes with StreamWrite and half-closes
	// with CloseStream — the byte-stream surface the simnet net.Conn facade
	// drives. streamTotal is the write offset so far; streamEnd is the
	// offset at CloseStream (-1 while the stream is open); closing marks a
	// graceful Close in progress (stop once everything is acknowledged).
	stream       bool
	streamTotal  int64
	streamEnd    int64
	closing      bool
	drainedFired bool
	kicked       bool // Start's kick has run; writes may transmit
	onWritable   func()
	onDrained    func()
	onFailed     func(error)

	// Application-source pipeline (when appCPU is set): the sender task
	// keeps the socket buffer filled ahead of transmission, so the
	// per-byte copy cost loads the app core without sitting inside the
	// pacing period — exactly how iperf3's write loop behaves.
	buffered  units.DataSize // copied into the sndbuf, not yet sent
	appCopied int64          // total bytes ever copied
	appBusy   bool

	maxBufOcc units.DataSize
	rttSample stats.Online

	// Telemetry (nil = disabled, the default): bus receives structured
	// state/recovery/pacing events; met holds the per-connection
	// histograms. Hot paths guard every use with a nil-check.
	bus *telemetry.Bus
	met *telemetry.ConnMetrics

	// agg, when set, is the run-wide O(1) aggregate counter sink
	// (SetAggregates); ftab, when set, is the NIC flow-table cost model
	// charged per arriving ACK (SetFlowTable). Both nil by default.
	agg  *AggStats
	ftab *cpumodel.FlowTable

	// onQuiet, when set, fires once a stopped connection has fully
	// quiesced: no pending ACKs behind the CPU model, no outstanding
	// transmit or app-copy job. The conn pool uses it to decide when a
	// released connection is safe to recycle.
	onQuiet func()

	// Timer callbacks cached at construction so the hot re-arm paths
	// (pacing gate, RTO, TSQ retry, watchdog) never allocate a closure or
	// method value per event.
	trySendFn    func()
	pacingFire   func()
	rtoFire      func()
	watchdogFire func()

	// pool is the run's packet/ACK recycler (nil in unit tests — every
	// acquire then heap-allocates). infoFree is the connection-private
	// freelist of scoreboard entries, recycled as the cumulative ACK
	// retires them.
	pool     *seg.Pool
	infoFree *pktInfo

	// pendingAcks holds ACKs the network has delivered but the CPU model
	// has not yet processed (between OnAckArrival and processAck), so they
	// are reachable for the run-end reclaim.
	pendingAcks seg.AckList
	// processAckFn is the shared CPU-completion callback for ACK
	// processing; the ACK rides along as the SubmitP argument.
	processAckFn func(any)

	// Transmit-job state parked on the connection while the CPU model
	// serializes the batch (xmitBusy guards a single outstanding job):
	// emitFn is the shared completion callback, xmitRetx the reusable
	// retransmission batch buffer.
	emitFn       func()
	xmitRetx     []*pktInfo
	xmitNew      int
	xmitPaceFrom time.Duration
}

// NewConn creates a connection with the given flow id. The congestion
// module is built fresh from factory. Call Start to begin transmitting.
func NewConn(id int, eng *sim.Engine, cpu *cpumodel.CPU, path *netem.Path, cfg Config, factory cc.Factory) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		id:       id,
		eng:      eng,
		cpu:      cpu,
		path:     path,
		cfg:      cfg,
		ccMod:    factory(),
		cwnd:     cfg.InitialCwnd,
		ssthresh: 1 << 30,
		minRTT:   stats.NewWindowedMin(uint64(minRTTWindow)),
	}
	pcfg := cfg.Pacing
	pcfg.Enabled = c.ccMod.WantsPacing()
	if cfg.PacingOverride != nil {
		pcfg.Enabled = *cfg.PacingOverride
	}
	c.pacer = pacing.New(pcfg)
	c.ccMod.Init(c)
	c.trySendFn = c.trySend
	c.pacingFire = c.pacingExpired
	c.rtoFire = c.onRTOTimer
	c.watchdogFire = c.watchdogCheck
	c.processAckFn = func(v any) { c.processAck(v.(*seg.Ack)) }
	c.emitFn = func() { c.emit(c.xmitPaceFrom, c.xmitRetx, c.xmitNew) }
	return c
}

// SetPool attaches the run's packet/ACK pool. Call before Start.
func (c *Conn) SetPool(pool *seg.Pool) { c.pool = pool }

// SetFlowTable attaches the NIC/netstack flow-table cost model: every
// arriving ACK is charged a per-flow lookup (fast-path hit or slow-path
// walk, with promotion past the offload threshold). Call before Start.
func (c *Conn) SetFlowTable(t *cpumodel.FlowTable) { c.ftab = t }

// allocInfo takes a zeroed scoreboard entry from the connection's freelist.
func (c *Conn) allocInfo() *pktInfo {
	p := c.infoFree
	if p == nil {
		return &pktInfo{}
	}
	c.infoFree = p.free
	*p = pktInfo{}
	return p
}

// freeInfo recycles a scoreboard entry the cumulative ACK retired.
func (c *Conn) freeInfo(p *pktInfo) {
	p.free = c.infoFree
	c.infoFree = p
}

// ID returns the flow id.
func (c *Conn) ID() int { return c.id }

// CC returns the connection's congestion-control module.
func (c *Conn) CC() cc.CongestionControl { return c.ccMod }

// Pacer returns the connection's pacer, for stats sampling.
func (c *Conn) Pacer() *pacing.Pacer { return c.pacer }

// SetAppCPU attaches the application core that pays the per-byte sendmsg
// copy cost. Call before Start.
func (c *Conn) SetAppCPU(cpu *cpumodel.CPU) { c.appCPU = cpu }

// SetTelemetry attaches the event bus and per-connection instruments. Call
// before Start. Either argument may be nil (that subsystem stays off). The
// congestion module's state machine, when it implements cc.ModeReporter,
// reports its transitions onto the bus; the pacer's send-quantum and
// inter-send-gap instruments are wired here too.
func (c *Conn) SetTelemetry(bus *telemetry.Bus, met *telemetry.ConnMetrics) {
	c.bus = bus
	c.met = met
	if met != nil {
		c.pacer.SetInstruments(met.SendQuantum, met.InterSendGap)
	}
	if bus != nil {
		if mr, ok := c.ccMod.(cc.ModeReporter); ok {
			id := c.id
			mr.SetModeListener(func(old, new string) {
				bus.Emit(telemetry.Event{Kind: telemetry.KindCCMode, Conn: id, Old: old, New: new})
			})
		}
	}
}

// setState transitions the loss-recovery state, emitting a KindTCPState
// event on change.
func (c *Conn) setState(s cc.State) {
	if s == c.state {
		return
	}
	if c.bus != nil {
		c.bus.Emit(telemetry.Event{
			Kind: telemetry.KindTCPState, Conn: c.id,
			Old: c.state.String(), New: s.String(),
		})
	}
	c.state = s
}

// Start schedules the first transmission (after cfg.StartDelay).
func (c *Conn) Start() {
	if c.started {
		return
	}
	c.started = true
	c.eng.Schedule(c.cfg.StartDelay, func() {
		c.kicked = true
		c.lastProgress = c.eng.Now()
		c.armWatchdog()
		c.appPump()
		c.trySend()
	})
}

// appCopyChunk is how much one iperf write copies into the socket buffer.
const appCopyChunk = 16 * units.KB

// appPump keeps the socket buffer filled: whenever there is room (and the
// application still has data), it charges one chunk's copy to the app core
// and re-arms itself on completion.
func (c *Conn) appPump() {
	if c.appCPU == nil || c.appBusy || c.done {
		return
	}
	room := c.cfg.SndBuf - c.buffered - units.DataSize(c.inflight)*c.cfg.MSS
	chunk := appCopyChunk
	if c.stream {
		rem := c.streamTotal - c.appCopied
		if rem <= 0 {
			return
		}
		// A sub-MSS tail still copies (it will push as a short segment);
		// otherwise wait for at least one MSS of room.
		need := rem
		if need > int64(c.cfg.MSS) {
			need = int64(c.cfg.MSS)
		}
		if int64(room) < need {
			return
		}
		if int64(chunk) > rem {
			chunk = units.DataSize(rem)
		}
		if chunk > room {
			chunk = room
		}
	} else {
		if room < c.cfg.MSS {
			return
		}
		if chunk > room {
			chunk = room
		}
		if c.cfg.AppBytes > 0 {
			rem := int64(c.cfg.AppBytes) - c.appCopied
			if rem <= 0 {
				return
			}
			if rem < int64(chunk) {
				chunk = units.DataSize(rem)
			}
		}
	}
	c.appBusy = true
	cost := float64(chunk) * c.cpu.Costs().CopyPerByte
	c.appCPU.Submit(cpumodel.OpDataCopy, cost, func() {
		c.appBusy = false
		if c.done {
			c.maybeQuiet()
			return
		}
		c.buffered += chunk
		c.appCopied += int64(chunk)
		c.appPump()
		c.trySend()
	})
}

// Stop halts transmission and cancels timers.
func (c *Conn) Stop() {
	c.done = true
	c.rtoTimer.Stop()
	c.pacingTimer.Stop()
	c.watchdog.Stop()
}

// Err returns the reason the connection was declared dead (RTO retries
// exhausted, watchdog stall), or nil while it is healthy. A dead connection
// has stopped transmitting; the failure is reported, never panicked.
func (c *Conn) Err() error { return c.failedErr }

// fail declares the connection dead: it records the reason and halts all
// activity. Idempotent.
func (c *Conn) fail(err error) {
	if c.done {
		return
	}
	c.failedErr = err
	if c.bus != nil {
		c.bus.Emit(telemetry.Event{Kind: telemetry.KindConnFailed, Conn: c.id, New: err.Error()})
	}
	c.Stop()
	if c.onFailed != nil {
		c.onFailed(err)
	}
}

// --- stream-source mode -----------------------------------------------------

// SetStream puts the connection in stream-source mode: the application
// pushes bytes with StreamWrite (bounded by the send buffer) and ends the
// stream with CloseStream. The config-driven AppBytes/bulk source is
// disabled. Call before Start.
func (c *Conn) SetStream() {
	c.stream = true
	c.streamEnd = -1
}

// SetStreamCallbacks installs the stream-mode notification hooks: writable
// fires when acknowledged progress reopens send-buffer room, drained fires
// once everything written before CloseStream has been cumulatively
// acknowledged, and failed fires when the transport declares the
// connection dead. Any hook may be nil. Call before Start.
func (c *Conn) SetStreamCallbacks(writable, drained func(), failed func(error)) {
	c.onWritable = writable
	c.onDrained = drained
	c.onFailed = failed
}

// StreamRoom returns how many more bytes StreamWrite would accept now:
// the send buffer minus everything written but not yet cumulatively
// acknowledged. Zero once the stream is closed or the connection is done.
func (c *Conn) StreamRoom() int64 {
	if !c.stream || c.done || c.closing || c.streamEnd >= 0 {
		return 0
	}
	room := int64(c.cfg.SndBuf) - (c.streamTotal - c.sndUna)
	if room < 0 {
		room = 0
	}
	return room
}

// StreamWrite offers n bytes to the send side and returns how many were
// accepted (possibly zero when the send buffer is full — the writable
// callback announces new room). Writing on a closed stream or a failed
// connection is an error.
func (c *Conn) StreamWrite(n int64) (int64, error) {
	if !c.stream {
		return 0, fmt.Errorf("tcp: conn %d: StreamWrite without SetStream", c.id)
	}
	if c.failedErr != nil {
		return 0, c.failedErr
	}
	if c.done || c.closing || c.streamEnd >= 0 {
		return 0, fmt.Errorf("tcp: conn %d: write on closed stream", c.id)
	}
	if n <= 0 {
		return 0, nil
	}
	if room := c.StreamRoom(); n > room {
		n = room
	}
	if n == 0 {
		return 0, nil
	}
	c.streamTotal += n
	if c.kicked {
		c.appPump()
		c.trySend()
	}
	return n, nil
}

// CloseStream half-closes the write side (FIN): no more bytes are
// accepted, everything already written keeps (re)transmitting until
// acknowledged. Returns the final stream length. Idempotent.
func (c *Conn) CloseStream() int64 {
	if !c.stream {
		return 0
	}
	if c.streamEnd < 0 {
		c.streamEnd = c.streamTotal
		c.maybeDrained()
	}
	return c.streamEnd
}

// Close begins a graceful teardown. In stream mode it is CloseStream plus
// a deferred Stop: timers keep running until the last written byte is
// acknowledged (the FIN retransmits like data), then the connection stops.
// Without stream mode it stops immediately. Idempotent and safe at any
// point in the connection's life, including before Start and concurrently
// with recovery.
func (c *Conn) Close() {
	if c.done || c.closing {
		return
	}
	if !c.stream {
		c.Stop()
		return
	}
	c.closing = true
	c.CloseStream()
	if c.drainedFired {
		c.Stop()
	}
}

// maybeDrained fires the drained hook (once) when a closed stream has been
// fully acknowledged, and completes a pending graceful Close.
func (c *Conn) maybeDrained() {
	if c.streamEnd < 0 || c.drainedFired || c.sndUna < c.streamEnd {
		return
	}
	c.drainedFired = true
	if c.onDrained != nil {
		c.onDrained()
	}
	if c.closing {
		c.Stop()
	}
}

// streamTailReady reports that the copied tail is everything the app has
// written so far — push it as a short segment instead of waiting for a
// full MSS (TCP_NODELAY-style request tails).
func (c *Conn) streamTailReady() bool {
	return !c.appBusy && c.appCopied >= c.streamTotal
}

// streamProgress runs after an ACK advances sndUna in stream mode: it
// completes a pending drain and announces reopened send-buffer room.
func (c *Conn) streamProgress() {
	c.maybeDrained()
	if c.done || c.drainedFired {
		return
	}
	if c.onWritable != nil && c.StreamRoom() > 0 {
		c.onWritable()
	}
}

// StartDelay returns the connection's configured start offset, so stream
// drivers can align their first write with the staggered kick.
func (c *Conn) StartDelay() time.Duration { return c.cfg.StartDelay }

// watchdogInterval is how often the stall watchdog re-checks progress.
const watchdogInterval = 500 * time.Millisecond

// armWatchdog starts the periodic stall check.
func (c *Conn) armWatchdog() {
	if c.cfg.StallTimeout <= 0 || c.done {
		return
	}
	if !c.watchdog.Reschedule(watchdogInterval) {
		c.watchdog = c.eng.Schedule(watchdogInterval, c.watchdogFire)
	}
}

// watchdogCheck declares the connection dead if it has outstanding work but
// has made no delivery progress for StallTimeout — the recovery machinery
// is wedged or the link never came back.
func (c *Conn) watchdogCheck() {
	if c.done {
		return
	}
	idle := c.eng.Now() - c.lastProgress
	hasWork := c.inflight > 0 || c.board.firstLost() != nil || c.appBacklogSegs() > 0
	if hasWork && idle > c.cfg.StallTimeout {
		c.fail(fmt.Errorf("tcp: conn %d stalled: no delivery progress for %v (inflight=%d cwnd=%d state=%v rto-backoff=%d)",
			c.id, idle, c.inflight, c.cwnd, c.state, c.rtoBackoff))
		return
	}
	c.armWatchdog()
}

// --- cc.Conn interface -----------------------------------------------------

// Now implements cc.Conn.
func (c *Conn) Now() time.Duration { return c.eng.Now() }

// MSS implements cc.Conn.
func (c *Conn) MSS() units.DataSize { return c.cfg.MSS }

// Cwnd implements cc.Conn.
func (c *Conn) Cwnd() int { return c.cwnd }

// SetCwnd implements cc.Conn, clamping to [1, MaxCwnd].
func (c *Conn) SetCwnd(pkts int) {
	if pkts < 1 {
		pkts = 1
	}
	if pkts > c.cfg.MaxCwnd {
		pkts = c.cfg.MaxCwnd
	}
	c.cwnd = pkts
}

// Ssthresh implements cc.Conn.
func (c *Conn) Ssthresh() int { return c.ssthresh }

// SetSsthresh implements cc.Conn.
func (c *Conn) SetSsthresh(pkts int) {
	if pkts < 2 {
		pkts = 2
	}
	c.ssthresh = pkts
}

// PacingRate implements cc.Conn.
func (c *Conn) PacingRate() units.Bandwidth { return c.pacingRate }

// SetPacingRate implements cc.Conn.
func (c *Conn) SetPacingRate(r units.Bandwidth) {
	if r < 0 {
		r = 0
	}
	c.pacingRate = r
}

// PacketsInFlight implements cc.Conn.
func (c *Conn) PacketsInFlight() int { return c.inflight }

// Delivered implements cc.Conn.
func (c *Conn) Delivered() int64 { return c.delivered }

// Lost implements cc.Conn.
func (c *Conn) Lost() int64 { return c.lostTotal }

// SRTT implements cc.Conn.
func (c *Conn) SRTT() time.Duration { return c.srtt }

// MinRTT implements cc.Conn.
func (c *Conn) MinRTT() time.Duration { return time.Duration(c.minRTT.Get()) }

// LastRTT implements cc.Conn.
func (c *Conn) LastRTT() time.Duration { return c.lastRTT }

// State implements cc.Conn.
func (c *Conn) State() cc.State { return c.state }

// IsCwndLimited implements cc.Conn.
func (c *Conn) IsCwndLimited() bool { return c.cwndLimited }

// Rand implements cc.Conn.
func (c *Conn) Rand() *rand.Rand { return c.eng.Rand() }

// --- send engine ------------------------------------------------------------

// appBacklogSegs returns how many new segments the application has ready.
// With an app core attached, only bytes already copied into the socket
// buffer are sendable; otherwise the source is treated as instantaneous.
func (c *Conn) appBacklogSegs() int {
	if c.stream {
		if c.appCPU != nil {
			segs := int(c.buffered / c.cfg.MSS)
			if segs == 0 && c.buffered > 0 && c.streamTailReady() {
				segs = 1 // short tail segment
			}
			return segs
		}
		rem := c.streamTotal - c.sndNxt
		if rem <= 0 {
			return 0
		}
		segs := rem / int64(c.cfg.MSS)
		if rem%int64(c.cfg.MSS) != 0 {
			segs++ // push the partial tail immediately
		}
		return int(segs)
	}
	if c.appCPU != nil {
		segs := int(c.buffered / c.cfg.MSS)
		if segs == 0 && c.buffered > 0 && c.cfg.AppBytes > 0 &&
			c.appCopied >= int64(c.cfg.AppBytes) {
			segs = 1 // short final segment
		}
		return segs
	}
	if c.cfg.AppBytes <= 0 {
		return 1 << 20 // unbounded bulk source
	}
	rem := int64(c.cfg.AppBytes) - c.sndNxt
	if rem <= 0 {
		return 0
	}
	segs := rem / int64(c.cfg.MSS)
	if rem%int64(c.cfg.MSS) != 0 {
		segs++
	}
	return int(segs)
}

// trySend attempts to transmit one skb: retransmissions first, then new
// data, up to the TSO-autosized batch, the cwnd, and the pacing gate.
func (c *Conn) trySend() {
	if c.xmitBusy || c.done {
		return
	}
	now := c.eng.Now()
	if ok, wait := c.pacer.CanSendAt(now); !ok {
		c.armPacingTimer(wait)
		return
	}
	// TSQ-style backpressure: if the local qdisc is deep, defer rather
	// than overrun it.
	if c.path.Hop(0).QueueLen() > devnicHighWatermark {
		c.eng.Schedule(250*time.Microsecond, c.trySendFn)
		return
	}
	c.cwndRestartAfterIdle(now)
	avail := c.cwnd - c.inflight
	if avail <= 0 {
		c.cwndLimited = true
		return
	}
	rate := c.pacer.Rate(c.pacingRate)
	target := c.pacer.SKBSegs(rate, c.cfg.MSS)
	c.cwndLimited = target >= avail
	if target > avail {
		target = avail
	}
	// PRR-style conservatism: during recovery, meter (re)transmissions
	// out a couple of segments at a time instead of re-bursting whole
	// windows into a queue that just dropped them.
	if c.state != cc.StateOpen && target > 2 {
		target = 2
	}
	retx := c.board.lostPendingInto(c.xmitRetx[:0], target)
	c.xmitRetx = retx
	newSegs := 0
	if rem := target - len(retx); rem > 0 {
		backlog := c.appBacklogSegs()
		if backlog < rem {
			rem = backlog
			c.cwndLimited = false
		}
		newSegs = rem
	}
	if len(retx)+newSegs == 0 {
		if c.appBacklogSegs() == 0 && c.inflight > 0 {
			c.markAppLimited()
		}
		return
	}
	c.xmitBusy = true
	// The pacing clock runs from the moment the socket is released to
	// transmit (tcp_update_skb_after_send arms the hrtimer at transmit),
	// so the segmentation/driver work below overlaps the idle gap rather
	// than extending it.
	paceFrom := now
	costs := c.cpu.Costs()
	if len(retx) > 0 {
		c.cpu.Submit(cpumodel.OpRetransmit, float64(len(retx))*costs.Retransmit, nil)
	}
	c.cpu.Submit(cpumodel.OpSKBXmit, costs.SKBXmit, nil)
	total := len(retx) + newSegs
	// Park the batch on the connection; emitFn picks it up at CPU
	// completion (xmitBusy guarantees a single outstanding job).
	c.xmitPaceFrom = paceFrom
	c.xmitNew = newSegs
	c.cpu.Submit(cpumodel.OpSegXmit, float64(total)*costs.SegXmit, c.emitFn)
}

// cwndRestartAfterIdle is tcp_cwnd_restart (RFC 2861): a window validated
// long ago says nothing about the path now, so after an idle period the
// cwnd decays by half per idle RTO, floored at the restart window.
func (c *Conn) cwndRestartAfterIdle(now time.Duration) {
	if c.inflight != 0 || c.lastSendAt <= 0 {
		return
	}
	rto := c.rto()
	idle := now - c.lastSendAt
	if idle <= rto {
		return
	}
	restart := c.cfg.InitialCwnd
	if c.cwnd < restart {
		restart = c.cwnd
	}
	cwnd := c.cwnd
	for ; idle > rto && cwnd > restart; idle -= rto {
		cwnd >>= 1
	}
	if cwnd < restart {
		cwnd = restart
	}
	if cwnd != c.cwnd {
		if c.bus != nil {
			c.bus.Emit(telemetry.Event{
				Kind: telemetry.KindIdleRestart, Conn: c.id,
				Value: float64(c.cwnd), V2: float64(cwnd),
			})
		}
		c.cwnd = cwnd
		c.idleRestarts++
	}
}

// markAppLimited records that the sender ran out of application data, per
// tcp_rate_check_app_limited.
func (c *Conn) markAppLimited() {
	v := c.delivered + int64(c.inflight)
	if v < 1 {
		v = 1
	}
	c.appLimited = v
}

// snapshot stamps a packet with the rate-sample state at transmission.
func (c *Conn) snapshot(p *pktInfo) {
	p.snapDelivered = c.delivered
	p.snapDeliveredTime = c.deliveredTime
	p.snapFirstTx = c.firstTx
	p.snapAppLimited = c.appLimited > 0
}

// emit runs at CPU completion of the transmit job: it stamps, snapshots and
// injects the segments, then advances the pacing schedule (whose clock runs
// from paceFrom, the transmit-release time).
func (c *Conn) emit(paceFrom time.Duration, retx []*pktInfo, newSegs int) {
	c.xmitBusy = false
	if c.done {
		c.maybeQuiet()
		return
	}
	now := c.eng.Now()
	if c.inflight == 0 {
		// packets_out == 0: reset the rate-sample send window
		// (tcp_rate_skb_sent). This is what makes isolated high-stride
		// bursts measure burst-local delivery rates.
		c.firstTx = now
		c.deliveredTime = now
	}
	var bytes units.DataSize
	sent := 0
	for _, p := range retx {
		if p.acked || p.sacked || !p.lost || p.inFlite {
			continue
		}
		p.lost = false
		p.retx = true
		p.inFlite = true
		p.sentAt = now
		c.snapshot(p)
		c.inflight++
		c.retransTotal++
		if c.agg != nil {
			c.agg.retransmits++
		}
		bytes += p.len
		sent++
		c.path.Send(c.mkPacket(p))
	}
	for i := 0; i < newSegs; i++ {
		l := c.cfg.MSS
		if c.appCPU != nil {
			if c.buffered < l {
				short := false
				if c.buffered > 0 {
					if c.stream {
						short = c.streamTailReady()
					} else {
						short = c.cfg.AppBytes > 0 &&
							c.appCopied >= int64(c.cfg.AppBytes)
					}
				}
				if !short {
					break
				}
				l = c.buffered // short final/tail segment
			}
			c.buffered -= l
		}
		if c.stream {
			if rem := c.streamTotal - c.sndNxt; rem <= 0 {
				break
			} else if rem < int64(l) {
				l = units.DataSize(rem)
			}
		} else if c.cfg.AppBytes > 0 {
			if rem := int64(c.cfg.AppBytes) - c.sndNxt; rem <= 0 {
				break
			} else if rem < int64(l) {
				l = units.DataSize(rem)
			}
		}
		p := c.allocInfo()
		p.seq, p.len, p.sentAt, p.inFlite = c.sndNxt, l, now, true
		c.snapshot(p)
		c.board.add(p)
		c.sndNxt += int64(l)
		c.appSent += int64(l)
		c.segsSent++
		c.inflight++
		bytes += l
		sent++
		c.path.Send(c.mkPacket(p))
	}
	if sent == 0 {
		return
	}
	c.lastSendAt = now
	c.pacer.OnSKBSent(paceFrom, bytes, c.pacer.Rate(c.pacingRate))
	if occ := units.DataSize(c.inflight) * c.cfg.MSS; occ > c.maxBufOcc {
		c.maxBufOcc = occ
	}
	c.armRTO()
	if c.pacer.Enabled() {
		// Under pacing every subsequent send goes through the timer
		// path (tcp_internal_pacing arms the hrtimer unconditionally),
		// so the expiry/tasklet cost is paid per data-send even when
		// the gate time has already passed.
		_, wait := c.pacer.CanSendAt(now)
		c.armPacingTimer(wait)
		return
	}
	c.trySend()
}

func (c *Conn) mkPacket(p *pktInfo) *seg.Packet {
	pkt := c.pool.GetPacket()
	pkt.Flow = c.id
	pkt.Seq = p.seq
	pkt.Len = p.len
	pkt.SentAt = p.sentAt
	pkt.Retx = p.retx
	pkt.DeliveredAtSend = p.snapDelivered
	pkt.DeliveredTimeAtSend = p.snapDeliveredTime
	pkt.FirstSentAtSend = p.snapFirstTx
	pkt.AppLimitedAtSend = p.snapAppLimited
	return pkt
}

// armPacingTimer schedules the pacing-gate reopening. The timer's expiry is
// charged to the CPU (OpPacingTimer) before the send attempt runs — the
// per-event overhead at the heart of the paper. With hardware offload
// (§7.1.4) the NIC enforces the gap and the CPU pays nothing per event.
func (c *Conn) armPacingTimer(wait time.Duration) {
	if c.pacingTimer.Pending() {
		return
	}
	c.pacer.TimerArmed()
	if !c.pacingTimer.Reschedule(wait) {
		c.pacingTimer = c.eng.Schedule(wait, c.pacingFire)
	}
}

// pacingExpired is the pacing timer's callback (cached in pacingFire).
func (c *Conn) pacingExpired() {
	if c.done {
		return
	}
	if c.pacer.Config().HardwareOffload {
		c.trySend()
		return
	}
	now := c.eng.Now()
	done := c.cpu.SubmitOp(cpumodel.OpPacingTimer, c.trySendFn)
	if c.bus != nil || c.met != nil {
		// Timer slippage: the gate reopened at now, but the expiry
		// work queues behind whatever the CPU is already doing, so
		// the send actually runs at done. The delta is the paper's
		// CPU-contention signal.
		slip := float64(done-now) / 1e3 // µs
		if c.bus != nil {
			c.bus.Emit(telemetry.Event{Kind: telemetry.KindPacingTimer, Conn: c.id, Value: slip})
		}
		if c.met != nil {
			c.met.TimerSlip.Observe(slip)
		}
	}
}

// rto returns the current retransmission timeout with backoff.
func (c *Conn) rto() time.Duration {
	rto := c.srtt + 4*c.rttvar
	if rto < c.cfg.MinRTO {
		rto = c.cfg.MinRTO
	}
	rto <<= c.rtoBackoff
	if rto > c.cfg.MaxRTO {
		rto = c.cfg.MaxRTO
	}
	return rto
}

func (c *Conn) armRTO() {
	if !c.rtoTimer.Reschedule(c.rto()) {
		c.rtoTimer = c.eng.Schedule(c.rto(), c.rtoFire)
	}
}

func (c *Conn) onRTOTimer() {
	if c.done || c.inflight == 0 && c.board.firstLost() == nil {
		return
	}
	c.cpu.SubmitOp(cpumodel.OpRTO, c.enterLoss)
}

// enterLoss is tcp_enter_loss: everything unsacked is marked lost, the
// congestion module is told, and the head is retransmitted. Consecutive
// timeouts back the RTO off exponentially (rto() shifts by rtoBackoff) up to
// MaxRetries, after which the connection is declared dead — reported, never
// panicked.
func (c *Conn) enterLoss() {
	if c.done {
		return
	}
	c.rtoBackoff++
	if int(c.rtoBackoff) > c.cfg.MaxRetries {
		c.fail(fmt.Errorf("tcp: conn %d gave up after %d consecutive RTOs (rto=%v inflight=%d sndUna=%d)",
			c.id, c.cfg.MaxRetries, c.rto(), c.inflight, c.sndUna))
		return
	}
	// F-RTO: snapshot cwnd/ssthresh at the first timeout of a backoff run
	// so a later ACK of an original (non-retransmitted) packet can prove
	// the timeout spurious and undo the collapse.
	if !c.undoValid {
		c.undoValid = true
		c.undoCwnd = c.cwnd
		c.undoSsthresh = c.ssthresh
		c.undoAt = c.eng.Now()
	}
	newly := c.board.markAllLost()
	for _, p := range newly {
		if p.inFlite {
			p.inFlite = false
			c.inflight--
		}
		c.lostTotal++
	}
	if c.bus != nil {
		c.bus.Emit(telemetry.Event{
			Kind: telemetry.KindRTO, Conn: c.id,
			Value: float64(c.rtoBackoff), V2: float64(len(newly)),
		})
	}
	c.setState(cc.StateLoss)
	c.recoveryPoint = c.sndNxt
	// The module snapshots ssthresh from the pre-collapse cwnd, then the
	// transport collapses the window (tcp_enter_loss ordering).
	c.ccMod.OnEvent(c, cc.EventEnterLoss)
	c.cwnd = 1
	c.armRTO()
	c.trySend()
}

// Stats exposes the sender-side counters the experiments report.
type ConnStats struct {
	ID           int
	BytesSent    units.DataSize
	Retransmits  int64
	Lost         int64
	CEMarks      int64
	Delivered    int64
	Cwnd         int
	SRTT         time.Duration
	MinRTT       time.Duration
	PacingRate   units.Bandwidth
	MaxBufferOcc units.DataSize
	RTTMean      time.Duration
	RTTSamples   int64
	State        cc.State
	PacerStats   pacing.Stats
	SpuriousRTOs int64
	IdleRestarts int64
	Failed       error
}

// Stats returns a snapshot of the connection's counters.
func (c *Conn) Stats() ConnStats {
	return ConnStats{
		ID:           c.id,
		BytesSent:    units.DataSize(c.appSent),
		Retransmits:  c.retransTotal,
		Lost:         c.lostTotal,
		CEMarks:      c.ceTotal,
		Delivered:    c.delivered,
		Cwnd:         c.cwnd,
		SRTT:         c.srtt,
		MinRTT:       c.MinRTT(),
		PacingRate:   c.pacingRate,
		MaxBufferOcc: c.maxBufOcc,
		RTTMean:      time.Duration(c.rttSample.Mean()),
		RTTSamples:   c.rttSample.N(),
		State:        c.state,
		PacerStats:   c.pacer.Stats(),
		SpuriousRTOs: c.spuriousRTOs,
		IdleRestarts: c.idleRestarts,
		Failed:       c.failedErr,
	}
}

// Audit is a consistency snapshot of the connection's bookkeeping for the
// invariant checker: the counter view (Inflight, Delivered, SegsSent) next
// to the ground truth recomputed by walking the scoreboard.
type Audit struct {
	ID     int
	SndUna int64
	SndNxt int64

	// Counter view.
	Inflight  int   // c.inflight counter
	SegsSent  int64 // new-data segments ever created
	Delivered int64 // packets cumulatively acked or SACKed

	// Scoreboard walk (ground truth).
	BoardInflight    int
	BoardLostPending int
	BoardSacked      int
	BoardAcked       int
	LiveBytes        int64 // sum of live entry lengths

	Cwnd       int
	Ssthresh   int
	MaxCwnd    int
	PacingRate units.Bandwidth
	Failed     error

	// HeldAcks is the number of pooled ACKs parked behind the CPU model
	// (delivered by the network, not yet processed) — part of the pool
	// conservation check.
	HeldAcks int
}

// Audit walks the scoreboard and returns the connection's bookkeeping
// snapshot for invariant checking.
func (c *Conn) Audit() Audit {
	inflight, lostPending, sacked, acked, liveBytes := c.board.audit()
	return Audit{
		ID:               c.id,
		SndUna:           c.sndUna,
		SndNxt:           c.sndNxt,
		Inflight:         c.inflight,
		SegsSent:         c.segsSent,
		Delivered:        c.delivered,
		BoardInflight:    inflight,
		BoardLostPending: lostPending,
		BoardSacked:      sacked,
		BoardAcked:       acked,
		LiveBytes:        liveBytes,
		Cwnd:             c.cwnd,
		Ssthresh:         c.ssthresh,
		MaxCwnd:          c.cfg.MaxCwnd,
		PacingRate:       c.pacingRate,
		Failed:           c.failedErr,
		HeldAcks:         c.pendingAcks.Len(),
	}
}

// ReclaimAcks releases ACKs still parked behind the CPU model back to the
// pool. The run harness calls it after the engine stops — the processAck
// events that would have consumed them never fire past the run horizon.
func (c *Conn) ReclaimAcks() {
	if c.agg != nil {
		c.agg.heldAcks -= c.pendingAcks.Len()
	}
	c.pendingAcks.Drain(c.pool.PutAck)
}

// ForceQuiesce drains a stopped connection's remaining work markers after
// the engine has halted: the CPU-completion events that would clear
// xmitBusy/appBusy and consume pendingAcks never fire past the run
// horizon, so held ACKs go back to the pool and the busy flags drop.
// Only the run-end reclaim may call this; mid-run it would recycle a
// connection with live events pointed at it.
func (c *Conn) ForceQuiesce() {
	c.ReclaimAcks()
	c.xmitBusy, c.appBusy = false, false
	c.onQuiet = nil
}

// Quiescent reports whether a stopped connection has fully wound down: no
// ACKs parked behind the CPU model, no outstanding transmit batch, no
// in-flight app copy. Only a quiescent connection may be recycled — its
// remaining scheduled events (stopped-timer residue, TSQ retries) all hit
// done-guards and touch no per-flow state.
func (c *Conn) Quiescent() bool {
	return c.done && c.pendingAcks.Len() == 0 && !c.xmitBusy && !c.appBusy
}

// SetQuietCallback installs fn to fire once the (stopped) connection
// reaches quiescence; if it is already quiescent, fn fires immediately.
// One-shot: the callback is cleared before it runs.
func (c *Conn) SetQuietCallback(fn func()) {
	c.onQuiet = fn
	c.maybeQuiet()
}

// maybeQuiet fires the one-shot quiet callback when the last piece of
// outstanding work drains from a stopped connection. Hooked at the three
// done-guard paths that clear pendingAcks/xmitBusy/appBusy.
func (c *Conn) maybeQuiet() {
	if c.onQuiet != nil && c.Quiescent() {
		fn := c.onQuiet
		c.onQuiet = nil
		fn()
	}
}

// Reset re-initializes a stopped, quiescent connection for reuse as a new
// flow with a fresh id — the churn fast path: the scoreboard entry
// freelist, batch buffers and slice capacities all carry over, so a reused
// connection allocates almost nothing. The congestion module is built fresh
// from factory (its state machine is not reusable across flows); the pacer
// is reset in place. Callers must re-register the new id with the demux and
// the path's ACK return (Receiver.Reset does both) — ids are never reused,
// so a late event aimed at the old incarnation cannot alias the new one.
func (c *Conn) Reset(id int, factory cc.Factory) {
	if !c.Quiescent() {
		panic(fmt.Sprintf("tcp: Reset of non-quiescent conn %d (done=%v heldAcks=%d xmitBusy=%v appBusy=%v)",
			c.id, c.done, c.pendingAcks.Len(), c.xmitBusy, c.appBusy))
	}
	// Hand surviving scoreboard entries (lost/sacked, never cum-acked)
	// back to the connection-private freelist before clearing the board.
	for i := c.board.head; i < len(c.board.entries); i++ {
		c.freeInfo(c.board.entries[i])
	}
	c.board.entries = c.board.entries[:0]
	c.board.head = 0

	c.id = id
	c.ccMod = factory()
	c.sndNxt, c.sndUna = 0, 0
	c.inflight = 0
	c.cwnd = c.cfg.InitialCwnd
	c.ssthresh = 1 << 30
	c.pacingRate = 0
	c.state = cc.StateOpen
	c.recoveryPoint = 0
	c.delivered, c.deliveredTime, c.firstTx = 0, 0, 0
	c.appLimited, c.lostTotal, c.retransTotal, c.ceTotal = 0, 0, 0, 0
	c.lastECEResponse = 0
	c.srtt, c.rttvar, c.lastRTT = 0, 0, 0
	c.minRTT.Reset()
	c.rtoBackoff = 0
	c.cwndLimited = false
	c.started, c.done = false, false
	c.segsSent, c.lastSendAt, c.lastProgress = 0, 0, 0
	c.failedErr = nil
	c.spuriousRTOs, c.idleRestarts = 0, 0
	c.undoValid, c.undoCwnd, c.undoSsthresh, c.undoAt = false, 0, 0, 0
	c.appSent = 0
	c.stream, c.streamTotal, c.streamEnd = false, 0, 0
	c.closing, c.drainedFired, c.kicked = false, false, false
	c.onWritable, c.onDrained, c.onFailed, c.onQuiet = nil, nil, nil, nil
	c.buffered, c.appCopied = 0, 0
	c.maxBufOcc = 0
	c.rttSample = stats.Online{}

	pcfg := c.cfg.Pacing
	pcfg.Enabled = c.ccMod.WantsPacing()
	if c.cfg.PacingOverride != nil {
		pcfg.Enabled = *c.cfg.PacingOverride
	}
	c.pacer.Reset(pcfg)
	c.ccMod.Init(c)
}

// CorruptInflightForTest deliberately skews the inflight counter so tests
// can prove the invariant checker catches real accounting bugs. Test-only.
func (c *Conn) CorruptInflightForTest(delta int) { c.inflight += delta }

// String identifies the connection for debug output.
func (c *Conn) String() string {
	return fmt.Sprintf("conn%d[%s cwnd=%d inflight=%d]", c.id, c.ccMod.Name(), c.cwnd, c.inflight)
}
