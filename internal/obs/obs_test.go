package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobbr/internal/telemetry"
)

func testManifest(exp string, points int) Manifest {
	return Manifest{
		Exp: exp, Title: "test grid", Points: points, Seeds: 3, Dur: "4s",
		Metrics: true, Flags: map[string]string{"j": "4"},
	}
}

func testPoints(n int) []PointRecord {
	pts := make([]PointRecord, n)
	for i := range pts {
		pts[i] = PointRecord{
			I: i, Label: "cell" + string(rune('A'+i)),
			Spec:    []byte(`{"device":"pixel4","cpu":"low","cc":"bbr","network":"ethernet"}`),
			Metrics: Metrics{GoodputMbps: 100 + float64(i), GoodputCI: 2, Retransmits: 10},
			Events:  1000,
		}
	}
	return pts
}

func TestWriteLoadRunRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fig2")
	m, pts := testManifest("fig2", 3), testPoints(3)
	if err := WriteRun(dir, m, pts); err != nil {
		t.Fatal(err)
	}
	r, err := LoadRun(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Manifest.Exp != "fig2" || r.Manifest.Points != 3 || r.Manifest.Seeds != 3 {
		t.Fatalf("manifest mismatch: %+v", r.Manifest)
	}
	if r.Manifest.V != Version {
		t.Fatalf("version not stamped: %d", r.Manifest.V)
	}
	if len(r.Points) != 3 {
		t.Fatalf("got %d points", len(r.Points))
	}
	for i, p := range r.Points {
		if p.I != i || p.Metrics.GoodputMbps != 100+float64(i) {
			t.Fatalf("point %d round-trip mismatch: %+v", i, p)
		}
	}
}

// A second write with a smaller grid must remove the stale artifacts, not
// leave 002.json orphaned next to the new 2-point run.
func TestWriteRunClearsStalePoints(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fig2")
	if err := WriteRun(dir, testManifest("fig2", 3), testPoints(3)); err != nil {
		t.Fatal(err)
	}
	if err := WriteRun(dir, testManifest("fig2", 2), testPoints(2)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "points"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("stale artifacts survived: %d files in points/", len(entries))
	}
	if _, err := LoadRun(dir); err != nil {
		t.Fatal(err)
	}
}

// Re-archiving the identical grid must reproduce the point files
// byte-identically (the archive determinism contract).
func TestWriteRunDeterministicBytes(t *testing.T) {
	base := t.TempDir()
	d1, d2 := filepath.Join(base, "a"), filepath.Join(base, "b")
	m, pts := testManifest("fig2", 3), testPoints(3)
	pts[1].Digest = map[string]HistDigest{
		"pacing_timer_slip_us": {Count: 4, Sum: 100, Min: 10, Max: 40,
			Bounds: []float64{16, 64}, Counts: []uint64{2, 1, 1}, P50: 16, P90: 64, P99: 64},
	}
	if err := WriteRun(d1, m, pts); err != nil {
		t.Fatal(err)
	}
	if err := WriteRun(d2, m, pts); err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		f := filepath.Join("points", pointFile(i))
		b1, err := os.ReadFile(filepath.Join(d1, f))
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(d2, f))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("point %d bytes differ between identical archives", i)
		}
	}
}

func TestLoadRunStrictness(t *testing.T) {
	write := func(t *testing.T, mutate func(dir string)) error {
		t.Helper()
		dir := filepath.Join(t.TempDir(), "fig2")
		if err := WriteRun(dir, testManifest("fig2", 2), testPoints(2)); err != nil {
			t.Fatal(err)
		}
		mutate(dir)
		_, err := LoadRun(dir)
		return err
	}
	if err := write(t, func(dir string) {
		os.WriteFile(filepath.Join(dir, "manifest.json"),
			[]byte(`{"v":1,"exp":"fig2","points":2,"seeds":3,"dur":"4s","mystery":7}`+"\n"), 0o644)
	}); err == nil || !strings.Contains(err.Error(), "mystery") {
		t.Fatalf("unknown manifest field accepted: %v", err)
	}
	if err := write(t, func(dir string) {
		os.WriteFile(filepath.Join(dir, "manifest.json"),
			[]byte(`{"v":99,"exp":"fig2","points":2,"seeds":3,"dur":"4s"}`+"\n"), 0o644)
	}); err == nil || !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("version drift accepted: %v", err)
	}
	if err := write(t, func(dir string) {
		os.Remove(filepath.Join(dir, "points", "001.json"))
	}); err == nil {
		t.Fatal("missing point file accepted")
	}
	if err := write(t, func(dir string) {
		os.WriteFile(filepath.Join(dir, "points", "002.json"), []byte("{}\n"), 0o644)
	}); err == nil {
		t.Fatal("surplus point file accepted")
	}
}

func TestWriteRunValidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "x")
	if err := WriteRun(dir, testManifest("x", 3), testPoints(2)); err == nil {
		t.Fatal("point-count mismatch accepted")
	}
	pts := testPoints(2)
	pts[1].I = 7
	if err := WriteRun(dir, testManifest("x", 2), pts); err == nil {
		t.Fatal("index mismatch accepted")
	}
}

func TestLoadArchive(t *testing.T) {
	root := t.TempDir()
	for _, exp := range []string{"fig2", "recovery"} {
		if err := WriteRun(filepath.Join(root, exp), testManifest(exp, 2), testPoints(2)); err != nil {
			t.Fatal(err)
		}
	}
	a, err := LoadArchive(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Runs) != 2 || a.Order[0] != "fig2" || a.Order[1] != "recovery" {
		t.Fatalf("archive: runs=%d order=%v", len(a.Runs), a.Order)
	}

	// A run directory is itself a loadable single-experiment archive.
	single, err := LoadArchive(filepath.Join(root, "fig2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Runs) != 1 || single.Order[0] != "fig2" {
		t.Fatalf("single-run archive: %v", single.Order)
	}

	// Subdirectory name must match the manifest's experiment id.
	if err := WriteRun(filepath.Join(root, "liar"), testManifest("fig9", 1), testPoints(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArchive(root); err == nil || !strings.Contains(err.Error(), "fig9") {
		t.Fatalf("mismatched dir/exp accepted: %v", err)
	}

	if _, err := LoadArchive(t.TempDir()); err == nil {
		t.Fatal("empty root accepted")
	}
}

func TestDigestSnapshot(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("conn0/pacing_timer_slip_us", []float64{16, 64})
	h.Observe(10)
	h.Observe(100)
	reg.Histogram("conn0/empty_instrument", []float64{1, 2}) // zero count → skipped
	snap := reg.Snapshot()
	d, skipped := DigestSnapshot(snap)
	if skipped != 0 {
		t.Fatalf("skipped=%d", skipped)
	}
	got, ok := d["pacing_timer_slip_us"]
	if !ok {
		t.Fatalf("conn prefix not stripped: %v", d)
	}
	if _, ok := d["empty_instrument"]; ok {
		t.Fatal("empty histogram archived (would carry ±Inf sentinels)")
	}
	if got.Count != 2 || got.Sum != 110 || got.Min != 10 || got.Max != 100 {
		t.Fatalf("digest: %+v", got)
	}
	if got.P99 != 100 {
		t.Fatalf("p99=%v", got.P99)
	}
	// Round-trip back to a snapshot for rollup merging.
	rt := got.Snapshot()
	if rt.Count != 2 || rt.Quantile(0.99) != 100 {
		t.Fatalf("digest snapshot round-trip: %+v", rt)
	}
}
