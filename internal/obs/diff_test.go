package obs

import (
	"strings"
	"testing"
)

func diffRunFrom(goodputs map[string]float64, mutate func(pts []PointRecord)) *Run {
	labels := []string{"p0", "p1", "p2"}
	pts := make([]PointRecord, len(labels))
	for i, l := range labels {
		pts[i] = PointRecord{
			I: i, Label: l,
			Spec:    specJSON("pixel4", "low", "bbr", "ethernet"),
			Metrics: Metrics{GoodputMbps: goodputs[l], GoodputCI: 1, Retransmits: 100},
		}
	}
	if mutate != nil {
		mutate(pts)
	}
	return &Run{
		Manifest: Manifest{V: Version, Exp: "fig2", Points: len(pts), Seeds: 3, Dur: "4s"},
		Points:   pts,
	}
}

func archiveOf(runs ...*Run) *Archive {
	a := &Archive{Runs: map[string]*Run{}}
	for _, r := range runs {
		a.Runs[r.Manifest.Exp] = r
		a.Order = append(a.Order, r.Manifest.Exp)
	}
	return a
}

var baseGoodputs = map[string]float64{"p0": 100, "p1": 110, "p2": 120}

// The acceptance criterion: an archive diffed against itself is empty and
// not regressed.
func TestDiffSelfIsEmpty(t *testing.T) {
	a := archiveOf(diffRunFrom(baseGoodputs, nil))
	deltas, sum, err := Diff(a, a, DiffOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Fatalf("self-diff produced %d deltas: %+v", len(deltas), deltas)
	}
	if sum.Regressed != 0 || sum.Improved != 0 || sum.Unmatched != 0 {
		t.Fatalf("self-diff summary: %+v", sum)
	}
	if sum.Cells != 1 || sum.Experiments != 1 {
		t.Fatalf("summary: %+v", sum)
	}
	var b strings.Builder
	if err := WriteDeltas(&b, deltas); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("self-diff printed output:\n%s", b.String())
	}
}

func TestDiffGoodputRegression(t *testing.T) {
	a := archiveOf(diffRunFrom(baseGoodputs, nil))
	b := archiveOf(diffRunFrom(map[string]float64{"p0": 50, "p1": 55, "p2": 60}, nil))
	deltas, sum, err := Diff(a, b, DiffOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Regressed != 1 || len(deltas) != 1 {
		t.Fatalf("regressed=%d deltas=%d", sum.Regressed, len(deltas))
	}
	d := deltas[0]
	if !d.GoodputRegressed || !d.Regressed() {
		t.Fatalf("delta: %+v", d)
	}
	if d.GoodA != 110 || d.GoodB != 55 {
		t.Fatalf("means: %v → %v", d.GoodA, d.GoodB)
	}
	var out strings.Builder
	if err := WriteDeltas(&out, deltas); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "REGRESSED (goodput)") {
		t.Fatalf("table:\n%s", out.String())
	}
}

func TestDiffImprovement(t *testing.T) {
	a := archiveOf(diffRunFrom(baseGoodputs, nil))
	b := archiveOf(diffRunFrom(map[string]float64{"p0": 200, "p1": 220, "p2": 240}, nil))
	deltas, sum, err := Diff(a, b, DiffOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Regressed != 0 || sum.Improved != 1 || len(deltas) != 1 || !deltas[0].Improved {
		t.Fatalf("sum=%+v deltas=%+v", sum, deltas)
	}
}

// A delta inside the combined 95% CI of the two means is noise, not a
// regression — even when it exceeds the relative threshold.
func TestDiffNoiseGate(t *testing.T) {
	wide := func(pts []PointRecord) {
		for i := range pts {
			pts[i].Metrics.GoodputCI = 40
		}
	}
	a := archiveOf(diffRunFrom(baseGoodputs, wide))
	b := archiveOf(diffRunFrom(map[string]float64{"p0": 90, "p1": 100, "p2": 110}, wide))
	deltas, sum, err := Diff(a, b, DiffOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Regressed != 0 || len(deltas) != 0 {
		t.Fatalf("noise flagged as regression: sum=%+v deltas=%+v", sum, deltas)
	}
	// Same move with tight CIs is real.
	a2 := archiveOf(diffRunFrom(baseGoodputs, nil))
	b2 := archiveOf(diffRunFrom(map[string]float64{"p0": 90, "p1": 100, "p2": 110}, nil))
	_, sum2, err := Diff(a2, b2, DiffOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Regressed != 1 {
		t.Fatalf("tight-CI regression missed: %+v", sum2)
	}
}

func TestDiffRetxRegression(t *testing.T) {
	a := archiveOf(diffRunFrom(baseGoodputs, nil))
	b := archiveOf(diffRunFrom(baseGoodputs, func(pts []PointRecord) {
		for i := range pts {
			pts[i].Metrics.Retransmits = 500
		}
	}))
	deltas, sum, err := Diff(a, b, DiffOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Regressed != 1 || len(deltas) != 1 || !deltas[0].RetxRegressed {
		t.Fatalf("sum=%+v deltas=%+v", sum, deltas)
	}
	// Below the absolute floor: 100 → 120 retx is not a regression.
	b2 := archiveOf(diffRunFrom(baseGoodputs, func(pts []PointRecord) {
		for i := range pts {
			pts[i].Metrics.Retransmits = 120
		}
	}))
	_, sum2, err := Diff(a, b2, DiffOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Regressed != 0 {
		t.Fatalf("sub-floor retx flagged: %+v", sum2)
	}
}

func TestDiffFailureRegression(t *testing.T) {
	a := archiveOf(diffRunFrom(baseGoodputs, nil))
	b := archiveOf(diffRunFrom(baseGoodputs, func(pts []PointRecord) {
		pts[2].Metrics = Metrics{}
		pts[2].Failure = &Failure{Class: "panic", Msg: "boom"}
	}))
	deltas, sum, err := Diff(a, b, DiffOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Regressed != 1 || len(deltas) != 1 || !deltas[0].FailureRegressed {
		t.Fatalf("sum=%+v deltas=%+v", sum, deltas)
	}
	var out strings.Builder
	WriteDeltas(&out, deltas)
	if !strings.Contains(out.String(), "failures 0 → 1") {
		t.Fatalf("table:\n%s", out.String())
	}
}

// Alignment is by label, so a perturbed spec knob still pairs the points —
// and the drift is reported, not fatal.
func TestDiffAlignsAcrossSpecDrift(t *testing.T) {
	a := archiveOf(diffRunFrom(baseGoodputs, nil))
	b := archiveOf(diffRunFrom(map[string]float64{"p0": 50, "p1": 55, "p2": 60},
		func(pts []PointRecord) {
			for i := range pts {
				pts[i].Spec = []byte(`{"device":"pixel4","cpu":"low","cc":"bbr","network":"ethernet","stride":50}`)
			}
		}))
	deltas, sum, err := Diff(a, b, DiffOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Regressed != 1 || len(deltas) != 1 {
		t.Fatalf("drifted points failed to align: sum=%+v", sum)
	}
	if deltas[0].SpecDrift != 3 {
		t.Fatalf("spec drift: %+v", deltas[0])
	}
	var out strings.Builder
	WriteDeltas(&out, deltas)
	if !strings.Contains(out.String(), "spec drift on 3 point(s)") {
		t.Fatalf("table:\n%s", out.String())
	}
}

func TestDiffUnmatchedAndSkipped(t *testing.T) {
	shrunk := diffRunFrom(baseGoodputs, nil)
	shrunk.Points = shrunk.Points[:2]
	shrunk.Manifest.Points = 2
	other := diffRunFrom(baseGoodputs, nil)
	other.Manifest.Exp = "recovery"
	a := archiveOf(diffRunFrom(baseGoodputs, nil), other)
	b := archiveOf(shrunk)
	_, sum, err := Diff(a, b, DiffOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Unmatched != 1 {
		t.Fatalf("unmatched=%d", sum.Unmatched)
	}
	if len(sum.SkippedExps) != 1 || sum.SkippedExps[0] != "recovery" {
		t.Fatalf("skipped=%v", sum.SkippedExps)
	}
}

func TestDiffAllMode(t *testing.T) {
	a := archiveOf(diffRunFrom(baseGoodputs, nil))
	deltas, _, err := Diff(a, a, DiffOpts{All: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].Significant() {
		t.Fatalf("all-mode deltas: %+v", deltas)
	}
	var out strings.Builder
	WriteDeltas(&out, deltas)
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("table:\n%s", out.String())
	}
}
