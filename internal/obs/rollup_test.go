package obs

import (
	"strings"
	"testing"
)

func specJSON(device, cpu, cc, network string) []byte {
	return []byte(`{"device":"` + device + `","cpu":"` + cpu + `","cc":"` + cc +
		`","network":"` + network + `"}`)
}

func TestCellOf(t *testing.T) {
	c := CellOf(specJSON("pixel4", "low", "bbr", "ethernet"))
	want := Cell{Device: "pixel4", CPU: "low", CC: "bbr", Network: "ethernet"}
	if c != want {
		t.Fatalf("got %+v", c)
	}
	if c.String() != "pixel4/low/bbr/ethernet" {
		t.Fatalf("String: %q", c.String())
	}
	if got := CellOf(nil); got != (Cell{}) {
		t.Fatalf("nil spec: %+v", got)
	}
	if (Cell{}).String() != "-/-/-/-" {
		t.Fatalf("zero cell: %q", (Cell{}).String())
	}
}

func rollupRun() *Run {
	bounds := []float64{16, 64}
	digest := func(count uint64, sum float64) map[string]HistDigest {
		return map[string]HistDigest{
			"pacing_timer_slip_us": {Count: count, Sum: sum, Min: 1, Max: 100,
				Bounds: bounds, Counts: []uint64{count - 1, 0, 1}},
		}
	}
	pts := []PointRecord{
		{I: 0, Label: "a", Spec: specJSON("pixel4", "low", "bbr", "ethernet"),
			Metrics: Metrics{GoodputMbps: 100, Retransmits: 10, Profiled: true, PacingShare: 0.5},
			Digest:  digest(4, 40)},
		{I: 1, Label: "b", Spec: specJSON("pixel4", "low", "bbr", "ethernet"),
			Metrics: Metrics{GoodputMbps: 200, Retransmits: 30, Profiled: true, PacingShare: 0.3},
			Digest:  digest(6, 60)},
		{I: 2, Label: "c", Spec: specJSON("pixel4", "low", "bbr", "ethernet"),
			Failure: &Failure{Class: "panic", Msg: "boom"}},
		{I: 3, Label: "d", Spec: specJSON("mi10", "high", "cubic", "lte"),
			Metrics: Metrics{GoodputMbps: 50}},
	}
	return &Run{
		Manifest: Manifest{V: Version, Exp: "fig2", Points: len(pts), Seeds: 3, Dur: "4s"},
		Points:   pts,
	}
}

func TestRollup(t *testing.T) {
	cells := Rollup(rollupRun())
	if len(cells) != 2 {
		t.Fatalf("got %d cells", len(cells))
	}
	// Sorted by cell string: mi10/... before pixel4/...
	if cells[0].Cell.Device != "mi10" || cells[1].Cell.Device != "pixel4" {
		t.Fatalf("cell order: %v %v", cells[0].Cell, cells[1].Cell)
	}
	px := cells[1]
	if px.Points != 3 || px.Failed != 1 || len(px.Goodputs) != 2 {
		t.Fatalf("pixel4 cell: pts=%d failed=%d goodputs=%d", px.Points, px.Failed, len(px.Goodputs))
	}
	if got := px.GoodputP(50); got != 150 {
		t.Fatalf("p50=%v", got)
	}
	if len(px.Paces) != 2 {
		t.Fatalf("paces: %v", px.Paces)
	}
	h, ok := px.Digest["pacing_timer_slip_us"]
	if !ok || h.Count != 10 || h.Sum != 100 {
		t.Fatalf("merged digest: %+v", h)
	}
	if px.DigestSkipped != 0 {
		t.Fatalf("skipped=%d", px.DigestSkipped)
	}
}

func TestRollupSkipsMismatchedDigestBounds(t *testing.T) {
	r := rollupRun()
	// Same instrument, different bucket bounds: must be skipped, not summed.
	r.Points[1].Digest["pacing_timer_slip_us"] = HistDigest{
		Count: 6, Sum: 60, Min: 1, Max: 100,
		Bounds: []float64{32, 128}, Counts: []uint64{5, 0, 1},
	}
	cells := Rollup(r)
	px := cells[1]
	if px.DigestSkipped != 1 {
		t.Fatalf("skipped=%d", px.DigestSkipped)
	}
	if h := px.Digest["pacing_timer_slip_us"]; h.Count != 4 {
		t.Fatalf("corrupted merge: %+v", h)
	}
}

func TestWriteRollup(t *testing.T) {
	r := rollupRun()
	cells := Rollup(r)
	var b strings.Builder
	if err := WriteRollup(&b, r, cells); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"== rollup fig2: 4 points, 2 cells",
		"pixel4/low/bbr/ethernet",
		"mi10/high/cubic/lte",
		"slip p99",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rollup output missing %q:\n%s", want, out)
		}
	}
}
