// The scientific regression differ: align two run archives point by point,
// fold the aligned pairs into cells, and report per-cell deltas gated by
// noise-aware thresholds — a delta only counts when it clears both the
// combined 95% CI of the two means (internal/stats) and a relative floor.
// cmd/mobbr-diff drives this the way tools/benchcheck gates allocs/op: CI
// runs it against a baseline archive and fails the build when "goodput
// regressed on Low-End BBR" actually happened, not when seeds wobbled.
package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"

	"mobbr/internal/stats"
)

// DiffOpts tunes the gating.
type DiffOpts struct {
	// Rel is the relative-change floor (default 0.05 = 5%): a delta below
	// Rel×baseline is never significant, however tight the CIs.
	Rel float64
	// RetxAbs is the absolute retransmission floor (default 50): retx
	// deltas smaller than this never gate, so near-zero baselines don't
	// flag on a handful of extra losses.
	RetxAbs float64
	// All reports every aligned cell, not only significant ones.
	All bool
}

func (o DiffOpts) withDefaults() DiffOpts {
	if o.Rel <= 0 {
		o.Rel = 0.05
	}
	if o.RetxAbs <= 0 {
		o.RetxAbs = 50
	}
	return o
}

// Delta is one cell's before/after comparison.
type Delta struct {
	Exp    string
	Cell   Cell
	Points int
	// GoodA/GoodB are mean goodputs (Mbps) over the cell's aligned points;
	// GoodCI is the combined 95% CI of the A−B difference of those means.
	GoodA, GoodB, GoodCI float64
	// RetxA/RetxB are mean retransmissions.
	RetxA, RetxB float64
	// PaceA/PaceB are mean pacing-timer shares (profiled points only).
	PaceA, PaceB float64
	HasPace      bool
	// LatA/LatB are mean request-latency p99s in ms (app-workload points
	// only) — displayed for context, never gating: latency quantiles lack
	// per-point CIs, so thresholding them would gate on seed noise.
	LatA, LatB float64
	HasApp     bool
	// FCTA/FCTB are mean flow-completion-time p99s in ms (flow-churn
	// points only) — context, never gating, for the same reason.
	FCTA, FCTB float64
	HasFlows   bool
	// SpecDrift counts aligned points whose archived spec bytes differ
	// (e.g. a deliberately perturbed knob) — informational, not gating.
	SpecDrift int
	// FailedA/FailedB count contained-failure points per side; a point
	// failing on one side only is itself a regression signal.
	FailedA, FailedB int
	// GoodputRegressed / RetxRegressed / FailureRegressed name which gate
	// tripped; Improved marks a significant move the right way.
	GoodputRegressed bool
	RetxRegressed    bool
	FailureRegressed bool
	Improved         bool
}

// Significant reports whether the delta is worth printing at all.
func (d *Delta) Significant() bool {
	return d.GoodputRegressed || d.RetxRegressed || d.FailureRegressed || d.Improved
}

// Regressed reports whether the delta should fail a gate.
func (d *Delta) Regressed() bool {
	return d.GoodputRegressed || d.RetxRegressed || d.FailureRegressed
}

// DiffSummary totals one comparison.
type DiffSummary struct {
	Experiments int
	Cells       int
	Regressed   int
	Improved    int
	// Unmatched counts points present on one side only.
	Unmatched int
	// SkippedExps lists experiment ids present in only one archive.
	SkippedExps []string
}

// pair is one aligned grid point.
type pair struct {
	a, b *PointRecord
}

// Diff aligns archives a (baseline) and b (candidate) and returns per-cell
// deltas in deterministic order plus a summary. Alignment is by experiment
// id, then by point label within the experiment (labels are the stable
// identity; archived spec bytes are compared only to report drift, so a
// deliberately perturbed knob still aligns).
func Diff(a, b *Archive, opts DiffOpts) ([]Delta, DiffSummary, error) {
	opts = opts.withDefaults()
	var deltas []Delta
	var sum DiffSummary
	for _, exp := range a.Order {
		ra, rb := a.Runs[exp], b.Runs[exp]
		if rb == nil {
			sum.SkippedExps = append(sum.SkippedExps, exp)
			continue
		}
		sum.Experiments++
		pairs, unmatched := alignPoints(ra, rb)
		sum.Unmatched += unmatched
		for _, d := range diffRun(exp, pairs, opts) {
			sum.Cells++
			if d.Regressed() {
				sum.Regressed++
			} else if d.Improved {
				sum.Improved++
			}
			if opts.All || d.Significant() {
				deltas = append(deltas, d)
			}
		}
	}
	for _, exp := range b.Order {
		if a.Runs[exp] == nil {
			sum.SkippedExps = append(sum.SkippedExps, exp)
		}
	}
	sort.Strings(sum.SkippedExps)
	return deltas, sum, nil
}

// alignPoints matches points by label (first occurrence wins on duplicate
// labels, with index order breaking ties deterministically).
func alignPoints(ra, rb *Run) ([]pair, int) {
	byLabel := map[string][]*PointRecord{}
	for i := range rb.Points {
		p := &rb.Points[i]
		byLabel[p.Label] = append(byLabel[p.Label], p)
	}
	var pairs []pair
	unmatched := 0
	for i := range ra.Points {
		p := &ra.Points[i]
		cands := byLabel[p.Label]
		if len(cands) == 0 {
			unmatched++
			continue
		}
		pairs = append(pairs, pair{a: p, b: cands[0]})
		byLabel[p.Label] = cands[1:]
	}
	for _, rest := range byLabel {
		unmatched += len(rest)
	}
	return pairs, unmatched
}

// diffRun folds one experiment's aligned pairs into per-cell deltas.
func diffRun(exp string, pairs []pair, opts DiffOpts) []Delta {
	byCell := map[Cell]*cellAcc{}
	var order []Cell
	for _, pr := range pairs {
		cell := CellOf(pr.a.Spec)
		acc, ok := byCell[cell]
		if !ok {
			acc = &cellAcc{}
			byCell[cell] = acc
			order = append(order, cell)
		}
		acc.add(pr)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].String() < order[j].String() })
	deltas := make([]Delta, 0, len(order))
	for _, cell := range order {
		deltas = append(deltas, byCell[cell].delta(exp, cell, opts))
	}
	return deltas
}

// cellAcc accumulates one cell's aligned pairs.
type cellAcc struct {
	points           int
	specDrift        int
	failedA, failedB int
	goodA, goodB     []float64
	ciA, ciB         []float64
	retxA, retxB     []float64
	paceA, paceB     []float64
	latA, latB       []float64
	fctA, fctB       []float64
}

func (c *cellAcc) add(pr pair) {
	c.points++
	if !bytes.Equal(pr.a.Spec, pr.b.Spec) {
		c.specDrift++
	}
	if pr.a.Failure != nil {
		c.failedA++
	}
	if pr.b.Failure != nil {
		c.failedB++
	}
	if pr.a.Failure != nil || pr.b.Failure != nil {
		return // measured fields are meaningless on a failed side
	}
	c.goodA = append(c.goodA, pr.a.Metrics.GoodputMbps)
	c.goodB = append(c.goodB, pr.b.Metrics.GoodputMbps)
	c.ciA = append(c.ciA, pr.a.Metrics.GoodputCI)
	c.ciB = append(c.ciB, pr.b.Metrics.GoodputCI)
	c.retxA = append(c.retxA, pr.a.Metrics.Retransmits)
	c.retxB = append(c.retxB, pr.b.Metrics.Retransmits)
	if pr.a.Metrics.Profiled && pr.b.Metrics.Profiled {
		c.paceA = append(c.paceA, pr.a.Metrics.PacingShare)
		c.paceB = append(c.paceB, pr.b.Metrics.PacingShare)
	}
	if pr.a.Metrics.AppKind != "" && pr.b.Metrics.AppKind != "" {
		c.latA = append(c.latA, pr.a.Metrics.LatP99ms)
		c.latB = append(c.latB, pr.b.Metrics.LatP99ms)
	}
	if pr.a.Metrics.FlowsStarted > 0 && pr.b.Metrics.FlowsStarted > 0 {
		c.fctA = append(c.fctA, pr.a.Metrics.FCTP99ms)
		c.fctB = append(c.fctB, pr.b.Metrics.FCTP99ms)
	}
}

// meanCI is the 95% CI of a mean of n independent point means with the
// given per-point CI half-widths: sqrt(Σci²)/n.
func meanCI(cis []float64) float64 {
	if len(cis) == 0 {
		return 0
	}
	var ss float64
	for _, ci := range cis {
		ss += ci * ci
	}
	return math.Sqrt(ss) / float64(len(cis))
}

func (c *cellAcc) delta(exp string, cell Cell, opts DiffOpts) Delta {
	d := Delta{
		Exp: exp, Cell: cell, Points: c.points,
		SpecDrift: c.specDrift, FailedA: c.failedA, FailedB: c.failedB,
		GoodA: stats.Mean(c.goodA), GoodB: stats.Mean(c.goodB),
		RetxA: stats.Mean(c.retxA), RetxB: stats.Mean(c.retxB),
	}
	ciA, ciB := meanCI(c.ciA), meanCI(c.ciB)
	d.GoodCI = stats.CombinedCI95(ciA, ciB)
	if len(c.paceA) > 0 {
		d.HasPace = true
		d.PaceA, d.PaceB = stats.Mean(c.paceA), stats.Mean(c.paceB)
	}
	if len(c.latA) > 0 {
		d.HasApp = true
		d.LatA, d.LatB = stats.Mean(c.latA), stats.Mean(c.latB)
	}
	if len(c.fctA) > 0 {
		d.HasFlows = true
		d.FCTA, d.FCTB = stats.Mean(c.fctA), stats.Mean(c.fctB)
	}
	d.FailureRegressed = c.failedB > c.failedA
	if len(c.goodA) > 0 {
		if stats.SignificantDelta(d.GoodA, d.GoodB, ciA, ciB, opts.Rel) {
			if d.GoodB < d.GoodA {
				d.GoodputRegressed = true
			} else {
				d.Improved = true
			}
		}
		if d.RetxB > d.RetxA &&
			d.RetxB-d.RetxA > opts.RetxAbs &&
			d.RetxB-d.RetxA > opts.Rel*math.Max(d.RetxA, opts.RetxAbs) {
			d.RetxRegressed = true
		}
	}
	if c.failedA > c.failedB && !d.Regressed() {
		d.Improved = true
	}
	return d
}

// WriteDeltas renders the deltas as a per-cell table. It prints nothing
// when deltas is empty, so a self-diff produces empty output.
func WriteDeltas(w io.Writer, deltas []Delta) error {
	if len(deltas) == 0 {
		return nil
	}
	fmt.Fprintf(w, "%-10s %-32s %4s %22s %8s %16s %14s %18s %s\n",
		"exp", "cell", "pts", "goodput Mbps (A→B)", "Δ%", "retx (A→B)", "pace% (A→B)", "req p99 ms (A→B)", "verdict")
	for i := range deltas {
		d := &deltas[i]
		pct := "-"
		if d.GoodA > 0 {
			pct = fmt.Sprintf("%+.1f", (d.GoodB-d.GoodA)/d.GoodA*100)
		}
		pace := "-"
		if d.HasPace {
			pace = fmt.Sprintf("%.1f → %.1f", d.PaceA*100, d.PaceB*100)
		}
		lat := "-"
		if d.HasApp {
			lat = fmt.Sprintf("%.1f → %.1f", d.LatA, d.LatB)
		}
		verdict := "ok"
		switch {
		case d.FailureRegressed:
			verdict = fmt.Sprintf("REGRESSED (failures %d → %d)", d.FailedA, d.FailedB)
		case d.GoodputRegressed && d.RetxRegressed:
			verdict = "REGRESSED (goodput, retx)"
		case d.GoodputRegressed:
			verdict = "REGRESSED (goodput)"
		case d.RetxRegressed:
			verdict = "REGRESSED (retx)"
		case d.Improved:
			verdict = "improved"
		}
		extra := ""
		if d.HasFlows {
			// Flow-churn context rides in the trailer: the FCT p99 has no
			// per-point CI, so it informs but never gates.
			extra += fmt.Sprintf("  [fct p99 %.1f → %.1f ms]", d.FCTA, d.FCTB)
		}
		if d.SpecDrift > 0 {
			extra += fmt.Sprintf("  [spec drift on %d point(s)]", d.SpecDrift)
		}
		fmt.Fprintf(w, "%-10s %-32s %4d %10.1f → %-10.1f %8s %7.0f → %-7.0f %14s %18s %s%s\n",
			d.Exp, d.Cell, d.Points, d.GoodA, d.GoodB, pct, d.RetxA, d.RetxB, pace, lat, verdict, extra)
	}
	return nil
}
