// Package obs is the grid-level observability layer: run archives,
// cross-run aggregation, live progress, and the regression differ.
//
// PR 2's internal/telemetry observes one run from the inside (event bus,
// per-conn histograms, cycle profiler); obs observes the *grid* from the
// outside. Every experiment invocation can write a structured run archive —
// a manifest plus one artifact per grid point in a strict, versioned JSON
// codec — which downstream tools aggregate into per-cell
// (device×CPU×CC×network) rollups with percentile extraction, watch live
// via a wall-clock progress reporter, and compare across runs with
// noise-aware regression gating (cmd/mobbr-diff).
//
// Layout of a run archive root:
//
//	runA/
//	  fig2/
//	    manifest.json      # grid description: spec matrix size, seeds, flags
//	    points/000.json    # one artifact per grid point, strictly versioned
//	    points/001.json
//	  recovery/
//	    ...
//
// Per-point artifacts contain only deterministic fields (measurements,
// spec JSON, contained failures, engine event totals), so re-archiving the
// same grid — including a journal-resumed one — reproduces them
// byte-identically. Wall-clock timing lives in the manifest only.
package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"mobbr/internal/telemetry"
)

// Version guards the archive codec. Readers reject other versions loudly
// instead of misinterpreting fields.
const Version = 1

// Manifest describes one archived experiment run.
type Manifest struct {
	// V is the codec version (Version).
	V int `json:"v"`
	// Exp is the experiment id ("fig2", "recovery", "trace", ...).
	Exp string `json:"exp"`
	// Title is the experiment's human description.
	Title string `json:"title,omitempty"`
	// Points is the grid size; points/ must hold exactly this many files.
	Points int `json:"points"`
	// Seeds is the per-point seed count.
	Seeds int `json:"seeds"`
	// Dur is the simulated duration per run (Go duration string).
	Dur string `json:"dur"`
	// Trace/Metrics/Profile record the telemetry flag set of the run.
	Trace   bool `json:"trace,omitempty"`
	Metrics bool `json:"metrics,omitempty"`
	Profile bool `json:"profile,omitempty"`
	// Flags carries any extra invocation knobs worth recording (e.g. a
	// deliberate -force-stride perturbation). Keys render sorted.
	Flags map[string]string `json:"flags,omitempty"`
	// Git is `git describe --always --dirty` at archive time ("" when
	// unavailable).
	Git string `json:"git,omitempty"`
	// WallMs is the wall-clock time the grid took, in milliseconds. It is
	// the manifest's only nondeterministic field; per-point artifacts carry
	// none.
	WallMs float64 `json:"wall_ms,omitempty"`
	// Events is the total simulator events executed across the grid
	// (deterministic; the engine-level "CPU" of the run).
	Events uint64 `json:"events,omitempty"`
}

// Metrics is the measured outcome of one grid point — the union of the
// fields the standard, recovery and trace experiments report, with
// omitempty on the experiment-specific ones.
type Metrics struct {
	GoodputMbps  float64 `json:"goodput_mbps"`
	GoodputCI    float64 `json:"goodput_ci,omitempty"`
	RTTms        float64 `json:"rtt_ms,omitempty"`
	MinRTTms     float64 `json:"min_rtt_ms,omitempty"`
	Retransmits  float64 `json:"retransmits,omitempty"`
	SKBKbits     float64 `json:"skb_kbits,omitempty"`
	IdleMs       float64 `json:"idle_ms,omitempty"`
	ExpectedMbps float64 `json:"expected_mbps,omitempty"`
	MaxBufKB     float64 `json:"max_buf_kb,omitempty"`
	CPUUtil      float64 `json:"cpu_util,omitempty"`
	Jain         float64 `json:"jain,omitempty"`
	PacingShare  float64 `json:"pacing_share,omitempty"`
	Profiled     bool    `json:"profiled,omitempty"`
	// AppKind through RebufferPct are the application-workload grid's
	// metrics ("apps"): completed operations, request-latency percentiles
	// and the streaming rebuffer share. Bulk points omit them all.
	AppKind     string  `json:"app_kind,omitempty"`
	Requests    int64   `json:"requests,omitempty"`
	LatP50ms    float64 `json:"lat_p50_ms,omitempty"`
	LatP90ms    float64 `json:"lat_p90_ms,omitempty"`
	LatP99ms    float64 `json:"lat_p99_ms,omitempty"`
	RebufferPct float64 `json:"rebuffer_pct,omitempty"`
	// FlowsStarted through FastPathShare are the flow-churn grid's metrics
	// ("scale"): flows admitted/completed, peak concurrency,
	// flow-completion-time percentiles and the flow-table fast-path share.
	// Non-churn points omit them all.
	FlowsStarted   int64   `json:"flows_started,omitempty"`
	FlowsCompleted int64   `json:"flows_completed,omitempty"`
	FlowsPeakLive  int     `json:"flows_peak_live,omitempty"`
	FCTP50ms       float64 `json:"fct_p50_ms,omitempty"`
	FCTP99ms       float64 `json:"fct_p99_ms,omitempty"`
	FastPathShare  float64 `json:"fast_path_share,omitempty"`
	// RecoveryMs / RecoveryCI / Recovered are the recovery experiment's
	// metrics.
	RecoveryMs float64 `json:"recovery_ms,omitempty"`
	RecoveryCI float64 `json:"recovery_ci,omitempty"`
	Recovered  int     `json:"recovered,omitempty"`
	// SpuriousRTOs is recovery's F-RTO signal.
	SpuriousRTOs float64 `json:"spurious_rtos,omitempty"`
}

// Failure mirrors the resilient runner's contained-failure record.
type Failure struct {
	Class    string `json:"class"`
	Rule     string `json:"rule,omitempty"`
	Msg      string `json:"msg"`
	Repro    string `json:"repro,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// HistDigest is one instrument's merged histogram across the point's
// connections, with the rollup percentiles pre-extracted.
type HistDigest struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
}

// PointRecord is the per-grid-point artifact.
type PointRecord struct {
	// V is the codec version (Version).
	V int `json:"v"`
	// I is the point's grid index; the file name is %03d.json of it.
	I int `json:"i"`
	// Label names the cell within its experiment.
	Label string `json:"label"`
	// Spec is the point's exact defaulted spec in core.EncodeSpec form —
	// the same bytes a repro line carries — and the identity mobbr-diff
	// aligns on (modulo deliberate knob perturbations).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Metrics is the measured outcome (zero when Failure is set).
	Metrics Metrics `json:"metrics"`
	// Events is the simulator events executed for this point across its
	// seeds (deterministic).
	Events uint64 `json:"events,omitempty"`
	// MaxPending is the engine queue high-water mark of the last seed when
	// engine self-metrics were collected (deterministic).
	MaxPending int `json:"max_pending,omitempty"`
	// Failure is the contained failure class/rule/repro, if the point
	// failed under the resilient runner.
	Failure *Failure `json:"failure,omitempty"`
	// Digest holds the point's telemetry histogram digest (last seed),
	// keyed by instrument, when metrics telemetry was enabled for an
	// in-process run (journal-resumed points have no in-memory sample and
	// therefore no digest).
	Digest map[string]HistDigest `json:"digest,omitempty"`
	// DigestSkipped counts histograms dropped from Digest because their
	// bucket bounds did not match their instrument's.
	DigestSkipped int `json:"digest_skipped,omitempty"`
}

// Run is one loaded experiment archive.
type Run struct {
	Dir      string
	Manifest Manifest
	Points   []PointRecord
}

// pointFile names the i-th artifact.
func pointFile(i int) string { return fmt.Sprintf("%03d.json", i) }

// WriteRun writes (or atomically replaces) one experiment's archive
// directory: manifest.json plus points/NNN.json. Any stale points/ content
// from a previous, differently-shaped run is removed first, so re-archiving
// never orphans artifacts.
func WriteRun(dir string, m Manifest, points []PointRecord) error {
	if m.V == 0 {
		m.V = Version
	}
	if m.V != Version {
		return fmt.Errorf("obs: manifest version %d, codec is %d", m.V, Version)
	}
	if m.Points != len(points) {
		return fmt.Errorf("obs: manifest declares %d points, got %d records", m.Points, len(points))
	}
	pdir := filepath.Join(dir, "points")
	if err := os.RemoveAll(pdir); err != nil {
		return fmt.Errorf("obs: clearing %s: %w", pdir, err)
	}
	if err := os.MkdirAll(pdir, 0o755); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	for i, p := range points {
		if p.V == 0 {
			p.V = Version
		}
		if p.I != i {
			return fmt.Errorf("obs: point record %d carries index %d", i, p.I)
		}
		data, err := json.MarshalIndent(p, "", " ")
		if err != nil {
			return fmt.Errorf("obs: encoding point %d: %w", i, err)
		}
		if err := os.WriteFile(filepath.Join(pdir, pointFile(i)), append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("obs: %w", err)
		}
	}
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("obs: encoding manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}

// LoadRun reads one experiment archive directory strictly: unknown fields,
// version drift, missing or surplus point files are errors.
func LoadRun(dir string) (*Run, error) {
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	var m Manifest
	if err := strictUnmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: %s/manifest.json: %w", dir, err)
	}
	if m.V != Version {
		return nil, fmt.Errorf("obs: %s: archive version %d, this tool reads %d", dir, m.V, Version)
	}
	pdir := filepath.Join(dir, "points")
	entries, err := os.ReadDir(pdir)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	if len(entries) != m.Points {
		return nil, fmt.Errorf("obs: %s: manifest declares %d points but points/ holds %d files", dir, m.Points, len(entries))
	}
	r := &Run{Dir: dir, Manifest: m, Points: make([]PointRecord, m.Points)}
	for i := 0; i < m.Points; i++ {
		data, err := os.ReadFile(filepath.Join(pdir, pointFile(i)))
		if err != nil {
			return nil, fmt.Errorf("obs: %w", err)
		}
		var p PointRecord
		if err := strictUnmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("obs: %s/points/%s: %w", dir, pointFile(i), err)
		}
		if p.V != Version {
			return nil, fmt.Errorf("obs: %s/points/%s: version %d, this tool reads %d", dir, pointFile(i), p.V, Version)
		}
		if p.I != i {
			return nil, fmt.Errorf("obs: %s/points/%s: carries index %d", dir, pointFile(i), p.I)
		}
		r.Points[i] = p
	}
	return r, nil
}

// Archive is a loaded run-archive root: one Run per experiment
// subdirectory (or a single Run when the root itself is one).
type Archive struct {
	Root string
	// Runs maps experiment id to its archive.
	Runs map[string]*Run
	// Order lists experiment ids in sorted order for deterministic output.
	Order []string
}

// LoadArchive loads every experiment run under root. A root that is itself
// a run directory (holds manifest.json) loads as a single-experiment
// archive.
func LoadArchive(root string) (*Archive, error) {
	a := &Archive{Root: root, Runs: map[string]*Run{}}
	if _, err := os.Stat(filepath.Join(root, "manifest.json")); err == nil {
		r, err := LoadRun(root)
		if err != nil {
			return nil, err
		}
		a.Runs[r.Manifest.Exp] = r
		a.Order = []string{r.Manifest.Exp}
		return a, nil
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub := filepath.Join(root, e.Name())
		if _, err := os.Stat(filepath.Join(sub, "manifest.json")); err != nil {
			continue
		}
		r, err := LoadRun(sub)
		if err != nil {
			return nil, err
		}
		if r.Manifest.Exp != e.Name() {
			return nil, fmt.Errorf("obs: %s: manifest says experiment %q", sub, r.Manifest.Exp)
		}
		a.Runs[r.Manifest.Exp] = r
	}
	if len(a.Runs) == 0 {
		return nil, fmt.Errorf("obs: %s holds no run archives (no manifest.json anywhere)", root)
	}
	for id := range a.Runs {
		a.Order = append(a.Order, id)
	}
	sort.Strings(a.Order)
	return a, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields, so a drifted
// archive fails loudly instead of silently dropping data.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// GitDescribe returns `git describe --always --dirty` of the working tree,
// or "" when git or the repository is unavailable. Archive metadata only —
// never part of point identity.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// DigestSnapshot converts a run's telemetry registry snapshot into the
// archive digest: per-connection histograms merged by instrument with the
// rollup percentiles extracted at write time. The skip count reports
// histograms dropped for mismatched bucket bounds.
func DigestSnapshot(s *telemetry.Snapshot) (map[string]HistDigest, int) {
	merged, skipped := s.HistogramDigest()
	if len(merged) == 0 {
		return nil, skipped
	}
	out := make(map[string]HistDigest, len(merged))
	for name, h := range merged {
		if h.Count == 0 {
			// Empty histograms carry ±Inf min/max sentinels, which JSON
			// cannot encode — and say nothing worth archiving.
			continue
		}
		out[name] = HistDigest{
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
			Bounds: h.Bounds, Counts: h.Counts,
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		}
	}
	if len(out) == 0 {
		return nil, skipped
	}
	return out, skipped
}

// Snapshot re-expresses the digest as a telemetry snapshot for merging
// across points (rollups).
func (d HistDigest) Snapshot() telemetry.HistogramSnapshot {
	return telemetry.HistogramSnapshot{Count: d.Count, Sum: d.Sum, Min: d.Min, Max: d.Max,
		Bounds: d.Bounds, Counts: d.Counts}
}
