package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer guards a builder against the ticker goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestProgressLifecycle(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, time.Millisecond)
	p.BeginExperiment("fig2", 3)
	// Resumed point: Done without a preceding Start must not panic and must
	// still count.
	p.PointDone(0, 0, 500, false)
	p.PointStart(1, 1, "cellB")
	p.PointDone(1, 1, 1000, false)
	p.PointStart(0, 2, "cellC")
	p.PointDone(0, 2, 0, true)
	time.Sleep(5 * time.Millisecond) // let the ticker render at least once
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "progress: fig2 done 3/3 (1 failed)") {
		t.Fatalf("summary missing:\n%q", out)
	}
}

func TestProgressConcurrent(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, time.Millisecond)
	p.BeginExperiment("fig2", 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 64; i += 8 {
				p.PointStart(w, i, "pt")
				p.PointDone(w, i, 100, false)
			}
		}(w)
	}
	wg.Wait()
	p.Stop()
	if !strings.Contains(buf.String(), "done 64/64") {
		t.Fatalf("output:\n%q", buf.String())
	}
}
