package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer guards a builder against the ticker goroutine.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestProgressLifecycle(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, time.Millisecond)
	p.BeginExperiment("fig2", 3)
	// Resumed point: Done without a preceding Start must not panic and must
	// still count.
	p.PointDone(0, 0, 500, false)
	p.PointStart(1, 1, "cellB")
	p.PointDone(1, 1, 1000, false)
	p.PointStart(0, 2, "cellC")
	p.PointDone(0, 2, 0, true)
	time.Sleep(5 * time.Millisecond) // let the ticker render at least once
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "progress: fig2 done 3/3 (1 failed)") {
		t.Fatalf("summary missing:\n%q", out)
	}
}

// TestProgressReplayedPointsExcludedFromRate pins the journal-resume fix:
// PointDone without a prior PointStart (a replayed checkpoint) must not feed
// the events/sec numerator — those events were executed by the original run,
// and counting them against this process's wall clock inflates the live rate.
func TestProgressReplayedPointsExcludedFromRate(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, time.Hour) // ticker never fires; we inspect state
	defer p.Stop()
	p.BeginExperiment("fig2", 4)

	// Two replayed points with huge event counts: done advances, rate does not.
	p.PointDone(0, 0, 1_000_000, false)
	p.PointDone(0, 1, 2_000_000, false)
	p.mu.Lock()
	if p.events != 0 {
		p.mu.Unlock()
		t.Fatalf("replayed points leaked %d events into the rate", p.events)
	}
	if p.done != 2 {
		p.mu.Unlock()
		t.Fatalf("done = %d, want 2", p.done)
	}
	p.mu.Unlock()

	// A live point (Start then Done) must count fully.
	p.PointStart(1, 2, "cellC")
	p.PointDone(1, 2, 750, false)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.events != 750 {
		t.Fatalf("live point events = %d, want 750", p.events)
	}
	if n := p.perPoint.N(); n != 1 {
		t.Fatalf("perPoint samples = %d, want 1 (replayed points must not feed the ETA)", n)
	}
}

func TestProgressConcurrent(t *testing.T) {
	var buf syncBuffer
	p := NewProgress(&buf, time.Millisecond)
	p.BeginExperiment("fig2", 64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 64; i += 8 {
				p.PointStart(w, i, "pt")
				p.PointDone(w, i, 100, false)
			}
		}(w)
	}
	wg.Wait()
	p.Stop()
	if !strings.Contains(buf.String(), "done 64/64") {
		t.Fatalf("output:\n%q", buf.String())
	}
}
