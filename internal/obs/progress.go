// Live progress for long grid runs: a wall-clock stderr ticker showing each
// worker's current point, completed/failed counts, cumulative simulator
// events/sec, and an ETA from an online per-point-duration estimate. The
// reporter lives entirely on the wall-clock side of the house — it observes
// the virtual-time simulation but never feeds back into it, so enabling it
// cannot perturb results (the golden-trace and j1-vs-j8 tests pin that).
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"mobbr/internal/stats"
)

// Progress implements the repro.Observer contract (structurally — the
// interface lives in repro to keep the import direction obs→repro-free).
// All methods are safe for concurrent use by pool workers. The zero value
// is not usable; construct with NewProgress and always call Stop.
type Progress struct {
	mu      sync.Mutex
	w       io.Writer
	exp     string
	total   int
	done    int
	failed  int
	events  uint64
	started time.Time
	// perPoint estimates completion wall time per point online, so the ETA
	// tightens as the run proceeds.
	perPoint stats.Online
	starts   map[int]time.Time // point index → wall start
	current  map[int]string    // worker → label of in-flight point
	stop     chan struct{}
	stopped  chan struct{}
	lastLen  int
}

// NewProgress starts a reporter writing to w (normally os.Stderr) every
// interval (0 means 500ms). Call Stop when the run finishes to clear the
// ticker line and release the goroutine.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	p := &Progress{
		w:       w,
		started: time.Now(),
		starts:  map[int]time.Time{},
		current: map[int]string{},
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	go p.loop(interval)
	return p
}

// BeginExperiment resets the counters for a new experiment grid.
func (p *Progress) BeginExperiment(id string, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.exp = id
	p.total = total
	p.done, p.failed, p.events = 0, 0, 0
	p.started = time.Now()
	p.perPoint = stats.Online{}
	p.starts = map[int]time.Time{}
	p.current = map[int]string{}
}

// PointStart records that worker picked up grid point index.
func (p *Progress) PointStart(worker, index int, label string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.starts[index] = time.Now()
	p.current[worker] = label
}

// PointDone records completion of grid point index. Points restored from a
// resume journal arrive as Done without a preceding Start; they count
// toward done/failed but neither toward the per-point duration estimate nor
// the events/sec rate — their events were executed by the original run, so
// folding them in would inflate the live rate (and thereby the ETA's
// denominator) by work this process never did.
func (p *Progress) PointDone(worker, index int, events uint64, failed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if failed {
		p.failed++
	}
	if t0, ok := p.starts[index]; ok {
		p.events += events
		p.perPoint.Add(time.Since(t0).Seconds())
		delete(p.starts, index)
	}
	delete(p.current, worker)
}

// Stop halts the ticker, clears the status line, and prints a final
// one-line summary.
func (p *Progress) Stop() {
	close(p.stop)
	<-p.stopped
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clearLocked()
	fmt.Fprintf(p.w, "progress: %s done %d/%d (%d failed) in %s\n",
		p.exp, p.done, p.total, p.failed, time.Since(p.started).Round(100*time.Millisecond))
}

func (p *Progress) loop(interval time.Duration) {
	defer close(p.stopped)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.render()
		}
	}
}

func (p *Progress) clearLocked() {
	if p.lastLen > 0 {
		fmt.Fprintf(p.w, "\r%s\r", strings.Repeat(" ", p.lastLen))
		p.lastLen = 0
	}
}

func (p *Progress) render() {
	p.mu.Lock()
	defer p.mu.Unlock()
	elapsed := time.Since(p.started).Seconds()
	var b strings.Builder
	fmt.Fprintf(&b, "%s %d/%d", p.exp, p.done, p.total)
	if p.failed > 0 {
		fmt.Fprintf(&b, " (%d failed)", p.failed)
	}
	if elapsed > 0 && p.events > 0 {
		fmt.Fprintf(&b, " %.1fM ev/s", float64(p.events)/elapsed/1e6)
	}
	if eta, ok := p.etaLocked(); ok {
		fmt.Fprintf(&b, " eta %s", eta.Round(time.Second))
	}
	workers := make([]int, 0, len(p.current))
	for wkr := range p.current {
		workers = append(workers, wkr)
	}
	sort.Ints(workers)
	for _, wkr := range workers {
		fmt.Fprintf(&b, " [w%d %s]", wkr, p.current[wkr])
	}
	line := b.String()
	pad := ""
	if n := p.lastLen - len([]rune(line)); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(p.w, "\r%s%s", line, pad)
	p.lastLen = len([]rune(line))
}

// etaLocked estimates remaining wall time: mean per-point duration times
// remaining points, divided by the current in-flight width (completed
// points stream through all workers roughly evenly).
func (p *Progress) etaLocked() (time.Duration, bool) {
	if p.perPoint.N() == 0 || p.total <= p.done {
		return 0, false
	}
	width := len(p.current)
	if width == 0 {
		width = 1
	}
	sec := p.perPoint.Mean() * float64(p.total-p.done) / float64(width)
	return time.Duration(sec * float64(time.Second)), true
}
