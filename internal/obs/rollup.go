// Cross-run aggregation: fold a run archive's grid points into per-cell
// (device×CPU×CC×network) rollups — the fleet-shaped view the paper's
// claims are actually about. Percentiles come from two places: point-level
// goodput distributions across each cell (p50/p90/p99 over grid points),
// and instrument-level histogram digests merged across the cell's points
// (e.g. the pacing-timer slip p99 for "Low-End bbr" as a cohort).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mobbr/internal/stats"
	"mobbr/internal/telemetry"
)

// Cell is the rollup cohort key. Fields hold the spec-codec tokens
// ("pixel4", "low", "bbr", "ethernet"); empty fields render as "-".
type Cell struct {
	Device  string `json:"device"`
	CPU     string `json:"cpu"`
	CC      string `json:"cc"`
	Network string `json:"network"`
}

// String renders the cell as device/cpu/cc/network.
func (c Cell) String() string {
	f := func(s string) string {
		if s == "" {
			return "-"
		}
		return s
	}
	return f(c.Device) + "/" + f(c.CPU) + "/" + f(c.CC) + "/" + f(c.Network)
}

// cellSpec is the loose view of a spec-codec document the rollup needs —
// the tokens are already strings in core.EncodeSpec's wire form, so no
// dependency on internal/core is required here.
type cellSpec struct {
	Device  string `json:"device"`
	CPU     string `json:"cpu"`
	CC      string `json:"cc"`
	Network string `json:"network"`
}

// CellOf extracts the cohort key from a point's archived spec. Points
// without a spec (or with an unparsable one) land in the zero Cell.
func CellOf(spec json.RawMessage) Cell {
	if len(spec) == 0 {
		return Cell{}
	}
	var s cellSpec
	if err := json.Unmarshal(spec, &s); err != nil {
		return Cell{}
	}
	return Cell{Device: s.Device, CPU: s.CPU, CC: s.CC, Network: s.Network}
}

// CellRollup aggregates one cell's grid points.
type CellRollup struct {
	Cell   Cell
	Points int
	Failed int
	// Goodputs / Retx / RTTs / Paces hold the per-point values (successful
	// points only), for percentile extraction.
	Goodputs []float64
	Retx     []float64
	RTTs     []float64
	// Paces holds pacing-timer shares of profiled points only.
	Paces []float64
	// LatP99s / Rebufs hold per-point request-latency p99s (ms) and
	// rebuffer shares (%) of app-workload points only.
	LatP99s []float64
	Rebufs  []float64
	// FCT99s / FastShares hold per-point flow-completion-time p99s (ms)
	// and flow-table fast-path shares of flow-churn points only.
	FCT99s     []float64
	FastShares []float64
	// GoodputCIs mirrors Goodputs with each point's own 95% CI.
	GoodputCIs []float64
	// Digest is the cell-wide merge of the points' instrument digests.
	Digest map[string]telemetry.HistogramSnapshot
	// DigestSkipped counts histograms that could not merge into the cell
	// digest because of mismatched bucket bounds.
	DigestSkipped int
}

// GoodputP returns the p-th percentile of the cell's point goodputs.
func (c *CellRollup) GoodputP(p float64) float64 { return stats.Percentile(c.Goodputs, p) }

// Rollup folds a run's points into sorted per-cell rollups.
func Rollup(r *Run) []CellRollup {
	byCell := map[Cell]*CellRollup{}
	var order []Cell
	for _, p := range r.Points {
		cell := CellOf(p.Spec)
		cr, ok := byCell[cell]
		if !ok {
			cr = &CellRollup{Cell: cell, Digest: map[string]telemetry.HistogramSnapshot{}}
			byCell[cell] = cr
			order = append(order, cell)
		}
		cr.Points++
		if p.Failure != nil {
			cr.Failed++
			continue
		}
		cr.Goodputs = append(cr.Goodputs, p.Metrics.GoodputMbps)
		cr.GoodputCIs = append(cr.GoodputCIs, p.Metrics.GoodputCI)
		cr.Retx = append(cr.Retx, p.Metrics.Retransmits)
		cr.RTTs = append(cr.RTTs, p.Metrics.RTTms)
		if p.Metrics.Profiled {
			cr.Paces = append(cr.Paces, p.Metrics.PacingShare)
		}
		if p.Metrics.AppKind != "" {
			cr.LatP99s = append(cr.LatP99s, p.Metrics.LatP99ms)
			cr.Rebufs = append(cr.Rebufs, p.Metrics.RebufferPct)
		}
		if p.Metrics.FlowsStarted > 0 {
			cr.FCT99s = append(cr.FCT99s, p.Metrics.FCTP99ms)
			cr.FastShares = append(cr.FastShares, p.Metrics.FastPathShare)
		}
		cr.DigestSkipped += p.DigestSkipped
		digestNames := make([]string, 0, len(p.Digest))
		for name := range p.Digest {
			digestNames = append(digestNames, name)
		}
		sort.Strings(digestNames)
		for _, name := range digestNames {
			merged, err := telemetry.MergeHistogramSnapshots(cr.Digest[name], p.Digest[name].Snapshot())
			if err != nil {
				cr.DigestSkipped++
				continue
			}
			cr.Digest[name] = merged
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].String() < order[j].String() })
	out := make([]CellRollup, len(order))
	for i, cell := range order {
		out[i] = *byCell[cell]
	}
	return out
}

// WriteRollup renders the per-cell summary table: goodput percentiles
// across the cell's grid points, mean retransmissions, mean pacing share
// (profiled points only), and — when digests are present — the merged
// pacing-timer slip p99. Cells holding app-workload points additionally
// render the mean request-latency p99 and rebuffer share; cells holding
// flow-churn points the mean FCT p99 and flow-table fast-path share.
func WriteRollup(w io.Writer, r *Run, cells []CellRollup) error {
	if _, err := fmt.Fprintf(w, "== rollup %s: %d points, %d cells (seeds=%d dur=%s)\n",
		r.Manifest.Exp, r.Manifest.Points, len(cells), r.Manifest.Seeds, r.Manifest.Dur); err != nil {
		return err
	}
	hasDigest := false
	hasApp := false
	hasFlows := false
	for i := range cells {
		if len(cells[i].Digest) > 0 {
			hasDigest = true
		}
		if len(cells[i].LatP99s) > 0 {
			hasApp = true
		}
		if len(cells[i].FCT99s) > 0 {
			hasFlows = true
		}
	}
	fmt.Fprintf(w, "%-32s %4s %4s %9s %9s %9s %9s %7s", "cell", "pts", "fail",
		"gput p50", "p90", "p99", "retx", "pace%")
	if hasDigest {
		fmt.Fprintf(w, " %12s", "slip p99 µs")
	}
	if hasApp {
		fmt.Fprintf(w, " %10s %6s", "req p99 ms", "rbuf%")
	}
	if hasFlows {
		fmt.Fprintf(w, " %10s %6s", "fct p99 ms", "fast%")
	}
	fmt.Fprintln(w)
	for i := range cells {
		c := &cells[i]
		pace := "-"
		if len(c.Paces) > 0 {
			pace = fmt.Sprintf("%.1f", stats.Mean(c.Paces)*100)
		}
		fmt.Fprintf(w, "%-32s %4d %4d %9.1f %9.1f %9.1f %9.0f %7s",
			c.Cell, c.Points, c.Failed,
			c.GoodputP(50), c.GoodputP(90), c.GoodputP(99),
			stats.Mean(c.Retx), pace)
		if hasDigest {
			slip := "-"
			if h, ok := c.Digest["pacing_timer_slip_us"]; ok && h.Count > 0 {
				slip = fmt.Sprintf("%.0f", h.Quantile(0.99))
			}
			fmt.Fprintf(w, " %12s", slip)
		}
		if hasApp {
			lat, rbuf := "-", "-"
			if len(c.LatP99s) > 0 {
				lat = fmt.Sprintf("%.1f", stats.Mean(c.LatP99s))
				rbuf = fmt.Sprintf("%.2f", stats.Mean(c.Rebufs))
			}
			fmt.Fprintf(w, " %10s %6s", lat, rbuf)
		}
		if hasFlows {
			fct, fast := "-", "-"
			if len(c.FCT99s) > 0 {
				fct = fmt.Sprintf("%.1f", stats.Mean(c.FCT99s))
				fast = fmt.Sprintf("%.1f", stats.Mean(c.FastShares)*100)
			}
			fmt.Fprintf(w, " %10s %6s", fct, fast)
		}
		if c.DigestSkipped > 0 {
			fmt.Fprintf(w, "  (%d digest histograms skipped: mismatched bounds)", c.DigestSkipped)
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}
