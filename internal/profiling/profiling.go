// Package profiling wires Go's runtime/pprof into the CLIs: both mobbr and
// mobbr-repro take -cpuprofile/-memprofile flags so hot paths found in
// production grids can be pinned down with `go tool pprof` without
// rebuilding anything.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling and/or arms a heap snapshot, per the flag
// values (empty path = disabled). The returned stop function must run after
// the workload — typically via defer — to flush the CPU profile and write
// the heap profile; it is never nil.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
	}, nil
}
