// Package pacing implements TCP's internal packet pacing as the paper's §6.1
// describes it: after each socket-buffer (skb) transmission the connection
// idles for idleTime = skbLen/pacingRate (Eq. 1), enforced by a timer whose
// expiry re-schedules the socket — the per-event overhead that throttles
// low-end phones. The paper's contribution, the pacing stride (Eq. 2),
// scales idleTime by a constant so the sender paces less often but moves
// stride× more data per event.
//
// skb sizing follows tcp_tso_autosize: aim for about 1 ms of data at the
// current pacing rate, never less than MinTSOSegs segments, never more than
// MaxSKB bytes (the socket-buffer/TSQ ceiling that Table 2 of the paper
// shows the stride saturating against).
package pacing

import (
	"time"

	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

// Default sizing constants.
const (
	// DefaultAutosizeTarget is how much data TSO autosizing aims to put
	// in one skb, expressed as time at the pacing rate (~1 ms, the
	// kernel's rate >> 10 heuristic).
	DefaultAutosizeTarget = time.Millisecond
	// DefaultMinTSOSegs matches sysctl tcp_min_tso_segs.
	DefaultMinTSOSegs = 2
	// DefaultMaxSKB is the per-send ceiling: the kernel's 64 KB GSO
	// limit. The ≈15 KB skb plateau the paper's Table 2 measures at 20
	// connections is not this ceiling — it emerges from the small
	// per-connection congestion windows (2×BDP of a ~30 Mbps share),
	// which bound how many segments one send may carry.
	DefaultMaxSKB = 64 * units.KB
)

// Config parameterizes a connection's pacer.
type Config struct {
	// Enabled turns internal pacing on. BBR/BBRv2 require it; Cubic runs
	// unpaced unless the experiment forces it (paper §5.2.2).
	Enabled bool
	// Stride is the paper's pacing stride (Eq. 2); values < 1 are
	// treated as 1 (stock kernel behaviour).
	Stride float64
	// FixedRate, when nonzero, overrides the connection's pacing rate —
	// the master-module knob from §5.1.2.
	FixedRate units.Bandwidth
	// HardwareOffload models the fine-grained NIC pacing the BBR authors
	// suggest (§7.1.4): the inter-skb gaps are still enforced, but the
	// per-event hrtimer/tasklet work leaves the CPU entirely.
	HardwareOffload bool
	// AutosizeTarget overrides the TSO autosize goal (default 1 ms).
	AutosizeTarget time.Duration
	// MinTSOSegs overrides the minimum segments per skb (default 2).
	MinTSOSegs int
	// MaxSKB overrides the per-skb byte ceiling (default 15 KB).
	MaxSKB units.DataSize
}

func (c Config) withDefaults() Config {
	if c.Stride < 1 {
		c.Stride = 1
	}
	if c.AutosizeTarget <= 0 {
		c.AutosizeTarget = DefaultAutosizeTarget
	}
	if c.MinTSOSegs <= 0 {
		c.MinTSOSegs = DefaultMinTSOSegs
	}
	if c.MaxSKB <= 0 {
		c.MaxSKB = DefaultMaxSKB
	}
	return c
}

// Pacer tracks one connection's pacing schedule. It is pure bookkeeping:
// the transport asks when it may send and reports what it sent; the
// transport owns the actual timers and CPU charging.
type Pacer struct {
	cfg Config

	// nextSendAt is when the pacing gate reopens.
	nextSendAt time.Duration

	// Sampled statistics for the paper's Table 2.
	periods   uint64
	sumSKB    float64
	sumIdle   time.Duration
	lastIdle  time.Duration
	timerArms uint64

	// Telemetry instruments (nil = disabled, the default).
	skbHist *telemetry.Histogram
	gapHist *telemetry.Histogram
}

// New returns a pacer with cfg (zero fields take defaults).
func New(cfg Config) *Pacer {
	return &Pacer{cfg: cfg.withDefaults()}
}

// Config returns the pacer's effective configuration.
func (p *Pacer) Config() Config { return p.cfg }

// Reset re-initializes the pacer in place for a recycled connection's next
// flow: configuration is replaced, all sampled state clears, and any
// attached instruments carry over.
func (p *Pacer) Reset(cfg Config) {
	*p = Pacer{cfg: cfg.withDefaults(), skbHist: p.skbHist, gapHist: p.gapHist}
}

// SetInstruments attaches telemetry histograms: skb observes bytes per send
// (the send quantum), gap observes the pacing idle time in ms. nil
// instruments no-op, so the hot path pays only nil-checks when disabled.
func (p *Pacer) SetInstruments(skb, gap *telemetry.Histogram) {
	p.skbHist, p.gapHist = skb, gap
}

// Enabled reports whether pacing is on.
func (p *Pacer) Enabled() bool { return p.cfg.Enabled }

// Rate resolves the pacing rate to enforce: the fixed override if set,
// otherwise the connection-supplied rate.
func (p *Pacer) Rate(connRate units.Bandwidth) units.Bandwidth {
	if p.cfg.FixedRate > 0 {
		return p.cfg.FixedRate
	}
	return connRate
}

// SKBSegs returns the number of MSS segments for one skb. With pacing
// enabled the size is TSO-autosized to ~1 ms at the pacing rate; with
// pacing disabled the sender bursts up to the GSO limit (cwnd and backlog
// cap it at the transport layer), which is what "effectively bursted
// through the network" means in the paper's §5.2.1.
func (p *Pacer) SKBSegs(rate units.Bandwidth, mss units.DataSize) int {
	maxSegs := int(p.cfg.MaxSKB / mss)
	if maxSegs < p.cfg.MinTSOSegs {
		maxSegs = p.cfg.MinTSOSegs
	}
	if !p.cfg.Enabled || rate <= 0 {
		return maxSegs
	}
	target := rate.BytesIn(p.cfg.AutosizeTarget)
	segs := int(target / mss)
	if segs < p.cfg.MinTSOSegs {
		segs = p.cfg.MinTSOSegs
	}
	if segs > maxSegs {
		segs = maxSegs
	}
	return segs
}

// CanSendAt reports whether the pacing gate is open at now, and if not, how
// long until it opens.
func (p *Pacer) CanSendAt(now time.Duration) (bool, time.Duration) {
	if !p.cfg.Enabled || now >= p.nextSendAt {
		return true, 0
	}
	return false, p.nextSendAt - now
}

// OnSKBSent records a transmission of skbBytes at rate finishing at now and
// computes the idle time before the next send: Eq. 1 scaled by the stride
// (Eq. 2). It returns the idle duration (0 when pacing is disabled or the
// rate is unknown).
func (p *Pacer) OnSKBSent(now time.Duration, skbBytes units.DataSize, rate units.Bandwidth) time.Duration {
	p.periods++
	p.sumSKB += float64(skbBytes)
	p.skbHist.Observe(float64(skbBytes))
	if !p.cfg.Enabled || rate <= 0 {
		return 0
	}
	idle := time.Duration(float64(rate.TimeToSend(skbBytes)) * p.cfg.Stride)
	p.nextSendAt = now + idle
	p.sumIdle += idle
	p.lastIdle = idle
	p.gapHist.Observe(float64(idle) / 1e6)
	return idle
}

// TimerArmed records that the transport armed a pacing timer (one future
// OpPacingTimer CPU charge).
func (p *Pacer) TimerArmed() { p.timerArms++ }

// Stats returns the per-pacing-period averages the paper's Table 2 reports.
type Stats struct {
	// Periods is the number of skb sends observed.
	Periods uint64
	// AvgSKB is the mean socket-buffer length per period.
	AvgSKB units.DataSize
	// AvgIdle is the mean pacing idle time per period.
	AvgIdle time.Duration
	// TimerArms counts pacing-timer activations.
	TimerArms uint64
}

// Stats returns a snapshot of the sampled pacing behaviour.
func (p *Pacer) Stats() Stats {
	s := Stats{Periods: p.periods, TimerArms: p.timerArms}
	if p.periods > 0 {
		s.AvgSKB = units.DataSize(p.sumSKB / float64(p.periods))
		s.AvgIdle = time.Duration(float64(p.sumIdle) / float64(p.periods))
	}
	return s
}
