package pacing

import (
	"testing"
	"testing/quick"
	"time"

	"mobbr/internal/seg"
	"mobbr/internal/units"
)

func TestConfigDefaults(t *testing.T) {
	p := New(Config{Enabled: true})
	cfg := p.Config()
	if cfg.Stride != 1 {
		t.Errorf("default stride = %v, want 1", cfg.Stride)
	}
	if cfg.AutosizeTarget != time.Millisecond {
		t.Errorf("default autosize target = %v, want 1ms", cfg.AutosizeTarget)
	}
	if cfg.MinTSOSegs != 2 {
		t.Errorf("default min segs = %d, want 2", cfg.MinTSOSegs)
	}
	if cfg.MaxSKB != 64*units.KB {
		t.Errorf("default max skb = %v, want 64KB (GSO limit)", cfg.MaxSKB)
	}
}

func TestSKBSegsAutosize(t *testing.T) {
	p := New(Config{Enabled: true})
	tests := []struct {
		rate units.Bandwidth
		want int
	}{
		// 1ms of data at the rate, in 1460-byte segments.
		{100 * units.Mbps, 8}, // 12.5KB/ms → 8 segs
		{36 * units.Mbps, 3},  // 4.5KB/ms → 3 segs
		{10 * units.Mbps, 2},  // 1.25KB < 2 MSS floor
		{units.Mbps, 2},       // floor
		{units.Gbps, 44},      // 125KB/ms capped at 64KB GSO = 44 segs
		{0, 44},               // unknown rate → max burst
	}
	for _, tt := range tests {
		if got := p.SKBSegs(tt.rate, seg.MSS); got != tt.want {
			t.Errorf("SKBSegs(%v) = %d, want %d", tt.rate, got, tt.want)
		}
	}
}

func TestSKBSegsBoundsProperty(t *testing.T) {
	p := New(Config{Enabled: true})
	f := func(mbit uint16) bool {
		rate := units.Bandwidth(mbit) * units.Mbps
		got := p.SKBSegs(rate, seg.MSS)
		return got >= 2 && got <= int(64*units.KB/seg.MSS)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIdleTimeEq1(t *testing.T) {
	p := New(Config{Enabled: true})
	// 4 segments at 36.5 Mbps: idle = skb/rate (Eq. 1 of the paper).
	skb := 4 * seg.MSS
	rate := units.Bandwidth(36.5 * float64(units.Mbps))
	idle := p.OnSKBSent(0, skb, rate)
	want := rate.TimeToSend(skb)
	if idle != want {
		t.Errorf("idle = %v, want %v", idle, want)
	}
	ok, wait := p.CanSendAt(0)
	if ok {
		t.Fatal("gate should be closed immediately after a send")
	}
	if wait != idle {
		t.Errorf("wait = %v, want %v", wait, idle)
	}
	if ok, _ := p.CanSendAt(idle); !ok {
		t.Error("gate should reopen at nextSendAt")
	}
}

func TestIdleTimeStrideEq2(t *testing.T) {
	base := New(Config{Enabled: true, Stride: 1})
	strided := New(Config{Enabled: true, Stride: 5})
	skb := 4 * seg.MSS
	rate := 50 * units.Mbps
	i1 := base.OnSKBSent(0, skb, rate)
	i5 := strided.OnSKBSent(0, skb, rate)
	if want := 5 * i1; i5 != want {
		t.Errorf("stride-5 idle = %v, want %v (5× Eq. 1)", i5, want)
	}
}

func TestDisabledPacerNeverBlocks(t *testing.T) {
	p := New(Config{Enabled: false})
	p.OnSKBSent(0, 64*units.KB, units.Mbps)
	if ok, wait := p.CanSendAt(0); !ok || wait != 0 {
		t.Errorf("disabled pacer blocked: ok=%v wait=%v", ok, wait)
	}
	if idle := p.OnSKBSent(0, 64*units.KB, units.Mbps); idle != 0 {
		t.Errorf("disabled pacer returned idle %v, want 0", idle)
	}
}

func TestFixedRateOverride(t *testing.T) {
	p := New(Config{Enabled: true, FixedRate: 140 * units.Mbps})
	if got := p.Rate(20 * units.Mbps); got != 140*units.Mbps {
		t.Errorf("Rate with override = %v, want 140Mbps", got)
	}
	p2 := New(Config{Enabled: true})
	if got := p2.Rate(20 * units.Mbps); got != 20*units.Mbps {
		t.Errorf("Rate without override = %v, want 20Mbps", got)
	}
}

func TestZeroRateSendDoesNotBlock(t *testing.T) {
	p := New(Config{Enabled: true})
	if idle := p.OnSKBSent(0, 4*seg.MSS, 0); idle != 0 {
		t.Errorf("unknown rate idle = %v, want 0", idle)
	}
	if ok, _ := p.CanSendAt(0); !ok {
		t.Error("gate should stay open with unknown rate")
	}
}

func TestStatsAveraging(t *testing.T) {
	p := New(Config{Enabled: true})
	rate := 100 * units.Mbps
	p.OnSKBSent(0, 2*seg.MSS, rate)
	p.OnSKBSent(time.Millisecond, 4*seg.MSS, rate)
	p.TimerArmed()
	s := p.Stats()
	if s.Periods != 2 {
		t.Fatalf("periods = %d, want 2", s.Periods)
	}
	if s.AvgSKB != 3*seg.MSS {
		t.Errorf("avg skb = %v, want %v", s.AvgSKB, 3*seg.MSS)
	}
	wantIdle := (rate.TimeToSend(2*seg.MSS) + rate.TimeToSend(4*seg.MSS)) / 2
	if s.AvgIdle != wantIdle {
		t.Errorf("avg idle = %v, want %v", s.AvgIdle, wantIdle)
	}
	if s.TimerArms != 1 {
		t.Errorf("timer arms = %d, want 1", s.TimerArms)
	}
}

func TestStatsEmpty(t *testing.T) {
	p := New(Config{Enabled: true})
	s := p.Stats()
	if s.AvgSKB != 0 || s.AvgIdle != 0 || s.Periods != 0 {
		t.Errorf("empty stats = %+v, want zeros", s)
	}
}

// Property: idle time scales linearly with both skb length and stride.
func TestIdleScalingProperty(t *testing.T) {
	f := func(segs uint8, strideX uint8) bool {
		n := int(segs%9) + 1
		stride := float64(strideX%50) + 1
		rate := 100 * units.Mbps
		p := New(Config{Enabled: true, Stride: stride})
		idle := p.OnSKBSent(0, units.DataSize(n)*seg.MSS, rate)
		want := time.Duration(float64(rate.TimeToSend(units.DataSize(n)*seg.MSS)) * stride)
		diff := idle - want
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Microsecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
