// Package apps runs application workloads over the simulated stack via
// the simnet net.Conn facade: a closed-loop request/response workload
// (per-request latency histograms) and a chunked live-streaming upload
// (bitrate ladder, remote playout buffer, rebuffer accounting). Both ride
// the shared iperf harness — staggered starts, sampling, warmup, pooled
// reclaim — so the paper's bulk upload becomes one workload among three,
// and the pacing-stride sensitivity finally shows up in application
// metrics (request p99, rebuffer ratio) instead of only goodput.
package apps

import (
	"fmt"
	"sort"
	"time"

	"mobbr/internal/stats"
	"mobbr/internal/units"
)

// Workload kinds. The empty kind is the iperf bulk upload (no apps layer).
const (
	// KindReqRep is the closed-loop request/response workload: each
	// client uploads ReqSize, waits for a RespSize response, thinks, and
	// repeats. Latency is write-start to response-read.
	KindReqRep = "reqrep"
	// KindStream is the chunked live-streaming upload: a new chunk is
	// captured every Chunk, encoded at a ladder bitrate chosen by a
	// throughput-EWMA ABR, uploaded in order, and acknowledged; a remote
	// viewer model plays the stream out and accounts stalls. Latency is
	// capture to acknowledged delivery.
	KindStream = "stream"
)

// Workload parameterizes one application workload (core.Spec.Workload).
// The zero value (empty Kind) means the plain iperf bulk upload.
type Workload struct {
	// Kind selects the workload: "", KindReqRep or KindStream.
	Kind string
	// ReqSize / RespSize / Think parameterize KindReqRep. RespSize also
	// sizes KindStream's per-chunk acknowledgement.
	ReqSize  units.DataSize
	RespSize units.DataSize
	Think    time.Duration
	// Chunk / Ladder / Startup parameterize KindStream: chunk duration,
	// ascending bitrate ladder, and how many chunks the viewer buffers
	// before playout starts.
	Chunk   time.Duration
	Ladder  []units.Bandwidth
	Startup int
	// DownRate serializes the modelled response direction (0 = pure
	// delay). The heavy direction is always the simulated uplink.
	DownRate units.Bandwidth
}

// DefaultLadder is the KindStream bitrate ladder used when none is given:
// a typical live-upload encode ladder from 1.5 to 24 Mbps.
func DefaultLadder() []units.Bandwidth {
	return []units.Bandwidth{
		1500 * units.Kbps, 3 * units.Mbps, 6 * units.Mbps,
		12 * units.Mbps, 24 * units.Mbps,
	}
}

// WithDefaults fills zero fields per kind.
func (w Workload) WithDefaults() Workload {
	switch w.Kind {
	case KindReqRep:
		if w.ReqSize <= 0 {
			w.ReqSize = 256 * units.KB
		}
		if w.RespSize <= 0 {
			w.RespSize = 4 * units.KB
		}
	case KindStream:
		if w.Chunk <= 0 {
			w.Chunk = 120 * time.Millisecond
		}
		if len(w.Ladder) == 0 {
			w.Ladder = DefaultLadder()
		}
		if w.Startup <= 0 {
			w.Startup = 2
		}
		if w.RespSize <= 0 {
			w.RespSize = 128
		}
	}
	return w
}

// Validate rejects malformed workloads.
func (w Workload) Validate() error {
	switch w.Kind {
	case "", KindReqRep, KindStream:
	default:
		return fmt.Errorf("apps: unknown workload kind %q", w.Kind)
	}
	if w.ReqSize < 0 || w.RespSize < 0 {
		return fmt.Errorf("apps: negative request/response size")
	}
	if w.Think < 0 {
		return fmt.Errorf("apps: negative think time %v", w.Think)
	}
	if w.Chunk < 0 {
		return fmt.Errorf("apps: negative chunk duration %v", w.Chunk)
	}
	if w.Startup < 0 {
		return fmt.Errorf("apps: negative startup threshold %d", w.Startup)
	}
	if w.DownRate < 0 {
		return fmt.Errorf("apps: negative down rate %v", w.DownRate)
	}
	var prev units.Bandwidth
	for i, r := range w.Ladder {
		if r <= 0 {
			return fmt.Errorf("apps: ladder rung %d is non-positive (%v)", i, r)
		}
		if r <= prev {
			return fmt.Errorf("apps: ladder must be strictly ascending (rung %d)", i)
		}
		prev = r
	}
	return nil
}

// Stats is the application-level outcome of one run, aggregated across
// the session's connections. All values derive from virtual time, so they
// are byte-deterministic per seed.
type Stats struct {
	// Kind echoes the workload kind.
	Kind string
	// Completed counts fully delivered operations: requests with their
	// response read (KindReqRep) or chunks acknowledged (KindStream).
	Completed int64
	// Canceled counts operations cut off by the run horizon or a
	// transport failure.
	Canceled int64
	// LatMs holds one latency sample per completed operation, in
	// milliseconds, sorted ascending: request write→response read
	// (KindReqRep) or chunk capture→acknowledged delivery (KindStream).
	LatMs []float64

	// KindStream only: viewer playout accounting across connections.
	Stalls        int64
	PlayMs        float64
	StallMs       float64
	RebufferRatio float64
	AvgLevelMbps  float64
	Switches      int64
}

// LatP returns the p-th percentile (0..100) operation latency in ms.
func (s *Stats) LatP(p float64) float64 { return stats.Percentile(s.LatMs, p) }

// merge folds o into s (multi-seed aggregation); LatMs is re-sorted.
func (s *Stats) merge(o *Stats) {
	if o == nil {
		return
	}
	if s.Kind == "" {
		s.Kind = o.Kind
	}
	s.Completed += o.Completed
	s.Canceled += o.Canceled
	s.LatMs = append(s.LatMs, o.LatMs...)
	s.Stalls += o.Stalls
	s.PlayMs += o.PlayMs
	s.StallMs += o.StallMs
	s.Switches += o.Switches
	sort.Float64s(s.LatMs)
	if t := s.PlayMs + s.StallMs; t > 0 {
		s.RebufferRatio = s.StallMs / t
	}
}

// Merge returns the fold of many per-seed stats (nil when all are nil).
func Merge(runs []*Stats) *Stats {
	var out *Stats
	var levelW float64 // completed-weighted mean of AvgLevelMbps
	for _, r := range runs {
		if r == nil {
			continue
		}
		if out == nil {
			out = &Stats{Kind: r.Kind}
		}
		levelW += r.AvgLevelMbps * float64(r.Completed)
		out.merge(r)
	}
	if out != nil && out.Completed > 0 {
		out.AvgLevelMbps = levelW / float64(out.Completed)
	}
	return out
}
