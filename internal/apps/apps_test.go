package apps

import (
	"reflect"
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cc/cubic"
	"mobbr/internal/cpumodel"
	"mobbr/internal/iperf"
	"mobbr/internal/netem"
	"mobbr/internal/sim"
	"mobbr/internal/units"
)

// runOnce executes one workload run on a rate-limited wired path.
func runOnce(t *testing.T, seed int64, wl Workload, conns int, dur time.Duration) (*iperf.Report, *Stats) {
	t.Helper()
	eng := sim.New(seed)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 5e9)
	path, err := netem.EthernetLAN(eng, netem.TC{Rate: 50 * units.Mbps, Delay: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("EthernetLAN: %v", err)
	}
	icfg := iperf.Config{
		Conns:    conns,
		Duration: dur,
		CC:       func() cc.CongestionControl { return cubic.New() },
	}
	s, err := New(eng, cpu, path, icfg, wl)
	if err != nil {
		t.Fatalf("apps.New: %v", err)
	}
	return s.Run()
}

func TestReqRepCompletes(t *testing.T) {
	rep, st := runOnce(t, 1, Workload{Kind: KindReqRep, Think: 5 * time.Millisecond}, 2, 2*time.Second)
	if st.Kind != KindReqRep {
		t.Fatalf("kind = %q", st.Kind)
	}
	if st.Completed == 0 {
		t.Fatalf("no requests completed")
	}
	if int64(len(st.LatMs)) != st.Completed {
		t.Fatalf("latency samples %d != completed %d", len(st.LatMs), st.Completed)
	}
	for i := 1; i < len(st.LatMs); i++ {
		if st.LatMs[i] < st.LatMs[i-1] {
			t.Fatalf("LatMs not sorted at %d", i)
		}
	}
	// Each request uploads 256KB over a 50Mbps / ~20ms-RTT path: latency
	// must be at least the serialization time plus one RTT (~60ms).
	if p50 := st.LatP(50); p50 < 40 {
		t.Errorf("p50 = %.1fms, implausibly low", p50)
	}
	if rep.Goodput <= 0 {
		t.Errorf("transport goodput = %v, want > 0", rep.Goodput)
	}
}

func TestStreamPlayout(t *testing.T) {
	_, st := runOnce(t, 1, Workload{Kind: KindStream}, 1, 3*time.Second)
	if st.Completed == 0 {
		t.Fatalf("no chunks delivered")
	}
	if st.RebufferRatio < 0 || st.RebufferRatio > 1 {
		t.Fatalf("rebuffer ratio %v out of [0,1]", st.RebufferRatio)
	}
	if st.PlayMs <= 0 {
		t.Errorf("viewer never played (playMs=%v stallMs=%v)", st.PlayMs, st.StallMs)
	}
	if st.AvgLevelMbps <= 0 {
		t.Errorf("avg ladder level = %v, want > 0", st.AvgLevelMbps)
	}
}

// TestDeterminism pins the tentpole's contract: two runs with the same
// seed produce identical transport reports and application stats, even
// though the workload runs on real goroutines.
func TestDeterminism(t *testing.T) {
	for _, wl := range []Workload{
		{Kind: KindReqRep, Think: 5 * time.Millisecond},
		{Kind: KindStream},
	} {
		r1, s1 := runOnce(t, 42, wl, 2, 1500*time.Millisecond)
		r2, s2 := runOnce(t, 42, wl, 2, 1500*time.Millisecond)
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: transport reports differ between identical seeded runs", wl.Kind)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: app stats differ between identical seeded runs", wl.Kind)
		}
	}
}

func TestViewerPlayout(t *testing.T) {
	v := &viewer{chunk: 100 * time.Millisecond, startup: 2}
	ms100 := 100 * time.Millisecond
	v.onChunk(1 * ms100) // buffered 1 chunk: not started
	if v.started {
		t.Fatalf("started before the startup threshold")
	}
	v.onChunk(2 * ms100) // second chunk: playout starts
	if !v.started || !v.playing {
		t.Fatalf("playout did not start at the startup threshold")
	}
	// Plays 200ms of buffer, then stalls 100ms with nothing delivered.
	v.advance(5 * ms100)
	if v.playMs != 200 || v.stallMs != 100 || v.stalls != 1 {
		t.Fatalf("play=%v stall=%v stalls=%d, want 200/100/1", v.playMs, v.stallMs, v.stalls)
	}
	// A chunk at 600ms ends the stall and resumes playout.
	v.onChunk(6 * ms100)
	if !v.playing || v.stallMs != 200 {
		t.Fatalf("resume failed: playing=%v stall=%v", v.playing, v.stallMs)
	}
	v.advance(7 * ms100)
	if v.playMs != 300 || v.buf != 0 {
		t.Fatalf("after resume: play=%v buf=%v, want 300/0", v.playMs, v.buf)
	}
}

func TestMerge(t *testing.T) {
	a := &Stats{Kind: KindStream, Completed: 2, LatMs: []float64{3, 1}, PlayMs: 80, StallMs: 20, AvgLevelMbps: 6}
	b := &Stats{Kind: KindStream, Completed: 2, LatMs: []float64{2}, Canceled: 1, PlayMs: 100, AvgLevelMbps: 12}
	m := Merge([]*Stats{a, nil, b})
	if m.Completed != 4 || m.Canceled != 1 {
		t.Fatalf("counts: %+v", m)
	}
	if !reflect.DeepEqual(m.LatMs, []float64{1, 2, 3}) {
		t.Fatalf("merged latencies not re-sorted: %v", m.LatMs)
	}
	if m.RebufferRatio != 0.1 {
		t.Fatalf("rebuffer ratio %v, want 0.1", m.RebufferRatio)
	}
	if m.AvgLevelMbps != 9 {
		t.Fatalf("avg level %v, want 9 (completed-weighted)", m.AvgLevelMbps)
	}
	if Merge([]*Stats{nil, nil}) != nil {
		t.Fatalf("Merge of all-nil runs should be nil")
	}
}

func TestValidate(t *testing.T) {
	bad := []Workload{
		{Kind: "ftp"},
		{Kind: KindReqRep, Think: -time.Second},
		{Kind: KindStream, Ladder: []units.Bandwidth{6 * units.Mbps, 3 * units.Mbps}},
		{Kind: KindStream, Ladder: []units.Bandwidth{0}},
	}
	for _, wl := range bad {
		if wl.Validate() == nil {
			t.Errorf("Validate(%+v) accepted a malformed workload", wl)
		}
	}
	if err := (Workload{Kind: KindReqRep}).WithDefaults().Validate(); err != nil {
		t.Errorf("default reqrep workload rejected: %v", err)
	}
	if err := (Workload{Kind: KindStream}).WithDefaults().Validate(); err != nil {
		t.Errorf("default stream workload rejected: %v", err)
	}
}
