package apps

import (
	"fmt"
	"net"
	"sort"
	"time"

	"mobbr/internal/cpumodel"
	"mobbr/internal/iperf"
	"mobbr/internal/netem"
	"mobbr/internal/sim"
	"mobbr/internal/simnet"
	"mobbr/internal/units"
)

// Session drives one application workload over an iperf harness session:
// every harness connection gets a (client, server) virtual-socket pair and
// a pair of simnet procs running the workload's closed loop.
type Session struct {
	eng *sim.Engine
	wl  Workload
	dur time.Duration
	is  *iperf.Session
	net *simnet.Net

	clis []*clientState
}

// clientState is one connection's application state. All fields are
// touched only under the simnet baton, so no locking is needed.
type clientState struct {
	cl, sv net.Conn

	// pending frames the byte stream: the client pushes each operation's
	// size before writing it, the server pops a frame once that many
	// bytes have been consumed and sends the response.
	pending []int64

	completed, canceled int64
	lat                 []float64 // ms per completed operation

	// KindStream only.
	v         *viewer
	levelBits float64 // Σ chosen ladder bitrate over completed chunks
	switches  int64
}

// New assembles a workload session. The iperf config is forced into
// stream-source mode; everything else (conns, duration, stagger, telemetry,
// pool) is honoured as for a bulk run.
func New(eng *sim.Engine, cpu *cpumodel.CPU, path *netem.Path, icfg iperf.Config, wl Workload) (*Session, error) {
	wl = wl.WithDefaults()
	if err := wl.Validate(); err != nil {
		return nil, err
	}
	if wl.Kind == "" {
		return nil, fmt.Errorf("apps: empty workload kind (run iperf directly)")
	}
	if icfg.Duration <= 0 {
		icfg.Duration = 10 * time.Second // match the iperf default
	}
	icfg.Stream = true
	is, err := iperf.New(eng, cpu, path, icfg)
	if err != nil {
		return nil, err
	}
	n := simnet.New(eng)
	pcfg := simnet.PairConfig{DownDelay: path.MinRTT() / 2, DownRate: wl.DownRate}
	s := &Session{eng: eng, wl: wl, dur: icfg.Duration, is: is, net: n}
	conns, rxs := is.Conns(), is.Receivers()
	for i := range conns {
		cl, sv := n.Wrap(conns[i], rxs[i], pcfg)
		st := &clientState{cl: cl, sv: sv}
		if wl.Kind == KindStream {
			st.v = &viewer{chunk: wl.Chunk, startup: wl.Startup}
		}
		s.clis = append(s.clis, st)
		// The client proc starts with its transport's staggered kick; the
		// server proc parks immediately on an empty receive stream.
		n.Go(conns[i].StartDelay(), func(p *simnet.Proc) { s.runClient(p, st) })
		n.Go(0, func(p *simnet.Proc) { s.runServer(p, st) })
	}
	return s, nil
}

// Iperf exposes the underlying harness session (the run checker watches
// its connections exactly as for a bulk run).
func (s *Session) Iperf() *iperf.Session { return s.is }

// Net exposes the virtual network (tests shut it down directly).
func (s *Session) Net() *simnet.Net { return s.net }

// Run executes the workload to the run horizon and returns the transport
// report plus the application stats. Procs still mid-operation at the
// horizon are unwound (counted as canceled) before the harness collects.
func (s *Session) Run() (*iperf.Report, *Stats) {
	s.is.Start()
	s.eng.Run(s.dur)
	s.net.Shutdown()
	rep := s.is.Finish()
	return rep, s.collect()
}

func (s *Session) runClient(p *simnet.Proc, st *clientState) {
	if s.wl.Kind == KindStream {
		s.runStreamClient(p, st)
	} else {
		s.runReqRepClient(p, st)
	}
}

// runReqRepClient is the closed request/response loop: upload ReqSize,
// read the RespSize reply, think, repeat.
func (s *Session) runReqRepClient(p *simnet.Proc, st *clientState) {
	buf := make([]byte, ioChunk)
	for {
		t0 := s.eng.Now()
		st.pending = append(st.pending, int64(s.wl.ReqSize))
		if !writeFull(st.cl, buf, int64(s.wl.ReqSize)) ||
			!readFull(st.cl, buf, int64(s.wl.RespSize)) {
			st.canceled++
			return
		}
		st.completed++
		st.lat = append(st.lat, ms(s.eng.Now()-t0))
		if s.wl.Think > 0 {
			// Uniform jitter in [Think/2, 3·Think/2) so clients desynchronize.
			d := s.wl.Think/2 + time.Duration(s.eng.Rand().Int63n(int64(s.wl.Think)))
			if s.net.Sleep(p, d) != nil {
				return // horizon hit between requests: nothing in flight
			}
		}
	}
}

// runStreamClient is the live chunked uploader: chunk k is captured at
// start+k·Chunk, encoded at the ABR-chosen ladder rung, uploaded and
// acknowledged. Latency is capture→acknowledgement — the stream's glass-
// to-glass contribution — so a stalled uplink shows up even though capture
// never stops.
func (s *Session) runStreamClient(p *simnet.Proc, st *clientState) {
	buf := make([]byte, ioChunk)
	start := s.eng.Now()
	est := float64(s.wl.Ladder[0]) // throughput EWMA, bits/sec
	level := 0
	for k := 0; ; k++ {
		readyAt := start + time.Duration(k)*s.wl.Chunk
		if now := s.eng.Now(); readyAt > now {
			if s.net.Sleep(p, readyAt-now) != nil {
				return // horizon hit before the next capture
			}
		}
		// ABR: highest rung at or below 80% of estimated throughput,
		// moving at most one rung per chunk.
		want := 0
		for i, r := range s.wl.Ladder {
			if float64(r) <= 0.8*est {
				want = i
			}
		}
		if want > level+1 {
			want = level + 1
		} else if want < level-1 {
			want = level - 1
		}
		if want != level {
			st.switches++
			level = want
		}
		size := int64(float64(s.wl.Ladder[level]) * s.wl.Chunk.Seconds() / 8)
		if size < 1 {
			size = 1
		}
		st.pending = append(st.pending, size)
		t0 := s.eng.Now()
		if !writeFull(st.cl, buf, size) || !readFull(st.cl, buf, int64(s.wl.RespSize)) {
			st.canceled++
			return
		}
		now := s.eng.Now()
		st.completed++
		st.lat = append(st.lat, ms(now-readyAt))
		st.levelBits += float64(s.wl.Ladder[level])
		if up := now - t0; up > 0 {
			meas := float64(size*8) / up.Seconds()
			est = 0.7*est + 0.3*meas
		}
		st.v.onChunk(now)
	}
}

// runServer consumes the uplink byte stream and answers one RespSize
// response per framed operation. The frame queue is pushed by the client
// before it writes, so under the baton a consumed byte always belongs to
// an already-framed operation.
func (s *Session) runServer(_ *simnet.Proc, st *clientState) {
	buf := make([]byte, ioChunk)
	var acc int64
	for {
		for len(st.pending) > 0 && acc >= st.pending[0] {
			acc -= st.pending[0]
			st.pending = st.pending[1:]
			if !writeFull(st.sv, buf, int64(s.wl.RespSize)) {
				return
			}
		}
		n, err := st.sv.Read(buf)
		acc += int64(n)
		if err != nil {
			return
		}
	}
}

// collect finalizes the viewers at the run horizon and folds all clients
// into one Stats.
func (s *Session) collect() *Stats {
	out := &Stats{Kind: s.wl.Kind}
	var levelBits float64
	for _, st := range s.clis {
		out.Completed += st.completed
		out.Canceled += st.canceled
		out.LatMs = append(out.LatMs, st.lat...)
		out.Switches += st.switches
		levelBits += st.levelBits
		if st.v != nil {
			st.v.advance(s.dur)
			out.Stalls += st.v.stalls
			out.PlayMs += st.v.playMs
			out.StallMs += st.v.stallMs
		}
	}
	sort.Float64s(out.LatMs)
	if t := out.PlayMs + out.StallMs; t > 0 {
		out.RebufferRatio = out.StallMs / t
	}
	if out.Completed > 0 && s.wl.Kind == KindStream {
		out.AvgLevelMbps = levelBits / float64(out.Completed) / 1e6
	}
	return out
}

// viewer models the remote playout buffer of one live stream: media
// accumulates per delivered chunk, plays out in real (virtual) time once
// Startup chunks are buffered, and stalls — accounted, with the startup
// wait excluded — when the buffer drains.
type viewer struct {
	chunk   time.Duration
	startup int

	started bool
	playing bool
	buf     time.Duration // buffered media
	last    time.Duration // virtual time of the last accounting advance

	playMs, stallMs float64
	stalls          int64
}

// advance accounts playout from the last advance up to now.
func (v *viewer) advance(now time.Duration) {
	dt := now - v.last
	v.last = now
	if !v.started || dt <= 0 {
		return
	}
	if v.playing {
		if v.buf >= dt {
			v.buf -= dt
			v.playMs += ms(dt)
			return
		}
		v.playMs += ms(v.buf)
		v.stallMs += ms(dt - v.buf)
		v.buf = 0
		v.playing = false
		v.stalls++
		return
	}
	v.stallMs += ms(dt)
}

// onChunk credits one chunk of media delivered at now.
func (v *viewer) onChunk(now time.Duration) {
	v.advance(now)
	v.buf += v.chunk
	if !v.started {
		if v.buf >= time.Duration(v.startup)*v.chunk {
			v.started, v.playing = true, true
		}
		return
	}
	if !v.playing && v.buf >= v.chunk {
		v.playing = true
	}
}

// ioChunk sizes the scratch buffers the workload loops push through the
// virtual sockets (payloads are synthetic; only lengths travel).
const ioChunk = 64 * units.KB

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// writeFull pushes exactly n bytes through c, chunked by buf. Returns
// false on any error (horizon shutdown, transport failure, deadline).
func writeFull(c net.Conn, buf []byte, n int64) bool {
	for n > 0 {
		b := buf
		if int64(len(b)) > n {
			b = b[:n]
		}
		m, err := c.Write(b)
		n -= int64(m)
		if err != nil {
			return false
		}
	}
	return true
}

// readFull consumes exactly n bytes from c, chunked by buf.
func readFull(c net.Conn, buf []byte, n int64) bool {
	for n > 0 {
		b := buf
		if int64(len(b)) > n {
			b = b[:n]
		}
		m, err := c.Read(b)
		n -= int64(m)
		if err != nil {
			return false
		}
	}
	return true
}
