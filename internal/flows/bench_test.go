package flows

import (
	"fmt"
	"testing"
	"time"

	"mobbr/internal/cc/cubic"
	"mobbr/internal/cpumodel"
	"mobbr/internal/iperf"
	"mobbr/internal/netem"
	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/units"
)

// benchSession builds a live churn session with n flows running, settled
// past the initial burst.
func benchSession(b *testing.B, n int) *Session {
	b.Helper()
	eng := sim.New(1)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 3e9)
	path, err := netem.EthernetLAN(eng, netem.TC{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(eng, cpu, path, iperf.Config{
		CC:       cubic.Factory(),
		Duration: time.Hour, // the benchmark drives the engine itself
		Interval: 100 * time.Millisecond,
		Pool:     seg.NewPool(),
	}, Config{
		ArrivalRate:  1, // hold the population ~constant at n
		MaxLive:      n,
		InitialFlows: n,
		MiceBytes:    64 * units.MB, // long-lived flows: none complete mid-benchmark
		MiceSigma:    0.001,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	eng.Run(200 * time.Millisecond)
	if s.Live() != n {
		b.Fatalf("settled at %d live flows, want %d", s.Live(), n)
	}
	return s
}

// BenchmarkSamplePath is the O(1)-sampling contract: one periodic metric
// sample must cost the same at 1k live flows as at 100k. ns/op flat across
// the sub-benchmarks (and zero allocs) is the point — before the aggregate
// counters this walked every connection.
func BenchmarkSamplePath(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("live=%d", n), func(b *testing.B) {
			s := benchSession(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.sampleOnce()
			}
		})
	}
}

// BenchmarkIntervalPath covers the other periodic path: closing a
// reporting interval reads four aggregate counters, O(1) at any
// population. (The intervals slice append amortizes; allocs/op stays ~0.)
func BenchmarkIntervalPath(b *testing.B) {
	for _, n := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("live=%d", n), func(b *testing.B) {
			s := benchSession(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.recordIntervalOnce()
			}
		})
	}
}
