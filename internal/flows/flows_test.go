package flows

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"mobbr/internal/cpumodel"
	"mobbr/internal/tcp"
	"mobbr/internal/units"
)

func TestConfigDefaults(t *testing.T) {
	d := Config{}.WithDefaults()
	if d.ArrivalRate != 1000 || d.MaxLive != 10000 || d.MiceBytes != 20*units.KB {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	if d.FlowTableSlots != 1024 || d.OffloadThreshold != 32 {
		t.Fatalf("unexpected flow-table defaults: %+v", d)
	}
	// Explicit values survive defaulting.
	c := Config{ArrivalRate: 5, MaxLive: 2, FlowTableSlots: -0}.WithDefaults()
	if c.ArrivalRate != 5 || c.MaxLive != 2 {
		t.Fatalf("explicit values clobbered: %+v", c)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
	bad := []Config{
		{ArrivalRate: math.NaN()},
		{ArrivalRate: -5},
		{ArrivalRate: math.Inf(1)},
		{InitialFlows: -1},
		{ElephantShare: -0.1},
		{ElephantShare: 1.1},
		{ElephantMinBytes: 8 * units.MB, MaxFlowBytes: 1 * units.MB},
		{FlowTableSlots: -1},
		{OffloadThreshold: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed validation: %+v", i, c)
		}
	}
}

func TestFCTP(t *testing.T) {
	s := &Stats{FCTms: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	if got := s.FCTP(50); got < 5 || got > 6 {
		t.Errorf("FCTP(50) = %v, want within [5,6]", got)
	}
	if got := s.FCTP(100); got != 10 {
		t.Errorf("FCTP(100) = %v, want 10", got)
	}
	empty := &Stats{}
	if got := empty.FCTP(99); got != 0 {
		t.Errorf("empty FCTP(99) = %v, want 0", got)
	}
}

func TestMergeNil(t *testing.T) {
	if got := Merge(nil); got != nil {
		t.Fatalf("Merge(nil) = %+v, want nil", got)
	}
	if got := Merge([]*Stats{nil, nil}); got != nil {
		t.Fatalf("Merge of all-nil = %+v, want nil", got)
	}
}

func TestMergeFolds(t *testing.T) {
	a := &Stats{
		Started: 10, Completed: 8, Failed: 1, Rejected: 3, Canceled: 1,
		PeakLive: 7, AvgLive: 4,
		FCTms:          []float64{5, 1},
		TombstonedAcks: 2, Orphans: 1,
		Pool:      tcp.ConnPoolStats{Created: 3, Gets: 10, Reuses: 7, Puts: 10, OutstandingHW: 7},
		FlowTable: cpumodel.FlowTableStats{FastHits: 100, SlowHits: 50, Promotions: 2, OccupancyHW: 2, Slots: 16},
	}
	b := &Stats{
		Started: 20, Completed: 19, PeakLive: 5, AvgLive: 2,
		FCTms:     []float64{3},
		Pool:      tcp.ConnPoolStats{Created: 1, Gets: 20, Reuses: 19, Puts: 20, OutstandingHW: 5},
		FlowTable: cpumodel.FlowTableStats{FastHits: 10, SlowHits: 90, OccupancyHW: 4, Slots: 16},
	}
	got := Merge([]*Stats{a, nil, b})
	if got.Started != 30 || got.Completed != 27 || got.Failed != 1 || got.Rejected != 3 || got.Canceled != 1 {
		t.Errorf("counters did not sum: %+v", got)
	}
	if got.PeakLive != 7 {
		t.Errorf("PeakLive = %d, want max 7", got.PeakLive)
	}
	if got.AvgLive != 3 {
		t.Errorf("AvgLive = %v, want mean 3", got.AvgLive)
	}
	if want := []float64{1, 3, 5}; !reflect.DeepEqual(got.FCTms, want) {
		t.Errorf("FCTms = %v, want pooled sorted %v", got.FCTms, want)
	}
	if !sort.Float64sAreSorted(got.FCTms) {
		t.Error("merged FCT samples not sorted")
	}
	if got.Pool.Gets != 30 || got.Pool.Created != 4 || got.Pool.OutstandingHW != 7 {
		t.Errorf("pool census did not fold: %+v", got.Pool)
	}
	if got.FlowTable.FastHits != 110 || got.FlowTable.SlowHits != 140 ||
		got.FlowTable.OccupancyHW != 4 || got.FlowTable.Slots != 16 {
		t.Errorf("flow table did not fold: %+v", got.FlowTable)
	}
	if got.TombstonedAcks != 2 || got.Orphans != 1 {
		t.Errorf("edge counters did not fold: %+v", got)
	}
}
