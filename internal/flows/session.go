package flows

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mobbr/internal/check"
	"mobbr/internal/cpumodel"
	"mobbr/internal/iperf"
	"mobbr/internal/netem"
	"mobbr/internal/sim"
	"mobbr/internal/stats"
	"mobbr/internal/tcp"
	"mobbr/internal/units"
)

// flow is one live flow's bookkeeping. Flow records recycle through a
// session-private freelist, and the three stream callbacks are built once
// per record and survive recycling (they read the record's current
// fields), so steady-state churn allocates almost nothing per flow.
type flow struct {
	s  *Session
	pc *tcp.PooledConn

	id      int
	size    int64
	written int64
	born    time.Duration
	idx     int // position in the session's live set

	writableFn func()
	drainedFn  func()
	failedFn   func(error)
}

// Session is one assembled churn run. It mirrors iperf.Session's harness
// shape (Start / engine run / Finish) but owns a dynamic population:
// arrivals draw a size and a pooled connection, completions release both.
type Session struct {
	eng  *sim.Engine
	cpu  *cpumodel.CPU
	path *netem.Path
	icfg iperf.Config
	fcfg Config

	demux *tcp.Demux
	pool  *tcp.ConnPool
	agg   *tcp.AggStats
	ftab  *cpumodel.FlowTable

	nextID    int
	live      []*flow
	freeFlows []*flow

	// onRetire fires with the flow id on every release (completion or
	// failure) — the invariant checker prunes its per-flow history here.
	onRetire func(id int)

	started, completed, failed, rejected int64
	peakLive                             int
	liveSamples                          stats.Online
	queueDepth                           stats.Online
	fctMs                                []float64

	warmupBytes units.DataSize

	intervals      []iperf.Interval
	lastIvalBytes  units.DataSize
	lastIvalRetx   int64
	lastIvalRTTSum time.Duration
	lastIvalRTTN   int64

	// Cached event closures: the periodic paths schedule without
	// allocating per tick.
	arrivalFn  func()
	sampleFn   func()
	intervalFn func()

	audBuf []check.Auditable
}

// New assembles a churn session. The iperf config supplies the shared
// harness knobs (duration, warmup, sampling, intervals, transport config,
// congestion-control factory, pool, telemetry); the flows config shapes
// the arrival and size processes. Like the apps layer, flows reuses
// iperf's Report so the experiment plumbing upstream is untouched.
//
// The per-byte sendmsg copy (iperf's AppCPU) is deliberately not charged:
// the churn workload studies the per-flow costs — demux, ACK processing,
// timer state — and at 100k flows the byte-granular app-core model would
// dominate runtime without adding information.
func New(eng *sim.Engine, cpu *cpumodel.CPU, path *netem.Path, icfg iperf.Config, fcfg Config) (*Session, error) {
	if err := fcfg.Validate(); err != nil {
		return nil, err
	}
	fcfg = fcfg.WithDefaults()
	if icfg.CC == nil {
		return nil, fmt.Errorf("flows: iperf.Config.CC factory is required")
	}
	if icfg.Duration <= 0 {
		icfg.Duration = 10 * time.Second
	}
	if icfg.SampleEvery <= 0 {
		icfg.SampleEvery = 100 * time.Millisecond
	}
	s := &Session{
		eng: eng, cpu: cpu, path: path, icfg: icfg, fcfg: fcfg,
		demux: tcp.NewDemux(),
		agg:   &tcp.AggStats{},
		ftab:  cpumodel.NewFlowTable(fcfg.FlowTableSlots, fcfg.OffloadThreshold, cpu.Costs()),
	}
	// Cache/TLB pressure scales with the hot-socket population, same
	// model as iperf's parallel connections.
	cpu.SetPressure(1 + 0.05*math.Log(float64(fcfg.MaxLive)))
	s.demux.SetPool(icfg.Pool)
	path.SetPool(icfg.Pool)
	path.SetReceiver(s.demux.Handle)
	s.pool = tcp.NewConnPool(eng, cpu, nil, path, icfg.TCP, icfg.Pool, s.agg, s.ftab)
	s.arrivalFn = s.arrive
	s.sampleFn = s.sample
	s.intervalFn = s.recordInterval
	return s, nil
}

// SetOnRetire installs a hook fired with each flow id as it is released.
func (s *Session) SetOnRetire(fn func(id int)) { s.onRetire = fn }

// Aggregates exposes the run-wide O(1) counter sink.
func (s *Session) Aggregates() *tcp.AggStats { return s.agg }

// Pool exposes the conn pool (tests audit its balance).
func (s *Session) Pool() *tcp.ConnPool { return s.pool }

// Live returns the current live-flow count.
func (s *Session) Live() int { return len(s.live) }

// Auditables returns the live connections as the invariant checker's
// dynamic audit view. The backing buffer is reused across calls.
func (s *Session) Auditables() []check.Auditable {
	s.audBuf = s.audBuf[:0]
	for _, f := range s.live {
		s.audBuf = append(s.audBuf, f.pc.Conn)
	}
	return s.audBuf
}

// drawSize samples one flow size: a lognormal mouse, or (with probability
// ElephantShare) a bounded-Pareto elephant.
func (s *Session) drawSize() int64 {
	r := s.eng.Rand()
	var size float64
	if r.Float64() < s.fcfg.ElephantShare {
		// Bounded Pareto: min·(1-U)^(-1/α), U ∈ [0,1) keeps the base
		// in (0,1] so the draw is finite.
		size = float64(s.fcfg.ElephantMinBytes) *
			math.Pow(1-r.Float64(), -1/s.fcfg.ParetoAlpha)
	} else {
		size = float64(s.fcfg.MiceBytes) * math.Exp(s.fcfg.MiceSigma*r.NormFloat64())
	}
	if size > float64(s.fcfg.MaxFlowBytes) {
		size = float64(s.fcfg.MaxFlowBytes)
	}
	if size < 1 {
		size = 1
	}
	return int64(size)
}

// allocFlow takes a recycled flow record or builds one with its callback
// closures.
func (s *Session) allocFlow() *flow {
	if n := len(s.freeFlows); n > 0 {
		f := s.freeFlows[n-1]
		s.freeFlows = s.freeFlows[:n-1]
		return f
	}
	f := &flow{s: s}
	f.writableFn = func() { s.pump(f) }
	f.drainedFn = func() { s.complete(f) }
	f.failedFn = func(error) { s.fail(f) }
	return f
}

// startFlow admits one flow: fresh id, drawn size, pooled conn in stream
// mode, registered with the demux, started, and primed with as many bytes
// as the send buffer takes.
func (s *Session) startFlow() {
	f := s.allocFlow()
	f.id = s.nextID
	s.nextID++
	f.size = s.drawSize()
	f.written = 0
	f.born = s.eng.Now()
	f.pc = s.pool.Get(f.id, s.icfg.CC)
	f.idx = len(s.live)
	s.live = append(s.live, f)
	s.started++
	if len(s.live) > s.peakLive {
		s.peakLive = len(s.live)
	}
	c := f.pc.Conn
	c.SetStream()
	c.SetStreamCallbacks(f.writableFn, f.drainedFn, f.failedFn)
	s.demux.Add(f.pc.Rx)
	c.Start()
	s.pump(f)
}

// pump pushes the flow's remaining bytes into the send buffer and
// half-closes (FIN) once everything is written. Re-entered from the
// writable callback as ACKs reopen room.
func (s *Session) pump(f *flow) {
	c := f.pc.Conn
	for f.written < f.size {
		n, err := c.StreamWrite(f.size - f.written)
		if err != nil {
			return // the failed callback owns the release
		}
		if n == 0 {
			return // buffer full; the writable callback re-pumps
		}
		f.written += n
	}
	c.CloseStream()
}

// complete records a drained flow's completion time and releases it.
func (s *Session) complete(f *flow) {
	s.completed++
	s.fctMs = append(s.fctMs, float64(s.eng.Now()-f.born)/1e6)
	s.release(f)
}

// fail releases a flow the transport declared dead.
func (s *Session) fail(f *flow) {
	s.failed++
	s.release(f)
}

// release is the single churn exit path: the flow id is unregistered
// everywhere late traffic could still reach it — demux (data), path
// tombstone (ACKs in return flight), flow table (fast-path slot) — then
// the conn goes back to the pool and the record to the freelist. The live
// set uses O(1) swap-remove; order is irrelevant, ids are never reused.
func (s *Session) release(f *flow) {
	s.demux.Remove(f.id)
	s.path.RetireFlow(f.id)
	s.ftab.Remove(f.id)
	if s.onRetire != nil {
		s.onRetire(f.id)
	}
	s.pool.Put(f.pc)
	last := len(s.live) - 1
	s.live[f.idx] = s.live[last]
	s.live[f.idx].idx = f.idx
	s.live = s.live[:last]
	f.pc = nil
	s.freeFlows = append(s.freeFlows, f)
}

// arrive admits or rejects one Poisson arrival and schedules the next.
func (s *Session) arrive() {
	if len(s.live) >= s.fcfg.MaxLive {
		s.rejected++
	} else {
		s.startFlow()
	}
	s.scheduleArrival()
}

func (s *Session) scheduleArrival() {
	wait := time.Duration(s.eng.Rand().ExpFloat64() / s.fcfg.ArrivalRate * float64(time.Second))
	s.eng.Schedule(wait, s.arrivalFn)
}

// sample is the periodic metric sample. Unlike iperf's per-connection
// walk, every quantity here is O(1) in the live-flow count — that is the
// point of the aggregate counters. The measurement body is split out
// (sampleOnce) so benchmarks can time one sample without the scheduling.
func (s *Session) sample() {
	s.sampleOnce()
	s.eng.Schedule(s.icfg.SampleEvery, s.sampleFn)
}

func (s *Session) sampleOnce() {
	s.liveSamples.Add(float64(len(s.live)))
	s.queueDepth.Add(float64(s.path.Hop(0).QueueLen()))
}

// recordInterval closes one reporting interval from counter deltas —
// including the RTT column, which iperf snapshots per conn but flows
// derives from the aggregate per-ACK sum (O(1) at any population).
func (s *Session) recordInterval() {
	s.recordIntervalOnce()
	s.eng.Schedule(s.icfg.Interval, s.intervalFn)
}

func (s *Session) recordIntervalOnce() {
	now := s.eng.Now()
	bytes := s.agg.GoodBytes()
	retx := s.agg.Retransmits()
	rttSum, rttN := s.agg.RTTSum(), s.agg.RTTSamples()
	iv := iperf.Interval{
		Start:       now - s.icfg.Interval,
		End:         now,
		Goodput:     units.BandwidthFromBytes(bytes-s.lastIvalBytes, s.icfg.Interval),
		Retransmits: retx - s.lastIvalRetx,
	}
	if dn := rttN - s.lastIvalRTTN; dn > 0 {
		iv.AvgRTT = (rttSum - s.lastIvalRTTSum) / time.Duration(dn)
	}
	s.intervals = append(s.intervals, iv)
	s.lastIvalBytes = bytes
	s.lastIvalRetx = retx
	s.lastIvalRTTSum = rttSum
	s.lastIvalRTTN = rttN
}

// Start seeds the initial population, arms the arrival process and the
// periodic samplers.
func (s *Session) Start() {
	n := s.fcfg.InitialFlows
	if n > s.fcfg.MaxLive {
		n = s.fcfg.MaxLive
	}
	for i := 0; i < n; i++ {
		s.startFlow()
	}
	s.scheduleArrival()
	s.eng.Schedule(s.icfg.SampleEvery, s.sampleFn)
	if s.icfg.Interval > 0 {
		s.eng.Schedule(s.icfg.Interval, s.intervalFn)
	}
	if s.icfg.Warmup > 0 {
		s.eng.Schedule(s.icfg.Warmup, func() {
			s.warmupBytes = s.agg.GoodBytes()
		})
	}
}

// Run executes the whole experiment on the engine.
func (s *Session) Run() (*iperf.Report, *Stats) {
	s.Start()
	s.eng.Run(s.icfg.Duration)
	return s.Finish()
}

// Finish cancels the flows still live at the horizon, reclaims everything
// the network and the dying connections hold, and collects. After Finish
// the conn pool and the packet pool both balance to zero.
func (s *Session) Finish() (*iperf.Report, *Stats) {
	canceled := int64(len(s.live))
	for _, f := range s.live {
		s.demux.Remove(f.id)
		s.pool.Put(f.pc) // stops the conn, parks it dying
		f.pc = nil
	}
	s.live = s.live[:0]
	s.path.Reclaim()
	s.pool.Reclaim()
	return s.collect(canceled)
}

func (s *Session) collect(canceled int64) (*iperf.Report, *Stats) {
	dur := s.icfg.Duration - s.icfg.Warmup
	if dur <= 0 {
		dur = s.icfg.Duration
	}
	r := &iperf.Report{
		Goodput:      units.BandwidthFromBytes(s.agg.GoodBytes()-s.warmupBytes, dur),
		Retransmits:  s.agg.Retransmits(),
		AvgRTT:       s.agg.AvgRTT(),
		CPUUtil:      s.cpu.TotalUtilization(),
		CPUBreakdown: s.cpu.Breakdown(),
		CPUSpeed:     s.cpu.Speed(),
		PathDrops:    s.path.TotalDrops(),
		AvgNICQueue:  s.queueDepth.Mean(),
		Intervals:    s.intervals,
	}
	if s.icfg.Metrics != nil {
		r.Metrics = s.icfg.Metrics.Snapshot()
	}
	if s.icfg.Pool != nil {
		r.Pool = s.icfg.Pool.Stats()
	}
	sort.Float64s(s.fctMs)
	st := &Stats{
		Started:        s.started,
		Completed:      s.completed,
		Failed:         s.failed,
		Rejected:       s.rejected,
		Canceled:       canceled,
		PeakLive:       s.peakLive,
		AvgLive:        s.liveSamples.Mean(),
		FCTms:          s.fctMs,
		TombstonedAcks: s.path.TombstonedAcks(),
		Orphans:        s.demux.Orphans(),
		Pool:           s.pool.Stats(),
		FlowTable:      s.ftab.Stats(),
	}
	return r, st
}
