// Package flows is the million-flow data path workload: an open-loop
// Poisson process of connection arrivals with a heavy-tailed elephant/mice
// size distribution, each flow a pooled stream-mode TCP connection that
// FINs on completion and recycles its state. Where iperf measures a fixed
// handful of bulk connections, flows measures churn: flow-completion-time
// percentiles, peak concurrency, the fast-path share of the flow-table
// cost model, and the leak-audited balance of the conn pool — all with
// per-sample accounting that is O(1) in the number of live flows (the
// run-wide tcp.AggStats counters), so a 100k-flow point samples exactly as
// cheaply as a 1k-flow point.
package flows

import (
	"fmt"
	"math"
	"sort"

	"mobbr/internal/cpumodel"
	"mobbr/internal/stats"
	"mobbr/internal/tcp"
	"mobbr/internal/units"
)

// Config parameterizes the churn workload (core.Spec.Flows).
type Config struct {
	// ArrivalRate is the open-loop Poisson connection arrival rate in
	// flows per second (default 1000). Arrivals are independent of
	// completions — under overload the live set saturates at MaxLive and
	// excess arrivals are rejected, like a listen-backlog drop.
	ArrivalRate float64
	// MaxLive caps concurrent flows (default 10000). An arrival beyond
	// the cap is counted in Stats.Rejected and dropped.
	MaxLive int
	// InitialFlows starts this many flows at t=0 (clamped to MaxLive),
	// so steady-state concurrency is reached without waiting for the
	// arrival process to fill the live set (default 0).
	InitialFlows int
	// MiceBytes / MiceSigma shape the mice: flow sizes are lognormal,
	// MiceBytes × exp(MiceSigma·N(0,1)) (defaults 20 KB, σ 1.0).
	MiceBytes units.DataSize
	MiceSigma float64
	// ElephantShare is the probability a flow is an elephant
	// (default 0.05); elephants draw from a bounded Pareto with shape
	// ParetoAlpha (default 1.3) starting at ElephantMinBytes
	// (default 1 MB), capped at MaxFlowBytes (default 64 MB).
	ElephantShare    float64
	ParetoAlpha      float64
	ElephantMinBytes units.DataSize
	MaxFlowBytes     units.DataSize
	// FlowTableSlots / OffloadThreshold parameterize the
	// fast-path/slow-path flow-table cost model charged per arriving ACK
	// (cpumodel.FlowTable): fast-path capacity (default 1024) and the
	// lookup count after which a flow is offloaded (default 32 — mice
	// complete before they amortize an offload, elephants do not).
	FlowTableSlots   int
	OffloadThreshold int
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.ArrivalRate <= 0 {
		c.ArrivalRate = 1000
	}
	if c.MaxLive <= 0 {
		c.MaxLive = 10000
	}
	if c.MiceBytes <= 0 {
		c.MiceBytes = 20 * units.KB
	}
	if c.MiceSigma <= 0 {
		c.MiceSigma = 1.0
	}
	if c.ElephantShare == 0 {
		c.ElephantShare = 0.05
	}
	if c.ParetoAlpha <= 0 {
		c.ParetoAlpha = 1.3
	}
	if c.ElephantMinBytes <= 0 {
		c.ElephantMinBytes = 1 * units.MB
	}
	if c.MaxFlowBytes <= 0 {
		c.MaxFlowBytes = 64 * units.MB
	}
	if c.FlowTableSlots == 0 {
		c.FlowTableSlots = 1024
	}
	if c.OffloadThreshold == 0 {
		c.OffloadThreshold = 32
	}
	return c
}

// Validate rejects malformed configs (after defaulting).
func (c Config) Validate() error {
	d := c.WithDefaults()
	// Check the raw value: WithDefaults maps non-positive rates to the
	// default, which would let a negative typo through as 1000 flows/sec.
	if c.ArrivalRate < 0 || math.IsNaN(c.ArrivalRate) || math.IsInf(c.ArrivalRate, 0) {
		return fmt.Errorf("flows: bad arrival rate %v", c.ArrivalRate)
	}
	if c.InitialFlows < 0 {
		return fmt.Errorf("flows: negative initial flows %d", c.InitialFlows)
	}
	if c.ElephantShare < 0 || c.ElephantShare > 1 {
		return fmt.Errorf("flows: elephant share %v outside [0,1]", c.ElephantShare)
	}
	if d.ElephantMinBytes > d.MaxFlowBytes {
		return fmt.Errorf("flows: elephant min %v exceeds flow cap %v", d.ElephantMinBytes, d.MaxFlowBytes)
	}
	if c.FlowTableSlots < 0 {
		return fmt.Errorf("flows: negative flow-table slots %d", c.FlowTableSlots)
	}
	if c.OffloadThreshold < 0 {
		return fmt.Errorf("flows: negative offload threshold %d", c.OffloadThreshold)
	}
	return nil
}

// Stats is the churn-level outcome of one run. All values derive from
// virtual time and the engine's seeded randomness, so they are
// byte-deterministic per seed.
type Stats struct {
	// Started counts flows admitted; Completed those whose final byte was
	// cumulatively acknowledged (FIN drained); Failed those the transport
	// declared dead; Rejected arrivals dropped at the MaxLive cap;
	// Canceled flows cut off live by the run horizon.
	Started, Completed, Failed, Rejected, Canceled int64
	// PeakLive is the highest concurrent flow count; AvgLive the sampled
	// mean.
	PeakLive int
	AvgLive  float64
	// FCTms holds one flow-completion time per completed flow, in
	// milliseconds, sorted ascending (arrival to FIN-drained).
	FCTms []float64
	// TombstonedAcks counts late ACKs absorbed after their flow was
	// retired — the churn edge that must never reach a recycled conn.
	TombstonedAcks uint64
	// Orphans counts data packets that arrived for an unregistered flow.
	Orphans uint64
	// Pool is the conn-pool census (Balanced after a clean run).
	Pool tcp.ConnPoolStats
	// FlowTable is the fast-path/slow-path lookup accounting.
	FlowTable cpumodel.FlowTableStats
}

// FCTP returns the p-th percentile (0..100) flow completion time in ms.
func (s *Stats) FCTP(p float64) float64 { return stats.Percentile(s.FCTms, p) }

// Merge returns the fold of many per-seed stats (nil when all are nil):
// counters sum, high-water marks take the max, AvgLive is the plain mean
// across seeds (equal durations), and FCT samples pool so grid quantiles
// have every completed flow behind them.
func Merge(runs []*Stats) *Stats {
	var out *Stats
	n := 0
	for _, r := range runs {
		if r == nil {
			continue
		}
		if out == nil {
			out = &Stats{}
		}
		n++
		out.Started += r.Started
		out.Completed += r.Completed
		out.Failed += r.Failed
		out.Rejected += r.Rejected
		out.Canceled += r.Canceled
		if r.PeakLive > out.PeakLive {
			out.PeakLive = r.PeakLive
		}
		out.AvgLive += r.AvgLive
		out.FCTms = append(out.FCTms, r.FCTms...)
		out.TombstonedAcks += r.TombstonedAcks
		out.Orphans += r.Orphans
		mergePool(&out.Pool, r.Pool)
		mergeTable(&out.FlowTable, r.FlowTable)
	}
	if out != nil {
		out.AvgLive /= float64(n)
		sort.Float64s(out.FCTms)
	}
	return out
}

func mergePool(dst *tcp.ConnPoolStats, s tcp.ConnPoolStats) {
	dst.Created += s.Created
	dst.Gets += s.Gets
	dst.Reuses += s.Reuses
	dst.Puts += s.Puts
	dst.Outstanding += s.Outstanding
	dst.Dying += s.Dying
	dst.Free += s.Free
	if s.OutstandingHW > dst.OutstandingHW {
		dst.OutstandingHW = s.OutstandingHW
	}
}

func mergeTable(dst *cpumodel.FlowTableStats, s cpumodel.FlowTableStats) {
	dst.FastHits += s.FastHits
	dst.SlowHits += s.SlowHits
	dst.Promotions += s.Promotions
	dst.Occupied += s.Occupied
	if s.OccupancyHW > dst.OccupancyHW {
		dst.OccupancyHW = s.OccupancyHW
	}
	if s.Slots > dst.Slots {
		dst.Slots = s.Slots
	}
}
