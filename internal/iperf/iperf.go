// Package iperf drives the paper's workload: an iPerf3-style bulk upload
// from the phone over N parallel TCP connections, and collects the metrics
// the paper reports — aggregate goodput, per-connection goodput, RTT
// (sampled like periodic `ss` polling), retransmission counts, pacing-period
// statistics (for Table 2), buffer occupancy and CPU utilization.
package iperf

import (
	"fmt"
	"io"
	"math"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cpumodel"
	"mobbr/internal/fairness"
	"mobbr/internal/netem"
	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/stats"
	"mobbr/internal/tcp"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

// Config parameterizes one iPerf run.
type Config struct {
	// Conns is the number of parallel connections (iperf3 -P).
	Conns int
	// Duration is how long the run transmits (iperf3 -t).
	Duration time.Duration
	// Warmup excludes the initial ramp from goodput accounting; 0
	// measures the whole run like iperf3 does.
	Warmup time.Duration
	// TCP is the per-connection transport configuration.
	TCP tcp.Config
	// CC builds each connection's congestion controller.
	CC cc.Factory
	// CCMix, when non-empty, overrides CC: connection i uses
	// CCMix[i%len(CCMix)], enabling mixed-protocol coexistence
	// experiments (e.g. BBR vs Cubic sharing a bottleneck).
	CCMix []cc.Factory
	// Stream builds every connection in stream-source mode: no bulk
	// source runs; an application layer (internal/apps over simnet)
	// pushes bytes with StreamWrite instead. The harness — staggered
	// starts, sampling, intervals, warmup, reclaim, Collect — is shared
	// unchanged, making iperf's bulk upload just one workload behind it.
	Stream bool
	// AppCPU, when set, is the application core charged the per-byte
	// sendmsg copy (see device.NewCPUs). nil skips the copy cost.
	AppCPU *cpumodel.CPU
	// SampleEvery is the metric-sampling period (default 100 ms).
	SampleEvery time.Duration
	// Interval, when nonzero, records an iperf3-style per-interval
	// report (aggregate goodput, RTT, retransmits) every Interval.
	Interval time.Duration
	// StaggerStarts spreads connection starts over this window to avoid
	// artificial lockstep (default 10 ms).
	StaggerStarts time.Duration
	// Bus, when set, receives every connection's structured telemetry
	// events (state transitions, RTOs, pacing-timer slippage, …).
	Bus *telemetry.Bus
	// Metrics, when set, collects per-connection histograms (ACK batch
	// size, send quantum, inter-send gap, delivery rate, timer slippage);
	// Collect snapshots it into Report.Metrics.
	Metrics *telemetry.Registry
	// Pool, when set, is the run-private packet/ACK recycler threaded
	// through the senders, the path and the demux; Run reclaims everything
	// still held at run end and Collect reports the pool census. In a
	// sharded run this is the sender arena (Shard.Pools.Arena(0)).
	Pool *seg.Pool
	// Shard, when set, splits the run across engine shards: senders, the
	// path and all sampling stay on shard 0 (the engine passed to New),
	// receivers live on Shard.RxShard, and warmup/interval bookkeeping runs
	// at consistent barrier cuts. nil runs serial, unchanged.
	Shard *Shard
}

// Shard carries the dependencies of a split run. core.Run assembles it: a
// sharded engine, the cross wiring replacing the path's last propagation
// leg, the receiver's shard index and the pool arenas (arena 0 doubles as
// Config.Pool; arena RxShard serves the receivers).
type Shard struct {
	Engines *sim.ShardedEngine
	Wiring  *netem.CrossWiring
	RxShard int
	Pools   *seg.PoolSet
}

// Session is one assembled iPerf run.
type Session struct {
	eng  *sim.Engine
	cpu  *cpumodel.CPU
	path *netem.Path
	cfg  Config

	conns []*tcp.Conn
	rxs   []*tcp.Receiver

	// agg is the run-wide O(1) counter sink: warmup snapshots and interval
	// reports read it instead of walking every connection, so the periodic
	// paths cost the same at 4 connections and at 100k. Collect still walks
	// once at run end (per-conn columns need it), and tests assert the
	// counter equals the walk exactly.
	agg *tcp.AggStats

	warmupBytes units.DataSize
	rttSamples  stats.Online
	cwndSamples stats.Online
	queueDepth  stats.Online

	intervals     []Interval
	lastIvalBytes units.DataSize
	lastIvalRetx  int64
}

// Interval is one iperf3-style reporting interval.
type Interval struct {
	// Start and End bound the interval in virtual time.
	Start, End time.Duration
	// Goodput is the aggregate receiver goodput over the interval.
	Goodput units.Bandwidth
	// Retransmits is the retransmission count within the interval.
	Retransmits int64
	// AvgRTT is the mean smoothed RTT across connections at interval end.
	AvgRTT time.Duration
}

// New assembles a session: conns connections, receivers, and the demux. It
// does not start transmission; call Start (or Run). A config without a
// congestion-control factory is a caller input error, returned — not
// panicked.
func New(eng *sim.Engine, cpu *cpumodel.CPU, path *netem.Path, cfg Config) (*Session, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 100 * time.Millisecond
	}
	if cfg.StaggerStarts < 0 {
		cfg.StaggerStarts = 0
	} else if cfg.StaggerStarts == 0 {
		cfg.StaggerStarts = 10 * time.Millisecond
	}
	if cfg.CC == nil && len(cfg.CCMix) == 0 {
		return nil, fmt.Errorf("iperf: Config.CC or Config.CCMix is required")
	}
	if cfg.Shard != nil && cfg.Stream {
		// Stream mode hands the send side to application goroutines via the
		// simnet baton; that handoff is built around one engine.
		return nil, fmt.Errorf("iperf: sharded runs do not support stream mode")
	}
	s := &Session{eng: eng, cpu: cpu, path: path, cfg: cfg, agg: &tcp.AggStats{}}
	// Cache/TLB pressure grows gently with the number of hot sockets.
	pressure := 1 + 0.05*math.Log(float64(cfg.Conns))
	cpu.SetPressure(pressure)
	if cfg.AppCPU != nil {
		cfg.AppCPU.SetPressure(pressure)
	}
	demux := tcp.NewDemux()
	rxEng, rxPool := eng, cfg.Pool
	if sh := cfg.Shard; sh != nil {
		rxEng = sh.Engines.Shard(sh.RxShard)
		rxPool = sh.Pools.Arena(sh.RxShard)
	}
	demux.SetPool(rxPool)
	path.SetPool(cfg.Pool)
	for i := 0; i < cfg.Conns; i++ {
		tcfg := cfg.TCP
		if cfg.StaggerStarts > 0 && cfg.Conns > 1 {
			tcfg.StartDelay = time.Duration(eng.Rand().Int63n(int64(cfg.StaggerStarts)))
		}
		factory := cfg.CC
		if len(cfg.CCMix) > 0 {
			factory = cfg.CCMix[i%len(cfg.CCMix)]
		}
		conn := tcp.NewConn(i, eng, cpu, path, tcfg, factory)
		conn.SetPool(cfg.Pool)
		conn.SetAggregates(s.agg)
		if cfg.Stream {
			conn.SetStream()
		}
		if cfg.AppCPU != nil {
			conn.SetAppCPU(cfg.AppCPU)
		}
		if cfg.Bus != nil || cfg.Metrics != nil {
			conn.SetTelemetry(cfg.Bus, telemetry.NewConnMetrics(cfg.Metrics, i))
		}
		rx := tcp.NewReceiver(rxEng, path, conn)
		if sh := cfg.Shard; sh != nil {
			rx.SetShard(rxPool, sh.Wiring.ReturnAck)
		}
		demux.Add(rx)
		s.conns = append(s.conns, conn)
		s.rxs = append(s.rxs, rx)
	}
	if sh := cfg.Shard; sh != nil {
		// The last hop posts across the shard boundary; packets surface on
		// the receiver shard through the wiring, never through path.recv.
		sh.Wiring.SetReceiver(demux.Handle)
	} else {
		path.SetReceiver(demux.Handle)
	}
	return s, nil
}

// Conns returns the session's connections (for experiment-specific probes).
func (s *Session) Conns() []*tcp.Conn { return s.conns }

// Receivers returns the per-connection server-side receivers, index-aligned
// with Conns (the apps layer wraps each pair into a virtual socket).
func (s *Session) Receivers() []*tcp.Receiver { return s.rxs }

// Start begins transmission and metric sampling.
func (s *Session) Start() {
	for _, c := range s.conns {
		c.Start()
	}
	s.eng.Schedule(s.cfg.SampleEvery, s.sample)
	warmup := func() {
		// The O(1) counter is integer-identical to totalGoodBytes().
		s.warmupBytes = s.agg.GoodBytes()
	}
	if sh := s.cfg.Shard; sh != nil {
		// Warmup and interval reports read receiver-shard state (the
		// aggregate goodput counter), so they run at consistent barrier
		// cuts; each fires as one global, keeping the processed-event count
		// identical to the serial engine's.
		if s.cfg.Interval > 0 {
			sh.Engines.GlobalEvery(s.cfg.Interval, func() {
				s.recordIntervalAt(s.eng.Now())
			})
		}
		if s.cfg.Warmup > 0 {
			sh.Engines.GlobalAt(s.cfg.Warmup, warmup)
		}
		return
	}
	if s.cfg.Interval > 0 {
		s.eng.Schedule(s.cfg.Interval, s.recordInterval)
	}
	if s.cfg.Warmup > 0 {
		s.eng.Schedule(s.cfg.Warmup, warmup)
	}
}

func (s *Session) sample() {
	for _, c := range s.conns {
		st := c.Stats()
		if st.SRTT > 0 {
			s.rttSamples.Add(float64(st.SRTT))
		}
		s.cwndSamples.Add(float64(st.Cwnd))
	}
	s.queueDepth.Add(float64(s.path.Hop(0).QueueLen()))
	s.eng.Schedule(s.cfg.SampleEvery, s.sample)
}

// recordInterval closes one reporting interval and schedules the next.
func (s *Session) recordInterval() {
	s.recordIntervalAt(s.eng.Now())
	s.eng.Schedule(s.cfg.Interval, s.recordInterval)
}

// recordIntervalAt closes the interval ending at now; the sharded engine
// calls it from a periodic global instead of a self-rescheduling event.
func (s *Session) recordIntervalAt(now time.Duration) {
	// Goodput and retransmits come from the O(1) aggregate counters
	// (maintained at delivery/ACK time, integer-identical to the walks
	// they replaced). The RTT column is a snapshot of each connection's
	// current srtt — a poll by definition — and iperf's per-conn loop
	// stays for it; the scale workload (internal/flows) reports the
	// aggregate per-ACK RTT mean instead.
	bytes := s.agg.GoodBytes()
	retx := s.agg.Retransmits()
	var rtt stats.Online
	for _, c := range s.conns {
		st := c.Stats()
		if st.SRTT > 0 {
			rtt.Add(float64(st.SRTT))
		}
	}
	iv := Interval{
		Start:       now - s.cfg.Interval,
		End:         now,
		Goodput:     units.BandwidthFromBytes(bytes-s.lastIvalBytes, s.cfg.Interval),
		Retransmits: retx - s.lastIvalRetx,
		AvgRTT:      time.Duration(rtt.Mean()),
	}
	s.intervals = append(s.intervals, iv)
	s.lastIvalBytes = bytes
	s.lastIvalRetx = retx
}

// totalGoodBytes is the slow O(conns) walk the aggregate counter replaced
// on the periodic paths; Collect's one-shot end-of-run pass still uses the
// per-receiver values, and tests assert counter == walk exactly.
func (s *Session) totalGoodBytes() units.DataSize {
	var n units.DataSize
	for _, rx := range s.rxs {
		n += rx.GoodBytes()
	}
	return n
}

// Aggregates exposes the run-wide O(1) counter sink (for harnesses layered
// on the session and for equality tests against the slow walks).
func (s *Session) Aggregates() *tcp.AggStats { return s.agg }

// Run executes the whole experiment on the engine and returns the report.
func (s *Session) Run() *Report {
	s.Start()
	if sh := s.cfg.Shard; sh != nil {
		sh.Engines.Run(s.cfg.Duration)
	} else {
		s.eng.Run(s.cfg.Duration)
	}
	return s.Finish()
}

// Finish stops the connections, reclaims pooled objects parked past the
// run horizon, and collects the report. Callers that interleave their own
// teardown between the engine run and collection (the apps workloads shut
// their virtual sockets down first) drive Start / eng.Run / Finish
// themselves instead of Run.
func (s *Session) Finish() *Report {
	for _, c := range s.conns {
		c.Stop()
	}
	// The engine halted at the run horizon with deliver/process events
	// still pending; the packets and ACKs those events own are handed back
	// through the hold lists so the pool balances to zero.
	s.path.Reclaim()
	if sh := s.cfg.Shard; sh != nil {
		sh.Wiring.Reclaim(s.cfg.Pool, sh.Pools.Arena(sh.RxShard))
	}
	for _, c := range s.conns {
		c.ReclaimAcks()
	}
	return s.Collect()
}

// Report is the measurement output of one run.
type Report struct {
	// Goodput is the aggregate receiver-side goodput over the
	// measurement interval (duration minus warmup).
	Goodput units.Bandwidth
	// PerConn is each connection's goodput.
	PerConn []units.Bandwidth
	// Retransmits is the total retransmitted segments (iperf3 Retr).
	Retransmits int64
	// Lost is the total segments marked lost by the senders.
	Lost int64
	// AvgRTT is the mean of periodically sampled smoothed RTTs, the way
	// `ss` polling measures it.
	AvgRTT time.Duration
	// MinRTT is the smallest transport min-RTT across connections.
	MinRTT time.Duration
	// AvgCwnd is the mean sampled congestion window (packets).
	AvgCwnd float64
	// AvgSKB / AvgIdle are the per-pacing-period socket-buffer length
	// and idle time averaged across connections (Table 2 columns).
	AvgSKB units.DataSize
	// AvgIdle is the mean pacing idle time per period.
	AvgIdle time.Duration
	// PacingTimerEvents counts pacing-timer activations across conns.
	PacingTimerEvents uint64
	// ExpectedTx is the paper's Table 2 model: skb×conns/idle.
	ExpectedTx units.Bandwidth
	// MaxBufferOcc is the peak total socket-buffer occupancy (§7.1.1).
	MaxBufferOcc units.DataSize
	// CPUUtil is the netstack CPU's busy fraction for the run.
	CPUUtil float64
	// CPUSpeed is the CPU's effective speed at the end of the run.
	CPUSpeed float64
	// PathDrops counts packets dropped anywhere on the path.
	PathDrops uint64
	// AvgNICQueue is the mean device-NIC queue depth in packets.
	AvgNICQueue float64
	// Fairness scores the per-connection goodput split (§7.1.3).
	Fairness fairness.Report
	// CPUBreakdown is each operation's share of netstack-CPU cycles —
	// the §6 overhead evidence (e.g. CPUBreakdown["pacing_timer"]).
	CPUBreakdown map[string]float64
	// Intervals holds the iperf3-style per-interval series when
	// Config.Interval was set.
	Intervals []Interval
	// SpuriousRTOs counts F-RTO-detected spurious timeouts across conns —
	// expected to be nonzero under blackout/handover fault schedules.
	SpuriousRTOs int64
	// IdleRestarts counts RFC 2861 cwnd restarts after idle across conns.
	IdleRestarts int64
	// ConnErrors lists the connections the transport declared dead (RTO
	// retries exhausted, stall watchdog) with their reasons. A dead
	// connection is a measured outcome of the run, not a run failure.
	ConnErrors []error
	// Metrics is the telemetry-registry snapshot when Config.Metrics was
	// set (nil otherwise).
	Metrics *telemetry.Snapshot
	// Pool is the packet/ACK recycler census when Config.Pool was set:
	// how many objects were handed out, how many of those were recycled
	// rather than freshly allocated, and what was still outstanding at
	// collection time (zero after a clean reclaim).
	Pool seg.PoolStats
}

// WriteIntervalsCSV writes the interval series as CSV (start_s, end_s,
// goodput_mbps, retransmits, rtt_ms).
func (r *Report) WriteIntervalsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "start_s,end_s,goodput_mbps,retransmits,rtt_ms"); err != nil {
		return err
	}
	for _, iv := range r.Intervals {
		if _, err := fmt.Fprintf(w, "%.2f,%.2f,%.3f,%d,%.3f\n",
			iv.Start.Seconds(), iv.End.Seconds(),
			float64(iv.Goodput)/1e6, iv.Retransmits,
			float64(iv.AvgRTT)/1e6); err != nil {
			return err
		}
	}
	return nil
}

// Collect gathers the report after the engine has run.
func (s *Session) Collect() *Report {
	dur := s.cfg.Duration - s.cfg.Warmup
	if dur <= 0 {
		dur = s.cfg.Duration
	}
	r := &Report{
		AvgRTT:       time.Duration(s.rttSamples.Mean()),
		AvgCwnd:      s.cwndSamples.Mean(),
		CPUUtil:      s.cpu.TotalUtilization(),
		CPUBreakdown: s.cpu.Breakdown(),
		CPUSpeed:     s.cpu.Speed(),
		PathDrops:    s.path.TotalDrops(),
		AvgNICQueue:  s.queueDepth.Mean(),
	}
	if s.cfg.Metrics != nil {
		r.Metrics = s.cfg.Metrics.Snapshot()
	}
	if sh := s.cfg.Shard; sh != nil {
		// The summed arena census: the same conservation totals as a serial
		// pool, though the Gets/News split differs (arenas allocate
		// independently before rebalancing kicks in).
		r.Pool = sh.Pools.Stats()
	} else if s.cfg.Pool != nil {
		r.Pool = s.cfg.Pool.Stats()
	}
	var goodBytes units.DataSize
	var sumSKB, sumIdle, periods float64
	for i, rx := range s.rxs {
		b := rx.GoodBytes()
		goodBytes += b
		r.PerConn = append(r.PerConn, units.BandwidthFromBytes(b, s.cfg.Duration))
		st := s.conns[i].Stats()
		r.Retransmits += st.Retransmits
		r.Lost += st.Lost
		r.SpuriousRTOs += st.SpuriousRTOs
		r.IdleRestarts += st.IdleRestarts
		if st.Failed != nil {
			r.ConnErrors = append(r.ConnErrors, st.Failed)
		}
		if st.MinRTT > 0 && (r.MinRTT == 0 || st.MinRTT < r.MinRTT) {
			r.MinRTT = st.MinRTT
		}
		r.MaxBufferOcc += st.MaxBufferOcc
		ps := st.PacerStats
		sumSKB += float64(ps.AvgSKB) * float64(ps.Periods)
		sumIdle += float64(ps.AvgIdle) * float64(ps.Periods)
		periods += float64(ps.Periods)
		r.PacingTimerEvents += ps.TimerArms
	}
	goodBytes -= s.warmupBytes
	r.Goodput = units.BandwidthFromBytes(goodBytes, dur)
	r.Fairness = fairness.Score(r.PerConn)
	r.Intervals = s.intervals
	if periods > 0 {
		r.AvgSKB = units.DataSize(sumSKB / periods)
		r.AvgIdle = time.Duration(sumIdle / periods)
		if r.AvgIdle > 0 {
			r.ExpectedTx = units.Bandwidth(
				float64(r.AvgSKB) * 8 * float64(len(s.conns)) / r.AvgIdle.Seconds())
		}
	}
	return r
}
