package iperf

import (
	"strings"
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cc/cubic"
	"mobbr/internal/cc/reno"
	"mobbr/internal/cpumodel"
	"mobbr/internal/netem"
	"mobbr/internal/sim"
	"mobbr/internal/units"
)

func newRig(seed int64) (*sim.Engine, *cpumodel.CPU, *netem.Path) {
	eng := sim.New(seed)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 3e9)
	path, err := netem.EthernetLAN(eng, netem.TC{})
	if err != nil {
		panic(err)
	}
	return eng, cpu, path
}

func mustNew(t *testing.T, eng *sim.Engine, cpu *cpumodel.CPU, path *netem.Path, cfg Config) *Session {
	t.Helper()
	s, err := New(eng, cpu, path, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestSessionBasics(t *testing.T) {
	eng, cpu, path := newRig(1)
	sess := mustNew(t, eng, cpu, path, Config{
		Conns:    4,
		Duration: time.Second,
		CC:       cubic.Factory(),
	})
	if got := len(sess.Conns()); got != 4 {
		t.Fatalf("conns = %d, want 4", got)
	}
	rep := sess.Run()
	if rep.Goodput == 0 {
		t.Fatal("no goodput")
	}
	if len(rep.PerConn) != 4 {
		t.Fatalf("per-conn entries = %d, want 4", len(rep.PerConn))
	}
	var sum units.Bandwidth
	for _, g := range rep.PerConn {
		if g == 0 {
			t.Error("a connection delivered nothing")
		}
		sum += g
	}
	// Per-connection goodputs must roughly add up to the aggregate
	// (warmup is zero here).
	if ratio := float64(sum) / float64(rep.Goodput); ratio < 0.98 || ratio > 1.02 {
		t.Errorf("per-conn sum / aggregate = %v", ratio)
	}
}

func TestWarmupExcluded(t *testing.T) {
	run := func(warmup time.Duration) units.Bandwidth {
		eng, cpu, path := newRig(1)
		sess := mustNew(t, eng, cpu, path, Config{
			Conns:    1,
			Duration: 2 * time.Second,
			Warmup:   warmup,
			CC:       cubic.Factory(),
		})
		return sess.Run().Goodput
	}
	full := run(0)
	warm := run(500 * time.Millisecond)
	// Excluding the slow-start ramp must not *reduce* measured goodput
	// (rates are equal at steady state; the ramp only drags the mean).
	if warm < full-50*units.Mbps {
		t.Errorf("warmup-excluded goodput %v far below full-run %v", warm, full)
	}
}

func TestPressureScalesWithConns(t *testing.T) {
	eng, cpu, path := newRig(1)
	mustNew(t, eng, cpu, path, Config{Conns: 1, Duration: time.Second, CC: cubic.Factory()})
	if cpu.Pressure() != 1 {
		t.Errorf("1-conn pressure = %v, want 1", cpu.Pressure())
	}
	eng2, cpu2, path2 := newRig(1)
	mustNew(t, eng2, cpu2, path2, Config{Conns: 20, Duration: time.Second, CC: cubic.Factory()})
	if cpu2.Pressure() <= 1.1 {
		t.Errorf("20-conn pressure = %v, want > 1.1", cpu2.Pressure())
	}
}

func TestConfigValidation(t *testing.T) {
	eng, cpu, path := newRig(1)
	if _, err := New(eng, cpu, path, Config{Conns: 1, Duration: time.Second}); err == nil {
		t.Fatal("expected error without CC factory")
	}
}

func TestReportFieldsPopulated(t *testing.T) {
	eng, cpu, path := newRig(2)
	sess := mustNew(t, eng, cpu, path, Config{
		Conns:    2,
		Duration: 2 * time.Second,
		CC:       cubic.Factory(),
	})
	rep := sess.Run()
	if rep.AvgRTT <= 0 {
		t.Error("AvgRTT not sampled")
	}
	if rep.MinRTT <= 0 {
		t.Error("MinRTT missing")
	}
	if rep.AvgCwnd <= 0 {
		t.Error("AvgCwnd not sampled")
	}
	if rep.CPUUtil <= 0 || rep.CPUUtil > 1 {
		t.Errorf("CPUUtil = %v out of range", rep.CPUUtil)
	}
	if rep.MaxBufferOcc <= 0 {
		t.Error("MaxBufferOcc missing")
	}
}

func TestStaggerSpreadsStarts(t *testing.T) {
	eng, cpu, path := newRig(3)
	sess := mustNew(t, eng, cpu, path, Config{
		Conns:         10,
		Duration:      time.Second,
		StaggerStarts: 50 * time.Millisecond,
		CC:            cubic.Factory(),
	})
	// All connections must still complete and deliver.
	rep := sess.Run()
	for i, g := range rep.PerConn {
		if g == 0 {
			t.Errorf("conn %d delivered nothing", i)
		}
	}
}

// stubPacingCC forces a known pacing rate to exercise pacing-period stats.
type stubPacingCC struct{}

func (stubPacingCC) Name() string { return "stub" }
func (stubPacingCC) Init(c cc.Conn) {
	c.SetCwnd(200)
	c.SetPacingRate(50 * units.Mbps)
}
func (stubPacingCC) OnAck(c cc.Conn, rs *cc.RateSample) {
	c.SetCwnd(200)
	c.SetPacingRate(50 * units.Mbps)
}
func (stubPacingCC) OnEvent(cc.Conn, cc.Event) {}
func (stubPacingCC) AckCost() float64          { return 100 }
func (stubPacingCC) WantsPacing() bool         { return true }

func TestPacingStatsInReport(t *testing.T) {
	eng, cpu, path := newRig(4)
	sess := mustNew(t, eng, cpu, path, Config{
		Conns:    1,
		Duration: 2 * time.Second,
		CC:       func() cc.CongestionControl { return stubPacingCC{} },
	})
	rep := sess.Run()
	if rep.AvgSKB == 0 || rep.AvgIdle == 0 {
		t.Fatalf("pacing stats missing: skb=%v idle=%v", rep.AvgSKB, rep.AvgIdle)
	}
	if rep.ExpectedTx == 0 {
		t.Error("expected-throughput model not computed")
	}
	// Eq. 1: expected = skb/idle (×1 conn) should be near the 50Mbps
	// pacing rate.
	exp := float64(rep.ExpectedTx) / 1e6
	if exp < 25 || exp > 100 {
		t.Errorf("expected tx = %.1f Mbps, want near 50", exp)
	}
	if rep.PacingTimerEvents == 0 {
		t.Error("no pacing timer events recorded")
	}
}

func TestIntervalSeries(t *testing.T) {
	eng, cpu, path := newRig(5)
	sess := mustNew(t, eng, cpu, path, Config{
		Conns:    2,
		Duration: 2 * time.Second,
		Interval: 500 * time.Millisecond,
		CC:       cubic.Factory(),
	})
	rep := sess.Run()
	if len(rep.Intervals) != 4 {
		t.Fatalf("intervals = %d, want 4", len(rep.Intervals))
	}
	var sum float64
	for i, iv := range rep.Intervals {
		if iv.End-iv.Start != 500*time.Millisecond {
			t.Errorf("interval %d spans %v", i, iv.End-iv.Start)
		}
		if iv.Goodput <= 0 {
			t.Errorf("interval %d has zero goodput", i)
		}
		sum += float64(iv.Goodput)
	}
	// Interval means must average to the whole-run goodput.
	mean := sum / float64(len(rep.Intervals))
	if ratio := mean / float64(rep.Goodput); ratio < 0.95 || ratio > 1.05 {
		t.Errorf("interval mean / total = %v", ratio)
	}
	var buf strings.Builder
	if err := rep.WriteIntervalsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 5 { // header + 4 rows
		t.Errorf("CSV lines = %d, want 5\n%s", lines, buf.String())
	}
}

func TestFairnessInReport(t *testing.T) {
	eng, cpu, path := newRig(6)
	sess := mustNew(t, eng, cpu, path, Config{
		Conns: 4, Duration: 2 * time.Second, CC: cubic.Factory(),
	})
	rep := sess.Run()
	if rep.Fairness.Jain <= 0 || rep.Fairness.Jain > 1 {
		t.Errorf("jain = %v out of range", rep.Fairness.Jain)
	}
	if rep.Fairness.Total != func() (s units.Bandwidth) {
		for _, g := range rep.PerConn {
			s += g
		}
		return
	}() {
		t.Error("fairness total != per-conn sum")
	}
}

func TestCCMixAlternates(t *testing.T) {
	eng, cpu, path := newRig(7)
	sess := mustNew(t, eng, cpu, path, Config{
		Conns:    4,
		Duration: time.Second,
		CCMix:    []cc.Factory{cubic.Factory(), reno.Factory()},
	})
	for i, c := range sess.Conns() {
		want := "cubic"
		if i%2 == 1 {
			want = "reno"
		}
		if got := c.CC().Name(); got != want {
			t.Errorf("conn %d runs %q, want %q", i, got, want)
		}
	}
	rep := sess.Run()
	if rep.Goodput == 0 {
		t.Fatal("mixed session delivered nothing")
	}
}

func TestCPUBreakdownInReport(t *testing.T) {
	eng, cpu, path := newRig(8)
	sess := mustNew(t, eng, cpu, path, Config{
		Conns: 2, Duration: time.Second,
		CC: func() cc.CongestionControl { return stubPacingCC{} },
	})
	rep := sess.Run()
	if len(rep.CPUBreakdown) == 0 {
		t.Fatal("no CPU breakdown")
	}
	var total float64
	for op, f := range rep.CPUBreakdown {
		if f <= 0 || f > 1 {
			t.Errorf("breakdown[%s] = %v out of range", op, f)
		}
		total += f
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("breakdown sums to %v, want 1", total)
	}
	if rep.CPUBreakdown["pacing_timer"] == 0 {
		t.Error("paced run shows no pacing_timer share")
	}
}
