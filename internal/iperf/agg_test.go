package iperf

import (
	"testing"
	"time"

	"mobbr/internal/cc/cubic"
)

// TestAggregateMatchesSlowWalk is the O(1)-counter equality gate: the
// run-wide AggStats counters that the periodic paths read must be
// integer-identical to the O(conns) walks they replaced — goodput against
// the per-receiver sum, retransmits against the per-conn stats sum.
func TestAggregateMatchesSlowWalk(t *testing.T) {
	for _, conns := range []int{1, 4, 16} {
		eng, cpu, path := newRig(1)
		sess := mustNew(t, eng, cpu, path, Config{
			Conns:    conns,
			Duration: 2 * time.Second,
			Interval: 100 * time.Millisecond,
			CC:       cubic.Factory(),
		})
		rep := sess.Run()
		if rep.Goodput == 0 {
			t.Fatalf("conns=%d: no goodput", conns)
		}
		agg := sess.Aggregates()
		if got, want := agg.GoodBytes(), sess.totalGoodBytes(); got != want {
			t.Errorf("conns=%d: aggregate good bytes %d != receiver walk %d", conns, got, want)
		}
		var retx int64
		for _, c := range sess.Conns() {
			retx += c.Stats().Retransmits
		}
		if got := agg.Retransmits(); got != retx {
			t.Errorf("conns=%d: aggregate retransmits %d != conn walk %d", conns, got, retx)
		}
		if agg.RTTSamples() == 0 || agg.AvgRTT() <= 0 {
			t.Errorf("conns=%d: aggregate RTT empty (%d samples, avg %v)",
				conns, agg.RTTSamples(), agg.AvgRTT())
		}
	}
}
