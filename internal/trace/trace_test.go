package trace

import (
	"strings"
	"testing"
	"time"

	"mobbr/internal/cc/bbr"
	"mobbr/internal/cc/cubic"
	"mobbr/internal/cpumodel"
	"mobbr/internal/device"
	"mobbr/internal/iperf"
	"mobbr/internal/netem"
	"mobbr/internal/sim"
	"mobbr/internal/tcp"
)

func TestBBRModeTrajectory(t *testing.T) {
	eng := sim.New(1)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 2.8e9)
	path, err := netem.EthernetLAN(eng, netem.TC{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := iperf.New(eng, cpu, path, iperf.Config{
		Conns: 1, Duration: 3 * time.Second, TCP: tcp.Config{}, CC: bbr.Factory(),
	})
	rec := New(eng, sess.Conns(), time.Millisecond)
	rec.Start()
	sess.Run()

	modes := rec.Modes(0)
	if len(modes) < 2 {
		t.Fatalf("mode trajectory too short: %v", modes)
	}
	if modes[0] != "STARTUP" {
		t.Errorf("first mode = %q, want STARTUP", modes[0])
	}
	sawProbeBW := false
	for _, m := range modes {
		if m == "PROBE_BW" {
			sawProbeBW = true
		}
	}
	if !sawProbeBW {
		t.Errorf("never reached PROBE_BW: %v", modes)
	}
	// STARTUP must not recur after leaving (only PROBE_RTT may re-enter
	// it, and only if the pipe was never filled).
	left := false
	for _, m := range modes {
		if m != "STARTUP" {
			left = true
		} else if left {
			t.Errorf("STARTUP recurred after full pipe: %v", modes)
		}
	}
}

func TestSamplesMonotoneAndComplete(t *testing.T) {
	eng := sim.New(2)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 2.8e9)
	path, err := netem.EthernetLAN(eng, netem.TC{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := iperf.New(eng, cpu, path, iperf.Config{
		Conns: 3, Duration: time.Second, TCP: tcp.Config{}, CC: cubic.Factory(),
	})
	rec := New(eng, sess.Conns(), 100*time.Millisecond)
	rec.Start()
	sess.Run()

	all := rec.Samples()
	// Ticks at t=0 (initial state), 100ms, …, 1000ms inclusive.
	if len(all) != 3*11 {
		t.Fatalf("samples = %d, want 33 (3 conns × 11 ticks incl. t=0)", len(all))
	}
	if all[0].At != 0 {
		t.Errorf("first sample at %v, want t=0", all[0].At)
	}
	var last time.Duration
	for _, s := range all {
		if s.At < last {
			t.Fatal("samples out of time order")
		}
		last = s.At
		if s.Mode != "" {
			t.Errorf("cubic reported a BBR mode %q", s.Mode)
		}
		if s.CwndPkts <= 0 {
			t.Errorf("non-positive cwnd sample")
		}
	}
	if got := len(rec.ConnSamples(1)); got != 11 {
		t.Errorf("conn 1 samples = %d, want 11", got)
	}
}

func TestWriteCSV(t *testing.T) {
	eng := sim.New(3)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 2.8e9)
	path, err := netem.EthernetLAN(eng, netem.TC{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := iperf.New(eng, cpu, path, iperf.Config{
		Conns: 1, Duration: 500 * time.Millisecond, TCP: tcp.Config{}, CC: bbr.Factory(),
	})
	rec := New(eng, sess.Conns(), 100*time.Millisecond)
	rec.Start()
	sess.Run()

	var buf strings.Builder
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(rec.Samples()) {
		t.Fatalf("CSV lines = %d, want %d", len(lines), 1+len(rec.Samples()))
	}
	if !strings.HasPrefix(lines[0], "t_s,conn,") {
		t.Errorf("bad header: %q", lines[0])
	}
	hasMode := strings.Contains(buf.String(), "STARTUP") ||
		strings.Contains(buf.String(), "PROBE_BW") ||
		strings.Contains(buf.String(), "DRAIN")
	if !hasMode {
		t.Errorf("CSV lacks BBR mode column content:\n%s", buf.String())
	}
}

func TestDefaultPeriod(t *testing.T) {
	eng := sim.New(4)
	rec := New(eng, nil, 0)
	if rec.period != 50*time.Millisecond {
		t.Errorf("default period = %v, want 50ms", rec.period)
	}
}

// Pixel-device smoke: tracing works against the full device stack too.
func TestTraceOnDeviceStack(t *testing.T) {
	eng := sim.New(5)
	cpu, app := device.NewCPUs(eng, device.Pixel4, device.LowEnd)
	path, err := netem.EthernetLAN(eng, netem.TC{})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := iperf.New(eng, cpu, path, iperf.Config{
		Conns: 2, Duration: time.Second, TCP: tcp.Config{}, CC: bbr.Factory(), AppCPU: app,
	})
	rec := New(eng, sess.Conns(), 50*time.Millisecond)
	rec.Start()
	sess.Run()
	if len(rec.Samples()) == 0 {
		t.Fatal("no samples on device stack")
	}
}
