// Package trace records per-connection time series from a running
// experiment — congestion window, pacing rate, smoothed RTT, inflight, and
// the BBR state-machine mode — for debugging, verification, and plotting.
// It is the simulation-side analogue of polling `ss -ti` during an iPerf
// run.
//
// The recorder is a thin compatibility wrapper over the telemetry bus:
// every observation is a telemetry.KindSample event, so `-trace` JSONL
// output and the CSV/plotting API read from the same stream. Attach a
// shared bus with SetBus to interleave samples with transport events; the
// recorder otherwise runs a private bus.
package trace

import (
	"fmt"
	"io"
	"time"

	"mobbr/internal/cc/bbr"
	"mobbr/internal/cc/bbrv2"
	"mobbr/internal/sim"
	"mobbr/internal/tcp"
	"mobbr/internal/telemetry"
)

// Sample is one observation of one connection.
type Sample struct {
	// At is the virtual time of the observation.
	At time.Duration
	// Conn is the flow id.
	Conn int
	// CwndPkts is the congestion window in packets.
	CwndPkts int
	// Inflight is packets in flight.
	Inflight int
	// PacingMbps is the pacing rate in Mbps (0 when unset).
	PacingMbps float64
	// SRTTms is the smoothed RTT in milliseconds.
	SRTTms float64
	// Mode is the BBR/BBRv2 state-machine mode ("" for other CCs).
	Mode string
}

// Recorder samples a set of connections on a fixed period.
type Recorder struct {
	eng    *sim.Engine
	conns  []*tcp.Conn
	period time.Duration
	bus    *telemetry.Bus
}

// New returns a recorder for conns sampling every period (default 50 ms).
// Call Start to begin.
func New(eng *sim.Engine, conns []*tcp.Conn, period time.Duration) *Recorder {
	if period <= 0 {
		period = 50 * time.Millisecond
	}
	return &Recorder{eng: eng, conns: conns, period: period}
}

// SetBus directs samples onto a shared telemetry bus instead of a private
// one. Call before Start.
func (r *Recorder) SetBus(b *telemetry.Bus) { r.bus = b }

// Start schedules periodic sampling. The first sample is taken at t=0 (well,
// at Start's virtual time) so traces capture the initial state — cwnd at
// IW, mode at STARTUP — not the state one period in.
func (r *Recorder) Start() {
	if r.bus == nil {
		r.bus = telemetry.NewBus(r.eng, telemetry.DefaultMaxEvents)
	}
	r.eng.Schedule(0, r.tick)
}

func (r *Recorder) tick() {
	for _, c := range r.conns {
		st := c.Stats()
		r.bus.Emit(telemetry.Event{
			Kind:  telemetry.KindSample,
			Conn:  c.ID(),
			New:   ccMode(c),
			Value: float64(st.Cwnd),
			V2:    float64(c.PacketsInFlight()),
			V3:    float64(st.PacingRate) / 1e6,
			V4:    float64(st.SRTT) / 1e6,
		})
	}
	r.eng.Schedule(r.period, r.tick)
}

// ccMode extracts the state-machine mode from BBR-family modules.
func ccMode(c *tcp.Conn) string {
	switch m := c.CC().(type) {
	case *bbr.BBR:
		return m.Mode().String()
	case *bbrv2.BBRv2:
		return m.Mode().String() + "/" + m.CurrentPhase().String()
	default:
		return ""
	}
}

// Samples returns all recorded samples in time order, decoded from the
// bus's KindSample events.
func (r *Recorder) Samples() []Sample {
	events := r.bus.Filter(telemetry.KindSample)
	out := make([]Sample, 0, len(events))
	for _, e := range events {
		out = append(out, Sample{
			At:         e.At,
			Conn:       e.Conn,
			CwndPkts:   int(e.Value),
			Inflight:   int(e.V2),
			PacingMbps: e.V3,
			SRTTms:     e.V4,
			Mode:       e.New,
		})
	}
	return out
}

// ConnSamples returns the samples of one connection, in time order.
func (r *Recorder) ConnSamples(id int) []Sample {
	var out []Sample
	for _, s := range r.Samples() {
		if s.Conn == id {
			out = append(out, s)
		}
	}
	return out
}

// Modes returns the distinct mode strings of one connection in first-seen
// order — the observed state-machine trajectory.
func (r *Recorder) Modes(id int) []string {
	var out []string
	seen := ""
	for _, s := range r.ConnSamples(id) {
		if s.Mode != "" && s.Mode != seen {
			out = append(out, s.Mode)
			seen = s.Mode
		}
	}
	return out
}

// WriteCSV writes every sample as CSV (t_s, conn, cwnd, inflight,
// pacing_mbps, srtt_ms, mode).
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_s,conn,cwnd,inflight,pacing_mbps,srtt_ms,mode"); err != nil {
		return err
	}
	for _, s := range r.Samples() {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%d,%d,%.2f,%.3f,%s\n",
			s.At.Seconds(), s.Conn, s.CwndPkts, s.Inflight,
			s.PacingMbps, s.SRTTms, s.Mode); err != nil {
			return err
		}
	}
	return nil
}
