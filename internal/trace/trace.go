// Package trace records per-connection time series from a running
// experiment — congestion window, pacing rate, smoothed RTT, inflight, and
// the BBR state-machine mode — for debugging, verification, and plotting.
// It is the simulation-side analogue of polling `ss -ti` during an iPerf
// run.
package trace

import (
	"fmt"
	"io"
	"time"

	"mobbr/internal/cc/bbr"
	"mobbr/internal/cc/bbrv2"
	"mobbr/internal/sim"
	"mobbr/internal/tcp"
)

// Sample is one observation of one connection.
type Sample struct {
	// At is the virtual time of the observation.
	At time.Duration
	// Conn is the flow id.
	Conn int
	// CwndPkts is the congestion window in packets.
	CwndPkts int
	// Inflight is packets in flight.
	Inflight int
	// PacingMbps is the pacing rate in Mbps (0 when unset).
	PacingMbps float64
	// SRTTms is the smoothed RTT in milliseconds.
	SRTTms float64
	// Mode is the BBR/BBRv2 state-machine mode ("" for other CCs).
	Mode string
}

// Recorder samples a set of connections on a fixed period.
type Recorder struct {
	eng    *sim.Engine
	conns  []*tcp.Conn
	period time.Duration

	samples []Sample
}

// New returns a recorder for conns sampling every period (default 50 ms).
// Call Start to begin.
func New(eng *sim.Engine, conns []*tcp.Conn, period time.Duration) *Recorder {
	if period <= 0 {
		period = 50 * time.Millisecond
	}
	return &Recorder{eng: eng, conns: conns, period: period}
}

// Start schedules periodic sampling.
func (r *Recorder) Start() {
	r.eng.Schedule(r.period, r.tick)
}

func (r *Recorder) tick() {
	now := r.eng.Now()
	for _, c := range r.conns {
		st := c.Stats()
		s := Sample{
			At:         now,
			Conn:       c.ID(),
			CwndPkts:   st.Cwnd,
			Inflight:   c.PacketsInFlight(),
			PacingMbps: float64(st.PacingRate) / 1e6,
			SRTTms:     float64(st.SRTT) / 1e6,
			Mode:       ccMode(c),
		}
		r.samples = append(r.samples, s)
	}
	r.eng.Schedule(r.period, r.tick)
}

// ccMode extracts the state-machine mode from BBR-family modules.
func ccMode(c *tcp.Conn) string {
	switch m := c.CC().(type) {
	case *bbr.BBR:
		return m.Mode().String()
	case *bbrv2.BBRv2:
		return m.Mode().String() + "/" + m.CurrentPhase().String()
	default:
		return ""
	}
}

// Samples returns all recorded samples in time order.
func (r *Recorder) Samples() []Sample { return r.samples }

// ConnSamples returns the samples of one connection, in time order.
func (r *Recorder) ConnSamples(id int) []Sample {
	var out []Sample
	for _, s := range r.samples {
		if s.Conn == id {
			out = append(out, s)
		}
	}
	return out
}

// Modes returns the distinct mode strings of one connection in first-seen
// order — the observed state-machine trajectory.
func (r *Recorder) Modes(id int) []string {
	var out []string
	seen := ""
	for _, s := range r.ConnSamples(id) {
		if s.Mode != "" && s.Mode != seen {
			out = append(out, s.Mode)
			seen = s.Mode
		}
	}
	return out
}

// WriteCSV writes every sample as CSV (t_s, conn, cwnd, inflight,
// pacing_mbps, srtt_ms, mode).
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_s,conn,cwnd,inflight,pacing_mbps,srtt_ms,mode"); err != nil {
		return err
	}
	for _, s := range r.samples {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%d,%d,%.2f,%.3f,%s\n",
			s.At.Seconds(), s.Conn, s.CwndPkts, s.Inflight,
			s.PacingMbps, s.SRTTms, s.Mode); err != nil {
			return err
		}
	}
	return nil
}
