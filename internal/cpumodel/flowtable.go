package cpumodel

// FlowTable is the fast-path/slow-path flow-demux cost model from the
// SmartNIC offload literature: the NIC (or a software flow cache) holds a
// bounded table of offloaded flows whose per-packet lookup is cheap; every
// other flow pays the software slow path. A flow is promoted into the fast
// path once it has shown `threshold` lookups (the per-flow offload
// threshold — mice never amortize an offload insertion, elephants do) and
// there is a free slot. Retired flows must be removed so churn does not
// permanently exhaust the table.
//
// The table does not schedule work itself: the transport asks LookupCost
// per arriving ACK and charges the returned cycles to the CPU. All state is
// deterministic — maps are only read/written by key, never iterated.
type FlowTable struct {
	slots     int
	threshold int
	costFast  float64
	costSlow  float64

	fast map[int]struct{} // offloaded flows
	pkts map[int]int      // slow-path lookups seen per live flow

	fastHits   uint64
	slowHits   uint64
	promotions uint64
	occHW      int
}

// NewFlowTable builds a table with the given fast-path capacity and
// promotion threshold, drawing lookup costs from the table. slots <= 0
// means no fast path at all (every lookup is slow); threshold <= 0
// promotes on first sight.
func NewFlowTable(slots, threshold int, costs Costs) *FlowTable {
	return &FlowTable{
		slots:     slots,
		threshold: threshold,
		costFast:  costs.FlowLookupFast,
		costSlow:  costs.FlowLookupSlow,
		fast:      make(map[int]struct{}),
		pkts:      make(map[int]int),
	}
}

// LookupCost accounts one demux for flow and returns its cycle cost: the
// fast-path cost when the flow is offloaded, otherwise the slow-path cost —
// counting the lookup toward promotion.
func (t *FlowTable) LookupCost(flow int) float64 {
	if _, ok := t.fast[flow]; ok {
		t.fastHits++
		return t.costFast
	}
	t.slowHits++
	n := t.pkts[flow] + 1
	t.pkts[flow] = n
	if n >= t.threshold && t.slots > 0 && len(t.fast) < t.slots {
		t.fast[flow] = struct{}{}
		t.promotions++
		delete(t.pkts, flow)
		if occ := len(t.fast); occ > t.occHW {
			t.occHW = occ
		}
	}
	return t.costSlow
}

// Remove retires a flow, freeing its fast-path slot (if any) for the next
// promotion. Call on flow completion; without it churn leaks slots.
func (t *FlowTable) Remove(flow int) {
	delete(t.fast, flow)
	delete(t.pkts, flow)
}

// FlowTableStats is a snapshot of the table's accounting.
type FlowTableStats struct {
	// FastHits / SlowHits count lookups by path taken.
	FastHits, SlowHits uint64
	// Promotions counts slow→fast offload insertions.
	Promotions uint64
	// Occupied is the current fast-path occupancy; OccupancyHW its
	// high-water mark; Slots the capacity.
	Occupied, OccupancyHW, Slots int
}

// FastShare returns the fraction of lookups served by the fast path.
func (s FlowTableStats) FastShare() float64 {
	total := s.FastHits + s.SlowHits
	if total == 0 {
		return 0
	}
	return float64(s.FastHits) / float64(total)
}

// Stats returns a snapshot of the table's accounting.
func (t *FlowTable) Stats() FlowTableStats {
	return FlowTableStats{
		FastHits: t.fastHits, SlowHits: t.slowHits, Promotions: t.promotions,
		Occupied: len(t.fast), OccupancyHW: t.occHW, Slots: t.slots,
	}
}
