package cpumodel

import (
	"testing"
	"time"

	"mobbr/internal/sim"
)

func TestSubmitSerializes(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1e6) // 1e6 cycles/s → 1 cycle = 1µs
	var done []time.Duration
	cpu.Submit(OpSegXmit, 1000, func() { done = append(done, eng.Now()) })
	cpu.Submit(OpSegXmit, 2000, func() { done = append(done, eng.Now()) })
	eng.Run(time.Second)
	if len(done) != 2 {
		t.Fatalf("completions = %d, want 2", len(done))
	}
	if done[0] != time.Millisecond {
		t.Errorf("first job done at %v, want 1ms", done[0])
	}
	if done[1] != 3*time.Millisecond {
		t.Errorf("second job done at %v, want 3ms (serialized)", done[1])
	}
}

func TestSubmitAfterIdleStartsImmediately(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1e6)
	cpu.Submit(OpSegXmit, 1000, nil)
	var at time.Duration
	eng.Schedule(10*time.Millisecond, func() {
		cpu.Submit(OpSegXmit, 500, func() { at = eng.Now() })
	})
	eng.Run(time.Second)
	if want := 10*time.Millisecond + 500*time.Microsecond; at != want {
		t.Errorf("job done at %v, want %v", at, want)
	}
}

func TestQueueDelay(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1e6)
	if cpu.QueueDelay() != 0 {
		t.Fatal("idle CPU should have zero queue delay")
	}
	cpu.Submit(OpSegXmit, 5000, nil)
	if got := cpu.QueueDelay(); got != 5*time.Millisecond {
		t.Fatalf("queue delay = %v, want 5ms", got)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1e6)
	cpu.Submit(OpSegXmit, 5000, nil) // 5ms of work
	eng.Run(10 * time.Millisecond)
	util := cpu.WindowUtilization()
	if util < 0.49 || util > 0.51 {
		t.Errorf("window utilization = %v, want ~0.5", util)
	}
	// Window reset: no new work → zero.
	eng.Run(20 * time.Millisecond)
	if got := cpu.WindowUtilization(); got != 0 {
		t.Errorf("second window utilization = %v, want 0", got)
	}
	if tu := cpu.TotalUtilization(); tu < 0.24 || tu > 0.26 {
		t.Errorf("total utilization = %v, want ~0.25", tu)
	}
}

func TestUtilizationNeverExceedsOne(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1e6)
	// Queue 100ms of work into a 10ms window.
	cpu.Submit(OpSegXmit, 100000, nil)
	eng.Run(10 * time.Millisecond)
	if got := cpu.WindowUtilization(); got > 1 {
		t.Errorf("window utilization = %v, must be <= 1", got)
	}
	if got := cpu.TotalUtilization(); got > 1 {
		t.Errorf("total utilization = %v, must be <= 1", got)
	}
}

func TestOpAccounting(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1e9)
	cpu.SubmitOp(OpPacingTimer, nil)
	cpu.SubmitOp(OpPacingTimer, nil)
	cpu.Submit(OpAckProcess, 123, nil)
	if got := cpu.OpCount(OpPacingTimer); got != 2 {
		t.Errorf("OpCount(pacing_timer) = %d, want 2", got)
	}
	if got := cpu.OpCycles(OpPacingTimer); got != 2*DefaultCosts().PacingTimer {
		t.Errorf("OpCycles(pacing_timer) = %v", got)
	}
	if got := cpu.OpCycles(OpAckProcess); got != 123 {
		t.Errorf("OpCycles(ack_process) = %v, want 123", got)
	}
}

func TestSetSpeedAffectsFutureJobs(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1e6)
	var first, second time.Duration
	cpu.Submit(OpSegXmit, 1000, func() { first = eng.Now() })
	eng.Run(5 * time.Millisecond)
	cpu.SetSpeed(2e6)
	cpu.Submit(OpSegXmit, 1000, func() { second = eng.Now() })
	eng.Run(time.Second)
	if first != time.Millisecond {
		t.Errorf("first done at %v, want 1ms", first)
	}
	if want := 5*time.Millisecond + 500*time.Microsecond; second != want {
		t.Errorf("second done at %v, want %v (doubled speed)", second, want)
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	eng := sim.New(1)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero speed", func() { NewCPU(eng, DefaultCosts(), 0) })
	cpu := NewCPU(eng, DefaultCosts(), 1e6)
	mustPanic("negative cycles", func() { cpu.Submit(OpSegXmit, -1, nil) })
	mustPanic("SetSpeed zero", func() { cpu.SetSpeed(0) })
}

func TestFixedGovernor(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1)
	g := FixedGovernor{Point: OperatingPoint{FreqHz: 576e6, IPC: 0.55}}
	g.Start(eng, cpu)
	if want := 576e6 * 0.55; cpu.Speed() != want {
		t.Errorf("speed = %v, want %v", cpu.Speed(), want)
	}
	if g.Name() != "userspace" {
		t.Errorf("name = %q", g.Name())
	}
}

func TestSchedutilRampsUpUnderLoad(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1)
	points := []OperatingPoint{
		{FreqHz: 300e6, IPC: 1},
		{FreqHz: 600e6, IPC: 1},
		{FreqHz: 1200e6, IPC: 1},
	}
	g := &SchedutilGovernor{Points: points}
	g.Start(eng, cpu)
	if cpu.Speed() != 300e6 {
		t.Fatalf("boot speed = %v, want lowest point", cpu.Speed())
	}
	// Saturate: a generator that always keeps the CPU busy.
	var load func()
	load = func() {
		cpu.Submit(OpSegXmit, 300e6*0.002, func() {}) // 2ms of work at lowest point
		eng.Schedule(time.Millisecond, load)
	}
	eng.Schedule(0, load)
	eng.Run(500 * time.Millisecond)
	if cpu.Speed() != 1200e6 {
		t.Errorf("speed under saturation = %v, want max 1200e6", cpu.Speed())
	}
}

func TestSchedutilStepsDownWithHysteresis(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1)
	points := []OperatingPoint{
		{FreqHz: 300e6, IPC: 1},
		{FreqHz: 600e6, IPC: 1},
		{FreqHz: 1200e6, IPC: 1},
	}
	g := &SchedutilGovernor{Points: points, Interval: 10 * time.Millisecond}
	g.Start(eng, cpu)
	// Saturate for a while to reach max…
	stop := 200 * time.Millisecond
	var load func()
	load = func() {
		if eng.Now() < stop {
			cpu.Submit(OpSegXmit, cpu.Speed()*0.002, func() {})
			eng.Schedule(time.Millisecond, load)
		}
	}
	eng.Schedule(0, load)
	eng.Run(stop)
	if cpu.Speed() != 1200e6 {
		t.Fatalf("did not reach max under load: %v", cpu.Speed())
	}
	// …then go idle: one evaluation later it must have stepped down at
	// most one level.
	eng.Run(stop + 12*time.Millisecond)
	if cpu.Speed() < 600e6 {
		t.Errorf("dropped more than one step in one interval: %v", cpu.Speed())
	}
	// Long idle → returns to minimum.
	eng.Run(stop + 500*time.Millisecond)
	if cpu.Speed() != 300e6 {
		t.Errorf("idle steady-state speed = %v, want 300e6", cpu.Speed())
	}
}

func TestOperatingPointSpeed(t *testing.T) {
	p := OperatingPoint{FreqHz: 2.8e9, IPC: 1.15, Big: true}
	if got, want := p.Speed(), 2.8e9*1.15; got < want*0.999999 || got > want*1.000001 {
		t.Errorf("Speed() = %v, want %v", got, want)
	}
}

func TestOpString(t *testing.T) {
	if OpPacingTimer.String() != "pacing_timer" {
		t.Errorf("OpPacingTimer.String() = %q", OpPacingTimer.String())
	}
	if Op(99).String() != "unknown" {
		t.Errorf("out-of-range op should be unknown")
	}
}

func TestBreakdownSharesSumToOne(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1e9)
	if len(cpu.Breakdown()) != 0 {
		t.Fatal("breakdown should be empty before any work")
	}
	cpu.SubmitOp(OpPacingTimer, nil)
	cpu.SubmitOp(OpAckProcess, nil)
	cpu.Submit(OpSegXmit, 1000, nil)
	bd := cpu.Breakdown()
	var sum float64
	for _, f := range bd {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown sums to %v", sum)
	}
	c := DefaultCosts()
	wantTimer := c.PacingTimer / (c.PacingTimer + c.AckProcess + 1000)
	if got := bd["pacing_timer"]; got < wantTimer*0.99 || got > wantTimer*1.01 {
		t.Errorf("pacing_timer share = %v, want %v", got, wantTimer)
	}
}

func TestPressureScalesServiceTime(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1e6)
	cpu.SetPressure(2)
	var done time.Duration
	cpu.Submit(OpSegXmit, 1000, func() { done = eng.Now() })
	eng.Run(time.Second)
	if done != 2*time.Millisecond {
		t.Errorf("job with pressure 2 done at %v, want 2ms", done)
	}
	cpu.SetPressure(0.5) // clamps to 1
	if cpu.Pressure() != 1 {
		t.Errorf("pressure clamped to %v, want 1", cpu.Pressure())
	}
}
