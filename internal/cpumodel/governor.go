package cpumodel

import (
	"time"

	"mobbr/internal/sim"
)

// OperatingPoint is one DVFS step: a clock frequency on a particular core
// type with that core's IPC factor. Effective speed = FreqHz × IPC.
type OperatingPoint struct {
	FreqHz float64
	// IPC is the instructions-per-cycle factor relative to the reference
	// core the Costs table was calibrated on.
	IPC float64
	// Big marks the point as belonging to a BIG core in a big.LITTLE
	// topology.
	Big bool
}

// Speed returns the effective speed in reference cycles per second.
func (p OperatingPoint) Speed() float64 { return p.FreqHz * p.IPC }

// Governor controls the operating point of a CPU cluster over time,
// mirroring the paper's Table 1 configurations: the userspace governor pins
// a frequency; the default governor scales dynamically with load. Linux
// cpufreq policies are per cluster, so one governor drives every core in
// the cluster at the same frequency, reacting to the busiest core.
type Governor interface {
	// Start installs the governor on the cluster's CPUs and begins any
	// periodic frequency re-evaluation.
	Start(eng *sim.Engine, cpus ...*CPU)
	// Name identifies the governor for reporting.
	Name() string
}

// FixedGovernor pins a single operating point for the whole run, like the
// Linux "userspace" governor the paper uses for Low/Mid/High-End configs.
type FixedGovernor struct {
	Point OperatingPoint
}

// Name implements Governor.
func (g FixedGovernor) Name() string { return "userspace" }

// Start implements Governor.
func (g FixedGovernor) Start(_ *sim.Engine, cpus ...*CPU) {
	for _, cpu := range cpus {
		cpu.SetSpeed(g.Point.Speed())
	}
}

// SchedutilGovernor approximates the schedutil/EAS behaviour of the stock
// Default configuration: every Interval it measures utilization and picks
// the lowest operating point whose capacity covers demand/TargetUtil, with
// one-step-down hysteresis so the frequency does not thrash. The netstack's
// softirq work stays within the provided Points pool (on Pixels under EAS
// that is the LITTLE cluster unless the load is extreme).
type SchedutilGovernor struct {
	// Points must be sorted by ascending Speed().
	Points []OperatingPoint
	// Interval between evaluations; 16ms if zero (roughly the kernel's
	// rate limit + PELT reaction time).
	Interval time.Duration
	// TargetUtil is the utilization the governor aims to stay below;
	// 0.80 if zero.
	TargetUtil float64

	cpus []*CPU
	eng  *sim.Engine
	cur  int
}

// Name implements Governor.
func (g *SchedutilGovernor) Name() string { return "schedutil" }

// Start implements Governor.
func (g *SchedutilGovernor) Start(eng *sim.Engine, cpus ...*CPU) {
	if len(g.Points) == 0 {
		panic("cpumodel: SchedutilGovernor with no operating points")
	}
	if len(cpus) == 0 {
		panic("cpumodel: SchedutilGovernor needs at least one CPU")
	}
	if g.Interval <= 0 {
		g.Interval = 16 * time.Millisecond
	}
	if g.TargetUtil <= 0 {
		g.TargetUtil = 0.80
	}
	g.eng, g.cpus = eng, cpus
	// Boot at the lowest point, as an idle phone would sit before the
	// transfer starts.
	g.cur = 0
	for _, cpu := range cpus {
		cpu.SetSpeed(g.Points[0].Speed())
		cpu.WindowUtilization() // reset the window
	}
	eng.Schedule(g.Interval, g.tick)
}

func (g *SchedutilGovernor) tick() {
	// The cluster follows its busiest core.
	util := 0.0
	for _, cpu := range g.cpus {
		if u := cpu.WindowUtilization(); u > util {
			util = u
		}
	}
	demand := util * g.Points[g.cur].Speed() / g.TargetUtil
	// Pick the lowest point that covers demand.
	next := len(g.Points) - 1
	for i, p := range g.Points {
		if p.Speed() >= demand {
			next = i
			break
		}
	}
	// Hysteresis: step down one level at a time so a transient dip does
	// not crater the frequency mid-transfer.
	if next < g.cur-1 {
		next = g.cur - 1
	}
	if next != g.cur {
		g.cur = next
		for _, cpu := range g.cpus {
			cpu.SetSpeed(g.Points[g.cur].Speed())
		}
	}
	g.eng.Schedule(g.Interval, g.tick)
}

// CurrentPoint returns the operating point the governor last selected.
func (g *SchedutilGovernor) CurrentPoint() OperatingPoint { return g.Points[g.cur] }
