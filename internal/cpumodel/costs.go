// Package cpumodel simulates the phone's network-stack CPU: a serial
// resource that executes every TCP operation (segment transmission, ACK
// processing, congestion-control model updates, pacing-timer callbacks) with
// a per-operation cycle cost. Frequency governors (fixed or schedutil-like)
// set how fast cycles retire.
//
// The cost table is the calibration surface of the whole reproduction: the
// paper measures real phones, we measure a model, and these constants are
// chosen so the model's goodput matches the paper's *shape* (see DESIGN.md
// §5 and EXPERIMENTS.md). Costs are expressed in reference cycles — cycles
// on a core with IPC factor 1.0; a real core retires them at
// freq × IPCFactor reference cycles per second.
package cpumodel

// Op identifies a class of network-stack work charged to the CPU.
type Op int

// Operations charged to the netstack CPU.
const (
	// OpSegXmit is the per-MSS-segment transmit path: TCP header build,
	// IP, qdisc, driver DMA setup.
	OpSegXmit Op = iota
	// OpSKBXmit is the fixed per-skb overhead of a transmit call
	// (tcp_write_xmit entry, skb alloc/clone, socket lock).
	OpSKBXmit
	// OpPacingTimer is one internal-pacing event: hrtimer programming,
	// expiry interrupt, TSQ tasklet reschedule, and re-entry into
	// tcp_write_xmit. This is the overhead §6.1 of the paper identifies.
	OpPacingTimer
	// OpAckProcess is the tcp_ack fast path for one incoming ACK:
	// scoreboard update, rtt sample, window accounting.
	OpAckProcess
	// OpCCUpdate is the congestion-control module's per-ACK work; its
	// magnitude is supplied by the CC (BBR's model update is heavier
	// than Cubic's AIMD step).
	OpCCUpdate
	// OpRetransmit is the extra work to queue one retransmission
	// (scoreboard walk, skb requeue).
	OpRetransmit
	// OpRTO is a retransmission-timeout firing.
	OpRTO
	// OpDataCopy is the tcp_sendmsg copy-from-user work, charged per
	// byte on the application core (not the softirq core).
	OpDataCopy
	// OpFlowLookup is the per-ACK flow-table demux: a hash-slot hit on
	// the offloaded fast path, or a slow-path walk for flows below the
	// offload threshold (see FlowTable). Only charged when a flow table
	// is attached — classic iperf runs never pay it.
	OpFlowLookup
	numOps
)

var opNames = [numOps]string{
	"seg_xmit", "skb_xmit", "pacing_timer", "ack_process", "cc_update",
	"retransmit", "rto", "data_copy", "flow_lookup",
}

// String returns the operation's short name.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opNames) {
		return "unknown"
	}
	return opNames[o]
}

// Costs is the per-operation cycle-cost table, in reference cycles.
type Costs struct {
	SegXmit     float64
	SKBXmit     float64
	PacingTimer float64
	AckProcess  float64
	// AckPerSeg is the per-acked-packet scoreboard walk
	// (tcp_clean_rtx_queue frees one skb per segment), charged on top
	// of AckProcess for every packet an ACK covers.
	AckPerSeg  float64
	Retransmit float64
	RTO        float64
	// CopyPerByte is the tcp_sendmsg copy+checksum cost per payload
	// byte, executed in process context on the application core.
	CopyPerByte float64
	// FlowLookupFast / FlowLookupSlow are the per-ACK flow-table demux
	// costs: a perfect-hash hit in the offloaded table versus the
	// software slow-path walk (FlowTable decides which applies).
	FlowLookupFast float64
	FlowLookupSlow float64
}

// DefaultCosts returns the calibrated cost table. The values were fitted so
// that the simulated Pixel 4 reproduces the paper's Figure 2 anchors:
// Low-End Cubic ≈ 364 Mbps (1 conn), Low-End BBR ≈ 325 Mbps (1 conn) and
// ≈ 138 Mbps (20 conns), High-End ≥ 915 Mbps for both. PacingTimer dominates:
// on an in-order LITTLE core the hrtimer + tasklet + socket-reprocessing
// path runs with cold caches and is tens of microseconds, which is the
// paper's central observation.
func DefaultCosts() Costs {
	return Costs{
		// With GSO the stack is traversed once per skb; the remaining
		// per-segment work is DMA descriptors and checksums.
		SegXmit:     5800,
		SKBXmit:     6000,
		PacingTimer: 16000,
		// tcp_ack's fast path: cheap enough to keep up with wire-spaced
		// ACK trains; the congestion module's model update (OpCCUpdate)
		// comes on top of this.
		AckProcess: 6000,
		AckPerSeg:  3500,
		Retransmit: 3000,
		RTO:        8000,
		// ~6.6 cycles per byte: copy_from_user plus checksum on an
		// in-order core with the payload missing cache.
		CopyPerByte: 7.0,
		// Flow-table demux: an offloaded hit is a few cache lines; the
		// software slow path hashes, walks a bucket chain and touches
		// cold per-flow state.
		FlowLookupFast: 400,
		FlowLookupSlow: 2600,
	}
}

// Of returns the cost of op from the table. OpCCUpdate returns 0 because the
// congestion controller supplies its own per-ACK cost; OpFlowLookup returns 0
// because the FlowTable decides fast versus slow path per lookup.
func (c Costs) Of(op Op) float64 {
	switch op {
	case OpSegXmit:
		return c.SegXmit
	case OpSKBXmit:
		return c.SKBXmit
	case OpPacingTimer:
		return c.PacingTimer
	case OpAckProcess:
		return c.AckProcess
	case OpRetransmit:
		return c.Retransmit
	case OpRTO:
		return c.RTO
	default:
		return 0
	}
}
