package cpumodel

import (
	"fmt"
	"time"

	"mobbr/internal/sim"
)

// CPU is a serial work-conserving FCFS server standing in for the core(s)
// the kernel's network stack runs on. Jobs are submitted with a cycle cost;
// each runs to completion before the next starts, so under load completion
// latency grows — exactly the "timer expiration callbacks continually
// reschedule connections to be processed" effect from the paper's §6.1.
type CPU struct {
	eng   *sim.Engine
	costs Costs

	// speed is the current effective rate in reference cycles/second
	// (frequency × IPC factor), set by the governor.
	speed float64

	// pressure is a multiplier ≥ 1 applied to every job's cycle cost,
	// modelling cache/TLB working-set growth as the number of active
	// sockets rises (more socket structures, scoreboards and timers
	// competing for a small LITTLE-core cache).
	pressure float64

	busyUntil time.Duration

	// Utilization accounting for the governor and for reporting.
	windowStart time.Duration
	windowBusy  time.Duration
	totalBusy   time.Duration

	// Per-op accounting for diagnostics and EXPERIMENTS.md reporting.
	opCount  [numOps]uint64
	opCycles [numOps]float64
}

// NewCPU returns a CPU on eng running at the given effective speed
// (reference cycles per second).
func NewCPU(eng *sim.Engine, costs Costs, speed float64) *CPU {
	if speed <= 0 {
		panic(fmt.Sprintf("cpumodel: non-positive CPU speed %v", speed))
	}
	return &CPU{eng: eng, costs: costs, speed: speed, pressure: 1}
}

// SetPressure sets the cache-pressure cost multiplier (clamped to >= 1).
// The iperf harness sets it to 1 + 0.05·ln(connections).
func (c *CPU) SetPressure(f float64) {
	if f < 1 {
		f = 1
	}
	c.pressure = f
}

// Pressure returns the current cost multiplier.
func (c *CPU) Pressure() float64 { return c.pressure }

// Costs returns the CPU's cost table.
func (c *CPU) Costs() Costs { return c.costs }

// Speed returns the current effective speed in reference cycles/second.
func (c *CPU) Speed() float64 { return c.speed }

// SetSpeed changes the effective speed. Jobs already queued keep the service
// time they were assigned at submission; only future jobs see the new speed.
// Governors call this.
func (c *CPU) SetSpeed(speed float64) {
	if speed <= 0 {
		panic(fmt.Sprintf("cpumodel: non-positive CPU speed %v", speed))
	}
	c.speed = speed
}

// Submit charges cycles of work for op and runs fn when the work completes,
// after all previously queued work. It returns the virtual completion time.
// fn may be nil when the caller only wants the work accounted for.
func (c *CPU) Submit(op Op, cycles float64, fn func()) time.Duration {
	if cycles < 0 {
		panic("cpumodel: negative cycle cost")
	}
	now := c.eng.Now()
	start := c.busyUntil
	if start < now {
		start = now
	}
	service := time.Duration(cycles * c.pressure / c.speed * float64(time.Second))
	done := start + service
	c.busyUntil = done
	c.windowBusy += service
	c.totalBusy += service
	if op >= 0 && op < numOps {
		c.opCount[op]++
		c.opCycles[op] += cycles
	}
	if fn != nil {
		c.eng.ScheduleAt(done, fn)
	}
	return done
}

// SubmitOp charges the table cost for op.
func (c *CPU) SubmitOp(op Op, fn func()) time.Duration {
	return c.Submit(op, c.costs.Of(op), fn)
}

// QueueDelay returns how long a job submitted now would wait before starting.
func (c *CPU) QueueDelay() time.Duration {
	now := c.eng.Now()
	if c.busyUntil <= now {
		return 0
	}
	return c.busyUntil - now
}

// WindowUtilization returns the fraction of time since the last call that
// the CPU was busy, then resets the window. Governors poll this.
func (c *CPU) WindowUtilization() float64 {
	now := c.eng.Now()
	elapsed := now - c.windowStart
	if elapsed <= 0 {
		return 0
	}
	busy := c.windowBusy
	if busy > elapsed {
		// Work queued beyond 'now' counts against future windows.
		busy = elapsed
		c.windowBusy -= elapsed
	} else {
		c.windowBusy = 0
	}
	c.windowStart = now
	return float64(busy) / float64(elapsed)
}

// TotalUtilization returns the busy fraction since the start of the run.
func (c *CPU) TotalUtilization() float64 {
	now := c.eng.Now()
	if now <= 0 {
		return 0
	}
	busy := c.totalBusy
	if busy > now {
		busy = now
	}
	return float64(busy) / float64(now)
}

// OpCount returns how many operations of the given kind have been charged.
func (c *CPU) OpCount(op Op) uint64 {
	if op < 0 || op >= numOps {
		return 0
	}
	return c.opCount[op]
}

// OpCycles returns the total cycles charged to the given kind.
func (c *CPU) OpCycles(op Op) float64 {
	if op < 0 || op >= numOps {
		return 0
	}
	return c.opCycles[op]
}

// Breakdown returns each operation's share of the total cycles charged so
// far, keyed by the operation's name. Operations with no cycles are
// omitted.
func (c *CPU) Breakdown() map[string]float64 {
	var total float64
	for _, cy := range c.opCycles {
		total += cy
	}
	out := make(map[string]float64)
	if total == 0 {
		return out
	}
	for op, cy := range c.opCycles {
		if cy > 0 {
			out[Op(op).String()] = cy / total
		}
	}
	return out
}
