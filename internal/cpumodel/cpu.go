package cpumodel

import (
	"fmt"
	"time"

	"mobbr/internal/sim"
)

// CPU is a serial work-conserving FCFS server standing in for the core(s)
// the kernel's network stack runs on. Jobs are submitted with a cycle cost;
// each runs to completion before the next starts, so under load completion
// latency grows — exactly the "timer expiration callbacks continually
// reschedule connections to be processed" effect from the paper's §6.1.
type CPU struct {
	eng   *sim.Engine
	costs Costs

	// speed is the current effective rate in reference cycles/second
	// (frequency × IPC factor), set by the governor.
	speed float64

	// pressure is a multiplier ≥ 1 applied to every job's cycle cost,
	// modelling cache/TLB working-set growth as the number of active
	// sockets rises (more socket structures, scoreboards and timers
	// competing for a small LITTLE-core cache).
	pressure float64

	busyUntil time.Duration

	// Utilization accounting for the governor and for reporting.
	windowStart time.Duration
	windowBusy  time.Duration
	totalBusy   time.Duration

	// Per-op accounting for diagnostics and EXPERIMENTS.md reporting.
	opCount  [numOps]uint64
	opCycles [numOps]float64

	// observer, when set, sees every charge as it happens (the telemetry
	// profiler attributes it to the current run phase). nil costs the hot
	// path only this nil-check.
	observer func(op Op, cycles float64)
	// speedListener, when set, is notified on every effective-speed change
	// (governor frequency decisions).
	speedListener func(old, new float64)
}

// NewCPU returns a CPU on eng running at the given effective speed
// (reference cycles per second).
func NewCPU(eng *sim.Engine, costs Costs, speed float64) *CPU {
	if speed <= 0 {
		panic(fmt.Sprintf("cpumodel: non-positive CPU speed %v", speed))
	}
	return &CPU{eng: eng, costs: costs, speed: speed, pressure: 1}
}

// SetPressure sets the cache-pressure cost multiplier (clamped to >= 1).
// The iperf harness sets it to 1 + 0.05·ln(connections).
func (c *CPU) SetPressure(f float64) {
	if f < 1 {
		f = 1
	}
	c.pressure = f
}

// Pressure returns the current cost multiplier.
func (c *CPU) Pressure() float64 { return c.pressure }

// Costs returns the CPU's cost table.
func (c *CPU) Costs() Costs { return c.costs }

// Speed returns the current effective speed in reference cycles/second.
func (c *CPU) Speed() float64 { return c.speed }

// SetSpeed changes the effective speed. Jobs already queued keep the service
// time they were assigned at submission; only future jobs see the new speed.
// Governors call this.
func (c *CPU) SetSpeed(speed float64) {
	if speed <= 0 {
		panic(fmt.Sprintf("cpumodel: non-positive CPU speed %v", speed))
	}
	old := c.speed
	c.speed = speed
	if c.speedListener != nil && old != speed {
		c.speedListener(old, speed)
	}
}

// SetObserver installs a per-charge callback invoked from Submit with the
// op and its (pre-pressure) cycle cost. nil disables observation.
func (c *CPU) SetObserver(fn func(op Op, cycles float64)) { c.observer = fn }

// SetSpeedListener installs a callback invoked from SetSpeed whenever the
// effective speed actually changes. nil disables it.
func (c *CPU) SetSpeedListener(fn func(old, new float64)) { c.speedListener = fn }

// Submit charges cycles of work for op and runs fn when the work completes,
// after all previously queued work. It returns the virtual completion time.
// fn may be nil when the caller only wants the work accounted for.
func (c *CPU) Submit(op Op, cycles float64, fn func()) time.Duration {
	if cycles < 0 {
		panic("cpumodel: negative cycle cost")
	}
	now := c.eng.Now()
	start := c.busyUntil
	if start < now {
		start = now
	}
	service := time.Duration(cycles * c.pressure / c.speed * float64(time.Second))
	done := start + service
	c.busyUntil = done
	c.windowBusy += service
	c.totalBusy += service
	if op >= 0 && op < numOps {
		c.opCount[op]++
		c.opCycles[op] += cycles
	}
	if c.observer != nil {
		c.observer(op, cycles)
	}
	if fn != nil {
		c.eng.ScheduleAt(done, fn)
	}
	return done
}

// SubmitOp charges the table cost for op.
func (c *CPU) SubmitOp(op Op, fn func()) time.Duration {
	return c.Submit(op, c.costs.Of(op), fn)
}

// SubmitP is the allocation-free form of Submit for the data path: fn is a
// long-lived callback shared across jobs and arg carries the per-job payload
// (see sim.Engine.ScheduleP). fn must be non-nil.
func (c *CPU) SubmitP(op Op, cycles float64, fn func(any), arg any) time.Duration {
	if cycles < 0 {
		panic("cpumodel: negative cycle cost")
	}
	now := c.eng.Now()
	start := c.busyUntil
	if start < now {
		start = now
	}
	service := time.Duration(cycles * c.pressure / c.speed * float64(time.Second))
	done := start + service
	c.busyUntil = done
	c.windowBusy += service
	c.totalBusy += service
	if op >= 0 && op < numOps {
		c.opCount[op]++
		c.opCycles[op] += cycles
	}
	if c.observer != nil {
		c.observer(op, cycles)
	}
	c.eng.SchedulePAt(done, fn, arg)
	return done
}

// QueueDelay returns how long a job submitted now would wait before starting.
func (c *CPU) QueueDelay() time.Duration {
	now := c.eng.Now()
	if c.busyUntil <= now {
		return 0
	}
	return c.busyUntil - now
}

// WindowUtilization returns the fraction of time since the last call that
// the CPU was busy, then resets the window. Governors poll this.
func (c *CPU) WindowUtilization() float64 {
	now := c.eng.Now()
	elapsed := now - c.windowStart
	if elapsed <= 0 {
		return 0
	}
	busy := c.windowBusy
	if busy > elapsed {
		// Work queued beyond 'now' counts against future windows.
		busy = elapsed
		c.windowBusy -= elapsed
	} else {
		c.windowBusy = 0
	}
	c.windowStart = now
	return float64(busy) / float64(elapsed)
}

// TotalUtilization returns the busy fraction since the start of the run.
func (c *CPU) TotalUtilization() float64 {
	now := c.eng.Now()
	if now <= 0 {
		return 0
	}
	busy := c.totalBusy
	if busy > now {
		busy = now
	}
	return float64(busy) / float64(now)
}

// OpCount returns how many operations of the given kind have been charged.
func (c *CPU) OpCount(op Op) uint64 {
	if op < 0 || op >= numOps {
		return 0
	}
	return c.opCount[op]
}

// OpCycles returns the total cycles charged to the given kind.
func (c *CPU) OpCycles(op Op) float64 {
	if op < 0 || op >= numOps {
		return 0
	}
	return c.opCycles[op]
}

// OpStat is one operation's accumulated accounting inside a Snapshot.
type OpStat struct {
	Op     Op
	Name   string
	Count  uint64
	Cycles float64
}

// Snapshot is the one-call view of a CPU's accounting: every per-op total
// plus the utilization figures, taken atomically with respect to the
// single-threaded engine (callers previously looped OpCycles per op).
type Snapshot struct {
	// Speed is the effective speed in reference cycles/second.
	Speed float64
	// Pressure is the cache-pressure cost multiplier.
	Pressure float64
	// Utilization is the busy fraction since the start of the run.
	Utilization float64
	// TotalBusy is the accumulated busy time.
	TotalBusy time.Duration
	// Ops lists every operation's count and cycle total, in Op order
	// (including zero entries, so indices are stable).
	Ops []OpStat
	// TotalCycles is the sum of cycles across ops.
	TotalCycles float64
}

// Breakdown returns each operation's share of the total cycles, keyed by
// name. Operations with no cycles are omitted.
func (s Snapshot) Breakdown() map[string]float64 {
	out := make(map[string]float64)
	if s.TotalCycles == 0 {
		return out
	}
	for _, o := range s.Ops {
		if o.Cycles > 0 {
			out[o.Name] = o.Cycles / s.TotalCycles
		}
	}
	return out
}

// Snapshot returns the CPU's full accounting in one call.
func (c *CPU) Snapshot() Snapshot {
	s := Snapshot{
		Speed:       c.speed,
		Pressure:    c.pressure,
		Utilization: c.TotalUtilization(),
		TotalBusy:   c.totalBusy,
		Ops:         make([]OpStat, numOps),
	}
	for op := Op(0); op < numOps; op++ {
		s.Ops[op] = OpStat{Op: op, Name: op.String(), Count: c.opCount[op], Cycles: c.opCycles[op]}
		s.TotalCycles += c.opCycles[op]
	}
	return s
}

// Breakdown returns each operation's share of the total cycles charged so
// far, keyed by the operation's name. Operations with no cycles are
// omitted.
func (c *CPU) Breakdown() map[string]float64 {
	return c.Snapshot().Breakdown()
}
