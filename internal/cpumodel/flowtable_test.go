package cpumodel

import "testing"

func ftCosts() Costs {
	c := DefaultCosts()
	c.FlowLookupFast = 100
	c.FlowLookupSlow = 1000
	return c
}

func TestFlowTablePromotionAtThreshold(t *testing.T) {
	ft := NewFlowTable(4, 3, ftCosts())
	// Two slow lookups stay slow; the third promotes, the fourth is fast.
	for i := 0; i < 3; i++ {
		if got := ft.LookupCost(7); got != 1000 {
			t.Fatalf("lookup %d: cost %v, want slow 1000", i+1, got)
		}
	}
	if got := ft.LookupCost(7); got != 100 {
		t.Fatalf("post-promotion cost %v, want fast 100", got)
	}
	st := ft.Stats()
	if st.SlowHits != 3 || st.FastHits != 1 || st.Promotions != 1 {
		t.Fatalf("stats = %+v, want 3 slow / 1 fast / 1 promotion", st)
	}
	if st.Occupied != 1 || st.OccupancyHW != 1 {
		t.Fatalf("occupancy = %d (hw %d), want 1 (hw 1)", st.Occupied, st.OccupancyHW)
	}
}

func TestFlowTableSlotCapBlocksPromotion(t *testing.T) {
	ft := NewFlowTable(1, 1, ftCosts())
	ft.LookupCost(1) // promotes into the only slot
	for i := 0; i < 5; i++ {
		if got := ft.LookupCost(2); got != 1000 {
			t.Fatalf("flow 2 lookup %d: cost %v, want slow (table full)", i+1, got)
		}
	}
	st := ft.Stats()
	if st.Promotions != 1 || st.Occupied != 1 {
		t.Fatalf("stats = %+v, want exactly one promotion", st)
	}
	// Removing the occupant frees the slot for the waiting flow.
	ft.Remove(1)
	if ft.Stats().Occupied != 0 {
		t.Fatal("Remove did not free the slot")
	}
	if got := ft.LookupCost(2); got != 1000 {
		t.Fatalf("promoting lookup itself still charges slow, got %v", got)
	}
	if got := ft.LookupCost(2); got != 100 {
		t.Fatalf("flow 2 not promoted after slot freed, cost %v", got)
	}
}

func TestFlowTableRemoveClearsSlowPathCount(t *testing.T) {
	ft := NewFlowTable(4, 3, ftCosts())
	ft.LookupCost(9)
	ft.LookupCost(9)
	ft.Remove(9) // retire before promotion
	// A recycled appearance of the id starts its count over.
	ft.LookupCost(9)
	ft.LookupCost(9)
	if st := ft.Stats(); st.Promotions != 0 {
		t.Fatalf("promotions = %d after Remove reset, want 0", st.Promotions)
	}
}

func TestFlowTableNoFastPath(t *testing.T) {
	ft := NewFlowTable(0, 1, ftCosts())
	for i := 0; i < 10; i++ {
		if got := ft.LookupCost(3); got != 1000 {
			t.Fatalf("slots=0 lookup cost %v, want slow", got)
		}
	}
	st := ft.Stats()
	if st.FastHits != 0 || st.Promotions != 0 {
		t.Fatalf("slots=0 stats = %+v, want no fast path activity", st)
	}
}

func TestFlowTableFastShare(t *testing.T) {
	if got := (FlowTableStats{}).FastShare(); got != 0 {
		t.Fatalf("empty FastShare = %v, want 0", got)
	}
	s := FlowTableStats{FastHits: 3, SlowHits: 1}
	if got := s.FastShare(); got != 0.75 {
		t.Fatalf("FastShare = %v, want 0.75", got)
	}
}
