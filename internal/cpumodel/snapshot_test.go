package cpumodel

import (
	"testing"
	"time"

	"mobbr/internal/sim"
)

func TestSnapshotAllOps(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1e9)
	cpu.SubmitOp(OpPacingTimer, nil)
	cpu.SubmitOp(OpSegXmit, nil)
	cpu.SubmitOp(OpSegXmit, nil)
	eng.Run(time.Second)

	s := cpu.Snapshot()
	if len(s.Ops) != int(numOps) {
		t.Fatalf("ops = %d, want %d (every op, including zeros)", len(s.Ops), numOps)
	}
	byName := map[string]OpStat{}
	for i, st := range s.Ops {
		if st.Op != Op(i) {
			t.Errorf("ops out of Op order at %d: %v", i, st.Op)
		}
		byName[st.Name] = st
	}
	if st := byName["seg_xmit"]; st.Count != 2 || st.Cycles != 2*DefaultCosts().SegXmit {
		t.Errorf("seg_xmit = %+v", st)
	}
	if st := byName["pacing_timer"]; st.Count != 1 {
		t.Errorf("pacing_timer = %+v", st)
	}
	if st := byName["rto"]; st.Count != 0 || st.Cycles != 0 {
		t.Errorf("unused op should be zero: %+v", st)
	}
	want := 2*DefaultCosts().SegXmit + DefaultCosts().PacingTimer
	if s.TotalCycles != want {
		t.Errorf("total cycles = %v, want %v", s.TotalCycles, want)
	}
	if s.Speed != 1e9 || s.Pressure != 1 {
		t.Errorf("speed/pressure = %v/%v", s.Speed, s.Pressure)
	}

	bd := s.Breakdown()
	var sum float64
	for _, f := range bd {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown fractions sum to %v, want 1", sum)
	}
	if bd["seg_xmit"] != 2*DefaultCosts().SegXmit/want {
		t.Errorf("seg_xmit share = %v", bd["seg_xmit"])
	}
}

func TestObserverSeesEveryCharge(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 1e9)
	type charge struct {
		op     Op
		cycles float64
	}
	var seen []charge
	cpu.SetObserver(func(op Op, cycles float64) { seen = append(seen, charge{op, cycles}) })
	cpu.Submit(OpAckProcess, 123, nil)
	cpu.SubmitOp(OpRTO, nil)
	if len(seen) != 2 {
		t.Fatalf("observer saw %d charges, want 2", len(seen))
	}
	if seen[0] != (charge{OpAckProcess, 123}) {
		t.Errorf("first charge = %+v", seen[0])
	}
	if seen[1].op != OpRTO || seen[1].cycles != DefaultCosts().RTO {
		t.Errorf("second charge = %+v", seen[1])
	}
	cpu.SetObserver(nil)
	cpu.SubmitOp(OpSegXmit, nil)
	if len(seen) != 2 {
		t.Error("cleared observer still invoked")
	}
}

func TestSpeedListenerFiresOnChangeOnly(t *testing.T) {
	eng := sim.New(1)
	cpu := NewCPU(eng, DefaultCosts(), 2e9)
	var olds, news []float64
	cpu.SetSpeedListener(func(old, new float64) {
		olds = append(olds, old)
		news = append(news, new)
	})
	cpu.SetSpeed(2e9) // no change → no event
	cpu.SetSpeed(1e9)
	cpu.SetSpeed(3e9)
	if len(news) != 2 {
		t.Fatalf("listener fired %d times, want 2", len(news))
	}
	if olds[0] != 2e9 || news[0] != 1e9 || olds[1] != 1e9 || news[1] != 3e9 {
		t.Errorf("transitions = %v → %v", olds, news)
	}
}
