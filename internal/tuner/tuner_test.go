package tuner

import (
	"testing"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
)

func lowEndSpec() core.Spec {
	return core.Spec{CPU: device.LowEnd, CC: "bbr", Conns: 20, Network: core.Ethernet}
}

func fastOpts() Options {
	return Options{Seeds: 1, Duration: 1500 * time.Millisecond}
}

func TestSweepFindsImprovement(t *testing.T) {
	o := fastOpts()
	o.Candidates = []float64{1, 5, 10}
	res, err := Sweep(lowEndSpec(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 3 {
		t.Fatalf("trials = %d, want 3", len(res.Trials))
	}
	if res.Baseline.Stride != 1 {
		t.Fatalf("baseline stride = %v", res.Baseline.Stride)
	}
	// §6.2: on Low-End/20conns a larger stride must beat stock pacing.
	if res.Best.Stride == 1 {
		t.Errorf("best stride is 1×; expected an improvement (trials: %+v)", res.Trials)
	}
	if res.Improvement() <= 1.05 {
		t.Errorf("improvement = %.2f, want > 1.05", res.Improvement())
	}
}

func TestSweepAlwaysIncludesBaseline(t *testing.T) {
	o := fastOpts()
	o.Candidates = []float64{5, 10} // no 1× given
	res, err := Sweep(lowEndSpec(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials[0].Stride != 1 {
		t.Fatalf("first trial stride = %v, want injected 1×", res.Trials[0].Stride)
	}
}

func TestRTTBudgetGuards(t *testing.T) {
	o := fastOpts()
	o.Candidates = []float64{1, 10}
	// An absurdly tight budget disqualifies everything above baseline
	// RTT, so the baseline must win.
	o.RTTBudget = 0.0001
	res, err := Sweep(lowEndSpec(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Stride != 1 {
		t.Errorf("best stride = %v under a prohibitive RTT budget, want 1", res.Best.Stride)
	}
}

func TestHillClimb(t *testing.T) {
	res, err := HillClimb(lowEndSpec(), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) < 3 {
		t.Fatalf("hill climb only evaluated %d strides", len(res.Trials))
	}
	if res.Best.GoodputMbps < res.Baseline.GoodputMbps {
		t.Errorf("hill climb regressed: best %.1f < baseline %.1f",
			res.Best.GoodputMbps, res.Baseline.GoodputMbps)
	}
	// Trials must be sorted by stride for presentation.
	for i := 1; i < len(res.Trials); i++ {
		if res.Trials[i].Stride < res.Trials[i-1].Stride {
			t.Fatalf("trials unsorted: %+v", res.Trials)
		}
	}
}

func TestEvaluateErrorPropagates(t *testing.T) {
	spec := lowEndSpec()
	spec.CC = "nope"
	if _, err := Sweep(spec, fastOpts()); err == nil {
		t.Fatal("expected error for unknown CC")
	}
	if _, err := HillClimb(spec, fastOpts()); err == nil {
		t.Fatal("expected error for unknown CC")
	}
}
