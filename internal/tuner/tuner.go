// Package tuner searches for the optimal pacing stride — the §7.1.2
// question the paper leaves open: the best stride "will depend on at least
// the network conditions and the mobile device configuration". The tuner
// treats the simulator as the objective function: it sweeps or hill-climbs
// over strides, scoring goodput with an optional RTT guard so the search
// does not wander into bufferbloat (which raw goodput would tolerate).
package tuner

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mobbr/internal/core"
)

// Trial is one evaluated stride.
type Trial struct {
	Stride      float64
	GoodputMbps float64
	RTTms       float64
	// Score is the objective value (goodput with the RTT guard applied).
	Score float64
}

// Options configures the search.
type Options struct {
	// Candidates are the strides to evaluate in Sweep; the paper's grid
	// {1,2,5,10,20,50} if empty.
	Candidates []float64
	// Seeds per evaluation (default 2).
	Seeds int
	// Duration per run (default 3s).
	Duration time.Duration
	// RTTBudget caps tolerable RTT as a multiple of the 1× baseline's
	// RTT; strides exceeding it score 0. Zero disables the guard.
	RTTBudget float64
}

func (o Options) withDefaults() Options {
	if len(o.Candidates) == 0 {
		o.Candidates = []float64{1, 2, 5, 10, 20, 50}
	}
	if o.Seeds <= 0 {
		o.Seeds = 2
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	return o
}

// Result is the search outcome.
type Result struct {
	// Best is the winning trial.
	Best Trial
	// Baseline is the stock 1× trial.
	Baseline Trial
	// Trials are all evaluations, in ascending stride order.
	Trials []Trial
}

// Improvement returns Best.Goodput / Baseline.Goodput.
func (r *Result) Improvement() float64 {
	if r.Baseline.GoodputMbps == 0 {
		return 0
	}
	return r.Best.GoodputMbps / r.Baseline.GoodputMbps
}

// evaluate runs one stride and returns its trial.
func evaluate(spec core.Spec, stride float64, o Options) (Trial, error) {
	s := spec
	s.Stride = stride
	s.Duration = o.Duration
	s.Warmup = o.Duration / 5
	agg, err := core.RunSeeds(s, o.Seeds)
	if err != nil {
		return Trial{}, err
	}
	return Trial{
		Stride:      stride,
		GoodputMbps: agg.GoodputMbps(),
		RTTms:       agg.AvgRTT.Mean() / 1e6,
	}, nil
}

// Sweep evaluates every candidate stride for spec and returns the best by
// score. The spec's own Stride field is ignored.
func Sweep(spec core.Spec, opts Options) (*Result, error) {
	o := opts.withDefaults()
	cands := append([]float64(nil), o.Candidates...)
	sort.Float64s(cands)
	if cands[0] != 1 {
		cands = append([]float64{1}, cands...)
	}
	res := &Result{}
	for _, st := range cands {
		tr, err := evaluate(spec, st, o)
		if err != nil {
			return nil, fmt.Errorf("tuner: stride %g: %w", st, err)
		}
		res.Trials = append(res.Trials, tr)
		if st == 1 {
			res.Baseline = tr
		}
	}
	// Apply the RTT guard relative to the baseline, then pick the best.
	for i := range res.Trials {
		t := &res.Trials[i]
		t.Score = t.GoodputMbps
		if o.RTTBudget > 0 && res.Baseline.RTTms > 0 &&
			t.RTTms > res.Baseline.RTTms*o.RTTBudget {
			t.Score = 0
		}
		if t.Score > res.Best.Score {
			res.Best = *t
		}
	}
	if res.Best.Score == 0 {
		res.Best = res.Baseline
	}
	return res, nil
}

// HillClimb doubles the stride while the score improves, then refines once
// between the best and its better neighbour — cheaper than a full sweep
// when evaluations are expensive. It always evaluates 1× first as the
// baseline.
func HillClimb(spec core.Spec, opts Options) (*Result, error) {
	o := opts.withDefaults()
	res := &Result{}
	score := func(t Trial) float64 {
		if o.RTTBudget > 0 && res.Baseline.RTTms > 0 &&
			t.RTTms > res.Baseline.RTTms*o.RTTBudget {
			return 0
		}
		return t.GoodputMbps
	}

	base, err := evaluate(spec, 1, o)
	if err != nil {
		return nil, err
	}
	res.Baseline = base
	base.Score = base.GoodputMbps
	res.Trials = append(res.Trials, base)
	best := base
	prev := base
	for st := 2.0; st <= 64; st *= 2 {
		tr, err := evaluate(spec, st, o)
		if err != nil {
			return nil, err
		}
		tr.Score = score(tr)
		res.Trials = append(res.Trials, tr)
		if tr.Score > best.Score {
			prev, best = best, tr
			continue
		}
		// Worse than the best so far: refine between best and this
		// point, then stop.
		mid := math.Sqrt(best.Stride * tr.Stride)
		if m, err := evaluate(spec, mid, o); err == nil {
			m.Score = score(m)
			res.Trials = append(res.Trials, m)
			if m.Score > best.Score {
				best = m
			}
		}
		break
	}
	// One refinement on the other side too.
	if prev.Stride != best.Stride {
		mid := math.Sqrt(best.Stride * prev.Stride)
		if m, err := evaluate(spec, mid, o); err == nil {
			m.Score = score(m)
			res.Trials = append(res.Trials, m)
			if m.Score > best.Score {
				best = m
			}
		}
	}
	res.Best = best
	sort.Slice(res.Trials, func(i, j int) bool { return res.Trials[i].Stride < res.Trials[j].Stride })
	return res, nil
}
