package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestOnlineBasics(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d, want 8", o.N())
	}
	if !almostEq(o.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", o.Mean())
	}
	// Sample (unbiased) variance of this classic set is 32/7.
	if !almostEq(o.Var(), 32.0/7.0, 1e-12) {
		t.Errorf("Var = %v, want %v", o.Var(), 32.0/7.0)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", o.Min(), o.Max())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.CI95() != 0 {
		t.Error("zero-value Online should report zeros")
	}
	o.Add(3.5)
	if o.Mean() != 3.5 || o.Var() != 0 {
		t.Error("single sample: mean should be the sample, variance 0")
	}
}

func TestOnlineMatchesBatchProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var o Online
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			o.Add(xs[i])
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		batchVar := ss / float64(len(xs)-1)
		return almostEq(o.Mean(), mean, 1e-6) && almostEq(o.Var(), batchVar, 1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{-5, 15},  // clamped
		{150, 50}, // clamped
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Error("single-element percentile should be the element")
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMedianInterpolates(t *testing.T) {
	if got := Median([]float64{1, 2, 3, 4}); !almostEq(got, 2.5, 1e-9) {
		t.Errorf("Median = %v, want 2.5", got)
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 10) // 10 for 1s
	tw.Observe(1, 20) // 20 for 3s
	got := tw.AverageAt(4)
	want := (10*1 + 20*3) / 4.0
	if !almostEq(got, want, 1e-9) {
		t.Errorf("time-weighted avg = %v, want %v", got, want)
	}
}

func TestTimeWeightedEdge(t *testing.T) {
	var tw TimeWeighted
	if tw.AverageAt(5) != 0 {
		t.Error("no observations should average to 0")
	}
	tw.Observe(2, 7)
	if tw.AverageAt(2) != 7 {
		t.Error("zero-width window should return the held value")
	}
}

func TestWindowedMaxBasic(t *testing.T) {
	w := NewWindowedMax(10)
	if got := w.Update(0, 5); got != 5 {
		t.Fatalf("first sample max = %v, want 5", got)
	}
	if got := w.Update(1, 3); got != 5 {
		t.Fatalf("max = %v, want 5", got)
	}
	if got := w.Update(2, 9); got != 9 {
		t.Fatalf("max = %v, want 9 (new best)", got)
	}
	// Age the 9 out: window is 10, so at t=13 the best (t=2) is stale.
	w.Update(12, 4)
	if got := w.Update(13, 2); got >= 9 {
		t.Fatalf("stale best survived: max = %v", got)
	}
}

func TestWindowedMaxDegradesToRecent(t *testing.T) {
	w := NewWindowedMax(5)
	w.Update(0, 100)
	for i := uint64(1); i <= 20; i++ {
		w.Update(i, 10)
	}
	if got := w.Get(); got != 10 {
		t.Fatalf("after best ages out, max = %v, want 10", got)
	}
}

// Property: the windowed max is always >= the most recent sample and equals
// the true max when all samples fit in the window.
func TestWindowedMaxProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		w := NewWindowedMax(uint64(len(vals) + 1)) // window covers everything
		trueMax := float64(0)
		for i, v := range vals {
			fv := float64(v)
			if fv > trueMax {
				trueMax = fv
			}
			got := w.Update(uint64(i), fv)
			if got < fv {
				return false
			}
		}
		return w.Get() == trueMax
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowedMin(t *testing.T) {
	m := NewWindowedMin(10)
	m.Update(0, 50)
	if got := m.Update(1, 70); got != 50 {
		t.Fatalf("min = %v, want 50", got)
	}
	if got := m.Update(2, 30); got != 30 {
		t.Fatalf("min = %v, want 30", got)
	}
	if m.Expired(5) {
		t.Fatal("min should not be expired inside window")
	}
	if !m.Expired(13) {
		t.Fatal("min should be expired after window")
	}
	// A stale minimum is replaced even by a larger sample.
	if got := m.Update(20, 90); got != 90 {
		t.Fatalf("stale min survived: %v", got)
	}
}

func TestWindowedMinZeroValueSample(t *testing.T) {
	m := NewWindowedMin(10)
	if got := m.Update(0, 0); got != 0 {
		t.Fatalf("zero is a valid min, got %v", got)
	}
	if got := m.Update(1, 5); got != 0 {
		t.Fatalf("min = %v, want 0", got)
	}
}

func TestWindowedFiltersReset(t *testing.T) {
	w := NewWindowedMax(10)
	w.Update(0, 9)
	w.Reset()
	if w.Get() != 0 {
		t.Error("Reset should clear max")
	}
	m := NewWindowedMin(10)
	m.Update(0, 9)
	m.Reset()
	if m.Get() != 0 {
		t.Error("Reset should clear min")
	}
}

func TestWindowedMinTracksTrueMinWithinWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewWindowedMin(1 << 62) // effectively infinite window
	trueMin := math.Inf(1)
	for i := 0; i < 1000; i++ {
		v := rng.Float64() * 100
		if v < trueMin {
			trueMin = v
		}
		if got := m.Update(uint64(i), v); got != trueMin {
			t.Fatalf("at %d: min = %v, want %v", i, got, trueMin)
		}
	}
}
