package stats

// WindowedMax tracks the maximum of a signal over a sliding window of
// "time" (any monotonically increasing uint64 unit — BBR uses round-trip
// counts for bandwidth and wall time for RTT). It is a port of the Linux
// kernel's lib/minmax.c: the best, second-best, and third-best samples are
// kept with their timestamps so the estimate degrades gracefully as old
// maxima age out.
type WindowedMax struct {
	window  uint64
	samples [3]minmaxSample
}

type minmaxSample struct {
	t uint64
	v float64
	// set marks an initialized slot; needed because 0 is a valid value.
	set bool
}

// NewWindowedMax returns a max filter over the given window length.
func NewWindowedMax(window uint64) *WindowedMax {
	return &WindowedMax{window: window}
}

// SetWindow changes the window length for subsequent updates.
func (w *WindowedMax) SetWindow(window uint64) { w.window = window }

// Update feeds a new measurement v observed at time t and returns the
// current windowed maximum.
func (w *WindowedMax) Update(t uint64, v float64) float64 {
	s := minmaxSample{t: t, v: v, set: true}
	if !w.samples[0].set || v >= w.samples[0].v || t-w.samples[2].t > w.window {
		// New best, or the whole window has aged out: reset.
		w.samples[0], w.samples[1], w.samples[2] = s, s, s
		return w.samples[0].v
	}
	if v >= w.samples[1].v {
		w.samples[1], w.samples[2] = s, s
	} else if v >= w.samples[2].v {
		w.samples[2] = s
	}
	return w.subwinUpdate(t, s)
}

// subwinUpdate ages out best samples that have fallen outside the window,
// mirroring minmax_subwin_update in the kernel.
func (w *WindowedMax) subwinUpdate(t uint64, s minmaxSample) float64 {
	dt := t - w.samples[0].t
	switch {
	case dt > w.window:
		// Best is too old; shift and take the new sample as third-best.
		w.samples[0] = w.samples[1]
		w.samples[1] = w.samples[2]
		w.samples[2] = s
		if t-w.samples[0].t > w.window {
			w.samples[0] = w.samples[1]
			w.samples[1] = w.samples[2]
			w.samples[2] = s
		}
	case w.samples[1].t == w.samples[0].t && dt > w.window/4:
		// Second-best is tied with best for a quarter window: refresh it.
		w.samples[1] = s
		w.samples[2] = s
	case w.samples[2].t == w.samples[1].t && dt > w.window/2:
		w.samples[2] = s
	}
	return w.samples[0].v
}

// Get returns the current windowed maximum without adding a sample.
func (w *WindowedMax) Get() float64 { return w.samples[0].v }

// Reset forgets all samples.
func (w *WindowedMax) Reset() { w.samples = [3]minmaxSample{} }

// WindowedMin tracks the minimum of a signal over a sliding time window
// (e.g. BBR's 10-second min_rtt filter). Unlike WindowedMax it keeps only
// the single best sample, matching how tcp_bbr.c tracks min_rtt with a
// timestamp plus expiry.
type WindowedMin struct {
	window uint64
	t      uint64
	v      float64
	set    bool
}

// NewWindowedMin returns a min filter over the given window length.
func NewWindowedMin(window uint64) *WindowedMin {
	return &WindowedMin{window: window}
}

// Update feeds a measurement v at time t and returns the current windowed
// minimum.
func (m *WindowedMin) Update(t uint64, v float64) float64 {
	if !m.set || v <= m.v || t-m.t > m.window {
		m.t, m.v, m.set = t, v, true
	}
	return m.v
}

// Expired reports whether the held minimum is older than the window at t.
func (m *WindowedMin) Expired(t uint64) bool {
	return m.set && t-m.t > m.window
}

// Get returns the current minimum (0 if no samples).
func (m *WindowedMin) Get() float64 { return m.v }

// Timestamp returns when the current minimum was recorded.
func (m *WindowedMin) Timestamp() uint64 { return m.t }

// Reset forgets the held sample.
func (m *WindowedMin) Reset() { *m = WindowedMin{window: m.window} }
