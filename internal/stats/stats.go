// Package stats provides the small statistical toolkit the simulator and the
// experiment harness rely on: online mean/variance accumulation, percentiles,
// time-weighted averages, and the windowed min/max filters that BBR uses for
// its bandwidth and RTT estimates (a port of the Linux kernel's lib/minmax).
package stats

import (
	"math"
	"sort"
)

// Online accumulates a running mean and variance using Welford's algorithm.
// The zero value is ready to use.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of samples added.
func (o *Online) N() int64 { return o.n }

// Mean returns the sample mean, or 0 with no samples.
func (o *Online) Mean() float64 { return o.mean }

// Min returns the smallest sample, or 0 with no samples.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample, or 0 with no samples.
func (o *Online) Max() float64 { return o.max }

// Var returns the unbiased sample variance, or 0 with fewer than 2 samples.
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Stddev returns the sample standard deviation.
func (o *Online) Stddev() float64 { return math.Sqrt(o.Var()) }

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (o *Online) CI95() float64 {
	if o.n < 2 {
		return 0
	}
	return 1.96 * o.Stddev() / math.Sqrt(float64(o.n))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
// The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CombinedCI95 returns the 95% CI half-width of a difference of two
// independent means whose own CI half-widths are a and b (root sum of
// squares). The regression differ uses it as the noise floor below which a
// delta between two runs is not evidence of a real change.
func CombinedCI95(a, b float64) float64 { return math.Sqrt(a*a + b*b) }

// SignificantDelta reports whether the move from a to b clears both the
// noise floor (the combined CI of the two means) and a relative threshold
// rel of the baseline magnitude. With zero CIs (single-seed runs) only the
// relative threshold applies.
func SignificantDelta(a, b, ciA, ciB, rel float64) bool {
	d := math.Abs(b - a)
	if d <= CombinedCI95(ciA, ciB) {
		return false
	}
	return d > rel*math.Abs(a)
}

// TimeWeighted accumulates a time-weighted average of a piecewise-constant
// signal: call Observe(t, v) whenever the value changes; the average weights
// each value by how long it was held.
type TimeWeighted struct {
	started  bool
	lastT    float64
	lastV    float64
	weighted float64
	total    float64
}

// Observe records that the signal changed to v at time t (seconds, or any
// monotonically nondecreasing unit).
func (tw *TimeWeighted) Observe(t, v float64) {
	if tw.started && t > tw.lastT {
		dt := t - tw.lastT
		tw.weighted += tw.lastV * dt
		tw.total += dt
	}
	tw.started = true
	tw.lastT = t
	tw.lastV = v
}

// AverageAt closes the window at time t and returns the time-weighted mean.
func (tw *TimeWeighted) AverageAt(t float64) float64 {
	w, tot := tw.weighted, tw.total
	if tw.started && t > tw.lastT {
		dt := t - tw.lastT
		w += tw.lastV * dt
		tot += dt
	}
	if tot == 0 {
		if tw.started {
			return tw.lastV
		}
		return 0
	}
	return w / tot
}
