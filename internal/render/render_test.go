package render

import (
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	var buf strings.Builder
	c := Chart{
		Title: "Figure X",
		Unit:  "Mbps",
		Bars: []Bar{
			{Label: "cubic", Value: 300},
			{Label: "bbr", Value: 150, Note: "paper: 138"},
		},
		Width: 10,
	}
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure X") {
		t.Error("missing title")
	}
	// cubic is the max → 10 blocks; bbr half → 5 blocks.
	if !strings.Contains(out, strings.Repeat("█", 10)) {
		t.Errorf("full-scale bar missing:\n%s", out)
	}
	if !strings.Contains(out, strings.Repeat("█", 5)+" ") {
		t.Errorf("half-scale bar missing:\n%s", out)
	}
	if !strings.Contains(out, "paper: 138") {
		t.Error("note missing")
	}
	if !strings.Contains(out, "Mbps") {
		t.Error("unit missing")
	}
}

func TestChartZeroAndTiny(t *testing.T) {
	var buf strings.Builder
	c := Chart{Title: "t", Bars: []Bar{
		{Label: "zero", Value: 0},
		{Label: "tiny", Value: 0.001},
		{Label: "big", Value: 1000},
	}, Width: 20}
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// A tiny nonzero value renders a sliver, not nothing.
	if !strings.Contains(buf.String(), "▏") {
		t.Errorf("tiny bar not rendered:\n%s", buf.String())
	}
}

func TestFixedScaleClamps(t *testing.T) {
	var buf strings.Builder
	c := Chart{Title: "t", Max: 100, Width: 10, Bars: []Bar{{Label: "over", Value: 250}}}
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), strings.Repeat("█", 11)) {
		t.Error("bar exceeded the chart width")
	}
}

func TestGroupedSharedScale(t *testing.T) {
	var buf strings.Builder
	err := Grouped(&buf, "Mbps", 1000,
		Chart{Title: "a", Bars: []Bar{{Label: "x", Value: 500}}, Width: 10},
		Chart{Title: "b", Bars: []Bar{{Label: "y", Value: 1000}}, Width: 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, strings.Repeat("█", 5)+" ") {
		t.Errorf("500/1000 should be half scale:\n%s", out)
	}
	if !strings.Contains(out, strings.Repeat("█", 10)) {
		t.Errorf("1000/1000 should be full scale:\n%s", out)
	}
}

func TestTimelineShading(t *testing.T) {
	var buf strings.Builder
	tl := Timeline{
		Title: "goodput over time",
		Unit:  "Mbps",
		Buckets: []TimeBucket{
			{Label: "0.0s", Value: 10},
			{Label: "0.5s", Value: 5, Shaded: true, Note: "outage"},
			{Label: "1.0s", Value: 0, Shaded: true},
			{Label: "1.5s", Value: 10},
		},
		Width: 10,
	}
	if err := tl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "goodput over time") {
		t.Error("missing title")
	}
	if !strings.Contains(out, strings.Repeat("█", 10)) {
		t.Errorf("full-scale unshaded bar missing:\n%s", out)
	}
	if !strings.Contains(out, strings.Repeat("▒", 5)) {
		t.Errorf("half-scale shaded bar missing:\n%s", out)
	}
	if !strings.Contains(out, "outage") {
		t.Error("note missing")
	}
	// A zero-value shaded bucket still shows a shaded sliver, so dark
	// windows stay visible on the plot.
	lines := strings.Split(out, "\n")
	found := false
	for _, l := range lines {
		if strings.Contains(l, "1.0s") && strings.Contains(l, "▒") {
			found = true
		}
	}
	if !found {
		t.Errorf("zero-value shaded bucket invisible:\n%s", out)
	}
}

func TestTimelineEmptyAndClamp(t *testing.T) {
	var buf strings.Builder
	if err := (Timeline{Title: "empty"}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	tl := Timeline{Title: "t", Max: 100, Width: 10, Buckets: []TimeBucket{{Label: "x", Value: 300}}}
	if err := tl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), strings.Repeat("█", 11)) {
		t.Error("bar exceeded the timeline width")
	}
}
