// Package render draws terminal bar charts for the reproduced figures, so
// `cmd/mobbr-figures` can show the paper's plots without leaving the shell.
package render

import (
	"fmt"
	"io"
	"strings"
)

// Bar is one labelled value.
type Bar struct {
	Label string
	Value float64
	// Note is appended after the value (e.g. the paper's number).
	Note string
}

// Chart is a titled group of bars on a shared scale.
type Chart struct {
	Title string
	// Unit is printed after each value ("Mbps", "ms", …).
	Unit string
	Bars []Bar
	// Width is the maximum bar width in runes (default 48).
	Width int
	// Max fixes the scale; 0 auto-scales to the largest bar.
	Max float64
}

// Write renders the chart to w.
func (c Chart) Write(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 48
	}
	max := c.Max
	for _, b := range c.Bars {
		if b.Value > max {
			max = b.Value
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
		return err
	}
	labelW := 0
	for _, b := range c.Bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	for _, b := range c.Bars {
		n := 0
		if max > 0 {
			n = int(b.Value / max * float64(width))
		}
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		bar := strings.Repeat("█", n)
		if n == 0 && b.Value > 0 {
			bar = "▏"
		}
		line := fmt.Sprintf("  %-*s %-*s %7.1f %s", labelW, b.Label, width, bar, b.Value, c.Unit)
		if b.Note != "" {
			line += "  " + b.Note
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(line, " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// TimeBucket is one time slot of a Timeline.
type TimeBucket struct {
	// Label names the bucket's start, e.g. " 3.0s".
	Label string
	Value float64
	// Shaded renders the bar with ▒ instead of █ — used to mark buckets
	// inside a fault or outage window.
	Shaded bool
	// Note is appended after the value (e.g. the segment kind beginning
	// at this bucket).
	Note string
}

// Timeline renders a value-over-time series as one horizontal bar per time
// bucket, top to bottom, with shaded buckets marking highlighted windows —
// the terminal equivalent of a goodput-over-time plot with fault segments
// shaded.
type Timeline struct {
	Title string
	// Unit is printed after each value ("Mbps", "ms", …).
	Unit    string
	Buckets []TimeBucket
	// Width is the maximum bar width in runes (default 48).
	Width int
	// Max fixes the scale; 0 auto-scales to the largest bucket.
	Max float64
}

// Write renders the timeline to w.
func (t Timeline) Write(w io.Writer) error {
	width := t.Width
	if width <= 0 {
		width = 48
	}
	max := t.Max
	for _, b := range t.Buckets {
		if b.Value > max {
			max = b.Value
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
		return err
	}
	labelW := 0
	for _, b := range t.Buckets {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	for _, b := range t.Buckets {
		n := 0
		if max > 0 {
			n = int(b.Value / max * float64(width))
		}
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		fill := "█"
		if b.Shaded {
			fill = "▒"
		}
		bar := strings.Repeat(fill, n)
		if n == 0 {
			if b.Shaded {
				bar = "▒"
			} else if b.Value > 0 {
				bar = "▏"
			}
		}
		line := fmt.Sprintf("  %-*s %-*s %7.1f %s", labelW, b.Label, width, bar, b.Value, t.Unit)
		if b.Note != "" {
			line += "  " + b.Note
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(line, " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Grouped renders several charts sharing one scale (the figure's subplots).
func Grouped(w io.Writer, unit string, max float64, charts ...Chart) error {
	for _, c := range charts {
		c.Unit = unit
		c.Max = max
		if err := c.Write(w); err != nil {
			return err
		}
	}
	return nil
}
