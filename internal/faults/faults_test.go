package faults

import (
	"strings"
	"testing"
	"time"

	"mobbr/internal/netem"
	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

// rig is a single-hop path with a delivery counter and a steady packet
// source clocked every ms.
type rig struct {
	eng       *sim.Engine
	path      *netem.Path
	delivered []time.Duration
}

func newRig(t *testing.T, cfg netem.PipeConfig) *rig {
	t.Helper()
	eng := sim.New(42)
	path, err := netem.NewPath(eng, netem.PathConfig{Hops: []netem.PipeConfig{cfg}})
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	r := &rig{eng: eng, path: path}
	path.SetReceiver(func(p *seg.Packet) { r.delivered = append(r.delivered, eng.Now()) })
	return r
}

// feed injects one packet every interval until end.
func (r *rig) feed(interval, end time.Duration) {
	var seq int64
	var tick func()
	tick = func() {
		if r.eng.Now() >= end {
			return
		}
		r.path.Send(&seg.Packet{Seq: seq, Len: 1000, SentAt: r.eng.Now()})
		seq += 1000
		r.eng.Schedule(interval, tick)
	}
	tick()
}

// deliveredIn counts deliveries inside [from, to).
func (r *rig) deliveredIn(from, to time.Duration) int {
	n := 0
	for _, at := range r.delivered {
		if at >= from && at < to {
			n++
		}
	}
	return n
}

func TestBlackoutStopsAndResumesDelivery(t *testing.T) {
	r := newRig(t, netem.PipeConfig{Rate: 100 * units.Mbps, QueuePackets: 1000})
	sched := Schedule{Events: []Event{Blackout{Start: 100 * time.Millisecond, Duration: 50 * time.Millisecond}}}
	if err := sched.Install(r.eng, r.path); err != nil {
		t.Fatalf("Install: %v", err)
	}
	r.feed(time.Millisecond, 300*time.Millisecond)
	r.eng.Run(400 * time.Millisecond)
	if n := r.deliveredIn(0, 100*time.Millisecond); n == 0 {
		t.Fatal("nothing delivered before the blackout")
	}
	// Allow for the one packet already in propagation at blackout onset.
	if n := r.deliveredIn(101*time.Millisecond, 150*time.Millisecond); n > 1 {
		t.Fatalf("%d packets delivered during the blackout", n)
	}
	if n := r.deliveredIn(150*time.Millisecond, 400*time.Millisecond); n == 0 {
		t.Fatal("nothing delivered after the blackout ended")
	}
	// Held packets are delivered, not dropped.
	if got, want := len(r.delivered), 300; got != want {
		t.Fatalf("delivered %d packets total, want %d", got, want)
	}
}

func TestRateStepChangesServiceRate(t *testing.T) {
	r := newRig(t, netem.PipeConfig{Rate: 8 * units.Mbps, QueuePackets: 1000})
	sched := Schedule{Events: []Event{RateStep{At: 100 * time.Millisecond, Rate: 80 * units.Mbps}}}
	if err := sched.Install(r.eng, r.path); err != nil {
		t.Fatalf("Install: %v", err)
	}
	// 2 packets/ms of 1000B ≈ 16 Mbps offered: overload at 8, underload at 80.
	r.feed(500*time.Microsecond, 200*time.Millisecond)
	r.eng.Run(300 * time.Millisecond)
	before := r.deliveredIn(0, 100*time.Millisecond)
	after := r.deliveredIn(100*time.Millisecond, 200*time.Millisecond)
	if after <= before*2 {
		t.Fatalf("rate step had no effect: %d before vs %d after", before, after)
	}
}

func TestRateRampMonotoneSpacing(t *testing.T) {
	r := newRig(t, netem.PipeConfig{Rate: 100 * units.Mbps, QueuePackets: 1000})
	sched := Schedule{Events: []Event{RateRamp{
		Start: 50 * time.Millisecond, Duration: 100 * time.Millisecond,
		From: 100 * units.Mbps, To: 10 * units.Mbps, Steps: 5,
	}}}
	if err := sched.Install(r.eng, r.path); err != nil {
		t.Fatalf("Install: %v", err)
	}
	r.feed(200*time.Microsecond, 250*time.Millisecond)
	r.eng.Run(300 * time.Millisecond)
	// 5 packets/ms of 1000B = 40 Mbps offered: under the start rate,
	// over the end rate — deliveries must thin out as the ramp bites.
	early := r.deliveredIn(0, 50*time.Millisecond)
	late := r.deliveredIn(150*time.Millisecond, 200*time.Millisecond)
	if late*2 >= early {
		t.Fatalf("ramp did not throttle: early %d late %d", early, late)
	}
}

func TestDelaySpikeAppliesAndRestores(t *testing.T) {
	base := 5 * time.Millisecond
	r := newRig(t, netem.PipeConfig{Rate: units.Gbps, Delay: base, QueuePackets: 100})
	sched := Schedule{Events: []Event{DelaySpike{
		Start: 50 * time.Millisecond, Duration: 50 * time.Millisecond, Extra: 40 * time.Millisecond,
	}}}
	if err := sched.Install(r.eng, r.path); err != nil {
		t.Fatalf("Install: %v", err)
	}
	probe := func(at time.Duration) { r.eng.Schedule(at, func() { r.path.Send(&seg.Packet{Len: 1000}) }) }
	probe(10 * time.Millisecond)  // before: ~base
	probe(60 * time.Millisecond)  // during: ~base+40ms
	probe(150 * time.Millisecond) // after: ~base again
	r.eng.Run(300 * time.Millisecond)
	if len(r.delivered) != 3 {
		t.Fatalf("delivered %d probes, want 3", len(r.delivered))
	}
	lat := []time.Duration{
		r.delivered[0] - 10*time.Millisecond,
		r.delivered[1] - 60*time.Millisecond,
		r.delivered[2] - 150*time.Millisecond,
	}
	if lat[0] > 6*time.Millisecond || lat[2] > 6*time.Millisecond {
		t.Fatalf("base latency off: %v", lat)
	}
	if lat[1] < 44*time.Millisecond {
		t.Fatalf("spike latency %v, want >= 44ms", lat[1])
	}
}

func TestHandoverSwitchesLinkParameters(t *testing.T) {
	r := newRig(t, netem.PipeConfig{Rate: 18 * units.Mbps, Delay: 25 * time.Millisecond, QueuePackets: 300})
	sched := Schedule{Events: []Event{Handover{
		At: 100 * time.Millisecond, Outage: 30 * time.Millisecond,
		Rate: 600 * units.Mbps, Delay: 800 * time.Microsecond,
	}}}
	if err := sched.Install(r.eng, r.path); err != nil {
		t.Fatalf("Install: %v", err)
	}
	r.eng.Run(140 * time.Millisecond)
	hop := r.path.Hop(0)
	if got := hop.Rate(); got != 600*units.Mbps {
		t.Fatalf("post-handover rate %v", got)
	}
	if got := hop.Delay(); got != 800*time.Microsecond {
		t.Fatalf("post-handover delay %v", got)
	}
	if hop.Paused() {
		t.Fatal("link still paused after outage")
	}
}

func TestBurstLossWindowed(t *testing.T) {
	r := newRig(t, netem.PipeConfig{Rate: units.Gbps, QueuePackets: 10000})
	sched := Schedule{Events: []Event{BurstLoss{
		Start: 50 * time.Millisecond, Duration: 100 * time.Millisecond,
		GE: netem.GEConfig{PGoodToBad: 0.05, PBadToGood: 0.2, LossBad: 0.9},
	}}}
	if err := sched.Install(r.eng, r.path); err != nil {
		t.Fatalf("Install: %v", err)
	}
	r.feed(100*time.Microsecond, 250*time.Millisecond)
	r.eng.Run(300 * time.Millisecond)
	before := r.deliveredIn(0, 50*time.Millisecond)
	during := r.deliveredIn(50*time.Millisecond, 150*time.Millisecond)
	after := r.deliveredIn(150*time.Millisecond, 250*time.Millisecond)
	// ~500 offered per window half before/after, ~1000 during.
	if before < 490 || after < 980 {
		t.Fatalf("loss outside the window: before %d after %d", before, after)
	}
	if during >= 1000 {
		t.Fatalf("no loss during the burst window: %d", during)
	}
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		eng := sim.New(seed)
		path, err := netem.NewPath(eng, netem.PathConfig{
			Hops: []netem.PipeConfig{{Rate: 100 * units.Mbps, QueuePackets: 100}},
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []time.Duration
		path.SetReceiver(func(p *seg.Packet) { got = append(got, eng.Now()) })
		sched := Schedule{Events: []Event{
			BurstLoss{Start: 10 * time.Millisecond, GE: netem.GEConfig{PGoodToBad: 0.1, PBadToGood: 0.3, LossBad: 0.8}},
			Blackout{Start: 40 * time.Millisecond, Duration: 20 * time.Millisecond},
		}}
		if err := sched.Install(eng, path); err != nil {
			t.Fatal(err)
		}
		var seq int64
		var tick func()
		tick = func() {
			if eng.Now() >= 100*time.Millisecond {
				return
			}
			path.Send(&seg.Packet{Seq: seq, Len: 1000})
			seq += 1000
			eng.Schedule(500*time.Microsecond, tick)
		}
		tick()
		eng.Run(150 * time.Millisecond)
		return got
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical delivery schedules")
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []Schedule{
		{Hop: -1},
		{Events: []Event{nil}},
		{Events: []Event{Blackout{Start: -time.Second, Duration: time.Second}}},
		{Events: []Event{Blackout{Start: 0, Duration: 0}}},
		{Events: []Event{RateStep{At: 0, Rate: 0}}},
		{Events: []Event{RateRamp{Duration: time.Second, From: 0, To: units.Mbps}}},
		{Events: []Event{DelaySpike{Duration: time.Second, Extra: 0}}},
		{Events: []Event{BurstLoss{GE: netem.GEConfig{PGoodToBad: 2}}}},
		{Events: []Event{Handover{Outage: -time.Second}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d validated", i)
		}
	}
	good := Schedule{Events: []Event{
		Blackout{Start: time.Second, Duration: 2 * time.Second},
		Handover{At: 4 * time.Second, Outage: 150 * time.Millisecond, Rate: 600 * units.Mbps},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("good schedule rejected: %v", err)
	}
	// Hop out of range is an Install-time error.
	eng := sim.New(1)
	path, err := netem.NewPath(eng, netem.PathConfig{Hops: []netem.PipeConfig{{Rate: units.Mbps}}})
	if err != nil {
		t.Fatal(err)
	}
	oob := Schedule{Hop: 3, Events: []Event{Blackout{Start: 0, Duration: time.Second}}}
	if err := oob.Install(eng, path); err == nil {
		t.Error("out-of-range hop installed")
	}
}

// TestEventWindows is the window audit: every event type must report the
// full interval its effect spans, including effects that extend past their
// start — the RateRamp's final step, the GE burst's end, the handover's
// outage — and must flag open-ended events whose effect persists to run end.
func TestEventWindows(t *testing.T) {
	ge := netem.GEConfig{PGoodToBad: 0.1, PBadToGood: 0.3, LossBad: 0.8}
	cases := []struct {
		name       string
		ev         Event
		start, end time.Duration
		open       bool
	}{
		{"blackout", Blackout{Start: time.Second, Duration: 2 * time.Second},
			time.Second, 3 * time.Second, false},
		{"rate step (instant)", RateStep{At: time.Second, Rate: units.Mbps},
			time.Second, time.Second, false},
		{"rate ramp spans to final step", RateRamp{Start: time.Second, Duration: 4 * time.Second, From: units.Mbps, To: 2 * units.Mbps},
			time.Second, 5 * time.Second, false},
		{"delay spike", DelaySpike{Start: time.Second, Duration: 500 * time.Millisecond, Extra: time.Millisecond},
			time.Second, 1500 * time.Millisecond, false},
		{"delay step (instant)", DelayStep{At: time.Second, Delay: 10 * time.Millisecond},
			time.Second, time.Second, false},
		{"burst loss windowed", BurstLoss{Start: time.Second, Duration: 3 * time.Second, GE: ge},
			time.Second, 4 * time.Second, false},
		{"burst loss open-ended", BurstLoss{Start: time.Second, GE: ge},
			time.Second, time.Second, true},
		{"handover spans outage", Handover{At: time.Second, Outage: 200 * time.Millisecond, Rate: units.Gbps},
			time.Second, 1200 * time.Millisecond, false},
	}
	for _, c := range cases {
		s, e, open := c.ev.window()
		if s != c.start || e != c.end || open != c.open {
			t.Errorf("%s: window = (%v, %v, %v), want (%v, %v, %v)",
				c.name, s, e, open, c.start, c.end, c.open)
		}
	}
}

// TestScheduleWindowEnvelope: the schedule's window is the envelope of its
// events, and an open-ended event anywhere marks the whole schedule open so
// phase attribution never treats the tail of the run as fault-free.
func TestScheduleWindowEnvelope(t *testing.T) {
	ge := netem.GEConfig{PGoodToBad: 0.1, PBadToGood: 0.3, LossBad: 0.8}
	if _, _, _, ok := (Schedule{}).Window(); ok {
		t.Error("empty schedule reported a window")
	}
	closed := Schedule{Events: []Event{
		RateStep{At: 2 * time.Second, Rate: units.Mbps},
		Blackout{Start: time.Second, Duration: 3 * time.Second},
		Handover{At: 5 * time.Second, Outage: 500 * time.Millisecond, Rate: units.Gbps},
	}}
	start, end, open, ok := closed.Window()
	if !ok || open || start != time.Second || end != 5500*time.Millisecond {
		t.Errorf("closed envelope = (%v, %v, open=%v, ok=%v), want (1s, 5.5s, false, true)",
			start, end, open, ok)
	}
	// Before the audit fix an open BurstLoss under-reported the envelope:
	// its end came back as its start, so the profiler entered the "after"
	// phase while the loss model was still armed.
	withOpen := Schedule{Events: []Event{
		Blackout{Start: time.Second, Duration: time.Second},
		BurstLoss{Start: 4 * time.Second, GE: ge},
	}}
	start, end, open, ok = withOpen.Window()
	if !ok || !open {
		t.Fatalf("open schedule reported open=%v ok=%v", open, ok)
	}
	if start != time.Second || end != 4*time.Second {
		t.Errorf("open envelope = (%v, %v), want (1s, 4s)", start, end)
	}
}

// TestInstallObservedOpenEndedNoEndMarker: an open-ended event emits a begin
// fault marker but no end marker (it never ends inside the run).
func TestInstallObservedOpenEndedNoEndMarker(t *testing.T) {
	eng := sim.New(1)
	path, err := netem.NewPath(eng, netem.PathConfig{
		Hops: []netem.PipeConfig{{Rate: units.Mbps, QueuePackets: 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus := telemetry.NewBus(eng, 100)
	sched := Schedule{Events: []Event{
		BurstLoss{Start: 10 * time.Millisecond, GE: netem.GEConfig{PGoodToBad: 0.1, PBadToGood: 0.3, LossBad: 0.8}},
		Blackout{Start: 20 * time.Millisecond, Duration: 10 * time.Millisecond},
	}}
	if err := sched.InstallObserved(eng, path, bus); err != nil {
		t.Fatal(err)
	}
	eng.Run(100 * time.Millisecond)
	var begins, ends int
	for _, e := range bus.Filter(telemetry.KindFault) {
		switch e.Old {
		case "begin":
			begins++
		case "end":
			ends++
		}
	}
	if begins != 2 {
		t.Errorf("begin markers = %d, want 2", begins)
	}
	if ends != 1 {
		t.Errorf("end markers = %d, want 1 (open-ended burst never ends)", ends)
	}
}

// TestDelayStepSetsAbsoluteDelay: unlike DelaySpike, DelayStep pins the
// hop's delay and leaves it there.
func TestDelayStepSetsAbsoluteDelay(t *testing.T) {
	r := newRig(t, netem.PipeConfig{Rate: units.Gbps, Delay: 5 * time.Millisecond, QueuePackets: 100})
	sched := Schedule{Events: []Event{
		DelayStep{At: 50 * time.Millisecond, Delay: 30 * time.Millisecond},
	}}
	if err := sched.Install(r.eng, r.path); err != nil {
		t.Fatalf("Install: %v", err)
	}
	probe := func(at time.Duration) { r.eng.Schedule(at, func() { r.path.Send(&seg.Packet{Len: 1000}) }) }
	probe(10 * time.Millisecond)  // before: ~5ms
	probe(60 * time.Millisecond)  // after the step: ~30ms
	probe(200 * time.Millisecond) // still ~30ms (no restore)
	r.eng.Run(300 * time.Millisecond)
	if len(r.delivered) != 3 {
		t.Fatalf("delivered %d probes, want 3", len(r.delivered))
	}
	lat := []time.Duration{
		r.delivered[0] - 10*time.Millisecond,
		r.delivered[1] - 60*time.Millisecond,
		r.delivered[2] - 200*time.Millisecond,
	}
	if lat[0] > 6*time.Millisecond {
		t.Errorf("pre-step latency %v, want ~5ms", lat[0])
	}
	if lat[1] < 30*time.Millisecond || lat[2] < 30*time.Millisecond {
		t.Errorf("post-step latencies %v / %v, want >= 30ms and persistent", lat[1], lat[2])
	}
	if got := r.path.Hop(0).Delay(); got != 30*time.Millisecond {
		t.Errorf("final hop delay %v, want 30ms", got)
	}
}

func TestDelayStepAndRampStepsValidate(t *testing.T) {
	if err := (DelayStep{At: -time.Second}).Validate(); err == nil {
		t.Error("negative At validated")
	}
	if err := (DelayStep{Delay: -time.Second}).Validate(); err == nil {
		t.Error("negative Delay validated")
	}
	if err := (DelayStep{At: time.Second, Delay: 0}).Validate(); err != nil {
		t.Errorf("zero delay (remove propagation delay) rejected: %v", err)
	}
	ramp := RateRamp{Duration: time.Second, From: units.Mbps, To: 2 * units.Mbps, Steps: maxRampSteps + 1}
	if err := ramp.Validate(); err == nil {
		t.Error("ramp with excessive steps validated")
	}
	ramp.Steps = maxRampSteps
	if err := ramp.Validate(); err != nil {
		t.Errorf("ramp at the step cap rejected: %v", err)
	}
}

// TestScheduleValidateOverlaps: two windowed events of the same conflict
// family must not overlap — each saves state at onset and restores at end,
// so interleaving double-applies. Touching windows (end == next start) and
// cross-family overlaps are legal; instantaneous events never conflict.
func TestScheduleValidateOverlaps(t *testing.T) {
	ge := netem.GEConfig{PGoodToBad: 0.1, PBadToGood: 0.3, LossBad: 0.8}
	ms := time.Millisecond
	cases := []struct {
		name    string
		events  []Event
		wantErr string // "" = must validate
	}{
		{"overlapping blackouts",
			[]Event{
				Blackout{Start: 100 * ms, Duration: 100 * ms},
				Blackout{Start: 150 * ms, Duration: 100 * ms},
			}, "overlaps"},
		{"blackout inside handover outage",
			[]Event{
				Handover{At: 100 * ms, Outage: 200 * ms, Rate: units.Gbps},
				Blackout{Start: 150 * ms, Duration: 50 * ms},
			}, "overlaps"},
		{"identical delay spikes",
			[]Event{
				DelaySpike{Start: 100 * ms, Duration: 50 * ms, Extra: 10 * ms},
				DelaySpike{Start: 100 * ms, Duration: 50 * ms, Extra: 20 * ms},
			}, "overlaps"},
		{"burst loss after open-ended burst loss",
			[]Event{
				BurstLoss{Start: 100 * ms, GE: ge},
				BurstLoss{Start: 500 * ms, Duration: 100 * ms, GE: ge},
			}, "open-ended"},
		{"crossing rate ramps",
			[]Event{
				RateRamp{Start: 0, Duration: 200 * ms, From: units.Gbps, To: units.Mbps},
				RateRamp{Start: 100 * ms, Duration: 200 * ms, From: units.Mbps, To: units.Gbps},
			}, "overlaps"},
		{"zero-outage handover",
			[]Event{Handover{At: 100 * ms, Rate: units.Gbps}},
			"RateStep"},
		{"touching blackouts (end == start)",
			[]Event{
				Blackout{Start: 100 * ms, Duration: 100 * ms},
				Blackout{Start: 200 * ms, Duration: 100 * ms},
			}, ""},
		{"blackout then handover back-to-back, out of order",
			[]Event{
				Handover{At: 200 * ms, Outage: 50 * ms, Rate: units.Gbps},
				Blackout{Start: 100 * ms, Duration: 100 * ms},
			}, ""},
		{"cross-family overlap is legal",
			[]Event{
				Blackout{Start: 100 * ms, Duration: 100 * ms},
				DelaySpike{Start: 120 * ms, Duration: 200 * ms, Extra: 10 * ms},
				BurstLoss{Start: 50 * ms, Duration: 500 * ms, GE: ge},
			}, ""},
		{"rate steps inside a blackout (instantaneous, no conflict)",
			[]Event{
				Blackout{Start: 100 * ms, Duration: 100 * ms},
				RateStep{At: 150 * ms, Rate: units.Mbps},
				DelayStep{At: 150 * ms, Delay: 10 * ms},
			}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := (Schedule{Events: tc.events}).Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid schedule rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("conflicting schedule validated")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
