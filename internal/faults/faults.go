// Package faults is the fault-injection and mobility layer: a Schedule of
// timed impairment events applied to a live netem path while the simulation
// runs. It models what a phone actually experiences in the field — link
// blackouts (elevators, tunnels), LTE→WiFi handovers, signal fades, delay
// spikes from radio-state promotions, and bursty (Gilbert–Elliott) loss —
// all driven off the sim.Engine clock and RNG, so every fault sequence is
// reproducible per seed.
package faults

import (
	"fmt"
	"sort"
	"time"

	"mobbr/internal/netem"
	"mobbr/internal/sim"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

// Event is one timed impairment. Implementations validate their parameters
// and install themselves onto a pipe via engine-scheduled callbacks.
type Event interface {
	// Validate rejects nonsensical parameters.
	Validate() error
	// install arms the event's engine callbacks against the target pipe.
	install(eng *sim.Engine, pipe *netem.Pipe)
	// window returns the event's active interval [start, end].
	// Instantaneous events return start == end. Open-ended events
	// (BurstLoss with Duration 0) return end == start and open == true:
	// their effect persists to the end of the run, so the true interval
	// is [start, run end).
	window() (start, end time.Duration, open bool)
	// conflictKey names the stateful link knob the event holds for its
	// window ("" = instantaneous, conflict-free). Two events with the
	// same key must not overlap: both mutate-and-restore the same state,
	// so interleaving silently double-applies (a Resume un-pauses a
	// still-active Blackout; a DelaySpike restores another spike's
	// inflated delay; a BurstLoss end cancels another's GE model).
	conflictKey() string
	// String describes the event for logs and error messages.
	String() string
}

// Blackout pauses the link completely for Duration starting at Start: no
// packet is serialized or delivered, and queued packets are held (an
// elevator ride, a tunnel, the dead gap of a hard handover).
type Blackout struct {
	Start    time.Duration
	Duration time.Duration
}

// Validate implements Event.
func (b Blackout) Validate() error {
	if b.Start < 0 {
		return fmt.Errorf("faults: blackout start %v is negative", b.Start)
	}
	if b.Duration <= 0 {
		return fmt.Errorf("faults: blackout duration %v must be positive", b.Duration)
	}
	return nil
}

func (b Blackout) install(eng *sim.Engine, pipe *netem.Pipe) {
	eng.Schedule(b.Start, pipe.Pause)
	eng.Schedule(b.Start+b.Duration, pipe.Resume)
}

func (b Blackout) window() (time.Duration, time.Duration, bool) {
	return b.Start, b.Start + b.Duration, false
}

// Blackout and Handover both pause/resume the pipe, so they share a key.
func (b Blackout) conflictKey() string { return "outage" }

// String implements Event.
func (b Blackout) String() string {
	return fmt.Sprintf("blackout@%v for %v", b.Start, b.Duration)
}

// RateStep sets the link rate to Rate at time At — an abrupt capacity
// change (cell load change, carrier aggregation kicking in).
type RateStep struct {
	At   time.Duration
	Rate units.Bandwidth
}

// Validate implements Event.
func (r RateStep) Validate() error {
	if r.At < 0 {
		return fmt.Errorf("faults: rate step at %v is negative", r.At)
	}
	if r.Rate <= 0 {
		return fmt.Errorf("faults: rate step to %v must be positive (use Blackout for an outage)", r.Rate)
	}
	return nil
}

func (r RateStep) install(eng *sim.Engine, pipe *netem.Pipe) {
	eng.Schedule(r.At, func() { pipe.SetRate(r.Rate) })
}

func (r RateStep) window() (time.Duration, time.Duration, bool) { return r.At, r.At, false }

func (r RateStep) conflictKey() string { return "" }

// String implements Event.
func (r RateStep) String() string {
	return fmt.Sprintf("rate-step@%v to %v", r.At, r.Rate)
}

// RateRamp interpolates the link rate linearly from From to To over
// [Start, Start+Duration] in Steps discrete steps — a signal fade as the
// phone walks away from the access point, or recovery as it walks back.
type RateRamp struct {
	Start    time.Duration
	Duration time.Duration
	From, To units.Bandwidth
	// Steps is the number of discrete rate changes (default 10).
	Steps int
}

// Validate implements Event.
func (r RateRamp) Validate() error {
	if r.Start < 0 {
		return fmt.Errorf("faults: rate ramp start %v is negative", r.Start)
	}
	if r.Duration <= 0 {
		return fmt.Errorf("faults: rate ramp duration %v must be positive", r.Duration)
	}
	if r.From <= 0 || r.To <= 0 {
		return fmt.Errorf("faults: rate ramp %v→%v must stay positive", r.From, r.To)
	}
	if r.Steps < 0 {
		return fmt.Errorf("faults: rate ramp steps %d is negative", r.Steps)
	}
	if r.Steps > maxRampSteps {
		return fmt.Errorf("faults: rate ramp steps %d exceeds %d (each step schedules an engine event)", r.Steps, maxRampSteps)
	}
	return nil
}

// maxRampSteps bounds the engine events one ramp may schedule.
const maxRampSteps = 10_000

func (r RateRamp) install(eng *sim.Engine, pipe *netem.Pipe) {
	steps := r.Steps
	if steps <= 0 {
		steps = 10
	}
	for i := 1; i <= steps; i++ {
		frac := float64(i) / float64(steps)
		rate := r.From + units.Bandwidth(float64(r.To-r.From)*frac)
		at := r.Start + time.Duration(float64(r.Duration)*frac)
		eng.Schedule(at, func() { pipe.SetRate(rate) })
	}
}

func (r RateRamp) window() (time.Duration, time.Duration, bool) {
	return r.Start, r.Start + r.Duration, false
}

func (r RateRamp) conflictKey() string { return "rate-ramp" }

// String implements Event.
func (r RateRamp) String() string {
	return fmt.Sprintf("rate-ramp@%v %v→%v over %v", r.Start, r.From, r.To, r.Duration)
}

// DelaySpike adds Extra one-way delay for Duration starting at Start — a
// radio-state promotion, a scheduling outage, deep paging. The pipe's
// pre-spike delay is captured at onset and restored afterwards.
type DelaySpike struct {
	Start    time.Duration
	Duration time.Duration
	Extra    time.Duration
}

// Validate implements Event.
func (d DelaySpike) Validate() error {
	if d.Start < 0 {
		return fmt.Errorf("faults: delay spike start %v is negative", d.Start)
	}
	if d.Duration <= 0 {
		return fmt.Errorf("faults: delay spike duration %v must be positive", d.Duration)
	}
	if d.Extra <= 0 {
		return fmt.Errorf("faults: delay spike extra %v must be positive", d.Extra)
	}
	return nil
}

func (d DelaySpike) install(eng *sim.Engine, pipe *netem.Pipe) {
	eng.Schedule(d.Start, func() {
		old := pipe.Delay()
		pipe.SetDelay(old + d.Extra)
		eng.Schedule(d.Duration, func() { pipe.SetDelay(old) })
	})
}

func (d DelaySpike) window() (time.Duration, time.Duration, bool) {
	return d.Start, d.Start + d.Duration, false
}

func (d DelaySpike) conflictKey() string { return "delay-excursion" }

// String implements Event.
func (d DelaySpike) String() string {
	return fmt.Sprintf("delay-spike@%v +%v for %v", d.Start, d.Extra, d.Duration)
}

// BurstLoss switches the pipe to Gilbert–Elliott two-state burst loss at
// Start; Duration 0 keeps it for the rest of the run. State transitions
// draw from the engine RNG, so the loss pattern is seed-reproducible.
type BurstLoss struct {
	Start    time.Duration
	Duration time.Duration // 0 = until end of run
	GE       netem.GEConfig
}

// Validate implements Event.
func (b BurstLoss) Validate() error {
	if b.Start < 0 {
		return fmt.Errorf("faults: burst loss start %v is negative", b.Start)
	}
	if b.Duration < 0 {
		return fmt.Errorf("faults: burst loss duration %v is negative", b.Duration)
	}
	return b.GE.Validate()
}

func (b BurstLoss) install(eng *sim.Engine, pipe *netem.Pipe) {
	ge := b.GE
	eng.Schedule(b.Start, func() { _ = pipe.SetGE(&ge) })
	if b.Duration > 0 {
		eng.Schedule(b.Start+b.Duration, func() { _ = pipe.SetGE(nil) })
	}
}

func (b BurstLoss) window() (time.Duration, time.Duration, bool) {
	// Duration 0 keeps the GE model armed to the end of the run.
	return b.Start, b.Start + b.Duration, b.Duration == 0
}

func (b BurstLoss) conflictKey() string { return "burst-loss" }

// String implements Event.
func (b BurstLoss) String() string {
	return fmt.Sprintf("burst-loss@%v for %v", b.Start, b.Duration)
}

// DelayStep sets the hop's one-way propagation delay to Delay at time At —
// an absolute counterpart to DelaySpike for trace replay, where each trace
// sample dictates the delay directly instead of a temporary excursion.
type DelayStep struct {
	At    time.Duration
	Delay time.Duration
}

// Validate implements Event.
func (d DelayStep) Validate() error {
	if d.At < 0 {
		return fmt.Errorf("faults: delay step at %v is negative", d.At)
	}
	if d.Delay < 0 {
		return fmt.Errorf("faults: delay step to %v is negative", d.Delay)
	}
	return nil
}

func (d DelayStep) install(eng *sim.Engine, pipe *netem.Pipe) {
	eng.Schedule(d.At, func() { _ = pipe.SetDelay(d.Delay) })
}

func (d DelayStep) window() (time.Duration, time.Duration, bool) { return d.At, d.At, false }

func (d DelayStep) conflictKey() string { return "" }

// String implements Event.
func (d DelayStep) String() string {
	return fmt.Sprintf("delay-step@%v to %v", d.At, d.Delay)
}

// Handover models a hard vertical handover (LTE→WiFi and back): the link
// goes dark for Outage at At, and comes back up with the new network's
// Rate and Delay. A zero Rate or Delay keeps the old value.
type Handover struct {
	At     time.Duration
	Outage time.Duration
	// Rate is the new link rate after the handover (0 = unchanged).
	Rate units.Bandwidth
	// Delay is the new one-way propagation delay (0 = unchanged).
	Delay time.Duration
}

// Validate implements Event.
func (h Handover) Validate() error {
	if h.At < 0 {
		return fmt.Errorf("faults: handover at %v is negative", h.At)
	}
	if h.Outage < 0 {
		return fmt.Errorf("faults: handover outage %v is negative", h.Outage)
	}
	if h.Outage == 0 {
		return fmt.Errorf("faults: handover outage must be positive — a zero-outage link change is a RateStep/DelayStep, not a handover")
	}
	if h.Rate < 0 {
		return fmt.Errorf("faults: handover rate %v is negative", h.Rate)
	}
	if h.Delay < 0 {
		return fmt.Errorf("faults: handover delay %v is negative", h.Delay)
	}
	return nil
}

func (h Handover) install(eng *sim.Engine, pipe *netem.Pipe) {
	eng.Schedule(h.At, func() {
		pipe.Pause()
		// The new link's parameters take effect while dark, so the first
		// packet after resume already sees the new network.
		if h.Rate > 0 {
			pipe.SetRate(h.Rate)
		}
		if h.Delay > 0 {
			_ = pipe.SetDelay(h.Delay)
		}
	})
	eng.Schedule(h.At+h.Outage, pipe.Resume)
}

func (h Handover) window() (time.Duration, time.Duration, bool) {
	return h.At, h.At + h.Outage, false
}

// Handover pauses/resumes like Blackout, so they share a key.
func (h Handover) conflictKey() string { return "outage" }

// String implements Event.
func (h Handover) String() string {
	return fmt.Sprintf("handover@%v outage %v → rate %v delay %v", h.At, h.Outage, h.Rate, h.Delay)
}

// Schedule is a set of impairment events applied to one hop of a path.
type Schedule struct {
	// Hop indexes the path hop the events apply to (0 is the hop next to
	// the sender — the radio/air link in the wireless presets).
	Hop int
	// Events fire independently; overlapping events on the same knob are
	// applied in schedule order at each instant.
	Events []Event
}

// Validate checks the whole schedule.
func (s Schedule) Validate() error {
	if s.Hop < 0 {
		return fmt.Errorf("faults: hop index %d is negative", s.Hop)
	}
	for i, ev := range s.Events {
		if ev == nil {
			return fmt.Errorf("faults: event %d is nil", i)
		}
		if err := ev.Validate(); err != nil {
			return fmt.Errorf("event %d (%s): %w", i, ev, err)
		}
	}
	return s.validateOverlaps()
}

// validateOverlaps rejects two windowed events of the same conflict family
// holding the link at once. Each such event saves state at onset and
// restores it at its end, so interleaved windows double-apply: the first
// Resume un-pauses a link a second Blackout still holds dark, a DelaySpike
// "restores" another spike's inflated delay, a BurstLoss end disarms a GE
// model a later window believes is active. Back-to-back windows (one ends
// exactly where the next starts) are fine — schedule order applies the end
// before the next start at that instant.
func (s Schedule) validateOverlaps() error {
	type win struct {
		idx        int
		ev         Event
		start, end time.Duration
		open       bool
	}
	families := map[string][]win{}
	for i, ev := range s.Events {
		key := ev.conflictKey()
		if key == "" {
			continue // instantaneous, conflict-free
		}
		start, end, open := ev.window()
		families[key] = append(families[key], win{i, ev, start, end, open})
	}
	for _, wins := range families {
		sort.SliceStable(wins, func(a, b int) bool { return wins[a].start < wins[b].start })
		for i := 1; i < len(wins); i++ {
			prev, cur := wins[i-1], wins[i]
			if prev.open {
				return fmt.Errorf("faults: event %d (%s) overlaps event %d (%s), which is open-ended (runs to end of run)",
					cur.idx, cur.ev, prev.idx, prev.ev)
			}
			if cur.start < prev.end {
				return fmt.Errorf("faults: event %d (%s) overlaps event %d (%s): window [%v, %v) is still active at %v",
					cur.idx, cur.ev, prev.idx, prev.ev, prev.start, prev.end, cur.start)
			}
		}
	}
	return nil
}

// Empty reports whether the schedule has no events.
func (s Schedule) Empty() bool { return len(s.Events) == 0 }

// Window returns the envelope of all events: the earliest start and the
// latest scheduled end, for phase attribution (before/during/after the
// fault window). open reports that at least one event is open-ended (its
// effect persists to the end of the run, e.g. BurstLoss with Duration 0),
// so the true envelope extends past end to the run's end — callers must
// not treat anything after end as fault-free when open is set. ok is
// false when the schedule is empty.
func (s Schedule) Window() (start, end time.Duration, open, ok bool) {
	if s.Empty() {
		return 0, 0, false, false
	}
	for i, ev := range s.Events {
		es, ee, eo := ev.window()
		if i == 0 || es < start {
			start = es
		}
		if ee > end {
			end = ee
		}
		open = open || eo
	}
	return start, end, open, true
}

// Install validates the schedule and arms every event on the target path.
// Event times are relative to installation — install before starting the
// run so they read as absolute virtual times.
func (s Schedule) Install(eng *sim.Engine, path *netem.Path) error {
	return s.InstallObserved(eng, path, nil)
}

// InstallObserved is Install plus telemetry: each event's begin and end are
// announced on the bus (KindFault, Conn -1) at the window edges, so traces
// carry the fault timeline alongside the transport's reaction to it. A nil
// bus degrades to plain Install.
func (s Schedule) InstallObserved(eng *sim.Engine, path *netem.Path, bus *telemetry.Bus) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Hop >= path.NumHops() {
		return fmt.Errorf("faults: hop %d out of range (path has %d hops)", s.Hop, path.NumHops())
	}
	pipe := path.Hop(s.Hop)
	for _, ev := range s.Events {
		ev.install(eng, pipe)
		if bus != nil {
			desc := ev.String()
			start, end, open := ev.window()
			eng.Schedule(start, func() {
				bus.Emit(telemetry.Event{Kind: telemetry.KindFault, Conn: -1, Old: "begin", New: desc})
			})
			// Open-ended events never end, so they get no end marker.
			if end > start && !open {
				eng.Schedule(end, func() {
					bus.Emit(telemetry.Event{Kind: telemetry.KindFault, Conn: -1, Old: "end", New: desc})
				})
			}
		}
	}
	return nil
}
