// Package device describes the two test phones (Pixel 4 and Pixel 6) and
// the four CPU configurations of the paper's Table 1, mapping each to a
// cpumodel operating point or governor. Frequencies follow the phones' real
// DVFS tables; IPC factors express how fast each core retires the cost
// model's reference cycles (in-order LITTLE cores well below the big
// out-of-order cores).
package device

import (
	"fmt"

	"mobbr/internal/cpumodel"
	"mobbr/internal/sim"
)

// Model identifies a phone.
type Model int

// Supported phones.
const (
	// Pixel4 (2019, Snapdragon 855, Android 11, kernel 4.14).
	Pixel4 Model = iota
	// Pixel6 (2021, Tensor, Android 12, kernel 5.10).
	Pixel6
)

// String returns the phone name.
func (m Model) String() string {
	switch m {
	case Pixel4:
		return "Pixel 4"
	case Pixel6:
		return "Pixel 6"
	default:
		return "unknown"
	}
}

// Config is a Table 1 CPU configuration.
type Config int

// Table 1 configurations.
const (
	// LowEnd pins the minimum LITTLE frequency with BIG cores disabled.
	LowEnd Config = iota
	// MidEnd pins 1.2 GHz on LITTLE cores with BIG cores disabled.
	MidEnd
	// HighEnd pins the maximum BIG frequency with LITTLE cores disabled.
	HighEnd
	// Default leaves the stock dynamic governor in charge.
	Default
)

// String returns the configuration name.
func (c Config) String() string {
	switch c {
	case LowEnd:
		return "Low-End"
	case MidEnd:
		return "Mid-End"
	case HighEnd:
		return "High-End"
	case Default:
		return "Default"
	default:
		return "unknown"
	}
}

// Configs lists all four configurations in the paper's order.
func Configs() []Config { return []Config{LowEnd, MidEnd, HighEnd, Default} }

// Valid reports whether the model is a known phone. Callers validate specs
// with this before Lookup, whose panic is then a programmer error.
func (m Model) Valid() error {
	switch m {
	case Pixel4, Pixel6:
		return nil
	}
	return fmt.Errorf("device: unknown model %d", int(m))
}

// Valid reports whether the configuration is one of Table 1's.
func (c Config) Valid() error {
	switch c {
	case LowEnd, MidEnd, HighEnd, Default:
		return nil
	}
	return fmt.Errorf("device: unknown CPU configuration %d", int(c))
}

// Spec holds a phone's CPU description.
type Spec struct {
	Model Model
	// LittleIPC / BigIPC are the per-cluster IPC factors.
	LittleIPC, BigIPC float64
	// LittleFreqs / BigFreqs are the DVFS steps in Hz, ascending.
	LittleFreqs, BigFreqs []float64
	// SustainedCapHz bounds the frequency the stock governor holds for
	// a sustained softirq-heavy load: EAS energy policy plus the
	// thermal envelope keep a Pixel's LITTLE cluster below its burst
	// maximum during minutes-long bulk transfers.
	SustainedCapHz float64
}

// Lookup returns the spec for a phone model.
func Lookup(m Model) Spec {
	switch m {
	case Pixel4:
		// Snapdragon 855: 4×A55 + 3+1×A76.
		return Spec{
			Model:     Pixel4,
			LittleIPC: 0.55,
			BigIPC:    1.00,
			LittleFreqs: []float64{
				576e6, 748.8e6, 998.4e6, 1209.6e6, 1440e6, 1612.8e6, 1785.6e6,
			},
			BigFreqs: []float64{
				825.6e6, 1171.2e6, 1612.8e6, 2092.8e6, 2419.2e6, 2841.6e6,
			},
			SustainedCapHz: 1.35e9,
		}
	case Pixel6:
		// Google Tensor: 4×A55 + 2×A76 + 2×X1. The X1 cluster is
		// folded into BigFreqs.
		// The paper's Figure 3 shows the Pixel 6 at 300 MHz roughly
		// matching the Pixel 4 at 576 MHz, so the Tensor A55 cluster
		// (newer kernel, larger caches, system-level cache) retires
		// netstack work at nearly twice the per-cycle rate.
		return Spec{
			Model:     Pixel6,
			LittleIPC: 1.00,
			BigIPC:    1.20,
			LittleFreqs: []float64{
				300e6, 574e6, 738e6, 930e6, 1098e6, 1197e6, 1328e6,
				1491e6, 1598e6, 1704e6, 1803e6,
			},
			BigFreqs: []float64{
				500e6, 851e6, 1277e6, 1703e6, 2049e6, 2450e6, 2802e6,
			},
			SustainedCapHz: 1.2e9,
		}
	default:
		panic(fmt.Sprintf("device: unknown model %d", m))
	}
}

// OperatingPoint returns the pinned operating point for a fixed
// configuration, per Table 1. It panics for Default, which is dynamic.
func (s Spec) OperatingPoint(c Config) cpumodel.OperatingPoint {
	switch c {
	case LowEnd:
		return cpumodel.OperatingPoint{FreqHz: s.LittleFreqs[0], IPC: s.LittleIPC}
	case MidEnd:
		return cpumodel.OperatingPoint{FreqHz: 1.2e9, IPC: s.LittleIPC}
	case HighEnd:
		return cpumodel.OperatingPoint{FreqHz: 2.8e9, IPC: s.BigIPC, Big: true}
	default:
		panic("device: Default configuration has no fixed operating point")
	}
}

// Governor returns the governor implementing configuration c, per Table 1:
// the userspace governor pinned to the config's frequency, or the stock
// dynamic governor for Default. Under EAS the network stack's softirq load
// runs on the LITTLE cluster, so the Default governor scales across the
// LITTLE DVFS table.
func (s Spec) Governor(c Config) cpumodel.Governor {
	if c != Default {
		return cpumodel.FixedGovernor{Point: s.OperatingPoint(c)}
	}
	var points []cpumodel.OperatingPoint
	for _, f := range s.LittleFreqs {
		if s.SustainedCapHz > 0 && f > s.SustainedCapHz {
			break
		}
		points = append(points, cpumodel.OperatingPoint{FreqHz: f, IPC: s.LittleIPC})
	}
	return &cpumodel.SchedutilGovernor{Points: points}
}

// NewCPU builds the netstack CPU for (model, config) on eng, with the
// governor already started.
func NewCPU(eng *sim.Engine, m Model, c Config) *cpumodel.CPU {
	spec := Lookup(m)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 1)
	spec.Governor(c).Start(eng, cpu)
	return cpu
}

// NewCPUs builds both cores the transfer exercises: the softirq (netstack)
// core and the application core that runs the iPerf sender's copy loop.
// Each gets its own governor instance at the same Table 1 configuration —
// on the phone they are two cores of the same (enabled) cluster.
// The two cores share the cluster's cpufreq policy, so a single governor
// drives both.
func NewCPUs(eng *sim.Engine, m Model, c Config) (netCPU, appCPU *cpumodel.CPU) {
	spec := Lookup(m)
	netCPU = cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 1)
	appCPU = cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 1)
	spec.Governor(c).Start(eng, netCPU, appCPU)
	return netCPU, appCPU
}
