package device

import (
	"testing"
	"time"

	"mobbr/internal/cpumodel"
	"mobbr/internal/sim"
)

func TestTable1OperatingPoints(t *testing.T) {
	p4 := Lookup(Pixel4)
	p6 := Lookup(Pixel6)

	// Table 1: Low-End = 576 MHz (P4) / 300 MHz (P6) on LITTLE cores.
	if f := p4.OperatingPoint(LowEnd).FreqHz; f != 576e6 {
		t.Errorf("Pixel4 Low-End = %v Hz, want 576 MHz", f)
	}
	if f := p6.OperatingPoint(LowEnd).FreqHz; f != 300e6 {
		t.Errorf("Pixel6 Low-End = %v Hz, want 300 MHz", f)
	}
	// Mid-End = 1.2 GHz on LITTLE for both.
	for _, s := range []Spec{p4, p6} {
		if f := s.OperatingPoint(MidEnd).FreqHz; f != 1.2e9 {
			t.Errorf("%v Mid-End = %v Hz, want 1.2 GHz", s.Model, f)
		}
		if s.OperatingPoint(MidEnd).Big {
			t.Errorf("%v Mid-End should be a LITTLE core", s.Model)
		}
		// High-End = 2.8 GHz on BIG.
		hp := s.OperatingPoint(HighEnd)
		if hp.FreqHz != 2.8e9 || !hp.Big {
			t.Errorf("%v High-End = %v Hz big=%v, want 2.8 GHz BIG", s.Model, hp.FreqHz, hp.Big)
		}
	}
}

func TestDefaultHasNoFixedPoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Default operating point")
		}
	}()
	Lookup(Pixel4).OperatingPoint(Default)
}

func TestGovernorKinds(t *testing.T) {
	s := Lookup(Pixel4)
	for _, c := range []Config{LowEnd, MidEnd, HighEnd} {
		if g := s.Governor(c); g.Name() != "userspace" {
			t.Errorf("%v governor = %q, want userspace", c, g.Name())
		}
	}
	if g := s.Governor(Default); g.Name() != "schedutil" {
		t.Errorf("Default governor = %q, want schedutil", g.Name())
	}
}

func TestDefaultGovernorRespectsSustainedCap(t *testing.T) {
	s := Lookup(Pixel4)
	g := s.Governor(Default).(*cpumodel.SchedutilGovernor)
	for _, p := range g.Points {
		if p.FreqHz > s.SustainedCapHz {
			t.Errorf("governor point %v Hz exceeds sustained cap %v", p.FreqHz, s.SustainedCapHz)
		}
	}
}

func TestSpeedOrdering(t *testing.T) {
	// Effective speeds must order Low < Mid < High for both phones.
	for _, m := range []Model{Pixel4, Pixel6} {
		s := Lookup(m)
		low := s.OperatingPoint(LowEnd).Speed()
		mid := s.OperatingPoint(MidEnd).Speed()
		high := s.OperatingPoint(HighEnd).Speed()
		if !(low < mid && mid < high) {
			t.Errorf("%v speeds not ordered: %v %v %v", m, low, mid, high)
		}
	}
}

func TestPixel6LowComparableToPixel4Low(t *testing.T) {
	// Figure 3's premise: P6 at 300 MHz performs like P4 at 576 MHz, so
	// effective speeds must be within ~15%.
	p4 := Lookup(Pixel4).OperatingPoint(LowEnd).Speed()
	p6 := Lookup(Pixel6).OperatingPoint(LowEnd).Speed()
	if r := p6 / p4; r < 0.8 || r > 1.2 {
		t.Errorf("P6/P4 Low-End speed ratio = %.2f, want ~1", r)
	}
}

func TestNewCPUsShareClusterGovernor(t *testing.T) {
	eng := sim.New(1)
	netCPU, appCPU := NewCPUs(eng, Pixel4, Default)
	if netCPU.Speed() != appCPU.Speed() {
		t.Fatalf("cluster cores boot at different speeds: %v vs %v",
			netCPU.Speed(), appCPU.Speed())
	}
	// Load only the app core; the shared policy must raise both.
	var load func()
	load = func() {
		appCPU.Submit(cpumodel.OpDataCopy, appCPU.Speed()*0.002, func() {})
		eng.Schedule(time.Millisecond, load)
	}
	eng.Schedule(0, load)
	eng.Run(500 * time.Millisecond)
	if netCPU.Speed() != appCPU.Speed() {
		t.Errorf("cluster speeds diverged: net %v app %v", netCPU.Speed(), appCPU.Speed())
	}
	boot := Lookup(Pixel4).LittleFreqs[0] * Lookup(Pixel4).LittleIPC
	if netCPU.Speed() <= boot {
		t.Errorf("net core speed %v did not rise with app-core load", netCPU.Speed())
	}
}

func TestConfigsAndStrings(t *testing.T) {
	if len(Configs()) != 4 {
		t.Fatalf("Configs() = %d entries, want 4", len(Configs()))
	}
	names := map[Config]string{LowEnd: "Low-End", MidEnd: "Mid-End", HighEnd: "High-End", Default: "Default"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
	if Pixel4.String() != "Pixel 4" || Pixel6.String() != "Pixel 6" {
		t.Error("model names wrong")
	}
}
