package seg

// PoolSet is the sharded form of Pool: one arena per engine shard, each
// touched only by its own shard between barriers, with the single-pool
// conservation invariant recovered by summing the arena censuses. The data
// path creates asymmetric flow between arenas — the sender arena Gets
// packets the receiver arena Puts, and vice versa for ACKs — so a single
// arena's Outstanding count may legitimately go negative; only the sum is
// conserved, and that sum is what the invariant checker audits against the
// network's in-transit census.
//
// Without intervention the asymmetry starves the freelists (the sender
// would allocate a fresh packet per segment forever while the receiver
// arena's freelist grows without bound), so the sharded engine calls
// Rebalance at every window barrier: freed packets splice back to the
// packet-getter arena and freed ACKs to the ACK-getter arena, both O(1)
// via the freelist tail pointers.
type PoolSet struct {
	arenas []*Pool
	// pktHome / ackHome are the arenas that Get (and so should own the
	// freelists of) packets and ACKs respectively: in the sender/receiver
	// split the sender arena acquires packets, the receiver arena ACKs.
	pktHome, ackHome int
}

// NewPoolSet returns n empty arenas; freed packets rebalance to arena
// pktHome and freed ACKs to arena ackHome.
func NewPoolSet(n, pktHome, ackHome int) *PoolSet {
	if n < 1 || pktHome < 0 || pktHome >= n || ackHome < 0 || ackHome >= n {
		panic("seg: invalid pool-set shape")
	}
	s := &PoolSet{pktHome: pktHome, ackHome: ackHome}
	for i := 0; i < n; i++ {
		s.arenas = append(s.arenas, NewPool())
	}
	return s
}

// Arena returns the i-th arena, a plain *Pool wired into the shard that
// owns it exactly as a serial run's single pool would be.
func (s *PoolSet) Arena(i int) *Pool { return s.arenas[i] }

// Arenas returns the arena count.
func (s *PoolSet) Arenas() int { return len(s.arenas) }

// Stats sums the arena censuses. The Outstanding sums satisfy the same
// conservation invariant as a single pool's; the MaxOutstanding sums are an
// upper bound on the true global peak (per-arena peaks need not coincide).
func (s *PoolSet) Stats() PoolStats {
	var t PoolStats
	for _, a := range s.arenas {
		st := a.Stats()
		t.PacketGets += st.PacketGets
		t.PacketNews += st.PacketNews
		t.AckGets += st.AckGets
		t.AckNews += st.AckNews
		t.PacketPuts += st.PacketPuts
		t.AckPuts += st.AckPuts
		t.OutstandingPackets += st.OutstandingPackets
		t.OutstandingAcks += st.OutstandingAcks
		t.MaxOutstandingPackets += st.MaxOutstandingPackets
		t.MaxOutstandingAcks += st.MaxOutstandingAcks
		t.Violations += st.Violations
	}
	return t
}

// Violations concatenates every arena's recorded lifecycle violations.
func (s *PoolSet) Violations() []Violation {
	var out []Violation
	for _, a := range s.arenas {
		out = append(out, a.Violations()...)
	}
	return out
}

// Rebalance splices every arena's free packets to the packet-home arena and
// free ACKs to the ACK-home arena. O(1) per arena. Call it single-threaded
// (at a window barrier or after the run); it moves only free objects, so no
// census changes and no lifecycle states change.
func (s *PoolSet) Rebalance() {
	pktHome, ackHome := s.arenas[s.pktHome], s.arenas[s.ackHome]
	for i, a := range s.arenas {
		if i != s.pktHome && a.freePkt != nil {
			if pktHome.freePkt == nil {
				pktHome.freePkt = a.freePkt
			} else {
				pktHome.freePktTail.next = a.freePkt
			}
			pktHome.freePktTail = a.freePktTail
			a.freePkt, a.freePktTail = nil, nil
		}
		if i != s.ackHome && a.freeAck != nil {
			if ackHome.freeAck == nil {
				ackHome.freeAck = a.freeAck
			} else {
				ackHome.freeAckTail.next = a.freeAck
			}
			ackHome.freeAckTail = a.freeAckTail
			a.freeAck, a.freeAckTail = nil, nil
		}
	}
}
