package seg

import "testing"

// TestPoolSetConservation models the sharded data path: arena 0 (sender)
// Gets packets that arena 1 (receiver) Puts, and arena 1 Gets ACKs that
// arena 0 Puts. Per-arena Outstanding counts go negative/positive, but the
// summed census must obey the single-pool conservation invariant.
func TestPoolSetConservation(t *testing.T) {
	s := NewPoolSet(2, 0, 1)
	tx, rx := s.Arena(0), s.Arena(1)

	var inFlightPkts []*Packet
	for i := 0; i < 10; i++ {
		inFlightPkts = append(inFlightPkts, tx.GetPacket())
	}
	for _, p := range inFlightPkts[:7] {
		rx.PutPacket(p)
	}
	var inFlightAcks []*Ack
	for i := 0; i < 7; i++ {
		inFlightAcks = append(inFlightAcks, rx.GetAck())
	}
	for _, a := range inFlightAcks[:5] {
		tx.PutAck(a)
	}

	if got := rx.Stats().OutstandingPackets; got != -7 {
		t.Fatalf("rx outstanding packets %d, want -7", got)
	}
	sum := s.Stats()
	if sum.OutstandingPackets != 3 || sum.OutstandingAcks != 2 {
		t.Fatalf("summed outstanding = %d pkts / %d acks, want 3 / 2", sum.OutstandingPackets, sum.OutstandingAcks)
	}
	if len(s.Violations()) != 0 {
		t.Fatalf("unexpected violations: %v", s.Violations())
	}
}

// TestPoolSetRebalance: after a barrier rebalance the packet-getter arena
// serves Gets from the freed objects the other arena released — no fresh
// allocation — and the summed census is unchanged.
func TestPoolSetRebalance(t *testing.T) {
	s := NewPoolSet(2, 0, 1)
	tx, rx := s.Arena(0), s.Arena(1)

	for i := 0; i < 8; i++ {
		rx.PutPacket(tx.GetPacket())
		tx.PutAck(rx.GetAck())
	}
	before := s.Stats()
	s.Rebalance()
	if got := s.Stats(); got != before {
		t.Fatalf("rebalance changed the census: %+v vs %+v", got, before)
	}

	for i := 0; i < 8; i++ {
		if p := tx.GetPacket(); p == nil {
			t.Fatal("nil packet")
		}
		if a := rx.GetAck(); a == nil {
			t.Fatal("nil ack")
		}
	}
	if tx.Stats().PacketNews != 8 {
		t.Fatalf("tx allocated %d packets total, want the original 8 only", tx.Stats().PacketNews)
	}
	if rx.Stats().AckNews != 8 {
		t.Fatalf("rx allocated %d acks total, want the original 8 only", rx.Stats().AckNews)
	}
}

// TestPoolSetRepeatedRebalance interleaves traffic with barriers and checks
// the freelist tails stay coherent (a broken splice would lose or cycle the
// list and show up as allocation or corruption here).
func TestPoolSetRepeatedRebalance(t *testing.T) {
	s := NewPoolSet(2, 0, 1)
	tx, rx := s.Arena(0), s.Arena(1)
	for round := 0; round < 50; round++ {
		var pkts []*Packet
		for i := 0; i < 20; i++ {
			pkts = append(pkts, tx.GetPacket())
		}
		for _, p := range pkts {
			rx.PutPacket(p)
		}
		var acks []*Ack
		for i := 0; i < 20; i++ {
			acks = append(acks, rx.GetAck())
		}
		for _, a := range acks {
			tx.PutAck(a)
		}
		s.Rebalance()
	}
	sum := s.Stats()
	if sum.OutstandingPackets != 0 || sum.OutstandingAcks != 0 {
		t.Fatalf("outstanding after drain: %d pkts / %d acks", sum.OutstandingPackets, sum.OutstandingAcks)
	}
	// Steady state: only the first round allocated.
	if sum.PacketNews != 20 || sum.AckNews != 20 {
		t.Fatalf("news = %d pkts / %d acks, want 20 / 20", sum.PacketNews, sum.AckNews)
	}
	if sum.Violations != 0 {
		t.Fatalf("violations: %v", s.Violations())
	}
}

// TestPoolSetShapeValidation rejects invalid arena counts and home indexes.
func TestPoolSetShapeValidation(t *testing.T) {
	for _, c := range []struct{ n, pkt, ack int }{{0, 0, 0}, {2, 2, 0}, {2, 0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPoolSet(%d,%d,%d) did not panic", c.n, c.pkt, c.ack)
				}
			}()
			NewPoolSet(c.n, c.pkt, c.ack)
		}()
	}
}
