// Package seg defines the units of data moving through the simulated
// network: MSS-sized packets on the wire, ACKs flowing back, and the
// sender-side skb aggregates that the pacer and the CPU model reason about.
package seg

import (
	"time"

	"mobbr/internal/units"
)

// MSS is the maximum segment size used throughout the testbed (Ethernet
// 1500-byte MTU minus 40 bytes of IP+TCP headers, matching the paper's
// iPerf3-over-Ethernet setup).
const MSS units.DataSize = 1460

// Packet is one TCP data segment on the wire.
type Packet struct {
	// Flow identifies the connection the packet belongs to.
	Flow int
	// Seq is the first byte's sequence number.
	Seq int64
	// Len is the payload length in bytes (≤ MSS).
	Len units.DataSize
	// SentAt is the virtual time the packet left the sender's stack.
	SentAt time.Duration
	// Retx marks a retransmission.
	Retx bool
	// CE is the ECN Congestion-Experienced mark, set by an AQM queue
	// instead of dropping when the sender negotiated ECN.
	CE bool

	// Rate-sample bookkeeping, mirroring struct tcp_skb_cb's rate fields
	// (tx.delivered, tx.delivered_mstamp, tx.first_tx_mstamp,
	// tx.is_app_limited): snapshotted at transmission so the ACK path can
	// compute a delivery-rate sample per RFC draft-cheng-iccrg-delivery-rate.
	DeliveredAtSend     int64
	DeliveredTimeAtSend time.Duration
	FirstSentAtSend     time.Duration
	AppLimitedAtSend    bool

	// Pool plumbing: freelist / hold-list links and the lifecycle state.
	// A packet is on at most one intrusive list at a time — the pool's
	// freelist while free, or one holder's PacketList while in flight.
	next, prev *Packet
	life       lifeState
	listed     bool
}

// End returns the sequence number one past the packet's last byte.
func (p *Packet) End() int64 { return p.Seq + int64(p.Len) }

// SackBlock is one contiguous range of received-but-not-cumulatively-acked
// bytes reported by the receiver.
type SackBlock struct {
	Start, End int64
}

// Len returns the block length in bytes.
func (b SackBlock) Len() int64 { return b.End - b.Start }

// Ack is an acknowledgment flowing from receiver to sender.
type Ack struct {
	// Flow identifies the connection.
	Flow int
	// CumAck is the next byte the receiver expects (cumulative ACK).
	CumAck int64
	// Sacks reports up to three most recent out-of-order blocks.
	Sacks []SackBlock
	// EchoSentAt is the send timestamp of the packet that triggered this
	// ACK (a timestamp-option stand-in used for RTT sampling).
	EchoSentAt time.Duration
	// AckedPktEnd is the end sequence of the packet that triggered the
	// ACK; rate sampling uses the newest acked packet's snapshot.
	AckedPktEnd int64
	// Echoes of the triggering packet's rate-sample snapshot.
	EchoDelivered     int64
	EchoDeliveredTime time.Duration
	EchoFirstSent     time.Duration
	EchoAppLimited    bool
	EchoRetx          bool
	// CECount is how many CE-marked segments this ACK covers (the
	// receiver's ECE echo, counted rather than latched, as AccECN does).
	CECount int64

	// Pool plumbing, as on Packet.
	next, prev *Ack
	life       lifeState
	listed     bool
}
