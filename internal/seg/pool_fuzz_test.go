package seg

import "testing"

// FuzzPoolLifecycle drives random acquire/release orderings — including
// deliberate double releases, foreign releases, and releases of held
// objects — against the pool, and checks the pool's self-audit against an
// independent model: outstanding counts must track exactly, every illegal
// release must be recorded as a violation (never corrupt the freelist), and
// a final full release must always bring the census back to zero.
func FuzzPoolLifecycle(f *testing.F) {
	f.Add([]byte{0, 0, 2, 1, 1, 3})
	f.Add([]byte{0, 1, 1, 4, 0, 2, 2})
	f.Add([]byte{5, 0, 3, 0, 1, 5, 4, 2, 1, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		pool := NewPool()
		var (
			livePkts []*Packet
			liveAcks []*Ack
			freed    []*Packet // released once; releasing again is a double release
			held     PacketList
			heldPkts []*Packet
			wantViol int
		)
		// acquire pops recycled pointers back out of the freed set — a
		// pointer the pool has re-issued is live again, so releasing it
		// would no longer be a double release.
		acquire := func() *Packet {
			p := pool.GetPacket()
			for i, q := range freed {
				if q == p {
					freed = append(freed[:i], freed[i+1:]...)
					break
				}
			}
			return p
		}
		for _, op := range ops {
			switch op % 8 {
			case 0: // acquire packet
				livePkts = append(livePkts, acquire())
			case 1: // release oldest live packet
				if len(livePkts) > 0 {
					p := livePkts[0]
					livePkts = livePkts[1:]
					pool.PutPacket(p)
					freed = append(freed, p)
				}
			case 2: // acquire ACK
				liveAcks = append(liveAcks, pool.GetAck())
			case 3: // release newest live ACK
				if len(liveAcks) > 0 {
					a := liveAcks[len(liveAcks)-1]
					liveAcks = liveAcks[:len(liveAcks)-1]
					pool.PutAck(a)
				}
			case 4: // double release
				if len(freed) > 0 {
					pool.PutPacket(freed[0])
					wantViol++
				}
			case 5: // foreign release
				pool.PutPacket(&Packet{})
				wantViol++
			case 6: // park a live packet on a hold list
				if len(livePkts) > 0 {
					p := livePkts[0]
					livePkts = livePkts[1:]
					held.Push(p)
					heldPkts = append(heldPkts, p)
				}
			case 7: // release while held: violation, object stays live
				if len(heldPkts) > 0 {
					pool.PutPacket(heldPkts[0])
					wantViol++
				}
			}
		}
		st := pool.Stats()
		wantPkts := len(livePkts) + held.Len()
		if st.OutstandingPackets != wantPkts {
			t.Fatalf("outstanding packets %d, model says %d", st.OutstandingPackets, wantPkts)
		}
		if st.OutstandingAcks != len(liveAcks) {
			t.Fatalf("outstanding ACKs %d, model says %d", st.OutstandingAcks, len(liveAcks))
		}
		if st.Violations != wantViol {
			t.Fatalf("violations %d, model says %d", st.Violations, wantViol)
		}
		// Legal releases must never have been rejected.
		if st.PacketPuts != st.PacketGets-uint64(wantPkts) {
			t.Fatalf("puts %d, gets %d, outstanding %d — a legal release was rejected",
				st.PacketPuts, st.PacketGets, wantPkts)
		}
		// Run-end reclaim: drain the hold list and release everything.
		held.Drain(pool.PutPacket)
		for _, p := range livePkts {
			pool.PutPacket(p)
		}
		for _, a := range liveAcks {
			pool.PutAck(a)
		}
		st = pool.Stats()
		if st.OutstandingPackets != 0 || st.OutstandingAcks != 0 {
			t.Fatalf("after full reclaim: %d packets, %d ACKs outstanding",
				st.OutstandingPackets, st.OutstandingAcks)
		}
		if st.Violations != wantViol {
			t.Fatalf("reclaim added violations: %d, model says %d", st.Violations, wantViol)
		}
		// The freelist must be intact: every recycled object comes back
		// exactly once, zeroed.
		n := int(st.PacketPuts)
		seen := make(map[*Packet]bool, n)
		for i := 0; i < n; i++ {
			p := pool.GetPacket()
			if seen[p] {
				t.Fatal("freelist returned the same packet twice")
			}
			seen[p] = true
		}
	})
}
