package seg

import (
	"testing"
	"time"
)

func TestPoolRecyclesPackets(t *testing.T) {
	p := NewPool()
	a := p.GetPacket()
	a.Flow, a.Seq, a.Len = 3, 1460, MSS
	p.PutPacket(a)
	b := p.GetPacket()
	if b != a {
		t.Fatal("second GetPacket did not reuse the released packet")
	}
	if b.Flow != 0 || b.Seq != 0 || b.Len != 0 || b.Retx || b.SentAt != 0 {
		t.Fatalf("recycled packet not zeroed: %+v", *b)
	}
	st := p.Stats()
	if st.PacketGets != 2 || st.PacketNews != 1 || st.PacketsRecycled() != 1 {
		t.Fatalf("stats = %+v, want 2 gets / 1 new / 1 recycled", st)
	}
	if st.OutstandingPackets != 1 {
		t.Fatalf("outstanding = %d, want 1", st.OutstandingPackets)
	}
}

func TestPoolRecyclesAcksPreservingSackCapacity(t *testing.T) {
	p := NewPool()
	a := p.GetAck()
	a.Sacks = append(a.Sacks, SackBlock{Start: 1, End: 2}, SackBlock{Start: 5, End: 9})
	cap1 := cap(a.Sacks)
	p.PutAck(a)
	b := p.GetAck()
	if b != a {
		t.Fatal("second GetAck did not reuse the released ACK")
	}
	if len(b.Sacks) != 0 {
		t.Fatalf("recycled ACK kept %d SACK blocks", len(b.Sacks))
	}
	if cap(b.Sacks) != cap1 {
		t.Fatalf("SACK capacity %d not preserved (was %d)", cap(b.Sacks), cap1)
	}
	if b.CumAck != 0 || b.Flow != 0 || b.EchoSentAt != 0 {
		t.Fatalf("recycled ACK not zeroed: %+v", *b)
	}
}

func TestPoolDoubleReleaseIsViolation(t *testing.T) {
	p := NewPool()
	pkt := p.GetPacket()
	pkt.Flow, pkt.Seq = 1, 42
	p.PutPacket(pkt)
	p.PutPacket(pkt)
	vs := p.Violations()
	if len(vs) != 1 || vs[0].Kind != "packet-double-release" {
		t.Fatalf("violations = %v, want one packet-double-release", vs)
	}
	if st := p.Stats(); st.PacketPuts != 1 || st.OutstandingPackets != 0 {
		t.Fatalf("double release corrupted stats: %+v", st)
	}
	// Freelist must still hold exactly one entry.
	if q := p.GetPacket(); q != pkt {
		t.Fatal("freelist corrupted by double release")
	}
	if p.GetPacket() == pkt {
		t.Fatal("double release duplicated the packet on the freelist")
	}

	a := p.GetAck()
	p.PutAck(a)
	p.PutAck(a)
	vs = p.Violations()
	if len(vs) != 2 || vs[1].Kind != "ack-double-release" {
		t.Fatalf("violations = %v, want ack-double-release appended", vs)
	}
}

func TestPoolForeignReleaseIsViolation(t *testing.T) {
	p := NewPool()
	p.PutPacket(&Packet{Flow: 7})
	p.PutAck(&Ack{Flow: 7})
	vs := p.Violations()
	if len(vs) != 2 || vs[0].Kind != "packet-foreign-release" || vs[1].Kind != "ack-foreign-release" {
		t.Fatalf("violations = %v, want foreign-release pair", vs)
	}
	if st := p.Stats(); st.PacketPuts != 0 || st.AckPuts != 0 || st.Violations != 2 {
		t.Fatalf("foreign release counted as a put: %+v", st)
	}
	// The foreign objects must not have entered the freelist.
	if p.GetPacket().Flow != 0 || p.GetAck().Flow != 0 {
		t.Fatal("foreign object entered the freelist")
	}
}

func TestPoolReleaseWhileHeldIsViolation(t *testing.T) {
	p := NewPool()
	var hold PacketList
	pkt := p.GetPacket()
	hold.Push(pkt)
	p.PutPacket(pkt)
	vs := p.Violations()
	if len(vs) != 1 || vs[0].Kind != "packet-release-while-held" {
		t.Fatalf("violations = %v, want packet-release-while-held", vs)
	}
	// After unlinking, release must succeed.
	hold.Remove(pkt)
	p.PutPacket(pkt)
	if st := p.Stats(); st.OutstandingPackets != 0 || st.PacketPuts != 1 {
		t.Fatalf("release after unlink failed: %+v", st)
	}
}

func TestPoolViolationCap(t *testing.T) {
	p := NewPool()
	for i := 0; i < maxViolations+10; i++ {
		p.PutPacket(&Packet{})
	}
	if got := len(p.Violations()); got != maxViolations {
		t.Fatalf("recorded %d violations, want cap %d", got, maxViolations)
	}
	if st := p.Stats(); st.Violations != maxViolations+10 {
		t.Fatalf("violation counter %d, want %d", st.Violations, maxViolations+10)
	}
}

func TestNilPoolDegradesToHeap(t *testing.T) {
	var p *Pool
	pkt := p.GetPacket()
	if pkt == nil {
		t.Fatal("nil pool returned nil packet")
	}
	p.PutPacket(pkt) // no-op, must not panic
	a := p.GetAck()
	if a == nil {
		t.Fatal("nil pool returned nil ACK")
	}
	p.PutAck(a)
	if st := p.Stats(); st != (PoolStats{}) {
		t.Fatalf("nil pool has stats: %+v", st)
	}
	if p.Violations() != nil {
		t.Fatal("nil pool has violations")
	}
}

func TestPacketListPushRemoveDrain(t *testing.T) {
	var l PacketList
	pkts := []*Packet{{Seq: 1}, {Seq: 2}, {Seq: 3}}
	for _, p := range pkts {
		l.Push(p)
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d, want 3", l.Len())
	}
	l.Remove(pkts[1]) // middle
	l.Remove(pkts[1]) // second remove is a no-op
	if l.Len() != 2 {
		t.Fatalf("len after remove = %d, want 2", l.Len())
	}
	var drained []int64
	l.Drain(func(p *Packet) { drained = append(drained, p.Seq) })
	if l.Len() != 0 || len(drained) != 2 {
		t.Fatalf("drain left len=%d drained=%v", l.Len(), drained)
	}
	for _, p := range pkts {
		if p.listed || p.next != nil || p.prev != nil {
			t.Fatalf("packet %d still linked after drain/remove", p.Seq)
		}
	}
}

func TestPacketListDoublePushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double Push did not panic")
		}
	}()
	var a, b PacketList
	p := &Packet{}
	a.Push(p)
	b.Push(p)
}

func TestAckListPushRemoveDrain(t *testing.T) {
	var l AckList
	acks := []*Ack{{CumAck: 1}, {CumAck: 2}}
	for _, a := range acks {
		l.Push(a)
	}
	l.Remove(acks[0])
	if l.Len() != 1 {
		t.Fatalf("len = %d, want 1", l.Len())
	}
	n := 0
	l.Drain(func(a *Ack) { n++ })
	if n != 1 || l.Len() != 0 {
		t.Fatalf("drained %d, len %d", n, l.Len())
	}
}

// TestPoolSteadyStateDoesNotGrow exercises a realistic churn pattern: a
// window of packets in flight, released in FIFO order while new ones are
// acquired. After warm-up the pool must serve everything from the freelist.
func TestPoolSteadyStateDoesNotGrow(t *testing.T) {
	p := NewPool()
	const window = 64
	var inFlight []*Packet
	for i := 0; i < 10_000; i++ {
		pkt := p.GetPacket()
		pkt.Seq = int64(i) * int64(MSS)
		pkt.SentAt = time.Duration(i)
		inFlight = append(inFlight, pkt)
		if len(inFlight) > window {
			p.PutPacket(inFlight[0])
			inFlight = inFlight[1:]
		}
	}
	st := p.Stats()
	if st.PacketNews > window+1 {
		t.Fatalf("steady state allocated %d fresh packets for a %d-packet window", st.PacketNews, window)
	}
	if st.OutstandingPackets != window {
		t.Fatalf("outstanding = %d, want %d", st.OutstandingPackets, window)
	}
	if len(p.Violations()) != 0 {
		t.Fatalf("unexpected violations: %v", p.Violations())
	}
}

func TestPoolHighWater(t *testing.T) {
	p := NewPool()
	var pkts []*Packet
	for i := 0; i < 5; i++ {
		pkts = append(pkts, p.GetPacket())
	}
	for _, pk := range pkts {
		p.PutPacket(pk)
	}
	// Re-acquire fewer than the peak: high water must not move.
	a := p.GetPacket()
	b := p.GetAck()
	st := p.Stats()
	if st.MaxOutstandingPackets != 5 {
		t.Errorf("MaxOutstandingPackets = %d, want 5", st.MaxOutstandingPackets)
	}
	if st.OutstandingPackets != 1 {
		t.Errorf("OutstandingPackets = %d, want 1", st.OutstandingPackets)
	}
	if st.MaxOutstandingAcks != 1 {
		t.Errorf("MaxOutstandingAcks = %d, want 1", st.MaxOutstandingAcks)
	}
	p.PutPacket(a)
	p.PutAck(b)
	if st := p.Stats(); st.OutstandingPackets != 0 || st.OutstandingAcks != 0 {
		t.Errorf("outstanding after release = %d/%d", st.OutstandingPackets, st.OutstandingAcks)
	}
}
