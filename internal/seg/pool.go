package seg

import "fmt"

// lifeState tracks where a pooled object is in its acquire/release cycle.
type lifeState uint8

const (
	// lifeUnpooled marks objects built outside any pool (unit tests,
	// ad-hoc probes); the pool ignores them on release.
	lifeUnpooled lifeState = iota
	// lifeLive is checked out of a pool and owned by exactly one holder.
	lifeLive
	// lifeFree is parked on the pool's freelist.
	lifeFree
)

// maxViolations bounds how many lifecycle violations one pool records; the
// first few identify the bug, the rest are noise.
const maxViolations = 16

// Pool is a per-run memory recycler for the data path's unit objects:
// MSS-sized Packets on the wire and Acks flowing back. Both are recycled
// through freelists with explicit acquire/release at the well-defined sink
// points (packet consumed by the receiver, dropped at a queue, expired in a
// hold buffer; ACK consumed by the sender's ACK path), so a steady-state run
// performs no per-segment heap allocation.
//
// The pool audits its own lifecycle: it counts outstanding objects (the
// invariant checker cross-checks them against the network's in-transit
// census each audit tick) and records double-releases and foreign releases
// as structured violations instead of corrupting the freelist.
//
// A Pool is deliberately not safe for concurrent use: each simulation run
// owns a private pool (created in core.Run), which is what keeps
// repro.ForEach -j parallelism race-free. All methods are nil-receiver
// safe — a nil *Pool degrades to plain heap allocation with no accounting,
// which is what unit tests that build conns/pipes directly get.
type Pool struct {
	freePkt *Packet
	freeAck *Ack
	// Freelist tails make PoolSet.Rebalance an O(1) splice instead of a
	// walk; nil whenever the corresponding head is nil.
	freePktTail *Packet
	freeAckTail *Ack

	stats      PoolStats
	violations []Violation
}

// PoolStats is the pool's acquire/release census.
type PoolStats struct {
	// PacketGets / AckGets count acquisitions; PacketNews / AckNews count
	// the subset that had to allocate because the freelist was empty. The
	// difference is the recycling the pool achieved.
	PacketGets, PacketNews uint64
	AckGets, AckNews       uint64
	// PacketPuts / AckPuts count successful releases.
	PacketPuts, AckPuts uint64
	// OutstandingPackets / OutstandingAcks are live objects: acquired and
	// not yet released. At run end, after the harness reclaims the
	// network's hold buffers, both must be zero.
	OutstandingPackets, OutstandingAcks int
	// MaxOutstandingPackets / MaxOutstandingAcks are the high-water marks
	// of the outstanding counts over the run — the run's peak live-object
	// footprint, which the chaos harness budgets against.
	MaxOutstandingPackets, MaxOutstandingAcks int
	// Violations is how many lifecycle violations were recorded (capped).
	Violations int
}

// PacketsRecycled returns how many packet acquisitions were served from the
// freelist instead of the heap.
func (s PoolStats) PacketsRecycled() uint64 { return s.PacketGets - s.PacketNews }

// AcksRecycled returns how many ACK acquisitions were served from the
// freelist instead of the heap.
func (s PoolStats) AcksRecycled() uint64 { return s.AckGets - s.AckNews }

// Violation is one recorded lifecycle error (double release, foreign
// release). It is a structured record, not a panic: the invariant checker
// surfaces it as a check.Violation.
type Violation struct {
	// Kind names the failure: "packet-double-release", "ack-double-release",
	// "packet-foreign-release", "ack-foreign-release".
	Kind string
	// Detail identifies the object (flow/seq for packets, flow/cumack for
	// ACKs).
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// GetPacket acquires a zeroed Packet. On a nil pool it heap-allocates.
func (l *Pool) GetPacket() *Packet {
	if l == nil {
		return &Packet{}
	}
	l.stats.PacketGets++
	l.stats.OutstandingPackets++
	if l.stats.OutstandingPackets > l.stats.MaxOutstandingPackets {
		l.stats.MaxOutstandingPackets = l.stats.OutstandingPackets
	}
	p := l.freePkt
	if p == nil {
		l.stats.PacketNews++
		p = &Packet{}
	} else {
		l.freePkt = p.next
		if l.freePkt == nil {
			l.freePktTail = nil
		}
		*p = Packet{}
	}
	p.life = lifeLive
	return p
}

// PutPacket releases a Packet back to the freelist. Releasing the same
// packet twice, or a packet the pool never issued, records a violation and
// leaves the freelist untouched. A nil pool or nil packet is a no-op.
func (l *Pool) PutPacket(p *Packet) {
	if l == nil || p == nil {
		return
	}
	switch p.life {
	case lifeFree:
		l.violate("packet-double-release", fmt.Sprintf("flow %d seq %d", p.Flow, p.Seq))
		return
	case lifeUnpooled:
		l.violate("packet-foreign-release", fmt.Sprintf("flow %d seq %d", p.Flow, p.Seq))
		return
	}
	if p.listed {
		l.violate("packet-release-while-held", fmt.Sprintf("flow %d seq %d still on a hold list", p.Flow, p.Seq))
		return
	}
	p.life = lifeFree
	p.prev = nil
	p.next = l.freePkt
	if l.freePkt == nil {
		l.freePktTail = p
	}
	l.freePkt = p
	l.stats.PacketPuts++
	l.stats.OutstandingPackets--
}

// GetAck acquires a zeroed Ack, preserving the capacity of its SACK-block
// slice so steady-state ACK generation reuses the same backing array. On a
// nil pool it heap-allocates.
func (l *Pool) GetAck() *Ack {
	if l == nil {
		return &Ack{}
	}
	l.stats.AckGets++
	l.stats.OutstandingAcks++
	if l.stats.OutstandingAcks > l.stats.MaxOutstandingAcks {
		l.stats.MaxOutstandingAcks = l.stats.OutstandingAcks
	}
	a := l.freeAck
	if a == nil {
		l.stats.AckNews++
		a = &Ack{}
	} else {
		l.freeAck = a.next
		if l.freeAck == nil {
			l.freeAckTail = nil
		}
		sacks := a.Sacks[:0]
		*a = Ack{}
		a.Sacks = sacks
	}
	a.life = lifeLive
	return a
}

// PutAck releases an Ack back to the freelist, with the same double- and
// foreign-release auditing as PutPacket.
func (l *Pool) PutAck(a *Ack) {
	if l == nil || a == nil {
		return
	}
	switch a.life {
	case lifeFree:
		l.violate("ack-double-release", fmt.Sprintf("flow %d cumack %d", a.Flow, a.CumAck))
		return
	case lifeUnpooled:
		l.violate("ack-foreign-release", fmt.Sprintf("flow %d cumack %d", a.Flow, a.CumAck))
		return
	}
	if a.listed {
		l.violate("ack-release-while-held", fmt.Sprintf("flow %d cumack %d still on a hold list", a.Flow, a.CumAck))
		return
	}
	a.life = lifeFree
	a.prev = nil
	a.next = l.freeAck
	if l.freeAck == nil {
		l.freeAckTail = a
	}
	l.freeAck = a
	l.stats.AckPuts++
	l.stats.OutstandingAcks--
}

func (l *Pool) violate(kind, detail string) {
	l.stats.Violations++
	if len(l.violations) < maxViolations {
		l.violations = append(l.violations, Violation{Kind: kind, Detail: detail})
	}
}

// Stats returns the pool's census. Safe on a nil pool (zero stats).
func (l *Pool) Stats() PoolStats {
	if l == nil {
		return PoolStats{}
	}
	return l.stats
}

// Violations returns the recorded lifecycle violations (capped at 16).
func (l *Pool) Violations() []Violation {
	if l == nil {
		return nil
	}
	return l.violations
}

// LeakPacketForTest acquires a packet and deliberately drops it on the
// floor, so tests can prove the leak audit catches real leaks. Test-only.
func (l *Pool) LeakPacketForTest() { _ = l.GetPacket() }

// --- intrusive hold lists ---------------------------------------------------

// PacketList is an intrusive doubly-linked list of live packets, used by the
// network emulator to track packets it holds asynchronously (propagation
// flight, blackout hold buffers) so they can be reclaimed at run end. A
// packet may be on at most one list at a time; Push on an already-listed
// packet panics (it would corrupt both lists). The zero value is ready.
type PacketList struct {
	head *Packet
	n    int
}

// Len returns the number of listed packets.
func (pl *PacketList) Len() int { return pl.n }

// Push adds p to the list.
func (pl *PacketList) Push(p *Packet) {
	if p.listed {
		panic("seg: packet pushed onto a second hold list")
	}
	p.listed = true
	p.prev = nil
	p.next = pl.head
	if pl.head != nil {
		pl.head.prev = p
	}
	pl.head = p
	pl.n++
}

// Remove unlinks p. Removing a packet that is not listed is a no-op, so the
// common pop-then-deliver flow needs no membership bookkeeping.
func (pl *PacketList) Remove(p *Packet) {
	if !p.listed {
		return
	}
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		pl.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	}
	p.next, p.prev = nil, nil
	p.listed = false
	pl.n--
}

// Drain removes every packet, calling fn on each — the run-end reclaim.
func (pl *PacketList) Drain(fn func(*Packet)) {
	for pl.head != nil {
		p := pl.head
		pl.Remove(p)
		fn(p)
	}
}

// AckList is the Ack counterpart of PacketList, used for ACKs in return
// flight and ACKs queued behind the sender's CPU model.
type AckList struct {
	head *Ack
	n    int
}

// Len returns the number of listed ACKs.
func (al *AckList) Len() int { return al.n }

// Push adds a to the list.
func (al *AckList) Push(a *Ack) {
	if a.listed {
		panic("seg: ack pushed onto a second hold list")
	}
	a.listed = true
	a.prev = nil
	a.next = al.head
	if al.head != nil {
		al.head.prev = a
	}
	al.head = a
	al.n++
}

// Remove unlinks a; not-listed is a no-op.
func (al *AckList) Remove(a *Ack) {
	if !a.listed {
		return
	}
	if a.prev != nil {
		a.prev.next = a.next
	} else {
		al.head = a.next
	}
	if a.next != nil {
		a.next.prev = a.prev
	}
	a.next, a.prev = nil, nil
	a.listed = false
	al.n--
}

// Drain removes every ACK, calling fn on each.
func (al *AckList) Drain(fn func(*Ack)) {
	for al.head != nil {
		a := al.head
		al.Remove(a)
		fn(a)
	}
}
