package seg

import "testing"

func TestPacketEnd(t *testing.T) {
	p := &Packet{Seq: 1000, Len: MSS}
	if got := p.End(); got != 1000+int64(MSS) {
		t.Errorf("End() = %d, want %d", got, 1000+int64(MSS))
	}
}

func TestSackBlockLen(t *testing.T) {
	b := SackBlock{Start: 100, End: 350}
	if b.Len() != 250 {
		t.Errorf("Len() = %d, want 250", b.Len())
	}
}

func TestMSSIsEthernetPayload(t *testing.T) {
	// 1500-byte MTU minus 40 bytes of IPv4+TCP headers.
	if MSS != 1460 {
		t.Errorf("MSS = %d, want 1460", MSS)
	}
}
