// Package fairness quantifies how a bandwidth share is split between
// flows — the §7.1.3 question the paper leaves open: packet pacing is known
// to improve fairness, so do pacing strides give it back up?
//
// It provides Jain's fairness index, max/min share ratio, and a harness
// that runs competing flows and scores the allocation.
package fairness

import (
	"math"

	"mobbr/internal/units"
)

// JainIndex returns Jain's fairness index of the allocation xs:
// (Σx)² / (n·Σx²), in (0, 1]; 1 means perfectly equal shares, 1/n means one
// flow has everything. Returns 0 for an empty or all-zero allocation.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// JainIndexBW is JainIndex over bandwidth shares.
func JainIndexBW(xs []units.Bandwidth) float64 {
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x)
	}
	return JainIndex(f)
}

// MaxMinRatio returns the largest share divided by the smallest nonzero
// share; +Inf if any share is zero while another is not, 0 for empty input.
func MaxMinRatio(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, max := math.Inf(1), 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
		if x < min {
			min = x
		}
	}
	if max == 0 {
		return 0
	}
	if min == 0 {
		return math.Inf(1)
	}
	return max / min
}

// Report summarizes the fairness of one run's per-connection goodputs.
type Report struct {
	// Jain is Jain's fairness index.
	Jain float64
	// MaxMin is the max/min share ratio.
	MaxMin float64
	// Total is the aggregate share.
	Total units.Bandwidth
}

// Score builds a Report from per-connection goodputs.
func Score(perConn []units.Bandwidth) Report {
	f := make([]float64, len(perConn))
	var total units.Bandwidth
	for i, x := range perConn {
		f[i] = float64(x)
		total += x
	}
	return Report{
		Jain:   JainIndex(f),
		MaxMin: MaxMinRatio(f),
		Total:  total,
	}
}
