package fairness

import (
	"math"
	"testing"
	"testing/quick"

	"mobbr/internal/units"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJainIndexKnownValues(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{[]float64{1, 1, 1, 1}, 1.0},
		{[]float64{1, 0, 0, 0}, 0.25}, // 1/n
		{[]float64{2, 2}, 1.0},
		{[]float64{3, 1}, 16.0 / 20.0}, // (4)²/(2·10)
		{nil, 0},
		{[]float64{0, 0}, 0},
	}
	for _, tt := range tests {
		if got := JainIndex(tt.in); !almost(got, tt.want) {
			t.Errorf("JainIndex(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// Properties: the index lies in [1/n, 1], is scale-invariant, and equals 1
// exactly for equal allocations.
func TestJainIndexProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		allZero := true
		for i, r := range raw {
			xs[i] = float64(r)
			if r != 0 {
				allZero = false
			}
		}
		if allZero {
			return JainIndex(xs) == 0
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		if j < 1/n-1e-9 || j > 1+1e-9 {
			return false
		}
		// Scale invariance.
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 7
		}
		return almost(j, JainIndex(scaled))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainEqualSharesAlwaysOne(t *testing.T) {
	for n := 1; n <= 50; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 3.7
		}
		if got := JainIndex(xs); !almost(got, 1) {
			t.Fatalf("n=%d equal shares index = %v", n, got)
		}
	}
}

func TestMaxMinRatio(t *testing.T) {
	if got := MaxMinRatio([]float64{10, 5}); got != 2 {
		t.Errorf("MaxMinRatio = %v, want 2", got)
	}
	if got := MaxMinRatio([]float64{4, 4, 4}); got != 1 {
		t.Errorf("equal shares ratio = %v, want 1", got)
	}
	if got := MaxMinRatio([]float64{1, 0}); !math.IsInf(got, 1) {
		t.Errorf("zero share ratio = %v, want +Inf", got)
	}
	if got := MaxMinRatio(nil); got != 0 {
		t.Errorf("empty ratio = %v, want 0", got)
	}
}

func TestScore(t *testing.T) {
	rep := Score([]units.Bandwidth{10 * units.Mbps, 10 * units.Mbps, 20 * units.Mbps})
	if rep.Total != 40*units.Mbps {
		t.Errorf("total = %v, want 40Mbps", rep.Total)
	}
	if rep.Jain >= 1 || rep.Jain < 0.8 {
		t.Errorf("jain = %v, want in [0.8, 1)", rep.Jain)
	}
	if rep.MaxMin != 2 {
		t.Errorf("maxmin = %v, want 2", rep.MaxMin)
	}
}

func TestJainIndexBW(t *testing.T) {
	xs := []units.Bandwidth{units.Mbps, units.Mbps}
	if got := JainIndexBW(xs); !almost(got, 1) {
		t.Errorf("JainIndexBW equal = %v", got)
	}
}
