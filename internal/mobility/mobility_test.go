package mobility

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mobbr/internal/units"
)

var update = flag.Bool("update", false, "rewrite golden files")

func mustLoad(t *testing.T, name string) Trace {
	t.Helper()
	tr, err := Load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return tr
}

func TestValidateRejects(t *testing.T) {
	good := Trace{Name: "t", Samples: []Sample{{T: 0, Rate: units.Mbps}, {T: time.Second, Rate: units.Mbps}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := []struct {
		name string
		tr   Trace
	}{
		{"empty", Trace{Name: "t"}},
		{"negative time", Trace{Name: "t", Samples: []Sample{{T: -time.Second, Rate: units.Mbps}}}},
		{"non-monotone", Trace{Name: "t", Samples: []Sample{
			{T: time.Second, Rate: units.Mbps}, {T: time.Second, Rate: units.Mbps}}}},
		{"negative rate", Trace{Name: "t", Samples: []Sample{{T: 0, Rate: -1}}}},
		{"negative rtt", Trace{Name: "t", Samples: []Sample{{T: 0, Rate: units.Mbps, RTT: -time.Millisecond}}}},
		{"loss above one", Trace{Name: "t", Samples: []Sample{{T: 0, Rate: units.Mbps, Loss: 1.5}}}},
		{"loss NaN", Trace{Name: "t", Samples: []Sample{{T: 0, Rate: units.Mbps, Loss: math.NaN()}}}},
		{"negative tick", Trace{Name: "t", Tick: -1, Samples: []Sample{{T: 0, Rate: units.Mbps}}}},
	}
	for _, c := range cases {
		if err := c.tr.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a malformed trace", c.name)
		}
	}
}

func TestStats(t *testing.T) {
	tr := Trace{Name: "t", Tick: time.Second, Samples: []Sample{
		{T: 0, Rate: 10 * units.Mbps, RTT: 40 * time.Millisecond},
		{T: time.Second, Rate: 0, Loss: 1},
		{T: 2 * time.Second, Rate: 20 * units.Mbps, RTT: 60 * time.Millisecond},
		{T: 3 * time.Second, Rate: 30 * units.Mbps},
	}}
	st := tr.Stats()
	if st.MeanRate != 20*units.Mbps {
		t.Errorf("MeanRate = %v, want 20Mbps", st.MeanRate)
	}
	if st.PeakRate != 30*units.Mbps {
		t.Errorf("PeakRate = %v, want 30Mbps", st.PeakRate)
	}
	if st.OutageFraction != 0.25 {
		t.Errorf("OutageFraction = %v, want 0.25", st.OutageFraction)
	}
	if st.MeanRTT != 50*time.Millisecond {
		t.Errorf("MeanRTT = %v, want 50ms", st.MeanRTT)
	}
	if d := tr.Duration(); d != 4*time.Second {
		t.Errorf("Duration = %v, want 4s", d)
	}
}

func TestResample(t *testing.T) {
	// Irregular samples: two in the first bucket (averaged), a gap over the
	// second bucket (holds previous), one in the third.
	tr := Trace{Name: "t", Samples: []Sample{
		{T: 0, Rate: 10 * units.Mbps, RTT: 40 * time.Millisecond},
		{T: 400 * time.Millisecond, Rate: 20 * units.Mbps, RTT: 60 * time.Millisecond},
		{T: 2500 * time.Millisecond, Rate: 5 * units.Mbps, RTT: 100 * time.Millisecond},
	}}
	rs, err := tr.Resample(time.Second)
	if err != nil {
		t.Fatalf("Resample: %v", err)
	}
	if rs.Tick != time.Second {
		t.Errorf("Tick = %v", rs.Tick)
	}
	if len(rs.Samples) != 3 {
		t.Fatalf("got %d samples, want 3: %+v", len(rs.Samples), rs.Samples)
	}
	if rs.Samples[0].Rate != 15*units.Mbps || rs.Samples[0].RTT != 50*time.Millisecond {
		t.Errorf("bucket 0 = %+v, want mean 15Mbps/50ms", rs.Samples[0])
	}
	if rs.Samples[1].Rate != 15*units.Mbps {
		t.Errorf("empty bucket 1 = %+v, want previous value held", rs.Samples[1])
	}
	if rs.Samples[2].Rate != 5*units.Mbps {
		t.Errorf("bucket 2 = %+v, want 5Mbps", rs.Samples[2])
	}
	for i, s := range rs.Samples {
		if want := time.Duration(i) * time.Second; s.T != want {
			t.Errorf("sample %d at %v, want %v", i, s.T, want)
		}
	}
	if _, err := tr.Resample(0); err == nil {
		t.Error("Resample(0) accepted")
	}
}

func TestSegments(t *testing.T) {
	// Mean non-outage rate is 10 Mbps → degraded cutoff 3 Mbps.
	tr := Trace{Name: "t", Tick: time.Second, Samples: []Sample{
		{T: 0, Rate: 14 * units.Mbps},
		{T: 1 * time.Second, Rate: 14 * units.Mbps},
		{T: 2 * time.Second, Rate: 0},
		{T: 3 * time.Second, Rate: 0},
		{T: 4 * time.Second, Rate: 2 * units.Mbps},
		{T: 5 * time.Second, Rate: 10 * units.Mbps},
	}}
	segs := tr.Segments()
	want := []struct {
		start, end time.Duration
		kind       SegmentKind
	}{
		{0, 2 * time.Second, SegNominal},
		{2 * time.Second, 4 * time.Second, SegOutage},
		{4 * time.Second, 5 * time.Second, SegDegraded},
		{5 * time.Second, 6 * time.Second, SegNominal},
	}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments %+v, want %d", len(segs), segs, len(want))
	}
	for i, w := range want {
		if segs[i].Start != w.start || segs[i].End != w.end || segs[i].Kind != w.kind {
			t.Errorf("segment %d = %+v, want %v-%v %v", i, segs[i], w.start, w.end, w.kind)
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no header", ""},
		{"no time column", "x,dl_bitrate_kbps\n1,2\n"},
		{"no rate column", "timestamp_ms,x\n1,2\n"},
		{"bad timestamp", "timestamp_ms,rate_kbps\nnope,2\n"},
		{"NaN rate", "timestamp_ms,rate_kbps\n0,NaN\n"},
		{"negative rate", "timestamp_ms,rate_kbps\n0,-3\n"},
		{"non-monotone", "timestamp_ms,rate_kbps\n0,1\n100,2\n100,3\n"},
		{"loss out of range", "timestamp_ms,rate_kbps,loss\n0,1,2\n"},
		{"short row", "timestamp_ms,rate_kbps\n0\n"},
		{"empty body", "timestamp_ms,rate_kbps\n"},
	}
	for _, c := range cases {
		if _, err := ParseCSV("t", strings.NewReader(c.in)); err == nil {
			t.Errorf("ParseCSV %s: accepted", c.name)
		}
	}
}

func TestParseJSONLErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"not json", "hello\n"},
		{"missing t_ms", `{"rate_kbps": 1}` + "\n"},
		{"missing rate", `{"t_ms": 0}` + "\n"},
		{"negative rate", `{"t_ms": 0, "rate_kbps": -1}` + "\n"},
		{"loss out of range", `{"t_ms": 0, "rate_kbps": 1, "loss": 2}` + "\n"},
		{"non-monotone", `{"t_ms": 0, "rate_kbps": 1}` + "\n" + `{"t_ms": 0, "rate_kbps": 1}` + "\n"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ParseJSONL("t", strings.NewReader(c.in)); err == nil {
			t.Errorf("ParseJSONL %s: accepted", c.name)
		}
	}
}

func TestParseNormalizesTimestamps(t *testing.T) {
	tr, err := ParseJSONL("t", strings.NewReader(
		`{"t_ms": 1650000000000, "rate_kbps": 1000}`+"\n"+
			`{"t_ms": 1650000000500, "rate_kbps": 2000}`+"\n"))
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	if tr.Samples[0].T != 0 || tr.Samples[1].T != 500*time.Millisecond {
		t.Errorf("timestamps not normalized: %+v", tr.Samples)
	}
}

func TestLoadBundledTraces(t *testing.T) {
	for _, name := range []string{"irish4g_sample.csv", "nyc_lte_sample.jsonl"} {
		tr := mustLoad(t, name)
		st := tr.Stats()
		if st.OutageFraction == 0 {
			t.Errorf("%s: expected an outage stretch, got none", name)
		}
		if st.MeanRate == 0 {
			t.Errorf("%s: zero mean rate", name)
		}
		hasLoss := false
		for _, s := range tr.Samples {
			if s.Rate > 0 && s.Loss > 0 {
				hasLoss = true
				break
			}
		}
		if !hasLoss {
			t.Errorf("%s: expected a lossy stretch, got none", name)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	for _, p := range Presets() {
		a, err := Synthesize(p, 5*time.Second, DefaultTick, 42)
		if err != nil {
			t.Fatalf("Synthesize(%s): %v", p, err)
		}
		b, err := Synthesize(p, 5*time.Second, DefaultTick, 42)
		if err != nil {
			t.Fatalf("Synthesize(%s): %v", p, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different traces", p)
		}
		c, err := Synthesize(p, 5*time.Second, DefaultTick, 43)
		if err != nil {
			t.Fatalf("Synthesize(%s): %v", p, err)
		}
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: different seeds produced identical traces", p)
		}
		if got := len(a.Samples); got != 50 {
			t.Errorf("%s: %d samples, want 50", p, got)
		}
	}
}

func TestPresetMatrixRowsSum(t *testing.T) {
	for _, p := range Presets() {
		m, start, err := presetMatrix(p)
		if err != nil {
			t.Fatalf("presetMatrix(%s): %v", p, err)
		}
		if start < 0 || start >= numStates {
			t.Errorf("%s: start state %d out of range", p, start)
		}
		for i, row := range m {
			sum := 0.0
			for _, pr := range row {
				if pr < 0 {
					t.Errorf("%s: negative probability in row %d", p, i)
				}
				sum += pr
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%s: row %d sums to %v, want 1", p, i, sum)
			}
		}
	}
}

func TestParsePreset(t *testing.T) {
	if p, err := ParsePreset("DRIVING"); err != nil || p != Driving {
		t.Errorf("ParsePreset(DRIVING) = %v, %v", p, err)
	}
	if _, err := ParsePreset("teleporting"); err == nil {
		t.Error("ParsePreset accepted an unknown preset")
	}
}

func TestGEForMeanLoss(t *testing.T) {
	for _, mean := range []float64{0.005, 0.02, 0.08, 0.3} {
		ge := geFor(mean)
		if err := ge.Validate(); err != nil {
			t.Errorf("geFor(%v) invalid: %v", mean, err)
		}
		// Stationary occupancy piBad = PG2B/(PG2B+PB2G); mean loss should
		// come back out as piBad*LossBad.
		piBad := ge.PGoodToBad / (ge.PGoodToBad + ge.PBadToGood)
		got := piBad * ge.LossBad
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("geFor(%v): stationary loss %v (off by >5%%)", mean, got)
		}
	}
}

func TestCompileBasics(t *testing.T) {
	tr := Trace{Name: "t", Tick: time.Second, Samples: []Sample{
		{T: 0, Rate: 10 * units.Mbps, RTT: 80 * time.Millisecond},
		{T: 1 * time.Second, Rate: 10 * units.Mbps, RTT: 80 * time.Millisecond}, // within hysteresis: no step
		{T: 2 * time.Second, Rate: 0, Loss: 1},                                  // outage
		{T: 3 * time.Second, Rate: 4 * units.Mbps, RTT: 120 * time.Millisecond, Loss: 0.02},
		{T: 4 * time.Second, Rate: 4 * units.Mbps, RTT: 120 * time.Millisecond, Loss: 0.02},
	}}
	c, err := Compile(tr, CompileOptions{OtherRTT: 30 * time.Millisecond})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var steps, blackouts, delays, bursts int
	for _, ev := range c.Schedule.Events {
		switch ev.String()[:4] {
		case "rate":
			steps++
		case "blac":
			blackouts++
		case "dela":
			delays++
		case "burs":
			bursts++
		}
	}
	if steps != 2 {
		t.Errorf("%d rate steps, want 2 (initial + post-outage re-assert)", steps)
	}
	if blackouts != 1 {
		t.Errorf("%d blackouts, want 1", blackouts)
	}
	if delays != 2 {
		t.Errorf("%d delay steps, want 2", delays)
	}
	if bursts != 1 {
		t.Errorf("%d loss windows, want 1", bursts)
	}
	// One-way delay: (80ms - 30ms)/2 = 25ms.
	found := false
	for _, ev := range c.Schedule.Events {
		if strings.Contains(ev.String(), "25ms") {
			found = true
		}
	}
	if !found {
		t.Errorf("no 25ms delay step in %v", c.Schedule.Events)
	}
}

func TestCompileTrailingOutage(t *testing.T) {
	tr := Trace{Name: "t", Tick: time.Second, Samples: []Sample{
		{T: 0, Rate: 10 * units.Mbps},
		{T: 1 * time.Second, Rate: 0, Loss: 1},
		{T: 2 * time.Second, Rate: 0, Loss: 1},
	}}
	c, err := Compile(tr, CompileOptions{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	found := false
	for _, ev := range c.Schedule.Events {
		if strings.HasPrefix(ev.String(), "blackout") {
			found = true
		}
	}
	if !found {
		t.Error("trailing outage produced no blackout")
	}
}

func TestCompileRejectsBadOptions(t *testing.T) {
	tr := Trace{Name: "t", Samples: []Sample{{T: 0, Rate: units.Mbps}}}
	for _, opt := range []CompileOptions{
		{Hop: -1},
		{RateHysteresis: -0.1},
		{RateHysteresis: 1.5},
		{LossThreshold: 2},
		{OtherRTT: -time.Second},
	} {
		if _, err := Compile(tr, opt); err == nil {
			t.Errorf("Compile accepted options %+v", opt)
		}
	}
}

// TestCompileGolden locks the full lowering of both bundled dataset samples:
// every schedule event and every segment. Regenerate with -update after an
// intentional compiler change.
func TestCompileGolden(t *testing.T) {
	for _, name := range []string{"irish4g_sample.csv", "nyc_lte_sample.jsonl"} {
		tr := mustLoad(t, name)
		rs, err := tr.Resample(500 * time.Millisecond)
		if err != nil {
			t.Fatalf("Resample(%s): %v", name, err)
		}
		c, err := Compile(rs, CompileOptions{OtherRTT: 30 * time.Millisecond})
		if err != nil {
			t.Fatalf("Compile(%s): %v", name, err)
		}
		got := c.Describe()
		golden := filepath.Join("testdata", "golden", strings.TrimSuffix(name, filepath.Ext(name))+".describe")
		if *update {
			if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
				t.Fatalf("writing golden: %v", err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("reading golden (run with -update to create): %v", err)
		}
		if got != string(want) {
			t.Errorf("%s: compiled form differs from golden\n--- got ---\n%s--- want ---\n%s", name, got, want)
		}
	}
}
