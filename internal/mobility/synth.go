package mobility

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"mobbr/internal/units"
)

// Synthesis produces dataset-shaped traces without shipping datasets: a
// Markov-modulated channel walks between signal-quality states once per
// tick, each state drawing a rate uniformly from its band plus a
// state-dependent RTT and loss. The presets are tuned to an LTE uplink
// (the Appendix A.1 link tops out around 18–20 Mbps) and differ in how
// fast the channel churns and how often it blacks out — a stationary
// phone barely moves between states; a train rides through tunnels.

// Preset names a built-in mobility pattern.
type Preset string

// Synthesis presets.
const (
	// Stationary is a phone on a desk: steady rate, rare shallow fades.
	Stationary Preset = "stationary"
	// Walking adds regular fades and the occasional short outage.
	Walking Preset = "walking"
	// Driving churns between cells quickly, with handover outages.
	Driving Preset = "driving"
	// Train has long good stretches cut by deep multi-second tunnel
	// outages and trackside fades.
	Train Preset = "train"
)

// Presets lists the built-in presets.
func Presets() []Preset { return []Preset{Stationary, Walking, Driving, Train} }

// ParsePreset resolves a preset name (case-insensitive).
func ParsePreset(s string) (Preset, error) {
	for _, p := range Presets() {
		if strings.EqualFold(s, string(p)) {
			return p, nil
		}
	}
	return "", fmt.Errorf("mobility: unknown preset %q (want one of %v)", s, Presets())
}

// synthState is one channel-quality state of the Markov model.
type synthState struct {
	name      string
	lo, hi    units.Bandwidth // rate band; lo == hi == 0 is an outage
	rtt       time.Duration   // base RTT in this state
	rttJitter time.Duration   // uniform extra RTT in [0, rttJitter)
	loss      float64         // stationary loss fraction while in state
}

// The shared state vocabulary, indexed by the transition matrices below.
var synthStates = []synthState{
	{"good", 12 * units.Mbps, 20 * units.Mbps, 50 * time.Millisecond, 10 * time.Millisecond, 0},
	{"fair", 5 * units.Mbps, 12 * units.Mbps, 70 * time.Millisecond, 20 * time.Millisecond, 0},
	{"weak", 500 * units.Kbps, 4 * units.Mbps, 110 * time.Millisecond, 40 * time.Millisecond, 0.02},
	{"edge", 100 * units.Kbps, 1 * units.Mbps, 160 * time.Millisecond, 60 * time.Millisecond, 0.08},
	{"outage", 0, 0, 0, 0, 1},
}

// State indices into synthStates.
const (
	stGood = iota
	stFair
	stWeak
	stEdge
	stOutage
	numStates
)

// presetMatrix returns the per-tick transition matrix (rows sum to 1) and
// the start state. Probabilities assume the default 100 ms tick: the mean
// dwell in a state is tick/(1-p_stay).
func presetMatrix(p Preset) ([numStates][numStates]float64, int, error) {
	var m [numStates][numStates]float64
	switch p {
	case Stationary:
		m[stGood] = [numStates]float64{0.995, 0.005, 0, 0, 0}
		m[stFair] = [numStates]float64{0.03, 0.97, 0, 0, 0}
		m[stWeak] = [numStates]float64{0, 1, 0, 0, 0} // unreachable; exits immediately
		m[stEdge] = [numStates]float64{0, 1, 0, 0, 0}
		m[stOutage] = [numStates]float64{0, 1, 0, 0, 0}
	case Walking:
		m[stGood] = [numStates]float64{0.98, 0.015, 0.005, 0, 0}
		m[stFair] = [numStates]float64{0.03, 0.95, 0.02, 0, 0}
		m[stWeak] = [numStates]float64{0, 0.06, 0.92, 0, 0.02}
		m[stEdge] = [numStates]float64{0, 0, 1, 0, 0}
		m[stOutage] = [numStates]float64{0, 0, 0.20, 0, 0.80}
	case Driving:
		m[stGood] = [numStates]float64{0.95, 0.04, 0.01, 0, 0}
		m[stFair] = [numStates]float64{0.05, 0.90, 0.04, 0.01, 0}
		m[stWeak] = [numStates]float64{0, 0.07, 0.88, 0.03, 0.02}
		m[stEdge] = [numStates]float64{0, 0, 0.10, 0.85, 0.05}
		m[stOutage] = [numStates]float64{0, 0, 0.05, 0.10, 0.85}
	case Train:
		m[stGood] = [numStates]float64{0.97, 0.02, 0, 0, 0.01}
		m[stFair] = [numStates]float64{0.04, 0.93, 0.02, 0, 0.01}
		m[stWeak] = [numStates]float64{0, 0.07, 0.90, 0, 0.03}
		m[stEdge] = [numStates]float64{0, 0, 1, 0, 0}
		m[stOutage] = [numStates]float64{0, 0.02, 0.05, 0, 0.93}
	default:
		return m, 0, fmt.Errorf("mobility: unknown preset %q", p)
	}
	return m, stGood, nil
}

// DefaultTick is the sample spacing Synthesize and the CLI default to.
const DefaultTick = 100 * time.Millisecond

// Synthesize generates a trace of the given duration on a fixed tick from
// the preset's Markov model. The same (preset, dur, tick, seed) quadruple
// always yields the identical trace.
func Synthesize(p Preset, dur, tick time.Duration, seed int64) (Trace, error) {
	if tick <= 0 {
		tick = DefaultTick
	}
	if dur < tick {
		return Trace{}, fmt.Errorf("mobility: synthesis duration %v shorter than tick %v", dur, tick)
	}
	matrix, state, err := presetMatrix(p)
	if err != nil {
		return Trace{}, err
	}
	n := int(dur / tick)
	if n > maxSamples {
		return Trace{}, fmt.Errorf("mobility: synthesis would yield %d samples (max %d)", n, maxSamples)
	}
	rng := rand.New(rand.NewSource(seed))
	tr := Trace{Name: string(p), Tick: tick, Samples: make([]Sample, 0, n)}
	for i := 0; i < n; i++ {
		st := synthStates[state]
		s := Sample{T: time.Duration(i) * tick, Loss: st.loss}
		if st.hi > 0 {
			// Quantize to 100 kbps so compiled rate steps read cleanly.
			r := st.lo + units.Bandwidth(rng.Float64()*float64(st.hi-st.lo))
			s.Rate = r / (100 * units.Kbps) * (100 * units.Kbps)
			if s.Rate < 100*units.Kbps {
				s.Rate = 100 * units.Kbps
			}
			s.RTT = st.rtt
			if st.rttJitter > 0 {
				s.RTT += time.Duration(rng.Int63n(int64(st.rttJitter)))
			}
		}
		tr.Samples = append(tr.Samples, s)
		// Advance the chain one tick.
		u := rng.Float64()
		acc := 0.0
		for next, pr := range matrix[state] {
			acc += pr
			if u < acc {
				state = next
				break
			}
		}
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, fmt.Errorf("mobility: synthesized trace invalid: %w", err)
	}
	return tr, nil
}
