package mobility

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"mobbr/internal/units"
)

// The parsers accept the two shapes the public cellular datasets come in:
//
//   - CSV with a header row, one sample per line, timestamps in
//     milliseconds and rates in kbit/s — the shape of the Irish 4G
//     measurement campaign exports (timestamp_ms, dl_bitrate_kbps, …).
//   - JSONL with one object per line: {"t_ms":…, "rate_kbps":…,
//     "rtt_ms":…, "loss":…} — the shape the NYC LTE bandwidth traces are
//     commonly distributed in after conversion from mahimahi format.
//
// Both are strict: malformed numbers, NaN/Inf, negative rates or RTTs,
// loss outside [0,1], and non-monotone timestamps are errors, never
// panics (FuzzTraceParse holds the parsers to that). Timestamps are
// normalized so the first sample lands at T = 0.

// CSV column aliases, all matched case-insensitively after trimming.
var (
	csvTimeCols = []string{"timestamp_ms", "time_ms", "t_ms"}
	csvRateCols = []string{"rate_kbps", "dl_bitrate_kbps", "ul_bitrate_kbps", "bandwidth_kbps", "dl_bitrate", "ul_bitrate"}
	csvRTTCols  = []string{"rtt_ms", "latency_ms", "ping_ms"}
	csvLossCols = []string{"loss", "loss_rate", "loss_fraction"}
)

// Load reads a trace file, dispatching on the extension: .csv for the CSV
// shape, .jsonl or .ndjson for the JSONL shape.
func Load(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, fmt.Errorf("mobility: %w", err)
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return ParseCSV(name, f)
	case ".jsonl", ".ndjson":
		return ParseJSONL(name, f)
	default:
		return Trace{}, fmt.Errorf("mobility: %s: unknown trace format (want .csv, .jsonl or .ndjson)", path)
	}
}

// field parses a float cell, rejecting non-finite and (unless allowNeg)
// negative values.
func field(what, raw string, line int) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
	if err != nil {
		return 0, fmt.Errorf("mobility: line %d: bad %s %q", line, what, raw)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("mobility: line %d: %s %q is not finite", line, what, raw)
	}
	if v < 0 {
		return 0, fmt.Errorf("mobility: line %d: negative %s %v", line, what, v)
	}
	return v, nil
}

// appendSample converts one parsed record (ms / kbps domain) into a Sample,
// enforcing monotone time against the previous sample.
func appendSample(tr *Trace, tMS, rateKbps, rttMS, loss float64, line int) error {
	if loss > 1 {
		return fmt.Errorf("mobility: line %d: loss %v out of [0,1]", line, loss)
	}
	t := time.Duration(tMS * float64(time.Millisecond))
	if n := len(tr.Samples); n > 0 && t <= tr.Samples[n-1].T {
		return fmt.Errorf("mobility: line %d: timestamp %v not after previous %v",
			line, t, tr.Samples[n-1].T)
	}
	if len(tr.Samples) >= maxSamples {
		return fmt.Errorf("mobility: line %d: trace exceeds %d samples", line, maxSamples)
	}
	tr.Samples = append(tr.Samples, Sample{
		T:    t,
		Rate: units.Bandwidth(rateKbps * float64(units.Kbps)),
		RTT:  time.Duration(rttMS * float64(time.Millisecond)),
		Loss: loss,
	})
	return nil
}

// ParseCSV parses the CSV dataset shape. The header must name a timestamp
// column and a rate column (see the alias lists); RTT and loss columns are
// optional.
func ParseCSV(name string, r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return Trace{}, fmt.Errorf("mobility: %s: reading CSV header: %w", name, err)
	}
	col := func(aliases []string) int {
		for i, h := range header {
			h = strings.ToLower(strings.TrimSpace(h))
			for _, a := range aliases {
				if h == a {
					return i
				}
			}
		}
		return -1
	}
	tCol, rCol := col(csvTimeCols), col(csvRateCols)
	rttCol, lCol := col(csvRTTCols), col(csvLossCols)
	if tCol < 0 {
		return Trace{}, fmt.Errorf("mobility: %s: no timestamp column (want one of %v)", name, csvTimeCols)
	}
	if rCol < 0 {
		return Trace{}, fmt.Errorf("mobility: %s: no rate column (want one of %v)", name, csvRateCols)
	}
	tr := Trace{Name: name}
	var t0 float64
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Trace{}, fmt.Errorf("mobility: %s: line %d: %w", name, line, err)
		}
		need := tCol
		if rCol > need {
			need = rCol
		}
		if len(rec) <= need {
			return Trace{}, fmt.Errorf("mobility: %s: line %d: %d columns, need %d", name, line, len(rec), need+1)
		}
		tMS, err := field("timestamp", rec[tCol], line)
		if err != nil {
			return Trace{}, fmt.Errorf("%s: %w", name, err)
		}
		rate, err := field("rate", rec[rCol], line)
		if err != nil {
			return Trace{}, fmt.Errorf("%s: %w", name, err)
		}
		var rtt, loss float64
		if rttCol >= 0 && rttCol < len(rec) && strings.TrimSpace(rec[rttCol]) != "" {
			if rtt, err = field("rtt", rec[rttCol], line); err != nil {
				return Trace{}, fmt.Errorf("%s: %w", name, err)
			}
		}
		if lCol >= 0 && lCol < len(rec) && strings.TrimSpace(rec[lCol]) != "" {
			if loss, err = field("loss", rec[lCol], line); err != nil {
				return Trace{}, fmt.Errorf("%s: %w", name, err)
			}
		}
		if len(tr.Samples) == 0 {
			t0 = tMS
		}
		if err := appendSample(&tr, tMS-t0, rate, rtt, loss, line); err != nil {
			return Trace{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}

// jsonSample is the JSONL wire form. Pointers distinguish "absent" from
// zero for the required fields.
type jsonSample struct {
	TMS      *float64 `json:"t_ms"`
	RateKbps *float64 `json:"rate_kbps"`
	RTTMS    float64  `json:"rtt_ms"`
	Loss     float64  `json:"loss"`
}

// ParseJSONL parses the JSONL dataset shape: one object per line with
// required t_ms and rate_kbps fields and optional rtt_ms and loss. Blank
// lines are skipped.
func ParseJSONL(name string, r io.Reader) (Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	tr := Trace{Name: name}
	var t0 float64
	for line := 1; sc.Scan(); line++ {
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var js jsonSample
		dec := json.NewDecoder(strings.NewReader(raw))
		if err := dec.Decode(&js); err != nil {
			return Trace{}, fmt.Errorf("mobility: %s: line %d: %w", name, line, err)
		}
		if js.TMS == nil {
			return Trace{}, fmt.Errorf("mobility: %s: line %d: missing t_ms", name, line)
		}
		if js.RateKbps == nil {
			return Trace{}, fmt.Errorf("mobility: %s: line %d: missing rate_kbps", name, line)
		}
		for _, f := range []struct {
			what string
			v    float64
		}{
			{"t_ms", *js.TMS}, {"rate_kbps", *js.RateKbps},
			{"rtt_ms", js.RTTMS}, {"loss", js.Loss},
		} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
				return Trace{}, fmt.Errorf("mobility: %s: line %d: %s is not finite", name, line, f.what)
			}
			if f.v < 0 {
				return Trace{}, fmt.Errorf("mobility: %s: line %d: negative %s %v", name, line, f.what, f.v)
			}
		}
		if len(tr.Samples) == 0 {
			t0 = *js.TMS
		}
		if err := appendSample(&tr, *js.TMS-t0, *js.RateKbps, js.RTTMS, js.Loss, line); err != nil {
			return Trace{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	if err := sc.Err(); err != nil {
		return Trace{}, fmt.Errorf("mobility: %s: %w", name, err)
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}
