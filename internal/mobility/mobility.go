// Package mobility is the trace-driven mobility subsystem: it ingests
// timestamped bandwidth/RTT/loss traces of real cellular links (CSV and
// JSONL in the shape of the public Irish 4G and NYC LTE datasets),
// synthesizes traces from a seeded Markov-modulated channel model when no
// dataset is at hand, and compiles any trace into a faults.Schedule that
// replays the measured commute on a live netem path — rate steps, delay
// steps, Gilbert–Elliott loss windows, and blackouts for zero-rate gaps.
//
// The pipeline is Load/Parse* (or Synthesize) → Resample → Compile →
// Compiled.Install. Everything is deterministic: parsing is pure, synthesis
// draws from a caller-provided seed, and the compiled schedule contains no
// randomness beyond the engine RNG the GE loss model already uses, so one
// seed plus one trace reproduces a run bit for bit.
package mobility

import (
	"fmt"
	"math"
	"time"

	"mobbr/internal/units"
)

// Sample is one point of a trace: the link state measured (or synthesized)
// at offset T from the trace start.
type Sample struct {
	// T is the offset from the trace start. Samples are strictly
	// increasing in T.
	T time.Duration
	// Rate is the link capacity at T. Zero means a full outage (the
	// dataset reported no bytes through this period).
	Rate units.Bandwidth
	// RTT is the measured round-trip time at T; 0 means not reported
	// (the compiler then leaves the path delay alone).
	RTT time.Duration
	// Loss is the measured loss fraction in [0, 1].
	Loss float64
}

// Trace is an ordered series of link samples.
type Trace struct {
	// Name labels the trace in reports ("irish4g_sample", "driving").
	Name string
	// Tick is the fixed sample spacing after Resample; 0 means the
	// samples are irregular (as loaded from a dataset).
	Tick time.Duration
	// Samples in strictly increasing T order, first at T >= 0.
	Samples []Sample
}

// maxSamples bounds a trace so a malformed or hostile input cannot exhaust
// memory downstream (the compiler emits O(samples) events).
const maxSamples = 1 << 20

// Validate rejects malformed traces: empty, non-monotone time, negative or
// non-finite rates, loss outside [0, 1].
func (tr Trace) Validate() error {
	if len(tr.Samples) == 0 {
		return fmt.Errorf("mobility: trace %q has no samples", tr.Name)
	}
	if len(tr.Samples) > maxSamples {
		return fmt.Errorf("mobility: trace %q has %d samples (max %d)", tr.Name, len(tr.Samples), maxSamples)
	}
	if tr.Tick < 0 {
		return fmt.Errorf("mobility: trace %q has negative tick %v", tr.Name, tr.Tick)
	}
	for i, s := range tr.Samples {
		if s.T < 0 {
			return fmt.Errorf("mobility: trace %q sample %d at negative time %v", tr.Name, i, s.T)
		}
		if i > 0 && s.T <= tr.Samples[i-1].T {
			return fmt.Errorf("mobility: trace %q sample %d time %v not after previous %v",
				tr.Name, i, s.T, tr.Samples[i-1].T)
		}
		if s.Rate < 0 {
			return fmt.Errorf("mobility: trace %q sample %d has negative rate %v", tr.Name, i, s.Rate)
		}
		if s.RTT < 0 {
			return fmt.Errorf("mobility: trace %q sample %d has negative RTT %v", tr.Name, i, s.RTT)
		}
		if math.IsNaN(s.Loss) || s.Loss < 0 || s.Loss > 1 {
			return fmt.Errorf("mobility: trace %q sample %d loss %v out of [0,1]", tr.Name, i, s.Loss)
		}
	}
	return nil
}

// Duration is the trace's covered time span: the last sample's offset plus
// one tick (each sample describes the interval until the next one).
func (tr Trace) Duration() time.Duration {
	if len(tr.Samples) == 0 {
		return 0
	}
	last := tr.Samples[len(tr.Samples)-1].T
	if tr.Tick > 0 {
		return last + tr.Tick
	}
	return last
}

// Stats summarizes a trace for reports.
type Stats struct {
	// MeanRate and PeakRate are over the non-outage samples.
	MeanRate, PeakRate units.Bandwidth
	// OutageFraction is the share of samples with zero rate.
	OutageFraction float64
	// MeanRTT is over the samples that report an RTT.
	MeanRTT time.Duration
}

// Stats computes the trace summary.
func (tr Trace) Stats() Stats {
	var st Stats
	var rateSum float64
	var rateN, outN, rttN int
	var rttSum time.Duration
	for _, s := range tr.Samples {
		if s.Rate == 0 {
			outN++
		} else {
			rateSum += float64(s.Rate)
			rateN++
			if s.Rate > st.PeakRate {
				st.PeakRate = s.Rate
			}
		}
		if s.RTT > 0 {
			rttSum += s.RTT
			rttN++
		}
	}
	if rateN > 0 {
		st.MeanRate = units.Bandwidth(rateSum / float64(rateN))
	}
	if len(tr.Samples) > 0 {
		st.OutageFraction = float64(outN) / float64(len(tr.Samples))
	}
	if rttN > 0 {
		st.MeanRTT = rttSum / time.Duration(rttN)
	}
	return st
}

// Resample projects the trace onto a fixed tick grid from 0 to Duration:
// samples inside each bucket are averaged; empty buckets hold the previous
// bucket's values (the dataset simply did not report during that second).
// The result always starts at T = 0.
func (tr Trace) Resample(tick time.Duration) (Trace, error) {
	if tick <= 0 {
		return Trace{}, fmt.Errorf("mobility: resample tick %v must be positive", tick)
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	end := tr.Duration()
	if end < tick {
		end = tick
	}
	n := int((end + tick - 1) / tick)
	if n > maxSamples {
		return Trace{}, fmt.Errorf("mobility: resampling %q at %v yields %d samples (max %d)",
			tr.Name, tick, n, maxSamples)
	}
	out := Trace{Name: tr.Name, Tick: tick, Samples: make([]Sample, 0, n)}
	idx := 0
	// Carry the previous bucket's values into empty buckets; before the
	// first reported sample, hold that first sample's values.
	prev := tr.Samples[0]
	for b := 0; b < n; b++ {
		lo, hi := time.Duration(b)*tick, time.Duration(b+1)*tick
		var rateSum, lossSum float64
		var rttSum time.Duration
		var cnt, rttN int
		for idx < len(tr.Samples) && tr.Samples[idx].T < hi {
			s := tr.Samples[idx]
			if s.T >= lo {
				rateSum += float64(s.Rate)
				lossSum += s.Loss
				if s.RTT > 0 {
					rttSum += s.RTT
					rttN++
				}
				cnt++
			}
			idx++
		}
		cur := prev
		cur.T = lo
		if cnt > 0 {
			cur.Rate = units.Bandwidth(rateSum / float64(cnt))
			cur.Loss = lossSum / float64(cnt)
			if rttN > 0 {
				cur.RTT = rttSum / time.Duration(rttN)
			}
		}
		out.Samples = append(out.Samples, cur)
		prev = cur
	}
	return out, nil
}

// SegmentKind classifies a stretch of a trace for reporting and telemetry.
type SegmentKind int

// Segment kinds.
const (
	// SegOutage is a zero-rate stretch (tunnel, elevator, dead zone).
	SegOutage SegmentKind = iota
	// SegDegraded is a stretch well below the trace's typical rate.
	SegDegraded
	// SegNominal is everything else.
	SegNominal
)

// String returns the kind's label.
func (k SegmentKind) String() string {
	switch k {
	case SegOutage:
		return "outage"
	case SegDegraded:
		return "degraded"
	case SegNominal:
		return "nominal"
	default:
		return "unknown"
	}
}

// Segment is a maximal run of consecutive samples with one kind.
type Segment struct {
	Start, End time.Duration
	Kind       SegmentKind
	// MeanRate is the mean sample rate across the segment.
	MeanRate units.Bandwidth
}

// degradedFraction of the mean non-outage rate is the SegDegraded cutoff.
const degradedFraction = 0.3

// Segments partitions the trace into outage / degraded / nominal runs. The
// degraded threshold is 30% of the trace's mean non-outage rate, so the
// classification adapts to the link the trace was measured on.
func (tr Trace) Segments() []Segment {
	if len(tr.Samples) == 0 {
		return nil
	}
	cutoff := units.Bandwidth(float64(tr.Stats().MeanRate) * degradedFraction)
	classify := func(s Sample) SegmentKind {
		switch {
		case s.Rate == 0:
			return SegOutage
		case s.Rate < cutoff:
			return SegDegraded
		default:
			return SegNominal
		}
	}
	var segs []Segment
	cur := Segment{Start: tr.Samples[0].T, Kind: classify(tr.Samples[0])}
	var rateSum float64
	var rateN int
	flush := func(end time.Duration) {
		cur.End = end
		if rateN > 0 {
			cur.MeanRate = units.Bandwidth(rateSum / float64(rateN))
		}
		segs = append(segs, cur)
	}
	for _, s := range tr.Samples {
		k := classify(s)
		if k != cur.Kind {
			flush(s.T)
			cur = Segment{Start: s.T, Kind: k}
			rateSum, rateN = 0, 0
		}
		rateSum += float64(s.Rate)
		rateN++
	}
	flush(tr.Duration())
	return segs
}
