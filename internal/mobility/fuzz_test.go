package mobility

import (
	"strings"
	"testing"
)

// FuzzTraceParse holds both dataset parsers to their contract: any input —
// malformed timestamps, non-monotone time, NaN or negative rates, truncated
// rows, binary garbage — must come back as an error or a valid trace, never
// a panic. A trace that parses must also pass Validate, Resample, and
// Compile cleanly (the rest of the pipeline trusts parsed traces).
func FuzzTraceParse(f *testing.F) {
	// Well-formed seeds for both shapes.
	f.Add("timestamp_ms,dl_bitrate_kbps,rtt_ms,loss\n0,5000,50,0\n500,6000,55,0.01\n1000,0,0,1\n1500,4000,60,0\n")
	f.Add(`{"t_ms": 0, "rate_kbps": 5000, "rtt_ms": 50}` + "\n" + `{"t_ms": 500, "rate_kbps": 0, "loss": 1}` + "\n")
	// Malformed seeds steering the fuzzer at the validation edges.
	f.Add("timestamp_ms,rate_kbps\nnope,1\n")
	f.Add("timestamp_ms,rate_kbps\n0,NaN\n")
	f.Add("timestamp_ms,rate_kbps\n0,-5\n")
	f.Add("timestamp_ms,rate_kbps\n100,1\n100,2\n")
	f.Add("timestamp_ms,rate_kbps\n0,1e309\n")
	f.Add("timestamp_ms,rate_kbps\n0\n")
	f.Add(`{"t_ms": 1e309, "rate_kbps": 1}` + "\n")
	f.Add(`{"t_ms": 0, "rate_kbps": -1}` + "\n")
	f.Add(`{"t_ms": 0}` + "\n")
	f.Add(`{"t_ms": 100, "rate_kbps": 1}` + "\n" + `{"t_ms": 100, "rate_kbps": 1}` + "\n")
	f.Add(`{"t_ms": 0, "rate_kbps": 1, "loss": 7}` + "\n")
	f.Add("\x00\x01\x02")

	f.Fuzz(func(t *testing.T, in string) {
		for _, parse := range []func(string) (Trace, error){
			func(s string) (Trace, error) { return ParseCSV("fuzz", strings.NewReader(s)) },
			func(s string) (Trace, error) { return ParseJSONL("fuzz", strings.NewReader(s)) },
		} {
			tr, err := parse(in)
			if err != nil {
				continue
			}
			if verr := tr.Validate(); verr != nil {
				t.Fatalf("parser returned invalid trace: %v\ninput: %q", verr, in)
			}
			rs, err := tr.Resample(DefaultTick)
			if err != nil {
				// Only the sample-count bound may reject a valid trace.
				if !strings.Contains(err.Error(), "max") {
					t.Fatalf("Resample failed on parsed trace: %v\ninput: %q", err, in)
				}
				continue
			}
			if _, err := Compile(rs, CompileOptions{}); err != nil {
				t.Fatalf("Compile failed on parsed trace: %v\ninput: %q", err, in)
			}
		}
	})
}
