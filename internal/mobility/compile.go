package mobility

import (
	"fmt"
	"math"
	"time"

	"mobbr/internal/faults"
	"mobbr/internal/netem"
	"mobbr/internal/sim"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

// The compiler lowers a trace to the fault-injection layer's vocabulary:
//
//	non-zero rate change   → faults.RateStep   (with hysteresis)
//	zero-rate stretch      → faults.Blackout   (the pipe pauses; queues hold)
//	RTT change             → faults.DelayStep  (one-way delay on the hop)
//	lossy stretch          → faults.BurstLoss  (Gilbert–Elliott window)
//
// so a replay rides the exact same netem mutators as the hand-built
// schedules, and everything downstream (telemetry fault events, the
// profiler's phase attribution, the invariant checker) works unchanged.

// CompileOptions tunes the lowering.
type CompileOptions struct {
	// Hop is the path hop the schedule targets (0 = the radio link in
	// the wireless presets).
	Hop int
	// RateHysteresis suppresses rate steps whose relative change from
	// the last applied rate is below this fraction (default 0.05). Zero
	// steps are never suppressed.
	RateHysteresis float64
	// MinDelayChange suppresses delay steps smaller than this
	// (default 2ms).
	MinDelayChange time.Duration
	// LossThreshold opens a Gilbert–Elliott window over every maximal
	// run of samples at or above this loss fraction (default 0.005).
	LossThreshold float64
	// OtherRTT is the round-trip contributed by the rest of the path
	// (non-trace hops plus the ACK return); it is subtracted from the
	// trace RTT before the remainder is halved into the hop's one-way
	// delay. The LTE preset's share is netem-defined; see repro.
	OtherRTT time.Duration
	// MinOneWayDelay floors the computed hop delay (default 1ms) so a
	// trace RTT below OtherRTT cannot produce a zero or negative delay.
	MinOneWayDelay time.Duration
}

func (o CompileOptions) withDefaults() CompileOptions {
	if o.RateHysteresis == 0 {
		o.RateHysteresis = 0.05
	}
	if o.MinDelayChange == 0 {
		o.MinDelayChange = 2 * time.Millisecond
	}
	if o.LossThreshold == 0 {
		o.LossThreshold = 0.005
	}
	if o.MinOneWayDelay == 0 {
		o.MinOneWayDelay = time.Millisecond
	}
	return o
}

// Validate rejects nonsensical options.
func (o CompileOptions) Validate() error {
	if o.Hop < 0 {
		return fmt.Errorf("mobility: negative hop %d", o.Hop)
	}
	if o.RateHysteresis < 0 || o.RateHysteresis >= 1 {
		return fmt.Errorf("mobility: rate hysteresis %v out of [0,1)", o.RateHysteresis)
	}
	if o.MinDelayChange < 0 {
		return fmt.Errorf("mobility: negative min delay change %v", o.MinDelayChange)
	}
	if o.LossThreshold < 0 || o.LossThreshold > 1 {
		return fmt.Errorf("mobility: loss threshold %v out of [0,1]", o.LossThreshold)
	}
	if o.OtherRTT < 0 {
		return fmt.Errorf("mobility: negative other-RTT %v", o.OtherRTT)
	}
	if o.MinOneWayDelay < 0 {
		return fmt.Errorf("mobility: negative min one-way delay %v", o.MinOneWayDelay)
	}
	return nil
}

// Compiled is a trace lowered to an installable fault schedule, keeping the
// trace and its segmentation for reporting.
type Compiled struct {
	Trace    Trace
	Options  CompileOptions
	Schedule faults.Schedule
	Segments []Segment
}

// geFor derives Gilbert–Elliott parameters reproducing a mean loss
// fraction: LossGood stays 0, the Bad state is sticky (mean burst of four
// packets at PBadToGood = 0.25), and PGoodToBad is solved from the
// stationary Bad-state occupancy piBad = mean/LossBad.
func geFor(meanLoss float64) netem.GEConfig {
	const pBadToGood = 0.25
	lossBad := 4 * meanLoss
	if lossBad > 1 {
		lossBad = 1
	}
	if lossBad < 0.5 {
		lossBad = 0.5
	}
	piBad := meanLoss / lossBad
	if piBad > 0.95 {
		piBad = 0.95
	}
	pGoodToBad := pBadToGood * piBad / (1 - piBad)
	if pGoodToBad > 1 {
		pGoodToBad = 1
	}
	return netem.GEConfig{
		PGoodToBad: pGoodToBad,
		PBadToGood: pBadToGood,
		LossBad:    lossBad,
	}
}

// Compile lowers the trace into a fault schedule per opt. The trace must
// validate; the returned schedule validates by construction (Compile checks
// it anyway and fails loudly rather than emit an uninstallable schedule).
func Compile(tr Trace, opt CompileOptions) (*Compiled, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	end := tr.Duration()
	var events []faults.Event

	oneWay := func(rtt time.Duration) time.Duration {
		d := (rtt - opt.OtherRTT) / 2
		if d < opt.MinOneWayDelay {
			d = opt.MinOneWayDelay
		}
		return d
	}

	var (
		curRate     units.Bandwidth = -1 // -1 forces the first step
		curDelay    time.Duration   = -1
		inOutage    bool
		outageStart time.Duration
	)
	for _, s := range tr.Samples {
		if s.Rate == 0 {
			if !inOutage {
				inOutage = true
				outageStart = s.T
			}
			continue
		}
		if inOutage {
			events = append(events, faults.Blackout{Start: outageStart, Duration: s.T - outageStart})
			inOutage = false
			curRate = -1 // re-assert the rate when the link returns
		}
		if curRate < 0 || math.Abs(float64(s.Rate-curRate)) >= opt.RateHysteresis*float64(curRate) {
			events = append(events, faults.RateStep{At: s.T, Rate: s.Rate})
			curRate = s.Rate
		}
		if s.RTT > 0 {
			d := oneWay(s.RTT)
			diff := d - curDelay
			if diff < 0 {
				diff = -diff
			}
			if curDelay < 0 || diff >= opt.MinDelayChange {
				events = append(events, faults.DelayStep{At: s.T, Delay: d})
				curDelay = d
			}
		}
	}
	if inOutage {
		d := end - outageStart
		if d <= 0 {
			d = time.Millisecond
		}
		events = append(events, faults.Blackout{Start: outageStart, Duration: d})
	}

	// Gilbert–Elliott windows over maximal lossy non-outage runs.
	runStart, lossSum, lossN := time.Duration(-1), 0.0, 0
	flushLoss := func(runEnd time.Duration) {
		if runStart < 0 {
			return
		}
		dur := runEnd - runStart
		if dur <= 0 {
			dur = time.Millisecond
		}
		events = append(events, faults.BurstLoss{
			Start:    runStart,
			Duration: dur,
			GE:       geFor(lossSum / float64(lossN)),
		})
		runStart, lossSum, lossN = -1, 0, 0
	}
	for _, s := range tr.Samples {
		if s.Rate > 0 && s.Loss >= opt.LossThreshold {
			if runStart < 0 {
				runStart = s.T
			}
			lossSum += s.Loss
			lossN++
		} else {
			flushLoss(s.T)
		}
	}
	flushLoss(end)

	c := &Compiled{
		Trace:    tr,
		Options:  opt,
		Schedule: faults.Schedule{Hop: opt.Hop, Events: events},
		Segments: tr.Segments(),
	}
	if err := c.Schedule.Validate(); err != nil {
		return nil, fmt.Errorf("mobility: compiled schedule invalid: %w", err)
	}
	return c, nil
}

// Install arms the compiled schedule on the path and, when a bus is given,
// publishes the trace's segment timeline (telemetry.KindSegment, Conn -1)
// alongside the per-event fault markers InstallObserved already emits: one
// begin and one end per segment, carrying the kind label and the segment's
// mean rate in Mbps.
func (c *Compiled) Install(eng *sim.Engine, path *netem.Path, bus *telemetry.Bus) error {
	if err := c.Schedule.InstallObserved(eng, path, bus); err != nil {
		return err
	}
	if bus == nil {
		return nil
	}
	for _, s := range c.Segments {
		s := s
		desc := fmt.Sprintf("%s %s", c.Trace.Name, s.Kind)
		eng.Schedule(s.Start, func() {
			bus.Emit(telemetry.Event{
				Kind: telemetry.KindSegment, Conn: -1,
				Old: "begin", New: desc, Value: s.MeanRate.Mbit(),
			})
		})
		eng.Schedule(s.End, func() {
			bus.Emit(telemetry.Event{
				Kind: telemetry.KindSegment, Conn: -1,
				Old: "end", New: desc, Value: s.MeanRate.Mbit(),
			})
		})
	}
	return nil
}

// Describe renders the compiled form as stable text — one schedule event
// per line, then the segment timeline — used by the golden-file tests and
// handy for eyeballing what a dataset lowered to.
func (c *Compiled) Describe() string {
	out := fmt.Sprintf("trace %s: %d samples, %v, %d events, %d segments\n",
		c.Trace.Name, len(c.Trace.Samples), c.Trace.Duration(), len(c.Schedule.Events), len(c.Segments))
	for _, ev := range c.Schedule.Events {
		out += "  event " + ev.String() + "\n"
	}
	for _, s := range c.Segments {
		out += fmt.Sprintf("  segment %v-%v %s mean %v\n", s.Start, s.End, s.Kind, s.MeanRate)
	}
	return out
}
