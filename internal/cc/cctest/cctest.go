// Package cctest provides a scripted fake cc.Conn for unit-testing
// congestion-control modules without the full transport.
package cctest

import (
	"math/rand"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/seg"
	"mobbr/internal/units"
)

// FakeConn is a controllable cc.Conn. Fields are exported so tests can
// script the transport state the module observes.
type FakeConn struct {
	Time        time.Duration
	Mss         units.DataSize
	CwndPkts    int
	SsthreshVal int
	Rate        units.Bandwidth
	Inflight    int
	DeliveredN  int64
	LostN       int64
	Srtt        time.Duration
	MinRtt      time.Duration
	LastRtt     time.Duration
	CAState     cc.State
	CwndLim     bool
	Rng         *rand.Rand
}

// NewFakeConn returns a fake with sensible defaults (MSS 1460, cwnd 10).
func NewFakeConn() *FakeConn {
	return &FakeConn{
		Mss:         seg.MSS,
		CwndPkts:    10,
		SsthreshVal: 1 << 30,
		CwndLim:     true,
		Rng:         rand.New(rand.NewSource(1)),
	}
}

// Now implements cc.Conn.
func (f *FakeConn) Now() time.Duration { return f.Time }

// MSS implements cc.Conn.
func (f *FakeConn) MSS() units.DataSize { return f.Mss }

// Cwnd implements cc.Conn.
func (f *FakeConn) Cwnd() int { return f.CwndPkts }

// SetCwnd implements cc.Conn.
func (f *FakeConn) SetCwnd(p int) {
	if p < 1 {
		p = 1
	}
	f.CwndPkts = p
}

// Ssthresh implements cc.Conn.
func (f *FakeConn) Ssthresh() int { return f.SsthreshVal }

// SetSsthresh implements cc.Conn.
func (f *FakeConn) SetSsthresh(p int) { f.SsthreshVal = p }

// PacingRate implements cc.Conn.
func (f *FakeConn) PacingRate() units.Bandwidth { return f.Rate }

// SetPacingRate implements cc.Conn.
func (f *FakeConn) SetPacingRate(r units.Bandwidth) { f.Rate = r }

// PacketsInFlight implements cc.Conn.
func (f *FakeConn) PacketsInFlight() int { return f.Inflight }

// Delivered implements cc.Conn.
func (f *FakeConn) Delivered() int64 { return f.DeliveredN }

// Lost implements cc.Conn.
func (f *FakeConn) Lost() int64 { return f.LostN }

// SRTT implements cc.Conn.
func (f *FakeConn) SRTT() time.Duration { return f.Srtt }

// MinRTT implements cc.Conn.
func (f *FakeConn) MinRTT() time.Duration { return f.MinRtt }

// LastRTT implements cc.Conn.
func (f *FakeConn) LastRTT() time.Duration { return f.LastRtt }

// State implements cc.Conn.
func (f *FakeConn) State() cc.State { return f.CAState }

// IsCwndLimited implements cc.Conn.
func (f *FakeConn) IsCwndLimited() bool { return f.CwndLim }

// Rand implements cc.Conn.
func (f *FakeConn) Rand() *rand.Rand { return f.Rng }

// Ack delivers n packets with the given RTT and advances the fake clock,
// returning a valid steady-flow rate sample at the given delivery rate.
func (f *FakeConn) Ack(n int64, rtt time.Duration, rate units.Bandwidth) *cc.RateSample {
	// The acked packet was sent roughly Inflight packets ago, so its
	// delivered-at-send snapshot lags by that much — this is what makes
	// round counting advance once per window rather than once per ack.
	prior := f.DeliveredN - int64(f.Inflight)
	if prior < 0 {
		prior = 0
	}
	f.DeliveredN += n
	iv := rate.TimeToSend(units.DataSize(n) * f.Mss)
	if iv <= 0 {
		iv = time.Millisecond
	}
	f.Time += iv
	f.LastRtt = rtt
	if f.MinRtt == 0 || rtt < f.MinRtt {
		f.MinRtt = rtt
	}
	if f.Srtt == 0 {
		f.Srtt = rtt
	} else {
		f.Srtt = (7*f.Srtt + rtt) / 8
	}
	return &cc.RateSample{
		Delivered:      n,
		PriorDelivered: prior,
		Interval:       iv,
		RTT:            rtt,
		AckedSacked:    n,
		PriorInFlight:  f.Inflight,
	}
}
