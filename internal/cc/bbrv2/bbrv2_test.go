package bbrv2

import (
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cc/cctest"
	"mobbr/internal/units"
)

func TestIdentity(t *testing.T) {
	b := New()
	if b.Name() != "bbr2" {
		t.Errorf("name = %q", b.Name())
	}
	if !b.WantsPacing() {
		t.Error("bbr2 must want pacing")
	}
	if b.AckCost() < 2400 {
		t.Error("bbr2 per-ack cost should be at least v1's")
	}
}

func drive(b *BBRv2, f *cctest.FakeConn, n int, rtt time.Duration, rate units.Bandwidth) {
	for i := 0; i < n; i++ {
		rs := f.Ack(2, rtt, rate)
		b.OnAck(f, rs)
	}
}

func TestStartupToProbeBW(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 4
	b := New()
	b.Init(f)
	drive(b, f, 1000, 2*time.Millisecond, 50*units.Mbps)
	if b.Mode() != ProbeBW {
		t.Fatalf("mode = %v, want ProbeBW", b.Mode())
	}
}

func TestLossyRoundLearnsInflightHi(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 40
	b := New()
	b.Init(f)
	drive(b, f, 500, 2*time.Millisecond, 50*units.Mbps)
	if b.InflightHi() != unbounded {
		t.Fatalf("inflight_hi learned without loss: %d", b.InflightHi())
	}
	// Feed rounds with >2% loss.
	for i := 0; i < 200; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 50*units.Mbps)
		rs.Losses = 1 // 1 loss per 2 delivered = 33% >> 2%
		b.OnAck(f, rs)
	}
	hi := b.InflightHi()
	if hi == unbounded {
		t.Fatal("inflight_hi never learned from lossy rounds")
	}
	if hi > int(float64(f.Inflight)*beta)+1 {
		t.Errorf("inflight_hi = %d, want <= beta×inflight = %v", hi, float64(f.Inflight)*beta)
	}
}

func TestLowLossDoesNotSetInflightHi(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 100 // one round ≈ 100 delivered packets
	b := New()
	b.Init(f)
	// 1 loss per 400 delivered ≈ 1% per lossy round, below the 2%
	// threshold.
	for i := 0; i < 2000; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 50*units.Mbps)
		if i%200 == 199 { // avoid the tiny bootstrap round at i=0
			rs.Losses = 1
		}
		b.OnAck(f, rs)
	}
	if b.InflightHi() != unbounded {
		t.Errorf("inflight_hi = %d from sub-threshold loss, want unbounded", b.InflightHi())
	}
}

func TestCwndBoundedByInflightHi(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 40
	b := New()
	b.Init(f)
	drive(b, f, 500, 4*time.Millisecond, 200*units.Mbps)
	for i := 0; i < 100; i++ {
		rs := f.Ack(2, 4*time.Millisecond, 200*units.Mbps)
		rs.Losses = 1
		b.OnAck(f, rs)
	}
	hi := b.InflightHi()
	if hi == unbounded {
		t.Fatal("precondition: no inflight_hi")
	}
	drive(b, f, 500, 4*time.Millisecond, 200*units.Mbps)
	if f.CwndPkts > hi {
		t.Errorf("cwnd %d exceeds inflight_hi %d", f.CwndPkts, hi)
	}
}

func TestProbePhaseCycle(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 4
	b := New()
	b.Init(f)
	drive(b, f, 1000, 2*time.Millisecond, 50*units.Mbps)
	if b.Mode() != ProbeBW {
		t.Fatalf("mode = %v", b.Mode())
	}
	seen := map[Phase]bool{}
	// Make inflight respond to the phase the way a real transport would:
	// high while probing up, draining low in DOWN, near-BDP otherwise.
	for i := 0; i < 30000; i++ {
		switch b.CurrentPhase() {
		case PhaseUp:
			f.Inflight = 60
		case PhaseDown:
			f.Inflight = 5
		default:
			f.Inflight = 9
		}
		rs := f.Ack(2, 2*time.Millisecond, 50*units.Mbps)
		b.OnAck(f, rs)
		seen[b.CurrentPhase()] = true
		if len(seen) == 4 {
			break
		}
	}
	for _, p := range []Phase{PhaseDown, PhaseCruise, PhaseRefill, PhaseUp} {
		if !seen[p] {
			t.Errorf("phase %v never visited (saw %v)", p, seen)
		}
	}
}

func TestInflightLoDecays(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 40
	b := New()
	b.Init(f)
	drive(b, f, 500, 2*time.Millisecond, 50*units.Mbps)
	for i := 0; i < 100; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 50*units.Mbps)
		rs.Losses = 1
		b.OnAck(f, rs)
	}
	lo := b.inflightLo
	if lo == unbounded {
		t.Fatal("precondition: no inflight_lo")
	}
	// Clean rounds decay the short-term bound away.
	drive(b, f, 5000, 2*time.Millisecond, 50*units.Mbps)
	if b.inflightLo != unbounded {
		t.Errorf("inflight_lo = %d never decayed to unbounded", b.inflightLo)
	}
}

func TestExcessStartupLossEndsStartup(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 30
	b := New()
	b.Init(f)
	for i := 0; i < 200 && !b.fullPipe; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 400*units.Mbps)
		rs.Losses = 2
		b.OnAck(f, rs)
	}
	if !b.fullPipe {
		t.Error("startup did not end under heavy loss")
	}
}

func TestEventHandlingPreservesCwnd(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 64
	b := New()
	b.Init(f)
	b.OnEvent(f, cc.EventEnterLoss)
	f.CwndPkts = 1
	b.OnEvent(f, cc.EventExitRecovery)
	if f.CwndPkts != 64 {
		t.Errorf("cwnd = %d after recovery, want 64", f.CwndPkts)
	}
}

func TestPhaseString(t *testing.T) {
	names := map[Phase]string{PhaseDown: "DOWN", PhaseCruise: "CRUISE", PhaseRefill: "REFILL", PhaseUp: "UP"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestECNAlphaTracksCEFraction(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 40
	b := New()
	b.Init(f)
	drive(b, f, 500, 2*time.Millisecond, 50*units.Mbps)
	if b.ECNAlpha() != 0 {
		t.Fatalf("alpha = %v before any CE", b.ECNAlpha())
	}
	// Rounds with every packet CE-marked push alpha toward 1.
	for i := 0; i < 2000; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 50*units.Mbps)
		rs.CECount = 2
		b.OnAck(f, rs)
	}
	if a := b.ECNAlpha(); a < 0.5 {
		t.Errorf("alpha = %v after all-CE rounds, want > 0.5", a)
	}
	// Clean rounds decay it again.
	drive(b, f, 5000, 2*time.Millisecond, 50*units.Mbps)
	if a := b.ECNAlpha(); a > 0.2 {
		t.Errorf("alpha = %v after clean rounds, want decayed", a)
	}
}

func TestECNHighRoundCutsInflightHi(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 40
	b := New()
	b.Init(f)
	drive(b, f, 500, 2*time.Millisecond, 50*units.Mbps)
	if b.InflightHi() != unbounded {
		t.Fatal("precondition: no ceiling yet")
	}
	// >50% CE per round: treated like a lossy round.
	for i := 0; i < 200; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 50*units.Mbps)
		rs.CECount = 2
		b.OnAck(f, rs)
	}
	if b.InflightHi() == unbounded {
		t.Error("over-threshold CE rounds did not set inflight_hi")
	}
}
