// Package bbrv2 implements BBR v2 congestion control, following Google's
// alpha (the code the paper backports to the Pixel 6 kernel, per the
// IETF-104/105/106 iccrg presentations): it keeps BBR v1's model-based
// pacing but adds loss-bounded operation — an inflight_hi ceiling learned
// from loss probes, an inflight_lo short-term bound after loss rounds, and
// an explicit PROBE_BW sub-state machine (DOWN → CRUISE → REFILL → UP) that
// probes for more bandwidth only every few seconds and backs off when the
// per-round loss rate exceeds ~2%.
package bbrv2

import (
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/stats"
	"mobbr/internal/units"
)

// Phase is the v2 PROBE_BW sub-state.
type Phase int

// PROBE_BW phases.
const (
	PhaseDown Phase = iota
	PhaseCruise
	PhaseRefill
	PhaseUp
)

// String returns the phase name.
func (p Phase) String() string {
	switch p {
	case PhaseDown:
		return "DOWN"
	case PhaseCruise:
		return "CRUISE"
	case PhaseRefill:
		return "REFILL"
	case PhaseUp:
		return "UP"
	default:
		return "?"
	}
}

// Mode is the top-level state, as in v1.
type Mode int

// Top-level modes.
const (
	Startup Mode = iota
	Drain
	ProbeBW
	ProbeRTT
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Startup:
		return "STARTUP"
	case Drain:
		return "DRAIN"
	case ProbeBW:
		return "PROBE_BW"
	case ProbeRTT:
		return "PROBE_RTT"
	default:
		return "?"
	}
}

// BBRv2 constants (from the alpha defaults).
const (
	highGain         = 2.773 // 2/ln2 adjusted down in v2
	drainGain        = 1.0 / highGain
	cwndGainDefault  = 2.0
	bwWindowRounds   = 10
	minRTTWindow     = 10 * time.Second
	probeRTTDuration = 200 * time.Millisecond
	minCwndPackets   = 4
	fullBWThresh     = 1.25
	fullBWCount      = 3
	pacingMargin     = 0.99
	// lossThresh is the per-round loss rate that signals "too much"
	// (bbr_loss_thresh = 2%).
	lossThresh = 0.02
	// beta is the multiplicative back-off applied to inflight_hi on an
	// over-threshold loss round (0.7 in the alpha, i.e. cut 30%).
	beta = 0.7
	// headroom keeps inflight below inflight_hi in CRUISE
	// (bbr_inflight_headroom = 15%).
	headroom = 0.85
	// probeWaitBase / probeWaitRand bound the CRUISE dwell before the
	// next bandwidth probe (2–3 s wall-clock, per bbr_bw_probe_base_us).
	probeWaitBase = 2 * time.Second
	probeWaitRand = time.Second
	// ecnAlphaGain is the EWMA gain for the per-round CE fraction
	// (bbr_ecn_alpha_gain, 1/16).
	ecnAlphaGain = 1.0 / 16
	// ecnThresh is the per-round CE fraction treated as an over-limit
	// signal, like a lossy round (bbr_ecn_thresh, 50%).
	ecnThresh = 0.5
	// ecnFactor scales how much of ecnAlpha cuts inflight_lo each round
	// (bbr_ecn_factor, 1/3).
	ecnFactor = 1.0 / 3
	// ackCost: v2's per-ACK model is v1 plus loss-rate bookkeeping.
	ackCost = 2800
)

var pacingGainDown = 0.9
var pacingGainUp = 1.25

// BBRv2 is one connection's BBR v2 state.
type BBRv2 struct {
	mode  Mode
	phase Phase

	// minRTTWindow is the propagation-delay filter length (see the v1
	// package for why it is configurable).
	minRTTWindow time.Duration

	bwFilter   *stats.WindowedMax
	roundCount uint64
	nextRTTDel int64
	roundStart bool

	minRTT      time.Duration
	minRTTStamp time.Duration

	probeRTTDoneAt time.Duration
	probeRTTRound  int64
	priorCwnd      int

	fullBW    float64
	fullBWCnt int
	fullPipe  bool

	pacingGain float64
	cwndGain   float64

	// Loss-bounded inflight model.
	inflightHi int // packets; 1<<30 = unknown
	inflightLo int // packets; 1<<30 = unbounded

	// Per-round loss and ECN accounting.
	roundLost      int64
	roundDelivered int64
	roundCE        int64
	ecnAlpha       float64

	probeWaitUntil time.Duration
	refillRound    uint64

	// modeListener, when set, observes every state-machine transition
	// (telemetry); labels include the PROBE_BW sub-phase. nil costs only a
	// nil-check per transition.
	modeListener func(old, new string)
}

const unbounded = 1 << 30

// New returns a fresh BBRv2 instance.
func New() *BBRv2 {
	return &BBRv2{
		minRTTWindow: minRTTWindow,
		bwFilter:     stats.NewWindowedMax(bwWindowRounds),
		pacingGain:   highGain,
		cwndGain:     highGain,
		inflightHi:   unbounded,
		inflightLo:   unbounded,
	}
}

// SetMinRTTWindow overrides the 10-second min-RTT filter window for short
// simulated runs.
func (b *BBRv2) SetMinRTTWindow(d time.Duration) {
	if d > 0 {
		b.minRTTWindow = d
	}
}

// Factory returns a cc.Factory producing fresh BBRv2 instances.
func Factory() cc.Factory {
	return func() cc.CongestionControl { return New() }
}

// Name implements cc.CongestionControl.
func (b *BBRv2) Name() string { return "bbr2" }

// WantsPacing implements cc.CongestionControl.
func (b *BBRv2) WantsPacing() bool { return true }

// AckCost implements cc.CongestionControl.
func (b *BBRv2) AckCost() float64 { return ackCost }

// Mode returns the top-level mode (for tests).
func (b *BBRv2) Mode() Mode { return b.mode }

// CurrentPhase returns the PROBE_BW sub-phase (for tests).
func (b *BBRv2) CurrentPhase() Phase { return b.phase }

// SetModeListener implements cc.ModeReporter.
func (b *BBRv2) SetModeListener(fn func(old, new string)) { b.modeListener = fn }

// label is the externally visible state: the mode, with the sub-phase
// appended while cycling PROBE_BW (e.g. "PROBE_BW/CRUISE").
func (b *BBRv2) label() string {
	if b.mode == ProbeBW {
		return b.mode.String() + "/" + b.phase.String()
	}
	return b.mode.String()
}

// observe runs mutate and notifies the listener if the visible state-machine
// label changed. With no listener it is just mutate().
func (b *BBRv2) observe(mutate func()) {
	if b.modeListener == nil {
		mutate()
		return
	}
	old := b.label()
	mutate()
	if n := b.label(); n != old {
		b.modeListener(old, n)
	}
}

// InflightHi returns the loss-learned inflight ceiling in packets, or a
// very large value when unknown.
func (b *BBRv2) InflightHi() int { return b.inflightHi }

// ECNAlpha returns the EWMA of the per-round CE fraction.
func (b *BBRv2) ECNAlpha() float64 { return b.ecnAlpha }

// BtlBw returns the bandwidth estimate.
func (b *BBRv2) BtlBw() units.Bandwidth { return units.Bandwidth(b.bwFilter.Get() * 8) }

// Init implements cc.CongestionControl.
func (b *BBRv2) Init(conn cc.Conn) {
	b.mode = Startup
	rtt := conn.SRTT()
	if rtt <= 0 {
		rtt = time.Millisecond
	}
	bw := float64(conn.Cwnd()) * float64(conn.MSS()) / rtt.Seconds()
	conn.SetPacingRate(units.Bandwidth(bw * 8 * highGain))
}

func (b *BBRv2) bdpPackets(conn cc.Conn, gain float64) int {
	bw := b.bwFilter.Get()
	if bw == 0 || b.minRTT <= 0 {
		return conn.Cwnd()
	}
	// Quantization budget, as in v1: three send quanta of headroom.
	n := int(bw*b.minRTT.Seconds()/float64(conn.MSS())*gain+0.5) + 3*tsoSegsGoal(conn)
	if n < minCwndPackets {
		n = minCwndPackets
	}
	return n
}

// tsoSegsGoal mirrors bbr_tso_segs_goal (see the v1 package).
func tsoSegsGoal(conn cc.Conn) int {
	bytes := float64(conn.PacingRate()) / 8 * 1e-3
	segs := int(bytes / float64(conn.MSS()))
	if segs < 2 {
		segs = 2
	}
	if max := int(64 * 1024 / conn.MSS()); segs > max {
		segs = max
	}
	return segs
}

// OnAck implements cc.CongestionControl.
func (b *BBRv2) OnAck(conn cc.Conn, rs *cc.RateSample) {
	b.updateRound(conn, rs)
	b.updateBandwidth(conn, rs)
	b.updateLossModel(conn, rs)
	b.checkFullPipe(conn, rs)
	b.checkDrain(conn)
	b.updateProbePhases(conn, rs)
	b.updateMinRTT(conn, rs)
	b.setPacingRate(conn)
	b.setCwnd(conn, rs)
}

func (b *BBRv2) updateRound(conn cc.Conn, rs *cc.RateSample) {
	b.roundLost += rs.Losses
	b.roundDelivered += rs.AckedSacked
	b.roundCE += rs.CECount
	if rs.PriorDelivered >= b.nextRTTDel {
		b.nextRTTDel = conn.Delivered()
		b.roundCount++
		b.roundStart = true
	} else {
		b.roundStart = false
	}
}

func (b *BBRv2) updateBandwidth(conn cc.Conn, rs *cc.RateSample) {
	if !rs.Valid() {
		return
	}
	rate := float64(units.DataSize(rs.Delivered)*conn.MSS()) / rs.Interval.Seconds()
	if !rs.IsAppLimited || rate >= b.bwFilter.Get() {
		b.bwFilter.Update(b.roundCount, rate)
	}
}

// updateLossModel adjusts inflight_hi/lo from per-round loss rates: the
// core v2 addition.
func (b *BBRv2) updateLossModel(conn cc.Conn, rs *cc.RateSample) {
	if !b.roundStart {
		return
	}
	total := b.roundDelivered + b.roundLost
	// ECN: update the CE-fraction EWMA and treat an over-threshold round
	// like a lossy one (bbr2_check_ecn_too_high).
	if b.roundDelivered > 0 {
		ceFrac := float64(b.roundCE) / float64(b.roundDelivered)
		if ceFrac > 1 {
			ceFrac = 1
		}
		b.ecnAlpha = (1-ecnAlphaGain)*b.ecnAlpha + ecnAlphaGain*ceFrac
	}
	ecnHigh := b.roundDelivered > 0 &&
		float64(b.roundCE)/float64(b.roundDelivered) > ecnThresh
	lossy := (total > 0 && float64(b.roundLost)/float64(total) > lossThresh) || ecnHigh
	if lossy {
		// Learn/shrink the ceiling from what was in flight.
		hi := int(float64(rs.PriorInFlight) * beta)
		if hi < minCwndPackets {
			hi = minCwndPackets
		}
		if hi < b.inflightHi || b.inflightHi == unbounded {
			b.inflightHi = hi
		}
		b.inflightLo = hi
		if b.mode == ProbeBW && b.phase == PhaseUp {
			b.observe(func() { b.enterPhase(conn, PhaseDown) })
		}
		if b.mode == Startup {
			b.fullPipe = true // excessive startup loss ends STARTUP
		}
	} else if b.inflightLo != unbounded {
		// Decay the short-term bound once losses stop.
		b.inflightLo += b.inflightLo / 8
		if b.inflightLo >= b.inflightHi {
			b.inflightLo = unbounded
		}
	}
	// A nonzero alpha trims the short-term bound each round
	// (bbr2_ecn_cut), steering inflight below the marking point.
	if b.ecnAlpha > 0.01 && b.inflightLo != unbounded {
		cut := int(float64(b.inflightLo) * (1 - b.ecnAlpha*ecnFactor))
		if cut < minCwndPackets {
			cut = minCwndPackets
		}
		if cut < b.inflightLo {
			b.inflightLo = cut
		}
	}
	b.roundLost = 0
	b.roundDelivered = 0
	b.roundCE = 0
}

func (b *BBRv2) checkFullPipe(conn cc.Conn, rs *cc.RateSample) {
	if b.fullPipe || !b.roundStart || rs.IsAppLimited {
		return
	}
	bw := b.bwFilter.Get()
	if bw >= b.fullBW*fullBWThresh {
		b.fullBW = bw
		b.fullBWCnt = 0
		return
	}
	b.fullBWCnt++
	if b.fullBWCnt >= fullBWCount {
		b.fullPipe = true
	}
}

func (b *BBRv2) checkDrain(conn cc.Conn) {
	if b.mode == Startup && b.fullPipe {
		b.observe(func() {
			b.mode = Drain
			b.pacingGain = drainGain
			b.cwndGain = highGain
		})
	}
	if b.mode == Drain && conn.PacketsInFlight() <= b.bdpPackets(conn, 1.0) {
		b.observe(func() {
			b.mode = ProbeBW
			b.cwndGain = cwndGainDefault
			b.enterPhase(conn, PhaseDown)
		})
	}
}

func (b *BBRv2) enterPhase(conn cc.Conn, p Phase) {
	b.phase = p
	now := conn.Now()
	switch p {
	case PhaseDown:
		b.pacingGain = pacingGainDown
	case PhaseCruise:
		b.pacingGain = 1.0
		wait := probeWaitBase + time.Duration(conn.Rand().Int63n(int64(probeWaitRand)))
		b.probeWaitUntil = now + wait
	case PhaseRefill:
		b.pacingGain = 1.0
		b.inflightLo = unbounded
		b.refillRound = b.roundCount
	case PhaseUp:
		b.pacingGain = pacingGainUp
	}
}

func (b *BBRv2) updateProbePhases(conn cc.Conn, rs *cc.RateSample) {
	if b.mode != ProbeBW {
		return
	}
	now := conn.Now()
	switch b.phase {
	case PhaseDown:
		target := b.targetInflight(conn)
		if conn.PacketsInFlight() <= target {
			b.observe(func() { b.enterPhase(conn, PhaseCruise) })
		}
	case PhaseCruise:
		if now >= b.probeWaitUntil {
			b.observe(func() { b.enterPhase(conn, PhaseRefill) })
		}
	case PhaseRefill:
		// One round of refilling the pipe, then probe up.
		if b.roundCount > b.refillRound {
			b.observe(func() { b.enterPhase(conn, PhaseUp) })
		}
	case PhaseUp:
		// Grow until we hit the ceiling (or a lossy round knocks us
		// down in updateLossModel).
		if b.inflightHi != unbounded && rs.PriorInFlight >= b.inflightHi {
			b.observe(func() { b.enterPhase(conn, PhaseDown) })
		} else if b.minRTT > 0 && rs.PriorInFlight >= b.bdpPackets(conn, 1.25) {
			b.observe(func() { b.enterPhase(conn, PhaseDown) })
		}
	}
}

// targetInflight is the CRUISE operating point: the BDP bounded by
// inflight_hi with headroom and by inflight_lo.
func (b *BBRv2) targetInflight(conn cc.Conn) int {
	t := b.bdpPackets(conn, 1.0)
	if b.inflightHi != unbounded {
		if hi := int(float64(b.inflightHi) * headroom); t > hi {
			t = hi
		}
	}
	if b.inflightLo != unbounded && t > b.inflightLo {
		t = b.inflightLo
	}
	if t < minCwndPackets {
		t = minCwndPackets
	}
	return t
}

func (b *BBRv2) updateMinRTT(conn cc.Conn, rs *cc.RateSample) {
	now := conn.Now()
	expired := b.minRTT > 0 && now-b.minRTTStamp > b.minRTTWindow
	if rs.RTT > 0 && (b.minRTT == 0 || rs.RTT <= b.minRTT || expired) {
		b.minRTT = rs.RTT
		b.minRTTStamp = now
	}
	if expired && b.mode != ProbeRTT && b.fullPipe {
		b.observe(func() {
			b.mode = ProbeRTT
			b.priorCwnd = conn.Cwnd()
			b.probeRTTDoneAt = 0
			b.pacingGain = 1.0
		})
	}
	if b.mode == ProbeRTT {
		if b.probeRTTDoneAt == 0 && conn.PacketsInFlight() <= b.probeRTTCwnd(conn) {
			b.probeRTTDoneAt = now + probeRTTDuration
			b.probeRTTRound = conn.Delivered()
		}
		if b.probeRTTDoneAt != 0 && now > b.probeRTTDoneAt && conn.Delivered() > b.probeRTTRound {
			b.minRTTStamp = now
			if conn.Cwnd() < b.priorCwnd {
				conn.SetCwnd(b.priorCwnd)
			}
			b.observe(func() {
				b.mode = ProbeBW
				b.cwndGain = cwndGainDefault
				b.enterPhase(conn, PhaseDown)
			})
		}
	}
}

// probeRTTCwnd: v2 drains to half the BDP rather than 4 packets.
func (b *BBRv2) probeRTTCwnd(conn cc.Conn) int {
	n := b.bdpPackets(conn, 0.5)
	if n < minCwndPackets {
		n = minCwndPackets
	}
	return n
}

func (b *BBRv2) setPacingRate(conn cc.Conn) {
	bw := b.bwFilter.Get()
	if bw == 0 {
		return
	}
	rate := units.Bandwidth(bw * 8 * b.pacingGain * pacingMargin)
	if b.fullPipe || rate > conn.PacingRate() {
		conn.SetPacingRate(rate)
	}
}

func (b *BBRv2) setCwnd(conn cc.Conn, rs *cc.RateSample) {
	if b.mode == ProbeRTT {
		if w := b.probeRTTCwnd(conn); conn.Cwnd() > w {
			conn.SetCwnd(w)
		}
		return
	}
	target := b.bdpPackets(conn, b.cwndGain)
	// Apply the loss-learned bounds.
	if b.inflightHi != unbounded {
		bound := b.inflightHi
		if b.mode == ProbeBW && b.phase == PhaseCruise {
			bound = int(float64(b.inflightHi) * headroom)
		}
		if target > bound {
			target = bound
		}
	}
	if b.inflightLo != unbounded && target > b.inflightLo {
		target = b.inflightLo
	}
	cwnd := conn.Cwnd()
	acked := int(rs.AckedSacked)
	if b.fullPipe {
		if cwnd+acked < target {
			cwnd += acked
		} else {
			cwnd = target
		}
	} else {
		cwnd += acked
	}
	if cwnd < minCwndPackets {
		cwnd = minCwndPackets
	}
	conn.SetCwnd(cwnd)
}

// OnEvent implements cc.CongestionControl.
func (b *BBRv2) OnEvent(conn cc.Conn, ev cc.Event) {
	switch ev {
	case cc.EventEnterLoss:
		b.priorCwnd = conn.Cwnd()
	case cc.EventExitRecovery:
		if b.priorCwnd > conn.Cwnd() {
			conn.SetCwnd(b.priorCwnd)
		}
	case cc.EventEnterRecovery:
		// Loss reaction happens per-round in updateLossModel.
	}
}
