package bbr

import (
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cc/cctest"
	"mobbr/internal/units"
)

func TestIdentity(t *testing.T) {
	b := New()
	if b.Name() != "bbr" {
		t.Errorf("name = %q", b.Name())
	}
	if !b.WantsPacing() {
		t.Error("bbr must want pacing")
	}
	if b.AckCost() <= 1000 {
		t.Error("bbr per-ack model cost should exceed cubic's")
	}
}

func TestInitSetsHighGainPacing(t *testing.T) {
	f := cctest.NewFakeConn()
	b := New()
	b.Init(f)
	if f.Rate == 0 {
		t.Fatal("no initial pacing rate")
	}
	if b.Mode() != Startup {
		t.Errorf("initial mode = %v, want STARTUP", b.Mode())
	}
}

// drive feeds n acks at a steady delivery rate.
func drive(b *BBR, f *cctest.FakeConn, n int, rtt time.Duration, rate units.Bandwidth) {
	for i := 0; i < n; i++ {
		rs := f.Ack(2, rtt, rate)
		b.OnAck(f, rs)
	}
}

func TestBandwidthFilterConverges(t *testing.T) {
	f := cctest.NewFakeConn()
	b := New()
	b.Init(f)
	drive(b, f, 500, 2*time.Millisecond, 80*units.Mbps)
	got := b.BtlBw()
	if got < 60*units.Mbps || got > 110*units.Mbps {
		t.Errorf("btlbw = %v after steady 80Mbps, want ~80Mbps", got)
	}
}

func TestStartupExitsOnPlateau(t *testing.T) {
	f := cctest.NewFakeConn()
	b := New()
	b.Init(f)
	// Constant delivery rate: after ~3 rounds of no growth STARTUP ends.
	drive(b, f, 400, 2*time.Millisecond, 50*units.Mbps)
	if !b.FullPipe() {
		t.Fatal("full pipe never declared on a plateaued rate")
	}
	if b.Mode() == Startup {
		t.Errorf("mode still STARTUP after plateau")
	}
}

func TestReachesProbeBWAndCyclesGains(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 4 // lets DRAIN exit immediately
	b := New()
	b.Init(f)
	drive(b, f, 2000, 2*time.Millisecond, 50*units.Mbps)
	if b.Mode() != ProbeBW {
		t.Fatalf("mode = %v, want PROBE_BW", b.Mode())
	}
	// Observe gain cycling over time. Keep inflight near the probed BDP
	// so the 1.25 probe phase can complete.
	f.Inflight = 30
	seen := map[float64]bool{}
	for i := 0; i < 2000; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 50*units.Mbps)
		b.OnAck(f, rs)
		seen[b.pacingGain] = true
	}
	if !seen[1.25] || !seen[0.75] || !seen[1.0] {
		t.Errorf("gain cycle incomplete: %v", seen)
	}
}

func TestPacingRateTracksBandwidth(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 4
	b := New()
	b.Init(f)
	drive(b, f, 2000, 2*time.Millisecond, 50*units.Mbps)
	r := f.Rate
	if r < 25*units.Mbps || r > 100*units.Mbps {
		t.Errorf("pacing rate = %v in PROBE_BW at 50Mbps, want within gain range", r)
	}
}

func TestCwndTargetsBDPMultiple(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 4
	b := New()
	b.Init(f)
	drive(b, f, 3000, 4*time.Millisecond, 60*units.Mbps)
	// BDP = 60Mbps × 4ms = 30KB ≈ 20.5 pkts; cwnd target ≈ 2×.
	bdp := 60.0e6 / 8 * 0.004 / 1460
	got := float64(f.CwndPkts)
	if got < bdp*1.2 || got > bdp*3.5 {
		t.Errorf("cwnd = %v, want ≈2×BDP (BDP=%.1f pkts)", got, bdp)
	}
}

func TestMinRTTTracksDecrease(t *testing.T) {
	f := cctest.NewFakeConn()
	b := New()
	b.Init(f)
	drive(b, f, 100, 5*time.Millisecond, 50*units.Mbps)
	drive(b, f, 100, 2*time.Millisecond, 50*units.Mbps)
	if b.MinRTTEstimate() != 2*time.Millisecond {
		t.Errorf("min rtt = %v, want 2ms", b.MinRTTEstimate())
	}
}

func TestProbeRTTEntryAfterWindowExpiry(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 4
	b := New()
	b.Init(f)
	drive(b, f, 2000, 2*time.Millisecond, 50*units.Mbps)
	if b.Mode() != ProbeBW {
		t.Fatalf("precondition: mode = %v", b.Mode())
	}
	f.Inflight = 50
	// Hold RTT above the minimum for >10s of fake time.
	f.Time += 11 * time.Second
	rs := f.Ack(2, 3*time.Millisecond, 50*units.Mbps)
	b.OnAck(f, rs)
	if b.Mode() != ProbeRTT {
		t.Fatalf("mode = %v after min-rtt expiry, want PROBE_RTT", b.Mode())
	}
	// cwnd collapses to the floor.
	rs = f.Ack(2, 3*time.Millisecond, 50*units.Mbps)
	b.OnAck(f, rs)
	if f.CwndPkts > minCwndPackets {
		t.Errorf("cwnd = %d in PROBE_RTT, want <= %d", f.CwndPkts, minCwndPackets)
	}
	// Drain inflight, dwell 200ms + a round, then it exits.
	f.Inflight = 2
	for i := 0; i < 50 && b.Mode() == ProbeRTT; i++ {
		f.Time += 20 * time.Millisecond
		rs := f.Ack(2, 3*time.Millisecond, 50*units.Mbps)
		b.OnAck(f, rs)
	}
	if b.Mode() == ProbeRTT {
		t.Error("never exited PROBE_RTT")
	}
	if f.CwndPkts <= minCwndPackets {
		t.Error("cwnd not restored after PROBE_RTT")
	}
}

func TestLossDoesNotCollapseModel(t *testing.T) {
	f := cctest.NewFakeConn()
	f.Inflight = 20
	b := New()
	b.Init(f)
	drive(b, f, 1000, 2*time.Millisecond, 50*units.Mbps)
	bwBefore := b.BtlBw()
	// A burst of lossy samples: BBR v1 must keep its bandwidth estimate.
	for i := 0; i < 50; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 50*units.Mbps)
		rs.Losses = 3
		b.OnAck(f, rs)
	}
	if got := b.BtlBw(); got < bwBefore/2 {
		t.Errorf("bandwidth estimate collapsed on loss: %v -> %v", bwBefore, got)
	}
}

func TestAppLimitedSamplesDoNotLowerEstimate(t *testing.T) {
	f := cctest.NewFakeConn()
	b := New()
	b.Init(f)
	drive(b, f, 500, 2*time.Millisecond, 80*units.Mbps)
	before := b.BtlBw()
	for i := 0; i < 500; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 5*units.Mbps)
		rs.IsAppLimited = true
		b.OnAck(f, rs)
	}
	if got := b.BtlBw(); got < before/2 {
		t.Errorf("app-limited samples lowered estimate: %v -> %v", before, got)
	}
}

func TestRTOPreservesCwndViaEvents(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 80
	b := New()
	b.Init(f)
	b.OnEvent(f, cc.EventEnterLoss)
	f.CwndPkts = 1 // transport collapse
	b.OnEvent(f, cc.EventExitRecovery)
	if f.CwndPkts != 80 {
		t.Errorf("cwnd after recovery exit = %d, want 80 restored", f.CwndPkts)
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{Startup: "STARTUP", Drain: "DRAIN", ProbeBW: "PROBE_BW", ProbeRTT: "PROBE_RTT"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
}
