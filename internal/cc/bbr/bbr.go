// Package bbr implements BBR v1 congestion control, a port of the Linux
// kernel's tcp_bbr.c: the sender models the path with a windowed-max
// bottleneck-bandwidth filter and a windowed-min propagation-delay filter,
// then sets both the pacing rate and cwnd from the model. The state machine
// is STARTUP → DRAIN → PROBE_BW (eight-phase gain cycling) with periodic
// PROBE_RTT excursions. BBR requires packet pacing — the property the paper
// shows is expensive on low-end phones.
package bbr

import (
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/stats"
	"mobbr/internal/units"
)

// Mode is the BBR state-machine mode.
type Mode int

// BBR modes.
const (
	// Startup grows quickly to find the bandwidth ceiling.
	Startup Mode = iota
	// Drain removes the queue Startup built.
	Drain
	// ProbeBW cycles pacing gains around the bandwidth estimate.
	ProbeBW
	// ProbeRTT periodically drains to re-measure propagation delay.
	ProbeRTT
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Startup:
		return "STARTUP"
	case Drain:
		return "DRAIN"
	case ProbeBW:
		return "PROBE_BW"
	case ProbeRTT:
		return "PROBE_RTT"
	default:
		return "?"
	}
}

// BBR constants, matching tcp_bbr.c.
const (
	// highGain is 2/ln(2), the startup gain.
	highGain = 2.885
	// drainGain empties the startup queue.
	drainGain = 1.0 / highGain
	// cwndGainDefault provides headroom for delayed/aggregated ACKs.
	cwndGainDefault = 2.0
	// bwWindowRounds is the bandwidth max-filter length in packet-timed
	// round trips.
	bwWindowRounds = 10
	// minRTTWindow is the propagation-delay min-filter length.
	minRTTWindow = 10 * time.Second
	// probeRTTDuration is the time spent at minimal cwnd in PROBE_RTT.
	probeRTTDuration = 200 * time.Millisecond
	// minCwndPackets is the floor (4, to keep the ACK clock alive).
	minCwndPackets = 4
	// fullBWThresh declares the pipe full if bandwidth grew by less than
	// 25% across fullBWCount consecutive rounds.
	fullBWThresh = 1.25
	fullBWCount  = 3
	// pacingMargin shaves 1% off the pacing rate to avoid building a
	// queue from its own quantization (bbr_pacing_margin_percent).
	pacingMargin = 0.99
	// ackCost is BBR's per-ACK model cost in reference cycles: the full
	// bandwidth/min-RTT filter update, round accounting and gain logic
	// re-run on every acknowledgment (§5.1.1 of the paper).
	ackCost = 2400
)

// pacingGainCycle is the PROBE_BW gain sequence.
var pacingGainCycle = [8]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// BBR is one connection's BBR state.
type BBR struct {
	mode Mode

	// minRTTWindow is the propagation-delay filter length (10 s in the
	// kernel; simulations shorter than a few windows scale it down so
	// steady-state PROBE_RTT dynamics still occur).
	minRTTWindow time.Duration

	bwFilter   *stats.WindowedMax // bytes/sec, over rounds
	roundCount uint64
	nextRTTDel int64
	roundStart bool

	minRTT      time.Duration
	minRTTStamp time.Duration

	probeRTTDoneAt time.Duration
	probeRTTRound  int64
	probeRTTArmed  bool
	priorCwnd      int

	fullBW    float64
	fullBWCnt int
	fullPipe  bool

	cycleIdx   int
	cycleStamp time.Duration

	pacingGain float64
	cwndGain   float64

	initDone bool

	// modeListener, when set, observes every state-machine transition
	// (telemetry). nil costs only a nil-check per transition.
	modeListener func(old, new string)
}

// New returns a fresh BBR instance.
func New() *BBR {
	return &BBR{
		minRTTWindow: minRTTWindow,
		bwFilter:     stats.NewWindowedMax(bwWindowRounds),
		pacingGain:   highGain,
		cwndGain:     highGain,
	}
}

// SetMinRTTWindow overrides the 10-second min-RTT filter window; the
// experiment harness scales it to a third of short simulated runs so the
// filter expires (and PROBE_RTT fires) a realistic number of times.
func (b *BBR) SetMinRTTWindow(d time.Duration) {
	if d > 0 {
		b.minRTTWindow = d
	}
}

// Factory returns a cc.Factory producing fresh BBR instances.
func Factory() cc.Factory {
	return func() cc.CongestionControl { return New() }
}

// Name implements cc.CongestionControl.
func (b *BBR) Name() string { return "bbr" }

// WantsPacing implements cc.CongestionControl: BBR requires pacing.
func (b *BBR) WantsPacing() bool { return true }

// AckCost implements cc.CongestionControl.
func (b *BBR) AckCost() float64 { return ackCost }

// Mode returns the current state-machine mode (for tests and tracing).
func (b *BBR) Mode() Mode { return b.mode }

// SetModeListener implements cc.ModeReporter.
func (b *BBR) SetModeListener(fn func(old, new string)) { b.modeListener = fn }

// setMode transitions the state machine, notifying the listener.
func (b *BBR) setMode(m Mode) {
	if m == b.mode {
		return
	}
	old := b.mode
	b.mode = m
	if b.modeListener != nil {
		b.modeListener(old.String(), m.String())
	}
}

// BtlBw returns the current bottleneck-bandwidth estimate.
func (b *BBR) BtlBw() units.Bandwidth {
	return units.Bandwidth(b.bwFilter.Get() * 8)
}

// MinRTTEstimate returns BBR's propagation-delay estimate.
func (b *BBR) MinRTTEstimate() time.Duration { return b.minRTT }

// FullPipe reports whether startup declared the pipe full.
func (b *BBR) FullPipe() bool { return b.fullPipe }

// Init implements cc.CongestionControl.
func (b *BBR) Init(conn cc.Conn) {
	b.setMode(Startup)
	b.pacingGain = highGain
	b.cwndGain = highGain
	// Initial pacing rate from the initial window over a nominal 1 ms
	// until an RTT is measured (bbr_init_pacing_rate_from_rtt).
	rtt := conn.SRTT()
	if rtt <= 0 {
		rtt = time.Millisecond
	}
	bw := float64(conn.Cwnd()) * float64(conn.MSS()) / rtt.Seconds()
	conn.SetPacingRate(units.Bandwidth(bw * 8 * highGain))
	b.initDone = true
}

// bdpPackets returns gain × BDP in packets (bbr_bdp).
func (b *BBR) bdpPackets(conn cc.Conn, gain float64) int {
	bw := b.bwFilter.Get() // bytes/sec
	if bw == 0 || b.minRTT <= 0 {
		return conn.Cwnd()
	}
	bdp := bw * b.minRTT.Seconds() / float64(conn.MSS())
	// Quantization budget (bbr_quantization_budget): three send quanta
	// of headroom so pacing in TSO-sized bursts never starves the cwnd.
	n := int(bdp*gain+0.5) + 3*tsoSegsGoal(conn)
	if n < minCwndPackets {
		n = minCwndPackets
	}
	return n
}

// tsoSegsGoal mirrors bbr_tso_segs_goal: the segments one autosized skb
// carries at the current pacing rate (~1 ms of data, floor 2, cap at the
// 64 KB GSO limit).
func tsoSegsGoal(conn cc.Conn) int {
	bytes := float64(conn.PacingRate()) / 8 * 1e-3
	segs := int(bytes / float64(conn.MSS()))
	if segs < 2 {
		segs = 2
	}
	if max := int(64 * 1024 / conn.MSS()); segs > max {
		segs = max
	}
	return segs
}

// OnAck implements cc.CongestionControl: the full bbr_main sequence.
func (b *BBR) OnAck(conn cc.Conn, rs *cc.RateSample) {
	b.updateRound(conn, rs)
	b.updateBandwidth(conn, rs)
	b.updateCyclePhase(conn, rs)
	b.checkFullPipe(rs)
	b.checkDrain(conn)
	b.updateMinRTT(conn, rs)
	b.setPacingRate(conn)
	b.setCwnd(conn, rs)
}

func (b *BBR) updateRound(conn cc.Conn, rs *cc.RateSample) {
	if rs.PriorDelivered >= b.nextRTTDel {
		b.nextRTTDel = conn.Delivered()
		b.roundCount++
		b.roundStart = true
	} else {
		b.roundStart = false
	}
}

func (b *BBR) updateBandwidth(conn cc.Conn, rs *cc.RateSample) {
	if !rs.Valid() {
		return
	}
	rate := float64(units.DataSize(rs.Delivered)*conn.MSS()) / rs.Interval.Seconds()
	// App-limited samples only count if they raise the estimate.
	if !rs.IsAppLimited || rate >= b.bwFilter.Get() {
		b.bwFilter.Update(b.roundCount, rate)
	}
}

func (b *BBR) checkFullPipe(rs *cc.RateSample) {
	if b.fullPipe || !b.roundStart || rs.IsAppLimited {
		return
	}
	bw := b.bwFilter.Get()
	if bw >= b.fullBW*fullBWThresh {
		b.fullBW = bw
		b.fullBWCnt = 0
		return
	}
	b.fullBWCnt++
	if b.fullBWCnt >= fullBWCount {
		b.fullPipe = true
	}
}

func (b *BBR) checkDrain(conn cc.Conn) {
	if b.mode == Startup && b.fullPipe {
		b.setMode(Drain)
		b.pacingGain = drainGain
		b.cwndGain = highGain
	}
	if b.mode == Drain && conn.PacketsInFlight() <= b.bdpPackets(conn, 1.0) {
		b.enterProbeBW(conn)
	}
}

func (b *BBR) enterProbeBW(conn cc.Conn) {
	b.setMode(ProbeBW)
	b.cwndGain = cwndGainDefault
	// Start anywhere in the cycle except the 0.75 phase (bbr picks a
	// random phase for fleet-wide decorrelation).
	idx := conn.Rand().Intn(len(pacingGainCycle) - 1)
	if idx >= 1 {
		idx++
	}
	b.cycleIdx = idx
	b.cycleStamp = conn.Now()
	b.pacingGain = pacingGainCycle[b.cycleIdx]
}

func (b *BBR) updateCyclePhase(conn cc.Conn, rs *cc.RateSample) {
	if b.mode != ProbeBW {
		return
	}
	now := conn.Now()
	isFullLength := b.minRTT > 0 && now-b.cycleStamp > b.minRTT
	gain := pacingGainCycle[b.cycleIdx]
	advance := false
	switch {
	case gain == 1.0:
		advance = isFullLength
	case gain > 1.0:
		// Probe until the higher rate had a chance to fill the pipe or
		// caused losses.
		advance = isFullLength &&
			(rs.Losses > 0 || rs.PriorInFlight >= b.bdpPackets(conn, gain))
	default:
		// Drain phase ends early once inflight has fallen to the BDP.
		advance = isFullLength || rs.PriorInFlight <= b.bdpPackets(conn, 1.0)
	}
	if advance {
		b.cycleIdx = (b.cycleIdx + 1) % len(pacingGainCycle)
		b.cycleStamp = now
		b.pacingGain = pacingGainCycle[b.cycleIdx]
	}
}

func (b *BBR) updateMinRTT(conn cc.Conn, rs *cc.RateSample) {
	now := conn.Now()
	expired := b.minRTT > 0 && now-b.minRTTStamp > b.minRTTWindow
	if rs.RTT > 0 && (b.minRTT == 0 || rs.RTT <= b.minRTT || expired) {
		b.minRTT = rs.RTT
		b.minRTTStamp = now
	}
	// Enter PROBE_RTT when the estimate has gone stale.
	if expired && b.mode != ProbeRTT && b.fullPipe {
		b.setMode(ProbeRTT)
		b.priorCwnd = conn.Cwnd()
		b.probeRTTDoneAt = 0
		b.pacingGain = 1.0
		b.cwndGain = 1.0
	}
	if b.mode == ProbeRTT {
		b.handleProbeRTT(conn)
	}
}

func (b *BBR) handleProbeRTT(conn cc.Conn) {
	now := conn.Now()
	if b.probeRTTDoneAt == 0 && conn.PacketsInFlight() <= minCwndPackets {
		b.probeRTTDoneAt = now + probeRTTDuration
		b.probeRTTRound = conn.Delivered()
	}
	if b.probeRTTDoneAt != 0 && now > b.probeRTTDoneAt &&
		conn.Delivered() > b.probeRTTRound {
		b.minRTTStamp = now
		b.exitProbeRTT(conn)
	}
}

func (b *BBR) exitProbeRTT(conn cc.Conn) {
	if conn.Cwnd() < b.priorCwnd {
		conn.SetCwnd(b.priorCwnd)
	}
	if b.fullPipe {
		b.enterProbeBW(conn)
	} else {
		b.setMode(Startup)
		b.pacingGain = highGain
		b.cwndGain = highGain
	}
}

func (b *BBR) setPacingRate(conn cc.Conn) {
	bw := b.bwFilter.Get()
	if bw == 0 {
		return
	}
	rate := units.Bandwidth(bw * 8 * b.pacingGain * pacingMargin)
	// During startup keep the initial high rate until the filter warms
	// up (bbr only lowers the rate once the pipe is full).
	if b.fullPipe || rate > conn.PacingRate() {
		conn.SetPacingRate(rate)
	}
}

func (b *BBR) setCwnd(conn cc.Conn, rs *cc.RateSample) {
	if b.mode == ProbeRTT {
		if conn.Cwnd() > minCwndPackets {
			conn.SetCwnd(minCwndPackets)
		}
		return
	}
	target := b.bdpPackets(conn, b.cwndGain)
	cwnd := conn.Cwnd()
	acked := int(rs.AckedSacked)
	if b.fullPipe {
		if cwnd+acked < target {
			cwnd += acked
		} else {
			cwnd = target
		}
	} else {
		// Startup: grow by the amount delivered, never shrink.
		cwnd += acked
	}
	if cwnd < minCwndPackets {
		cwnd = minCwndPackets
	}
	conn.SetCwnd(cwnd)
}

// OnEvent implements cc.CongestionControl. BBR ignores loss as a congestion
// signal; it only preserves cwnd across RTO episodes (bbr_undo_cwnd-style).
func (b *BBR) OnEvent(conn cc.Conn, ev cc.Event) {
	switch ev {
	case cc.EventEnterLoss:
		b.priorCwnd = conn.Cwnd()
	case cc.EventExitRecovery:
		if b.priorCwnd > conn.Cwnd() {
			conn.SetCwnd(b.priorCwnd)
		}
	case cc.EventEnterRecovery, cc.EventECE:
		// Deliberately no reaction: BBR v1's model, not losses or ECN,
		// sets rates (v2 adds the ECN response).
	}
}
