// Package cc defines the congestion-control interface the TCP transport
// drives, mirroring the Linux kernel's struct tcp_congestion_ops: the
// transport owns the scoreboard, RTT estimation and delivery-rate sampling,
// and hands each module a per-ACK rate sample; the module steers the
// connection through cwnd, ssthresh and pacing rate.
package cc

import (
	"math/rand"
	"time"

	"mobbr/internal/units"
)

// State is the sender's loss-recovery state, like tcp_ca_state.
type State int

// Loss-recovery states.
const (
	// StateOpen is normal operation: no loss suspected.
	StateOpen State = iota
	// StateRecovery is SACK/dupack-triggered fast recovery.
	StateRecovery
	// StateLoss follows a retransmission timeout.
	StateLoss
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateRecovery:
		return "recovery"
	case StateLoss:
		return "loss"
	default:
		return "unknown"
	}
}

// Event notifies the module of a recovery-state transition, like the
// kernel's CA_EVENT / set_state callbacks.
type Event int

// Congestion events.
const (
	// EventEnterRecovery fires when loss is first detected via
	// dupacks/SACK and the connection enters fast recovery.
	EventEnterRecovery Event = iota
	// EventEnterLoss fires on a retransmission timeout.
	EventEnterLoss
	// EventExitRecovery fires when recovery completes.
	EventExitRecovery
	// EventECE fires at most once per RTT when the receiver echoes ECN
	// congestion-experienced marks (classic-ECN response point).
	EventECE
	// EventSpuriousRTO fires when F-RTO-style detection concludes the
	// last timeout was spurious (the original transmission was ACKed);
	// the transport has already restored cwnd/ssthresh to their
	// pre-timeout values. Modules may additionally undo model state.
	EventSpuriousRTO
)

// Conn is the view of the connection a congestion-control module sees — the
// subset of tcp_sock a kernel module reads and writes.
type Conn interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// MSS returns the maximum segment size.
	MSS() units.DataSize
	// Cwnd returns the congestion window in packets.
	Cwnd() int
	// SetCwnd sets the congestion window in packets (clamped to >= 2 by
	// the transport).
	SetCwnd(pkts int)
	// Ssthresh returns the slow-start threshold in packets.
	Ssthresh() int
	// SetSsthresh sets the slow-start threshold in packets.
	SetSsthresh(pkts int)
	// PacingRate returns the current pacing rate (0 when unset).
	PacingRate() units.Bandwidth
	// SetPacingRate sets the pacing rate used by the internal pacer.
	SetPacingRate(r units.Bandwidth)
	// PacketsInFlight returns packets sent but neither acked nor marked
	// lost.
	PacketsInFlight() int
	// Delivered returns the total packets delivered (cumulatively acked
	// or SACKed) so far — the kernel's tp->delivered.
	Delivered() int64
	// Lost returns total packets marked lost so far (tp->lost).
	Lost() int64
	// SRTT returns the smoothed RTT (0 before the first sample).
	SRTT() time.Duration
	// MinRTT returns the transport's windowed minimum RTT estimate.
	MinRTT() time.Duration
	// LastRTT returns the most recent RTT sample (0 if none yet).
	LastRTT() time.Duration
	// State returns the current loss-recovery state.
	State() State
	// IsCwndLimited reports whether the last send attempt was limited by
	// cwnd rather than by application data.
	IsCwndLimited() bool
	// Rand returns the run's deterministic random source.
	Rand() *rand.Rand
}

// RateSample describes the delivery-rate measurement attached to one ACK,
// per the kernel's struct rate_sample (tcp_rate.c).
type RateSample struct {
	// Delivered is the number of packets delivered over Interval. -1
	// means the sample is invalid.
	Delivered int64
	// PriorDelivered is tp->delivered at the send of the newest acked
	// packet.
	PriorDelivered int64
	// Interval is the send/ack window the delivery was measured over.
	// <= 0 means the sample is invalid.
	Interval time.Duration
	// RTT is the RTT sample from this ACK (<= 0 if none).
	RTT time.Duration
	// AckedSacked is how many packets this ACK newly delivered.
	AckedSacked int64
	// Losses is how many packets were newly marked lost while processing
	// this ACK.
	Losses int64
	// PriorInFlight is the packets in flight before this ACK.
	PriorInFlight int
	// IsAppLimited marks samples taken while the sender had no data to
	// send, which must not lower bandwidth estimates.
	IsAppLimited bool
	// IsRetrans marks samples derived from a retransmitted packet.
	IsRetrans bool
	// CECount is how many ECN CE marks this ACK echoed.
	CECount int64
}

// Valid reports whether the sample can be used for bandwidth estimation.
func (rs *RateSample) Valid() bool { return rs.Delivered >= 0 && rs.Interval > 0 }

// DeliveryRate returns the measured delivery rate, or 0 for invalid samples.
func (rs *RateSample) DeliveryRate(mss units.DataSize) units.Bandwidth {
	if !rs.Valid() {
		return 0
	}
	return units.BandwidthFromBytes(units.DataSize(rs.Delivered)*mss, rs.Interval)
}

// CongestionControl is the algorithm interface, the analogue of
// tcp_congestion_ops.
type CongestionControl interface {
	// Name returns the algorithm's sysctl-style name ("cubic", "bbr", …).
	Name() string
	// Init is called once when the connection is established.
	Init(c Conn)
	// OnAck is called for every processed ACK after scoreboard and rate
	// sample updates — it merges cong_control/cong_avoid/pkts_acked.
	OnAck(c Conn, rs *RateSample)
	// OnEvent is called on loss-recovery transitions.
	OnEvent(c Conn, ev Event)
	// AckCost returns the module's per-ACK model cost in reference CPU
	// cycles; BBR's model update is substantially heavier than Cubic's
	// AIMD step (§5.1.1 of the paper).
	AckCost() float64
	// WantsPacing reports whether the module requires packet pacing
	// (true for BBR/BBRv2, false for Cubic).
	WantsPacing() bool
}

// Factory builds a fresh congestion-control instance per connection.
type Factory func() CongestionControl

// ModeReporter is implemented by modules with an internal state machine
// (BBR, BBRv2) that can notify a listener on every mode change — the
// telemetry layer attaches here instead of polling. The labels are the
// modules' String() forms (BBRv2 includes the PROBE_BW sub-phase, e.g.
// "PROBE_BW/CRUISE").
type ModeReporter interface {
	// SetModeListener installs fn, called as fn(old, new) on each change.
	// nil disables reporting.
	SetModeListener(fn func(old, new string))
}
