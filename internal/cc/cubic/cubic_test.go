package cubic

import (
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cc/cctest"
	"mobbr/internal/units"
)

func TestIdentity(t *testing.T) {
	cu := New()
	if cu.Name() != "cubic" {
		t.Errorf("name = %q", cu.Name())
	}
	if cu.WantsPacing() {
		t.Error("cubic must not want pacing")
	}
	if cu.AckCost() >= 2000 {
		t.Error("cubic per-ack cost should be far below BBR's")
	}
}

func TestSlowStartDoubling(t *testing.T) {
	f := cctest.NewFakeConn()
	f.SsthreshVal = 1 << 30
	cu := New()
	cu.Init(f)
	cu.hystartOn = false // isolate pure slow start
	start := f.CwndPkts
	// One "round": ack cwnd packets.
	acked := 0
	for acked < start {
		rs := f.Ack(2, time.Millisecond, 100*units.Mbps)
		cu.OnAck(f, rs)
		acked += 2
	}
	if f.CwndPkts < 2*start-2 {
		t.Errorf("cwnd after one SS round = %d, want ~%d", f.CwndPkts, 2*start)
	}
}

func TestCongestionAvoidanceGrowsTowardTarget(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 50
	f.SsthreshVal = 50
	cu := New()
	cu.Init(f)
	// Simulate a loss epoch so wMax is known.
	cu.OnEvent(f, cc.EventEnterRecovery)
	w0 := f.CwndPkts // beta * 50 = 35
	if w0 != 35 {
		t.Fatalf("post-loss cwnd = %d, want 35 (0.7×50)", w0)
	}
	f.CAState = cc.StateOpen
	for i := 0; i < 5000; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 200*units.Mbps)
		cu.OnAck(f, rs)
	}
	if f.CwndPkts <= w0 {
		t.Errorf("cwnd did not grow in CA: %d", f.CwndPkts)
	}
	// Cubic must pass wMax eventually (concave → convex).
	if f.CwndPkts < 50 {
		t.Errorf("cwnd %d never re-reached wMax 50", f.CwndPkts)
	}
}

func TestMultiplicativeDecrease(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 100
	cu := New()
	cu.Init(f)
	cu.OnEvent(f, cc.EventEnterRecovery)
	if f.CwndPkts != 70 {
		t.Errorf("cwnd after loss = %d, want 70", f.CwndPkts)
	}
	if f.SsthreshVal != 70 {
		t.Errorf("ssthresh = %d, want 70", f.SsthreshVal)
	}
}

func TestFastConvergence(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 100
	cu := New()
	cu.Init(f)
	cu.OnEvent(f, cc.EventEnterRecovery) // wMax = 100
	if cu.wMax != 100 {
		t.Fatalf("wMax = %v, want 100", cu.wMax)
	}
	// Second loss below wMax: wMax shrinks below current cwnd.
	f.CwndPkts = 80
	cu.OnEvent(f, cc.EventEnterRecovery)
	want := 80 * (2 - beta) / 2
	if cu.wMax < want-1 || cu.wMax > want+1 {
		t.Errorf("fast convergence wMax = %v, want ~%v", cu.wMax, want)
	}
}

func TestNoGrowthWhenNotCwndLimited(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 50
	f.SsthreshVal = 10 // CA regime
	f.CwndLim = false
	cu := New()
	cu.Init(f)
	for i := 0; i < 1000; i++ {
		rs := f.Ack(2, time.Millisecond, 100*units.Mbps)
		cu.OnAck(f, rs)
	}
	if f.CwndPkts != 50 {
		t.Errorf("cwnd grew to %d while app-limited", f.CwndPkts)
	}
}

func TestNoGrowthDuringRecovery(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 40
	f.SsthreshVal = 10
	f.CAState = cc.StateRecovery
	cu := New()
	cu.Init(f)
	for i := 0; i < 500; i++ {
		rs := f.Ack(2, time.Millisecond, 100*units.Mbps)
		cu.OnAck(f, rs)
	}
	if f.CwndPkts != 40 {
		t.Errorf("cwnd changed to %d during recovery", f.CwndPkts)
	}
}

func TestHystartDelayExit(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 32 // above hystartLowWindow
	f.SsthreshVal = 1 << 30
	cu := New()
	cu.Init(f)
	// Feed a baseline RTT, then sharply increasing RTTs within one round.
	rs := f.Ack(2, 2*time.Millisecond, 500*units.Mbps)
	cu.OnAck(f, rs)
	for i := 0; i < 64; i++ {
		rs := f.Ack(2, 2*time.Millisecond+time.Duration(i)*time.Millisecond, 500*units.Mbps)
		cu.OnAck(f, rs)
		if f.SsthreshVal < 1<<30 {
			break
		}
	}
	if f.SsthreshVal == 1<<30 {
		t.Error("hystart never exited slow start despite rising RTT")
	}
}

func TestExitRecoveryRestoresSsthresh(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 100
	cu := New()
	cu.Init(f)
	cu.OnEvent(f, cc.EventEnterLoss) // RTO path: transport will set cwnd=1
	f.CwndPkts = 1
	cu.OnEvent(f, cc.EventExitRecovery)
	if f.CwndPkts < f.SsthreshVal {
		t.Errorf("cwnd %d below ssthresh %d after recovery exit", f.CwndPkts, f.SsthreshVal)
	}
}

func TestRenoFriendlinessFloor(t *testing.T) {
	// At small cwnd/short RTT cubic growth is slow; the Reno estimate
	// must keep it from stalling entirely.
	f := cctest.NewFakeConn()
	f.CwndPkts = 20
	f.SsthreshVal = 20
	cu := New()
	cu.Init(f)
	cu.OnEvent(f, cc.EventEnterRecovery)
	f.CAState = cc.StateOpen
	before := f.CwndPkts
	for i := 0; i < 2000; i++ {
		rs := f.Ack(1, 500*time.Microsecond, 100*units.Mbps)
		cu.OnAck(f, rs)
	}
	if f.CwndPkts <= before {
		t.Errorf("cwnd stalled at %d", f.CwndPkts)
	}
}

func TestClassicECNResponse(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 100
	cu := New()
	cu.Init(f)
	cu.OnEvent(f, cc.EventECE)
	if f.CwndPkts != 70 || f.SsthreshVal != 70 {
		t.Errorf("cwnd/ssthresh after ECE = %d/%d, want 70/70 (beta cut, no retx)",
			f.CwndPkts, f.SsthreshVal)
	}
}
