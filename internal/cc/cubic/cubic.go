// Package cubic implements CUBIC congestion control, a port of the Linux
// kernel's tcp_cubic.c (the Android default the paper compares BBR against):
// cubic window growth around the last-known saturation point W_max, fast
// convergence, TCP(Reno)-friendliness, and HyStart slow-start exit. CUBIC
// does not pace (WantsPacing is false) and its per-ACK work is a cheap AIMD
// step, which is exactly why it sidesteps the paper's pacing bottleneck.
package cubic

import (
	"math"
	"time"

	"mobbr/internal/cc"
)

// CUBIC constants, matching tcp_cubic.c defaults.
const (
	// beta is the multiplicative-decrease factor (717/1024 in the kernel).
	beta = 717.0 / 1024.0
	// c is the cubic scaling constant.
	c = 0.4
	// fastConvergence enables W_max reduction when losses recur.
	fastConvergence = true
	// ackCost is CUBIC's per-ACK model work in reference CPU cycles — a
	// handful of integer operations and one table-free cube root.
	ackCost = 450
)

// HyStart constants.
const (
	hystartLowWindow   = 16 // packets; below this stay in plain slow start
	hystartMinSamples  = 8
	hystartAckDelta    = 2 * time.Millisecond
	hystartDelayMinCap = 4 * time.Millisecond
	hystartDelayMaxCap = 16 * time.Millisecond
)

// Cubic is one connection's CUBIC state (struct bictcp).
type Cubic struct {
	wMax       float64 // last maximum cwnd (packets)
	k          float64 // time to reach wMax (seconds)
	origin     float64
	epochStart time.Duration // -1 when unset
	ackCnt     float64       // acks since epoch, for Reno estimate
	tcpCwnd    float64       // Reno-friendliness estimate
	cwndCnt    float64       // fractional cwnd accumulator
	cnt        float64       // acks per cwnd increment
	hystartOn  bool
	roundStart time.Duration
	lastAck    time.Duration
	currRTT    time.Duration
	sampleCnt  int
	foundExit  bool
	delayMin   time.Duration
	lossEpochs int64
}

// New returns a CUBIC instance with HyStart enabled, as in the kernel.
func New() *Cubic { return &Cubic{} }

// Factory returns a cc.Factory producing fresh CUBIC instances.
func Factory() cc.Factory {
	return func() cc.CongestionControl { return New() }
}

// Name implements cc.CongestionControl.
func (cu *Cubic) Name() string { return "cubic" }

// WantsPacing implements cc.CongestionControl: CUBIC does not pace.
func (cu *Cubic) WantsPacing() bool { return false }

// AckCost implements cc.CongestionControl.
func (cu *Cubic) AckCost() float64 { return ackCost }

// Init implements cc.CongestionControl.
func (cu *Cubic) Init(conn cc.Conn) {
	cu.reset()
	cu.hystartOn = true
}

func (cu *Cubic) reset() {
	cu.wMax = 0
	cu.k = 0
	cu.origin = 0
	cu.epochStart = -1
	cu.ackCnt = 0
	cu.tcpCwnd = 0
	cu.cwndCnt = 0
	cu.cnt = 0
}

// OnAck implements cc.CongestionControl: slow start with HyStart checks,
// then cubic congestion avoidance.
func (cu *Cubic) OnAck(conn cc.Conn, rs *cc.RateSample) {
	if rs.RTT > 0 {
		if cu.delayMin == 0 || rs.RTT < cu.delayMin {
			cu.delayMin = rs.RTT
		}
	}
	if conn.State() != cc.StateOpen {
		// No growth during recovery/loss (PRR omitted: the window was
		// set at the loss event).
		return
	}
	acked := int(rs.AckedSacked)
	if acked <= 0 {
		return
	}
	// Only grow when the window is actually the limit.
	if !conn.IsCwndLimited() {
		return
	}
	cwnd := conn.Cwnd()
	if cwnd < conn.Ssthresh() {
		cu.hystartUpdate(conn, rs)
		conn.SetCwnd(cwnd + acked)
		return
	}
	cu.update(conn, acked)
}

// update is bictcp_update + tcp_cong_avoid_ai.
func (cu *Cubic) update(conn cc.Conn, acked int) {
	now := conn.Now()
	cwnd := float64(conn.Cwnd())
	cu.ackCnt += float64(acked)
	if cu.epochStart < 0 {
		cu.epochStart = now
		cu.ackCnt = float64(acked)
		cu.tcpCwnd = cwnd
		if cwnd < cu.wMax {
			cu.k = math.Cbrt((cu.wMax - cwnd) / c)
			cu.origin = cu.wMax
		} else {
			cu.k = 0
			cu.origin = cwnd
		}
	}
	t := (now - cu.epochStart + cu.delayMin).Seconds()
	target := cu.origin + c*math.Pow(t-cu.k, 3)
	if target > cwnd {
		cu.cnt = cwnd / (target - cwnd)
	} else {
		cu.cnt = 100 * cwnd // effectively hold
	}
	// TCP (Reno) friendliness: never grow slower than an AIMD flow.
	delta := cwnd / (3 * (1/(1-beta) - 1) / (1 + 1/(1-beta))) // simplified kernel constant
	for cu.ackCnt > delta {
		cu.ackCnt -= delta
		cu.tcpCwnd++
	}
	if cu.tcpCwnd > cwnd {
		if maxCnt := cwnd / (cu.tcpCwnd - cwnd); cu.cnt > maxCnt {
			cu.cnt = maxCnt
		}
	}
	if cu.cnt < 2 {
		cu.cnt = 2
	}
	cu.cwndCnt += float64(acked)
	if cu.cwndCnt >= cu.cnt {
		inc := int(cu.cwndCnt / cu.cnt)
		cu.cwndCnt -= float64(inc) * cu.cnt
		conn.SetCwnd(conn.Cwnd() + inc)
	}
}

// hystartUpdate implements the delay-increase and ACK-train heuristics that
// end slow start before the first loss.
func (cu *Cubic) hystartUpdate(conn cc.Conn, rs *cc.RateSample) {
	if !cu.hystartOn || cu.foundExit || conn.Cwnd() < hystartLowWindow {
		return
	}
	now := conn.Now()
	srtt := conn.SRTT()
	// New round: reset per-round sampling roughly every RTT.
	if cu.roundStart == 0 || now-cu.roundStart > srtt {
		cu.roundStart = now
		cu.currRTT = 0
		cu.sampleCnt = 0
		cu.lastAck = now
	}
	// ACK train: closely spaced acks spanning ~ delayMin/2 from round start.
	if now-cu.lastAck < hystartAckDelta {
		cu.lastAck = now
		if cu.delayMin > 0 && now-cu.roundStart > cu.delayMin/2 {
			cu.exitSlowStart(conn)
			return
		}
	}
	// Delay increase: the round's min RTT exceeding delayMin + threshold.
	if rs.RTT > 0 && cu.sampleCnt < hystartMinSamples {
		cu.sampleCnt++
		if cu.currRTT == 0 || rs.RTT < cu.currRTT {
			cu.currRTT = rs.RTT
		}
		if cu.sampleCnt == hystartMinSamples && cu.delayMin > 0 {
			thresh := cu.delayMin / 8
			if thresh < hystartDelayMinCap {
				thresh = hystartDelayMinCap
			}
			if thresh > hystartDelayMaxCap {
				thresh = hystartDelayMaxCap
			}
			if cu.currRTT >= cu.delayMin+thresh {
				cu.exitSlowStart(conn)
			}
		}
	}
}

func (cu *Cubic) exitSlowStart(conn cc.Conn) {
	cu.foundExit = true
	conn.SetSsthresh(conn.Cwnd())
}

// OnEvent implements cc.CongestionControl: multiplicative decrease with
// fast convergence on loss events.
func (cu *Cubic) OnEvent(conn cc.Conn, ev cc.Event) {
	switch ev {
	case cc.EventEnterRecovery, cc.EventEnterLoss:
		cu.lossEpochs++
		cu.epochStart = -1
		cwnd := float64(conn.Cwnd())
		if fastConvergence && cwnd < cu.wMax {
			cu.wMax = cwnd * (2 - beta) / 2
		} else {
			cu.wMax = cwnd
		}
		ssthresh := int(cwnd * beta)
		if ssthresh < 2 {
			ssthresh = 2
		}
		conn.SetSsthresh(ssthresh)
		if ev == cc.EventEnterRecovery {
			// Rate-halving shortcut (PRR omitted).
			conn.SetCwnd(ssthresh)
		}
	case cc.EventECE:
		// Classic ECN (RFC 3168): respond like a loss, without any
		// retransmission — the router asked politely.
		cu.lossEpochs++
		cu.epochStart = -1
		cwnd := float64(conn.Cwnd())
		if fastConvergence && cwnd < cu.wMax {
			cu.wMax = cwnd * (2 - beta) / 2
		} else {
			cu.wMax = cwnd
		}
		ssthresh := int(cwnd * beta)
		if ssthresh < 2 {
			ssthresh = 2
		}
		conn.SetSsthresh(ssthresh)
		conn.SetCwnd(ssthresh)
	case cc.EventExitRecovery:
		if conn.Cwnd() < conn.Ssthresh() {
			conn.SetCwnd(conn.Ssthresh())
		}
	}
}

// LossEpochs returns how many loss events the flow has seen (for tests).
func (cu *Cubic) LossEpochs() int64 { return cu.lossEpochs }
