// Package reno implements NewReno congestion control, the kernel's fallback
// baseline (tcp_cong.c's tcp_reno_cong_avoid): slow start to ssthresh, then
// one packet per RTT of additive increase, with a 0.5 multiplicative
// decrease on loss. It exists here as the reference AIMD endpoint for
// fairness studies (§7.1.3 of the paper) and as the cheapest-possible
// congestion model for CPU ablations.
package reno

import (
	"mobbr/internal/cc"
)

// ackCost is Reno's per-ACK model work in reference cycles — a compare and
// an add.
const ackCost = 200

// Reno is one connection's NewReno state.
type Reno struct {
	// acked accumulates ACKed packets toward the next CA increment.
	acked int
}

// New returns a fresh Reno instance.
func New() *Reno { return &Reno{} }

// Factory returns a cc.Factory producing fresh Reno instances.
func Factory() cc.Factory {
	return func() cc.CongestionControl { return New() }
}

// Name implements cc.CongestionControl.
func (r *Reno) Name() string { return "reno" }

// WantsPacing implements cc.CongestionControl.
func (r *Reno) WantsPacing() bool { return false }

// AckCost implements cc.CongestionControl.
func (r *Reno) AckCost() float64 { return ackCost }

// Init implements cc.CongestionControl.
func (r *Reno) Init(cc.Conn) { r.acked = 0 }

// OnAck implements cc.CongestionControl: tcp_reno_cong_avoid.
func (r *Reno) OnAck(conn cc.Conn, rs *cc.RateSample) {
	if conn.State() != cc.StateOpen || !conn.IsCwndLimited() {
		return
	}
	acked := int(rs.AckedSacked)
	if acked <= 0 {
		return
	}
	cwnd := conn.Cwnd()
	if cwnd < conn.Ssthresh() {
		// Slow start: one packet per ACKed packet.
		conn.SetCwnd(cwnd + acked)
		return
	}
	// Congestion avoidance: one packet per window.
	r.acked += acked
	if r.acked >= cwnd {
		r.acked -= cwnd
		conn.SetCwnd(cwnd + 1)
	}
}

// OnEvent implements cc.CongestionControl: halve on loss.
func (r *Reno) OnEvent(conn cc.Conn, ev cc.Event) {
	switch ev {
	case cc.EventEnterRecovery, cc.EventEnterLoss:
		ss := conn.Cwnd() / 2
		if ss < 2 {
			ss = 2
		}
		conn.SetSsthresh(ss)
		if ev == cc.EventEnterRecovery {
			conn.SetCwnd(ss)
		}
	case cc.EventECE:
		ss := conn.Cwnd() / 2
		if ss < 2 {
			ss = 2
		}
		conn.SetSsthresh(ss)
		conn.SetCwnd(ss)
	case cc.EventExitRecovery:
		if conn.Cwnd() < conn.Ssthresh() {
			conn.SetCwnd(conn.Ssthresh())
		}
	}
}
