package reno

import (
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cc/cctest"
	"mobbr/internal/units"
)

func TestIdentity(t *testing.T) {
	r := New()
	if r.Name() != "reno" {
		t.Errorf("name = %q", r.Name())
	}
	if r.WantsPacing() {
		t.Error("reno must not pace")
	}
	if r.AckCost() > 500 {
		t.Error("reno should be the cheapest model")
	}
}

func TestSlowStart(t *testing.T) {
	f := cctest.NewFakeConn()
	r := New()
	r.Init(f)
	start := f.CwndPkts
	rs := f.Ack(3, time.Millisecond, 100*units.Mbps)
	r.OnAck(f, rs)
	if f.CwndPkts != start+3 {
		t.Errorf("cwnd = %d after 3 acked in SS, want %d", f.CwndPkts, start+3)
	}
}

func TestCongestionAvoidanceOnePerWindow(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 10
	f.SsthreshVal = 10
	r := New()
	r.Init(f)
	// 10 packets acked = exactly one window → +1.
	for i := 0; i < 5; i++ {
		rs := f.Ack(2, time.Millisecond, 100*units.Mbps)
		r.OnAck(f, rs)
	}
	if f.CwndPkts != 11 {
		t.Errorf("cwnd = %d after one window, want 11", f.CwndPkts)
	}
}

func TestHalvingOnLoss(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 40
	r := New()
	r.Init(f)
	r.OnEvent(f, cc.EventEnterRecovery)
	if f.CwndPkts != 20 || f.SsthreshVal != 20 {
		t.Errorf("cwnd/ssthresh = %d/%d after loss, want 20/20", f.CwndPkts, f.SsthreshVal)
	}
}

func TestFloorOfTwo(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 2
	r := New()
	r.Init(f)
	r.OnEvent(f, cc.EventEnterRecovery)
	if f.SsthreshVal < 2 {
		t.Errorf("ssthresh = %d, want >= 2", f.SsthreshVal)
	}
}

func TestNoGrowthWhenAppLimited(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 10
	f.SsthreshVal = 5
	f.CwndLim = false
	r := New()
	r.Init(f)
	for i := 0; i < 100; i++ {
		rs := f.Ack(2, time.Millisecond, 100*units.Mbps)
		r.OnAck(f, rs)
	}
	if f.CwndPkts != 10 {
		t.Errorf("cwnd grew to %d while app-limited", f.CwndPkts)
	}
}

func TestECEHalves(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 40
	r := New()
	r.Init(f)
	r.OnEvent(f, cc.EventECE)
	if f.CwndPkts != 20 {
		t.Errorf("cwnd after ECE = %d, want 20", f.CwndPkts)
	}
}
