// Package mastermod reproduces the paper's "master BBR kernel module" (§5):
// a wrapper around any congestion-control algorithm that can disable the
// inner model's computation, pin the congestion window, and pin the pacing
// rate — the knobs the paper uses to attribute BBR's mobile slowdown to
// packet pacing rather than to its model or cwnd choices.
package mastermod

import (
	"fmt"

	"mobbr/internal/cc"
	"mobbr/internal/units"
)

// Overrides selects which aspects of the inner algorithm to pin.
type Overrides struct {
	// FixedCwnd pins the congestion window to this many packets
	// (0 = leave to the inner module). The paper uses 70, Cubic's
	// average for the same workload (§5.1).
	FixedCwnd int
	// FixedPacingRate pins the per-connection pacing rate
	// (0 = leave to the inner module). §5.1.2 sweeps this.
	FixedPacingRate units.Bandwidth
	// DisableModel skips the inner module's per-ACK computation
	// entirely, as §5.1.1 does to rule out BBR's model cost.
	DisableModel bool
}

// residualAckCost is the per-ACK cost with the model disabled: the wrapper
// still runs the (empty) congestion hook.
const residualAckCost = 150

// Module wraps an inner congestion-control with overrides.
type Module struct {
	inner cc.CongestionControl
	ov    Overrides
}

// Wrap returns a master module around inner.
func Wrap(inner cc.CongestionControl, ov Overrides) *Module {
	if inner == nil {
		panic("mastermod: nil inner congestion control")
	}
	return &Module{inner: inner, ov: ov}
}

// Factory wraps every instance produced by inner with the same overrides.
func Factory(inner cc.Factory, ov Overrides) cc.Factory {
	return func() cc.CongestionControl { return Wrap(inner(), ov) }
}

// Name implements cc.CongestionControl.
func (m *Module) Name() string { return fmt.Sprintf("master[%s]", m.inner.Name()) }

// Inner returns the wrapped module.
func (m *Module) Inner() cc.CongestionControl { return m.inner }

// WantsPacing implements cc.CongestionControl, deferring to the inner
// module; force pacing on/off with tcp.Config.PacingOverride.
func (m *Module) WantsPacing() bool { return m.inner.WantsPacing() }

// AckCost implements cc.CongestionControl.
func (m *Module) AckCost() float64 {
	if m.ov.DisableModel {
		return residualAckCost
	}
	return m.inner.AckCost()
}

// Init implements cc.CongestionControl.
func (m *Module) Init(c cc.Conn) {
	m.inner.Init(c)
	m.apply(c)
}

// OnAck implements cc.CongestionControl: run the inner model unless
// disabled, then pin whatever is overridden.
func (m *Module) OnAck(c cc.Conn, rs *cc.RateSample) {
	if !m.ov.DisableModel {
		m.inner.OnAck(c, rs)
	}
	m.apply(c)
}

// OnEvent implements cc.CongestionControl.
func (m *Module) OnEvent(c cc.Conn, ev cc.Event) {
	if !m.ov.DisableModel {
		m.inner.OnEvent(c, ev)
	}
	m.apply(c)
}

func (m *Module) apply(c cc.Conn) {
	if m.ov.FixedCwnd > 0 {
		c.SetCwnd(m.ov.FixedCwnd)
	}
	if m.ov.FixedPacingRate > 0 {
		c.SetPacingRate(m.ov.FixedPacingRate)
	}
}
