package mastermod

import (
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cc/bbr"
	"mobbr/internal/cc/cctest"
	"mobbr/internal/cc/cubic"
	"mobbr/internal/units"
)

func TestWrapIdentity(t *testing.T) {
	m := Wrap(bbr.New(), Overrides{})
	if m.Name() != "master[bbr]" {
		t.Errorf("name = %q", m.Name())
	}
	if !m.WantsPacing() {
		t.Error("wrapped bbr must still want pacing")
	}
	if m.AckCost() != bbr.New().AckCost() {
		t.Error("without DisableModel the inner ack cost applies")
	}
	c := Wrap(cubic.New(), Overrides{})
	if c.WantsPacing() {
		t.Error("wrapped cubic must not want pacing")
	}
}

func TestNilInnerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil inner")
		}
	}()
	Wrap(nil, Overrides{})
}

func TestFixedCwndPins(t *testing.T) {
	f := cctest.NewFakeConn()
	m := Wrap(bbr.New(), Overrides{FixedCwnd: 70})
	m.Init(f)
	if f.CwndPkts != 70 {
		t.Fatalf("cwnd after Init = %d, want 70", f.CwndPkts)
	}
	// Even after the inner model runs, the pin re-applies.
	for i := 0; i < 200; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 100*units.Mbps)
		m.OnAck(f, rs)
		if f.CwndPkts != 70 {
			t.Fatalf("cwnd drifted to %d at ack %d", f.CwndPkts, i)
		}
	}
}

func TestFixedPacingRatePins(t *testing.T) {
	f := cctest.NewFakeConn()
	m := Wrap(bbr.New(), Overrides{FixedPacingRate: 140 * units.Mbps})
	m.Init(f)
	for i := 0; i < 200; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 30*units.Mbps)
		m.OnAck(f, rs)
	}
	if f.Rate != 140*units.Mbps {
		t.Fatalf("pacing rate = %v, want pinned 140Mbps", f.Rate)
	}
}

func TestDisableModelSkipsInner(t *testing.T) {
	f := cctest.NewFakeConn()
	inner := bbr.New()
	m := Wrap(inner, Overrides{DisableModel: true, FixedCwnd: 70})
	m.Init(f)
	for i := 0; i < 500; i++ {
		rs := f.Ack(2, 2*time.Millisecond, 80*units.Mbps)
		m.OnAck(f, rs)
	}
	if inner.BtlBw() != 0 {
		t.Errorf("inner model ran despite DisableModel: btlbw = %v", inner.BtlBw())
	}
	if m.AckCost() >= inner.AckCost() {
		t.Errorf("disabled model ack cost %v should be below inner %v",
			m.AckCost(), inner.AckCost())
	}
}

func TestEventsForwardedUnlessDisabled(t *testing.T) {
	f := cctest.NewFakeConn()
	f.CwndPkts = 100
	inner := cubic.New()
	m := Wrap(inner, Overrides{})
	m.Init(f)
	m.OnEvent(f, cc.EventEnterRecovery)
	if f.CwndPkts != 70 { // cubic beta ≈ 0.7
		t.Errorf("recovery cwnd = %d, want cubic's 70", f.CwndPkts)
	}

	f2 := cctest.NewFakeConn()
	f2.CwndPkts = 100
	m2 := Wrap(cubic.New(), Overrides{DisableModel: true})
	m2.Init(f2)
	m2.OnEvent(f2, cc.EventEnterRecovery)
	if f2.CwndPkts != 100 {
		t.Errorf("disabled model reacted to loss: cwnd = %d", f2.CwndPkts)
	}
}

func TestFactoryWrapsEachInstance(t *testing.T) {
	factory := Factory(bbr.Factory(), Overrides{FixedCwnd: 42})
	a, b := factory(), factory()
	if a == b {
		t.Fatal("factory returned the same instance twice")
	}
	f := cctest.NewFakeConn()
	a.Init(f)
	if f.CwndPkts != 42 {
		t.Errorf("factory-built module did not apply overrides")
	}
}

func TestInnerAccessor(t *testing.T) {
	inner := bbr.New()
	if Wrap(inner, Overrides{}).Inner() != inner {
		t.Error("Inner() did not return the wrapped module")
	}
}
