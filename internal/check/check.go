// Package check is the simulation's opt-in invariant checker: a periodic
// auditor that walks every connection's bookkeeping and the engine clock,
// and turns accounting bugs into structured violation errors instead of
// silently corrupt results. It verifies conservation (every segment ever
// sent is delivered, lost-pending or in flight — in packets and bytes),
// sequence monotonicity, congestion-window and pacing-rate sanity, and
// event-clock monotonicity.
//
// The checker is wired into core.Run behind Spec.Check and into tests; it
// reports, never panics.
package check

import (
	"fmt"
	"strings"
	"time"

	"mobbr/internal/netem"
	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/tcp"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

// maxPacingRate is the sanity ceiling for a connection's pacing rate; no
// modelled mobile path is within two orders of magnitude of 1 Tbps.
const maxPacingRate = 1000 * units.Gbps

// maxViolations bounds how many violations one run collects before the
// checker stops auditing (the first few are the informative ones).
const maxViolations = 16

// DefaultInterval is how often the periodic audit runs in virtual time.
const DefaultInterval = 50 * time.Millisecond

// Violation is one failed invariant with enough context to debug it.
type Violation struct {
	// Rule names the invariant, e.g. "conservation/packets".
	Rule string
	// At is the virtual time of the audit that caught it.
	At time.Duration
	// Conn is the connection id, or -1 for sim-wide invariants.
	Conn int
	// Detail is the human-readable expectation vs observation.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	who := "sim"
	if v.Conn >= 0 {
		who = fmt.Sprintf("conn %d", v.Conn)
	}
	return fmt.Sprintf("invariant %q violated at %v on %s: %s", v.Rule, v.At, who, v.Detail)
}

// Error aggregates a run's violations with its run context (experiment,
// seed, congestion control — whatever the caller labels the run with).
type Error struct {
	Context    string
	Violations []*Violation
}

// Error implements error.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invariant check failed (%s): %d violation(s)", e.Context, len(e.Violations))
	for i, v := range e.Violations {
		if i >= 4 {
			fmt.Fprintf(&b, "; … %d more", len(e.Violations)-i)
			break
		}
		b.WriteString("; ")
		b.WriteString(v.Error())
	}
	return b.String()
}

// FirstRule returns the rule name of the first violation — the stable
// fingerprint of what went wrong first (later violations are usually
// cascade). The chaos shrinker matches candidate failures on it.
func (e *Error) FirstRule() string {
	if len(e.Violations) == 0 {
		return ""
	}
	return e.Violations[0].Rule
}

// Auditable is what the checker watches — anything that can produce a
// tcp.Audit bookkeeping snapshot (in practice *tcp.Conn).
type Auditable interface {
	Audit() tcp.Audit
}

// prev is the per-connection monotonic watermark from the last audit.
type prev struct {
	sndUna    int64
	delivered int64
	segsSent  int64
}

// Checker audits a set of connections against the sim-wide invariants.
type Checker struct {
	eng      *sim.Engine
	ctx      string
	interval time.Duration

	conns   []Auditable
	dynamic func() []Auditable
	stride  int
	cursor  int
	heldFn  func() int
	prevs   map[int]prev
	lastNow time.Duration
	started bool
	bus     *telemetry.Bus

	// Pool audit state: the run's packet/ACK pool and the path whose
	// in-transit census its outstanding counts are checked against.
	pool         PoolAuditor
	poolPath     *netem.Path
	poolReported int // pool violations already surfaced
	// crossPkts/crossAcks extend the census to cross-shard custody (packets
	// and ACKs inside shard mailboxes); nil in serial runs.
	crossPkts, crossAcks func() int

	violations []*Violation
}

// New creates a checker for one run. ctx labels the run in error output
// (e.g. "exp=recovery cc=bbr seed=1"). interval <= 0 uses DefaultInterval.
func New(eng *sim.Engine, ctx string, interval time.Duration) *Checker {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Checker{
		eng:      eng,
		ctx:      ctx,
		interval: interval,
		prevs:    make(map[int]prev),
		lastNow:  -1,
	}
}

// Watch adds a connection to the audit set.
func (k *Checker) Watch(c Auditable) { k.conns = append(k.conns, c) }

// WatchDynamic replaces the static audit set with a live view: each pass
// asks src for the current population. Churn workloads use it — flows
// come and go, so a list captured at assembly time would audit corpses
// and miss newcomers. The returned slice is only read during the pass.
func (k *Checker) WatchDynamic(src func() []Auditable) { k.dynamic = src }

// SetAuditStride bounds one audit pass to at most n connections, visited
// round-robin across passes (0, the default, audits all). Large dynamic
// populations keep per-pass cost O(stride) instead of O(conns); every
// connection is still reached every ⌈len/n⌉ passes. While striding, the
// pool's ACK-conservation cross-check needs the global held count —
// supply it with SetHeldAcks, or it is skipped.
func (k *Checker) SetAuditStride(n int) { k.stride = n }

// SetHeldAcks supplies the global CPU-held ACK count (typically
// tcp.AggStats.HeldAcks, which also counts stopped connections still
// draining). Without it the checker sums HeldAcks over the connections it
// audited — exact only when a pass covers the full set.
func (k *Checker) SetHeldAcks(fn func() int) { k.heldFn = fn }

// Forget drops a retired connection's monotonic-counter history. Churn
// workloads call it from their release path: ids are never reused, so
// without pruning the watermark map grows with every flow ever started.
func (k *Checker) Forget(id int) { delete(k.prevs, id) }

// PoolAuditor is the census surface WatchPool audits: a run's single
// *seg.Pool, or a sharded run's *seg.PoolSet whose summed arenas obey the
// same conservation invariant.
type PoolAuditor interface {
	Stats() seg.PoolStats
	Violations() []seg.Violation
}

// WatchPool adds the run's packet/ACK pool to the audit set. Each audit
// pass surfaces the pool's own lifecycle violations (double releases,
// foreign releases) and cross-checks its outstanding-object counts against
// the network's census: every live packet must be inside the path, and
// every live ACK either in return flight or parked behind a watched
// connection's CPU model.
func (k *Checker) WatchPool(pool PoolAuditor, path *netem.Path) {
	k.pool = pool
	k.poolPath = path
}

// SetCrossCensus extends the conservation audit to cross-shard custody:
// pkts and acks return the objects currently inside shard mailboxes
// (posted or held for delivery on the far shard). With these installed the
// packet invariant becomes outstanding == path in-transit + cross custody,
// which is what makes a packet leaked in a mailbox visible within one
// audit cycle.
func (k *Checker) SetCrossCensus(pkts, acks func() int) {
	k.crossPkts = pkts
	k.crossAcks = acks
}

// SetBus mirrors every violation onto the telemetry bus (KindViolation), so
// traces show what the checker caught in-line with the transport events.
func (k *Checker) SetBus(b *telemetry.Bus) { k.bus = b }

// Start arms the periodic audit on the engine clock.
func (k *Checker) Start() {
	if k.started {
		return
	}
	k.started = true
	k.eng.Schedule(k.interval, k.tick)
}

func (k *Checker) tick() {
	k.CheckNow()
	if len(k.violations) < maxViolations {
		k.eng.Schedule(k.interval, k.tick)
	}
}

// report records a violation unless the cap is reached.
func (k *Checker) report(rule string, conn int, format string, args ...any) {
	if len(k.violations) >= maxViolations {
		return
	}
	v := &Violation{
		Rule:   rule,
		At:     k.eng.Now(),
		Conn:   conn,
		Detail: fmt.Sprintf(format, args...),
	}
	k.violations = append(k.violations, v)
	if k.bus != nil {
		k.bus.Emit(telemetry.Event{
			Kind: telemetry.KindViolation, Conn: conn,
			New: v.Rule, Old: v.Detail,
		})
	}
}

// CheckNow runs one audit pass immediately.
func (k *Checker) CheckNow() {
	if len(k.violations) >= maxViolations {
		return
	}
	now := k.eng.Now()
	if now < k.lastNow {
		k.report("clock/monotonic", -1, "engine clock went backwards: %v after %v", now, k.lastNow)
	}
	k.lastNow = now
	// Scheduler self-audit: the event queue's freelist/heap/wheel accounting
	// must stay conserved (no leaked or double-owned items, counters exact).
	if err := k.eng.CheckQueue(); err != nil {
		k.report("engine/queue-depth", -1, "%v", err)
	}
	conns := k.conns
	if k.dynamic != nil {
		conns = k.dynamic()
	}
	heldAcks := 0
	full := true
	if k.stride > 0 && len(conns) > k.stride {
		// Amortized audit: a stride-sized round-robin window. The cursor
		// is positional, not identity-based — under churn a swap-removed
		// connection may be skipped or revisited one pass early, which
		// only affects when it is next audited, never correctness.
		full = false
		if k.cursor >= len(conns) {
			k.cursor = 0
		}
		for i := 0; i < k.stride; i++ {
			a := conns[(k.cursor+i)%len(conns)].Audit()
			heldAcks += a.HeldAcks
			k.auditConn(a)
		}
		k.cursor = (k.cursor + k.stride) % len(conns)
	} else {
		for _, c := range conns {
			a := c.Audit()
			heldAcks += a.HeldAcks
			k.auditConn(a)
		}
	}
	if k.heldFn != nil {
		k.auditPool(k.heldFn())
	} else if full {
		k.auditPool(heldAcks)
	} else {
		k.auditPool(-1)
	}
}

// auditPool applies the memory-lifecycle invariants: the pool's own
// violation log is drained into the checker, and its outstanding counts
// must equal the holders' census. heldAcks < 0 means the global CPU-held
// count is unknown this pass (strided audit without SetHeldAcks) — the
// ACK-conservation check is skipped, the rest still runs.
func (k *Checker) auditPool(heldAcks int) {
	if k.pool == nil {
		return
	}
	vs := k.pool.Violations()
	for ; k.poolReported < len(vs); k.poolReported++ {
		k.report("pool/lifecycle", -1, "%s", vs[k.poolReported])
	}
	st := k.pool.Stats()
	inPath := k.poolPath.InTransit()
	if k.crossPkts != nil {
		inPath += k.crossPkts()
	}
	if st.OutstandingPackets != inPath {
		k.report("pool/conservation", -1,
			"outstanding packets %d != network in-transit %d", st.OutstandingPackets, inPath)
	}
	if heldAcks < 0 {
		return
	}
	inFlight := k.poolPath.AckInFlight()
	if k.crossAcks != nil {
		inFlight += k.crossAcks()
	}
	if st.OutstandingAcks != inFlight+heldAcks {
		k.report("pool/conservation", -1,
			"outstanding ACKs %d != return-flight %d + cpu-held %d",
			st.OutstandingAcks, inFlight, heldAcks)
	}
}

// CheckLeaks is the end-of-run pool audit, called after the harness has
// reclaimed the network's hold buffers: any object still outstanding was
// acquired and never released anywhere — a leak.
func (k *Checker) CheckLeaks() {
	if k.pool == nil {
		return
	}
	st := k.pool.Stats()
	if st.OutstandingPackets != 0 {
		k.report("pool/leak", -1, "%d packets outstanding after run-end reclaim", st.OutstandingPackets)
	}
	if st.OutstandingAcks != 0 {
		k.report("pool/leak", -1, "%d ACKs outstanding after run-end reclaim", st.OutstandingAcks)
	}
}

// auditConn applies the per-connection invariants to one snapshot.
func (k *Checker) auditConn(a tcp.Audit) {
	// Sequence space sanity.
	if a.SndUna < 0 || a.SndNxt < a.SndUna {
		k.report("sequence/order", a.ID, "sndNxt %d < sndUna %d", a.SndNxt, a.SndUna)
	}

	// Conservation, packets: every new-data segment ever created is
	// exactly one of delivered, in flight, or lost-awaiting-retransmit.
	if got := a.Delivered + int64(a.BoardInflight) + int64(a.BoardLostPending); got != a.SegsSent {
		k.report("conservation/packets", a.ID,
			"segsSent %d != delivered %d + inflight %d + lostPending %d (= %d)",
			a.SegsSent, a.Delivered, a.BoardInflight, a.BoardLostPending, got)
	}

	// Conservation, bytes: the live scoreboard spans exactly the unacked
	// sequence range.
	if want := a.SndNxt - a.SndUna; a.LiveBytes != want {
		k.report("conservation/bytes", a.ID,
			"live scoreboard bytes %d != sndNxt-sndUna %d", a.LiveBytes, want)
	}

	// Counter cross-check: the transport's inflight counter must agree
	// with the scoreboard walk.
	if a.Inflight != a.BoardInflight {
		k.report("inflight/counter", a.ID,
			"inflight counter %d != scoreboard walk %d", a.Inflight, a.BoardInflight)
	}
	if a.Inflight < 0 {
		k.report("inflight/negative", a.ID, "inflight counter is %d", a.Inflight)
	}

	// Monotonic counters.
	p, seen := k.prevs[a.ID]
	if seen {
		if a.SndUna < p.sndUna {
			k.report("sequence/una-monotonic", a.ID, "sndUna %d < previous %d", a.SndUna, p.sndUna)
		}
		if a.Delivered < p.delivered {
			k.report("delivered/monotonic", a.ID, "delivered %d < previous %d", a.Delivered, p.delivered)
		}
		if a.SegsSent < p.segsSent {
			k.report("segs-sent/monotonic", a.ID, "segsSent %d < previous %d", a.SegsSent, p.segsSent)
		}
	}
	k.prevs[a.ID] = prev{sndUna: a.SndUna, delivered: a.Delivered, segsSent: a.SegsSent}

	// Window and rate sanity.
	if a.Cwnd < 1 || (a.MaxCwnd > 0 && a.Cwnd > a.MaxCwnd) {
		k.report("cwnd/bounds", a.ID, "cwnd %d outside [1, %d]", a.Cwnd, a.MaxCwnd)
	}
	if a.Ssthresh < 2 {
		k.report("ssthresh/bounds", a.ID, "ssthresh %d < 2", a.Ssthresh)
	}
	if a.PacingRate < 0 || a.PacingRate > maxPacingRate {
		k.report("pacing/bounds", a.ID, "pacing rate %v outside [0, %v]", a.PacingRate, maxPacingRate)
	}
}

// Violations returns what has been caught so far.
func (k *Checker) Violations() []*Violation { return k.violations }

// Err returns nil when every audit passed, or the aggregated *Error.
func (k *Checker) Err() error {
	if len(k.violations) == 0 {
		return nil
	}
	return &Error{Context: k.ctx, Violations: k.violations}
}
