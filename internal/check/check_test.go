package check

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cpumodel"
	"mobbr/internal/netem"
	"mobbr/internal/seg"
	"mobbr/internal/sim"
	"mobbr/internal/tcp"
	"mobbr/internal/units"
)

// stubAudit replays canned snapshots.
type stubAudit struct{ a tcp.Audit }

func (s *stubAudit) Audit() tcp.Audit { return s.a }

// healthy returns a snapshot satisfying every invariant.
func healthy() tcp.Audit {
	return tcp.Audit{
		ID:            1,
		SndUna:        10_000,
		SndNxt:        14_000,
		Inflight:      4,
		SegsSent:      14,
		Delivered:     10,
		BoardInflight: 4,
		LiveBytes:     4_000,
		Cwnd:          10,
		Ssthresh:      64,
		MaxCwnd:       180,
		PacingRate:    10 * units.Mbps,
	}
}

func TestHealthySnapshotPasses(t *testing.T) {
	eng := sim.New(1)
	k := New(eng, "test", 0)
	k.Watch(&stubAudit{healthy()})
	k.CheckNow()
	k.CheckNow()
	if err := k.Err(); err != nil {
		t.Fatalf("healthy snapshot flagged: %v", err)
	}
}

func TestViolationsCaught(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*tcp.Audit)
		rule string
	}{
		{"packets", func(a *tcp.Audit) { a.SegsSent += 3 }, "conservation/packets"},
		{"bytes", func(a *tcp.Audit) { a.LiveBytes -= 100 }, "conservation/bytes"},
		{"inflight counter", func(a *tcp.Audit) { a.Inflight++; a.SegsSent++ }, "inflight/counter"},
		{"sequence order", func(a *tcp.Audit) { a.SndNxt = a.SndUna - 1 }, "sequence/order"},
		{"cwnd low", func(a *tcp.Audit) { a.Cwnd = 0 }, "cwnd/bounds"},
		{"cwnd high", func(a *tcp.Audit) { a.Cwnd = a.MaxCwnd + 1 }, "cwnd/bounds"},
		{"ssthresh", func(a *tcp.Audit) { a.Ssthresh = 1 }, "ssthresh/bounds"},
		{"pacing", func(a *tcp.Audit) { a.PacingRate = 2000 * units.Gbps }, "pacing/bounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng := sim.New(1)
			k := New(eng, "test", 0)
			a := healthy()
			tc.mut(&a)
			k.Watch(&stubAudit{a})
			k.CheckNow()
			err := k.Err()
			if err == nil {
				t.Fatalf("corrupted snapshot passed")
			}
			var ce *Error
			if !errors.As(err, &ce) {
				t.Fatalf("error is %T, want *check.Error", err)
			}
			found := false
			for _, v := range ce.Violations {
				if v.Rule == tc.rule {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %q violation in %v", tc.rule, err)
			}
		})
	}
}

// TestQueueDepthViolationCaught: the checker audits the engine's own event
// queue each pass, so a corrupted scheduler counter surfaces as a sim-wide
// violation.
func TestQueueDepthViolationCaught(t *testing.T) {
	eng := sim.New(1)
	k := New(eng, "test", 0)
	eng.Schedule(time.Second, func() {})
	k.CheckNow()
	if err := k.Err(); err != nil {
		t.Fatalf("healthy engine queue flagged: %v", err)
	}
	eng.CorruptQueueForTest()
	k.CheckNow()
	err := k.Err()
	if err == nil || !strings.Contains(err.Error(), "engine/queue-depth") {
		t.Fatalf("corrupted queue counter not caught: %v", err)
	}
}

func TestMonotonicityRegression(t *testing.T) {
	eng := sim.New(1)
	k := New(eng, "test", 0)
	s := &stubAudit{healthy()}
	k.Watch(s)
	k.CheckNow()
	// Rewind delivered: keep conservation intact so only monotonicity fires.
	s.a.Delivered -= 2
	s.a.SegsSent -= 2
	k.CheckNow()
	err := k.Err()
	if err == nil || !strings.Contains(err.Error(), "delivered/monotonic") {
		t.Fatalf("delivered rewind not caught: %v", err)
	}
}

func TestViolationCapStopsTicking(t *testing.T) {
	eng := sim.New(1)
	k := New(eng, "test", time.Millisecond)
	a := healthy()
	a.Cwnd = 0
	k.Watch(&stubAudit{a})
	k.Start()
	eng.Run(time.Second)
	if n := len(k.Violations()); n > maxViolations {
		t.Fatalf("collected %d violations, cap is %d", n, maxViolations)
	}
}

// TestLiveConnPasses runs a real transfer with the periodic checker armed
// and with an audit after every delivered segment.
func TestLiveConnPasses(t *testing.T) {
	eng := sim.New(1)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 5e9)
	path, err := netem.EthernetLAN(eng, netem.TC{Loss: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	var mod cc.CongestionControl = newFixedCC(32)
	conn := tcp.NewConn(0, eng, cpu, path, tcp.Config{AppBytes: 2 * units.MB},
		func() cc.CongestionControl { return mod })
	rx := tcp.NewReceiver(eng, path, conn)
	d := tcp.NewDemux()
	d.Add(rx)
	path.SetReceiver(d.Handle)
	k := New(eng, "live", time.Millisecond)
	k.Watch(conn)
	k.Start()
	conn.Start()
	eng.Run(10 * time.Second)
	if err := k.Err(); err != nil {
		t.Fatalf("live run violated invariants: %v", err)
	}
	if got := rx.GoodBytes(); got != 2*units.MB {
		t.Fatalf("delivered %v, want 2MB", got)
	}
}

// TestCorruptionCaught proves the checker catches a deliberately skewed
// inflight counter on a live connection — as a structured error, not a panic.
func TestCorruptionCaught(t *testing.T) {
	eng := sim.New(1)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 5e9)
	path, err := netem.EthernetLAN(eng, netem.TC{})
	if err != nil {
		t.Fatal(err)
	}
	var mod cc.CongestionControl = newFixedCC(32)
	conn := tcp.NewConn(0, eng, cpu, path, tcp.Config{},
		func() cc.CongestionControl { return mod })
	rx := tcp.NewReceiver(eng, path, conn)
	d := tcp.NewDemux()
	d.Add(rx)
	path.SetReceiver(d.Handle)
	k := New(eng, "exp=corrupt seed=1", time.Millisecond)
	k.Watch(conn)
	k.Start()
	conn.Start()
	eng.Schedule(100*time.Millisecond, func() { conn.CorruptInflightForTest(3) })
	eng.Run(200 * time.Millisecond)
	err = k.Err()
	if err == nil {
		t.Fatal("corrupted inflight counter not caught")
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *check.Error", err)
	}
	if ce.Context != "exp=corrupt seed=1" {
		t.Errorf("run context = %q", ce.Context)
	}
	found := false
	for _, v := range ce.Violations {
		if v.Rule == "inflight/counter" && v.Conn == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no inflight/counter violation: %v", err)
	}
}

// TestStridedAuditReachesAll: with a stride smaller than the population,
// each pass audits a bounded window, but round-robin still reaches every
// connection — a corrupt conn beyond the first window is caught within
// ⌈len/stride⌉ passes.
func TestStridedAuditReachesAll(t *testing.T) {
	eng := sim.New(1)
	k := New(eng, "stride", 0)
	pop := make([]Auditable, 10)
	for i := range pop {
		a := healthy()
		a.ID = i
		if i == 7 {
			a.SegsSent += 3 // conservation break hidden past the first window
		}
		pop[i] = &stubAudit{a}
	}
	k.WatchDynamic(func() []Auditable { return pop })
	k.SetAuditStride(3)
	k.CheckNow()
	if err := k.Err(); err != nil {
		t.Fatalf("first window already flagged: %v", err)
	}
	for i := 0; i < 3; i++ {
		k.CheckNow()
	}
	err := k.Err()
	if err == nil {
		t.Fatal("strided audit never reached the corrupt conn")
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *check.Error", err)
	}
	if ce.Violations[0].Conn != 7 || ce.Violations[0].Rule != "conservation/packets" {
		t.Fatalf("caught %v, want conservation/packets on conn 7", ce.Violations[0])
	}
}

// TestStridedHeldAcks covers the pool ACK-conservation cross-check under
// striding: a partial pass cannot sum the CPU-held count, so the check is
// skipped unless SetHeldAcks supplies the global figure — and with it the
// check is exact again.
func TestStridedHeldAcks(t *testing.T) {
	newStrided := func(t *testing.T) (*Checker, *seg.Pool) {
		t.Helper()
		eng := sim.New(1)
		path, err := netem.EthernetLAN(eng, netem.TC{})
		if err != nil {
			t.Fatal(err)
		}
		pool := seg.NewPool()
		pool.GetAck() // one ACK held behind a CPU somewhere, says the harness
		k := New(eng, "held", 0)
		pop := make([]Auditable, 8)
		for i := range pop {
			a := healthy()
			a.ID = i
			pop[i] = &stubAudit{a}
		}
		k.WatchDynamic(func() []Auditable { return pop })
		k.SetAuditStride(2)
		k.WatchPool(pool, path)
		return k, pool
	}

	t.Run("skipped without heldFn", func(t *testing.T) {
		k, _ := newStrided(t)
		k.CheckNow()
		if err := k.Err(); err != nil {
			t.Fatalf("partial pass flagged the unknowable ACK census: %v", err)
		}
	})
	t.Run("exact with heldFn", func(t *testing.T) {
		k, _ := newStrided(t)
		k.SetHeldAcks(func() int { return 1 })
		k.CheckNow()
		if err := k.Err(); err != nil {
			t.Fatalf("correct global held count flagged: %v", err)
		}
	})
	t.Run("mismatch caught with heldFn", func(t *testing.T) {
		k, _ := newStrided(t)
		k.SetHeldAcks(func() int { return 0 })
		k.CheckNow()
		err := k.Err()
		if err == nil || !strings.Contains(err.Error(), "pool/conservation") {
			t.Fatalf("ACK census mismatch not caught under striding: %v", err)
		}
	})
}

// TestForgetDropsWatermark: a retired flow's monotonic history is pruned,
// so a fresh flow later audited under churn (or a stub whose counters
// rewound after Forget) is not judged against the corpse's watermark.
func TestForgetDropsWatermark(t *testing.T) {
	eng := sim.New(1)
	k := New(eng, "forget", 0)
	s := &stubAudit{healthy()}
	k.Watch(s)
	k.CheckNow()
	k.Forget(s.a.ID)
	// Rewind as a recycled id would appear: small counters, still
	// self-consistent.
	s.a = tcp.Audit{ID: s.a.ID, Cwnd: 10, Ssthresh: 64, MaxCwnd: 180}
	k.CheckNow()
	if err := k.Err(); err != nil {
		t.Fatalf("forgotten watermark still enforced: %v", err)
	}
}

// TestDynamicPopulationChurn: the dynamic view is re-read each pass, so a
// population that shrinks between passes must not trip the positional
// cursor (regression guard for the cursor reset on shrink).
func TestDynamicPopulationChurn(t *testing.T) {
	eng := sim.New(1)
	k := New(eng, "churn", 0)
	pop := make([]Auditable, 9)
	for i := range pop {
		a := healthy()
		a.ID = i
		pop[i] = &stubAudit{a}
	}
	k.WatchDynamic(func() []Auditable { return pop })
	k.SetAuditStride(4)
	k.CheckNow()
	k.CheckNow() // cursor now sits at 8
	for _, c := range pop[2:] {
		k.Forget(c.Audit().ID)
	}
	pop = pop[:2] // shrink below the cursor and the stride
	k.CheckNow()
	k.CheckNow()
	if err := k.Err(); err != nil {
		t.Fatalf("shrinking population flagged: %v", err)
	}
}

// fixedCC is a minimal fixed-window module for live tests.
type fixedCC struct{ cwnd int }

func newFixedCC(cwnd int) *fixedCC                   { return &fixedCC{cwnd: cwnd} }
func (f *fixedCC) Name() string                      { return "fixed" }
func (f *fixedCC) Init(c cc.Conn)                    { c.SetCwnd(f.cwnd) }
func (f *fixedCC) OnAck(c cc.Conn, _ *cc.RateSample) { c.SetCwnd(f.cwnd) }
func (f *fixedCC) OnEvent(cc.Conn, cc.Event)         {}
func (f *fixedCC) AckCost() float64                  { return 100 }
func (f *fixedCC) WantsPacing() bool                 { return false }
