package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"mobbr/internal/sim"
)

// EngineStats measures the simulator itself over one run — events
// processed, wall-clock throughput, and heap pressure — so BENCH runs track
// engine performance across PRs. Wall-clock and allocation figures are
// inherently nondeterministic; they never enter the event bus or JSONL
// export, only this side report.
type EngineStats struct {
	// Events is the number of simulator events executed during the run.
	Events uint64
	// VirtualTime is the virtual span covered.
	VirtualTime time.Duration
	// WallTime is the host time the run took.
	WallTime time.Duration
	// EventsPerSec is Events / WallTime.
	EventsPerSec float64
	// HeapAllocs is the number of heap objects allocated during the run
	// (from runtime.MemStats.Mallocs; includes any background activity in
	// the process).
	HeapAllocs uint64
	// AllocsPerSimSec is HeapAllocs per simulated second.
	AllocsPerSimSec float64
	// MaxPending is the engine queue's high-water mark.
	MaxPending int
}

// Write renders the stats as aligned text.
func (s *EngineStats) Write(w io.Writer) error {
	if s == nil {
		return nil
	}
	_, err := fmt.Fprintf(w,
		"engine: %d events over %v virtual in %v wall (%.0f events/s), %d heap allocs (%.0f/sim-s), max queue %d\n",
		s.Events, s.VirtualTime, s.WallTime.Round(time.Microsecond),
		s.EventsPerSec, s.HeapAllocs, s.AllocsPerSimSec, s.MaxPending)
	return err
}

// EngineCollector snapshots engine and runtime counters at run start so
// Stop can report the deltas.
type EngineCollector struct {
	eng         *sim.Engine
	startEvents uint64
	startVirt   time.Duration
	startWall   time.Time
	startallocs uint64
}

// StartEngineCollector begins measuring eng. Call Stop when the run ends.
func StartEngineCollector(eng *sim.Engine) *EngineCollector {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &EngineCollector{
		eng:         eng,
		startEvents: eng.Processed(),
		startVirt:   eng.Now(),
		startWall:   time.Now(),
		startallocs: ms.Mallocs,
	}
}

// Stop finalizes the measurement. Safe on a nil collector (returns nil).
func (c *EngineCollector) Stop() *EngineStats {
	if c == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &EngineStats{
		Events:      c.eng.Processed() - c.startEvents,
		VirtualTime: c.eng.Now() - c.startVirt,
		WallTime:    time.Since(c.startWall),
		HeapAllocs:  ms.Mallocs - c.startallocs,
		MaxPending:  c.eng.MaxPending(),
	}
	if s.WallTime > 0 {
		s.EventsPerSec = float64(s.Events) / s.WallTime.Seconds()
	}
	if secs := s.VirtualTime.Seconds(); secs > 0 {
		s.AllocsPerSimSec = float64(s.HeapAllocs) / secs
	}
	return s
}
