package telemetry

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strings"
)

// Counter is a monotonically increasing count. All methods are safe on a
// nil receiver (the disabled state).
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins measurement. Safe on a nil receiver.
type Gauge struct{ v float64 }

// Set records v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the last recorded value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram: bounds are inclusive upper edges,
// with an implicit +Inf bucket at the end. Safe on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	n      uint64
	sum    float64
	min    float64
	max    float64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1), min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.n++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Mean returns the sample mean (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile approximates the q-quantile (0 ≤ q ≤ 1) from the buckets: it
// returns the upper bound of the bucket holding the q-th sample (the max
// observed value for the overflow bucket).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// HistogramSnapshot is the frozen view of one histogram.
type HistogramSnapshot struct {
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
	Bounds []float64
	Counts []uint64
}

// Mean returns the snapshot's sample mean (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile approximates the q-quantile (0 ≤ q ≤ 1) from the buckets, the
// same way Histogram.Quantile does: the upper bound of the bucket holding
// the q-th sample, or the observed max for the overflow bucket.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}

// BoundsMismatchError reports an attempt to merge histograms with different
// bucket layouts: summing their counts element-wise would silently corrupt
// both distributions.
type BoundsMismatchError struct {
	// Name identifies the offending histogram when known ("" otherwise).
	Name string
	// Want and Got are the two incompatible bound sets.
	Want, Got []float64
}

// Error implements error.
func (e *BoundsMismatchError) Error() string {
	if e.Name != "" {
		return fmt.Sprintf("telemetry: histogram %q has bounds %v, cannot merge into bounds %v", e.Name, e.Got, e.Want)
	}
	return fmt.Sprintf("telemetry: cannot merge histogram bounds %v into %v", e.Got, e.Want)
}

// sameBounds reports whether two bound sets are element-wise identical.
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MergeHistogramSnapshots sums src into dst and returns the merged
// snapshot. An empty dst (zero Count and nil Bounds) adopts src's bucket
// layout; otherwise the bounds must match exactly or a *BoundsMismatchError
// is returned and dst is unchanged. Neither input is mutated.
func MergeHistogramSnapshots(dst, src HistogramSnapshot) (HistogramSnapshot, error) {
	if src.Count == 0 && src.Bounds == nil {
		return dst, nil
	}
	if dst.Count == 0 && dst.Bounds == nil {
		out := src
		out.Bounds = append([]float64(nil), src.Bounds...)
		out.Counts = append([]uint64(nil), src.Counts...)
		return out, nil
	}
	if !sameBounds(dst.Bounds, src.Bounds) {
		return dst, &BoundsMismatchError{Want: dst.Bounds, Got: src.Bounds}
	}
	out := dst
	out.Bounds = append([]float64(nil), dst.Bounds...)
	out.Counts = append([]uint64(nil), dst.Counts...)
	for i, c := range src.Counts {
		out.Counts[i] += c
	}
	out.Count += src.Count
	out.Sum += src.Sum
	if src.Count > 0 {
		if dst.Count == 0 || src.Min < out.Min {
			out.Min = src.Min
		}
		if dst.Count == 0 || src.Max > out.Max {
			out.Max = src.Max
		}
	}
	return out, nil
}

// Registry holds named instruments. A nil *Registry is the disabled state:
// instrument constructors return nil instruments whose methods no-op, so an
// instrumented component holds nils end to end and pays only nil-checks.
type Registry struct {
	order      []string
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use (later calls ignore bounds). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := newHistogram(bounds)
	r.histograms[name] = h
	r.order = append(r.order, name)
	return h
}

// Snapshot freezes every instrument's current value. Returns nil on a nil
// registry.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot freezes the registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	s := &Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	for name, h := range r.histograms {
		bounds := make([]float64, len(h.bounds))
		copy(bounds, h.bounds)
		counts := make([]uint64, len(h.counts))
		copy(counts, h.counts)
		s.Histograms[name] = HistogramSnapshot{
			Count: h.n, Sum: h.sum, Min: h.min, Max: h.max,
			Bounds: bounds, Counts: counts,
		}
	}
	return s
}

// Write renders the snapshot as sorted, aligned text.
func (s *Snapshot) Write(w io.Writer) error {
	if s == nil {
		return nil
	}
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	// A name registered as more than one instrument kind appears once per
	// kind in names; dedupe so each kind renders exactly once, counter
	// first, in a stable order.
	for i, n := range names {
		if i > 0 && n == names[i-1] {
			continue
		}
		if v, ok := s.Counters[n]; ok {
			if _, err := fmt.Fprintf(w, "%-40s %12d\n", n, v); err != nil {
				return err
			}
		}
		if v, ok := s.Gauges[n]; ok {
			if _, err := fmt.Fprintf(w, "%-40s %12.3f\n", n, v); err != nil {
				return err
			}
		}
		if h, ok := s.Histograms[n]; ok {
			if _, err := fmt.Fprintf(w, "%-40s n=%-10d mean=%-12.3f min=%-12.3f max=%.3f\n",
				n, h.Count, h.Mean(), zeroIfInf(h.Min), zeroIfInf(h.Max)); err != nil {
				return err
			}
		}
	}
	return nil
}

func zeroIfInf(v float64) float64 {
	if math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Default histogram bucket edges for the per-connection instruments.
var (
	// AckBatchBounds is in packets newly acked per ACK.
	AckBatchBounds = []float64{1, 2, 4, 8, 16, 32, 64}
	// DeliveryRateBounds is in Mbps per valid rate sample.
	DeliveryRateBounds = []float64{1, 5, 10, 25, 50, 100, 200, 400, 800}
	// SendQuantumBounds is in bytes per skb send.
	SendQuantumBounds = []float64{3000, 6000, 12000, 24000, 48000, 65536}
	// InterSendGapBounds is in ms of pacing idle gap per send.
	InterSendGapBounds = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	// TimerSlipBounds is in µs of pacing-timer slippage.
	TimerSlipBounds = []float64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 5000}
)

// ConnMetrics bundles one connection's instruments. A nil *ConnMetrics (or
// any nil instrument inside) is the disabled state.
type ConnMetrics struct {
	// AckBatch is packets newly delivered per processed ACK.
	AckBatch *Histogram
	// DeliveryRate is the per-ACK delivery-rate sample in Mbps — the
	// per-RTT delivery signal BBR's model consumes.
	DeliveryRate *Histogram
	// SendQuantum is bytes per skb handed to the path (TSO autosize).
	SendQuantum *Histogram
	// InterSendGap is the pacing idle gap per send in ms (Eq. 1).
	InterSendGap *Histogram
	// TimerSlip is pacing-timer slippage in µs under CPU contention.
	TimerSlip *Histogram
}

// NewConnMetrics registers connection id's instruments in r. Returns nil on
// a nil registry.
func NewConnMetrics(r *Registry, id int) *ConnMetrics {
	if r == nil {
		return nil
	}
	p := fmt.Sprintf("conn%d/", id)
	return &ConnMetrics{
		AckBatch:     r.Histogram(p+"ack_batch_pkts", AckBatchBounds),
		DeliveryRate: r.Histogram(p+"delivery_rate_mbps", DeliveryRateBounds),
		SendQuantum:  r.Histogram(p+"send_quantum_bytes", SendQuantumBounds),
		InterSendGap: r.Histogram(p+"inter_send_gap_ms", InterSendGapBounds),
		TimerSlip:    r.Histogram(p+"pacing_timer_slip_us", TimerSlipBounds),
	}
}

// MergedHistogram sums every histogram whose name ends in suffix — the
// cross-connection view of a per-connection instrument. Histograms whose
// bucket bounds differ from the first match are skipped rather than
// corrupting the merged counts; use MergedHistogramChecked to learn how
// many were skipped.
func (s *Snapshot) MergedHistogram(suffix string) HistogramSnapshot {
	out, _ := s.MergedHistogramChecked(suffix)
	return out
}

// MergedHistogramChecked is MergedHistogram plus the number of matching
// histograms that were skipped because their bucket bounds did not match
// the first match's (merging mismatched layouts element-wise would corrupt
// the distribution). Iteration over matches is in sorted-name order, so the
// adopted layout — and therefore the result — is deterministic.
func (s *Snapshot) MergedHistogramChecked(suffix string) (HistogramSnapshot, int) {
	var out HistogramSnapshot
	if s == nil {
		return out, 0
	}
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		if strings.HasSuffix(name, suffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	skipped := 0
	out.Min = math.Inf(1)
	out.Max = math.Inf(-1)
	for _, name := range names {
		h := s.Histograms[name]
		if out.Bounds == nil {
			out.Bounds = append([]float64(nil), h.Bounds...)
			out.Counts = make([]uint64, len(h.Counts))
		}
		if !sameBounds(h.Bounds, out.Bounds) || len(h.Counts) != len(out.Counts) {
			skipped++
			continue
		}
		for i, c := range h.Counts {
			out.Counts[i] += c
		}
		out.Count += h.Count
		out.Sum += h.Sum
		if h.Count > 0 && h.Min < out.Min {
			out.Min = h.Min
		}
		if h.Count > 0 && h.Max > out.Max {
			out.Max = h.Max
		}
	}
	if out.Count == 0 {
		out.Min, out.Max = 0, 0
	}
	return out, skipped
}

// connPrefix matches the "conn<N>/" namespace NewConnMetrics registers
// instruments under.
var connPrefix = regexp.MustCompile(`^conn\d+/`)

// HistogramDigest folds the per-connection histograms into one snapshot per
// instrument, keyed by the instrument name with the "conn<N>/" prefix
// stripped (non-connection histograms keep their full name). It returns
// the digest and how many histograms were skipped due to mismatched bucket
// bounds within a key. Keys merge in sorted-name order, so the result is
// deterministic.
func (s *Snapshot) HistogramDigest() (map[string]HistogramSnapshot, int) {
	if s == nil || len(s.Histograms) == 0 {
		return nil, 0
	}
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]HistogramSnapshot)
	skipped := 0
	for _, name := range names {
		key := connPrefix.ReplaceAllString(name, "")
		merged, err := MergeHistogramSnapshots(out[key], s.Histograms[name])
		if err != nil {
			skipped++
			continue
		}
		out[key] = merged
	}
	return out, skipped
}
