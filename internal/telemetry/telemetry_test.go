package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"mobbr/internal/sim"
)

func TestBusStampsVirtualTime(t *testing.T) {
	eng := sim.New(1)
	bus := NewBus(eng, 0)
	eng.Schedule(5*time.Millisecond, func() {
		bus.Emit(Event{Kind: KindRTO, Conn: 0, Value: 1})
	})
	eng.Schedule(20*time.Millisecond, func() {
		bus.Emit(Event{Kind: KindTCPState, Conn: 1, Old: "open", New: "loss"})
	})
	eng.Run(time.Second)

	evs := bus.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].At != 5*time.Millisecond || evs[1].At != 20*time.Millisecond {
		t.Errorf("timestamps = %v, %v", evs[0].At, evs[1].At)
	}
	if got := bus.Filter(KindTCPState); len(got) != 1 || got[0].New != "loss" {
		t.Errorf("Filter(KindTCPState) = %v", got)
	}
	if !bus.Enabled() {
		t.Error("non-nil bus reports disabled")
	}
}

func TestBusCapDrops(t *testing.T) {
	eng := sim.New(1)
	bus := NewBus(eng, 2)
	for i := 0; i < 5; i++ {
		bus.Emit(Event{Kind: KindRTO})
	}
	if len(bus.Events()) != 2 {
		t.Errorf("kept %d events, want 2", len(bus.Events()))
	}
	if bus.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", bus.Dropped())
	}
}

// The disabled state is a nil pointer everywhere; every recording method
// must be a no-op that allocates nothing — this is the hot-path contract
// the instrumented transport relies on.
func TestNilReceiversZeroAlloc(t *testing.T) {
	var bus *Bus
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	var p *Profile
	var coll *EngineCollector
	allocs := testing.AllocsPerRun(100, func() {
		bus.Emit(Event{Kind: KindPacingTimer, Value: 1})
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		h.Observe(42)
		p.Add("net", "pacing_timer", 16000)
		p.SetPhase("during")
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry allocated %.1f allocs/op, want 0", allocs)
	}
	if bus.Events() != nil || bus.Dropped() != 0 || bus.Enabled() {
		t.Error("nil bus accessors not inert")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instrument accessors not inert")
	}
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z", nil) != nil || r.Snapshot() != nil {
		t.Error("nil registry should hand out nil instruments")
	}
	if NewConnMetrics(nil, 0) != nil {
		t.Error("NewConnMetrics(nil) should be nil")
	}
	if coll.Stop() != nil {
		t.Error("nil collector Stop should be nil")
	}
	if err := bus.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil bus WriteJSONL: %v", err)
	}
}

func TestWriteJSONLDeterministicAndParseable(t *testing.T) {
	mk := func() *bytes.Buffer {
		eng := sim.New(7)
		bus := NewBus(eng, 0)
		eng.Schedule(time.Millisecond, func() {
			bus.Emit(Event{Kind: KindCCMode, Conn: 0, Old: "STARTUP", New: "DRAIN"})
			bus.Emit(Event{Kind: KindPacingTimer, Conn: 1, Value: 12.5})
			bus.Emit(Event{Kind: KindViolation, Conn: -1, New: "cwnd/bounds", Old: `detail with "quotes"`})
		})
		eng.Run(10 * time.Millisecond)
		var buf bytes.Buffer
		if err := bus.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a, b := mk(), mk()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical runs produced different JSONL:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	var prev int64 = -1
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		tns := int64(m["t_ns"].(float64))
		if tns < prev {
			t.Errorf("t_ns went backwards: %d after %d", tns, prev)
		}
		prev = tns
		if m["kind"] == "" {
			t.Errorf("line missing kind: %q", line)
		}
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 100})
	for _, v := range []float64{1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 139 {
		t.Errorf("mean = %v, want 139", got)
	}
	// Buckets: ≤10 ×2, ≤100 ×1, overflow ×1.
	if h.counts[0] != 2 || h.counts[1] != 1 || h.counts[2] != 1 {
		t.Errorf("counts = %v", h.counts)
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %v, want 10", got)
	}
	if got := h.Quantile(1); got != 500 {
		t.Errorf("p100 = %v, want max 500 (overflow bucket)", got)
	}
}

func TestRegistrySnapshotAndWrite(t *testing.T) {
	r := NewRegistry()
	r.Counter("acks").Add(7)
	r.Gauge("speed").Set(2.5)
	r.Histogram("gap_ms", []float64{1, 10}).Observe(3)
	if r.Counter("acks") != r.Counter("acks") {
		t.Error("same name must return the same counter")
	}
	s := r.Snapshot()
	if s.Counters["acks"] != 7 || s.Gauges["speed"] != 2.5 {
		t.Errorf("snapshot = %+v", s)
	}
	hs := s.Histograms["gap_ms"]
	if hs.Count != 1 || hs.Min != 3 || hs.Max != 3 {
		t.Errorf("hist snapshot = %+v", hs)
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"acks", "speed", "gap_ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot text missing %q:\n%s", want, out)
		}
	}
}

func TestMergedHistogram(t *testing.T) {
	r := NewRegistry()
	NewConnMetrics(r, 0).AckBatch.Observe(4)
	NewConnMetrics(r, 1).AckBatch.Observe(8)
	m := r.Snapshot().MergedHistogram("/ack_batch_pkts")
	if m.Count != 2 || m.Min != 4 || m.Max != 8 {
		t.Errorf("merged = %+v", m)
	}
	if m.Mean() != 6 {
		t.Errorf("merged mean = %v, want 6", m.Mean())
	}
	if empty := r.Snapshot().MergedHistogram("/nope"); empty.Count != 0 || empty.Min != 0 {
		t.Errorf("empty merge = %+v", empty)
	}
}

func TestProfileSharesAndOutput(t *testing.T) {
	p := NewProfile()
	p.Add("net", "pacing_timer", 100)
	p.Add("net", "seg_xmit", 300)
	p.SetPhase("during")
	p.Add("net", "pacing_timer", 200)
	p.Add("app", "data_copy", 50)

	if got := p.CoreTotal("net"); got != 600 {
		t.Errorf("net total = %v, want 600", got)
	}
	if got := p.Share("net", "pacing_timer"); got != 0.5 {
		t.Errorf("pacing share = %v, want 0.5", got)
	}
	if got := p.PhaseShare("net", "during", "pacing_timer"); got != 1 {
		t.Errorf("during pacing share = %v, want 1", got)
	}

	var tbl bytes.Buffer
	if err := p.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "pacing_timer") || !strings.Contains(tbl.String(), "during") {
		t.Errorf("table output:\n%s", tbl.String())
	}

	var folded bytes.Buffer
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(folded.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("folded lines = %d, want 4:\n%s", len(lines), folded.String())
	}
	for _, line := range lines {
		// Folded-stack format: "core;phase;op cycles".
		parts := strings.Split(line, " ")
		if len(parts) != 2 || strings.Count(parts[0], ";") != 2 {
			t.Errorf("bad folded line %q", line)
		}
	}
}

func TestEngineCollector(t *testing.T) {
	eng := sim.New(3)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 100 {
			eng.Schedule(time.Millisecond, tick)
		}
	}
	eng.Schedule(0, tick)
	coll := StartEngineCollector(eng)
	eng.Run(time.Second)
	st := coll.Stop()
	if st == nil {
		t.Fatal("nil stats")
	}
	if st.Events < 100 {
		t.Errorf("events = %d, want >= 100", st.Events)
	}
	if st.VirtualTime != time.Second {
		t.Errorf("virtual time = %v", st.VirtualTime)
	}
	if st.MaxPending < 1 {
		t.Errorf("max pending = %d", st.MaxPending)
	}
	if math.IsNaN(st.EventsPerSec) || st.EventsPerSec <= 0 {
		t.Errorf("events/sec = %v", st.EventsPerSec)
	}
	var buf bytes.Buffer
	if err := st.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "events") {
		t.Errorf("stats text: %q", buf.String())
	}
}

func TestConfigAny(t *testing.T) {
	if (Config{}).Any() {
		t.Error("zero config reports Any")
	}
	for _, c := range []Config{{Trace: true}, {Metrics: true}, {Profile: true}} {
		if !c.Any() {
			t.Errorf("%+v should report Any", c)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindPacingTimer.String() != "pacing_timer" {
		t.Errorf("KindPacingTimer = %q", KindPacingTimer)
	}
	if Kind(200).String() != "unknown" {
		t.Errorf("out-of-range kind = %q", Kind(200))
	}
}
