package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// cellKey identifies one attribution cell: which core ran which op during
// which run phase.
type cellKey struct {
	Core  string
	Phase string
	Op    string
}

// Profile attributes CPU cycles by op × core × phase. Phases partition the
// run around a fault window ("before"/"during"/"after") or cover it whole
// ("run"). Ops and cores are plain strings so the profiler stays decoupled
// from cpumodel's Op enum. All methods are safe on a nil receiver.
type Profile struct {
	phase string
	order []cellKey
	cells map[cellKey]float64
}

// NewProfile returns a profile in phase "run".
func NewProfile() *Profile {
	return &Profile{phase: "run", cells: make(map[cellKey]float64)}
}

// SetPhase switches the current phase label; subsequent Add calls attribute
// to it. core.Run drives this from the fault-schedule window.
func (p *Profile) SetPhase(name string) {
	if p == nil || name == "" {
		return
	}
	p.phase = name
}

// Phase returns the current phase label ("" on nil).
func (p *Profile) Phase() string {
	if p == nil {
		return ""
	}
	return p.phase
}

// Add attributes cycles of op on core to the current phase.
func (p *Profile) Add(core, op string, cycles float64) {
	if p == nil {
		return
	}
	k := cellKey{Core: core, Phase: p.phase, Op: op}
	if _, ok := p.cells[k]; !ok {
		p.order = append(p.order, k)
	}
	p.cells[k] += cycles
}

// CoreTotal returns the cycles attributed to core across phases and ops.
func (p *Profile) CoreTotal(core string) float64 {
	if p == nil {
		return 0
	}
	var t float64
	for k, cy := range p.cells {
		if k.Core == core {
			t += cy
		}
	}
	return t
}

// Share returns op's fraction of core's total cycles across all phases —
// the number behind the paper's "pacing consumed X% of the netstack core".
func (p *Profile) Share(core, op string) float64 {
	if p == nil {
		return 0
	}
	total := p.CoreTotal(core)
	if total == 0 {
		return 0
	}
	var t float64
	for k, cy := range p.cells {
		if k.Core == core && k.Op == op {
			t += cy
		}
	}
	return t / total
}

// PhaseShare is Share restricted to one phase — how op's weight shifts
// before, during and after a fault window.
func (p *Profile) PhaseShare(core, phase, op string) float64 {
	if p == nil {
		return 0
	}
	var total, t float64
	for k, cy := range p.cells {
		if k.Core != core || k.Phase != phase {
			continue
		}
		total += cy
		if k.Op == op {
			t += cy
		}
	}
	if total == 0 {
		return 0
	}
	return t / total
}

// sortedCells returns the cells ordered core, then phase (first-seen), then
// descending cycles — stable and deterministic.
func (p *Profile) sortedCells() []cellKey {
	keys := append([]cellKey(nil), p.order...)
	phaseRank := make(map[string]int)
	for _, k := range p.order {
		if _, ok := phaseRank[k.Phase]; !ok {
			phaseRank[k.Phase] = len(phaseRank)
		}
	}
	sort.SliceStable(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Core != b.Core {
			return a.Core < b.Core
		}
		if a.Phase != b.Phase {
			return phaseRank[a.Phase] < phaseRank[b.Phase]
		}
		return p.cells[a] > p.cells[b]
	})
	return keys
}

// WriteTable renders the attribution as aligned text: one row per
// core × phase × op with cycles, the op's share of that core+phase, and the
// op's share of the core overall.
func (p *Profile) WriteTable(w io.Writer) error {
	if p == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-6s %-8s %-14s %16s %8s %8s\n",
		"core", "phase", "op", "cycles", "phase%", "core%"); err != nil {
		return err
	}
	coreTotal := make(map[string]float64)
	phaseTotal := make(map[[2]string]float64)
	for k, cy := range p.cells {
		coreTotal[k.Core] += cy
		phaseTotal[[2]string{k.Core, k.Phase}] += cy
	}
	for _, k := range p.sortedCells() {
		cy := p.cells[k]
		pt := phaseTotal[[2]string{k.Core, k.Phase}]
		ct := coreTotal[k.Core]
		var ps, cs float64
		if pt > 0 {
			ps = cy / pt * 100
		}
		if ct > 0 {
			cs = cy / ct * 100
		}
		if _, err := fmt.Fprintf(w, "%-6s %-8s %-14s %16.0f %7.1f%% %7.1f%%\n",
			k.Core, k.Phase, k.Op, cy, ps, cs); err != nil {
			return err
		}
	}
	return nil
}

// WriteFolded writes folded-stack lines ("core;phase;op cycles") consumable
// by standard flamegraph tooling (flamegraph.pl, inferno, speedscope).
func (p *Profile) WriteFolded(w io.Writer) error {
	if p == nil {
		return nil
	}
	for _, k := range p.sortedCells() {
		if _, err := fmt.Fprintf(w, "%s;%s;%s %.0f\n",
			k.Core, k.Phase, k.Op, p.cells[k]); err != nil {
			return err
		}
	}
	return nil
}
