package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestSnapshotWriteDeterministic pins Snapshot.Write's output to sorted key
// order regardless of registration order: two registries holding the same
// instruments, built in reversed order, must render byte-identically, and
// the rendered names must be sorted.
func TestSnapshotWriteDeterministic(t *testing.T) {
	build := func(names []string) *Registry {
		r := NewRegistry()
		for _, n := range names {
			switch {
			case strings.HasPrefix(n, "c/"):
				r.Counter(n).Add(7)
			case strings.HasPrefix(n, "g/"):
				r.Gauge(n).Set(1.5)
			default:
				r.Histogram(n, []float64{1, 10}).Observe(3)
			}
		}
		return r
	}
	names := []string{
		"c/zeta", "g/alpha", "h/mid", "c/alpha", "g/zeta", "h/aaa",
		"c/mid", "g/mid", "h/zzz",
	}
	rev := make([]string, len(names))
	for i, n := range names {
		rev[len(names)-1-i] = n
	}
	var a, b bytes.Buffer
	if err := build(names).Snapshot().Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := build(rev).Snapshot().Write(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("registration order leaked into Write output:\n--- forward\n%s--- reversed\n%s", a.String(), b.String())
	}
	var got []string
	for _, line := range strings.Split(strings.TrimRight(a.String(), "\n"), "\n") {
		got = append(got, strings.Fields(line)[0])
	}
	if len(got) != len(names) {
		t.Fatalf("rendered %d lines, want %d:\n%s", len(got), len(names), a.String())
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("names not sorted: %q after %q", got[i], got[i-1])
		}
	}
}

// TestSnapshotWriteKindCollision: a name registered as more than one
// instrument kind must render each kind exactly once (the old code printed
// the counter twice and dropped the gauge).
func TestSnapshotWriteKindCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup").Add(3)
	r.Gauge("dup").Set(2.5)
	r.Histogram("dup", []float64{1}).Observe(1)
	var buf bytes.Buffer
	if err := r.Snapshot().Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "dup"); n != 3 {
		t.Fatalf("collided name rendered %d times, want 3 (one per kind):\n%s", n, out)
	}
	if !strings.Contains(out, "2.500") {
		t.Fatalf("gauge value lost on kind collision:\n%s", out)
	}
}

// TestMergeHistogramSnapshots covers the mergeable-snapshot codec: adopt
// into empty, sum matching layouts, and reject mismatched bounds with a
// structured error instead of corrupting buckets.
func TestMergeHistogramSnapshots(t *testing.T) {
	mk := func(bounds []float64, vals ...float64) HistogramSnapshot {
		h := newHistogram(bounds)
		for _, v := range vals {
			h.Observe(v)
		}
		return HistogramSnapshot{Count: h.n, Sum: h.sum, Min: h.min, Max: h.max,
			Bounds: append([]float64(nil), h.bounds...), Counts: append([]uint64(nil), h.counts...)}
	}
	a := mk([]float64{1, 10}, 0.5, 5)
	b := mk([]float64{1, 10}, 20, 0.2)

	m, err := MergeHistogramSnapshots(HistogramSnapshot{}, a)
	if err != nil {
		t.Fatal(err)
	}
	m, err = MergeHistogramSnapshots(m, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 4 || m.Min != 0.2 || m.Max != 20 {
		t.Fatalf("merged = %+v", m)
	}
	want := []uint64{2, 1, 1}
	for i, c := range m.Counts {
		if c != want[i] {
			t.Fatalf("merged counts = %v, want %v", m.Counts, want)
		}
	}
	// a must not have been mutated by the merge.
	if a.Counts[0] != 1 || a.Count != 2 {
		t.Fatalf("merge mutated its input: %+v", a)
	}

	// Mismatched bounds: structured error, dst unchanged.
	c := mk([]float64{2, 20}, 3)
	got, err := MergeHistogramSnapshots(m, c)
	var bm *BoundsMismatchError
	if err == nil {
		t.Fatal("mismatched bounds merged without error")
	} else if !errors.As(err, &bm) {
		t.Fatalf("error %T is not *BoundsMismatchError", err)
	}
	if got.Count != m.Count {
		t.Fatalf("dst changed on rejected merge: %+v", got)
	}
}

// TestMergedHistogramSkipsMismatchedBounds: the cross-connection merge must
// skip (and count) histograms whose bucket layout differs instead of
// silently summing incompatible counts — the old code only compared bucket
// count, so equal-length different-bound layouts corrupted the merge.
func TestMergedHistogramSkipsMismatchedBounds(t *testing.T) {
	r := NewRegistry()
	r.Histogram("conn0/x", []float64{1, 10}).Observe(5)
	r.Histogram("conn1/x", []float64{2, 20}).Observe(5) // same len, different bounds
	r.Histogram("conn2/x", []float64{1, 10}).Observe(0.5)
	s := r.Snapshot()
	m, skipped := s.MergedHistogramChecked("/x")
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if m.Count != 2 {
		t.Fatalf("merged count = %d, want 2", m.Count)
	}
	// conn0 sorts first, so its layout is adopted.
	if m.Bounds[0] != 1 || m.Bounds[1] != 10 {
		t.Fatalf("adopted bounds = %v, want [1 10]", m.Bounds)
	}
	if m.Counts[0] != 1 || m.Counts[1] != 1 {
		t.Fatalf("merged counts = %v", m.Counts)
	}
}

// TestHistogramDigest folds conn-prefixed instruments by stripped name.
func TestHistogramDigest(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 3; i++ {
		cm := NewConnMetrics(r, i)
		cm.AckBatch.Observe(float64(i + 1))
		cm.TimerSlip.Observe(100)
	}
	r.Histogram("global/other", []float64{1}).Observe(2)
	d, skipped := r.Snapshot().HistogramDigest()
	if skipped != 0 {
		t.Fatalf("skipped = %d", skipped)
	}
	if got := d["ack_batch_pkts"].Count; got != 3 {
		t.Fatalf("ack_batch_pkts count = %d, want 3", got)
	}
	if got := d["pacing_timer_slip_us"].Count; got != 3 {
		t.Fatalf("slip count = %d, want 3", got)
	}
	if got := d["global/other"].Count; got != 1 {
		t.Fatalf("non-conn histogram lost: %v", d)
	}
	if q := d["pacing_timer_slip_us"].Quantile(0.99); q != 100 {
		t.Fatalf("p99 = %v, want bucket bound 100", q)
	}
}
