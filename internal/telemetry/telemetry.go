// Package telemetry is the simulation's unified observability layer: a
// structured event bus stamped with virtual time, a metrics registry
// (counters, gauges, fixed-bucket histograms), a CPU-cycle attribution
// profiler, and engine self-metrics. It is the substrate the paper's
// cost-attribution argument needs — "where did the cycles go" and "what
// happened during the blackout at t=12s" become queries over data instead
// of debugger sessions.
//
// Everything in this package is zero-cost when disabled: every recording
// method is safe to call on a nil receiver and returns immediately, so an
// instrumented hot path pays only a nil-check (and allocates nothing) when
// telemetry is off. Tests assert this contract (see AllocsPerRun tests and
// BenchmarkEngineOverhead).
//
// Events carry only virtual-clock timestamps and deterministic payloads, so
// two runs with the same seed produce byte-identical JSONL exports —
// wall-clock quantities live exclusively in EngineStats, which never enters
// the event stream.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"mobbr/internal/sim"
)

// Kind types an event. The field semantics per kind are:
//
//	KindTCPState   Conn; Old/New = loss-recovery state ("open", "recovery", "loss")
//	KindRTO        Conn; Value = consecutive-RTO backoff count
//	KindSpuriousRTO Conn; Value = restored cwnd (packets)
//	KindIdleRestart Conn; Value = cwnd after the RFC 2861 decay
//	KindConnFailed Conn; New = failure reason
//	KindCCMode     Conn; Old/New = BBR/BBRv2 state-machine mode label
//	KindPacingTimer Conn; Value = timer slippage in µs (CPU queue + service
//	               delay between the hrtimer expiry and the send running)
//	KindFault      Conn = -1; Old = "begin" or "end"; New = fault description
//	KindGovernor   Conn = -1; Value = new speed (ref cycles/s), V2 = old speed
//	KindViolation  Conn (or -1); New = rule name; Old = detail
//	KindSample     Conn; New = CC mode label; Value = cwnd (pkts),
//	               V2 = inflight (pkts), V3 = pacing rate (Mbps), V4 = srtt (ms)
//	KindSegment    Conn = -1; Old = "begin" or "end"; New = trace-segment
//	               label ("<trace> outage|degraded|nominal"); Value = the
//	               segment's mean rate in Mbps
type Kind uint8

// Event kinds.
const (
	KindTCPState Kind = iota
	KindRTO
	KindSpuriousRTO
	KindIdleRestart
	KindConnFailed
	KindCCMode
	KindPacingTimer
	KindFault
	KindGovernor
	KindViolation
	KindSample
	KindSegment
	numKinds
)

var kindNames = [numKinds]string{
	"tcp_state", "rto", "spurious_rto", "idle_restart", "conn_failed",
	"cc_mode", "pacing_timer", "fault", "governor", "violation", "sample",
	"segment",
}

// String returns the kind's snake_case name, as used in JSONL output.
func (k Kind) String() string {
	if int(k) >= len(kindNames) {
		return "unknown"
	}
	return kindNames[k]
}

// Event is one structured, virtual-timestamped occurrence. Old/New and the
// Value fields are kind-specific; see Kind for the schema.
type Event struct {
	// At is the virtual time, stamped by Bus.Emit.
	At time.Duration
	// Kind types the event.
	Kind Kind
	// Conn is the flow id, or -1 for sim-wide events.
	Conn int
	// Old and New carry state-transition labels or descriptions.
	Old, New string
	// Value and V2–V4 carry kind-specific numbers.
	Value, V2, V3, V4 float64
}

// DefaultMaxEvents caps a bus's buffer so a pathological run cannot exhaust
// memory; overflow increments Dropped instead of growing.
const DefaultMaxEvents = 1 << 21

// Bus collects events from every instrumented layer of one run. A nil *Bus
// is the disabled state: Emit on nil is a no-op, so call sites need no
// enabled-check beyond the pointer they already hold.
type Bus struct {
	eng     *sim.Engine
	max     int
	events  []Event
	dropped uint64
}

// NewBus returns a bus stamping events from eng's clock. maxEvents <= 0
// uses DefaultMaxEvents.
func NewBus(eng *sim.Engine, maxEvents int) *Bus {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Bus{eng: eng, max: maxEvents}
}

// Enabled reports whether the bus is collecting (non-nil).
func (b *Bus) Enabled() bool { return b != nil }

// Emit records e at the current virtual time. Safe on a nil bus (no-op).
func (b *Bus) Emit(e Event) {
	if b == nil {
		return
	}
	if len(b.events) >= b.max {
		b.dropped++
		return
	}
	e.At = b.eng.Now()
	b.events = append(b.events, e)
}

// Events returns every recorded event in emission order (which is also
// non-decreasing virtual-time order, since the engine clock never goes
// backwards).
func (b *Bus) Events() []Event {
	if b == nil {
		return nil
	}
	return b.events
}

// Dropped returns how many events overflowed the buffer cap.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped
}

// jsonEvent is the JSONL wire form. Field order is fixed by declaration,
// and encoding/json renders floats deterministically, so identical event
// streams serialize byte-identically.
type jsonEvent struct {
	TNs  int64   `json:"t_ns"`
	Kind string  `json:"kind"`
	Conn int     `json:"conn"`
	Old  string  `json:"old,omitempty"`
	New  string  `json:"new,omitempty"`
	V    float64 `json:"value,omitempty"`
	V2   float64 `json:"v2,omitempty"`
	V3   float64 `json:"v3,omitempty"`
	V4   float64 `json:"v4,omitempty"`
}

// WriteJSONL writes one JSON object per line for every recorded event. The
// output is deterministic: same seed, same spec → byte-identical bytes.
func (b *Bus) WriteJSONL(w io.Writer) error {
	if b == nil {
		return nil
	}
	for i := range b.events {
		e := &b.events[i]
		line, err := json.Marshal(jsonEvent{
			TNs: int64(e.At), Kind: e.Kind.String(), Conn: e.Conn,
			Old: e.Old, New: e.New,
			V: e.Value, V2: e.V2, V3: e.V3, V4: e.V4,
		})
		if err != nil {
			return fmt.Errorf("telemetry: marshal event %d: %w", i, err)
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// Filter returns the events of one kind, in order.
func (b *Bus) Filter(k Kind) []Event {
	if b == nil {
		return nil
	}
	var out []Event
	for _, e := range b.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Config selects which telemetry subsystems a run enables. The zero value
// disables everything (the hot path pays only nil-checks).
type Config struct {
	// Trace enables the structured event bus (and KindSample recording).
	Trace bool
	// Metrics enables the metrics registry and engine self-metrics.
	Metrics bool
	// Profile enables cycle attribution by op × core × phase.
	Profile bool
	// MaxEvents caps the event buffer (0 = DefaultMaxEvents).
	MaxEvents int
}

// Any reports whether any subsystem is enabled.
func (c Config) Any() bool { return c.Trace || c.Metrics || c.Profile }
