package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// refSched is a naive sorted-slice reference scheduler: events fire in
// strict (at, seq) order, cancellation is a flag, and rescheduling retires
// the old entry and appends a new one consuming exactly one sequence number
// — the same contract the engine implements with its heap + wheel hybrid.
type refSched struct {
	now    time.Duration
	seq    uint64
	events []refEvent
}

type refEvent struct {
	at        time.Duration
	seq       uint64
	id        int
	cancelled bool
}

func (r *refSched) schedule(delay time.Duration, id int) int {
	if delay < 0 {
		delay = 0
	}
	r.events = append(r.events, refEvent{at: r.now + delay, seq: r.seq, id: id})
	r.seq++
	return len(r.events) - 1
}

// pop removes and returns the earliest live event, or nil.
func (r *refSched) pop() *refEvent {
	best := -1
	for i := range r.events {
		e := &r.events[i]
		if e.cancelled {
			continue
		}
		if best < 0 || e.at < r.events[best].at ||
			(e.at == r.events[best].at && e.seq < r.events[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	ev := r.events[best]
	r.events = append(r.events[:best], r.events[best+1:]...)
	if ev.at > r.now {
		r.now = ev.at
	}
	return &ev
}

// horizons mixes delays so every tier gets traffic: wheel level 0
// (sub-16ms), level 1 (sub-4s), the heap (beyond), and zero-delay events.
var horizons = []time.Duration{
	100 * time.Microsecond,
	5 * time.Millisecond,
	100 * time.Millisecond,
	3 * time.Second,
	20 * time.Second,
}

// TestDifferentialVsReference drives 10k random schedule/cancel/reschedule/
// step operations through the engine and the reference scheduler in
// lockstep, asserting that every fired event matches in (id, time) and that
// the engine's internal accounting stays consistent throughout.
func TestDifferentialVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	eng := New(1)
	ref := &refSched{}

	var fired []int
	timers := map[int]*Timer{} // live engine timers by op id
	nextID := 0

	refFind := func(id int) int {
		for i := range ref.events {
			if ref.events[i].id == id && !ref.events[i].cancelled {
				return i
			}
		}
		return -1
	}

	liveIDs := func() []int {
		ids := make([]int, 0, len(timers))
		for id := range timers {
			ids = append(ids, id)
		}
		// map order is random; sort for determinism.
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
				ids[j], ids[j-1] = ids[j-1], ids[j]
			}
		}
		return ids
	}

	const ops = 10000
	for op := 0; op < ops; op++ {
		switch r := rng.Float64(); {
		case r < 0.45: // schedule
			id := nextID
			nextID++
			delay := time.Duration(rng.Int63n(int64(horizons[rng.Intn(len(horizons))])))
			tm := eng.Schedule(delay, func() { fired = append(fired, id) })
			timers[id] = &tm
			ref.schedule(delay, id)
		case r < 0.55: // cancel a random live timer
			ids := liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			if timers[id].Stop() {
				if i := refFind(id); i >= 0 {
					ref.events[i].cancelled = true
				} else {
					t.Fatalf("op %d: engine stopped id %d but reference has no live entry", op, id)
				}
			}
			delete(timers, id)
		case r < 0.70: // reschedule a random live timer
			ids := liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			delay := time.Duration(rng.Int63n(int64(horizons[rng.Intn(len(horizons))])))
			if timers[id].Reschedule(delay) {
				i := refFind(id)
				if i < 0 {
					t.Fatalf("op %d: engine rescheduled id %d but reference has no live entry", op, id)
				}
				ref.events[i].cancelled = true
				ref.schedule(delay, id)
			} else {
				delete(timers, id)
			}
		default: // fire one event
			stepped := eng.Step()
			want := ref.pop()
			if stepped != (want != nil) {
				t.Fatalf("op %d: engine stepped=%v, reference has event=%v", op, stepped, want != nil)
			}
			if want == nil {
				continue
			}
			if len(fired) == 0 || fired[len(fired)-1] != want.id {
				got := -1
				if len(fired) > 0 {
					got = fired[len(fired)-1]
				}
				t.Fatalf("op %d: fired id %d, reference expects %d at %v", op, got, want.id, want.at)
			}
			if eng.Now() != want.at {
				t.Fatalf("op %d: engine now %v, reference %v", op, eng.Now(), want.at)
			}
			delete(timers, want.id)
		}
		if eng.Pending() != len(timers) {
			t.Fatalf("op %d: engine Pending %d, live timers %d", op, eng.Pending(), len(timers))
		}
		if op%512 == 0 {
			if err := eng.CheckQueue(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}

	// Drain both completely; order must keep matching.
	for {
		stepped := eng.Step()
		want := ref.pop()
		if stepped != (want != nil) {
			t.Fatalf("drain: engine stepped=%v, reference has event=%v", stepped, want != nil)
		}
		if want == nil {
			break
		}
		if fired[len(fired)-1] != want.id || eng.Now() != want.at {
			t.Fatalf("drain: fired id %d at %v, reference expects %d at %v",
				fired[len(fired)-1], eng.Now(), want.id, want.at)
		}
	}
	if err := eng.CheckQueue(); err != nil {
		t.Fatal(err)
	}
	if eng.Pending() != 0 {
		t.Fatalf("drained engine reports %d pending", eng.Pending())
	}
}

// TestRescheduleConsumesOneSeq pins the ordering parity between Reschedule
// and Stop+Schedule: two equal-time events keep their relative order no
// matter which re-arm form produced them.
func TestRescheduleConsumesOneSeq(t *testing.T) {
	eng := New(1)
	var order []string
	ta := eng.Schedule(time.Second, func() { order = append(order, "a") })
	eng.Schedule(5*time.Second, func() { order = append(order, "b") })
	// Re-arm a to the same instant as b. Reschedule consumes the next seq,
	// so a must now fire after b — exactly as Stop+Schedule would order it.
	if !ta.Reschedule(5 * time.Second) {
		t.Fatal("Reschedule on pending timer failed")
	}
	eng.Run(10 * time.Second)
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
}

// TestRescheduleWhileFiring covers the self-re-arm path: a callback that
// reschedules its own timer keeps the same queue entry alive.
func TestRescheduleWhileFiring(t *testing.T) {
	eng := New(1)
	n := 0
	var tm Timer
	tm = eng.Schedule(time.Millisecond, func() {
		n++
		if n < 5 {
			if !tm.Reschedule(time.Millisecond) {
				t.Fatal("Reschedule from inside callback failed")
			}
		}
	})
	eng.Run(time.Second)
	if n != 5 {
		t.Fatalf("fired %d times, want 5", n)
	}
	if err := eng.CheckQueue(); err != nil {
		t.Fatal(err)
	}
}

// TestRescheduleAfterFire: once a timer has fired and been reclaimed, its
// stale handle must refuse to reschedule (and must not disturb whatever
// event now occupies the recycled slot).
func TestRescheduleAfterFire(t *testing.T) {
	eng := New(1)
	tm := eng.Schedule(time.Millisecond, func() {})
	eng.Run(time.Second)
	if tm.Reschedule(time.Millisecond) {
		t.Fatal("Reschedule succeeded on a fired timer")
	}
	if tm.Stop() {
		t.Fatal("Stop succeeded on a fired timer")
	}
	fired := false
	eng.Schedule(time.Millisecond, func() { fired = true }) // reuses the slot
	if tm.Pending() {
		t.Fatal("stale handle reports Pending for the slot's new occupant")
	}
	if tm.Reschedule(time.Hour) {
		t.Fatal("stale handle rescheduled the slot's new occupant")
	}
	eng.Run(2 * time.Second)
	if !fired {
		t.Fatal("new occupant never fired")
	}
}

// TestCancelledWheelItemReclaimed: a cancelled short-horizon timer is
// returned to the freelist when its wheel slot flushes, not leaked until
// run end.
func TestCancelledWheelItemReclaimed(t *testing.T) {
	eng := New(1)
	tm := eng.Schedule(time.Millisecond, func() { t.Fatal("cancelled timer fired") })
	if !tm.Stop() {
		t.Fatal("Stop failed")
	}
	fired := false
	eng.Schedule(2*time.Millisecond, func() { fired = true })
	eng.Run(time.Second)
	if !fired {
		t.Fatal("live timer never fired")
	}
	if eng.queued != 0 {
		t.Fatalf("queued = %d after drain, want 0 (cancelled item leaked)", eng.queued)
	}
	// The freelist must now hold both items.
	free := 0
	for idx := eng.freeHead; idx >= 0; idx = eng.items[idx].next {
		free++
	}
	if free != len(eng.items) {
		t.Fatalf("freelist holds %d of %d items", free, len(eng.items))
	}
}

// TestSteadyStateNoAlloc: once warm, the schedule→fire→recycle cycle must
// not allocate.
func TestSteadyStateNoAlloc(t *testing.T) {
	eng := New(1)
	fn := func() {}
	// Warm the arena.
	for i := 0; i < 64; i++ {
		eng.Schedule(time.Duration(i)*time.Millisecond, fn)
	}
	eng.Run(time.Second)
	allocs := testing.AllocsPerRun(1000, func() {
		eng.Schedule(500*time.Microsecond, fn)
		eng.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocates %.1f per op, want 0", allocs)
	}
}

// TestRandNotExported audits the engine's surface for satellite "rand
// behind a method": the random source must be reachable only through
// Rand(), never as a mutable exported field.
func TestRandNotExported(t *testing.T) {
	typ := reflect.TypeOf(Engine{})
	for i := 0; i < typ.NumField(); i++ {
		if f := typ.Field(i); f.IsExported() {
			t.Errorf("Engine exports field %q; the engine's state (including its rand source) must stay method-gated", f.Name)
		}
	}
	// Same seed, same draw sequence through the method.
	a, b := New(99), New(99)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("Rand() draws diverge for identical seeds")
		}
	}
}

// TestCheckQueueDetectsCorruption proves the audit actually fires on a
// broken invariant, not just on healthy queues.
func TestCheckQueueDetectsCorruption(t *testing.T) {
	eng := New(1)
	eng.Schedule(time.Hour, func() {}) // long horizon: heap-resident
	if err := eng.CheckQueue(); err != nil {
		t.Fatalf("healthy queue reported %v", err)
	}
	eng.livePending++ // corrupt the counter
	if err := eng.CheckQueue(); err == nil {
		t.Fatal("CheckQueue missed a corrupted live-pending counter")
	}
	eng.livePending--
	eng.items[eng.heap[0]].pos = 7 // corrupt a heap back-pointer
	if err := eng.CheckQueue(); err == nil {
		t.Fatal("CheckQueue missed a corrupted heap back-pointer")
	}
}
