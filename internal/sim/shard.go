// Sharded execution: N engines advancing concurrently under a conservative
// (Chandy–Misra–Bryant-style) time-window protocol.
//
// The partition is by host: every mutable object (a connection, a pipe, a
// receiver) lives on exactly one shard and is only ever touched by events
// executing on that shard's engine. Shards interact exclusively through
// CrossLinks — mailboxes modelling links whose propagation delay is known
// and positive. That minimum delay is the protocol's lookahead L: an event
// executing at time t on one shard can only affect another shard at t+L or
// later, so every shard may safely run the window [T, min_next+L) in
// parallel, where min_next is the earliest pending event across all shards.
// At the window boundary all shards barrier, posted messages are merged and
// injected, and the next window begins.
//
// # Determinism
//
// The merged execution must stay byte-identical to the serial engine, which
// orders equal-time events by global schedule sequence. Three properties
// deliver that:
//
//  1. Within a shard, callbacks execute in the same order as serial (the
//     shard's events are a subsequence of the serial stream), so their
//     Schedule calls assign locally increasing sequence numbers in the same
//     relative order.
//  2. Cross-shard messages are injected at barriers sorted by
//     (deliver-time, post-time, source shard, post-sequence). For messages
//     from one source this equals the serial scheduling order exactly; for
//     multiple sources it equals serial whenever deliver times differ
//     (equal-time cross-source ties would need the serial interleaving of
//     the posts, which no longer exists — the differential tests gate that
//     such ties do not occur in the modelled workloads).
//  3. Work that must observe a globally consistent cut (warmup snapshots,
//     invariant audits) runs as a "global" at a barrier whose cut time
//     clamps the window, with every shard's clock advanced to the cut.
//
// The golden telemetry trace and the serial-vs-sharded grid differentials
// pin all three properties.
package sim

import (
	"fmt"
	"math"
	"time"
)

// crossMsg is one in-flight cross-shard delivery.
type crossMsg struct {
	arg    any
	at     time.Duration // delivery time on the destination shard
	posted time.Duration // source virtual time at Post
	seq    uint64        // per-link post sequence (FIFO tie-break)
	link   *CrossLink
}

// CrossLink is a one-directional mailbox between two shards. The source
// shard posts deliveries during its window (Post is only safe from events
// executing on the source engine); at each barrier the sharded engine
// drains every link, merges the messages deterministically and hands them
// to the link's injector on the destination engine.
type CrossLink struct {
	se       *ShardedEngine
	src, dst int
	minDelay time.Duration
	inject   func(arg any, at time.Duration)

	// pending is owned by the source shard's goroutine between barriers and
	// by the barrier (single-threaded) during the flush.
	pending []crossMsg
	postSeq uint64
}

// Src and Dst return the link's endpoint shard indexes.
func (l *CrossLink) Src() int { return l.src }

// Dst returns the destination shard index.
func (l *CrossLink) Dst() int { return l.dst }

// SetInjector installs the barrier-side delivery hook: it runs with every
// shard parked, must schedule the argument onto the destination engine at
// the given time (SchedulePAt), and must take custody of the argument so a
// run-end reclaim can reach it.
func (l *CrossLink) SetInjector(fn func(arg any, at time.Duration)) { l.inject = fn }

// Post sends arg across the link, to be delivered delay after the source
// shard's current virtual time. A delay below the link's declared minimum
// would break the conservative lookahead contract and panics — that is a
// topology wiring bug, not a runtime condition.
func (l *CrossLink) Post(arg any, delay time.Duration) {
	if delay < l.minDelay {
		panic(fmt.Sprintf("sim: cross-link %d→%d post with delay %v below lookahead %v",
			l.src, l.dst, delay, l.minDelay))
	}
	now := l.se.shards[l.src].Now()
	l.pending = append(l.pending, crossMsg{
		arg: arg, at: now + delay, posted: now, seq: l.postSeq, link: l,
	})
	l.postSeq++
}

// Pending returns how many messages are posted but not yet injected. Only
// meaningful at a barrier or after the run.
func (l *CrossLink) Pending() int { return len(l.pending) }

// DrainPending removes every posted-but-not-injected message, calling fn on
// each argument — the run-end reclaim for messages posted during the final
// window. Single-threaded use only (after Run returns).
func (l *CrossLink) DrainPending(fn func(any)) {
	for i := range l.pending {
		fn(l.pending[i].arg)
		l.pending[i] = crossMsg{}
	}
	l.pending = l.pending[:0]
}

// globalEvent is a callback that fires at a consistent cut: every shard has
// executed all events strictly before At, none at or after it, and every
// clock reads At.
type globalEvent struct {
	at    time.Duration
	every time.Duration // 0 = one-shot
	fn    func()
	done  bool
}

// shardWorker is the persistent goroutine driving one non-zero shard, fed
// one window bound per iteration. Channel handoff gives the barrier its
// happens-before edges, so the protocol is race-clean by construction.
type shardWorker struct {
	eng  *Engine
	win  chan time.Duration
	done chan struct{}
}

func (w *shardWorker) loop() {
	for until := range w.win {
		w.eng.RunUntil(until)
		w.done <- struct{}{}
	}
}

// ShardedEngine owns N engines and coordinates their conservative windows.
// Build the topology (links, globals, barrier hooks) single-threaded, then
// call Run once.
type ShardedEngine struct {
	shards    []*Engine
	links     []*CrossLink
	globals   []*globalEvent
	onBarrier []func()
	lookahead time.Duration

	globalsRun uint64
	inbox      []crossMsg
	workers    []*shardWorker
}

// NewSharded returns n engines under one window coordinator. Shard 0 is
// seeded with seed — its RNG stream is identical to a serial New(seed)
// engine, which is what keeps shard-0-resident randomness (loss draws,
// stagger jitter) byte-identical to serial. Other shards get offset seeds;
// a byte-identical partition must keep them RNG-free.
func NewSharded(seed int64, n int) *ShardedEngine {
	if n < 1 {
		panic("sim: NewSharded needs at least one shard")
	}
	s := &ShardedEngine{lookahead: time.Duration(math.MaxInt64)}
	for i := 0; i < n; i++ {
		s.shards = append(s.shards, New(seed+int64(i)*1_000_003))
	}
	return s
}

// Shards returns the shard count.
func (s *ShardedEngine) Shards() int { return len(s.shards) }

// Shard returns the i-th engine. Components are built against the engine of
// the shard that owns them, exactly as they would be against a serial one.
func (s *ShardedEngine) Shard(i int) *Engine { return s.shards[i] }

// Lookahead returns the protocol lookahead: the minimum declared delay
// across all links (MaxInt64 before the first link).
func (s *ShardedEngine) Lookahead() time.Duration { return s.lookahead }

// NewLink declares a one-directional cross-shard mailbox whose deliveries
// are always at least minDelay of virtual time in the future. minDelay must
// be positive (a zero-lookahead link admits no conservative window) and the
// endpoints distinct.
func (s *ShardedEngine) NewLink(src, dst int, minDelay time.Duration) *CrossLink {
	if src == dst || src < 0 || dst < 0 || src >= len(s.shards) || dst >= len(s.shards) {
		panic(fmt.Sprintf("sim: cross-link endpoints %d→%d invalid for %d shards", src, dst, len(s.shards)))
	}
	if minDelay <= 0 {
		panic("sim: cross-link needs a positive minimum delay (the lookahead)")
	}
	l := &CrossLink{se: s, src: src, dst: dst, minDelay: minDelay}
	s.links = append(s.links, l)
	if minDelay < s.lookahead {
		s.lookahead = minDelay
	}
	return l
}

// GlobalAt schedules fn once at a consistent cut at virtual time at: every
// shard will have executed all events strictly before at and none at or
// after it. Serial equivalence: an event scheduled far in advance carries a
// low sequence number, so it too runs before same-instant work scheduled
// later — the cut reproduces that ordering without a shared counter.
func (s *ShardedEngine) GlobalAt(at time.Duration, fn func()) {
	if at < 0 {
		at = 0
	}
	s.globals = append(s.globals, &globalEvent{at: at, fn: fn})
}

// GlobalEvery schedules fn at every multiple of interval (first at
// interval), each at a consistent cut — the sharded form of a
// self-rescheduling periodic engine event (audit ticks, interval reports).
func (s *ShardedEngine) GlobalEvery(interval time.Duration, fn func()) {
	if interval <= 0 {
		panic("sim: GlobalEvery needs a positive interval")
	}
	s.globals = append(s.globals, &globalEvent{at: interval, every: interval, fn: fn})
}

// OnBarrier registers fn to run at every window barrier, after messages are
// merged and with every shard parked — the hook for cross-shard bookkeeping
// like pool-freelist rebalancing.
func (s *ShardedEngine) OnBarrier(fn func()) { s.onBarrier = append(s.onBarrier, fn) }

// SetLimits installs the budget on every shard.
func (s *ShardedEngine) SetLimits(l Limits) {
	for _, e := range s.shards {
		e.SetLimits(l)
	}
}

// LimitErr returns the first shard's tripped budget, or nil.
func (s *ShardedEngine) LimitErr() error {
	for _, e := range s.shards {
		if err := e.LimitErr(); err != nil {
			return err
		}
	}
	return nil
}

// Processed returns the events executed across all shards plus the global
// callbacks fired at cuts. Globals are ordinary engine events in a serial
// run, so this total is integer-identical to the serial engine's Processed
// for a byte-identical partition — grid rows and archives carry it.
func (s *ShardedEngine) Processed() uint64 {
	n := s.globalsRun
	for _, e := range s.shards {
		n += e.Processed()
	}
	return n
}

// Pending sums the scheduled (non-cancelled) events across shards.
func (s *ShardedEngine) Pending() int {
	n := 0
	for _, e := range s.shards {
		n += e.Pending()
	}
	return n
}

// CheckQueues audits every shard's scheduler accounting.
func (s *ShardedEngine) CheckQueues() error {
	for i, e := range s.shards {
		if err := e.CheckQueue(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// nextGlobal returns the earliest pending global (ties broken by
// registration order — the slice order), or nil.
func (s *ShardedEngine) nextGlobal() *globalEvent {
	var g *globalEvent
	for _, e := range s.globals {
		if e.done {
			continue
		}
		if g == nil || e.at < g.at {
			g = e
		}
	}
	return g
}

// fireGlobalsAt runs every global due exactly at the cut, in registration
// order, counting each as one processed event (its serial identity).
func (s *ShardedEngine) fireGlobalsAt(at time.Duration) {
	for _, g := range s.globals {
		if g.done || g.at != at {
			continue
		}
		g.fn()
		s.globalsRun++
		if g.every > 0 {
			g.at += g.every
		} else {
			g.done = true
		}
	}
}

// flushLinks merges every link's posted messages and injects them in the
// deterministic (at, posted, src, seq) order. Runs at a barrier. The merge
// buffer is insertion-sorted: per-window batches are small (a window spans
// one lookahead of traffic) and the sort must not allocate.
func (s *ShardedEngine) flushLinks() {
	buf := s.inbox[:0]
	for _, l := range s.links {
		for i := range l.pending {
			m := l.pending[i]
			l.pending[i] = crossMsg{}
			j := len(buf)
			buf = append(buf, m)
			for j > 0 && crossLess(&m, &buf[j-1]) {
				buf[j] = buf[j-1]
				j--
			}
			buf[j] = m
		}
		l.pending = l.pending[:0]
	}
	for i := range buf {
		buf[i].link.inject(buf[i].arg, buf[i].at)
		buf[i] = crossMsg{}
	}
	s.inbox = buf[:0]
}

// crossLess is the deterministic cross-shard merge order.
func crossLess(a, b *crossMsg) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.posted != b.posted {
		return a.posted < b.posted
	}
	if a.link.src != b.link.src {
		return a.link.src < b.link.src
	}
	return a.seq < b.seq
}

// startWorkers spawns the persistent per-shard goroutines (shard 0 runs on
// the caller's goroutine).
func (s *ShardedEngine) startWorkers() {
	for _, e := range s.shards[1:] {
		w := &shardWorker{eng: e, win: make(chan time.Duration), done: make(chan struct{})}
		s.workers = append(s.workers, w)
		go w.loop()
	}
}

// stopWorkers retires the worker goroutines.
func (s *ShardedEngine) stopWorkers() {
	for _, w := range s.workers {
		close(w.win)
	}
	s.workers = nil
}

// runWindow advances every shard concurrently to the window bound
// (exclusive) and barriers.
func (s *ShardedEngine) runWindow(until time.Duration) {
	for _, w := range s.workers {
		w.win <- until
	}
	s.shards[0].RunUntil(until)
	for _, w := range s.workers {
		<-w.done
	}
}

// Run executes the window loop until the virtual clock reaches end or no
// work remains, mirroring Engine.Run's contract: events at exactly end are
// executed, and every shard's clock finishes at end even if the queues
// drain early. On a tripped budget (SetLimits) it stops without advancing,
// exactly as the serial engine does; inspect LimitErr.
func (s *ShardedEngine) Run(end time.Duration) {
	if len(s.shards) == 1 && len(s.globals) == 0 {
		// Degenerate single shard: the serial engine, bit for bit.
		s.shards[0].Run(end)
		return
	}
	s.startWorkers()
	defer s.stopWorkers()
	for {
		if s.LimitErr() != nil {
			return
		}
		minNext := time.Duration(math.MaxInt64)
		have := false
		for _, e := range s.shards {
			if t, ok := e.NextEventTime(); ok && t < minNext {
				minNext, have = t, true
			}
		}
		g := s.nextGlobal()
		if g != nil && g.at > end {
			g = nil // past the horizon; serial would never run it either
		}
		if (!have || minNext > end) && g == nil {
			break
		}
		if g != nil && (!have || g.at <= minNext) {
			// Consistent cut: all events before g.at have run everywhere.
			for _, e := range s.shards {
				e.AdvanceTo(g.at)
			}
			s.fireGlobalsAt(g.at)
			continue
		}
		until := minNext + s.lookahead
		if len(s.links) == 0 {
			// No cross-shard traffic: the shards are independent and may
			// run straight to the next cut.
			until = end + 1
		}
		if until > end {
			until = end + 1 // events at exactly end are inclusive
		}
		if g != nil && until > g.at {
			until = g.at
		}
		s.runWindow(until)
		s.flushLinks()
		for _, fn := range s.onBarrier {
			fn()
		}
	}
	for _, e := range s.shards {
		e.AdvanceTo(end)
	}
}
