package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run(time.Second)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if e.Now() != time.Second {
		t.Errorf("Now() = %v, want 1s after Run(1s)", e.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	e.Run(time.Second)
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := New(1)
	fired := false
	e.Schedule(-time.Second, func() { fired = true })
	e.Step()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if e.Now() != 0 {
		t.Errorf("clock moved backwards to %v", e.Now())
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.Schedule(10*time.Millisecond, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending after Schedule")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.Run(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := New(1)
	tm := e.Schedule(time.Millisecond, func() {})
	e.Run(time.Second)
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		if ticks < 5 {
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run(time.Second)
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
	if got := e.Now(); got != time.Second {
		t.Fatalf("Now() = %v, want 1s", got)
	}
}

func TestRunStopsAtEnd(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Second
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.Run(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events before 3s, want 3 (inclusive end)", len(fired))
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	// Resume and finish.
	e.Run(10 * time.Second)
	if len(fired) != 5 {
		t.Fatalf("fired %d after resume, want 5", len(fired))
	}
}

func TestScheduleAt(t *testing.T) {
	e := New(1)
	var at time.Duration = -1
	e.ScheduleAt(42*time.Millisecond, func() { at = e.Now() })
	e.Run(time.Second)
	if at != 42*time.Millisecond {
		t.Fatalf("event ran at %v, want 42ms", at)
	}
}

func TestRunAll(t *testing.T) {
	e := New(1)
	n := 0
	var spin func()
	spin = func() {
		n++
		if n < 100 {
			e.Schedule(time.Microsecond, spin)
		}
	}
	e.Schedule(0, spin)
	if !e.RunAll(1000) {
		t.Fatal("RunAll should drain")
	}
	if n != 100 {
		t.Fatalf("n = %d, want 100", n)
	}

	// Runaway chain is bounded.
	e2 := New(1)
	var forever func()
	forever = func() { e2.Schedule(time.Microsecond, forever) }
	e2.Schedule(0, forever)
	if e2.RunAll(50) {
		t.Fatal("RunAll should report not-drained for unbounded chain")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int64 {
		e := New(42)
		var out []int64
		for i := 0; i < 20; i++ {
			d := time.Duration(e.Rand().Intn(1000)) * time.Microsecond
			e.Schedule(d, func() { out = append(out, int64(e.Now())) })
		}
		e.Run(time.Second)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different event counts across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock never runs backwards.
func TestMonotonicClockProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New(7)
		var times []time.Duration
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Microsecond, func() {
				times = append(times, e.Now())
			})
		}
		e.Run(time.Hour)
		if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
			return false
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling nil event")
		}
	}()
	New(1).Schedule(0, nil)
}

func TestMaxPendingHighWater(t *testing.T) {
	e := New(1)
	if e.MaxPending() != 0 {
		t.Fatalf("fresh engine MaxPending = %d", e.MaxPending())
	}
	// Queue depth peaks at 10 while scheduling, then drains to 0.
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.Run(time.Second)
	if e.Pending() != 0 {
		t.Errorf("pending after run = %d", e.Pending())
	}
	if e.MaxPending() != 10 {
		t.Errorf("MaxPending = %d, want 10", e.MaxPending())
	}
}

func TestStallWatchdog(t *testing.T) {
	e := New(1)
	e.SetLimits(Limits{MaxStall: 1000})
	// A zero-delay self-rescheduling loop never advances the clock; the
	// stall watchdog must trip long before any event budget would.
	var spin func()
	spin = func() { e.Schedule(0, spin) }
	e.Schedule(time.Millisecond, spin)
	e.Run(time.Second)
	err := e.LimitErr()
	if err == nil {
		t.Fatal("stalled run returned no limit error")
	}
	le, ok := err.(*LimitError)
	if !ok {
		t.Fatalf("error is %T, want *LimitError: %v", err, err)
	}
	if le.Reason != "stall" {
		t.Fatalf("reason = %q, want stall: %v", le.Reason, le)
	}
	if le.Now != time.Millisecond {
		t.Errorf("stall detected at %v, want 1ms", le.Now)
	}
	if le.StallEvents < 1000 {
		t.Errorf("StallEvents = %d, want >= 1000", le.StallEvents)
	}
}

func TestStallWatchdogAllowsSameInstantBursts(t *testing.T) {
	e := New(1)
	e.SetLimits(Limits{MaxStall: 100})
	// 50 events per instant across many instants: the counter resets each
	// time the clock advances, so no trip.
	for ms := 1; ms <= 20; ms++ {
		for i := 0; i < 50; i++ {
			e.Schedule(time.Duration(ms)*time.Millisecond, func() {})
		}
	}
	e.Run(time.Second)
	if err := e.LimitErr(); err != nil {
		t.Fatalf("bursty but advancing run tripped the watchdog: %v", err)
	}
}
