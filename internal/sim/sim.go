// Package sim implements a deterministic discrete-event simulation engine:
// a virtual clock, an event heap, and cancellable timers. Every component of
// the testbed (CPU model, links, queues, TCP endpoints, pacers) schedules
// work on a single Engine, so a whole experiment runs single-threaded and
// reproducibly from a seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event func()

// Timer is a handle to a scheduled event that can be stopped or rescheduled.
type Timer struct {
	eng  *Engine
	item *eventItem
}

// Stop cancels the timer if it has not fired. It reports whether the timer
// was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.item == nil || t.item.cancelled || t.item.fired {
		return false
	}
	t.item.cancelled = true
	return true
}

// Pending reports whether the timer is scheduled and has not yet fired.
func (t *Timer) Pending() bool {
	return t != nil && t.item != nil && !t.item.cancelled && !t.item.fired
}

// When returns the virtual time the timer will fire at. It is only
// meaningful while the timer is pending.
func (t *Timer) When() time.Duration {
	if t == nil || t.item == nil {
		return 0
	}
	return t.item.at
}

type eventItem struct {
	at        time.Duration
	seq       uint64 // tie-break so equal-time events run in schedule order
	fn        Event
	cancelled bool
	fired     bool
	index     int
}

type eventHeap []*eventItem

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	it := x.(*eventItem)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// Limits bounds a run so a mis-wired experiment terminates with a
// diagnostic instead of looping forever. The zero value means unlimited.
type Limits struct {
	// MaxEvents stops the run after this many events have executed.
	MaxEvents uint64
	// WallClock stops the run after this much real (host) time.
	WallClock time.Duration
}

// LimitError reports that a run hit its event or wall-clock budget. It
// carries enough context to diagnose the runaway: the virtual time the
// engine reached, the time of the last-scheduled event, and the queue depth.
type LimitError struct {
	// Reason is "max-events" or "wall-clock".
	Reason string
	// Processed is the number of events executed when the budget tripped.
	Processed uint64
	// Now is the virtual time reached.
	Now time.Duration
	// LastScheduled is the virtual time of the most recently scheduled
	// event — where the runaway chain was headed.
	LastScheduled time.Duration
	// Pending is the number of events still queued.
	Pending int
	// Elapsed is the real time spent (set for wall-clock trips).
	Elapsed time.Duration
}

// Error implements error.
func (e *LimitError) Error() string {
	if e.Reason == "wall-clock" {
		return fmt.Sprintf("sim: wall-clock budget exceeded after %v (virtual time %v, %d events, last event scheduled at %v, %d pending)",
			e.Elapsed, e.Now, e.Processed, e.LastScheduled, e.Pending)
	}
	return fmt.Sprintf("sim: event budget exceeded after %d events (virtual time %v, last event scheduled at %v, %d pending)",
		e.Processed, e.Now, e.LastScheduled, e.Pending)
}

// wallCheckEvery is how many events run between wall-clock checks; reading
// the host clock per event would dominate the hot loop.
const wallCheckEvery = 8192

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	rng    *rand.Rand
	// processed counts events executed, useful for runaway detection in tests.
	processed uint64

	limits        Limits
	wallStart     time.Time
	lastScheduled time.Duration
	limitErr      *LimitError

	// maxPending is the event queue's high-water mark (includes cancelled
	// items still in the heap — the memory the queue actually held).
	maxPending int
}

// New returns an Engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// SetLimits installs an event/wall-clock budget. The wall clock starts
// counting when SetLimits is called. Zero fields are unlimited.
func (e *Engine) SetLimits(l Limits) {
	e.limits = l
	e.wallStart = time.Now()
	e.limitErr = nil
}

// LimitErr returns the budget violation that stopped the run, or nil. Once
// the budget trips, Step and Run execute no further events until SetLimits
// is called again.
func (e *Engine) LimitErr() error {
	if e.limitErr == nil {
		return nil
	}
	return e.limitErr
}

// overBudget checks the limits and records a LimitError on the first trip.
func (e *Engine) overBudget() bool {
	if e.limitErr != nil {
		return true
	}
	if e.limits.MaxEvents > 0 && e.processed >= e.limits.MaxEvents {
		e.limitErr = &LimitError{
			Reason:        "max-events",
			Processed:     e.processed,
			Now:           e.now,
			LastScheduled: e.lastScheduled,
			Pending:       e.Pending(),
		}
		return true
	}
	if e.limits.WallClock > 0 && e.processed%wallCheckEvery == 0 {
		if elapsed := time.Since(e.wallStart); elapsed > e.limits.WallClock {
			e.limitErr = &LimitError{
				Reason:        "wall-clock",
				Processed:     e.processed,
				Now:           e.now,
				LastScheduled: e.lastScheduled,
				Pending:       e.Pending(),
				Elapsed:       elapsed,
			}
			return true
		}
	}
	return false
}

// Now returns the current virtual time, measured from the start of the run.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (run as soon as the current event completes).
func (e *Engine) Schedule(delay time.Duration, fn Event) *Timer {
	if fn == nil {
		panic("sim: Schedule with nil event")
	}
	if delay < 0 {
		delay = 0
	}
	it := &eventItem{at: e.now + delay, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, it)
	if n := len(e.events); n > e.maxPending {
		e.maxPending = n
	}
	e.lastScheduled = it.at
	return &Timer{eng: e, item: it}
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to now.
func (e *Engine) ScheduleAt(at time.Duration, fn Event) *Timer {
	return e.Schedule(at-e.now, fn)
}

// Step executes the next pending event. It reports whether an event ran.
// Once the engine's budget (SetLimits) has tripped, Step runs nothing and
// returns false; inspect LimitErr.
func (e *Engine) Step() bool {
	if e.overBudget() {
		return false
	}
	for len(e.events) > 0 {
		it := heap.Pop(&e.events).(*eventItem)
		if it.cancelled {
			continue
		}
		if it.at < e.now {
			panic(fmt.Sprintf("sim: event scheduled at %v before now %v", it.at, e.now))
		}
		e.now = it.at
		it.fired = true
		e.processed++
		it.fn()
		return true
	}
	return false
}

// Run executes events until the virtual clock reaches end or no events
// remain. Events scheduled exactly at end are executed. The clock is
// advanced to end even if the event queue drains early, so subsequent
// measurements see a consistent elapsed time.
func (e *Engine) Run(end time.Duration) {
	for len(e.events) > 0 {
		// Peek at the next runnable event.
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > end {
			break
		}
		if !e.Step() {
			// Budget tripped; stop without advancing the clock so the
			// diagnostic reflects where the run actually got to.
			return
		}
	}
	if e.now < end {
		e.now = end
	}
}

// RunAll executes events until the queue drains or maxEvents events have
// run, whichever comes first. It reports whether the queue drained.
func (e *Engine) RunAll(maxEvents uint64) bool {
	for n := uint64(0); n < maxEvents; n++ {
		if !e.Step() {
			return true
		}
	}
	return len(e.events) == 0
}

// MaxPending returns the event queue's high-water mark over the run.
func (e *Engine) MaxPending() int { return e.maxPending }

// Pending returns the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, it := range e.events {
		if !it.cancelled {
			n++
		}
	}
	return n
}
