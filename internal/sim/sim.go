// Package sim implements a deterministic discrete-event simulation engine:
// a virtual clock, a hybrid timer queue (a hierarchical timer wheel for
// short-horizon timers over an inlined 4-ary min-heap), and cancellable
// timers. Every component of the testbed (CPU model, links, queues, TCP
// endpoints, pacers) schedules work on a single Engine, so a whole
// experiment runs single-threaded and reproducibly from a seed.
//
// # Scheduler internals
//
// Events live in a freelist-backed arena ([]eventItem indexed by int32), so
// steady-state scheduling performs no heap allocation and no interface
// boxing: fired and cancelled items are recycled, and Timer handles are
// plain values carrying (engine, index, generation). A generation counter
// per slot makes stale handles inert after their item is recycled.
//
// Short-horizon timers (the pacing and delayed-ACK timers that dominate the
// paper's workload) are bucketed into a two-level timer wheel — level 0
// covers ~16 ms at 64 µs granularity, level 1 covers ~4.2 s at 16 ms
// granularity — with O(1) insert and cancel. Longer or too-late timers fall
// back to the 4-ary min-heap. Before any event executes, every wheel slot
// whose window could precede the heap top is flushed into the heap, so the
// ordering contract is exactly the heap's: events fire in (time, seq) order,
// where seq is the global schedule sequence number — bit-identical to a
// single binary-heap implementation. The differential and golden-trace tests
// pin this contract.
package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event func()

// Item location states.
const (
	wFree   uint8 = iota // on the freelist
	wHeap                // resident in the 4-ary heap
	wWheel0              // resident in wheel level 0
	wWheel1              // resident in wheel level 1
	wFiring              // popped, callback currently executing
)

// eventItem is one arena slot. Items are recycled through a freelist; gen
// increments on every recycle so stale Timer handles cannot touch the new
// occupant.
type eventItem struct {
	at  time.Duration
	seq uint64 // tie-break so equal-time events run in schedule order
	fn  Event
	// pfn/arg are the ScheduleP form: a shared callback plus a pointer-shaped
	// argument, so deferring a packet/ACK delivery needs no per-event closure.
	// Exactly one of fn and pfn is set on a live item.
	pfn       func(any)
	arg       any
	next      int32 // freelist / wheel-slot chain link
	pos       int32 // index in the heap slice, -1 when not heap-resident
	gen       uint32
	where     uint8
	cancelled bool
}

// Timer is a value handle to a scheduled event that can be stopped or
// rescheduled in place. The zero Timer is inert: Stop, Pending and
// Reschedule report false, When reports 0.
type Timer struct {
	eng *Engine
	idx int32
	gen uint32
}

// live returns the handle's arena item if the handle still refers to it.
func (t Timer) live() *eventItem {
	if t.eng == nil {
		return nil
	}
	it := &t.eng.items[t.idx]
	if it.gen != t.gen || it.where == wFree {
		return nil
	}
	return it
}

// Stop cancels the timer if it has not fired. It reports whether the timer
// was still pending. The item stays queued until the scheduler next passes
// it (pop or wheel flush), at which point it is reclaimed to the freelist.
func (t Timer) Stop() bool {
	it := t.live()
	if it == nil || it.cancelled || it.where == wFiring {
		return false
	}
	it.cancelled = true
	t.eng.livePending--
	return true
}

// Pending reports whether the timer is scheduled and has not yet fired.
func (t Timer) Pending() bool {
	it := t.live()
	return it != nil && !it.cancelled && it.where != wFiring
}

// When returns the virtual time the timer will fire at. It is only
// meaningful while the timer is pending.
func (t Timer) When() time.Duration {
	it := t.live()
	if it == nil {
		return 0
	}
	return it.at
}

// Reschedule moves the timer to fire after delay of virtual time, reusing
// its queue entry and callback instead of cancel+Schedule — the fast path
// for the pacing, delayed-ACK and RTO timers that re-arm constantly. It
// works on a pending, stopped-but-not-reclaimed, or currently-firing timer
// and reports whether it succeeded; on false the timer is gone (fired and
// reclaimed, or never scheduled) and the caller must Schedule afresh.
// A successful Reschedule consumes one sequence number, exactly as
// Stop+Schedule would, so event ordering is unchanged between the two forms.
func (t *Timer) Reschedule(delay time.Duration) bool {
	e := t.eng
	if e == nil {
		return false
	}
	it := &e.items[t.idx]
	if it.gen != t.gen || it.where == wFree || (it.fn == nil && it.pfn == nil) {
		return false
	}
	if delay < 0 {
		delay = 0
	}
	at := e.now + delay
	seq := e.seq
	e.seq++
	switch it.where {
	case wHeap:
		if it.cancelled {
			it.cancelled = false
			e.livePending++
		}
		it.at, it.seq = at, seq
		e.heapFix(int(it.pos))
	case wWheel0, wWheel1:
		// Wheel slots are singly-linked: unlinking mid-chain is O(slot), so
		// retire this entry (reclaimed at flush) and take a fresh one.
		fn, pfn, arg := it.fn, it.pfn, it.arg
		if !it.cancelled {
			it.cancelled = true
			e.livePending--
		}
		nidx := e.alloc()
		nit := &e.items[nidx]
		nit.at, nit.seq, nit.fn = at, seq, fn
		nit.pfn, nit.arg = pfn, arg
		e.place(nidx)
		e.noteQueued()
		t.idx, t.gen = nidx, nit.gen
	case wFiring:
		// Re-arming from inside the callback: the item re-enters the queue
		// instead of being reclaimed when the callback returns.
		it.at, it.seq = at, seq
		e.place(t.idx)
		e.noteQueued()
	}
	e.lastScheduled = at
	return true
}

// Timer wheel geometry. Level 0 buckets the short-horizon timers (pacing
// gaps, delayed-ACK flushes, CPU-op completions); level 1 holds the
// RTO/watchdog band. Anything beyond level 1's span — or scheduled into an
// already-flushed window — falls back to the heap.
const (
	wheelSlots = 256
	wheelWords = wheelSlots / 64
	wheelGran0 = 64 * time.Microsecond
	wheelGran1 = wheelGran0 * wheelSlots // ≈16.4 ms; span ≈4.2 s
)

// wheelLevel is one ring of slots. Invariant: every resident item's tick
// (at/gran) lies in [tick, tick+wheelSlots), so slot index tick%wheelSlots
// is collision-free and occupancy distance from the cursor orders slots.
type wheelLevel struct {
	slots [wheelSlots]int32
	occ   [wheelWords]uint64
	tick  int64 // next tick to flush; slot windows before it are empty
	count int
}

func (l *wheelLevel) init() {
	for i := range l.slots {
		l.slots[i] = -1
	}
}

// insert links idx into the slot for tick.
func (l *wheelLevel) insert(items []eventItem, idx int32, tick int64) {
	slot := int(uint64(tick) % wheelSlots)
	items[idx].next = l.slots[slot]
	l.slots[slot] = idx
	l.occ[slot>>6] |= 1 << uint(slot&63)
	l.count++
}

// firstTick returns the tick of the earliest non-empty slot.
func (l *wheelLevel) firstTick() (int64, bool) {
	if l.count == 0 {
		return 0, false
	}
	start := int(uint64(l.tick) % wheelSlots)
	w, bit := start>>6, uint(start&63)
	if m := l.occ[w] &^ (1<<bit - 1); m != 0 {
		return l.tick + int64(w<<6+bits.TrailingZeros64(m)-start), true
	}
	for i := 1; i <= wheelWords; i++ {
		wi := (w + i) & (wheelWords - 1)
		m := l.occ[wi]
		if wi == w {
			m &= 1<<bit - 1
		}
		if m == 0 {
			continue
		}
		d := wi<<6 + bits.TrailingZeros64(m) - start
		if d < 0 {
			d += wheelSlots
		}
		return l.tick + int64(d), true
	}
	return 0, false
}

// take empties the slot for tick, advances the cursor past it, and returns
// the chain head.
func (l *wheelLevel) take(tick int64) int32 {
	slot := int(uint64(tick) % wheelSlots)
	head := l.slots[slot]
	l.slots[slot] = -1
	l.occ[slot>>6] &^= 1 << uint(slot&63)
	l.tick = tick + 1
	return head
}

// Limits bounds a run so a mis-wired experiment terminates with a
// diagnostic instead of looping forever. The zero value means unlimited.
type Limits struct {
	// MaxEvents stops the run after this many events have executed.
	MaxEvents uint64
	// WallClock stops the run after this much real (host) time.
	WallClock time.Duration
	// MaxStall stops the run after this many consecutive events executed
	// without the virtual clock advancing — a zero-delay self-rescheduling
	// loop churns events forever at one instant, which MaxEvents alone
	// only catches after the full (much larger) event budget. Legitimate
	// same-instant bursts (ACK batches, queue drains) are orders of
	// magnitude smaller than any useful setting.
	MaxStall uint64
}

// LimitError reports that a run hit its event or wall-clock budget. It
// carries enough context to diagnose the runaway: the virtual time the
// engine reached, the time of the last-scheduled event, and the queue depth.
type LimitError struct {
	// Reason is "max-events", "wall-clock" or "stall".
	Reason string
	// Processed is the number of events executed when the budget tripped.
	Processed uint64
	// Now is the virtual time reached.
	Now time.Duration
	// LastScheduled is the virtual time of the most recently scheduled
	// event — where the runaway chain was headed.
	LastScheduled time.Duration
	// Pending is the number of events still queued.
	Pending int
	// Elapsed is the real time spent (set for wall-clock trips).
	Elapsed time.Duration
	// StallEvents is how many consecutive events ran at one virtual
	// instant (set for stall trips).
	StallEvents uint64
}

// Error implements error.
func (e *LimitError) Error() string {
	if e.Reason == "wall-clock" {
		return fmt.Sprintf("sim: wall-clock budget exceeded after %v (virtual time %v, %d events, last event scheduled at %v, %d pending)",
			e.Elapsed, e.Now, e.Processed, e.LastScheduled, e.Pending)
	}
	if e.Reason == "stall" {
		return fmt.Sprintf("sim: virtual time stalled: %d consecutive events at %v without the clock advancing (%d events total, %d pending)",
			e.StallEvents, e.Now, e.Processed, e.Pending)
	}
	return fmt.Sprintf("sim: event budget exceeded after %d events (virtual time %v, last event scheduled at %v, %d pending)",
		e.Processed, e.Now, e.LastScheduled, e.Pending)
}

// wallCheckEvery is how many events run between wall-clock checks; reading
// the host clock per event would dominate the hot loop.
const wallCheckEvery = 8192

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Engine struct {
	now time.Duration
	seq uint64

	items    []eventItem
	freeHead int32
	heap     []int32
	w0, w1   wheelLevel

	// livePending counts scheduled, non-cancelled events; queued counts
	// every queue-resident item including cancelled ones awaiting reclaim
	// (the memory the queue actually holds).
	livePending int
	queued      int
	maxPending  int

	rng *rand.Rand
	// processed counts events executed, useful for runaway detection in tests.
	processed uint64

	limits        Limits
	wallStart     time.Time
	lastScheduled time.Duration
	limitErr      *LimitError
	stallRun      uint64
}

// New returns an Engine whose random source is seeded with seed. The source
// is reachable only through Rand(), so a run's randomness cannot be swapped
// out mid-flight.
func New(seed int64) *Engine {
	e := &Engine{rng: rand.New(rand.NewSource(seed)), freeHead: -1}
	e.w0.init()
	e.w1.init()
	return e
}

// SetLimits installs an event/wall-clock budget. The wall clock starts
// counting when SetLimits is called. Zero fields are unlimited.
func (e *Engine) SetLimits(l Limits) {
	e.limits = l
	e.wallStart = time.Now()
	e.limitErr = nil
	e.stallRun = 0
}

// LimitErr returns the budget violation that stopped the run, or nil. Once
// the budget trips, Step and Run execute no further events until SetLimits
// is called again.
func (e *Engine) LimitErr() error {
	if e.limitErr == nil {
		return nil
	}
	return e.limitErr
}

// overBudget checks the limits and records a LimitError on the first trip.
func (e *Engine) overBudget() bool {
	if e.limitErr != nil {
		return true
	}
	if e.limits.MaxEvents > 0 && e.processed >= e.limits.MaxEvents {
		e.limitErr = &LimitError{
			Reason:        "max-events",
			Processed:     e.processed,
			Now:           e.now,
			LastScheduled: e.lastScheduled,
			Pending:       e.Pending(),
		}
		return true
	}
	if e.limits.MaxStall > 0 && e.stallRun >= e.limits.MaxStall {
		e.limitErr = &LimitError{
			Reason:        "stall",
			Processed:     e.processed,
			Now:           e.now,
			LastScheduled: e.lastScheduled,
			Pending:       e.Pending(),
			StallEvents:   e.stallRun,
		}
		return true
	}
	if e.limits.WallClock > 0 && e.processed%wallCheckEvery == 0 {
		if elapsed := time.Since(e.wallStart); elapsed > e.limits.WallClock {
			e.limitErr = &LimitError{
				Reason:        "wall-clock",
				Processed:     e.processed,
				Now:           e.now,
				LastScheduled: e.lastScheduled,
				Pending:       e.Pending(),
				Elapsed:       elapsed,
			}
			return true
		}
	}
	return false
}

// Now returns the current virtual time, measured from the start of the run.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// alloc takes an item from the freelist, growing the arena when empty.
func (e *Engine) alloc() int32 {
	if e.freeHead >= 0 {
		idx := e.freeHead
		e.freeHead = e.items[idx].next
		return idx
	}
	e.items = append(e.items, eventItem{pos: -1, next: -1})
	return int32(len(e.items) - 1)
}

// recycle returns an item to the freelist, bumping its generation so stale
// Timer handles go inert.
func (e *Engine) recycle(idx int32) {
	it := &e.items[idx]
	it.gen++
	it.fn = nil
	it.pfn = nil
	it.arg = nil
	it.cancelled = false
	it.where = wFree
	it.pos = -1
	it.next = e.freeHead
	e.freeHead = idx
}

// place routes an item into wheel level 0, level 1 or the heap by horizon.
func (e *Engine) place(idx int32) {
	it := &e.items[idx]
	t0 := int64(it.at / wheelGran0)
	switch {
	case t0 < e.w0.tick:
		// Window already flushed: the heap is always a correct home.
		it.where = wHeap
		e.heapPush(idx)
	case t0-e.w0.tick < wheelSlots:
		it.where = wWheel0
		e.w0.insert(e.items, idx, t0)
	default:
		t1 := int64(it.at / wheelGran1)
		if t1 >= e.w1.tick && t1-e.w1.tick < wheelSlots {
			it.where = wWheel1
			e.w1.insert(e.items, idx, t1)
		} else {
			it.where = wHeap
			e.heapPush(idx)
		}
	}
}

// noteQueued accounts one more queue-resident item.
func (e *Engine) noteQueued() {
	e.livePending++
	e.queued++
	if e.queued > e.maxPending {
		e.maxPending = e.queued
	}
}

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero (run as soon as the current event completes).
func (e *Engine) Schedule(delay time.Duration, fn Event) Timer {
	if fn == nil {
		panic("sim: Schedule with nil event")
	}
	if delay < 0 {
		delay = 0
	}
	idx := e.alloc()
	it := &e.items[idx]
	it.at = e.now + delay
	it.seq = e.seq
	e.seq++
	it.fn = fn
	e.place(idx)
	e.noteQueued()
	e.lastScheduled = it.at
	return Timer{eng: e, idx: idx, gen: it.gen}
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to now.
func (e *Engine) ScheduleAt(at time.Duration, fn Event) Timer {
	return e.Schedule(at-e.now, fn)
}

// ScheduleP runs fn(arg) after delay of virtual time. It is the
// allocation-free form of Schedule for the data path: fn is a long-lived
// callback shared across events (a pipe's deliver function, a conn's
// ACK-process function) and arg carries the per-event payload. Because arg
// is pointer-shaped (*seg.Packet, *seg.Ack), storing it in the item's `any`
// field does not allocate, where the equivalent closure would.
// Ordering is identical to Schedule: one sequence number per call.
func (e *Engine) ScheduleP(delay time.Duration, fn func(any), arg any) Timer {
	if fn == nil {
		panic("sim: ScheduleP with nil callback")
	}
	if delay < 0 {
		delay = 0
	}
	idx := e.alloc()
	it := &e.items[idx]
	it.at = e.now + delay
	it.seq = e.seq
	e.seq++
	it.pfn = fn
	it.arg = arg
	e.place(idx)
	e.noteQueued()
	e.lastScheduled = it.at
	return Timer{eng: e, idx: idx, gen: it.gen}
}

// SchedulePAt is the absolute-time form of ScheduleP.
func (e *Engine) SchedulePAt(at time.Duration, fn func(any), arg any) Timer {
	return e.ScheduleP(at-e.now, fn, arg)
}

// --- inlined 4-ary min-heap over arena indices ------------------------------

// less orders items by (at, seq) — the engine-wide ordering contract.
func (e *Engine) less(a, b int32) bool {
	ia, ib := &e.items[a], &e.items[b]
	if ia.at != ib.at {
		return ia.at < ib.at
	}
	return ia.seq < ib.seq
}

func (e *Engine) heapPush(idx int32) {
	e.heap = append(e.heap, idx)
	e.items[idx].pos = int32(len(e.heap) - 1)
	e.siftUp(len(e.heap) - 1)
}

func (e *Engine) heapPop() int32 {
	h := e.heap
	top := h[0]
	last := h[len(h)-1]
	e.heap = h[:len(h)-1]
	if len(e.heap) > 0 {
		e.heap[0] = last
		e.items[last].pos = 0
		e.siftDown(0)
	}
	e.items[top].pos = -1
	return top
}

// heapFix restores heap order after the item at position i changed its key.
func (e *Engine) heapFix(i int) {
	e.siftUp(i)
	e.siftDown(i)
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	idx := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !e.less(idx, h[p]) {
			break
		}
		h[i] = h[p]
		e.items[h[p]].pos = int32(i)
		i = p
	}
	h[i] = idx
	e.items[idx].pos = int32(i)
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	idx := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if e.less(h[j], h[best]) {
				best = j
			}
		}
		if !e.less(h[best], idx) {
			break
		}
		h[i] = h[best]
		e.items[h[best]].pos = int32(i)
		i = best
	}
	h[i] = idx
	e.items[idx].pos = int32(i)
}

// --- queue front ------------------------------------------------------------

// flushWheel empties one slot of l: live items are re-placed (level 1 items
// cascade into level 0 or the heap; level 0 items go to the heap), cancelled
// ones are reclaimed to the freelist here instead of leaking until run end.
func (e *Engine) flushWheel(l *wheelLevel, tick int64, cascade bool) {
	idx := l.take(tick)
	for idx >= 0 {
		it := &e.items[idx]
		next := it.next
		l.count--
		if it.cancelled {
			e.queued--
			e.recycle(idx)
		} else if cascade {
			e.place(idx)
		} else {
			it.where = wHeap
			e.heapPush(idx)
		}
		idx = next
	}
}

// nextReady flushes every wheel slot whose window could precede the heap
// top and drops cancelled heap items, until the heap top is the globally
// next live event. It reports whether any event remains.
func (e *Engine) nextReady() bool {
	for {
		for len(e.heap) > 0 {
			top := e.heap[0]
			if !e.items[top].cancelled {
				break
			}
			e.heapPop()
			e.queued--
			e.recycle(top)
		}
		t0, ok0 := e.w0.firstTick()
		t1, ok1 := e.w1.firstTick()
		if !ok0 && !ok1 {
			return len(e.heap) > 0
		}
		var s0, s1 time.Duration
		if ok0 {
			s0 = time.Duration(t0) * wheelGran0
		}
		if ok1 {
			s1 = time.Duration(t1) * wheelGran1
		}
		// The heap top is globally next only if it precedes every
		// occupied wheel window; wheel items never precede their slot
		// start. Flush the coarser level first on ties — its slot may
		// contain times inside the finer slot's window.
		if len(e.heap) > 0 {
			at := e.items[e.heap[0]].at
			if (!ok0 || at < s0) && (!ok1 || at < s1) {
				return true
			}
		}
		if ok1 && (!ok0 || s1 <= s0) {
			e.flushWheel(&e.w1, t1, true)
		} else {
			e.flushWheel(&e.w0, t0, false)
		}
	}
}

// Step executes the next pending event. It reports whether an event ran.
// Once the engine's budget (SetLimits) has tripped, Step runs nothing and
// returns false; inspect LimitErr.
func (e *Engine) Step() bool {
	if e.overBudget() {
		return false
	}
	if !e.nextReady() {
		return false
	}
	idx := e.heapPop()
	e.queued--
	it := &e.items[idx]
	if it.at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", it.at, e.now))
	}
	if it.at == e.now {
		e.stallRun++
	} else {
		e.stallRun = 0
	}
	e.now = it.at
	it.where = wFiring
	e.livePending--
	e.processed++
	if it.pfn != nil {
		pfn, arg := it.pfn, it.arg
		pfn(arg)
	} else {
		fn := it.fn
		fn()
	}
	// The arena may have grown during fn; re-index. Reclaim unless the
	// callback rescheduled its own item back into the queue.
	if e.items[idx].where == wFiring {
		e.recycle(idx)
	}
	return true
}

// Run executes events until the virtual clock reaches end or no events
// remain. Events scheduled exactly at end are executed. The clock is
// advanced to end even if the event queue drains early, so subsequent
// measurements see a consistent elapsed time.
func (e *Engine) Run(end time.Duration) {
	for e.nextReady() {
		if e.items[e.heap[0]].at > end {
			break
		}
		if !e.Step() {
			// Budget tripped; stop without advancing the clock so the
			// diagnostic reflects where the run actually got to.
			return
		}
	}
	if e.now < end {
		e.now = end
	}
}

// RunUntil executes events strictly before the virtual time `before`,
// leaving the clock at the last executed event. Unlike Run it never
// advances the clock past the events it ran, so a caller can keep
// injecting work at times >= before and resume — the sharded engine's
// window loop is built on exactly this contract.
func (e *Engine) RunUntil(before time.Duration) {
	for e.nextReady() {
		if e.items[e.heap[0]].at >= before {
			return
		}
		if !e.Step() {
			return
		}
	}
}

// NextEventTime returns the virtual time of the earliest pending event. The
// second result is false when the queue is empty. The sharded engine's
// conservative window protocol derives each synchronization horizon from it.
func (e *Engine) NextEventTime() (time.Duration, bool) {
	if !e.nextReady() {
		return 0, false
	}
	return e.items[e.heap[0]].at, true
}

// AdvanceTo moves the clock forward to t without executing anything; times
// at or before now are a no-op. The sharded engine uses it at barrier cuts
// so globally scheduled callbacks observe the cut time, and at run end so
// every shard finishes with a consistent elapsed time (matching Run's
// drain-early behaviour).
func (e *Engine) AdvanceTo(t time.Duration) {
	if t > e.now {
		e.now = t
	}
}

// RunAll executes events until the queue drains or maxEvents events have
// run, whichever comes first. It reports whether the queue drained.
func (e *Engine) RunAll(maxEvents uint64) bool {
	for n := uint64(0); n < maxEvents; n++ {
		if !e.Step() {
			return true
		}
	}
	return e.livePending == 0
}

// MaxPending returns the event queue's high-water mark over the run
// (including cancelled items awaiting reclaim — the memory the queue
// actually held).
func (e *Engine) MaxPending() int { return e.maxPending }

// Pending returns the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int { return e.livePending }

// CorruptQueueForTest deliberately skews the live-pending counter so tests
// can prove the queue audit catches real accounting bugs. Test-only.
func (e *Engine) CorruptQueueForTest() { e.livePending++ }

// CheckQueue audits the scheduler's internal accounting: every arena item
// is exactly one of heap-resident (with a correct back-pointer), wheel-
// resident (within its level's window), firing, or free; and the live/queued
// counters match a full walk. The invariant checker calls this each audit
// tick; it returns nil when the queue is consistent.
func (e *Engine) CheckQueue() error {
	seen := make([]uint8, len(e.items))
	for pos, idx := range e.heap {
		it := &e.items[idx]
		if it.where != wHeap {
			return fmt.Errorf("sim: heap slot %d holds item %d in state %d", pos, idx, it.where)
		}
		if int(it.pos) != pos {
			return fmt.Errorf("sim: heap item %d back-pointer %d != position %d", idx, it.pos, pos)
		}
		seen[idx]++
	}
	wheels := [...]struct {
		l    *wheelLevel
		gran time.Duration
		st   uint8
	}{{&e.w0, wheelGran0, wWheel0}, {&e.w1, wheelGran1, wWheel1}}
	wheelCount := 0
	for wi, w := range wheels {
		n := 0
		for slot, head := range w.l.slots {
			occupied := w.l.occ[slot>>6]&(1<<uint(slot&63)) != 0
			if occupied != (head >= 0) {
				return fmt.Errorf("sim: wheel %d slot %d occupancy bit %v but head %d", wi, slot, occupied, head)
			}
			for idx := head; idx >= 0; idx = e.items[idx].next {
				it := &e.items[idx]
				if it.where != w.st {
					return fmt.Errorf("sim: wheel %d slot %d holds item %d in state %d", wi, slot, idx, it.where)
				}
				tick := int64(it.at / w.gran)
				if tick < w.l.tick || tick-w.l.tick >= wheelSlots {
					return fmt.Errorf("sim: wheel %d item %d tick %d outside window [%d, %d)", wi, idx, tick, w.l.tick, w.l.tick+wheelSlots)
				}
				seen[idx]++
				n++
			}
		}
		if n != w.l.count {
			return fmt.Errorf("sim: wheel %d count %d != walked %d", wi, w.l.count, n)
		}
		wheelCount += n
	}
	free := 0
	for idx := e.freeHead; idx >= 0; idx = e.items[idx].next {
		if e.items[idx].where != wFree {
			return fmt.Errorf("sim: freelist holds item %d in state %d", idx, e.items[idx].where)
		}
		seen[idx]++
		free++
	}
	firing, live := 0, 0
	for idx := range e.items {
		it := &e.items[idx]
		if it.where == wFiring {
			firing++
			seen[idx]++
		}
		if seen[idx] != 1 {
			return fmt.Errorf("sim: item %d appears %d times across heap/wheels/freelist (state %d)", idx, seen[idx], it.where)
		}
		if (it.where == wHeap || it.where == wWheel0 || it.where == wWheel1) && !it.cancelled {
			live++
		}
	}
	if firing > 1 {
		return fmt.Errorf("sim: %d items firing at once", firing)
	}
	if queued := len(e.heap) + wheelCount; queued != e.queued {
		return fmt.Errorf("sim: queued counter %d != resident items %d", e.queued, queued)
	}
	if live != e.livePending {
		return fmt.Errorf("sim: live-pending counter %d != walked live items %d", e.livePending, live)
	}
	return nil
}
