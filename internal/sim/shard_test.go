package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// pingHost is a synthetic host for the differential tests: it emits a
// message every period, and every received message triggers a local
// follow-up event after a short think time — enough structure to exercise
// window bounds, barrier injection order and clock advancement. Each host
// logs into its own slice (hosts on different shards must not share mutable
// state; per-host streams are what the determinism claim is about).
type pingHost struct {
	eng    *Engine
	name   string
	period time.Duration
	think  time.Duration
	send   func(id int)
	log    []string
	nextID int
}

func (h *pingHost) start() {
	h.eng.Schedule(h.period, h.tick)
}

func (h *pingHost) tick() {
	id := h.nextID
	h.nextID++
	h.log = append(h.log, fmt.Sprintf("%s send %d @%v", h.name, id, h.eng.Now()))
	h.send(id)
	h.eng.Schedule(h.period, h.tick)
}

func (h *pingHost) recv(id int) {
	h.log = append(h.log, fmt.Sprintf("%s recv %d @%v", h.name, id, h.eng.Now()))
	h.eng.Schedule(h.think, func() {
		h.log = append(h.log, fmt.Sprintf("%s done %d @%v", h.name, id, h.eng.Now()))
	})
}

// buildSerial wires two ping hosts onto one engine, messages delivered by a
// plain Schedule at the link delay.
func buildSerial(seed int64, linkDelay time.Duration) (*Engine, *pingHost, *pingHost) {
	eng := New(seed)
	var a, b *pingHost
	a = &pingHost{eng: eng, name: "A", period: 700 * time.Microsecond, think: 90 * time.Microsecond}
	b = &pingHost{eng: eng, name: "B", period: 1100 * time.Microsecond, think: 130 * time.Microsecond}
	a.send = func(id int) { eng.Schedule(linkDelay, func() { b.recv(id) }) }
	b.send = func(id int) { eng.Schedule(linkDelay, func() { a.recv(id) }) }
	a.start()
	b.start()
	return eng, a, b
}

// buildSharded wires the same two hosts onto two shards joined by a pair of
// cross-links with the link delay as lookahead.
func buildSharded(seed int64, linkDelay time.Duration) (*ShardedEngine, *pingHost, *pingHost) {
	se := NewSharded(seed, 2)
	var a, b *pingHost
	a = &pingHost{eng: se.Shard(0), name: "A", period: 700 * time.Microsecond, think: 90 * time.Microsecond}
	b = &pingHost{eng: se.Shard(1), name: "B", period: 1100 * time.Microsecond, think: 130 * time.Microsecond}
	ab := se.NewLink(0, 1, linkDelay)
	ba := se.NewLink(1, 0, linkDelay)
	ab.SetInjector(func(arg any, at time.Duration) {
		se.Shard(1).SchedulePAt(at, func(v any) { b.recv(v.(int)) }, arg)
	})
	ba.SetInjector(func(arg any, at time.Duration) {
		se.Shard(0).SchedulePAt(at, func(v any) { a.recv(v.(int)) }, arg)
	})
	a.send = func(id int) { ab.Post(id, linkDelay) }
	b.send = func(id int) { ba.Post(id, linkDelay) }
	a.start()
	b.start()
	return se, a, b
}

func diffLogs(t *testing.T, host string, serial, sharded []string) {
	t.Helper()
	if reflect.DeepEqual(serial, sharded) {
		return
	}
	min := len(serial)
	if len(sharded) < min {
		min = len(sharded)
	}
	for i := 0; i < min; i++ {
		if serial[i] != sharded[i] {
			t.Fatalf("host %s diverges at %d: serial %q vs sharded %q", host, i, serial[i], sharded[i])
		}
	}
	t.Fatalf("host %s log lengths differ: serial %d vs sharded %d", host, len(serial), len(sharded))
}

// TestShardedMatchesSerial is the core differential: each host's event
// stream in the sharded run must be entry-for-entry identical to the same
// host's stream in the serial run, with equal Processed counts and final
// clocks — the per-shard streams are subsequences of the serial stream.
func TestShardedMatchesSerial(t *testing.T) {
	const linkDelay = 200 * time.Microsecond
	const end = 50 * time.Millisecond
	serial, sa, sb := buildSerial(1, linkDelay)
	serial.Run(end)
	sharded, pa, pb := buildSharded(1, linkDelay)
	sharded.Run(end)

	diffLogs(t, "A", sa.log, pa.log)
	diffLogs(t, "B", sb.log, pb.log)
	if serial.Processed() != sharded.Processed() {
		t.Fatalf("processed: serial %d vs sharded %d", serial.Processed(), sharded.Processed())
	}
	if serial.Now() != end || sharded.Shard(0).Now() != end || sharded.Shard(1).Now() != end {
		t.Fatalf("final clocks: serial %v, shards %v/%v, want %v",
			serial.Now(), sharded.Shard(0).Now(), sharded.Shard(1).Now(), end)
	}
	if err := sharded.CheckQueues(); err != nil {
		t.Fatalf("queue audit: %v", err)
	}
}

// TestShardedDeterministic: two sharded runs with the same seed produce the
// same logs — barrier merges must not depend on goroutine timing.
func TestShardedDeterministic(t *testing.T) {
	const linkDelay = 150 * time.Microsecond
	x, xa, xb := buildSharded(7, linkDelay)
	x.Run(30 * time.Millisecond)
	y, ya, yb := buildSharded(7, linkDelay)
	y.Run(30 * time.Millisecond)
	diffLogs(t, "A", xa.log, ya.log)
	diffLogs(t, "B", xb.log, yb.log)
	if x.Processed() != y.Processed() {
		t.Fatalf("processed differs: %d vs %d", x.Processed(), y.Processed())
	}
}

// TestGlobalCutMatchesSerialEvent: a GlobalAt on the sharded engine is the
// counterpart of one scheduled event on the serial engine — it must observe
// the same state at the same time and count as exactly one processed event.
func TestGlobalCutMatchesSerialEvent(t *testing.T) {
	const linkDelay = 200 * time.Microsecond
	const cut = 13 * time.Millisecond
	const end = 25 * time.Millisecond

	serial, sa, sb := buildSerial(3, linkDelay)
	var serialSnap int
	serial.Schedule(cut, func() { serialSnap = len(sa.log) + len(sb.log) })
	serial.Run(end)

	sharded, pa, pb := buildSharded(3, linkDelay)
	var shardSnap int
	sharded.GlobalAt(cut, func() {
		// At a consistent cut every shard is parked; reading both hosts'
		// state here is the whole point of globals.
		shardSnap = len(pa.log) + len(pb.log)
		if sharded.Shard(0).Now() != cut || sharded.Shard(1).Now() != cut {
			t.Errorf("global ran off-cut: clocks %v/%v, want %v",
				sharded.Shard(0).Now(), sharded.Shard(1).Now(), cut)
		}
	})
	sharded.Run(end)

	if serialSnap != shardSnap {
		t.Fatalf("snapshot at cut: serial saw %d log entries, sharded %d", serialSnap, shardSnap)
	}
	if serial.Processed() != sharded.Processed() {
		t.Fatalf("processed: serial %d vs sharded %d", serial.Processed(), sharded.Processed())
	}
}

// TestGlobalEvery fires at every interval boundary up to and including end,
// each counting one processed event.
func TestGlobalEvery(t *testing.T) {
	se := NewSharded(1, 2)
	l := se.NewLink(0, 1, time.Millisecond)
	l.SetInjector(func(arg any, at time.Duration) {})
	var times []time.Duration
	se.GlobalEvery(4*time.Millisecond, func() {
		times = append(times, se.Shard(0).Now())
	})
	// Keep a trickle of work alive on shard 0 so windows keep forming.
	var tick func()
	tick = func() {
		if se.Shard(0).Now() < 20*time.Millisecond {
			se.Shard(0).Schedule(time.Millisecond, tick)
		}
	}
	se.Shard(0).Schedule(time.Millisecond, tick)
	se.Run(20 * time.Millisecond)
	want := []time.Duration{4 * time.Millisecond, 8 * time.Millisecond, 12 * time.Millisecond, 16 * time.Millisecond, 20 * time.Millisecond}
	if !reflect.DeepEqual(times, want) {
		t.Fatalf("global fired at %v, want %v", times, want)
	}
	if got := se.Processed(); got != uint64(20+len(want)) {
		t.Fatalf("processed %d, want %d ticks + %d globals", got, 20, len(want))
	}
}

// TestSingleShardFastPath: a 1-shard engine with no globals must behave
// exactly like the serial engine it wraps.
func TestSingleShardFastPath(t *testing.T) {
	se := NewSharded(5, 1)
	ref := New(5)
	var got, want []time.Duration
	for _, d := range []time.Duration{3 * time.Millisecond, time.Millisecond, 2 * time.Millisecond} {
		d := d
		se.Shard(0).Schedule(d, func() { got = append(got, se.Shard(0).Now()) })
		ref.Schedule(d, func() { want = append(want, ref.Now()) })
	}
	se.Run(10 * time.Millisecond)
	ref.Run(10 * time.Millisecond)
	if !reflect.DeepEqual(got, want) || se.Processed() != ref.Processed() {
		t.Fatalf("fast path diverged: %v vs %v (processed %d vs %d)", got, want, se.Processed(), ref.Processed())
	}
}

// TestPostBelowLookaheadPanics: violating the declared minimum delay is a
// wiring bug and must fail loudly, not corrupt the window protocol.
func TestPostBelowLookaheadPanics(t *testing.T) {
	se := NewSharded(1, 2)
	l := se.NewLink(0, 1, time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("Post below lookahead did not panic")
		}
	}()
	l.Post(42, 500*time.Microsecond)
}

// TestNewLinkValidation rejects self-links, out-of-range endpoints and
// non-positive lookahead.
func TestNewLinkValidation(t *testing.T) {
	cases := []struct {
		name     string
		src, dst int
		delay    time.Duration
	}{
		{"self", 0, 0, time.Millisecond},
		{"out-of-range", 0, 5, time.Millisecond},
		{"negative-src", -1, 0, time.Millisecond},
		{"zero-delay", 0, 1, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			se := NewSharded(1, 2)
			defer func() {
				if recover() == nil {
					t.Fatalf("NewLink(%d,%d,%v) did not panic", c.src, c.dst, c.delay)
				}
			}()
			se.NewLink(c.src, c.dst, c.delay)
		})
	}
}

// TestDrainPending: messages posted but never flushed (here, a run
// abandoned without reaching a barrier) stay reachable for reclaim.
func TestDrainPending(t *testing.T) {
	se := NewSharded(1, 2)
	l := se.NewLink(0, 1, time.Millisecond)
	l.SetInjector(func(arg any, at time.Duration) {
		t.Fatal("injector must not run: no barrier is ever reached")
	})
	// Drive shard 0 directly, bypassing the window loop — the post never
	// meets a barrier flush.
	se.Shard(0).Schedule(5*time.Millisecond, func() {
		l.Post("orphan", time.Millisecond)
	})
	se.Shard(0).Run(5 * time.Millisecond)
	if l.Pending() != 1 {
		t.Fatalf("pending %d, want 1", l.Pending())
	}
	var drained []any
	l.DrainPending(func(v any) { drained = append(drained, v) })
	if len(drained) != 1 || drained[0] != "orphan" || l.Pending() != 0 {
		t.Fatalf("drain got %v, pending now %d", drained, l.Pending())
	}
}

// TestFinalWindowFlushes: a message posted by an event in the last window
// is still injected at the final barrier, so custody always ends up on the
// destination side (where run-end reclaim looks for it).
func TestFinalWindowFlushes(t *testing.T) {
	se := NewSharded(1, 2)
	l := se.NewLink(0, 1, time.Millisecond)
	injected := 0
	l.SetInjector(func(arg any, at time.Duration) { injected++ })
	se.Shard(0).Schedule(5*time.Millisecond, func() {
		l.Post("late", time.Millisecond)
	})
	se.Run(5 * time.Millisecond)
	if injected != 1 || l.Pending() != 0 {
		t.Fatalf("injected %d, pending %d; want 1, 0", injected, l.Pending())
	}
}

// TestRunUntilAndNextEventTime pins the serial-engine primitives the window
// loop is built on.
func TestRunUntilAndNextEventTime(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		d := d
		e.Schedule(d, func() { fired = append(fired, e.Now()) })
	}
	if at, ok := e.NextEventTime(); !ok || at != time.Millisecond {
		t.Fatalf("NextEventTime = %v,%v want 1ms,true", at, ok)
	}
	e.RunUntil(2 * time.Millisecond) // strictly before: only the 1ms event
	if len(fired) != 1 || fired[0] != time.Millisecond {
		t.Fatalf("RunUntil(2ms) fired %v", fired)
	}
	if at, ok := e.NextEventTime(); !ok || at != 2*time.Millisecond {
		t.Fatalf("NextEventTime after window = %v,%v", at, ok)
	}
	e.AdvanceTo(2 * time.Millisecond)
	if e.Now() != 2*time.Millisecond {
		t.Fatalf("AdvanceTo: now %v", e.Now())
	}
	e.AdvanceTo(time.Millisecond) // backwards is a no-op
	if e.Now() != 2*time.Millisecond {
		t.Fatalf("AdvanceTo went backwards: %v", e.Now())
	}
	e.RunUntil(10 * time.Millisecond)
	if len(fired) != 3 {
		t.Fatalf("remaining events: fired %v", fired)
	}
}

// TestShardedLimits: a budget tripped on any shard stops the run and
// surfaces through LimitErr, matching the serial engine's early stop.
func TestShardedLimits(t *testing.T) {
	se := NewSharded(1, 2)
	l := se.NewLink(0, 1, time.Millisecond)
	l.SetInjector(func(arg any, at time.Duration) {})
	se.SetLimits(Limits{MaxEvents: 5})
	var tick func()
	n := 0
	tick = func() {
		n++
		se.Shard(0).Schedule(time.Millisecond, tick)
	}
	se.Shard(0).Schedule(time.Millisecond, tick)
	se.Run(100 * time.Millisecond)
	if se.LimitErr() == nil {
		t.Fatal("expected tripped budget")
	}
	if n > 6 {
		t.Fatalf("ran %d events past a 5-event budget", n)
	}
}

// TestProcessedAcrossManyShards: four shards in a ring, messages forwarded
// around; per-shard logs, processed totals and the hop sequence must be
// reproducible and complete.
func TestProcessedAcrossManyShards(t *testing.T) {
	build := func() (*ShardedEngine, []*[]int) {
		se := NewSharded(9, 4)
		logs := make([]*[]int, 4)
		for i := range logs {
			logs[i] = &[]int{}
		}
		links := make([]*CrossLink, 4)
		for i := 0; i < 4; i++ {
			links[i] = se.NewLink(i, (i+1)%4, 300*time.Microsecond)
		}
		for i := 0; i < 4; i++ {
			dst := (i + 1) % 4
			dstEng := se.Shard(dst)
			dstLog := logs[dst]
			next := links[dst]
			links[i].SetInjector(func(arg any, at time.Duration) {
				dstEng.SchedulePAt(at, func(v any) {
					hops := v.(int)
					*dstLog = append(*dstLog, hops)
					if hops < 40 {
						next.Post(hops+1, 300*time.Microsecond)
					}
				}, arg)
			})
		}
		se.Shard(0).Schedule(time.Millisecond, func() {
			links[0].Post(1, 300*time.Microsecond)
		})
		return se, logs
	}
	x, xlogs := build()
	x.Run(time.Second)
	y, ylogs := build()
	y.Run(time.Second)
	total := 0
	for i := range xlogs {
		if !reflect.DeepEqual(*xlogs[i], *ylogs[i]) {
			t.Fatalf("shard %d logs diverged: %v vs %v", i, *xlogs[i], *ylogs[i])
		}
		total += len(*xlogs[i])
	}
	if x.Processed() != y.Processed() {
		t.Fatalf("processed %d vs %d", x.Processed(), y.Processed())
	}
	if total != 40 {
		t.Fatalf("ring delivered %d hops, want 40", total)
	}
}
