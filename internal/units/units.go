// Package units provides strongly typed bandwidth and data-size quantities
// used throughout the simulator. Keeping bits, bytes, and rates in distinct
// types catches the classic factor-of-eight mistakes at compile time.
package units

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Bandwidth is a data rate in bits per second.
type Bandwidth int64

// Common bandwidth units.
const (
	BitPerSecond Bandwidth = 1
	Kbps                   = 1000 * BitPerSecond
	Mbps                   = 1000 * Kbps
	Gbps                   = 1000 * Mbps
)

// Mbit returns the bandwidth expressed in megabits per second.
func (b Bandwidth) Mbit() float64 { return float64(b) / float64(Mbps) }

// BytesPerSecond returns the bandwidth expressed in bytes per second.
func (b Bandwidth) BytesPerSecond() float64 { return float64(b) / 8 }

// IsZero reports whether the bandwidth is zero.
func (b Bandwidth) IsZero() bool { return b == 0 }

// TimeToSend returns how long it takes to send n bytes at rate b.
// It returns 0 for non-positive sizes and panics on a zero rate, since the
// caller would otherwise divide by zero implicitly.
func (b Bandwidth) TimeToSend(n DataSize) time.Duration {
	if n <= 0 {
		return 0
	}
	if b <= 0 {
		panic("units: TimeToSend on non-positive bandwidth")
	}
	bits := float64(n) * 8
	sec := bits / float64(b)
	return time.Duration(sec * float64(time.Second))
}

// BytesIn returns how many bytes can be transmitted at rate b in d.
func (b Bandwidth) BytesIn(d time.Duration) DataSize {
	if d <= 0 || b <= 0 {
		return 0
	}
	return DataSize(float64(b) / 8 * d.Seconds())
}

// String formats the bandwidth with an adaptive unit suffix.
func (b Bandwidth) String() string {
	switch {
	case b >= Gbps:
		return trimFloat(float64(b)/float64(Gbps)) + "Gbps"
	case b >= Mbps:
		return trimFloat(float64(b)/float64(Mbps)) + "Mbps"
	case b >= Kbps:
		return trimFloat(float64(b)/float64(Kbps)) + "Kbps"
	default:
		return strconv.FormatInt(int64(b), 10) + "bps"
	}
}

// ParseBandwidth parses strings like "1Gbps", "20Mbps", "9600bps".
func ParseBandwidth(s string) (Bandwidth, error) {
	s = strings.TrimSpace(s)
	mult := Bandwidth(0)
	var num string
	switch {
	case strings.HasSuffix(s, "Gbps"):
		mult, num = Gbps, strings.TrimSuffix(s, "Gbps")
	case strings.HasSuffix(s, "Mbps"):
		mult, num = Mbps, strings.TrimSuffix(s, "Mbps")
	case strings.HasSuffix(s, "Kbps"):
		mult, num = Kbps, strings.TrimSuffix(s, "Kbps")
	case strings.HasSuffix(s, "bps"):
		mult, num = BitPerSecond, strings.TrimSuffix(s, "bps")
	default:
		return 0, fmt.Errorf("units: bandwidth %q missing unit suffix", s)
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad bandwidth %q: %v", s, err)
	}
	if f < 0 {
		return 0, fmt.Errorf("units: negative bandwidth %q", s)
	}
	return Bandwidth(f * float64(mult)), nil
}

// BandwidthFromBytes converts a byte count over a duration into a rate.
func BandwidthFromBytes(n DataSize, d time.Duration) Bandwidth {
	if d <= 0 {
		return 0
	}
	return Bandwidth(float64(n) * 8 / d.Seconds())
}

// DataSize is an amount of data in bytes.
type DataSize int64

// Common data-size units.
const (
	Byte DataSize = 1
	KB            = 1024 * Byte
	MB            = 1024 * KB
	GB            = 1024 * MB
)

// Bytes returns the size as an int64 byte count.
func (d DataSize) Bytes() int64 { return int64(d) }

// Kilobits returns the size expressed in kilobits (1000 bits), the unit the
// paper's Table 2 reports socket-buffer lengths in.
func (d DataSize) Kilobits() float64 { return float64(d) * 8 / 1000 }

// String formats the size with an adaptive unit suffix.
func (d DataSize) String() string {
	switch {
	case d >= GB:
		return trimFloat(float64(d)/float64(GB)) + "GB"
	case d >= MB:
		return trimFloat(float64(d)/float64(MB)) + "MB"
	case d >= KB:
		return trimFloat(float64(d)/float64(KB)) + "KB"
	default:
		return strconv.FormatInt(int64(d), 10) + "B"
	}
}

// ParseDataSize parses strings like "256KB", "1MB", "512B".
func ParseDataSize(s string) (DataSize, error) {
	s = strings.TrimSpace(s)
	mult := DataSize(0)
	var num string
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, num = GB, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult, num = MB, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, num = KB, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "B"):
		mult, num = Byte, strings.TrimSuffix(s, "B")
	default:
		return 0, fmt.Errorf("units: data size %q missing unit suffix", s)
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(num), 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad data size %q: %v", s, err)
	}
	if f < 0 {
		return 0, fmt.Errorf("units: negative data size %q", s)
	}
	return DataSize(f * float64(mult)), nil
}

func trimFloat(f float64) string {
	s := strconv.FormatFloat(f, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}
