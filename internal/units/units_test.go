package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBandwidthString(t *testing.T) {
	tests := []struct {
		in   Bandwidth
		want string
	}{
		{1 * Gbps, "1Gbps"},
		{20 * Mbps, "20Mbps"},
		{1500 * Kbps, "1.5Mbps"},
		{9600, "9.6Kbps"},
		{7, "7bps"},
		{0, "0bps"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Bandwidth(%d).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestParseBandwidth(t *testing.T) {
	tests := []struct {
		in      string
		want    Bandwidth
		wantErr bool
	}{
		{"1Gbps", Gbps, false},
		{"20Mbps", 20 * Mbps, false},
		{" 2.5Mbps ", 2500 * Kbps, false},
		{"9600bps", 9600, false},
		{"100", 0, true},
		{"-1Mbps", 0, true},
		{"xMbps", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseBandwidth(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseBandwidth(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseBandwidth(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseBandwidthRoundTrip(t *testing.T) {
	f := func(mbit uint16) bool {
		// Keep below 1Gbps so String() stays in whole Mbps and the
		// round trip is exact; larger values round to 2 decimals.
		b := Bandwidth(mbit%1000) * Mbps
		got, err := ParseBandwidth(b.String())
		return err == nil && got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeToSend(t *testing.T) {
	tests := []struct {
		rate Bandwidth
		n    DataSize
		want time.Duration
	}{
		{Gbps, 1250, 10 * time.Microsecond}, // 1250B = 10,000 bits at 1e9 bps
		{10 * Mbps, 1250, time.Millisecond}, // 10,000 bits at 1e7 bps
		{Mbps, 125000, time.Second},         // 1e6 bits at 1e6 bps
		{Gbps, 0, 0},
		{Gbps, -5, 0},
	}
	for _, tt := range tests {
		if got := tt.rate.TimeToSend(tt.n); got != tt.want {
			t.Errorf("%v.TimeToSend(%d) = %v, want %v", tt.rate, tt.n, got, tt.want)
		}
	}
}

func TestTimeToSendPanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero bandwidth")
		}
	}()
	Bandwidth(0).TimeToSend(100)
}

func TestBytesIn(t *testing.T) {
	if got := (10 * Mbps).BytesIn(time.Second); got != 1250000 {
		t.Errorf("10Mbps over 1s = %d bytes, want 1250000", got)
	}
	if got := Gbps.BytesIn(0); got != 0 {
		t.Errorf("zero duration should carry zero bytes, got %d", got)
	}
	if got := Bandwidth(0).BytesIn(time.Second); got != 0 {
		t.Errorf("zero rate should carry zero bytes, got %d", got)
	}
}

func TestBytesInTimeToSendInverse(t *testing.T) {
	f := func(mbit uint8, kb uint8) bool {
		rate := Bandwidth(int64(mbit)+1) * Mbps
		n := DataSize(int64(kb)+1) * KB
		d := rate.TimeToSend(n)
		back := rate.BytesIn(d)
		// Allow one byte of rounding slack.
		diff := back - n
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthFromBytes(t *testing.T) {
	if got := BandwidthFromBytes(1250000, time.Second); got != 10*Mbps {
		t.Errorf("BandwidthFromBytes = %v, want 10Mbps", got)
	}
	if got := BandwidthFromBytes(100, 0); got != 0 {
		t.Errorf("zero duration should give zero bandwidth, got %v", got)
	}
}

func TestDataSizeString(t *testing.T) {
	tests := []struct {
		in   DataSize
		want string
	}{
		{512, "512B"},
		{2 * KB, "2KB"},
		{1536, "1.5KB"},
		{3 * MB, "3MB"},
		{GB, "1GB"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("DataSize(%d).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestKilobits(t *testing.T) {
	// 4012 bytes = 32.096 kilobits, matching the paper's Table 2 1x row.
	if got := DataSize(4012).Kilobits(); got < 32.0 || got > 32.2 {
		t.Errorf("4012 bytes = %.3f Kb, want ~32.1", got)
	}
}

func TestParseDataSize(t *testing.T) {
	tests := []struct {
		in      string
		want    DataSize
		wantErr bool
	}{
		{"256KB", 256 * KB, false},
		{"1MB", MB, false},
		{"512B", 512, false},
		{" 2GB ", 2 * GB, false},
		{"1.5KB", 1536, false},
		{"12", 0, true},
		{"-1MB", 0, true},
		{"xKB", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseDataSize(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseDataSize(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseDataSize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
