// Package simnet exposes the deterministic simulator behind a net-shaped
// API: Dial/Listen/Wrap return net.Conn implementations whose Read, Write
// and deadline semantics run entirely in virtual time, so any Go-writable
// workload (request/response clients, streaming uploaders) can drive the
// simulated TCP stack without knowing it is simulated.
//
// Determinism contract: application code runs on real goroutines, but a
// baton handoff guarantees exactly one logical thread is ever runnable —
// either the engine or one proc. A proc runs only between an explicit
// resume (engine context) and its next park (blocking op), and every wake
// is ordered by the engine's event sequence. Runs are therefore
// byte-deterministic at any -j and race-detector clean: all shared state
// is accessed under the baton, with happens-before established by the
// handoff channels.
package simnet

import (
	"errors"
	"os"
	"time"

	"mobbr/internal/sim"
)

// ErrClosed is returned by blocking operations after Shutdown.
var ErrClosed = errors.New("simnet: network closed")

// epoch anchors virtual time zero for the time.Time-based net.Conn
// deadline API: virtual t maps to epoch.Add(t).
var epoch = time.Unix(0, 0)

// Net owns the procs of one simulated network and the baton that
// serializes them against the engine.
type Net struct {
	eng   *sim.Engine
	procs []*Proc
	// parked is the baton's return channel: a proc sends on it when it
	// parks or exits, unblocking the resume that woke it.
	parked  chan struct{}
	running *Proc // proc currently holding the baton (nil in engine context)
	closed  bool

	stack    *Stack
	listener *Listener
}

// New builds an empty network on the engine.
func New(eng *sim.Engine) *Net {
	return &Net{eng: eng, parked: make(chan struct{})}
}

// Engine returns the underlying simulator engine.
func (n *Net) Engine() *sim.Engine { return n.eng }

// Now returns the current virtual time as a wall-clock value anchored at
// the Unix epoch (the inverse of the deadline mapping).
func (n *Net) Now() time.Time { return epoch.Add(n.eng.Now()) }

// Closed reports whether Shutdown has run.
func (n *Net) Closed() bool { return n.closed }

// Proc is one logical application thread. It runs on its own goroutine
// but only while it holds the baton; all its blocking operations park it
// back into the engine's event order.
type Proc struct {
	n      *Net
	id     int
	wake   chan struct{}
	exited bool
	w      *waiter // park reason (nil while running or exited)
}

// waiter is one parked blocking operation. fired guards against double
// wakes (data and deadline landing on the same instant).
type waiter struct {
	p     *Proc
	err   error
	fired bool
	timer sim.Timer
}

// Go spawns a proc that first runs at start of virtual time. fn must
// bound its work with the Net's blocking operations (Read/Write/Sleep/
// Accept); returning ends the proc.
func (n *Net) Go(start time.Duration, fn func(p *Proc)) *Proc {
	p := &Proc{n: n, id: len(n.procs), wake: make(chan struct{})}
	n.procs = append(n.procs, p)
	go func() {
		<-p.wake
		fn(p)
		p.exited = true
		n.parked <- struct{}{}
	}()
	n.eng.Schedule(start, func() { n.resume(p) })
	return p
}

// resume hands the baton to p and blocks until p parks or exits. It runs
// in engine context (an engine event, or the Shutdown loop after the
// engine has stopped).
func (n *Net) resume(p *Proc) {
	if p.exited {
		return
	}
	n.running = p
	p.wake <- struct{}{}
	<-n.parked
	n.running = nil
}

// park blocks the calling proc until its waiter is fired, handing the
// baton back to whoever resumed it. Returns the waiter's error.
func (p *Proc) park(w *waiter) error {
	p.w = w
	p.n.parked <- struct{}{}
	<-p.wake
	p.w = nil
	return w.err
}

// fire wakes w's proc with err. From engine context the proc runs
// immediately (nested inside the current event); from proc context —
// one proc waking another — the wake is deferred one zero-delay event so
// the baton discipline holds. Double fires and nil waiters are no-ops.
func (n *Net) fire(w *waiter, err error) {
	if w == nil || w.fired {
		return
	}
	w.fired = true
	w.err = err
	if n.running != nil {
		n.eng.Schedule(0, func() { n.resume(w.p) })
	} else {
		n.resume(w.p)
	}
}

// wait parks the calling proc on w until fired, optionally bounded by an
// absolute virtual-time deadline (<0 = none). A deadline expiry returns
// os.ErrDeadlineExceeded, matching net.Conn semantics.
func (n *Net) wait(w *waiter, deadline time.Duration) error {
	if deadline >= 0 {
		d := deadline - n.eng.Now()
		if d < 0 {
			d = 0
		}
		w.timer = n.eng.Schedule(d, func() { n.fire(w, os.ErrDeadlineExceeded) })
	}
	err := w.p.park(w)
	w.timer.Stop()
	return err
}

// Sleep parks p for d of virtual time. It returns ErrClosed when woken by
// Shutdown instead.
func (n *Net) Sleep(p *Proc, d time.Duration) error {
	if n.closed {
		return ErrClosed
	}
	if d < 0 {
		d = 0
	}
	w := &waiter{p: p}
	w.timer = n.eng.Schedule(d, func() { n.fire(w, nil) })
	err := p.park(w)
	w.timer.Stop()
	return err
}

// Shutdown closes the network after the engine's run horizon: every
// parked (or never-started) proc is woken with ErrClosed, repeatedly, in
// spawn order, until all have exited. Blocking operations check the
// closed flag first and fail fast, so procs unwind without scheduling
// further work. Deterministic and idempotent.
func (n *Net) Shutdown() {
	n.closed = true
	for guard := 0; ; guard++ {
		if guard > 1_000_000 {
			panic("simnet: Shutdown: procs refuse to exit")
		}
		var live *Proc
		for _, p := range n.procs {
			if !p.exited {
				live = p
				break
			}
		}
		if live == nil {
			return
		}
		if w := live.w; w != nil && !w.fired {
			w.fired = true
			w.err = ErrClosed
		}
		n.resume(live)
	}
}
