package simnet

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cc/cubic"
	"mobbr/internal/cpumodel"
	"mobbr/internal/netem"
	"mobbr/internal/sim"
	"mobbr/internal/tcp"
	"mobbr/internal/units"
)

// newTestNet wires a Net over a rate-limited wired path, ready for Dial.
func newTestNet(t *testing.T, tcfg tcp.Config, tc netem.TC) (*Net, *sim.Engine) {
	t.Helper()
	eng := sim.New(1)
	cpu := cpumodel.NewCPU(eng, cpumodel.DefaultCosts(), 5e9)
	path, err := netem.EthernetLAN(eng, tc)
	if err != nil {
		t.Fatalf("EthernetLAN: %v", err)
	}
	demux := tcp.NewDemux()
	path.SetReceiver(demux.Handle)
	n := New(eng)
	n.SetStack(&Stack{
		CPU:   cpu,
		Path:  path,
		TCP:   tcfg,
		CC:    func() cc.CongestionControl { return cubic.New() },
		Demux: demux,
		Pair:  PairConfig{DownDelay: path.MinRTT() / 2},
	})
	return n, eng
}

func fastTC() netem.TC {
	return netem.TC{Rate: 100 * units.Mbps, Delay: 2 * time.Millisecond}
}

// sendAll / recvN drive a conn from inside a proc, returning progress.
func sendAll(c net.Conn, total int) (int, error) {
	buf := make([]byte, 32*1024)
	sent := 0
	for sent < total {
		b := buf
		if rem := total - sent; rem < len(b) {
			b = b[:rem]
		}
		m, err := c.Write(b)
		sent += m
		if err != nil {
			return sent, err
		}
	}
	return sent, nil
}

func recvUntilEOF(c net.Conn) (int, error) {
	buf := make([]byte, 32*1024)
	got := 0
	for {
		m, err := c.Read(buf)
		got += m
		if err != nil {
			if err == io.EOF {
				return got, nil
			}
			return got, err
		}
	}
}

// TestDialEchoHalfClose covers the core request lifecycle: dial, upload
// with CloseWrite, server reads to EOF, responds, half-closes; the client
// reads the full response then EOF.
func TestDialEchoHalfClose(t *testing.T) {
	n, eng := newTestNet(t, tcp.Config{}, fastTC())
	const upload = 300 * 1024
	const resp = 2048
	var srvGot, cliGot int
	var srvErr, cliErr error
	n.Go(0, func(p *Proc) {
		c, err := n.Listen().Accept()
		if err != nil {
			srvErr = err
			return
		}
		srvGot, srvErr = recvUntilEOF(c)
		if _, err := c.Write(make([]byte, resp)); err != nil {
			srvErr = err
			return
		}
		c.(*Conn).CloseWrite()
	})
	n.Go(0, func(p *Proc) {
		c, err := n.Dial()
		if err != nil {
			cliErr = err
			return
		}
		if _, err := sendAll(c, upload); err != nil {
			cliErr = err
			return
		}
		c.(*Conn).CloseWrite()
		cliGot, cliErr = recvUntilEOF(c)
		c.Close()
	})
	eng.Run(3 * time.Second)
	n.Shutdown()
	if srvErr != nil || cliErr != nil {
		t.Fatalf("server err=%v client err=%v", srvErr, cliErr)
	}
	if srvGot != upload {
		t.Errorf("server read %d bytes, want %d", srvGot, upload)
	}
	if cliGot != resp {
		t.Errorf("client read %d bytes, want %d", cliGot, resp)
	}
}

// TestReadDeadline pins net.Conn deadline semantics in virtual time: a
// read with no data errors with os.ErrDeadlineExceeded exactly at the
// deadline instant.
func TestReadDeadline(t *testing.T) {
	n, eng := newTestNet(t, tcp.Config{}, fastTC())
	var gotErr error
	var at time.Duration
	n.Go(0, func(p *Proc) {
		c, err := n.Dial()
		if err != nil {
			gotErr = err
			return
		}
		c.SetReadDeadline(n.Now().Add(50 * time.Millisecond))
		_, gotErr = c.Read(make([]byte, 1))
		at = eng.Now()
	})
	eng.Run(time.Second)
	n.Shutdown()
	if !errors.Is(gotErr, os.ErrDeadlineExceeded) {
		t.Fatalf("read err = %v, want ErrDeadlineExceeded", gotErr)
	}
	// The deadline was set after Dial's simulated handshake.
	if want := n.stack.Path.MinRTT() + 50*time.Millisecond; at != want {
		t.Errorf("deadline fired at %v, want %v", at, want)
	}
}

// TestWriteDeadline drives the send buffer into backpressure over a slow
// path and checks the blocked write times out with partial progress.
func TestWriteDeadline(t *testing.T) {
	n, eng := newTestNet(t, tcp.Config{SndBuf: 32 * units.KB},
		netem.TC{Rate: units.Mbps, Delay: 5 * time.Millisecond})
	var sent int
	var gotErr error
	n.Go(0, func(p *Proc) {
		c, err := n.Dial()
		if err != nil {
			gotErr = err
			return
		}
		c.SetWriteDeadline(n.Now().Add(30 * time.Millisecond))
		sent, gotErr = sendAll(c, 4*1024*1024)
	})
	eng.Run(time.Second)
	n.Shutdown()
	if !errors.Is(gotErr, os.ErrDeadlineExceeded) {
		t.Fatalf("write err = %v, want ErrDeadlineExceeded", gotErr)
	}
	if sent <= 0 || sent >= 4*1024*1024 {
		t.Errorf("sent = %d, want partial progress", sent)
	}
}

// TestConcurrentClose has one proc parked in Read while two others race
// Close on the same endpoint: the reader unblocks with net.ErrClosed and
// the duplicate Close is a no-op.
func TestConcurrentClose(t *testing.T) {
	n, eng := newTestNet(t, tcp.Config{}, fastTC())
	var readErr error
	var closeErrs [2]error
	var c net.Conn
	n.Go(0, func(p *Proc) {
		var err error
		c, err = n.Dial()
		if err != nil {
			readErr = err
			return
		}
		_, readErr = c.Read(make([]byte, 1))
	})
	for i := 0; i < 2; i++ {
		i := i
		n.Go(20*time.Millisecond, func(p *Proc) {
			closeErrs[i] = c.Close()
		})
	}
	eng.Run(time.Second)
	n.Shutdown()
	if !errors.Is(readErr, net.ErrClosed) {
		t.Fatalf("read err = %v, want net.ErrClosed", readErr)
	}
	if closeErrs[0] != nil || closeErrs[1] != nil {
		t.Fatalf("close errs = %v, %v (Close must be idempotent)", closeErrs[0], closeErrs[1])
	}
}

// TestShutdownUnblocks parks procs in Accept, Read and Sleep with no
// traffic at all; Shutdown must unwind every one of them with ErrClosed.
func TestShutdownUnblocks(t *testing.T) {
	n, eng := newTestNet(t, tcp.Config{}, fastTC())
	errs := make([]error, 3)
	n.Go(0, func(p *Proc) {
		// The first Accept pairs with the dialing proc below; the second
		// has nothing to accept and parks until Shutdown.
		if _, err := n.Listen().Accept(); err != nil {
			errs[0] = err
			return
		}
		_, errs[0] = n.Listen().Accept()
	})
	n.Go(0, func(p *Proc) {
		c, err := n.Dial()
		if err != nil {
			errs[1] = err
			return
		}
		_, errs[1] = c.Read(make([]byte, 1))
	})
	n.Go(0, func(p *Proc) {
		errs[2] = n.Sleep(p, time.Hour)
	})
	eng.Run(100 * time.Millisecond)
	n.Shutdown()
	for i, err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("proc %d err = %v, want ErrClosed", i, err)
		}
	}
	if !n.Closed() {
		t.Errorf("Closed() = false after Shutdown")
	}
}

// TestSleepOrder pins the baton's determinism: procs sleeping to the same
// instant wake in schedule order, serialized one at a time.
func TestSleepOrder(t *testing.T) {
	n, eng := newTestNet(t, tcp.Config{}, fastTC())
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		n.Go(0, func(p *Proc) {
			if n.Sleep(p, 10*time.Millisecond) == nil {
				order = append(order, i)
			}
		})
	}
	eng.Run(50 * time.Millisecond)
	n.Shutdown()
	if len(order) != 4 {
		t.Fatalf("woke %d procs, want 4", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("wake order %v, want spawn order", order)
		}
	}
}
