package simnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"mobbr/internal/cc"
	"mobbr/internal/cpumodel"
	"mobbr/internal/netem"
	"mobbr/internal/seg"
	"mobbr/internal/tcp"
	"mobbr/internal/units"
)

// addr is the synthetic net.Addr of a simulated endpoint.
type addr string

func (a addr) Network() string { return "sim" }
func (a addr) String() string  { return string(a) }

// PairConfig parameterizes the modelled server→client return stream. The
// testbed's heavy direction is the phone's uplink, which rides the full
// simulated TCP stack; responses ride a delay/rate model (the paper's
// return path carries only ACK-scale traffic).
type PairConfig struct {
	// DownDelay is the one-way response latency (typically half the
	// path's no-load RTT).
	DownDelay time.Duration
	// DownRate serializes responses before the delay (0 = pure delay).
	DownRate units.Bandwidth
}

// pair couples the two endpoints of one simulated connection.
type pair struct {
	n   *Net
	tc  *tcp.Conn
	rx  *tcp.Receiver
	cfg PairConfig

	// Client→server: the simulated uplink TCP stack. finAt is the client
	// write offset at CloseWrite (-1 while open); srvConsumed is how much
	// of the delivered stream the server has read; upErr records a
	// transport failure (connection declared dead).
	finAt       int64
	srvConsumed int64
	upErr       error

	// Server→client: the modelled return stream. Writes never block;
	// each response serializes behind the previous (respBusyUntil) at
	// DownRate, then arrives DownDelay later as readable bytes.
	respAvail     int64
	respPending   int
	respBusyUntil time.Duration
	srvWClosed    bool

	cliClosed, srvClosed bool

	// Registered blocking operations (one reader and one writer per
	// endpoint side at a time).
	cliRead, cliWrite, srvRead *waiter
}

// Conn is one endpoint of a simulated connection. It implements net.Conn
// with all timing in virtual time; payload bytes are synthetic (only
// lengths travel, as everywhere in the simulator). Each endpoint must be
// driven from proc context (inside a Net.Go body), one blocking reader
// and writer at a time; Close may be called from any proc.
type Conn struct {
	p      *pair
	server bool
	// Absolute virtual-time deadlines (-1 = none).
	rdl, wdl time.Duration
}

var _ net.Conn = (*Conn)(nil)

// Wrap couples an existing stream-mode tcp.Conn and its Receiver into a
// (client, server) net.Conn pair. The tcp.Conn must have SetStream called
// already (the iperf harness does this for Config.Stream sessions); Wrap
// installs its stream callbacks and the receiver's delivery listener.
func (n *Net) Wrap(tc *tcp.Conn, rx *tcp.Receiver, cfg PairConfig) (client, server *Conn) {
	pr := &pair{n: n, tc: tc, rx: rx, cfg: cfg, finAt: -1}
	tc.SetStreamCallbacks(
		func() { n.fire(pr.cliWrite, nil) },
		nil, // drain completion rides the ACK stream; FIN is finAt
		func(err error) {
			pr.upErr = err
			n.fire(pr.cliWrite, err)
			n.fire(pr.cliRead, err)
			n.fire(pr.srvRead, err)
		},
	)
	rx.SetDeliveryListener(func() { n.fire(pr.srvRead, nil) })
	return &Conn{p: pr, rdl: -1, wdl: -1}, &Conn{p: pr, server: true, rdl: -1, wdl: -1}
}

// vtime converts a net.Conn deadline to absolute virtual time (-1 = none).
func vtime(t time.Time) time.Duration {
	if t.IsZero() {
		return -1
	}
	return t.Sub(epoch)
}

// SetDeadline implements net.Conn in virtual time.
func (c *Conn) SetDeadline(t time.Time) error {
	c.rdl, c.wdl = vtime(t), vtime(t)
	return nil
}

// SetReadDeadline implements net.Conn in virtual time.
func (c *Conn) SetReadDeadline(t time.Time) error { c.rdl = vtime(t); return nil }

// SetWriteDeadline implements net.Conn in virtual time.
func (c *Conn) SetWriteDeadline(t time.Time) error { c.wdl = vtime(t); return nil }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr {
	if c.server {
		return addr(fmt.Sprintf("server:%d", c.p.tc.ID()))
	}
	return addr(fmt.Sprintf("phone:%d", c.p.tc.ID()))
}

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr {
	if c.server {
		return addr(fmt.Sprintf("phone:%d", c.p.tc.ID()))
	}
	return addr(fmt.Sprintf("server:%d", c.p.tc.ID()))
}

// Read implements net.Conn: it blocks in virtual time until bytes are
// readable, EOF (peer half-closed and everything consumed), a deadline,
// an error, or Shutdown.
func (c *Conn) Read(b []byte) (int, error) {
	p := c.p
	n := p.n
	for {
		if n.closed {
			return 0, ErrClosed
		}
		if c.server {
			if p.srvClosed {
				return 0, net.ErrClosed
			}
			if avail := int64(p.rx.GoodBytes()) - p.srvConsumed; avail > 0 {
				m := int64(len(b))
				if m > avail {
					m = avail
				}
				p.srvConsumed += m
				return int(m), nil
			}
			if p.finAt >= 0 && p.srvConsumed >= p.finAt {
				return 0, io.EOF
			}
			if p.upErr != nil {
				return 0, p.upErr
			}
			w := &waiter{p: n.running}
			p.srvRead = w
			err := n.wait(w, c.rdl)
			p.srvRead = nil
			if err != nil {
				return 0, err
			}
			continue
		}
		if p.cliClosed {
			return 0, net.ErrClosed
		}
		if p.respAvail > 0 {
			m := int64(len(b))
			if m > p.respAvail {
				m = p.respAvail
			}
			p.respAvail -= m
			return int(m), nil
		}
		if p.srvWClosed && p.respPending == 0 {
			return 0, io.EOF
		}
		if p.upErr != nil {
			return 0, p.upErr
		}
		w := &waiter{p: n.running}
		p.cliRead = w
		err := n.wait(w, c.rdl)
		p.cliRead = nil
		if err != nil {
			return 0, err
		}
	}
}

// Write implements net.Conn. The client side pushes bytes into the
// simulated uplink stack and blocks (in virtual time) on send-buffer
// backpressure; the server side schedules the response onto the modelled
// return stream and never blocks.
func (c *Conn) Write(b []byte) (int, error) {
	p := c.p
	n := p.n
	if c.server {
		if n.closed {
			return 0, ErrClosed
		}
		if p.srvClosed || p.srvWClosed {
			return 0, net.ErrClosed
		}
		size := int64(len(b))
		if size == 0 {
			return 0, nil
		}
		now := n.eng.Now()
		start := p.respBusyUntil
		if start < now {
			start = now
		}
		var tx time.Duration
		if p.cfg.DownRate > 0 {
			tx = p.cfg.DownRate.TimeToSend(units.DataSize(size))
		}
		p.respBusyUntil = start + tx
		p.respPending++
		n.eng.ScheduleAt(start+tx+p.cfg.DownDelay, func() {
			p.respPending--
			p.respAvail += size
			n.fire(p.cliRead, nil)
		})
		return len(b), nil
	}
	total := 0
	for total < len(b) {
		if n.closed {
			return total, ErrClosed
		}
		if p.cliClosed {
			return total, net.ErrClosed
		}
		if p.upErr != nil {
			return total, p.upErr
		}
		nn, err := p.tc.StreamWrite(int64(len(b) - total))
		if err != nil {
			return total, err
		}
		total += int(nn)
		if total == len(b) {
			break
		}
		if nn > 0 {
			continue
		}
		w := &waiter{p: n.running}
		p.cliWrite = w
		err = n.wait(w, c.wdl)
		p.cliWrite = nil
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// CloseWrite half-closes the write side. The client side sends FIN
// through the simulated stack (written data keeps retransmitting until
// acknowledged); the server side ends the response stream after pending
// responses deliver. Idempotent.
func (c *Conn) CloseWrite() error {
	p := c.p
	n := p.n
	if c.server {
		if p.srvWClosed {
			return nil
		}
		p.srvWClosed = true
		if p.respPending == 0 {
			n.fire(p.cliRead, nil) // EOF is readable now
		}
		return nil
	}
	if p.finAt >= 0 {
		return nil
	}
	p.finAt = p.tc.CloseStream()
	if p.srvConsumed >= p.finAt {
		n.fire(p.srvRead, nil) // EOF is readable now
	}
	return nil
}

// Close implements net.Conn: half-close both directions, begin the
// transport's graceful teardown (client side), and unblock any parked
// operations on this endpoint with net.ErrClosed. Idempotent and safe
// from any proc, concurrently with reads and writes.
func (c *Conn) Close() error {
	p := c.p
	n := p.n
	if c.server {
		if p.srvClosed {
			return nil
		}
		p.srvClosed = true
		if !p.srvWClosed {
			p.srvWClosed = true
			if p.respPending == 0 {
				n.fire(p.cliRead, nil)
			}
		}
		n.fire(p.srvRead, net.ErrClosed)
		return nil
	}
	if p.cliClosed {
		return nil
	}
	p.cliClosed = true
	if p.finAt < 0 {
		p.finAt = p.tc.CloseStream()
		if p.srvConsumed >= p.finAt {
			n.fire(p.srvRead, nil)
		}
	}
	p.tc.Close()
	n.fire(p.cliRead, net.ErrClosed)
	n.fire(p.cliWrite, net.ErrClosed)
	return nil
}

// Transport returns the underlying simulated TCP connection (client and
// server endpoints share it).
func (c *Conn) Transport() *tcp.Conn { return c.p.tc }

// --- Dial / Listen ----------------------------------------------------------

// Stack carries the simulated-testbed pieces Dial needs to build fresh
// connections: the CPUs, the path, the TCP config, the congestion-control
// factory, the shared demux (SetReceiver'd on the path), and the pair
// model for the return stream.
type Stack struct {
	CPU    *cpumodel.CPU
	AppCPU *cpumodel.CPU // optional
	Path   *netem.Path
	TCP    tcp.Config
	CC     cc.Factory
	Pool   *seg.Pool // optional
	Demux  *tcp.Demux
	Pair   PairConfig
	// NextFlow numbers new connections. Start it above any
	// harness-built flows sharing the demux.
	NextFlow int
}

// SetStack installs the stack Dial builds connections over.
func (n *Net) SetStack(st *Stack) { n.stack = st }

// Listener accepts the server endpoints of dialed connections.
type Listener struct {
	n      *Net
	queue  []net.Conn
	accW   *waiter
	closed bool
}

// Listen returns the network's listener (one per Net).
func (n *Net) Listen() *Listener {
	if n.listener == nil {
		n.listener = &Listener{n: n}
	}
	return n.listener
}

// Accept blocks in virtual time until a dialed connection's server
// endpoint is available. Proc context only.
func (l *Listener) Accept() (net.Conn, error) {
	n := l.n
	for {
		if n.closed || l.closed {
			return nil, ErrClosed
		}
		if len(l.queue) > 0 {
			c := l.queue[0]
			l.queue = l.queue[1:]
			return c, nil
		}
		w := &waiter{p: n.running}
		l.accW = w
		err := n.wait(w, -1)
		l.accW = nil
		if err != nil {
			return nil, err
		}
	}
}

// Close stops the listener and unblocks a pending Accept.
func (l *Listener) Close() error {
	l.closed = true
	l.n.fire(l.accW, ErrClosed)
	return nil
}

// Addr implements net.Listener's shape.
func (l *Listener) Addr() net.Addr { return addr("server:listen") }

// Dial builds a fresh stream-mode connection over the installed Stack,
// starts it, waits one no-load RTT for the (abstracted) handshake, and
// hands the server endpoint to the listener. Proc context only.
func (n *Net) Dial() (net.Conn, error) {
	if n.closed {
		return nil, ErrClosed
	}
	st := n.stack
	if st == nil {
		return nil, errors.New("simnet: Dial needs SetStack")
	}
	id := st.NextFlow
	st.NextFlow++
	tc := tcp.NewConn(id, n.eng, st.CPU, st.Path, st.TCP, st.CC)
	tc.SetStream()
	if st.Pool != nil {
		tc.SetPool(st.Pool)
	}
	if st.AppCPU != nil {
		tc.SetAppCPU(st.AppCPU)
	}
	rx := tcp.NewReceiver(n.eng, st.Path, tc)
	st.Demux.Add(rx)
	cl, sv := n.Wrap(tc, rx, st.Pair)
	tc.Start()
	if err := n.Sleep(n.running, st.Path.MinRTT()); err != nil {
		return nil, err
	}
	if l := n.listener; l != nil {
		l.queue = append(l.queue, sv)
		n.fire(l.accW, nil)
	}
	return cl, nil
}
