package chaos

import (
	"strings"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/faults"
	"mobbr/internal/netem"
)

// maxShrinkRuns bounds the simulator runs one shrink may spend. Runs are
// sub-second sims, so this caps a shrink at roughly a minute of wall time;
// hitting the cap just returns the best reproducer found so far.
const maxShrinkRuns = 400

// Shrink delta-debugs spec down to a minimal reproducer of the failure
// signature: it repeatedly proposes strictly simpler candidate specs —
// dropping fault events ddmin-style, removing the mobility trace, cutting
// connections, halving the duration, resetting optional knobs — and keeps
// a candidate iff it still validates and still fails with the same
// signature under the same budgets. Runs are deterministic per seed, so
// the result is deterministic too.
func Shrink(spec core.Spec, b Budgets, sig string) core.Spec {
	cur := spec
	runs := 0
	keep := func(c core.Spec) bool {
		if runs >= maxShrinkRuns || c.Validate() != nil {
			return false
		}
		runs++
		return Run(c, b).Signature() == sig
	}
	// Fixpoint: sweep the passes until a full sweep simplifies nothing.
	for improved := true; improved; {
		improved = false
		for _, pass := range shrinkPasses {
			for _, c := range pass(cur) {
				if keep(c) {
					cur = c
					improved = true
					break
				}
			}
		}
	}
	return cur
}

// shrinkPasses propose simpler candidates, biggest wins first. Each
// candidate must be strictly simpler than its input, so the fixpoint loop
// terminates; Shrink's keep() is the only accept gate.
var shrinkPasses = []func(core.Spec) []core.Spec{
	dropMobility,
	dropFaultEvents,
	simplifyCC,
	reduceConns,
	halveDuration,
	clearKnobs,
	resetEnvironment,
	resetLimits,
}

func dropMobility(s core.Spec) []core.Spec {
	if s.Mobility == nil {
		return nil
	}
	c := s
	c.Mobility = nil
	return []core.Spec{c}
}

// dropFaultEvents is ddmin over the schedule: all, then halves, then each
// single event. Repeated sweeps by the fixpoint loop reduce any subset.
func dropFaultEvents(s core.Spec) []core.Spec {
	n := len(s.Faults.Events)
	if n == 0 {
		return nil
	}
	without := func(lo, hi int) core.Spec {
		c := s
		rest := make([]faults.Event, 0, n-(hi-lo))
		rest = append(rest, s.Faults.Events[:lo]...)
		rest = append(rest, s.Faults.Events[hi:]...)
		if len(rest) == 0 {
			c.Faults = faults.Schedule{}
		} else {
			c.Faults = faults.Schedule{Hop: s.Faults.Hop, Events: rest}
		}
		return c
	}
	out := []core.Spec{without(0, n)}
	if n > 1 {
		out = append(out, without(0, n/2), without(n/2, n))
		for i := 0; i < n; i++ {
			out = append(out, without(i, i+1))
		}
	}
	return out
}

func simplifyCC(s core.Spec) []core.Spec {
	var out []core.Spec
	if i := strings.IndexByte(s.CC, ','); i >= 0 {
		c := s
		c.CC = s.CC[:i]
		out = append(out, c)
	}
	if s.CC != "cubic" && s.CC != "" && !strings.Contains(s.CC, ",") {
		c := s
		c.CC = "cubic"
		out = append(out, c)
	}
	return out
}

func reduceConns(s core.Spec) []core.Spec {
	if s.Conns <= 1 {
		return nil
	}
	one, half := s, s
	one.Conns = 1
	half.Conns = s.Conns / 2
	if half.Conns == 1 {
		return []core.Spec{one}
	}
	return []core.Spec{one, half}
}

func halveDuration(s core.Spec) []core.Spec {
	if s.Duration <= 200*time.Millisecond {
		return nil
	}
	c := s
	c.Duration = s.Duration / 2
	c.Warmup = c.Duration / 5
	// Keep the injected fault inside the shorter run; if moving it
	// changes the signature, keep() rejects the candidate.
	if c.Inject.Kind != "" && c.Inject.At >= c.Duration {
		c.Inject.At = c.Duration / 2
	}
	return []core.Spec{c}
}

// clearKnobs resets each optional knob to its zero value, one at a time.
func clearKnobs(s core.Spec) []core.Spec {
	var out []core.Spec
	add := func(mut func(*core.Spec)) {
		c := s
		mut(&c)
		out = append(out, c)
	}
	if s.TC != (netem.TC{}) {
		add(func(c *core.Spec) { c.TC = netem.TC{} })
	}
	if s.Stride != 0 {
		add(func(c *core.Spec) { c.Stride = 0 })
	}
	if s.PacingOverride != nil {
		add(func(c *core.Spec) { c.PacingOverride = nil })
	}
	if s.HardwarePacing {
		add(func(c *core.Spec) { c.HardwarePacing = false })
	}
	if s.FixedPacingRate != 0 {
		add(func(c *core.Spec) { c.FixedPacingRate = 0 })
	}
	if s.FixedCwnd != 0 {
		add(func(c *core.Spec) { c.FixedCwnd = 0 })
	}
	if s.DisableModel {
		add(func(c *core.Spec) { c.DisableModel = false })
	}
	if s.SndBuf != 0 {
		add(func(c *core.Spec) { c.SndBuf = 0 })
	}
	if s.Interval != 0 {
		add(func(c *core.Spec) { c.Interval = 0 })
	}
	if s.DisablePool {
		add(func(c *core.Spec) { c.DisablePool = false })
	}
	return out
}

func resetEnvironment(s core.Spec) []core.Spec {
	var out []core.Spec
	var zeroDev device.Model
	var zeroCPU device.Config
	if s.Network != core.Ethernet {
		c := s
		c.Network = core.Ethernet
		out = append(out, c)
	}
	if s.Device != zeroDev {
		c := s
		c.Device = zeroDev
		out = append(out, c)
	}
	if s.CPU != zeroCPU {
		c := s
		c.CPU = zeroCPU
		out = append(out, c)
	}
	return out
}

func resetLimits(s core.Spec) []core.Spec {
	var out []core.Spec
	if s.Seed != 0 && s.Seed != 1 {
		c := s
		c.Seed = 1
		out = append(out, c)
	}
	if s.MaxEvents != 0 {
		c := s
		c.MaxEvents = 0
		out = append(out, c)
	}
	if s.MaxStall != 0 {
		c := s
		c.MaxStall = 0
		out = append(out, c)
	}
	if s.MaxWallClock != 0 {
		c := s
		c.MaxWallClock = 0
		out = append(out, c)
	}
	return out
}
