package chaos

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/faults"
	"mobbr/internal/netem"
	"mobbr/internal/units"
)

// TestGenerateValidAndDeterministic: every generated spec must validate
// (a finding is then always a simulator bug, never a malformed input) and
// regenerate byte-identically from its seed. The coverage counters guard
// the generator against silently collapsing onto a corner of the space.
func TestGenerateValidAndDeterministic(t *testing.T) {
	var withFaults, withMobility, multiCC int
	nets := map[core.Network]bool{}
	for seed := int64(1); seed <= 120; seed++ {
		spec := Generate(seed)
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d generated an invalid spec: %v\nrepro: %s", seed, err, core.ReproLine(spec))
		}
		a, err := core.EncodeSpec(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := core.EncodeSpec(Generate(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("seed %d: Generate is not deterministic", seed)
		}
		if !spec.Faults.Empty() {
			withFaults++
		}
		if spec.Mobility != nil {
			withMobility++
		}
		if strings.Contains(spec.CC, ",") {
			multiCC++
		}
		nets[spec.Network] = true
	}
	if withFaults == 0 || withMobility == 0 || multiCC == 0 || len(nets) < 4 {
		t.Errorf("generator coverage too thin: faults=%d mobility=%d multiCC=%d networks=%d",
			withFaults, withMobility, multiCC, len(nets))
	}
}

// TestRunClassifiesFailures drives each budget/containment path of the
// chaos runner with a deliberate harness fault.
func TestRunClassifiesFailures(t *testing.T) {
	base := core.Spec{CC: "cubic", Conns: 1, Duration: 300 * time.Millisecond}

	ok := Run(base, Budgets{})
	if !ok.OK {
		t.Fatalf("healthy spec failed: %+v", ok)
	}

	panics := base
	panics.Inject = core.Inject{Kind: core.InjectPanic, At: 50 * time.Millisecond}
	if out := Run(panics, Budgets{}); out.OK || out.Class != core.FailPanic ||
		!strings.Contains(out.Msg, "repro:") {
		t.Errorf("panic outcome = %+v", out)
	}

	stalls := base
	stalls.Inject = core.Inject{Kind: core.InjectStall, At: 50 * time.Millisecond}
	if out := Run(stalls, Budgets{MaxStall: 10_000}); out.OK || out.Class != core.FailStall ||
		!strings.Contains(out.Msg, "repro:") {
		t.Errorf("stall outcome = %+v", out)
	}

	corrupt := base
	corrupt.Inject = core.Inject{Kind: core.InjectCorruptInflight, At: 100 * time.Millisecond}
	if out := Run(corrupt, Budgets{}); out.OK || out.Class != core.FailViolation ||
		out.Rule != "inflight/counter" {
		t.Errorf("violation outcome = %+v", out)
	}

	if out := Run(base, Budgets{MaxPoolOutstanding: 1}); out.OK || out.Class != FailPoolBudget ||
		!strings.Contains(out.Msg, "repro:") {
		t.Errorf("pool-budget outcome = %+v", out)
	}
}

// junkSpec is a deliberately over-decorated spec whose only real defect is
// the injected inflight corruption — everything else is shrinkable noise.
func junkSpec() core.Spec {
	return core.Spec{
		CC:       "bbr,cubic",
		Conns:    4,
		Duration: 600 * time.Millisecond,
		Warmup:   120 * time.Millisecond,
		Network:  core.WiFi,
		TC:       netem.TC{Delay: 10 * time.Millisecond, QueuePackets: 256},
		Stride:   2.5,
		SndBuf:   512 * units.KB,
		Seed:     7,
		Check:    true,
		Faults: faults.Schedule{Events: []faults.Event{
			faults.Blackout{Start: 200 * time.Millisecond, Duration: 50 * time.Millisecond},
			faults.DelaySpike{Start: 300 * time.Millisecond, Duration: 60 * time.Millisecond,
				Extra: 20 * time.Millisecond},
		}},
		Inject: core.Inject{Kind: core.InjectCorruptInflight, At: 150 * time.Millisecond},
	}
}

// TestShrinkKnownBad is the acceptance gate: a seeded known-bad spec must
// shrink to a minimal reproducer that trips the same checker rule, and the
// minimized spec must replay deterministically.
func TestShrinkKnownBad(t *testing.T) {
	var b Budgets
	junk := junkSpec()
	out := Run(junk, b)
	if out.OK || out.Class != core.FailViolation || out.Rule != "inflight/counter" {
		t.Fatalf("junk spec outcome = %+v, want inflight/counter violation", out)
	}
	sig := out.Signature()

	min := Shrink(junk, b, sig)
	minOut := Run(min, b)
	if minOut.Signature() != sig {
		t.Fatalf("shrunk spec signature = %q, want %q", minOut.Signature(), sig)
	}
	if again := Run(min, b); again.Signature() != sig {
		t.Fatalf("shrunk spec does not replay deterministically: %q then %q",
			minOut.Signature(), again.Signature())
	}

	if min.Conns != 1 {
		t.Errorf("conns not minimized: %d", min.Conns)
	}
	if !min.Faults.Empty() {
		t.Errorf("irrelevant fault schedule kept: %v", min.Faults.Events)
	}
	if min.Mobility != nil {
		t.Error("mobility kept")
	}
	if min.TC != (netem.TC{}) {
		t.Errorf("irrelevant tc knobs kept: %+v", min.TC)
	}
	if min.Stride != 0 || min.SndBuf != 0 {
		t.Errorf("irrelevant knobs kept: stride=%v sndbuf=%v", min.Stride, min.SndBuf)
	}
	if min.CC != "cubic" {
		t.Errorf("cc not minimized: %q", min.CC)
	}
	if min.Duration >= junk.Duration {
		t.Errorf("duration not reduced: %v", min.Duration)
	}
	if min.Inject.Kind != core.InjectCorruptInflight {
		t.Errorf("the actual defect was shrunk away: %+v", min.Inject)
	}

	// Refresh the committed corpus entry from this shrink when asked:
	//   MOBBR_UPDATE_CORPUS=1 go test ./internal/chaos -run TestShrinkKnownBad
	if os.Getenv("MOBBR_UPDATE_CORPUS") != "" {
		e, err := NewEntry(0, min, minOut)
		if err != nil {
			t.Fatal(err)
		}
		path, err := WriteEntry("testdata/corpus", e)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("corpus entry updated: %s", path)
	}
}

// TestCorpusReplay replays every committed minimized reproducer: each must
// still fail with the exact class/rule recorded at discovery time. This is
// the regression net — a fixed bug's entry stays here so the bug cannot
// return silently.
func TestCorpusReplay(t *testing.T) {
	entries, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("corpus is empty; regenerate with MOBBR_UPDATE_CORPUS=1 go test ./internal/chaos -run TestShrinkKnownBad")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Filename(), func(t *testing.T) {
			out, err := ReplayEntry(e, Budgets{})
			if err != nil {
				t.Fatal(err)
			}
			if out.Signature() != e.Signature() {
				t.Fatalf("replay signature %q, want %q\nrepro: %s", out.Signature(), e.Signature(), e.Repro)
			}
		})
	}
}

// TestCorpusRoundTrip: write → load → replay in a scratch directory.
func TestCorpusRoundTrip(t *testing.T) {
	spec := core.Spec{CC: "cubic", Conns: 1, Duration: 300 * time.Millisecond,
		Inject: core.Inject{Kind: core.InjectCorruptInflight, At: 100 * time.Millisecond}}
	out := Run(spec, Budgets{})
	if out.OK {
		t.Fatal("seed spec unexpectedly healthy")
	}
	e, err := NewEntry(99, spec, out)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := WriteEntry(dir, e); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Signature() != e.Signature() {
		t.Fatalf("round trip lost the entry: %+v", loaded)
	}
	replayed, err := ReplayEntry(loaded[0], Budgets{})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Signature() != out.Signature() {
		t.Fatalf("replay signature %q, want %q", replayed.Signature(), out.Signature())
	}
}

// TestExploreWindowClean pins the CI soak's seed window: these seeds were
// verified clean, so any failure here is a fresh regression (or a
// generator change — rebase the window deliberately if so).
func TestExploreWindowClean(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak")
	}
	findings, err := Explore(ExploreOpts{N: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("seed %d: %s\nrepro: %s", f.GenSeed, f.Outcome.Signature(), f.Repro)
	}
}
