package chaos

import (
	"fmt"
	"io"

	"mobbr/internal/core"
)

// ExploreOpts configures one soak window.
type ExploreOpts struct {
	// N is the number of generator seeds to try (0 = 25).
	N int
	// Seed is the window's first generator seed (0 = 1); the window is
	// [Seed, Seed+N). Pinning it makes a soak fully reproducible.
	Seed int64
	// Budgets apply to every run (zero fields take defaults).
	Budgets Budgets
	// Corpus, when set, receives a minimized entry per finding.
	Corpus string
	// Log, when set, receives progress lines.
	Log io.Writer
}

// Finding is one failing generator seed, minimized.
type Finding struct {
	// GenSeed is the generator seed that produced the failure.
	GenSeed int64
	// Original is the un-shrunk outcome.
	Original Outcome
	// Spec is the minimized reproducer (the generated spec itself when
	// shrinking was skipped for a machine-dependent wall-clock finding).
	Spec core.Spec
	// Outcome is the minimized spec's outcome — same signature as
	// Original by construction.
	Outcome Outcome
	// Repro is the one-command reproducer for Spec.
	Repro string
	// Path is the corpus file, when a corpus directory was given.
	Path string
}

// Explore fuzzes the window serially (deterministic discovery order):
// generate, run under budgets, and shrink every deterministic failure to a
// minimal reproducer. It returns all findings; an error means the corpus
// could not be written, not that a spec failed.
func Explore(o ExploreOpts) ([]Finding, error) {
	if o.N <= 0 {
		o.N = 25
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	logf := func(format string, args ...any) {
		if o.Log != nil {
			fmt.Fprintf(o.Log, "chaos: "+format+"\n", args...)
		}
	}
	var findings []Finding
	for i := 0; i < o.N; i++ {
		seed := o.Seed + int64(i)
		spec := Generate(seed)
		out := Run(spec, o.Budgets)
		if out.OK {
			continue
		}
		f := Finding{GenSeed: seed, Original: out}
		if core.InfraFailure(out.Class) {
			// Wall-clock findings are machine-dependent; shrinking
			// against a flaky signature would thrash, so report as-is.
			logf("seed %d: %s (infra-class, not shrunk)", seed, out.Signature())
			f.Spec, f.Outcome = spec, out
		} else {
			logf("seed %d: %s — shrinking", seed, out.Signature())
			f.Spec = Shrink(spec, o.Budgets, out.Signature())
			f.Outcome = Run(f.Spec, o.Budgets)
		}
		f.Repro = core.ReproLine(f.Spec)
		if o.Corpus != "" {
			e, err := NewEntry(seed, f.Spec, f.Outcome)
			if err != nil {
				return findings, err
			}
			path, err := WriteEntry(o.Corpus, e)
			if err != nil {
				return findings, err
			}
			f.Path = path
			logf("seed %d: minimized reproducer written to %s", seed, path)
		}
		findings = append(findings, f)
	}
	logf("%d specs explored (seeds %d..%d), %d findings",
		o.N, o.Seed, o.Seed+int64(o.N)-1, len(findings))
	return findings, nil
}
