package chaos

import (
	"math/rand"
	"strings"
	"time"

	"mobbr/internal/apps"
	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/faults"
	"mobbr/internal/mobility"
	"mobbr/internal/netem"
	"mobbr/internal/units"
)

// The generator's draw tables. Every entry is a value Spec.Validate
// accepts, so generated specs are valid by construction — a finding is
// always a simulator bug (or budget blowout), never a malformed input.
var (
	genDevices  = []device.Model{device.Pixel4, device.Pixel6}
	genCPUs     = []device.Config{device.LowEnd, device.MidEnd, device.HighEnd, device.Default}
	genNetworks = []core.Network{core.Ethernet, core.WiFi, core.Cellular, core.Cellular5G}
	genCCs      = []string{
		"cubic", "bbr", "bbr2", "reno",
		"bbr,cubic", "bbr2,cubic", "bbr,reno", "bbr,bbr2",
	}
)

// Generate derives one valid scenario spec from the generator seed. The
// same seed always yields the same spec (the draw order is fixed), so a
// finding's generator seed is itself a reproducer of the whole discovery.
func Generate(seed int64) core.Spec {
	rng := rand.New(rand.NewSource(seed))
	dur := time.Duration(300+rng.Intn(501)) * time.Millisecond
	spec := core.Spec{
		Device:   genDevices[rng.Intn(len(genDevices))],
		CPU:      genCPUs[rng.Intn(len(genCPUs))],
		Network:  genNetworks[rng.Intn(len(genNetworks))],
		CC:       genCCs[rng.Intn(len(genCCs))],
		Conns:    1 + rng.Intn(8),
		Duration: dur,
		Warmup:   dur / 5,
		Seed:     1 + rng.Int63n(1_000_000),
		Check:    true,
	}
	if strings.Contains(spec.CC, ",") && spec.Conns < 2 {
		spec.Conns = 2
	}
	if rng.Float64() < 0.25 {
		spec.Stride = 1 + rng.Float64()*7
	}
	if rng.Float64() < 0.15 {
		on := rng.Intn(2) == 0
		spec.PacingOverride = &on
	}
	if rng.Float64() < 0.15 {
		spec.HardwarePacing = true
	}
	if rng.Float64() < 0.10 {
		spec.DisableModel = true
	}
	if rng.Float64() < 0.10 {
		spec.FixedCwnd = 8 + rng.Intn(249)
	}
	if rng.Float64() < 0.10 {
		spec.FixedPacingRate = genMbps(rng, 5, 200)
	}
	if rng.Float64() < 0.15 {
		spec.SndBuf = units.KB * units.DataSize(128+rng.Intn(3969))
	}
	if rng.Float64() < 0.40 {
		spec.TC = genTC(rng)
	}
	// Faults and Mobility are mutually exclusive; the rest run unimpaired.
	switch r := rng.Float64(); {
	case r < 0.40:
		spec.Faults = genSchedule(rng, dur)
	case r < 0.65:
		spec.Mobility = genMobility(rng, dur)
	}
	// App workloads ride last so every earlier draw — and therefore every
	// historical generator seed's spec prefix — is unchanged.
	if rng.Float64() < 0.25 {
		spec.Workload = genWorkload(rng)
	}
	return spec
}

// genWorkload draws a request/response or chunked-streaming workload. All
// values sit inside apps.Workload.Validate's bounds, and sizes stay small
// enough that short chaos runs still complete operations.
func genWorkload(rng *rand.Rand) apps.Workload {
	if rng.Intn(2) == 0 {
		wl := apps.Workload{
			Kind:    apps.KindReqRep,
			ReqSize: units.KB * units.DataSize(1+rng.Intn(64)),
		}
		if rng.Float64() < 0.5 {
			wl.RespSize = 128 + units.DataSize(rng.Intn(8*1024-127))
		}
		if rng.Float64() < 0.5 {
			wl.Think = time.Duration(rng.Intn(101)) * time.Millisecond
		}
		return wl
	}
	wl := apps.Workload{
		Kind:  apps.KindStream,
		Chunk: genMs(rng, 100, 300),
	}
	if rng.Float64() < 0.5 {
		// A strictly ascending sub-ladder of the default rungs.
		full := apps.DefaultLadder()
		lo := rng.Intn(len(full) - 1)
		hi := lo + 1 + rng.Intn(len(full)-lo-1)
		wl.Ladder = full[lo : hi+1]
	}
	if rng.Float64() < 0.3 {
		wl.Startup = 1 + rng.Intn(4)
	}
	if rng.Float64() < 0.3 {
		wl.DownRate = genMbps(rng, 10, 200)
	}
	return wl
}

func genMbps(rng *rand.Rand, lo, hi int) units.Bandwidth {
	return units.Bandwidth(lo+rng.Intn(hi-lo+1)) * units.Mbps
}

func genMs(rng *rand.Rand, lo, hi int) time.Duration {
	return time.Duration(lo+rng.Intn(hi-lo+1)) * time.Millisecond
}

// genTC draws router impairments inside netem.TC.Validate's bounds. Rates
// stay >= 20 Mbps and loss <= 3% so the transfer itself remains viable —
// starving it is a legitimate scenario but drowns every other signal.
func genTC(rng *rand.Rand) netem.TC {
	var tc netem.TC
	if rng.Float64() < 0.7 {
		tc.Rate = genMbps(rng, 20, 1000)
	}
	if rng.Float64() < 0.6 {
		tc.Delay = genMs(rng, 1, 50)
	}
	if rng.Float64() < 0.3 {
		tc.Loss = rng.Float64() * 0.03
	}
	if rng.Float64() < 0.4 {
		tc.QueuePackets = 64 + rng.Intn(1937)
		if rng.Float64() < 0.3 {
			tc.ECNThreshold = tc.QueuePackets / 2
		}
	}
	if rng.Float64() < 0.10 {
		tc.ReorderJitter = time.Duration(100+rng.Intn(1901)) * time.Microsecond
	}
	return tc
}

// genSchedule builds a fault schedule that passes Schedule.Validate by
// construction: each stateful family (outage, delay-excursion, burst-loss,
// rate-ramp) advances its own time cursor, so same-family windows never
// overlap; instantaneous steps land anywhere.
func genSchedule(rng *rand.Rand, dur time.Duration) faults.Schedule {
	n := 1 + rng.Intn(4)
	cursor := map[string]time.Duration{}
	window := func(family string, gapHi, durLo, durHi int) (start, d time.Duration) {
		start = cursor[family] + genMs(rng, 0, gapHi)
		d = genMs(rng, durLo, durHi)
		cursor[family] = start + d
		return start, d
	}
	anyAt := func() time.Duration { return genMs(rng, 0, int(dur/time.Millisecond)) }
	var evs []faults.Event
	for i := 0; i < n; i++ {
		switch rng.Intn(7) {
		case 0:
			start, d := window("outage", 200, 20, 120)
			evs = append(evs, faults.Blackout{Start: start, Duration: d})
		case 1:
			at, outage := window("outage", 200, 10, 80)
			h := faults.Handover{At: at, Outage: outage}
			if rng.Intn(2) == 0 {
				h.Rate = genMbps(rng, 20, 400)
			}
			if rng.Intn(2) == 0 {
				h.Delay = genMs(rng, 5, 60)
			}
			evs = append(evs, h)
		case 2:
			evs = append(evs, faults.RateStep{At: anyAt(), Rate: genMbps(rng, 10, 600)})
		case 3:
			evs = append(evs, faults.DelayStep{At: anyAt(), Delay: genMs(rng, 1, 80)})
		case 4:
			start, d := window("delay-excursion", 200, 20, 150)
			evs = append(evs, faults.DelaySpike{Start: start, Duration: d, Extra: genMs(rng, 5, 80)})
		case 5:
			// Always closed windows: an open-ended burst keeps the rest
			// of its family unusable for the remaining draws.
			start, d := window("burst-loss", 200, 30, 200)
			evs = append(evs, faults.BurstLoss{Start: start, Duration: d, GE: netem.GEConfig{
				PGoodToBad: 0.01 + rng.Float64()*0.19,
				PBadToGood: 0.10 + rng.Float64()*0.40,
				LossGood:   rng.Float64() * 0.01,
				LossBad:    0.10 + rng.Float64()*0.40,
			}})
		case 6:
			start, d := window("rate-ramp", 200, 80, 300)
			evs = append(evs, faults.RateRamp{
				Start: start, Duration: d,
				From: genMbps(rng, 20, 600), To: genMbps(rng, 20, 600),
			})
		}
	}
	return faults.Schedule{Events: evs}
}

// genMobility synthesizes and compiles a preset commute covering the run.
// Synthesis and compilation are deterministic in the drawn parameters; the
// (unreachable for generated parameters) error paths fall back to an
// unimpaired run rather than aborting the soak.
func genMobility(rng *rand.Rand, dur time.Duration) *mobility.Compiled {
	presets := mobility.Presets()
	p := presets[rng.Intn(len(presets))]
	tick := time.Duration(50+rng.Intn(101)) * time.Millisecond
	seed := 1 + rng.Int63n(1_000_000)
	tr, err := mobility.Synthesize(p, dur, tick, seed)
	if err != nil {
		return nil
	}
	c, err := mobility.Compile(tr, mobility.CompileOptions{})
	if err != nil {
		return nil
	}
	return c
}
