// Package chaos fuzzes the simulated testbed with randomized — but
// valid-by-construction — scenario specs. Every generated spec runs under
// the sim-wide invariant checker plus per-point budgets (event count,
// virtual-time stall watchdog, wall deadline, pool high-water cap). Any
// violation, panic or budget blowout is shrunk by delta-debugging to a
// minimal spec with the same failure signature and written to a corpus
// entry that carries an exact one-command repro line and replays forever
// under `go test ./internal/chaos`.
package chaos

import (
	"fmt"
	"time"

	"mobbr/internal/core"
)

// Budgets bounds one chaos point. A run that exceeds a budget is a finding
// (the sim should finish any valid sub-second scenario well inside them),
// classified by which budget tripped.
type Budgets struct {
	// MaxEvents caps simulator events per run (0 = 50M).
	MaxEvents uint64
	// MaxStall caps consecutive events at one virtual instant (0 = 2M).
	MaxStall uint64
	// Wall is the per-run wall-clock deadline (0 = 30s). Wall findings
	// are machine-dependent — the explorer reports them unshrunk.
	Wall time.Duration
	// MaxPoolOutstanding caps the packet+ACK pool high-water mark
	// (0 = 200k objects). A blowout means queue growth the drop-tail
	// path should have bounded.
	MaxPoolOutstanding int
}

func (b Budgets) withDefaults() Budgets {
	if b.MaxEvents == 0 {
		b.MaxEvents = 50_000_000
	}
	if b.MaxStall == 0 {
		b.MaxStall = 2_000_000
	}
	if b.Wall == 0 {
		b.Wall = 30 * time.Second
	}
	if b.MaxPoolOutstanding == 0 {
		b.MaxPoolOutstanding = 200_000
	}
	return b
}

// FailPoolBudget classifies a run whose pool high-water mark exceeded
// Budgets.MaxPoolOutstanding; it extends the core.Fail* classes.
const FailPoolBudget = "budget-pool"

// Outcome is one chaos run's result.
type Outcome struct {
	// OK means the run completed inside every budget with no violation.
	OK bool
	// Class is the failure class (core.Fail* or FailPoolBudget).
	Class string
	// Rule is the invariant rule for violations ("" otherwise).
	Rule string
	// Msg is the failure text; it always contains a repro line.
	Msg string
}

// Signature keys an outcome for dedup and shrink preservation: shrinking
// accepts a candidate only if it fails with the same signature.
func (o Outcome) Signature() string {
	if o.OK {
		return "ok"
	}
	if o.Rule != "" {
		return o.Class + "/" + o.Rule
	}
	return o.Class
}

// Run executes one spec under the budgets with the invariant checker armed
// and panics contained. The spec's own limits win when tighter; otherwise
// the budgets apply.
func Run(spec core.Spec, b Budgets) (o Outcome) {
	b = b.withDefaults()
	spec.Check = true
	if spec.MaxEvents == 0 || spec.MaxEvents > b.MaxEvents {
		spec.MaxEvents = b.MaxEvents
	}
	if spec.MaxStall == 0 || spec.MaxStall > b.MaxStall {
		spec.MaxStall = b.MaxStall
	}
	if spec.MaxWallClock <= 0 || spec.MaxWallClock > b.Wall {
		spec.MaxWallClock = b.Wall
	}
	defer func() {
		if r := recover(); r != nil {
			o = Outcome{
				Class: core.FailPanic,
				Msg:   fmt.Sprintf("panic: %v\nrepro: %s", r, core.ReproLine(spec)),
			}
		}
	}()
	res, err := core.Run(spec)
	if err != nil {
		class, rule := core.ClassifyFailure(err)
		return Outcome{Class: class, Rule: rule, Msg: err.Error()}
	}
	hw := res.Report.Pool.MaxOutstandingPackets + res.Report.Pool.MaxOutstandingAcks
	if hw > b.MaxPoolOutstanding {
		return Outcome{
			Class: FailPoolBudget,
			Msg: fmt.Sprintf("pool high-water %d objects exceeds budget %d\nrepro: %s",
				hw, b.MaxPoolOutstanding, core.ReproLine(spec)),
		}
	}
	return Outcome{OK: true}
}
