package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mobbr/internal/core"
)

// entryVersion gates corpus compatibility; bump it when the entry layout
// changes incompatibly so stale files fail loudly.
const entryVersion = 1

// Entry is one minimized reproducer in the corpus. The spec is stored in
// its strict JSON wire form, so an entry that drifts from the codec fails
// to decode instead of silently replaying a different scenario.
type Entry struct {
	V       int             `json:"v"`
	Class   string          `json:"class"`
	Rule    string          `json:"rule,omitempty"`
	Msg     string          `json:"msg,omitempty"`
	GenSeed int64           `json:"gen_seed,omitempty"`
	Repro   string          `json:"repro"`
	Spec    json.RawMessage `json:"spec"`
}

// NewEntry builds a corpus entry from a (usually shrunk) failing spec.
func NewEntry(genSeed int64, spec core.Spec, o Outcome) (Entry, error) {
	data, err := core.EncodeSpec(spec)
	if err != nil {
		return Entry{}, fmt.Errorf("chaos: encoding corpus spec: %w", err)
	}
	return Entry{
		V:       entryVersion,
		Class:   o.Class,
		Rule:    o.Rule,
		Msg:     firstLine(o.Msg),
		GenSeed: genSeed,
		Repro:   core.ReproLine(spec),
		Spec:    data,
	}, nil
}

// Signature mirrors Outcome.Signature for a stored entry.
func (e Entry) Signature() string {
	if e.Rule != "" {
		return e.Class + "/" + e.Rule
	}
	return e.Class
}

// Filename is deterministic in the finding (signature + generator seed),
// so re-discovering a known failure overwrites its entry instead of
// accreting duplicates.
func (e Entry) Filename() string {
	sig := strings.NewReplacer("/", "-", " ", "-").Replace(e.Signature())
	return fmt.Sprintf("%s-seed%d.json", sig, e.GenSeed)
}

// WriteEntry persists the entry under dir (created if needed) and returns
// the file path.
func WriteEntry(dir string, e Entry) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("chaos: corpus dir: %w", err)
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", fmt.Errorf("chaos: encoding corpus entry: %w", err)
	}
	path := filepath.Join(dir, e.Filename())
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("chaos: writing corpus entry: %w", err)
	}
	return path, nil
}

// LoadCorpus reads every *.json entry under dir in name order. A missing
// directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]Entry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []Entry
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var e Entry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("chaos: corpus %s: %w", p, err)
		}
		if e.V != entryVersion {
			return nil, fmt.Errorf("chaos: corpus %s: entry version %d, want %d", p, e.V, entryVersion)
		}
		out = append(out, e)
	}
	return out, nil
}

// ReplayEntry decodes and re-runs a corpus entry under the budgets; the
// caller compares the outcome's signature against the entry's.
func ReplayEntry(e Entry, b Budgets) (Outcome, error) {
	spec, err := core.DecodeSpec(e.Spec)
	if err != nil {
		return Outcome{}, fmt.Errorf("chaos: corpus entry %s: %w", e.Filename(), err)
	}
	return Run(spec, b), nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
