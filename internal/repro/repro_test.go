package repro

import (
	"strings"
	"testing"
	"time"
)

func TestAllExperimentsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" {
			t.Errorf("experiment %+v missing id or title", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if len(e.Points) == 0 {
			t.Errorf("experiment %q has no points", e.ID)
		}
		labels := map[string]bool{}
		for _, p := range e.Points {
			if p.Label == "" {
				t.Errorf("%s: point with empty label", e.ID)
			}
			if labels[p.Label] {
				t.Errorf("%s: duplicate label %q", e.ID, p.Label)
			}
			labels[p.Label] = true
		}
	}
	// The paper's evaluation artifacts must all be present.
	for _, id := range []string{"fig2", "fig3", "bbr2", "modeloff", "fixedrate",
		"fig4", "fig5", "fig6", "fig7", "shallow", "fig8", "table2", "fig9", "memory"} {
		if !seen[id] {
			t.Errorf("missing paper experiment %q", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig8")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig8" {
		t.Fatalf("got %q", e.ID)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestFigure2CoversTable1AndConnSweep(t *testing.T) {
	e := Figure2()
	// 4 configs × 2 CCs × 4 conn counts.
	if len(e.Points) != 32 {
		t.Fatalf("fig2 points = %d, want 32", len(e.Points))
	}
	anchors := 0
	for _, p := range e.Points {
		if p.PaperMbps > 0 {
			anchors++
		}
	}
	if anchors < 6 {
		t.Errorf("fig2 has %d paper anchors, want >= 6", anchors)
	}
}

func TestTable2PaperValues(t *testing.T) {
	e := Table2()
	if len(e.Points) != len(Strides) {
		t.Fatalf("table2 points = %d, want %d", len(e.Points), len(Strides))
	}
	for _, p := range e.Points {
		if p.PaperMbps <= 0 || p.PaperRTTms <= 0 {
			t.Errorf("table2 %s missing paper values", p.Label)
		}
		if p.Spec.Stride < 1 {
			t.Errorf("table2 %s stride %v", p.Label, p.Spec.Stride)
		}
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	e, _ := ByID("modeloff")
	rows, err := RunExperiment(e, time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(e.Points) {
		t.Fatalf("rows = %d, want %d", len(rows), len(e.Points))
	}
	for _, r := range rows {
		if r.GoodputMbps <= 0 {
			t.Errorf("%s: zero goodput", r.Point.Label)
		}
	}
	var buf strings.Builder
	Print(&buf, e, rows)
	if !strings.Contains(buf.String(), "modeloff") {
		t.Error("Print output missing experiment id")
	}
	if strings.Count(buf.String(), "\n") < len(rows)+2 {
		t.Error("Print output too short")
	}
}

func TestPacingOverridesAreDistinctPointers(t *testing.T) {
	// Regression: the on/off specs share a *bool; mutating one experiment
	// must not flip another's.
	f4 := Figure4()
	var onCount, offCount int
	for _, p := range f4.Points {
		if p.Spec.PacingOverride == nil {
			onCount++
		} else if !*p.Spec.PacingOverride {
			offCount++
		}
	}
	if onCount != 3 || offCount != 3 {
		t.Errorf("fig4 pacing split = %d on / %d off, want 3/3", onCount, offCount)
	}
}
