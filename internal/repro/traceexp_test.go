package repro

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/iperf"
	"mobbr/internal/mobility"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

func loadBundled(t *testing.T, name string) mobility.Trace {
	t.Helper()
	tr, err := mobility.Load(filepath.Join("..", "mobility", "testdata", name))
	if err != nil {
		t.Fatalf("Load(%s): %v", name, err)
	}
	return tr
}

// TestTraceExperimentBundled replays both bundled dataset samples end to end:
// all three congestion controls on both CPU configurations, invariant checker
// armed, per-segment stats populated.
func TestTraceExperimentBundled(t *testing.T) {
	for _, name := range []string{"irish4g_sample.csv", "nyc_lte_sample.jsonl"} {
		t.Run(name, func(t *testing.T) {
			e, err := NewTraceExperiment(loadBundled(t, name))
			if err != nil {
				t.Fatalf("NewTraceExperiment: %v", err)
			}
			rows, err := RunTrace(e, 1)
			if err != nil {
				t.Fatalf("RunTrace: %v", err)
			}
			if len(rows) != 6 {
				t.Fatalf("got %d rows, want 6 (3 CCs × 2 CPU configs)", len(rows))
			}
			for _, r := range rows {
				if r.GoodputMbps <= 0 {
					t.Errorf("%s: no goodput", r.Point.Label)
				}
				if r.RTTms <= 0 {
					t.Errorf("%s: no RTT", r.Point.Label)
				}
				if len(r.Segments) != len(e.Compiled.Segments) {
					t.Errorf("%s: %d segment rows, want %d", r.Point.Label, len(r.Segments), len(e.Compiled.Segments))
				}
				// The outage segments must show less goodput than the best
				// nominal segment (nothing flows while the link is dark).
				var bestNominal, worstOutage float64
				worstOutage = -1
				for _, sr := range r.Segments {
					switch sr.Segment.Kind {
					case mobility.SegNominal:
						if sr.GoodputMbps > bestNominal {
							bestNominal = sr.GoodputMbps
						}
					case mobility.SegOutage:
						if worstOutage < 0 || sr.GoodputMbps > worstOutage {
							worstOutage = sr.GoodputMbps
						}
					}
				}
				if bestNominal <= 0 {
					t.Errorf("%s: no goodput in any nominal segment", r.Point.Label)
				}
				if worstOutage >= 0 && worstOutage >= bestNominal {
					t.Errorf("%s: outage goodput %.2f >= nominal %.2f", r.Point.Label, worstOutage, bestNominal)
				}
			}
			PrintTrace(io.Discard, e, rows)
		})
	}
}

// TestTraceExperimentPresets runs a short synthesized commute for every
// preset through the full grid.
func TestTraceExperimentPresets(t *testing.T) {
	for _, p := range mobility.Presets() {
		t.Run(string(p), func(t *testing.T) {
			tr, err := mobility.Synthesize(p, 2*time.Second, mobility.DefaultTick, 7)
			if err != nil {
				t.Fatalf("Synthesize: %v", err)
			}
			e, err := NewTraceExperiment(tr)
			if err != nil {
				t.Fatalf("NewTraceExperiment: %v", err)
			}
			rows, err := RunTrace(e, 1)
			if err != nil {
				t.Fatalf("RunTrace: %v", err)
			}
			if len(rows) != 6 {
				t.Fatalf("got %d rows, want 6", len(rows))
			}
			for _, r := range rows {
				if r.GoodputMbps <= 0 {
					t.Errorf("%s: no goodput", r.Point.Label)
				}
			}
		})
	}
}

// TestTraceReplayByteIdenticalTelemetry: the whole replay pipeline — load,
// resample, compile, install, run — is deterministic: the same seed and the
// same trace produce byte-identical telemetry JSONL across two runs.
func TestTraceReplayByteIdenticalTelemetry(t *testing.T) {
	c, err := CompileTrace(loadBundled(t, "irish4g_sample.csv"))
	if err != nil {
		t.Fatalf("CompileTrace: %v", err)
	}
	runOnce := func() *bytes.Buffer {
		e, err := NewTraceExperiment(c.Trace)
		if err != nil {
			t.Fatalf("NewTraceExperiment: %v", err)
		}
		spec := e.Points[0].Spec
		spec.Seed = 42
		spec.Telemetry = telemetry.Config{Trace: true}
		res, err := core.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Events.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a, b := runOnce(), runOnce()
	if a.Len() == 0 {
		t.Fatal("empty telemetry trace")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical-seed trace replays produced different JSONL telemetry")
	}
}

// TestTraceReplayEmitsSegmentAndFaultEvents: the installed replay announces
// every trace segment (begin and end) and the compiled fault events on the
// telemetry bus.
func TestTraceReplayEmitsSegmentAndFaultEvents(t *testing.T) {
	tr, err := mobility.Synthesize(mobility.Train, 3*time.Second, mobility.DefaultTick, 11)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	e, err := NewTraceExperiment(tr)
	if err != nil {
		t.Fatalf("NewTraceExperiment: %v", err)
	}
	spec := e.Points[0].Spec
	spec.Seed = 1
	spec.Telemetry = telemetry.Config{Trace: true}
	res, err := core.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	segs := res.Events.Filter(telemetry.KindSegment)
	if want := 2 * len(e.Compiled.Segments); len(segs) != want {
		t.Errorf("segment events = %d, want %d (begin+end per segment)", len(segs), want)
	}
	if len(res.Events.Filter(telemetry.KindFault)) == 0 {
		t.Error("no fault events from the compiled schedule")
	}
}

func TestSegmentStats(t *testing.T) {
	segs := []mobility.Segment{
		{Start: 0, End: time.Second, Kind: mobility.SegNominal},
		{Start: time.Second, End: 2 * time.Second, Kind: mobility.SegOutage},
	}
	ivals := []iperf.Interval{
		{Start: 0, End: 500 * time.Millisecond, Goodput: 10 * units.Mbps, AvgRTT: 40 * time.Millisecond, Retransmits: 1},
		{Start: 500 * time.Millisecond, End: time.Second, Goodput: 20 * units.Mbps, AvgRTT: 60 * time.Millisecond, Retransmits: 2},
		{Start: time.Second, End: 1500 * time.Millisecond, Goodput: 0, AvgRTT: 80 * time.Millisecond, Retransmits: 5},
	}
	rows := segmentStats(ivals, segs)
	if rows[0].GoodputMbps != 15 || rows[0].RTTms != 50 || rows[0].Retransmits != 3 {
		t.Errorf("segment 0 = %+v, want 15 Mbps / 50 ms / 3 retx", rows[0])
	}
	if rows[1].GoodputMbps != 0 || rows[1].Retransmits != 5 {
		t.Errorf("segment 1 = %+v, want 0 Mbps / 5 retx", rows[1])
	}
}
