package repro

import (
	"reflect"
	"testing"
	"time"

	"mobbr/internal/telemetry"
)

// shardTestDur keeps the full-registry differential affordable: every grid
// point of every experiment still runs twice (serial and sharded).
const shardTestDur = 60 * time.Millisecond

// maskSamples strips the in-memory result sample before comparison: Sample
// carries wall-clock engine stats and the pool's allocation-strategy counters
// (News, per-arena MaxOutstanding), which legitimately differ under
// per-shard arenas. Every measured column — goodput, RTTs, retransmits,
// fairness, and the exact engine event count — must match to the last bit.
func maskSamples(rows []Row) []Row {
	out := make([]Row, len(rows))
	for i, r := range rows {
		r.Sample = nil
		out[i] = r
	}
	return out
}

// TestShardedGridMatchesSerial is the grid-scale differential: every
// experiment in the registry, run serial and with Shards=2, must produce
// deeply equal rows. Points with serial-only features (churn, app workloads,
// mobility, faults) exercise the fallback path and must also match.
func TestShardedGridMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("grid differential is long")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			serial, err := RunExperimentPoolShards(e, shardTestDur, 1, telemetry.Config{}, 1, 0, nil)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			sharded, err := RunExperimentPoolShards(e, shardTestDur, 1, telemetry.Config{}, 1, 2, nil)
			if err != nil {
				t.Fatalf("sharded: %v", err)
			}
			s, h := maskSamples(serial), maskSamples(sharded)
			for i := range s {
				if !reflect.DeepEqual(s[i], h[i]) {
					t.Errorf("point %q differs:\nserial:  %+v\nsharded: %+v",
						e.Points[i].Label, s[i], h[i])
				}
			}
		})
	}
}

// TestShardedResilientRunner checks the Shards knob on the fault-contained
// runner: rows from a sharded resilient run equal a serial plain run's.
func TestShardedResilientRunner(t *testing.T) {
	e := Figure2()
	e.Points = e.Points[:2]
	serial, err := RunExperiment(e, shardTestDur, 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := RunExperimentResilient(e, RunOpts{
		Dur: shardTestDur, Seeds: 1, Workers: 1, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, h := maskSamples(serial), maskSamples(sharded)
	if !reflect.DeepEqual(s, h) {
		t.Errorf("resilient sharded rows differ:\nserial:  %+v\nsharded: %+v", s, h)
	}
}
