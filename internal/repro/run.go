package repro

import (
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/telemetry"
	"mobbr/internal/units"
)

// Row is the measured outcome of one experiment point.
type Row struct {
	Point Point
	// GoodputMbps and GoodputCI are the seed-mean and 95% CI half-width.
	GoodputMbps float64
	GoodputCI   float64
	// RTTms is the mean sampled smoothed RTT.
	RTTms float64
	// MinRTTms is the mean minimum RTT.
	MinRTTms float64
	// Retransmits is the seed-mean total retransmissions.
	Retransmits float64
	// SKBKbits is the mean socket-buffer (skb) length per pacing period
	// in kilobits, as Table 2 reports it.
	SKBKbits float64
	// IdleMs is the mean pacing idle time per period in milliseconds.
	IdleMs float64
	// ExpectedMbps is Table 2's expected throughput skb×conns/idle.
	ExpectedMbps float64
	// MaxBufKB is the peak total socket-buffer occupancy in KB (§7.1.1).
	MaxBufKB float64
	// CPUUtil is the netstack CPU busy fraction.
	CPUUtil float64
	// Jain is the mean Jain fairness index of per-connection goodputs.
	Jain float64
	// PacingShare is the pacing-timer fraction of netstack-core cycles
	// from the cycle profiler (0 when profiling was off) — the §6.1
	// per-event-overhead signal.
	PacingShare float64
	// AppKind names the application workload the point ran ("" for bulk
	// iperf points). When set, Requests counts completed operations across
	// the point's seeds, LatP50ms/LatP90ms/LatP99ms are request-latency
	// percentiles over every completed operation, and RebufferPct is the
	// streaming workload's stall share of playback time. Like Profiled,
	// they survive the checkpoint journal.
	AppKind     string
	Requests    int64
	LatP50ms    float64
	LatP90ms    float64
	LatP99ms    float64
	RebufferPct float64
	// FlowsStarted through FastPathShare are the churn grid's metrics
	// ("scale", Spec.Flows): flows admitted and completed across the
	// point's seeds, peak concurrency, flow-completion-time percentiles
	// pooled over every completed flow, and the fast-path share of
	// flow-table lookups. FlowsStarted > 0 marks a flows point; like the
	// app columns they survive the checkpoint journal.
	FlowsStarted   int64
	FlowsCompleted int64
	FlowsPeakLive  int
	FCTP50ms       float64
	FCTP99ms       float64
	FastPathShare  float64
	// Events is the total simulator events executed across the point's
	// seeds. Deterministic per spec+seed, so it survives the checkpoint
	// journal and the run archive unchanged.
	Events uint64
	// Sample is the last seed's full result, carrying the telemetry bus,
	// profile and engine stats when they were enabled.
	Sample *core.Result
	// Profiled records whether the point's runs carried a cycle profile.
	// Unlike Sample (which is in-memory only), it survives the checkpoint
	// journal, so a resumed grid renders the same columns.
	Profiled bool
	// Failure is the contained failure of this point under the resilient
	// runner (nil on success): the rest of the grid kept running and this
	// row records what went wrong and how to reproduce it.
	Failure *Failure
}

// RunExperiment executes every point of e over the given duration and seed
// count, returning one row per point.
func RunExperiment(e Experiment, dur time.Duration, seeds int) ([]Row, error) {
	return RunExperimentTelemetry(e, dur, seeds, telemetry.Config{})
}

// RunExperimentTelemetry is RunExperiment with an observability config
// applied to every run: each row's Sample carries the last seed's trace
// bus, cycle profile and engine stats, and PacingShare is filled from the
// profile when enabled.
func RunExperimentTelemetry(e Experiment, dur time.Duration, seeds int, tel telemetry.Config) ([]Row, error) {
	return RunExperimentPool(e, dur, seeds, tel, 1)
}

// RunExperimentPool is RunExperimentTelemetry fanned across up to workers
// OS threads, one grid point per task (each point's seeds stay serial so
// per-seed determinism is untouched). Rows come back in point order and are
// identical to a serial run's; the error, if any, is the
// smallest-index point's.
func RunExperimentPool(e Experiment, dur time.Duration, seeds int, tel telemetry.Config, workers int) ([]Row, error) {
	return RunExperimentPoolObserved(e, dur, seeds, tel, workers, nil)
}

// Observer receives grid-run lifecycle callbacks (obs.Progress implements
// it). Observers live on the wall-clock side only: the runner never lets
// one influence point order, specs, or results, so enabling progress cannot
// perturb a deterministic run. Methods must be safe for concurrent workers.
type Observer interface {
	// BeginExperiment announces the grid: experiment id and point count.
	BeginExperiment(id string, total int)
	// PointStart fires when a worker picks up a point.
	PointStart(worker, index int, label string)
	// PointDone fires when a point finishes (events = simulator events
	// executed across its seeds; failed = the point carries a contained
	// failure). Resumed points report Done without a prior Start.
	PointDone(worker, index int, events uint64, failed bool)
}

// RunExperimentPoolObserved is RunExperimentPool reporting per-point
// lifecycle to obs (nil means no observation).
func RunExperimentPoolObserved(e Experiment, dur time.Duration, seeds int, tel telemetry.Config, workers int, obs Observer) ([]Row, error) {
	return RunExperimentPoolShards(e, dur, seeds, tel, workers, 0, obs)
}

// RunExperimentPoolShards is RunExperimentPoolObserved with every eligible
// run split across engine shards (core.Spec.Shards). Point-level parallelism
// (workers) and intra-run parallelism (shards) compose: each worker's run
// drives its own shard set. Rows are identical to a serial grid's — sharding
// is an execution strategy, not part of any spec's identity.
func RunExperimentPoolShards(e Experiment, dur time.Duration, seeds int, tel telemetry.Config, workers, shards int, obs Observer) ([]Row, error) {
	if obs != nil {
		obs.BeginExperiment(e.ID, len(e.Points))
	}
	rows := make([]Row, len(e.Points))
	err := ForEachW(len(e.Points), workers, func(w, i int) (err error) {
		p := e.Points[i]
		spec := pointSpec(p, dur, tel, shards)
		if obs != nil {
			obs.PointStart(w, i, p.Label)
			defer func() { obs.PointDone(w, i, rows[i].Events, err != nil) }()
		}
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("repro %s/%s: panic: %v\nrepro: %s\n%s",
					e.ID, p.Label, r, core.ReproLine(spec), debug.Stack())
			}
		}()
		agg, err := core.RunSeeds(spec, seeds)
		if err != nil {
			return fmt.Errorf("repro %s/%s: %w", e.ID, p.Label, err)
		}
		rows[i] = rowFromAggregate(p, agg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// pointSpec is the one place a grid point's spec is finalized for a run, so
// the plain and resilient runners (and a journal resume) agree exactly.
// shards requests intra-run engine sharding; specs with serial-only features
// ignore it (core.Spec.sharded), and it never reaches the spec wire form.
func pointSpec(p Point, dur time.Duration, tel telemetry.Config, shards int) core.Spec {
	spec := p.Spec
	spec.Duration = dur
	spec.Warmup = dur / 5
	spec.Telemetry = tel
	spec.Shards = shards
	return spec
}

// rowFromAggregate folds one point's multi-seed aggregate into a Row.
func rowFromAggregate(p Point, agg *core.Aggregate) Row {
	var jain float64
	var events uint64
	for _, run := range agg.Runs {
		jain += run.Report.Fairness.Jain
		events += run.Processed
	}
	jain /= float64(len(agg.Runs))
	sample := agg.Runs[len(agg.Runs)-1]
	var paceShare float64
	if sample.Profile != nil {
		paceShare = sample.Profile.Share("net", "pacing_timer")
	}
	row := Row{
		Point:        p,
		GoodputMbps:  agg.Goodput.Mean() / 1e6,
		GoodputCI:    agg.Goodput.CI95() / 1e6,
		RTTms:        agg.AvgRTT.Mean() / 1e6,
		MinRTTms:     agg.MinRTT.Mean() / 1e6,
		Retransmits:  agg.Retransmits.Mean(),
		SKBKbits:     units.DataSize(agg.AvgSKB.Mean()).Kilobits(),
		IdleMs:       agg.AvgIdle.Mean() / 1e6,
		ExpectedMbps: agg.ExpectedTx.Mean() / 1e6,
		MaxBufKB:     agg.MaxBufOcc.Mean() / 1024,
		CPUUtil:      agg.CPUUtil.Mean(),
		Jain:         jain,
		PacingShare:  paceShare,
		Events:       events,
		Sample:       sample,
		Profiled:     sample.Profile != nil,
	}
	if agg.App != nil {
		row.AppKind = agg.App.Kind
		row.Requests = agg.App.Completed
		row.LatP50ms = agg.App.LatP(50)
		row.LatP90ms = agg.App.LatP(90)
		row.LatP99ms = agg.App.LatP(99)
		row.RebufferPct = agg.App.RebufferRatio * 100
	}
	if agg.Flows != nil {
		row.FlowsStarted = agg.Flows.Started
		row.FlowsCompleted = agg.Flows.Completed
		row.FlowsPeakLive = agg.Flows.PeakLive
		row.FCTP50ms = agg.Flows.FCTP(50)
		row.FCTP99ms = agg.Flows.FCTP(99)
		row.FastPathShare = agg.Flows.FlowTable.FastShare()
	}
	return row
}

// Print writes rows as an aligned table to w, including the paper's values
// where the text states them. A pace% column (pacing-timer share of
// netstack cycles) appears when any row carries a cycle profile;
// application columns (requests, latency percentiles, rebuffer share)
// appear when any row ran an app workload; flow-churn columns (flows
// started/done, peak concurrency, FCT percentiles, fast-path share) when
// any row ran the flows workload.
func Print(w io.Writer, e Experiment, rows []Row) {
	profiled := false
	hasApp := false
	hasFlows := false
	for _, r := range rows {
		if r.Profiled || (r.Sample != nil && r.Sample.Profile != nil) {
			profiled = true
		}
		if r.AppKind != "" {
			hasApp = true
		}
		if r.FlowsStarted > 0 {
			hasFlows = true
		}
	}
	fmt.Fprintf(w, "== %s: %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "%-36s %9s %7s %8s %8s %9s %8s %8s %9s %6s",
		"point", "Mbps", "±CI", "paper", "rtt ms", "retx", "skb Kb", "idle ms", "expect", "jain")
	if profiled {
		fmt.Fprintf(w, " %6s", "pace%")
	}
	if hasApp {
		fmt.Fprintf(w, " %7s %7s %8s %8s %8s %6s",
			"app", "reqs", "p50 ms", "p90 ms", "p99 ms", "rbuf%")
	}
	if hasFlows {
		fmt.Fprintf(w, " %8s %8s %8s %9s %9s %6s",
			"flows", "done", "peak", "fct50 ms", "fct99 ms", "fast%")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		if r.Failure != nil {
			// Failed points render deterministically (class + rule, no
			// stacks or timings), so a resumed grid prints byte-identically.
			fmt.Fprintf(w, "%-36s FAILED %s", r.Point.Label, r.Failure.Class)
			if r.Failure.Rule != "" {
				fmt.Fprintf(w, " (%s)", r.Failure.Rule)
			}
			if r.Failure.Attempts > 1 {
				fmt.Fprintf(w, " after %d attempts", r.Failure.Attempts)
			}
			fmt.Fprintln(w)
			continue
		}
		paper := "-"
		if r.Point.PaperMbps > 0 {
			paper = fmt.Sprintf("%.0f", r.Point.PaperMbps)
		}
		fmt.Fprintf(w, "%-36s %9.1f %7.1f %8s %8.2f %9.0f %8.1f %8.2f %9.0f %6.3f",
			r.Point.Label, r.GoodputMbps, r.GoodputCI, paper,
			r.RTTms, r.Retransmits, r.SKBKbits, r.IdleMs, r.ExpectedMbps, r.Jain)
		if profiled {
			fmt.Fprintf(w, " %6.1f", r.PacingShare*100)
		}
		if hasApp {
			if r.AppKind != "" {
				fmt.Fprintf(w, " %7s %7d %8.1f %8.1f %8.1f %6.2f",
					r.AppKind, r.Requests, r.LatP50ms, r.LatP90ms, r.LatP99ms, r.RebufferPct)
			} else {
				fmt.Fprintf(w, " %7s %7s %8s %8s %8s %6s", "-", "-", "-", "-", "-", "-")
			}
		}
		if hasFlows {
			if r.FlowsStarted > 0 {
				fmt.Fprintf(w, " %8d %8d %8d %9.1f %9.1f %6.1f",
					r.FlowsStarted, r.FlowsCompleted, r.FlowsPeakLive,
					r.FCTP50ms, r.FCTP99ms, r.FastPathShare*100)
			} else {
				fmt.Fprintf(w, " %8s %8s %8s %9s %9s %6s", "-", "-", "-", "-", "-", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
