package repro

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mobbr/internal/telemetry"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var hits [50]atomic.Int32
		if err := ForEach(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestForEachSmallestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForEach(20, workers, func(i int) error {
			if i == 3 || i == 17 {
				return fmt.Errorf("point %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "point 3 failed" {
			t.Fatalf("workers=%d: err = %v, want the smallest-index failure", workers, err)
		}
	}
}

func TestForEachCapturesPanic(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForEach(10, workers, func(i int) error {
			if i == 4 {
				panic("boom")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "point 4 panicked: boom") {
			t.Fatalf("workers=%d: panic not captured: %v", workers, err)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	ran := 0
	if err := ForEach(3, -1, func(int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("workers=-1 ran %d of 3", ran)
	}
}

// stripNondeterministic clears the per-row fields that legitimately differ
// across processes or scheduling: Sample carries wall-clock engine
// self-metrics. The virtual-time Report inside it is checked separately.
func stripSample(rows []Row) []Row {
	out := make([]Row, len(rows))
	copy(out, rows)
	for i := range out {
		out[i].Sample = nil
	}
	return out
}

// TestParallelMatchesSerial is the tentpole's determinism gate: every
// experiment's report must be deep-equal at -j 1 and -j 8. Simulations are
// per-run deterministic, so fanning points across goroutines must not
// change a single measured value.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment grid twice")
	}
	dur := 300 * time.Millisecond
	const seeds = 1
	for _, e := range All() {
		serial, err := RunExperimentPool(e, dur, seeds, telemetry.Config{}, 1)
		if err != nil {
			t.Fatalf("%s serial: %v", e.ID, err)
		}
		par, err := RunExperimentPool(e, dur, seeds, telemetry.Config{}, 8)
		if err != nil {
			t.Fatalf("%s parallel: %v", e.ID, err)
		}
		if !reflect.DeepEqual(stripSample(serial), stripSample(par)) {
			t.Errorf("%s: rows differ between -j 1 and -j 8", e.ID)
		}
		for i := range serial {
			if !reflect.DeepEqual(serial[i].Sample.Report, par[i].Sample.Report) {
				t.Errorf("%s point %d: sample report differs between -j 1 and -j 8", e.ID, i)
			}
		}
	}
}

// TestParallelRecoveryMatchesSerial covers the recovery runner's pool path
// (interval-series metric, checker armed) the same way.
func TestParallelRecoveryMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the recovery grid twice")
	}
	e := Recovery()
	e.Points = e.Points[:3] // one CPU config's worth is plenty
	serial, err := RunRecoveryPool(e, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunRecoveryPool(e, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Error("recovery rows differ between -j 1 and -j 8")
	}
}

// TestForEachPanicOnLastIndex: a panic in the final index must not deadlock
// the pool or skip earlier indices (regression guard for off-by-one in the
// work handout).
func TestForEachPanicOnLastIndex(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var hits [7]atomic.Int32
		err := ForEach(len(hits), workers, func(i int) error {
			hits[i].Add(1)
			if i == len(hits)-1 {
				panic("last index")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "point 6 panicked: last index") {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
}

// TestForEachWorkersExceedN: more workers than work items must still run
// every index exactly once and terminate.
func TestForEachWorkersExceedN(t *testing.T) {
	var hits [5]atomic.Int32
	if err := ForEach(len(hits), 32, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if n := hits[i].Load(); n != 1 {
			t.Fatalf("index %d ran %d times", i, n)
		}
	}
}
