package repro

import (
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/iperf"
	"mobbr/internal/mobility"
	"mobbr/internal/stats"
)

// The trace experiment replays a real (or synthesized) cellular commute —
// an ingested bandwidth/RTT/loss trace compiled onto the LTE radio hop —
// and compares how BBR, BBRv2 and Cubic ride it out on the Low-End and
// Default CPU configurations. Where the recovery experiment injects one
// surgical fault, this one subjects the stacks to the full measured
// sequence: fades, handover outages, lossy stretches, and the recovery
// after each, reported per trace segment.

// TraceOtherRTT is the round-trip contributed by the non-radio part of the
// CellularLTE path: the core hop's 2×10 ms plus the 20 ms delayed-ACK
// timer. The compiler subtracts it from the trace RTT before halving the
// remainder into the radio hop's one-way delay.
const TraceOtherRTT = 30 * time.Millisecond

// TraceInterval is the iperf3-style reporting granularity; segment stats
// are assembled from these intervals.
const TraceInterval = 100 * time.Millisecond

// DefaultTraceDuration is the synthesized commute length when the CLI asks
// for a preset without an explicit duration.
const DefaultTraceDuration = 20 * time.Second

// LoadTrace resolves the CLI's trace source: a dataset file when path is
// non-empty, otherwise a commute synthesized from the named preset for dur
// on the given tick and seed (zero values take the defaults).
func LoadTrace(path, preset string, dur, tick time.Duration, seed int64) (mobility.Trace, error) {
	if path != "" {
		return mobility.Load(path)
	}
	p, err := mobility.ParsePreset(preset)
	if err != nil {
		return mobility.Trace{}, err
	}
	if dur <= 0 {
		dur = DefaultTraceDuration
	}
	if tick <= 0 {
		tick = mobility.DefaultTick
	}
	return mobility.Synthesize(p, dur, tick, seed)
}

// CompileTrace lowers a trace for replay on the CellularLTE path: irregular
// (dataset) traces are first resampled to the default tick, then compiled
// against the radio hop (hop 0) with the LTE path's non-radio RTT share.
func CompileTrace(tr mobility.Trace) (*mobility.Compiled, error) {
	if tr.Tick == 0 {
		rs, err := tr.Resample(mobility.DefaultTick)
		if err != nil {
			return nil, err
		}
		tr = rs
	}
	return mobility.Compile(tr, mobility.CompileOptions{
		Hop:      0,
		OtherRTT: TraceOtherRTT,
	})
}

// TracePoint is one cell of the trace experiment.
type TracePoint struct {
	// Label names the cell, e.g. "bbr Low-End".
	Label string
	// CC is the congestion control under test.
	CC string
	// Spec is the ready-to-run experiment with the compiled trace armed.
	Spec core.Spec
}

// TraceExperiment replays one compiled trace across congestion controls and
// CPU configurations. It needs its own runner because the deliverable is
// the per-segment breakdown, not whole-run means.
type TraceExperiment struct {
	ID       string
	Title    string
	Compiled *mobility.Compiled
	Points   []TracePoint
}

// NewTraceExperiment compiles the trace and builds the point grid:
// {bbr, bbr2, cubic} × {Low-End, Default}, single connection over the LTE
// uplink, invariant checker armed, run for exactly the trace's duration.
func NewTraceExperiment(tr mobility.Trace) (TraceExperiment, error) {
	c, err := CompileTrace(tr)
	if err != nil {
		return TraceExperiment{}, err
	}
	dur := c.Trace.Duration()
	warmup := dur / 5
	if warmup > time.Second {
		warmup = time.Second
	}
	var pts []TracePoint
	for _, cfg := range []device.Config{device.LowEnd, device.Default} {
		for _, ccName := range []string{"bbr", "bbr2", "cubic"} {
			s := core.Spec{
				Device:   device.Pixel4,
				CPU:      cfg,
				CC:       ccName,
				Conns:    1,
				Network:  core.Cellular,
				Duration: dur,
				Warmup:   warmup,
				Interval: TraceInterval,
				Mobility: c,
				Check:    true,
			}
			pts = append(pts, TracePoint{
				Label: fmt.Sprintf("%s %s", ccName, cfg),
				CC:    ccName,
				Spec:  s,
			})
		}
	}
	return TraceExperiment{
		ID:       "trace",
		Title:    fmt.Sprintf("Trace replay %q: BBR vs BBRv2 vs Cubic over a measured commute", c.Trace.Name),
		Compiled: c,
		Points:   pts,
	}, nil
}

// TraceSegmentRow summarizes one trace segment for one point.
type TraceSegmentRow struct {
	Segment mobility.Segment
	// GoodputMbps is the seed-mean goodput across the segment's intervals.
	GoodputMbps float64
	// RTTms is the seed-mean smoothed RTT across the segment's intervals.
	RTTms float64
	// Retransmits is the seed-mean retransmission count in the segment.
	Retransmits float64
}

// TraceRow is the measured outcome of one trace point.
type TraceRow struct {
	Point TracePoint
	// GoodputMbps / GoodputCI are the whole-run seed mean and 95% CI.
	GoodputMbps float64
	GoodputCI   float64
	// RTTms is the seed-mean smoothed RTT over the whole run.
	RTTms float64
	// Retransmits is the seed-mean total retransmissions.
	Retransmits float64
	// Segments is the per-segment breakdown, parallel to
	// Point.Spec.Mobility.Segments.
	Segments []TraceSegmentRow
}

// segmentStats folds one run's interval series into per-segment sums.
// Intervals are assigned to the segment containing their midpoint.
func segmentStats(ivals []iperf.Interval, segs []mobility.Segment) []TraceSegmentRow {
	rows := make([]TraceSegmentRow, len(segs))
	counts := make([]int, len(segs))
	for i := range rows {
		rows[i].Segment = segs[i]
	}
	for _, iv := range ivals {
		mid := iv.Start + (iv.End-iv.Start)/2
		for i, s := range segs {
			if mid >= s.Start && mid < s.End {
				rows[i].GoodputMbps += iv.Goodput.Mbit()
				rows[i].RTTms += float64(iv.AvgRTT) / 1e6
				rows[i].Retransmits += float64(iv.Retransmits)
				counts[i]++
				break
			}
		}
	}
	for i := range rows {
		if counts[i] > 0 {
			rows[i].GoodputMbps /= float64(counts[i])
			rows[i].RTTms /= float64(counts[i])
		}
	}
	return rows
}

// RunTrace executes every point across seeds. Runs are deterministic per
// (seed, trace): same inputs, same rows, byte for byte.
func RunTrace(e TraceExperiment, seeds int) ([]TraceRow, error) {
	return RunTracePool(e, seeds, 1)
}

// RunTracePool is RunTrace fanned across up to workers OS threads, one
// point per task; rows come back in point order, identical to a serial
// run's.
func RunTracePool(e TraceExperiment, seeds, workers int) ([]TraceRow, error) {
	if seeds <= 0 {
		seeds = 1
	}
	rows := make([]TraceRow, len(e.Points))
	err := ForEach(len(e.Points), workers, func(i int) (err error) {
		p := e.Points[i]
		last := p.Spec
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("repro %s/%s: panic: %v\nrepro: %s\n%s",
					e.ID, p.Label, r, core.ReproLine(last), debug.Stack())
			}
		}()
		var goodput, rtt, retx stats.Online
		segs := e.Compiled.Segments
		segAcc := make([]TraceSegmentRow, len(segs))
		for i := range segAcc {
			segAcc[i].Segment = segs[i]
		}
		for s := 0; s < seeds; s++ {
			spec := p.Spec
			spec.Seed = int64(1 + s)
			last = spec
			res, err := core.Run(spec)
			if err != nil {
				return fmt.Errorf("repro %s/%s seed %d: %w", e.ID, p.Label, spec.Seed, err)
			}
			goodput.Add(float64(res.Report.Goodput))
			rtt.Add(float64(res.Report.AvgRTT))
			retx.Add(float64(res.Report.Retransmits))
			for j, sr := range segmentStats(res.Report.Intervals, segs) {
				segAcc[j].GoodputMbps += sr.GoodputMbps
				segAcc[j].RTTms += sr.RTTms
				segAcc[j].Retransmits += sr.Retransmits
			}
		}
		for j := range segAcc {
			segAcc[j].GoodputMbps /= float64(seeds)
			segAcc[j].RTTms /= float64(seeds)
			segAcc[j].Retransmits /= float64(seeds)
		}
		rows[i] = TraceRow{
			Point:       p,
			GoodputMbps: goodput.Mean() / 1e6,
			GoodputCI:   goodput.CI95() / 1e6,
			RTTms:       rtt.Mean() / 1e6,
			Retransmits: retx.Mean(),
			Segments:    segAcc,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintTrace writes the overall table, the per-segment breakdown, and the
// BBR-vs-Cubic deltas per CPU configuration.
func PrintTrace(w io.Writer, e TraceExperiment, rows []TraceRow) {
	st := e.Compiled.Trace.Stats()
	fmt.Fprintf(w, "== %s: %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "trace: %v, mean %v peak %v, outage %.0f%%, mean RTT %v, %d fault events, %d segments\n",
		e.Compiled.Trace.Duration(), st.MeanRate, st.PeakRate, st.OutageFraction*100,
		st.MeanRTT.Round(time.Millisecond), len(e.Compiled.Schedule.Events), len(e.Compiled.Segments))
	fmt.Fprintf(w, "%-24s %9s %7s %8s %9s\n", "point", "Mbps", "±CI", "rtt ms", "retx")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %9.2f %7.2f %8.2f %9.0f\n",
			r.Point.Label, r.GoodputMbps, r.GoodputCI, r.RTTms, r.Retransmits)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "per-segment goodput (Mbps) / rtt (ms) / retx:\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s", r.Point.Label)
		for _, sr := range r.Segments {
			fmt.Fprintf(w, "  [%s %.0fs-%.0fs %.2f/%.1f/%.0f]",
				sr.Segment.Kind, sr.Segment.Start.Seconds(), sr.Segment.End.Seconds(),
				sr.GoodputMbps, sr.RTTms, sr.Retransmits)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	// Deltas against Cubic per CPU configuration.
	byLabel := map[string]TraceRow{}
	for _, r := range rows {
		byLabel[r.Point.Label] = r
	}
	for _, cfg := range []device.Config{device.LowEnd, device.Default} {
		cubic, ok := byLabel[fmt.Sprintf("cubic %s", cfg)]
		if !ok || cubic.GoodputMbps == 0 {
			continue
		}
		for _, ccName := range []string{"bbr", "bbr2"} {
			r, ok := byLabel[fmt.Sprintf("%s %s", ccName, cfg)]
			if !ok {
				continue
			}
			fmt.Fprintf(w, "%s vs cubic (%s): goodput %+.1f%%, rtt %+.1f%%, retx %+.0f\n",
				ccName, cfg,
				100*(r.GoodputMbps-cubic.GoodputMbps)/cubic.GoodputMbps,
				100*(r.RTTms-cubic.RTTms)/cubic.RTTms,
				r.Retransmits-cubic.Retransmits)
		}
	}
	fmt.Fprintln(w)
}
