// Fault-tolerant grid execution: one broken point must never cost the rest
// of a long sweep. The resilient runner contains per-point panics and
// deadline blowouts into structured failure rows, checkpoints every
// finished point to a JSONL journal, resumes a killed grid byte-identically
// from that journal, and retries infra-class failures (wall deadline on a
// loaded machine) with backoff — never deterministic simulation errors,
// which would reproduce exactly.
package repro

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sync"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/telemetry"
)

// RunOpts configures a resilient grid run.
type RunOpts struct {
	// Dur is the simulated transfer time per run (default DefaultDuration).
	Dur time.Duration
	// Seeds is the seed count per point (default DefaultSeeds).
	Seeds int
	// Telemetry is applied to every run.
	Telemetry telemetry.Config
	// Workers caps the points running in parallel (0 = one per CPU).
	Workers int
	// Journal is the JSONL checkpoint path ("" = no journal): a header
	// line describing the grid, then one entry per finished point, written
	// as each point completes.
	Journal string
	// Resume skips points already recorded in Journal. The reconstructed
	// rows print byte-identically to the original run's. A missing journal
	// file starts fresh.
	Resume bool
	// Retries is how many extra attempts an infra-class failure (wall
	// deadline) gets before its row records the failure. Deterministic
	// failures are never retried.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt
	// (default 100ms).
	Backoff time.Duration
	// Progress, when set, receives per-point lifecycle callbacks (live
	// progress reporting). Journal-resumed points report PointDone without a
	// preceding PointStart. Never influences execution.
	Progress Observer
	// Shards splits each eligible run across engine shards
	// (core.Spec.Shards); results and journal entries are identical to a
	// serial run's, so a journal written with one shard count resumes
	// cleanly under another.
	Shards int
}

func (o RunOpts) withDefaults() RunOpts {
	if o.Dur <= 0 {
		o.Dur = DefaultDuration
	}
	if o.Seeds <= 0 {
		o.Seeds = DefaultSeeds
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	return o
}

// Failure records one contained point failure.
type Failure struct {
	// Class is the core failure class (core.FailPanic, core.FailViolation,
	// core.FailMaxEvents, core.FailWallClock, core.FailStall,
	// core.FailError).
	Class string `json:"class"`
	// Rule is the first violated invariant rule (violation class only).
	Rule string `json:"rule,omitempty"`
	// Msg is the failure text.
	Msg string `json:"msg"`
	// Repro is the one-command reproduction line (spec JSON + seed).
	Repro string `json:"repro,omitempty"`
	// Attempts is how many times the point ran (>1 only after infra
	// retries).
	Attempts int `json:"attempts"`
}

// FailedRows counts rows carrying a contained failure.
func FailedRows(rows []Row) int {
	n := 0
	for _, r := range rows {
		if r.Failure != nil {
			n++
		}
	}
	return n
}

// RunExperimentResilient executes the grid with per-point fault
// containment: a panic, invariant violation or budget trip in one point
// becomes that row's Failure while every other point still runs. The
// returned error reports journal I/O problems only — per-point outcomes,
// including failures, are in the rows.
func RunExperimentResilient(e Experiment, opts RunOpts) ([]Row, error) {
	opts = opts.withDefaults()
	rows := make([]Row, len(e.Points))
	done := make([]bool, len(e.Points))
	var jw *journalWriter
	if opts.Journal != "" {
		var entries []journalEntry
		existed := false
		if opts.Resume {
			var err error
			entries, existed, err = readJournal(opts.Journal, e, opts)
			if err != nil {
				return nil, err
			}
			for _, ent := range entries {
				rows[ent.I] = ent.row(e.Points[ent.I])
				done[ent.I] = true
			}
		}
		var err error
		jw, err = openJournal(opts.Journal, e, opts, existed)
		if err != nil {
			return nil, err
		}
		defer jw.close()
	}
	if opts.Progress != nil {
		opts.Progress.BeginExperiment(e.ID, len(e.Points))
		for i, d := range done {
			if d {
				opts.Progress.PointDone(0, i, rows[i].Events, rows[i].Failure != nil)
			}
		}
	}
	err := ForEachW(len(e.Points), opts.Workers, func(w, i int) error {
		if done[i] {
			return nil
		}
		if opts.Progress != nil {
			opts.Progress.PointStart(w, i, e.Points[i].Label)
		}
		rows[i] = runPointResilient(e.Points[i], opts)
		if opts.Progress != nil {
			opts.Progress.PointDone(w, i, rows[i].Events, rows[i].Failure != nil)
		}
		if jw != nil {
			return jw.append(entryFromRow(i, rows[i]))
		}
		return nil
	})
	if err != nil {
		return rows, fmt.Errorf("repro %s: checkpoint journal: %w", e.ID, err)
	}
	return rows, nil
}

// runPointResilient runs one point to a Row, retrying infra-class failures
// with doubling backoff and folding any terminal failure into Row.Failure.
func runPointResilient(p Point, opts RunOpts) Row {
	spec := pointSpec(p, opts.Dur, opts.Telemetry, opts.Shards)
	backoff := opts.Backoff
	for attempt := 1; ; attempt++ {
		row, err := runPointAttempt(p, spec, opts.Seeds)
		if err == nil {
			return row
		}
		class, rule := classifyPointFailure(err)
		if core.InfraFailure(class) && attempt <= opts.Retries {
			time.Sleep(backoff)
			backoff *= 2
			continue
		}
		repro := core.ReproLine(spec)
		var re *core.RunError
		if errors.As(err, &re) {
			// The exact failing spec (exact seed) when the run got far
			// enough to know it.
			repro = core.ReproLine(re.Spec)
		}
		return Row{Point: p, Failure: &Failure{
			Class:    class,
			Rule:     rule,
			Msg:      err.Error(),
			Repro:    repro,
			Attempts: attempt,
		}}
	}
}

// runPointAttempt is one guarded execution of a point: a panic anywhere in
// the simulation surfaces as a *panicError instead of killing the grid.
func runPointAttempt(p Point, spec core.Spec, seeds int) (row Row, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r, stack: debug.Stack()}
		}
	}()
	agg, err := core.RunSeeds(spec, seeds)
	if err != nil {
		return Row{}, err
	}
	return rowFromAggregate(p, agg), nil
}

// panicError carries a recovered panic through the error-classification
// path.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// classifyPointFailure extends core.ClassifyFailure with the panic class
// only runners can observe.
func classifyPointFailure(err error) (class, rule string) {
	var pe *panicError
	if errors.As(err, &pe) {
		return core.FailPanic, ""
	}
	return core.ClassifyFailure(err)
}

// journalVersion guards the checkpoint format.
const journalVersion = 1

// journalHeader is the journal's first line: enough of the run
// configuration to refuse resuming under different settings (different
// duration or seeds would silently mix incompatible rows).
type journalHeader struct {
	V       int    `json:"v"`
	Exp     string `json:"exp"`
	Dur     string `json:"dur"`
	Seeds   int    `json:"seeds"`
	Points  int    `json:"points"`
	Trace   bool   `json:"trace,omitempty"`
	Metrics bool   `json:"metrics,omitempty"`
	Profile bool   `json:"profile,omitempty"`
}

func headerFor(e Experiment, opts RunOpts) journalHeader {
	return journalHeader{
		V:       journalVersion,
		Exp:     e.ID,
		Dur:     opts.Dur.String(),
		Seeds:   opts.Seeds,
		Points:  len(e.Points),
		Trace:   opts.Telemetry.Trace,
		Metrics: opts.Telemetry.Metrics,
		Profile: opts.Telemetry.Profile,
	}
}

// journalEntry is one finished point. All measured fields are JSON numbers;
// Go's float64 round-trips exactly through encoding/json, so a resumed row
// prints byte-identically to the original.
type journalEntry struct {
	I              int      `json:"i"`
	Label          string   `json:"label"`
	GoodputMbps    float64  `json:"goodput_mbps"`
	GoodputCI      float64  `json:"goodput_ci"`
	RTTms          float64  `json:"rtt_ms"`
	MinRTTms       float64  `json:"min_rtt_ms"`
	Retransmits    float64  `json:"retransmits"`
	SKBKbits       float64  `json:"skb_kbits"`
	IdleMs         float64  `json:"idle_ms"`
	ExpectedMbps   float64  `json:"expected_mbps"`
	MaxBufKB       float64  `json:"max_buf_kb"`
	CPUUtil        float64  `json:"cpu_util"`
	Jain           float64  `json:"jain"`
	PacingShare    float64  `json:"pacing_share"`
	AppKind        string   `json:"app_kind,omitempty"`
	Requests       int64    `json:"requests,omitempty"`
	LatP50ms       float64  `json:"lat_p50_ms,omitempty"`
	LatP90ms       float64  `json:"lat_p90_ms,omitempty"`
	LatP99ms       float64  `json:"lat_p99_ms,omitempty"`
	RebufferPct    float64  `json:"rebuffer_pct,omitempty"`
	FlowsStarted   int64    `json:"flows_started,omitempty"`
	FlowsCompleted int64    `json:"flows_completed,omitempty"`
	FlowsPeakLive  int      `json:"flows_peak_live,omitempty"`
	FCTP50ms       float64  `json:"fct_p50_ms,omitempty"`
	FCTP99ms       float64  `json:"fct_p99_ms,omitempty"`
	FastPathShare  float64  `json:"fast_path_share,omitempty"`
	Events         uint64   `json:"events,omitempty"`
	Profiled       bool     `json:"profiled,omitempty"`
	Failure        *Failure `json:"failure,omitempty"`
}

func entryFromRow(i int, r Row) journalEntry {
	return journalEntry{
		I:              i,
		Label:          r.Point.Label,
		GoodputMbps:    r.GoodputMbps,
		GoodputCI:      r.GoodputCI,
		RTTms:          r.RTTms,
		MinRTTms:       r.MinRTTms,
		Retransmits:    r.Retransmits,
		SKBKbits:       r.SKBKbits,
		IdleMs:         r.IdleMs,
		ExpectedMbps:   r.ExpectedMbps,
		MaxBufKB:       r.MaxBufKB,
		CPUUtil:        r.CPUUtil,
		Jain:           r.Jain,
		PacingShare:    r.PacingShare,
		AppKind:        r.AppKind,
		Requests:       r.Requests,
		LatP50ms:       r.LatP50ms,
		LatP90ms:       r.LatP90ms,
		LatP99ms:       r.LatP99ms,
		RebufferPct:    r.RebufferPct,
		FlowsStarted:   r.FlowsStarted,
		FlowsCompleted: r.FlowsCompleted,
		FlowsPeakLive:  r.FlowsPeakLive,
		FCTP50ms:       r.FCTP50ms,
		FCTP99ms:       r.FCTP99ms,
		FastPathShare:  r.FastPathShare,
		Events:         r.Events,
		Profiled:       r.Profiled,
		Failure:        r.Failure,
	}
}

// row reconstructs the Row for point p. Sample is nil — the in-memory
// result is gone — but every printed field survives.
func (ent journalEntry) row(p Point) Row {
	return Row{
		Point:          p,
		GoodputMbps:    ent.GoodputMbps,
		GoodputCI:      ent.GoodputCI,
		RTTms:          ent.RTTms,
		MinRTTms:       ent.MinRTTms,
		Retransmits:    ent.Retransmits,
		SKBKbits:       ent.SKBKbits,
		IdleMs:         ent.IdleMs,
		ExpectedMbps:   ent.ExpectedMbps,
		MaxBufKB:       ent.MaxBufKB,
		CPUUtil:        ent.CPUUtil,
		Jain:           ent.Jain,
		PacingShare:    ent.PacingShare,
		AppKind:        ent.AppKind,
		Requests:       ent.Requests,
		LatP50ms:       ent.LatP50ms,
		LatP90ms:       ent.LatP90ms,
		LatP99ms:       ent.LatP99ms,
		RebufferPct:    ent.RebufferPct,
		FlowsStarted:   ent.FlowsStarted,
		FlowsCompleted: ent.FlowsCompleted,
		FlowsPeakLive:  ent.FlowsPeakLive,
		FCTP50ms:       ent.FCTP50ms,
		FCTP99ms:       ent.FCTP99ms,
		FastPathShare:  ent.FastPathShare,
		Events:         ent.Events,
		Profiled:       ent.Profiled,
		Failure:        ent.Failure,
	}
}

// readJournal loads and validates an existing journal. A missing file is a
// fresh start (nil entries, existed false). A trailing line that does not
// parse is tolerated — the writer died mid-entry — but a malformed line
// followed by valid ones means corruption and fails.
func readJournal(path string, e Experiment, opts RunOpts) ([]journalEntry, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("repro: journal %s: %w", path, err)
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if len(sc.Text()) > 0 {
			lines = append(lines, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, false, fmt.Errorf("repro: journal %s: %w", path, err)
	}
	if len(lines) == 0 {
		return nil, false, nil
	}
	var hdr journalHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		return nil, false, fmt.Errorf("repro: journal %s: bad header: %w", path, err)
	}
	if want := headerFor(e, opts); hdr != want {
		return nil, false, fmt.Errorf("repro: journal %s was written by a different run configuration (journal %+v, this run %+v)", path, hdr, want)
	}
	var entries []journalEntry
	for n, line := range lines[1:] {
		var ent journalEntry
		if err := json.Unmarshal([]byte(line), &ent); err != nil {
			if n == len(lines)-2 {
				break // torn final write: re-run that point
			}
			return nil, false, fmt.Errorf("repro: journal %s: entry %d: %w", path, n, err)
		}
		if ent.I < 0 || ent.I >= len(e.Points) {
			return nil, false, fmt.Errorf("repro: journal %s: entry %d: point index %d out of range", path, n, ent.I)
		}
		if ent.Label != e.Points[ent.I].Label {
			return nil, false, fmt.Errorf("repro: journal %s: entry %d: label %q does not match point %d (%q)", path, n, ent.Label, ent.I, e.Points[ent.I].Label)
		}
		entries = append(entries, ent)
	}
	return entries, true, nil
}

// journalWriter appends entries under a lock (grid points finish on
// arbitrary workers). Each entry is one Write call, so a crash tears at
// most the final line.
type journalWriter struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal opens the checkpoint for appending. When the file was not a
// valid prior journal for this run, it is truncated and a fresh header
// written.
func openJournal(path string, e Experiment, opts RunOpts, existed bool) (*journalWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !existed {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("repro: journal %s: %w", path, err)
	}
	jw := &journalWriter{f: f}
	if !existed {
		data, err := json.Marshal(headerFor(e, opts))
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(append(data, '\n')); err != nil {
			f.Close()
			return nil, fmt.Errorf("repro: journal %s: %w", path, err)
		}
	}
	return jw, nil
}

func (jw *journalWriter) append(ent journalEntry) error {
	data, err := json.Marshal(ent)
	if err != nil {
		return err
	}
	jw.mu.Lock()
	defer jw.mu.Unlock()
	_, err = jw.f.Write(append(data, '\n'))
	return err
}

func (jw *journalWriter) close() error { return jw.f.Close() }
