package repro

import (
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/device"
	"mobbr/internal/faults"
	"mobbr/internal/iperf"
	"mobbr/internal/stats"
	"mobbr/internal/units"
)

// The recovery experiment extends the paper's mobility discussion (§7.2,
// Appendix A.1): phones do not sit one meter from an access point — links
// black out in elevators and tunnels and hand over between LTE and WiFi.
// It measures how long each congestion control needs to regain its
// pre-fault goodput after the link returns, with the invariant checker
// armed throughout.

// RecoveryFault names the injected fault pattern.
type RecoveryFault string

// Recovery faults.
const (
	// FaultBlackout is a 2 s total outage on the LTE radio link.
	FaultBlackout RecoveryFault = "blackout"
	// FaultHandover is a hard LTE→WiFi vertical handover: a 200 ms dead
	// gap, then the link comes back ~33× faster with ~30× lower delay.
	FaultHandover RecoveryFault = "handover"
)

// Recovery timing constants (virtual time).
const (
	// RecoveryDuration is the per-run transfer time; the fault hits at
	// recoveryFaultStart, leaving several seconds to measure recovery.
	RecoveryDuration = 10 * time.Second
	// RecoveryWarmup excludes the initial ramp from the pre-fault
	// baseline.
	RecoveryWarmup = time.Second
	// RecoveryInterval is the iperf3-style reporting granularity the
	// recovery time is measured at.
	RecoveryInterval = 100 * time.Millisecond

	recoveryFaultStart = 3 * time.Second
	recoveryBlackout   = 2 * time.Second
	recoveryOutage     = 200 * time.Millisecond
)

// recoveryThreshold is the fraction of pre-fault goodput that counts as
// "recovered" (90%).
const recoveryThreshold = 0.9

// RecoveryPoint is one cell of the recovery experiment.
type RecoveryPoint struct {
	// Label names the cell, e.g. "bbr blackout Low-End".
	Label string
	// CC is the congestion control under test.
	CC string
	// Fault is the injected pattern.
	Fault RecoveryFault
	// FaultEnd is when the link is back (recovery time is counted from
	// here).
	FaultEnd time.Duration
	// Spec is the ready-to-run experiment (faults installed, checker on).
	Spec core.Spec
}

// RecoveryExperiment is the fault-recovery counterpart of Experiment; it
// needs its own runner because the metric (time back to 90% of pre-fault
// goodput) comes from the interval series, not the whole-run means.
type RecoveryExperiment struct {
	ID     string
	Title  string
	Points []RecoveryPoint
}

// recoverySchedule builds the fault schedule for one pattern on the LTE
// radio hop (hop 0).
func recoverySchedule(f RecoveryFault) (faults.Schedule, time.Duration) {
	switch f {
	case FaultHandover:
		return faults.Schedule{Events: []faults.Event{
			faults.Handover{
				At:     recoveryFaultStart,
				Outage: recoveryOutage,
				Rate:   600 * units.Mbps,
				Delay:  800 * time.Microsecond,
			},
		}}, recoveryFaultStart + recoveryOutage
	default: // FaultBlackout
		return faults.Schedule{Events: []faults.Event{
			faults.Blackout{Start: recoveryFaultStart, Duration: recoveryBlackout},
		}}, recoveryFaultStart + recoveryBlackout
	}
}

// Recovery returns the fault-recovery experiment: BBR vs BBRv2 vs Cubic
// through a 2 s blackout and an LTE→WiFi handover, on the Low-End and
// Default CPU configurations, single connection over the LTE uplink.
func Recovery() RecoveryExperiment {
	var pts []RecoveryPoint
	for _, cfg := range []device.Config{device.LowEnd, device.Default} {
		for _, fault := range []RecoveryFault{FaultBlackout, FaultHandover} {
			for _, ccName := range []string{"bbr", "bbr2", "cubic"} {
				sched, end := recoverySchedule(fault)
				s := core.Spec{
					Device:   device.Pixel4,
					CPU:      cfg,
					CC:       ccName,
					Conns:    1,
					Network:  core.Cellular,
					Duration: RecoveryDuration,
					Warmup:   RecoveryWarmup,
					Interval: RecoveryInterval,
					Faults:   sched,
					Check:    true,
				}
				pts = append(pts, RecoveryPoint{
					Label:    fmt.Sprintf("%s %s %s", ccName, fault, cfg),
					CC:       ccName,
					Fault:    fault,
					FaultEnd: end,
					Spec:     s,
				})
			}
		}
	}
	return RecoveryExperiment{
		ID:     "recovery",
		Title:  "Goodput recovery after blackout and LTE→WiFi handover (§7.2 extension)",
		Points: pts,
	}
}

// RecoveryRow is the measured outcome of one recovery point.
type RecoveryRow struct {
	Point RecoveryPoint
	// PreFaultMbps is the seed-mean goodput over [warmup, fault start).
	PreFaultMbps float64
	// RecoveryMs is the seed-mean time from link return to the first
	// reporting interval at ≥ 90% of the pre-fault goodput. Censored at
	// run end for seeds that never recover.
	RecoveryMs float64
	// RecoveryCI is the 95% confidence half-width of RecoveryMs.
	RecoveryCI float64
	// Recovered is how many of the seeds regained 90% before run end.
	Recovered int
	// Seeds is the number of seeds run.
	Seeds int
	// SpuriousRTOs is the seed-mean count of F-RTO-detected spurious
	// timeouts (expected after the blackout's first ACK returns).
	SpuriousRTOs float64
	// Retransmits is the seed-mean total retransmissions.
	Retransmits float64
}

// recoveryTime extracts (pre-fault goodput, recovery time, recovered) from
// one run's interval series.
func recoveryTime(ivals []iperf.Interval, warmup, faultStart, faultEnd, dur time.Duration) (pre float64, rec time.Duration, ok bool) {
	var preSum float64
	var preN int
	for _, iv := range ivals {
		if iv.Start >= warmup && iv.End <= faultStart {
			preSum += float64(iv.Goodput)
			preN++
		}
	}
	if preN == 0 {
		return 0, dur - faultEnd, false
	}
	pre = preSum / float64(preN)
	target := recoveryThreshold * pre
	for _, iv := range ivals {
		if iv.Start >= faultEnd && float64(iv.Goodput) >= target {
			return pre, iv.End - faultEnd, true
		}
	}
	return pre, dur - faultEnd, false
}

// RecoveryTime extracts (pre-fault goodput in bit/s, recovery time,
// recovered before run end) for this point from one run's interval series.
func (p RecoveryPoint) RecoveryTime(ivals []iperf.Interval) (pre float64, rec time.Duration, ok bool) {
	return recoveryTime(ivals, p.Spec.Warmup, recoveryFaultStart, p.FaultEnd, p.Spec.Duration)
}

// RunRecovery executes every point across seeds and computes the rows.
// Runs are deterministic per seed: same seeds, same rows.
func RunRecovery(e RecoveryExperiment, seeds int) ([]RecoveryRow, error) {
	return RunRecoveryPool(e, seeds, 1)
}

// RunRecoveryPool is RunRecovery fanned across up to workers OS threads,
// one point per task; rows come back in point order, identical to a serial
// run's.
func RunRecoveryPool(e RecoveryExperiment, seeds, workers int) ([]RecoveryRow, error) {
	if seeds <= 0 {
		seeds = 1
	}
	rows := make([]RecoveryRow, len(e.Points))
	err := ForEach(len(e.Points), workers, func(i int) (err error) {
		p := e.Points[i]
		last := p.Spec
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("repro %s/%s: panic: %v\nrepro: %s\n%s",
					e.ID, p.Label, r, core.ReproLine(last), debug.Stack())
			}
		}()
		var (
			pre, spurious, retx stats.Online
			recMs               stats.Online
			recovered           int
		)
		for s := 0; s < seeds; s++ {
			spec := p.Spec
			spec.Seed = int64(1 + s)
			last = spec
			res, err := core.Run(spec)
			if err != nil {
				return fmt.Errorf("repro %s/%s seed %d: %w", e.ID, p.Label, spec.Seed, err)
			}
			preG, rec, ok := recoveryTime(res.Report.Intervals,
				spec.Warmup, recoveryFaultStart, p.FaultEnd, spec.Duration)
			pre.Add(preG)
			recMs.Add(float64(rec) / 1e6)
			if ok {
				recovered++
			}
			spurious.Add(float64(res.Report.SpuriousRTOs))
			retx.Add(float64(res.Report.Retransmits))
		}
		rows[i] = RecoveryRow{
			Point:        p,
			PreFaultMbps: pre.Mean() / 1e6,
			RecoveryMs:   recMs.Mean(),
			RecoveryCI:   recMs.CI95(),
			Recovered:    recovered,
			Seeds:        seeds,
			SpuriousRTOs: spurious.Mean(),
			Retransmits:  retx.Mean(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintRecovery writes the rows as an aligned table.
func PrintRecovery(w io.Writer, e RecoveryExperiment, rows []RecoveryRow) {
	fmt.Fprintf(w, "== %s: %s\n", e.ID, e.Title)
	fmt.Fprintf(w, "%-28s %10s %12s %7s %10s %9s %9s\n",
		"point", "pre Mbps", "recovery ms", "±CI", "recovered", "spurious", "retx")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %10.1f %12.0f %7.0f %7d/%-2d %9.1f %9.0f\n",
			r.Point.Label, r.PreFaultMbps, r.RecoveryMs, r.RecoveryCI,
			r.Recovered, r.Seeds, r.SpuriousRTOs, r.Retransmits)
	}
	fmt.Fprintln(w)
}
