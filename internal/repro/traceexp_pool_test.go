package repro

import (
	"reflect"
	"testing"
	"time"

	"mobbr/internal/mobility"
)

// TestTraceGridParallelMatchesSerial runs a pooled mobility-trace grid at
// -j 1 and -j 8 and requires deep-equal rows. Every run carries a private
// packet/ACK pool, so this doubles as the race gate for the recycler: run
// under `go test -race` (CI does) it proves pools never cross goroutines.
func TestTraceGridParallelMatchesSerial(t *testing.T) {
	tr, err := mobility.Synthesize(mobility.Train, 2*time.Second, mobility.DefaultTick, 7)
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	e, err := NewTraceExperiment(tr)
	if err != nil {
		t.Fatalf("NewTraceExperiment: %v", err)
	}
	serial, err := RunTracePool(e, 2, 1)
	if err != nil {
		t.Fatalf("-j 1: %v", err)
	}
	par, err := RunTracePool(e, 2, 8)
	if err != nil {
		t.Fatalf("-j 8: %v", err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatal("trace grid rows differ between -j 1 and -j 8")
	}
}
