package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobbr/internal/core"
)

// chaosGrid is a small grid with two healthy points and two that fail in
// different deterministic ways (a panic inside an engine callback, an
// invariant violation caught by the checker).
func chaosGrid() Experiment {
	ok1 := core.Spec{CC: "cubic", Conns: 1}
	boom := core.Spec{CC: "cubic", Conns: 1,
		Inject: core.Inject{Kind: core.InjectPanic, At: 100 * time.Millisecond}}
	ok2 := core.Spec{CC: "bbr", Conns: 2}
	corrupt := core.Spec{CC: "cubic", Conns: 1, Check: true,
		Inject: core.Inject{Kind: core.InjectCorruptInflight, At: 100 * time.Millisecond}}
	return Experiment{
		ID:    "chaosgrid",
		Title: "resilient-runner test grid",
		Points: []Point{
			{Label: "healthy cubic", Spec: ok1},
			{Label: "panics mid-run", Spec: boom},
			{Label: "healthy bbr", Spec: ok2},
			{Label: "corrupts inflight", Spec: corrupt},
		},
	}
}

var chaosOpts = RunOpts{
	Dur:     400 * time.Millisecond,
	Seeds:   1,
	Workers: 2,
	Backoff: time.Millisecond,
}

// TestResilientContainsFailures: the two broken points must each produce a
// structured failure row while both healthy points still complete.
func TestResilientContainsFailures(t *testing.T) {
	rows, err := RunExperimentResilient(chaosGrid(), chaosOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, i := range []int{0, 2} {
		if rows[i].Failure != nil {
			t.Errorf("healthy point %d failed: %+v", i, rows[i].Failure)
		}
		if rows[i].GoodputMbps <= 0 {
			t.Errorf("healthy point %d has no goodput", i)
		}
	}
	p := rows[1].Failure
	if p == nil || p.Class != core.FailPanic {
		t.Fatalf("panic point failure = %+v, want class %q", p, core.FailPanic)
	}
	if p.Attempts != 1 {
		t.Errorf("deterministic panic retried: %d attempts", p.Attempts)
	}
	if !strings.Contains(p.Repro, "-run-spec") {
		t.Errorf("panic failure lacks a repro line: %q", p.Repro)
	}
	v := rows[3].Failure
	if v == nil || v.Class != core.FailViolation {
		t.Fatalf("violation point failure = %+v, want class %q", v, core.FailViolation)
	}
	if v.Rule != "inflight/counter" {
		t.Errorf("violation rule = %q, want inflight/counter", v.Rule)
	}
	if !strings.Contains(v.Repro, "-run-spec") || !strings.Contains(v.Msg, "repro:") {
		t.Errorf("violation failure lacks repro: repro=%q msg=%q", v.Repro, v.Msg)
	}
}

// TestResilientResumeByteIdentical is the checkpoint gate: kill a grid
// after two points, resume from the journal, and the printed table must be
// byte-identical to an uninterrupted run's — including the failure rows.
func TestResilientResumeByteIdentical(t *testing.T) {
	e := chaosGrid()
	dir := t.TempDir()

	full := chaosOpts
	full.Journal = filepath.Join(dir, "full.jsonl")
	fullRows, err := RunExperimentResilient(e, full)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	Print(&want, e, fullRows)

	// Simulate a mid-grid kill: keep the header and the first two entries.
	data, err := os.ReadFile(full.Journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1+len(e.Points) {
		t.Fatalf("journal has %d lines, want %d", len(lines), 1+len(e.Points))
	}
	torn := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(torn, []byte(strings.Join(lines[:3], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	resume := chaosOpts
	resume.Journal = torn
	resume.Resume = true
	resumedRows, err := RunExperimentResilient(e, resume)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	Print(&got, e, resumedRows)
	if got.String() != want.String() {
		t.Fatalf("resumed output diverged:\n--- full\n%s--- resumed\n%s", want.String(), got.String())
	}

	// Only the two missing points may have been re-run and appended.
	after, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimRight(string(after), "\n"), "\n")); n != 1+len(e.Points) {
		t.Fatalf("resumed journal has %d lines, want %d (completed points must be skipped)", n, 1+len(e.Points))
	}
}

// TestResilientResumeTornEntry: a torn final line (writer died mid-entry)
// re-runs that point instead of failing the resume.
func TestResilientResumeTornEntry(t *testing.T) {
	e := chaosGrid()
	dir := t.TempDir()
	opts := chaosOpts
	opts.Journal = filepath.Join(dir, "j.jsonl")
	if _, err := RunExperimentResilient(e, opts); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(opts.Journal)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through its final entry.
	chopped := data[:len(data)-17]
	if err := os.WriteFile(opts.Journal, chopped, 0o644); err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	rows, err := RunExperimentResilient(e, opts)
	if err != nil {
		t.Fatalf("torn journal not tolerated: %v", err)
	}
	if len(rows) != len(e.Points) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.GoodputMbps == 0 && r.Failure == nil {
			t.Errorf("point %d neither measured nor failed after torn resume", i)
		}
	}
}

// TestResumeArchiveInterplay: archiving a journal-resumed grid must produce
// exactly the same per-point artifacts as archiving the uninterrupted run —
// no duplicated, missing, or orphaned files — and re-archiving a smaller
// grid into the same directory must remove the stale artifacts.
func TestResumeArchiveInterplay(t *testing.T) {
	e := chaosGrid()
	dir := t.TempDir()

	full := chaosOpts
	full.Journal = filepath.Join(dir, "full.jsonl")
	fullRows, err := RunExperimentResilient(e, full)
	if err != nil {
		t.Fatal(err)
	}
	aopts := ArchiveOpts{Dur: chaosOpts.Dur, Seeds: chaosOpts.Seeds}
	aopts.Dir = filepath.Join(dir, "runFull")
	if err := ArchiveExperiment(e, fullRows, aopts); err != nil {
		t.Fatal(err)
	}

	// Kill the grid after two points, resume, archive the resumed rows.
	data, err := os.ReadFile(full.Journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	torn := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(torn, []byte(strings.Join(lines[:3], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	resume := chaosOpts
	resume.Journal = torn
	resume.Resume = true
	resumedRows, err := RunExperimentResilient(e, resume)
	if err != nil {
		t.Fatal(err)
	}
	ropts := aopts
	ropts.Dir = filepath.Join(dir, "runResumed")
	if err := ArchiveExperiment(e, resumedRows, ropts); err != nil {
		t.Fatal(err)
	}

	fullPts := filepath.Join(aopts.Dir, e.ID, "points")
	resPts := filepath.Join(ropts.Dir, e.ID, "points")
	fullFiles, err := os.ReadDir(fullPts)
	if err != nil {
		t.Fatal(err)
	}
	resFiles, err := os.ReadDir(resPts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fullFiles) != len(e.Points) || len(resFiles) != len(e.Points) {
		t.Fatalf("artifact counts: full=%d resumed=%d want %d",
			len(fullFiles), len(resFiles), len(e.Points))
	}
	for _, f := range fullFiles {
		a, err := os.ReadFile(filepath.Join(fullPts, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(resPts, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between full and resumed archives:\n--- full\n%s--- resumed\n%s",
				f.Name(), a, b)
		}
	}

	// Re-archiving a shrunk grid into the same run directory must not
	// orphan the old 002/003 artifacts.
	small := e
	small.Points = e.Points[:2]
	if err := ArchiveExperiment(small, fullRows[:2], aopts); err != nil {
		t.Fatal(err)
	}
	left, err := os.ReadDir(fullPts)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 {
		t.Fatalf("stale artifacts survived re-archive: %d files", len(left))
	}
}

// TestResilientResumeRejectsMismatchedConfig: resuming under different
// settings must refuse rather than mix incompatible rows.
func TestResilientResumeRejectsMismatchedConfig(t *testing.T) {
	e := chaosGrid()
	opts := chaosOpts
	opts.Journal = filepath.Join(t.TempDir(), "j.jsonl")
	if _, err := RunExperimentResilient(e, opts); err != nil {
		t.Fatal(err)
	}
	bad := opts
	bad.Resume = true
	bad.Seeds = 2
	if _, err := RunExperimentResilient(e, bad); err == nil ||
		!strings.Contains(err.Error(), "different run configuration") {
		t.Fatalf("mismatched resume accepted: %v", err)
	}
}

// TestResilientRetriesInfraOnly: the wall deadline (machine-dependent) is
// retried with backoff; deterministic failures are not.
func TestResilientRetriesInfraOnly(t *testing.T) {
	slow := core.Spec{CC: "cubic", Conns: 1, MaxWallClock: time.Nanosecond}
	e := Experiment{ID: "infra", Points: []Point{{Label: "wall-clock", Spec: slow}}}
	opts := chaosOpts
	opts.Retries = 2
	rows, err := RunExperimentResilient(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	f := rows[0].Failure
	if f == nil || f.Class != core.FailWallClock {
		t.Fatalf("failure = %+v, want class %q", f, core.FailWallClock)
	}
	if f.Attempts != 3 {
		t.Errorf("infra failure made %d attempts, want 3 (1 + 2 retries)", f.Attempts)
	}

	det := chaosGrid()
	det.Points = det.Points[3:4] // the invariant violation
	rows, err = RunExperimentResilient(det, opts)
	if err != nil {
		t.Fatal(err)
	}
	if f := rows[0].Failure; f == nil || f.Attempts != 1 {
		t.Errorf("deterministic violation retried: %+v", f)
	}
}
