// Run archiving: every experiment runner can write its finished rows as an
// obs run archive — manifest plus one strictly-versioned artifact per grid
// point — for rollup, live comparison, and mobbr-diff regression gating.
// Archives are written wholly after the run from the final rows, so a
// journal-resumed grid archives byte-identically to an uninterrupted one
// (modulo the manifest's wall-clock field and digests, which need the
// in-memory telemetry sample journal resumes no longer have).
package repro

import (
	"fmt"
	"path/filepath"
	"time"

	"mobbr/internal/core"
	"mobbr/internal/obs"
	"mobbr/internal/telemetry"
)

// ArchiveOpts configures run archiving. Dir is the archive root; each
// experiment writes into Dir/<exp-id>/.
type ArchiveOpts struct {
	// Dir is the archive root directory.
	Dir string
	// Dur and Seeds echo the run configuration into the manifest (standard
	// experiments; recovery and trace carry their own durations).
	Dur   time.Duration
	Seeds int
	// Telemetry records the flag set the run used.
	Telemetry telemetry.Config
	// Flags carries extra invocation knobs worth recording (e.g. a
	// deliberate -force-stride perturbation).
	Flags map[string]string
	// Wall is the grid's wall-clock time (manifest only, never in points).
	Wall time.Duration
}

func (o ArchiveOpts) manifest(id, title string, points int, seeds int, dur time.Duration) obs.Manifest {
	return obs.Manifest{
		Exp: id, Title: title, Points: points, Seeds: seeds, Dur: dur.String(),
		Trace: o.Telemetry.Trace, Metrics: o.Telemetry.Metrics, Profile: o.Telemetry.Profile,
		Flags: o.Flags, Git: obs.GitDescribe(), WallMs: float64(o.Wall) / 1e6,
	}
}

// archiveFailure converts a contained failure for the archive. The repro
// line is the load-bearing field: it replays the exact failing spec+seed.
func archiveFailure(f *Failure) *obs.Failure {
	if f == nil {
		return nil
	}
	return &obs.Failure{Class: f.Class, Rule: f.Rule, Msg: f.Msg, Repro: f.Repro, Attempts: f.Attempts}
}

// BuildExperimentRun assembles one standard experiment's rows into an
// in-memory obs run (the -rollup view uses it without writing anything).
// Points carry the exact defaulted spec (core.EncodeSpec), the measured
// row, the deterministic engine event total, and — when the row still holds
// an in-memory metrics sample — the per-instrument histogram digest.
func BuildExperimentRun(e Experiment, rows []Row, o ArchiveOpts) (*obs.Run, error) {
	if len(rows) != len(e.Points) {
		return nil, fmt.Errorf("repro: archive %s: %d rows for %d points", e.ID, len(rows), len(e.Points))
	}
	pts := make([]obs.PointRecord, len(rows))
	var events uint64
	for i, r := range rows {
		// Shards is deliberately 0: the wire form excludes it anyway, so an
		// archive written by a sharded grid is byte-identical to a serial one.
		spec, err := core.EncodeSpec(pointSpec(e.Points[i], o.Dur, o.Telemetry, 0))
		if err != nil {
			return nil, fmt.Errorf("repro: archive %s/%s: %w", e.ID, e.Points[i].Label, err)
		}
		rec := obs.PointRecord{
			I: i, Label: e.Points[i].Label, Spec: spec,
			Events:  r.Events,
			Failure: archiveFailure(r.Failure),
		}
		if r.Failure == nil {
			rec.Metrics = obs.Metrics{
				GoodputMbps:    r.GoodputMbps,
				GoodputCI:      r.GoodputCI,
				RTTms:          r.RTTms,
				MinRTTms:       r.MinRTTms,
				Retransmits:    r.Retransmits,
				SKBKbits:       r.SKBKbits,
				IdleMs:         r.IdleMs,
				ExpectedMbps:   r.ExpectedMbps,
				MaxBufKB:       r.MaxBufKB,
				CPUUtil:        r.CPUUtil,
				Jain:           r.Jain,
				PacingShare:    r.PacingShare,
				Profiled:       r.Profiled,
				AppKind:        r.AppKind,
				Requests:       r.Requests,
				LatP50ms:       r.LatP50ms,
				LatP90ms:       r.LatP90ms,
				LatP99ms:       r.LatP99ms,
				RebufferPct:    r.RebufferPct,
				FlowsStarted:   r.FlowsStarted,
				FlowsCompleted: r.FlowsCompleted,
				FlowsPeakLive:  r.FlowsPeakLive,
				FCTP50ms:       r.FCTP50ms,
				FCTP99ms:       r.FCTP99ms,
				FastPathShare:  r.FastPathShare,
			}
		}
		if r.Sample != nil {
			if r.Sample.Report != nil && r.Sample.Report.Metrics != nil {
				rec.Digest, rec.DigestSkipped = obs.DigestSnapshot(r.Sample.Report.Metrics)
			}
			if r.Sample.Engine != nil {
				rec.MaxPending = r.Sample.Engine.MaxPending
			}
		}
		events += r.Events
		pts[i] = rec
	}
	m := o.manifest(e.ID, e.Title, len(pts), o.Seeds, o.Dur)
	m.Events = events
	return &obs.Run{Manifest: m, Points: pts}, nil
}

// ArchiveExperiment writes one standard experiment's rows under
// o.Dir/<e.ID>/.
func ArchiveExperiment(e Experiment, rows []Row, o ArchiveOpts) error {
	run, err := BuildExperimentRun(e, rows, o)
	if err != nil {
		return err
	}
	return obs.WriteRun(filepath.Join(o.Dir, e.ID), run.Manifest, run.Points)
}

// BuildRecoveryRun assembles the recovery experiment's rows into an
// in-memory obs run.
func BuildRecoveryRun(e RecoveryExperiment, rows []RecoveryRow, o ArchiveOpts) (*obs.Run, error) {
	if len(rows) != len(e.Points) {
		return nil, fmt.Errorf("repro: archive %s: %d rows for %d points", e.ID, len(rows), len(e.Points))
	}
	pts := make([]obs.PointRecord, len(rows))
	for i, r := range rows {
		spec, err := core.EncodeSpec(e.Points[i].Spec)
		if err != nil {
			return nil, fmt.Errorf("repro: archive %s/%s: %w", e.ID, e.Points[i].Label, err)
		}
		pts[i] = obs.PointRecord{
			I: i, Label: e.Points[i].Label, Spec: spec,
			Metrics: obs.Metrics{
				GoodputMbps:  r.PreFaultMbps,
				RecoveryMs:   r.RecoveryMs,
				RecoveryCI:   r.RecoveryCI,
				Recovered:    r.Recovered,
				SpuriousRTOs: r.SpuriousRTOs,
				Retransmits:  r.Retransmits,
			},
		}
	}
	m := o.manifest(e.ID, e.Title, len(pts), o.Seeds, RecoveryDuration)
	return &obs.Run{Manifest: m, Points: pts}, nil
}

// ArchiveRecovery writes the recovery experiment's rows under
// o.Dir/<e.ID>/.
func ArchiveRecovery(e RecoveryExperiment, rows []RecoveryRow, o ArchiveOpts) error {
	run, err := BuildRecoveryRun(e, rows, o)
	if err != nil {
		return err
	}
	return obs.WriteRun(filepath.Join(o.Dir, e.ID), run.Manifest, run.Points)
}

// BuildTraceRun assembles the trace experiment's rows into an in-memory
// obs run.
func BuildTraceRun(e TraceExperiment, rows []TraceRow, o ArchiveOpts) (*obs.Run, error) {
	if len(rows) != len(e.Points) {
		return nil, fmt.Errorf("repro: archive %s: %d rows for %d points", e.ID, len(rows), len(e.Points))
	}
	var dur time.Duration
	pts := make([]obs.PointRecord, len(rows))
	for i, r := range rows {
		spec, err := core.EncodeSpec(e.Points[i].Spec)
		if err != nil {
			return nil, fmt.Errorf("repro: archive %s/%s: %w", e.ID, e.Points[i].Label, err)
		}
		dur = e.Points[i].Spec.Duration
		pts[i] = obs.PointRecord{
			I: i, Label: e.Points[i].Label, Spec: spec,
			Metrics: obs.Metrics{
				GoodputMbps: r.GoodputMbps,
				GoodputCI:   r.GoodputCI,
				RTTms:       r.RTTms,
				Retransmits: r.Retransmits,
			},
		}
	}
	m := o.manifest(e.ID, e.Title, len(pts), o.Seeds, dur)
	return &obs.Run{Manifest: m, Points: pts}, nil
}

// ArchiveTrace writes the trace experiment's rows under o.Dir/<e.ID>/.
func ArchiveTrace(e TraceExperiment, rows []TraceRow, o ArchiveOpts) error {
	run, err := BuildTraceRun(e, rows, o)
	if err != nil {
		return err
	}
	return obs.WriteRun(filepath.Join(o.Dir, e.ID), run.Manifest, run.Points)
}
